// Package loadgen drives a ptrserved-compatible endpoint with a mixed,
// reproducible request workload and scores what comes back: throughput,
// latency quantiles, an error taxonomy by status and fault kind, and the
// overload invariants the service tier promises (rejections carry
// Retry-After; nothing but deadline sheds may answer 5xx; bodies always
// decode). It is the measuring half of the chaos/load harness — cmd/ptrload
// is the CLI shell, scripts/chaos_smoke.sh the assertion harness.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// Op names for Mix weights and the per-op result breakdown.
const (
	OpAnalyze  = "analyze"
	OpPointsTo = "pointsto"
	OpAlias    = "alias"
	OpQuery    = "query"
	OpSession  = "session"
)

// Mix weights the operation blend. Zero-valued fields never run; the zero
// Mix selects DefaultMix.
type Mix struct {
	Analyze  int `json:"analyze"`
	PointsTo int `json:"pointsto"`
	Alias    int `json:"alias"`
	Query    int `json:"query"`
	Session  int `json:"session"`
}

// DefaultMix is read-heavy, like the daemon's intended traffic.
var DefaultMix = Mix{Analyze: 2, PointsTo: 4, Alias: 2, Query: 2, Session: 1}

func (m Mix) total() int { return m.Analyze + m.PointsTo + m.Alias + m.Query + m.Session }

// pick selects an op by weight from a uniform draw in [0, total).
func (m Mix) pick(n int) string {
	for _, w := range []struct {
		op     string
		weight int
	}{
		{OpAnalyze, m.Analyze}, {OpPointsTo, m.PointsTo}, {OpAlias, m.Alias},
		{OpQuery, m.Query}, {OpSession, m.Session},
	} {
		if n < w.weight {
			return w.op
		}
		n -= w.weight
	}
	return OpAnalyze
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7979".
	BaseURL string
	// Workers is the number of concurrent request loops (default 8).
	Workers int
	// Requests is the total operation count across workers (default 100).
	Requests int
	// Seed makes the workload reproducible: same seed, same op sequence
	// per worker.
	Seed int64
	// Corpora are the built-in programs to spread traffic over (default:
	// a small mixed set). Each is primed with a session before the storm
	// so query ops have valid keys and names to aim at.
	Corpora []string
	// Mix weights the op blend; the zero Mix selects DefaultMix.
	Mix Mix
	// MaxRetries bounds retries per op for 429/503/transport errors
	// (default 3; negative disables retrying).
	MaxRetries int
	// BackoffBase seeds the exponential backoff (default 100ms). A server
	// Retry-After hint raises the sleep to at least its value.
	BackoffBase time.Duration
	// MaxBackoff caps every backoff sleep, including honored Retry-After
	// hints (default 30s). Tests set it low to stay fast.
	MaxBackoff time.Duration
	// AnalyzeTimeoutMS, when positive, stamps analyze requests with a
	// timeout limit — under chaos latency this provokes deadline sheds.
	AnalyzeTimeoutMS int64
	// Client overrides the HTTP client (default: 2-minute timeout).
	Client *http.Client
}

func (c *Config) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Requests <= 0 {
		c.Requests = 100
	}
	if len(c.Corpora) == 0 {
		c.Corpora = []string{"anagram", "ft", "compiler"}
	}
	if c.Mix.total() <= 0 {
		c.Mix = DefaultMix
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 30 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 2 * time.Minute}
	}
}

// Result is the scorecard of one run.
type Result struct {
	Elapsed      time.Duration `json:"elapsed_ns"`
	Ops          int64         `json:"ops"`            // operations completed (any outcome)
	Succeeded    int64         `json:"succeeded"`      // final status 200
	Failed       int64         `json:"failed"`         // final status != 200
	Retries      int64         `json:"retries"`        // extra attempts spent on 429/503/transport errors
	Transport    int64         `json:"transport"`      // ops that died on a transport error
	Corrupt      int64         `json:"corrupt"`        // undecodable or shape-violating bodies
	NoRetryAfter int64         `json:"no_retry_after"` // 429/503 responses missing Retry-After

	StatusCounts map[string]int64 `json:"status_counts"` // final status → count
	KindCounts   map[string]int64 `json:"kind_counts"`   // error kind → count
	OpCounts     map[string]int64 `json:"op_counts"`     // op → count

	ThroughputRPS float64 `json:"throughput_rps"` // succeeded ops per second

	P50MS float64 `json:"p50_ms"` // latency of the final attempt per op
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// Violations lists broken service-tier invariants: anything here means the
// server misbehaved under load (ptrload -assert exits nonzero on them).
func (r *Result) Violations() []string {
	var out []string
	if r.Corrupt > 0 {
		out = append(out, fmt.Sprintf("%d corrupt responses (undecodable or shape-violating bodies)", r.Corrupt))
	}
	for status, n := range r.StatusCounts {
		if code, err := strconv.Atoi(status); err == nil && code >= 500 && code != http.StatusServiceUnavailable {
			out = append(out, fmt.Sprintf("%d responses with status %d (only 503 may 5xx under overload)", n, code))
		}
	}
	if r.NoRetryAfter > 0 {
		out = append(out, fmt.Sprintf("%d overload rejections missing Retry-After", r.NoRetryAfter))
	}
	sort.Strings(out)
	return out
}

// target is one primed program: the key to query and the names defined in it.
type target struct {
	corpus string
	key    string
	names  []string
}

// runner carries one run's shared state.
type runner struct {
	cfg     Config
	targets []target

	next atomic.Int64 // op ticket counter

	mu        sync.Mutex
	latencies []time.Duration
	res       Result
}

// Run executes the configured workload and scores it. The context cancels
// the run early (workers finish their in-flight op and stop); the partial
// Result is still returned.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg.setDefaults()
	r := &runner{cfg: cfg}
	r.res.StatusCounts = make(map[string]int64)
	r.res.KindCounts = make(map[string]int64)
	r.res.OpCounts = make(map[string]int64)

	if err := r.prime(ctx); err != nil {
		return nil, err
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Distinct deterministic stream per worker: ops interleave
			// nondeterministically across workers, but each worker's own
			// sequence is fixed by (Seed, w).
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*0x9e3779b9))
			for ctx.Err() == nil {
				if r.next.Add(1) > int64(cfg.Requests) {
					return
				}
				r.oneOp(ctx, rng)
			}
		}(w)
	}
	wg.Wait()
	r.res.Elapsed = time.Since(start)
	r.finish()
	return &r.res, nil
}

// prime opens a session per corpus so query ops have valid keys and names.
// Priming retries like any op — a cold, admission-limited server may 429 it.
func (r *runner) prime(ctx context.Context) error {
	rng := rand.New(rand.NewSource(r.cfg.Seed ^ 0x5eed))
	for _, name := range r.cfg.Corpora {
		body, _ := json.Marshal(server.SessionRequest{Corpus: name})
		var last outcome
		for attempt := 0; ; attempt++ {
			last = r.do(ctx, http.MethodPost, "/v1/session", body)
			if !r.shouldRetry(last, attempt) {
				break
			}
			r.backoff(ctx, rng, attempt, last.retryAfter)
		}
		if last.status != http.StatusOK {
			return fmt.Errorf("prime %s: status %d (%s)", name, last.status, last.kind)
		}
		var sr server.SessionResponse
		if err := json.Unmarshal(last.body, &sr); err != nil || sr.Key == "" || len(sr.Names) == 0 {
			return fmt.Errorf("prime %s: malformed session response: %v", name, err)
		}
		r.targets = append(r.targets, target{corpus: name, key: sr.Key, names: sr.Names})
	}
	return nil
}

// outcome is one HTTP attempt, decoded just far enough to score it.
type outcome struct {
	status     int    // 0 = transport error
	kind       string // error taxonomy kind, when the body carried one
	body       []byte
	corrupt    bool // body violated the wire contract
	retryAfter int  // seconds, 0 = absent
	latency    time.Duration
}

// do performs one attempt and classifies the response envelope. Body-shape
// validation beyond the envelope is the caller's job (it knows the op).
func (r *runner) do(ctx context.Context, method, path string, body []byte) outcome {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, r.cfg.BaseURL+path, rd)
	if err != nil {
		return outcome{kind: "transport"}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return outcome{kind: "transport", latency: time.Since(start)}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	o := outcome{status: resp.StatusCode, body: raw, latency: time.Since(start)}
	if err != nil {
		o.status = 0
		o.kind = "transport"
		return o
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		o.retryAfter = secs
	}
	if o.status != http.StatusOK {
		var er server.ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Kind == "" {
			o.corrupt = true
		} else {
			o.kind = er.Kind
		}
	}
	return o
}

// shouldRetry: overload rejections and transport errors are worth another
// attempt; contract errors (4xx) and real faults (500) are terminal.
func (r *runner) shouldRetry(o outcome, attempt int) bool {
	if attempt >= r.cfg.MaxRetries || r.cfg.MaxRetries < 0 {
		return false
	}
	return o.status == 0 ||
		o.status == http.StatusTooManyRequests ||
		o.status == http.StatusServiceUnavailable
}

// backoff sleeps the jittered exponential delay, raised to any Retry-After
// hint and capped at MaxBackoff. rng is the worker's own stream.
func (r *runner) backoff(ctx context.Context, rng *rand.Rand, attempt int, retryAfter int) {
	d := r.cfg.BackoffBase << attempt
	// Full jitter in [d/2, d): synchronized retry herds re-collide forever,
	// jittered ones spread out.
	d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
	if ra := time.Duration(retryAfter) * time.Second; ra > d {
		d = ra
	}
	if d > r.cfg.MaxBackoff {
		d = r.cfg.MaxBackoff
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// oneOp runs a single weighted operation through the retry loop and
// records its outcome.
func (r *runner) oneOp(ctx context.Context, rng *rand.Rand) {
	op := r.cfg.Mix.pick(rng.Intn(r.cfg.Mix.total()))
	tgt := r.targets[rng.Intn(len(r.targets))]
	method, path, body := r.buildRequest(op, tgt, rng)

	var o outcome
	retries := 0
	for attempt := 0; ; attempt++ {
		o = r.do(ctx, method, path, body)
		if !r.shouldRetry(o, attempt) {
			break
		}
		retries++
		r.backoff(ctx, rng, attempt, o.retryAfter)
	}
	if o.status == http.StatusOK && !o.corrupt {
		o.corrupt = !validBody(op, tgt, o.body)
	}
	r.record(op, o, retries)
}

// buildRequest shapes one op against a primed target.
func (r *runner) buildRequest(op string, tgt target, rng *rand.Rand) (method, path string, body []byte) {
	name := func() string { return tgt.names[rng.Intn(len(tgt.names))] }
	switch op {
	case OpPointsTo:
		return http.MethodGet, "/v1/pointsto?key=" + tgt.key + "&var=" + name(), nil
	case OpAlias:
		return http.MethodGet, "/v1/alias?key=" + tgt.key + "&a=" + name() + "&b=" + name(), nil
	case OpQuery:
		n := 1 + rng.Intn(4)
		req := server.QueryBatchRequest{}
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				req.Queries = append(req.Queries, server.QueryJSON{Op: server.OpPointsTo, Key: tgt.key, Var: name()})
			} else {
				req.Queries = append(req.Queries, server.QueryJSON{Op: server.OpMayAlias, Key: tgt.key, A: name(), B: name()})
			}
		}
		body, _ := json.Marshal(req)
		return http.MethodPost, "/v1/query", body
	case OpSession:
		body, _ := json.Marshal(server.SessionRequest{Corpus: tgt.corpus})
		return http.MethodPost, "/v1/session", body
	default: // OpAnalyze
		areq := server.AnalyzeRequest{Corpus: tgt.corpus}
		if r.cfg.AnalyzeTimeoutMS > 0 {
			areq.Limits = server.LimitsJSON{TimeoutMS: r.cfg.AnalyzeTimeoutMS}
		}
		body, _ := json.Marshal(areq)
		return http.MethodPost, "/v1/analyze", body
	}
}

// validBody checks a 200 body against the op's wire shape: an accepted
// answer that does not decode — or that answers for a different key — is a
// corrupt response, exactly what the chaos harness exists to catch.
func validBody(op string, tgt target, raw []byte) bool {
	switch op {
	case OpPointsTo, OpAlias:
		var qr server.QueryResultJSON
		return json.Unmarshal(raw, &qr) == nil && qr.Key == tgt.key
	case OpQuery:
		var br server.QueryBatchResponse
		return json.Unmarshal(raw, &br) == nil && len(br.Results) > 0
	case OpSession:
		var sr server.SessionResponse
		return json.Unmarshal(raw, &sr) == nil && sr.Key == tgt.key && len(sr.Names) > 0
	default: // OpAnalyze
		var rep server.ReportJSON
		return json.Unmarshal(raw, &rep) == nil && rep.Key != ""
	}
}

// record folds one finished op into the scorecard.
func (r *runner) record(op string, o outcome, retries int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.res.Ops++
	r.res.Retries += int64(retries)
	r.res.OpCounts[op]++
	status := strconv.Itoa(o.status)
	if o.status == 0 {
		status = "transport"
		r.res.Transport++
	}
	r.res.StatusCounts[status]++
	if o.kind != "" {
		r.res.KindCounts[o.kind]++
	}
	if o.corrupt {
		r.res.Corrupt++
	}
	switch {
	case o.status == http.StatusOK:
		r.res.Succeeded++
	default:
		r.res.Failed++
	}
	if (o.status == http.StatusTooManyRequests || o.status == http.StatusServiceUnavailable) && o.retryAfter == 0 {
		r.res.NoRetryAfter++
	}
	r.latencies = append(r.latencies, o.latency)
}

// finish computes the derived fields (quantiles, throughput).
func (r *runner) finish() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.res.Elapsed > 0 {
		r.res.ThroughputRPS = float64(r.res.Succeeded) / r.res.Elapsed.Seconds()
	}
	if len(r.latencies) == 0 {
		return
	}
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	q := func(p float64) float64 {
		idx := int(p*float64(len(r.latencies))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(r.latencies) {
			idx = len(r.latencies) - 1
		}
		return float64(r.latencies[idx].Nanoseconds()) / 1e6
	}
	r.res.P50MS = q(0.50)
	r.res.P95MS = q(0.95)
	r.res.P99MS = q(0.99)
	r.res.MaxMS = float64(r.latencies[len(r.latencies)-1].Nanoseconds()) / 1e6
}
