package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/server"
	"repro/internal/store"
)

func newServer(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	if cfg.Store == nil {
		st, err := store.New(0, "")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	ts := httptest.NewServer(server.New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// fastRetries keeps test runs quick without changing retry semantics.
func fastRetries(cfg *Config) {
	cfg.BackoffBase = 2 * time.Millisecond
	cfg.MaxBackoff = 20 * time.Millisecond
}

// TestRunScoresMixedLoad drives an admission-limited, chaos-delayed server
// at several times its concurrency limit and checks the scorecard: every op
// accounted for, no invariant violations, sane quantiles.
func TestRunScoresMixedLoad(t *testing.T) {
	ts := newServer(t, server.Config{
		Admission: server.AdmissionConfig{MaxInflight: 2, MaxQueue: 2},
		Chaos:     chaos.New(chaos.Config{Seed: 1, SolveDelay: 5 * time.Millisecond, SolveDelayP: 1}),
	})
	cfg := Config{
		BaseURL:  ts.URL,
		Workers:  8,
		Requests: 60,
		Seed:     42,
		Corpora:  []string{"anagram", "compiler"},
	}
	fastRetries(&cfg)
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 60 {
		t.Errorf("Ops = %d, want 60", res.Ops)
	}
	if res.Succeeded == 0 {
		t.Error("nothing succeeded")
	}
	if res.Succeeded+res.Failed != res.Ops {
		t.Errorf("succeeded %d + failed %d != ops %d", res.Succeeded, res.Failed, res.Ops)
	}
	var statusTotal int64
	for _, n := range res.StatusCounts {
		statusTotal += n
	}
	if statusTotal != res.Ops {
		t.Errorf("status counts sum to %d, want %d", statusTotal, res.Ops)
	}
	var opTotal int64
	for _, n := range res.OpCounts {
		opTotal += n
	}
	if opTotal != res.Ops {
		t.Errorf("op counts sum to %d, want %d", opTotal, res.Ops)
	}
	if v := res.Violations(); len(v) != 0 {
		t.Errorf("violations under healthy overload: %v", v)
	}
	if res.P50MS <= 0 || res.P99MS < res.P50MS || res.MaxMS < res.P99MS {
		t.Errorf("quantiles out of order: p50=%v p99=%v max=%v", res.P50MS, res.P99MS, res.MaxMS)
	}
	if res.ThroughputRPS <= 0 {
		t.Errorf("throughput = %v", res.ThroughputRPS)
	}
}

// TestRetriesRecoverFrom429: a single-slot server with a tiny queue forces
// overload rejections; the harness's backoff retries should still land
// every op, and the retry counter must show the work it took.
func TestRetriesRecoverFrom429(t *testing.T) {
	ts := newServer(t, server.Config{
		Admission: server.AdmissionConfig{MaxInflight: 1, MaxQueue: 1},
		Chaos:     chaos.New(chaos.Config{Seed: 2, SolveDelay: 10 * time.Millisecond, SolveDelayP: 1}),
	})
	cfg := Config{
		BaseURL:  ts.URL,
		Workers:  8,
		Requests: 24,
		Seed:     7,
		Corpora:  []string{"anagram"},
		// Solve-bearing ops only: reads would bypass admission and dilute
		// the overload pressure this test needs.
		Mix:        Mix{Analyze: 1, Session: 1},
		MaxRetries: 8,
	}
	fastRetries(&cfg)
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 24 {
		t.Errorf("Ops = %d, want 24", res.Ops)
	}
	if got := res.StatusCounts["500"]; got != 0 {
		t.Errorf("%d internal errors under overload", got)
	}
	if v := res.Violations(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

func TestPrimeFailsOnUnknownCorpus(t *testing.T) {
	ts := newServer(t, server.Config{})
	cfg := Config{BaseURL: ts.URL, Corpora: []string{"no-such-program"}, MaxRetries: -1}
	fastRetries(&cfg)
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("priming an unknown corpus succeeded")
	}
}

func TestViolationsFlagBrokenInvariants(t *testing.T) {
	r := &Result{
		Corrupt:      2,
		NoRetryAfter: 1,
		StatusCounts: map[string]int64{"200": 10, "500": 3, "503": 4},
	}
	v := r.Violations()
	if len(v) != 3 {
		t.Fatalf("violations = %v, want 3 entries", v)
	}
	clean := &Result{StatusCounts: map[string]int64{"200": 10, "429": 2, "503": 1}}
	if v := clean.Violations(); len(v) != 0 {
		t.Errorf("clean result violated: %v", v)
	}
}

func TestMixPickCoversWeights(t *testing.T) {
	m := Mix{Analyze: 1, PointsTo: 2, Alias: 1, Query: 1, Session: 1}
	counts := map[string]int{}
	for n := 0; n < m.total(); n++ {
		counts[m.pick(n)]++
	}
	want := map[string]int{OpAnalyze: 1, OpPointsTo: 2, OpAlias: 1, OpQuery: 1, OpSession: 1}
	for op, w := range want {
		if counts[op] != w {
			t.Errorf("pick coverage for %s = %d, want %d", op, counts[op], w)
		}
	}
}
