package incr

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/ir"
)

// The graph snapshot is the restart-surviving form of a Graph, carried in
// the same checked-container frame as the store's result spill:
//
//	ptrincr1 <64 hex sha256> <decimal payload bytes>\n
//	{ ...JSON payload... }
//
// The payload holds the config, the verbatim sources, a cell dictionary
// (each cell naming its object by INDEX into the deterministic
// ir.Program.Objects order) and every cell's final points-to set. Decoding
// re-runs the front end over the embedded sources to rebind the indices to
// live objects and recompute the unit fingerprints — the IR build is
// deterministic, so index i denotes the same object on every decode.
// Unlike the result spill there is no legacy headerless fallback: the
// format is new, so anything without the header is corrupt.

// snapMagic opens every graph-snapshot header line.
const snapMagic = "ptrincr1"

// snapVersion is the payload wire version.
const snapVersion = 1

// CorruptError tags a snapshot read that failed verification — truncation,
// checksum mismatch, malformed header or payload, wrong version, or a
// payload inconsistent with its own embedded sources. Callers quarantine
// on it; plain I/O errors come back unwrapped.
type CorruptError struct {
	Reason string
}

func (e *CorruptError) Error() string { return "incr: corrupt graph snapshot: " + e.Reason }

func corruptf(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

type snapSource struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

type snapCell struct {
	Obj   int    `json:"obj"`
	Off   int64  `json:"off,omitempty"`
	Path  string `json:"path,omitempty"`
	ByOff bool   `json:"by_off,omitempty"`
}

type snapFact struct {
	Cell    int   `json:"cell"`
	Targets []int `json:"targets"`
}

type snapPayload struct {
	Version int          `json:"version"`
	Config  Config       `json:"config"`
	Sources []snapSource `json:"sources"`
	// Objects pins the expected object count of the re-parsed program, a
	// cheap consistency check on the index space.
	Objects int        `json:"objects"`
	Cells   []snapCell `json:"cells"`
	Facts   []snapFact `json:"facts"`
}

// WriteSnapshot writes g in the checked ptrincr1 container format.
func WriteSnapshot(w io.Writer, g *Graph) error {
	objIdx := make(map[*ir.Object]int, len(g.res.IR.Objects))
	for i, o := range g.res.IR.Objects {
		objIdx[o] = i
	}
	cellIdx := make(map[core.Cell]int)
	p := snapPayload{Version: snapVersion, Config: g.cfg, Objects: len(g.res.IR.Objects)}
	for _, s := range g.sources {
		p.Sources = append(p.Sources, snapSource{Name: s.Name, Text: s.Text})
	}
	intern := func(c core.Cell) (int, error) {
		if i, ok := cellIdx[c]; ok {
			return i, nil
		}
		oi, ok := objIdx[c.Obj]
		if !ok {
			return 0, fmt.Errorf("incr: cell %v references an object outside the program", c)
		}
		i := len(p.Cells)
		cellIdx[c] = i
		p.Cells = append(p.Cells, snapCell{Obj: oi, Off: c.Off, Path: c.Path, ByOff: c.ByOff})
		return i, nil
	}
	for _, c := range g.order {
		ci, err := intern(c)
		if err != nil {
			return err
		}
		fact := snapFact{Cell: ci}
		for _, t := range g.facts[c] {
			ti, err := intern(t)
			if err != nil {
				return err
			}
			fact.Targets = append(fact.Targets, ti)
		}
		p.Facts = append(p.Facts, fact)
	}
	payload, err := json.Marshal(&p)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(payload)
	if _, err := fmt.Fprintf(w, "%s %s %d\n", snapMagic, hex.EncodeToString(sum[:]), len(payload)); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// WriteSnapshot is the package-level WriteSnapshot as a method.
func (g *Graph) WriteSnapshot(w io.Writer) error { return WriteSnapshot(w, g) }

// ReadSnapshot reads one graph from the checked container, verifying
// length and digest before decoding and re-running the front end over the
// embedded sources to rebind object indices. Every verification or
// consistency failure is a *CorruptError.
func ReadSnapshot(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, corruptf("truncated header")
	}
	fields := strings.Fields(strings.TrimSuffix(header, "\n"))
	if len(fields) != 3 || fields[0] != snapMagic {
		return nil, corruptf("malformed header %q", header)
	}
	wantSum, err := hex.DecodeString(fields[1])
	if err != nil || len(wantSum) != sha256.Size {
		return nil, corruptf("malformed digest %q", fields[1])
	}
	var length int64
	if _, err := fmt.Sscanf(fields[2], "%d", &length); err != nil || length < 0 {
		return nil, corruptf("malformed length %q", fields[2])
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, corruptf("truncated payload: %v", err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, corruptf("trailing bytes after declared payload")
	}
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], wantSum) {
		return nil, corruptf("checksum mismatch")
	}
	var p snapPayload
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, corruptf("undecodable payload: %v", err)
	}
	if p.Version != snapVersion {
		return nil, corruptf("unsupported version %d", p.Version)
	}
	return rebind(&p)
}

// rebind reconstructs the live Graph from a verified payload.
func rebind(p *snapPayload) (*Graph, error) {
	cfg := p.Config.withDefaults()
	fopts, err := cfg.frontend()
	if err != nil {
		return nil, corruptf("%v", err)
	}
	sources := make([]frontend.Source, len(p.Sources))
	for i, s := range p.Sources {
		sources[i] = frontend.Source{Name: s.Name, Text: s.Text}
	}
	res, err := frontend.Load(sources, fopts)
	if err != nil {
		// The digest matched, so the bytes are what was written — but a
		// payload whose own sources do not compile was never a valid
		// snapshot.
		return nil, corruptf("embedded sources do not load: %v", err)
	}
	if len(res.IR.Objects) != p.Objects {
		return nil, corruptf("object count mismatch: payload says %d, program has %d", p.Objects, len(res.IR.Objects))
	}
	cells := make([]core.Cell, len(p.Cells))
	for i, sc := range p.Cells {
		if sc.Obj < 0 || sc.Obj >= len(res.IR.Objects) {
			return nil, corruptf("cell %d references object %d of %d", i, sc.Obj, len(res.IR.Objects))
		}
		cells[i] = core.Cell{Obj: res.IR.Objects[sc.Obj], Off: sc.Off, Path: sc.Path, ByOff: sc.ByOff}
	}
	g := &Graph{
		cfg:     cfg,
		sources: sources,
		res:     res,
		units:   fingerprints(res.IR),
		facts:   make(map[core.Cell][]core.Cell, len(p.Facts)),
	}
	for _, f := range p.Facts {
		if f.Cell < 0 || f.Cell >= len(cells) {
			return nil, corruptf("fact references cell %d of %d", f.Cell, len(cells))
		}
		c := cells[f.Cell]
		if _, dup := g.facts[c]; dup {
			return nil, corruptf("duplicate fact entry for cell %v", c)
		}
		targets := make([]core.Cell, len(f.Targets))
		for j, ti := range f.Targets {
			if ti < 0 || ti >= len(cells) {
				return nil, corruptf("fact target references cell %d of %d", ti, len(cells))
			}
			targets[j] = cells[ti]
		}
		if len(targets) == 0 {
			return nil, corruptf("empty fact entry for cell %v", c)
		}
		g.order = append(g.order, c)
		g.facts[c] = targets
	}
	return g, nil
}
