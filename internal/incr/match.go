package incr

import (
	"fmt"

	"repro/internal/ir"
)

// Object matching builds one global bijection between the old program's
// objects and the new program's:
//
//   - stable-named objects (file-scope variables and functions) pair by
//     unique symbol name, whatever units mention them;
//   - everything else pairs positionally through a lockstep walk of the
//     UNCHANGED units: parameter i to parameter i, the operand in slot k
//     of statement j to the same slot of the same statement. Encoding
//     equality guarantees the shapes line up; the walk only records which
//     concrete *ir.Object sits where.
//
// Objects owned by changed/removed/added units are simply left unbound —
// their cells cannot be carried over, which is exactly the conservatism the
// taint analysis needs. Any INCONSISTENCY (two old objects claiming one new
// object, a shape mismatch the encodings should have excluded) is an error,
// and Resume answers it with a cold-solve fallback rather than guessing.

type match struct {
	fwd map[*ir.Object]*ir.Object
	rev map[*ir.Object]*ir.Object
	// stmts pairs every statement of an unchanged unit with its twin in the
	// new program (the lockstep walk visits them 1:1). Resume uses it to
	// transplant per-statement artifacts — counter contributions and frozen
	// copy edges — from the captured solve onto the new IR.
	stmts map[*ir.Stmt]*ir.Stmt
}

func newMatch() *match {
	return &match{
		fwd:   make(map[*ir.Object]*ir.Object),
		rev:   make(map[*ir.Object]*ir.Object),
		stmts: make(map[*ir.Stmt]*ir.Stmt),
	}
}

// bind records old ↔ new, failing on any conflict with an earlier binding.
func (m *match) bind(old, new *ir.Object) error {
	if old == nil || new == nil {
		return fmt.Errorf("incr: nil object in pairing")
	}
	if old.Kind != new.Kind {
		return fmt.Errorf("incr: kind mismatch pairing %q (%v) with %q (%v)", old.Name, old.Kind, new.Name, new.Kind)
	}
	if prev, ok := m.fwd[old]; ok && prev != new {
		return fmt.Errorf("incr: object %q matched twice", old.Name)
	}
	if prev, ok := m.rev[new]; ok && prev != old {
		return fmt.Errorf("incr: new object %q claimed twice", new.Name)
	}
	m.fwd[old] = new
	m.rev[new] = old
	return nil
}

// bindOpt allows the both-nil case (absent retval, absent operand slot).
func (m *match) bindOpt(old, new *ir.Object) error {
	if old == nil && new == nil {
		return nil
	}
	return m.bind(old, new)
}

func (m *match) walkStmts(old, new []*ir.Stmt) error {
	if len(old) != len(new) {
		return fmt.Errorf("incr: statement count mismatch in matched unit (%d vs %d)", len(old), len(new))
	}
	for i := range old {
		o, n := old[i], new[i]
		if o.Op != n.Op || len(o.Args) != len(n.Args) {
			return fmt.Errorf("incr: statement shape mismatch in matched unit")
		}
		m.stmts[o] = n
		if err := m.bindOpt(o.Dst, n.Dst); err != nil {
			return err
		}
		if err := m.bindOpt(o.Src, n.Src); err != nil {
			return err
		}
		if err := m.bindOpt(o.Ptr, n.Ptr); err != nil {
			return err
		}
		for j := range o.Args {
			if err := m.bindOpt(o.Args[j], n.Args[j]); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *match) walkFunc(old, new *ir.Func) error {
	if err := m.bindOpt(old.Obj, new.Obj); err != nil {
		return err
	}
	if len(old.Params) != len(new.Params) {
		return fmt.Errorf("incr: parameter count mismatch in matched unit %s", old.Sym.Unique)
	}
	for i := range old.Params {
		if err := m.bindOpt(old.Params[i], new.Params[i]); err != nil {
			return err
		}
	}
	if err := m.bindOpt(old.Retval, new.Retval); err != nil {
		return err
	}
	if err := m.bindOpt(old.Varargs, new.Varargs); err != nil {
		return err
	}
	return m.walkStmts(old.Stmts, new.Stmts)
}

func globalStmts(prog *ir.Program) []*ir.Stmt {
	var out []*ir.Stmt
	for _, st := range prog.Stmts {
		if st.Fn == nil {
			out = append(out, st)
		}
	}
	return out
}

// buildMatch computes the object bijection for the unchanged slice of the
// program pair described by d.
func buildMatch(oldProg, newProg *ir.Program, d Delta) (*match, error) {
	m := newMatch()

	newByUnique := make(map[string]*ir.Object)
	for _, o := range newProg.Objects {
		if stableNamed(o) {
			newByUnique[o.Sym.Unique] = o
		}
	}
	for _, o := range oldProg.Objects {
		if !stableNamed(o) {
			continue
		}
		n, ok := newByUnique[o.Sym.Unique]
		if !ok || n.Kind != o.Kind {
			continue // unbound: its cells are dropped at seeding time
		}
		if err := m.bind(o, n); err != nil {
			return nil, err
		}
	}

	dirty := d.dirty()
	for _, name := range d.Added {
		dirty[name] = true
	}
	newFuncs := make(map[string]*ir.Func, len(newProg.Funcs))
	for _, fn := range newProg.Funcs {
		newFuncs[fn.Sym.Unique] = fn
	}
	for _, fn := range oldProg.Funcs {
		if dirty[fn.Sym.Unique] {
			continue
		}
		nfn := newFuncs[fn.Sym.Unique]
		if nfn == nil {
			return nil, fmt.Errorf("incr: matched unit %s missing from new program", fn.Sym.Unique)
		}
		if err := m.walkFunc(fn, nfn); err != nil {
			return nil, err
		}
	}
	if !dirty[GlobalUnit] {
		if err := m.walkStmts(globalStmts(oldProg), globalStmts(newProg)); err != nil {
			return nil, err
		}
	}
	return m, nil
}
