package incr_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/frontend"
	"repro/internal/incr"
	"repro/internal/metrics"
)

// factDump renders a result exactly like the dense-vs-reference
// differential test in internal/core, so "byte-identical" means the same
// thing across both oracles.
func factDump(res *core.Result) string {
	var sb strings.Builder
	for _, c := range res.SortedCells() {
		sb.WriteString(c.String())
		sb.WriteString(" -> {")
		for i, t := range res.PointsToCell(c).Sorted() {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(t.String())
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

func recorderLine(r *core.Recorder) string {
	return fmt.Sprintf("lk=%d lkS=%d lkM=%d rs=%d rsS=%d rsM=%d",
		r.LookupCalls, r.LookupStructs, r.LookupMismatches,
		r.ResolveCalls, r.ResolveStructs, r.ResolveMismatches)
}

// requireIdentical pins warm ≡ cold on every observable the repo's other
// differential tests pin: fact dumps, TotalFacts, and Fig-3 counters.
func requireIdentical(t *testing.T, label string, warm, cold *core.Result) {
	t.Helper()
	if got, want := warm.TotalFacts(), cold.TotalFacts(); got != want {
		t.Errorf("%s: TotalFacts %d, cold solve says %d", label, got, want)
	}
	if got, want := recorderLine(warm.Strategy.Recorder()), recorderLine(cold.Strategy.Recorder()); got != want {
		t.Errorf("%s: counters diverge\nwarm: %s\ncold: %s", label, got, want)
	}
	if got, want := factDump(warm), factDump(cold); got != want {
		t.Errorf("%s: fact dumps diverge\nwarm:\n%s\ncold:\n%s", label, got, want)
	}
}

// TestResumeMatchesColdSolve is the subsystem's correctness bar: for
// generated single-function edits over the whole corpus, under all four
// strategies, a warm Resume must be byte-identical to a cold solve of the
// edited program.
func TestResumeMatchesColdSolve(t *testing.T) {
	ctx := context.Background()
	names := corpus.SortedByGroup()
	editsPer := 3
	if testing.Short() {
		names = names[:4]
		editsPer = 2
	}
	resumed := 0
	for _, name := range names {
		src, err := corpus.Source(name)
		if err != nil {
			t.Fatal(err)
		}
		edits := corpus.Edits(src[0].Text, 7, editsPer)
		if len(edits) == 0 {
			t.Logf("%s: no viable edits, skipping", name)
			continue
		}
		for _, sname := range metrics.StrategyNames {
			cfg := incr.Config{Strategy: sname}
			g, _, err := incr.Solve(ctx, src, cfg)
			if err != nil {
				t.Fatalf("%s/%s: solve: %v", name, sname, err)
			}
			for _, ed := range edits {
				label := fmt.Sprintf("%s/%s/%s", name, sname, ed)
				newSrc := []frontend.Source{{Name: src[0].Name, Text: ed.Text}}
				_, warm, stats, err := incr.Resume(ctx, g, newSrc, cfg)
				if err != nil {
					t.Fatalf("%s: resume: %v", label, err)
				}
				_, cold, err := incr.Analyze(ctx, newSrc, cfg)
				if err != nil {
					t.Fatalf("%s: cold: %v", label, err)
				}
				if stats.Outcome == "resumed" {
					resumed++
				} else {
					t.Logf("%s: fell back (%s)", label, stats.FallbackReason)
				}
				requireIdentical(t, label, warm, cold)
			}
		}
	}
	if resumed == 0 {
		t.Fatal("no edit resumed warm: the delta path never engaged")
	}
}

// TestResumeIdenticalProgram re-submits the unedited program: everything
// seeds, nothing retracts, and the answer still matches.
func TestResumeIdenticalProgram(t *testing.T) {
	ctx := context.Background()
	src, err := corpus.Source("compiler")
	if err != nil {
		t.Fatal(err)
	}
	for _, sname := range metrics.StrategyNames {
		cfg := incr.Config{Strategy: sname}
		g, coldRes, err := incr.Solve(ctx, src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, warm, stats, err := incr.Resume(ctx, g, src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Outcome != "resumed" || stats.StmtsRetracted != 0 {
			t.Fatalf("%s: want clean resume, got %+v", sname, stats)
		}
		if stats.CellsSeeded == 0 {
			t.Fatalf("%s: nothing seeded on identical resubmit", sname)
		}
		requireIdentical(t, sname, warm, coldRes)
	}
}

// TestResumeConfigMismatchFallsBack pins the never-wrong contract: a config
// the graph was not captured under falls back to a cold solve under the
// REQUESTED config.
func TestResumeConfigMismatchFallsBack(t *testing.T) {
	ctx := context.Background()
	src, err := corpus.Source("anagram")
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := incr.Solve(ctx, src, incr.Config{Strategy: "common-initial-seq"})
	if err != nil {
		t.Fatal(err)
	}
	other := incr.Config{Strategy: "collapse-always"}
	_, warm, stats, err := incr.Resume(ctx, g, src, other)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Outcome != "cold" || stats.FallbackReason != "config-mismatch" {
		t.Fatalf("want config-mismatch fallback, got %+v", stats)
	}
	_, cold, err := incr.Analyze(ctx, src, other)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "fallback", warm, cold)
}

// TestDiffAlphaEquivalence: renaming a local and shifting lines does not
// change any fingerprint; editing one function changes exactly that unit;
// editing a struct body touches every unit using the type.
func TestDiffAlphaEquivalence(t *testing.T) {
	base := `
struct node { struct node *next; int *val; };
int g;
struct node n1, n2;
void link(struct node *a, struct node *b) { a->next = b; }
void setval(struct node *a) { a->val = &g; }
int main() { link(&n1, &n2); setval(&n1); return 0; }
`
	load := func(text string) *frontend.Result {
		res, err := frontend.Load([]frontend.Source{{Name: "t.c", Text: text}}, frontend.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	old := load(base)

	renamed := strings.ReplaceAll(base, "struct node *a", "\n\nstruct node *renamed_ptr")
	renamed = strings.ReplaceAll(renamed, "a->", "renamed_ptr->")
	if d := incr.Diff(old.IR, load(renamed).IR); !d.Empty() {
		t.Errorf("rename+reflow should fingerprint identically, got %v (changed: %v)", d, d.Changed)
	}

	oneFn := strings.Replace(base, "a->val = &g;", "a->val = &g; a->next = a;", 1)
	d := incr.Diff(old.IR, load(oneFn).IR)
	if len(d.Changed) != 1 || d.Changed[0] != "setval" || len(d.Added)+len(d.Removed) != 0 {
		t.Errorf("one-function edit should change exactly [setval], got %+v", d)
	}

	structEdit := strings.Replace(base, "int *val;", "int *val; int extra;", 1)
	d = incr.Diff(old.IR, load(structEdit).IR)
	changed := strings.Join(d.Changed, ",")
	for _, fn := range []string{"link", "setval", "main"} {
		if !strings.Contains(changed, fn) {
			t.Errorf("struct-body edit should reach %s, changed only [%s]", fn, changed)
		}
	}
}
