package incr

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/frontend"
)

const snapProgram = `
struct pair { int *a; int *b; };
int x, y;
struct pair p;
int *q;
void fill(struct pair *pp) { pp->a = &x; pp->b = &y; }
int main() { fill(&p); q = p.a; return 0; }
`

func solveSnapProgram(t testing.TB, cfg Config) *Graph {
	t.Helper()
	src := []frontend.Source{{Name: "snap.c", Text: snapProgram}}
	g, _, err := Solve(context.Background(), src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func encodeGraph(t testing.TB, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotRoundTrip: a decoded snapshot carries the same facts, unit
// fingerprints and config as the live graph, and resuming from it gives
// the same answer as resuming from the original.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, sname := range []string{"common-initial-seq", "offsets"} {
		g := solveSnapProgram(t, Config{Strategy: sname})
		got, err := ReadSnapshot(bytes.NewReader(encodeGraph(t, g)))
		if err != nil {
			t.Fatalf("%s: %v", sname, err)
		}
		if got.cfg != g.cfg {
			t.Fatalf("%s: config drifted: %+v vs %+v", sname, got.cfg, g.cfg)
		}
		if got.NumCells() != g.NumCells() || got.NumFacts() != g.NumFacts() {
			t.Fatalf("%s: state drifted: %d/%d cells, %d/%d facts",
				sname, got.NumCells(), g.NumCells(), got.NumFacts(), g.NumFacts())
		}
		if len(got.units) != len(g.units) {
			t.Fatalf("%s: unit count drifted", sname)
		}
		for name, enc := range g.units {
			if got.units[name] != enc {
				t.Fatalf("%s: unit %s fingerprints differently after decode", sname, name)
			}
		}
		// Facts must agree cell-for-cell in order.
		for i, c := range g.order {
			gc := got.order[i]
			if c.String() != gc.String() || len(g.facts[c]) != len(got.facts[gc]) {
				t.Fatalf("%s: cell %d drifted: %v vs %v", sname, i, c, gc)
			}
			for j := range g.facts[c] {
				if g.facts[c][j].String() != got.facts[gc][j].String() {
					t.Fatalf("%s: fact %v[%d] drifted", sname, c, j)
				}
			}
		}

		edited := strings.Replace(snapProgram, "q = p.a;", "q = p.b;", 1)
		newSrc := []frontend.Source{{Name: "snap.c", Text: edited}}
		cfg := g.cfg
		_, fromLive, liveStats, err := Resume(context.Background(), g, newSrc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, fromDisk, diskStats, err := Resume(context.Background(), got, newSrc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if liveStats.Outcome != "resumed" || diskStats.Outcome != "resumed" {
			t.Fatalf("%s: want both warm, got %q / %q", sname, liveStats.Outcome, diskStats.Outcome)
		}
		if a, b := fromLive.TotalFacts(), fromDisk.TotalFacts(); a != b {
			t.Fatalf("%s: live resume %d facts, disk resume %d", sname, a, b)
		}
	}
}

// TestSnapshotAdversarial mirrors store/crash_test.go: every corruption
// shape must come back as a *CorruptError — never a partial graph, never a
// panic.
func TestSnapshotAdversarial(t *testing.T) {
	g := solveSnapProgram(t, Config{})
	valid := encodeGraph(t, g)

	corruptions := map[string][]byte{
		"zero-length":    {},
		"no-newline":     []byte(snapMagic + " deadbeef 12"),
		"wrong-magic":    append([]byte("ptrsnapX "), valid[len(snapMagic)+1:]...),
		"short-header":   []byte(snapMagic + " abc\n"),
		"bad-digest":     []byte(snapMagic + " zz 4\nnull"),
		"bad-length":     []byte(snapMagic + " " + strings.Repeat("a", 64) + " -4\nnull"),
		"truncated":      valid[:len(valid)-7],
		"trailing-tail":  append(append([]byte{}, valid...), "extra"...),
		"not-a-snapshot": []byte("just some text\nmore text\n"),
	}
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/2] ^= 0x40
	corruptions["bit-flip"] = flipped

	// Checksum-valid payloads that are internally inconsistent.
	reframe := func(payload string) []byte {
		var buf bytes.Buffer
		writeChecked(t, &buf, []byte(payload))
		return buf.Bytes()
	}
	corruptions["wrong-version"] = reframe(`{"version":99,"config":{"strategy":"","abi":""},"sources":[],"objects":0,"cells":[],"facts":[]}`)
	corruptions["bad-source"] = reframe(`{"version":1,"config":{"strategy":"","abi":""},"sources":[{"name":"x.c","text":"int x = ;"}],"objects":0,"cells":[],"facts":[]}`)
	corruptions["bad-obj-index"] = reframe(`{"version":1,"config":{"strategy":"","abi":""},"sources":[{"name":"x.c","text":"int x;"}],"objects":1,"cells":[{"obj":99}],"facts":[]}`)
	corruptions["unknown-field"] = reframe(`{"version":1,"bogus":true,"config":{"strategy":"","abi":""},"sources":[],"objects":0,"cells":[],"facts":[]}`)

	for name, data := range corruptions {
		got, err := ReadSnapshot(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: decoded a corrupt snapshot (%d cells)", name, got.NumCells())
			continue
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("%s: want *CorruptError, got %T: %v", name, err, err)
		}
	}

	// The uncorrupted bytes still decode after all that.
	if _, err := ReadSnapshot(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
}

// writeChecked frames an arbitrary payload in a valid ptrincr1 header, for
// building checksum-valid but semantically broken snapshots.
func writeChecked(t testing.TB, buf *bytes.Buffer, payload []byte) {
	t.Helper()
	sum := sha256.Sum256(payload)
	fmt.Fprintf(buf, "%s %s %d\n", snapMagic, hex.EncodeToString(sum[:]), len(payload))
	buf.Write(payload)
}
