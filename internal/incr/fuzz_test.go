package incr

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/frontend"
)

// FuzzGraphSnapshotDecode throws arbitrary bytes at the ptrincr1 decoder.
// The invariants: no panic, every rejection is a *CorruptError, and any
// accepted graph is internally coherent enough to re-encode and resume.
func FuzzGraphSnapshotDecode(f *testing.F) {
	g, _, err := Solve(context.Background(),
		[]frontend.Source{{Name: "snap.c", Text: snapProgram}}, Config{})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := WriteSnapshot(&valid, g); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(snapMagic + " 00 0\n"))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte{})
	truncated := valid.Bytes()[:valid.Len()/2]
	f.Add(truncated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("non-corrupt error from decoder: %T %v", err, err)
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, got); err != nil {
			t.Fatalf("accepted graph does not re-encode: %v", err)
		}
		if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-encoded graph does not decode: %v", err)
		}
	})
}
