package incr

import (
	"context"
	"testing"

	"repro/internal/corpus"
	"repro/internal/frontend"
)

func BenchmarkResumeCompiler(b *testing.B) {
	ctx := context.Background()
	src, err := corpus.Source("compiler")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{}
	g, _, err := Solve(ctx, src, cfg)
	if err != nil {
		b.Fatal(err)
	}
	edits := corpus.Edits(src[0].Text, 7, 1)
	newSrc := []frontend.Source{{Name: src[0].Name, Text: edits[0].Text}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Resume(ctx, g, newSrc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColdCompiler(b *testing.B) {
	ctx := context.Background()
	src, err := corpus.Source("compiler")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{}
	edits := corpus.Edits(src[0].Text, 7, 1)
	newSrc := []frontend.Source{{Name: src[0].Name, Text: edits[0].Text}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Analyze(ctx, newSrc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
