package incr

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/ir"
)

// Stats describes what one Resume call did.
type Stats struct {
	// Outcome is "resumed" for a warm delta solve and "cold" for a
	// fallback; FallbackReason says why ("config-mismatch",
	// "match-conflict") and is empty on the warm path.
	Outcome        string
	FallbackReason string

	// Unit-level delta sizes, and the number of old statements retracted
	// (those of changed and removed units).
	UnitsAdded, UnitsRemoved, UnitsChanged int
	StmtsRetracted                         int

	// CellsTainted counts cells the retraction reached; their facts are
	// re-derived instead of seeded. CellsSeeded/FactsSeeded count the
	// carried-over state. FactsDropped counts facts discarded because
	// their target object has no counterpart in the new program (the
	// conservative leg of matching — dropping only shrinks the seed).
	CellsTainted int
	CellsSeeded  int
	FactsSeeded  int
	FactsDropped int

	// Replay elision: StmtsSkipped counts retained statements whose rule
	// firings the captured solve already performed in full — their
	// watcher replay is suppressed, their EdgesRestored copy edges are
	// pre-installed, and their Figure-3 counter contributions are carried
	// over from the capture-time statement mirror instead of being
	// recomputed. Zero under the Offsets instance (range edges disable
	// elision) — the resume is then a plain seeded solve.
	StmtsSkipped  int
	EdgesRestored int

	// Phase wall times: ParseTime covers the front end on the new sources
	// (work a cold solve pays identically). DecodeTime covers the mirror
	// artifact build — replaying the captured statements against the final
	// sets to reconstruct copy edges, counters and the taint index. It is
	// memoized per resident Graph, so only the first Resume against a graph
	// pays it (a snapshot restored from disk always does); later resumes
	// see ~zero. ConvergeTime covers the rest — fingerprint diff, object
	// match, taint closure, seed construction and the delta solve — the
	// per-edit marginal cost, and what `ptrbench -incr` compares against a
	// cold solve. All three are zero on fallback paths.
	ParseTime    time.Duration
	DecodeTime   time.Duration
	ConvergeTime time.Duration
}

// mapCell rebinds an old-program cell onto the new program through the
// object match, preserving the selector.
func mapCell(m *match, c core.Cell) (core.Cell, bool) {
	nobj, ok := m.fwd[c.Obj]
	if !ok {
		return core.Cell{}, false
	}
	return core.Cell{Obj: nobj, Off: c.Off, Path: c.Path, ByOff: c.ByOff}, true
}

// Resume re-analyzes newSources warm: it diffs the new program against the
// captured graph, retracts the constraints of changed/removed units via the
// taint closure, seeds a fresh solver with every surviving fact, and runs
// the fixpoint over what remains. Retained statements whose inputs and
// outputs are wholly untainted are not even replayed — their copy edges are
// restored from the capture-time statement mirror and their counter
// contributions carried over — so the warm solve's work is proportional to
// the edit's reach, not the program. The result is byte-identical to a cold
// solve of newSources — seeded facts are proven members of the new
// fixpoint, and the solver's single-fire replay makes the instrumentation
// schedule-independent. When the warm path's preconditions fail (config
// mismatch, an inconsistent object match), Resume falls back to the cold
// solve and says so in Stats rather than returning a wrong answer.
//
// Front-end failures on newSources are returned as errors (a cold solve
// would fail identically).
func Resume(ctx context.Context, g *Graph, newSources []frontend.Source, cfg Config) (*frontend.Result, *core.Result, *Stats, error) {
	cfg = cfg.withDefaults()
	if cfg != g.cfg {
		return fallback(ctx, newSources, cfg, &Stats{FallbackReason: "config-mismatch"})
	}
	fopts, err := cfg.frontend()
	if err != nil {
		return nil, nil, nil, err
	}
	parseStart := time.Now()
	newRes, err := frontend.Load(newSources, fopts)
	if err != nil {
		return nil, nil, nil, err
	}
	start := time.Now()

	d := diffUnits(g.units, fingerprints(newRes.IR))
	stats := &Stats{
		UnitsAdded:   len(d.Added),
		UnitsRemoved: len(d.Removed),
		UnitsChanged: len(d.Changed),
		ParseTime:    start.Sub(parseStart),
	}

	m, err := buildMatch(g.res.IR, newRes.IR, d)
	if err != nil {
		stats.FallbackReason = "match-conflict"
		return fallbackLoaded(ctx, newRes, cfg, stats)
	}

	decodeStart := time.Now()
	arts, err := g.artifacts()
	if err != nil {
		return nil, nil, nil, err
	}
	stats.DecodeTime = time.Since(decodeStart)
	dirty := d.dirty()
	retracted := func(st *ir.Stmt) bool { return dirty[unitOf(st)] }
	for _, st := range g.res.IR.Stmts {
		if retracted(st) {
			stats.StmtsRetracted++
		}
	}
	tainted := arts.tainted(g.res.IR, retracted)
	stats.CellsTainted = len(tainted)

	// Seed construction. ineligible marks old cells whose final set cannot
	// be carried over intact — tainted, unmatched, or seeded with dropped
	// targets — which is exactly what disqualifies a statement touching
	// them from replay elision below.
	ineligible := tainted
	seeds := make([]core.SeedFact, 0, len(g.order))
	backing := make([]core.Cell, 0, g.NumFacts()) // one arena for every seed's targets
	for _, c := range g.order {
		if tainted[c] {
			continue
		}
		nc, ok := mapCell(m, c)
		if !ok {
			ineligible[c] = true
			stats.FactsDropped += len(g.facts[c])
			continue
		}
		old := g.facts[c]
		from := len(backing)
		for _, tc := range old {
			nt, ok := mapCell(m, tc)
			if !ok {
				stats.FactsDropped++
				continue
			}
			backing = append(backing, nt)
		}
		targets := backing[from:len(backing):len(backing)]
		if len(targets) < len(old) {
			ineligible[c] = true
		}
		if len(targets) == 0 {
			continue
		}
		seeds = append(seeds, core.SeedFact{Cell: nc, Targets: targets})
		stats.CellsSeeded++
		stats.FactsSeeded += len(targets)
	}

	// Replay elision: a retained statement is skip-safe when every cell it
	// watches or writes carries its complete old set into the new program
	// (untainted, matched, no dropped targets) and its copy edges map onto
	// matched objects. For such a statement the captured solve's firings
	// over the frozen facts are exactly what the cold schedule would redo:
	// the edges are restored directly, the counter contribution is added
	// to the live recorder after the solve, and only genuinely new facts
	// fire it during the run. Exact-edge strategies only — range edges
	// (Offsets) propagate through cells the per-statement write sets do
	// not enumerate.
	var skip map[*ir.Stmt]bool
	var frozenEdges []core.Edge
	var carry core.Recorder
	if arts.exact {
		skip = make(map[*ir.Stmt]bool, len(m.stmts))
		var mapped []core.Edge
	stmts:
		for _, oldSt := range g.res.IR.Stmts {
			newSt, retained := m.stmts[oldSt]
			if !retained {
				continue
			}
			a := arts.byStmt[oldSt]
			if a == nil {
				continue
			}
			for _, w := range a.watched {
				if ineligible[w] {
					continue stmts
				}
			}
			for _, w := range a.writes {
				if ineligible[w] {
					continue stmts
				}
			}
			mapped = mapped[:0]
			for _, e := range a.edges {
				ndst, ok := mapCell(m, e.Dst)
				if !ok {
					continue stmts
				}
				nsrc, ok := mapCell(m, e.Src)
				if !ok {
					continue stmts
				}
				mapped = append(mapped, core.Edge{Dst: ndst, Src: nsrc, Size: e.Size})
			}
			frozenEdges = append(frozenEdges, mapped...)
			carry.LookupCalls += a.counts.LookupCalls
			carry.LookupStructs += a.counts.LookupStructs
			carry.LookupMismatches += a.counts.LookupMismatches
			carry.ResolveCalls += a.counts.ResolveCalls
			carry.ResolveStructs += a.counts.ResolveStructs
			carry.ResolveMismatches += a.counts.ResolveMismatches
			skip[newSt] = true
		}
		stats.StmtsSkipped = len(skip)
		stats.EdgesRestored = len(frozenEdges)
	}

	strat, err := cfg.strategy(newRes.Layout)
	if err != nil {
		return nil, nil, nil, err
	}
	result := core.AnalyzeResumeContext(ctx, newRes.IR, strat, cfg.coreOptions(),
		core.ResumeState{Seeds: seeds, Edges: frozenEdges, SkipReplay: skip})
	// The elided statements' logical Lookup/Resolve calls happened in the
	// captured solve; carrying their contributions over is what keeps the
	// Figure-3 counters byte-identical to a cold run. The cache hit/miss
	// split is NOT carried (those calls never touched this run's memo), so
	// on the warm path hits+misses accounts only for the live calls.
	rec := strat.Recorder()
	rec.LookupCalls += carry.LookupCalls
	rec.LookupStructs += carry.LookupStructs
	rec.LookupMismatches += carry.LookupMismatches
	rec.ResolveCalls += carry.ResolveCalls
	rec.ResolveStructs += carry.ResolveStructs
	rec.ResolveMismatches += carry.ResolveMismatches
	stats.Outcome = "resumed"
	stats.ConvergeTime = time.Since(start) - stats.DecodeTime
	return newRes, result, stats, nil
}

// fallback runs the cold path, front end included.
func fallback(ctx context.Context, sources []frontend.Source, cfg Config, stats *Stats) (*frontend.Result, *core.Result, *Stats, error) {
	res, result, err := Analyze(ctx, sources, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	stats.Outcome = "cold"
	return res, result, stats, nil
}

// fallbackLoaded is fallback with the front end already run.
func fallbackLoaded(ctx context.Context, res *frontend.Result, cfg Config, stats *Stats) (*frontend.Result, *core.Result, *Stats, error) {
	strat, err := cfg.strategy(res.Layout)
	if err != nil {
		return nil, nil, nil, err
	}
	stats.Outcome = "cold"
	return res, core.AnalyzeContext(ctx, res.IR, strat, cfg.coreOptions()), stats, nil
}
