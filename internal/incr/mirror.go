package incr

import (
	"repro/internal/cc/types"
	"repro/internal/core"
	"repro/internal/ir"
)

// The statement mirror replays every old statement against the old FINAL
// points-to sets, reproducing exactly the strategy calls the dense solver
// makes for it (initStmt's Copy resolution and applyRule's per-fact rule
// firings — the shapes here must stay in lockstep with core/solver.go).
// Because the solver's watcher replay is single-fire, each (statement,
// fact ∈ final set) pair fires exactly once in any schedule, so one pass
// over the final sets reproduces per statement:
//
//   - counts: the statement's exact contribution to the Figure-3 counters
//     (logical Lookup/Resolve calls — a pure function of (program,
//     strategy), not of the schedule);
//   - watched: the cells whose facts fire the statement;
//   - writes: the cells its facts and copy edges land in;
//   - edges: the copy edges it installs (attributed per statement, unlike
//     the solver's first-installer deduplication);
//
// plus one global read → write dependency index shared by every resume's
// taint closure.
//
// Taint semantics (unchanged from the original walker): a retracted
// statement's write set seeds the taint; the closure of the seeds over the
// dependency edges is the tainted set — every untainted cell's facts have a
// derivation using only retained statements, so they are members of the new
// fixpoint and safe to seed. The index deliberately includes retracted
// statements' dependency edges too: their write sides are all taint seeds
// already, so the extra edges never change the closure, and a single
// prebuilt index makes each resume's taint pass proportional to the tainted
// region instead of the whole program. Replaying against final sets
// over-approximates every intermediate state the real solve passed through
// (sets only grow), so no derivation is missed; SCC condensation needs no
// extra edges because cycle members' final sets are equal and cycle edges
// all come from the statements walked here.
//
// Skip-eligibility (resume.go) additionally uses watched/writes/edges: a
// retained statement whose watched and written cells are all untainted,
// matched and fully seeded — and whose edges map onto the new program — had
// ALL of its work performed by the captured solve, so the warm solver can
// suppress its replay, restore its edges, and carry its counts over.

// stmtArt is one statement's mirror artifact.
type stmtArt struct {
	counts  core.Recorder // Figure-3 contribution; cache fields stay zero
	watched []core.Cell
	writes  []core.Cell
	edges   []core.Edge
}

// artifacts is the per-graph mirror state, built lazily once per Graph.
type artifacts struct {
	byStmt map[*ir.Stmt]*stmtArt
	deps   map[core.Cell][]core.Cell // read → writes, all statements
	exact  bool                      // strategy emits only exact edges (skip-eligible)
}

// tainted computes the taint closure for one retraction: seeds are the
// write sets of retracted statements, closed over the dependency index.
func (a *artifacts) tainted(prog *ir.Program, retracted func(*ir.Stmt) bool) map[core.Cell]bool {
	tainted := make(map[core.Cell]bool)
	var queue []core.Cell
	add := func(c core.Cell) {
		if !tainted[c] {
			tainted[c] = true
			queue = append(queue, c)
		}
	}
	for _, st := range prog.Stmts {
		if !retracted(st) {
			continue
		}
		if art := a.byStmt[st]; art != nil {
			for _, w := range art.writes {
				add(w)
			}
		}
	}
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range a.deps[c] {
			add(w)
		}
	}
	return tainted
}

type mirror struct {
	prog  *ir.Program
	strat core.Strategy
	pts   map[core.Cell][]core.Cell

	arts   map[*ir.Stmt]*stmtArt
	deps   map[core.Cell][]core.Cell
	depSet map[[2]core.Cell]bool

	cur      *stmtArt
	writeSet map[core.Cell]bool
	edgeSeen map[core.Edge]bool
}

// buildArtifacts runs the mirror: strat must be a fresh throwaway instance
// configured identically to the captured solve (its recorder and memo state
// get dirtied here and must never leak into a counted solve).
func buildArtifacts(prog *ir.Program, strat core.Strategy, pts map[core.Cell][]core.Cell) *artifacts {
	m := &mirror{
		prog:     prog,
		strat:    strat,
		pts:      pts,
		arts:     make(map[*ir.Stmt]*stmtArt, len(prog.Stmts)),
		deps:     make(map[core.Cell][]core.Cell),
		depSet:   make(map[[2]core.Cell]bool),
		writeSet: make(map[core.Cell]bool),
		edgeSeen: make(map[core.Edge]bool),
	}
	for _, st := range prog.Stmts {
		m.stmt(st)
	}
	return &artifacts{byStmt: m.arts, deps: m.deps, exact: core.ExactEdges(strat)}
}

// write records a cell the current statement deposits facts into.
func (m *mirror) write(c core.Cell) {
	if !m.writeSet[c] {
		m.writeSet[c] = true
		m.cur.writes = append(m.cur.writes, c)
	}
}

// dep records a read → write dependency in the global index.
func (m *mirror) dep(r, w core.Cell) {
	key := [2]core.Cell{r, w}
	if !m.depSet[key] {
		m.depSet[key] = true
		m.deps[r] = append(m.deps[r], w)
	}
}

// edge records one resolved copy edge (deduplicated per statement) along
// with its write cell and dependency.
func (m *mirror) edge(e core.Edge) {
	if !m.edgeSeen[e] {
		m.edgeSeen[e] = true
		m.cur.edges = append(m.cur.edges, e)
	}
	m.write(e.Dst)
	m.dep(e.Src, e.Dst)
}

// counterDiff extracts the logical Figure-3 counters from a before/after
// recorder pair, dropping the cache split (hit/miss attribution depends on
// memo state accumulated across statements and is not carried over).
func counterDiff(before, after core.Recorder) core.Recorder {
	return core.Recorder{
		LookupCalls:       after.LookupCalls - before.LookupCalls,
		LookupStructs:     after.LookupStructs - before.LookupStructs,
		LookupMismatches:  after.LookupMismatches - before.LookupMismatches,
		ResolveCalls:      after.ResolveCalls - before.ResolveCalls,
		ResolveStructs:    after.ResolveStructs - before.ResolveStructs,
		ResolveMismatches: after.ResolveMismatches - before.ResolveMismatches,
	}
}

// stmt mirrors the solver's constraint generation for one statement.
func (m *mirror) stmt(st *ir.Stmt) {
	switch st.Op {
	case ir.OpAddrOf, ir.OpCopy, ir.OpAddrField, ir.OpLoad, ir.OpStore,
		ir.OpMemCopy, ir.OpPtrArith, ir.OpCall:
	default:
		return
	}
	if st.Op == ir.OpStore && st.Src == nil {
		return // store of a pointer-free value: no constraints
	}
	art := &stmtArt{}
	m.cur = art
	clear(m.writeSet)
	clear(m.edgeSeen)
	norm := m.strat.Normalize
	before := *m.strat.Recorder()

	switch st.Op {
	case ir.OpAddrOf:
		m.write(norm(st.Dst, nil))

	case ir.OpCopy:
		for _, e := range m.strat.Resolve(norm(st.Dst, nil), norm(st.Src, st.Path), st.Dst.Type) {
			m.edge(e)
		}

	case ir.OpAddrField:
		w, dst := norm(st.Ptr, nil), norm(st.Dst, nil)
		art.watched = []core.Cell{w}
		m.write(dst)
		m.dep(w, dst)
		for _, tgt := range m.pts[w] {
			m.strat.Lookup(pointee(st.Ptr), st.Path, tgt)
		}

	case ir.OpLoad:
		w, dst := norm(st.Ptr, nil), norm(st.Dst, nil)
		art.watched = []core.Cell{w}
		for _, tgt := range m.pts[w] {
			for _, loc := range m.strat.Lookup(pointee(st.Ptr), nil, tgt) {
				for _, e := range m.strat.Resolve(dst, loc, st.Dst.Type) {
					m.edge(e)
					m.dep(w, e.Dst)
				}
			}
		}

	case ir.OpStore:
		τ := pointee(st.Ptr)
		if τ == nil && st.Src.Type != nil {
			τ = st.Src.Type
		}
		w, src := norm(st.Ptr, nil), norm(st.Src, nil)
		art.watched = []core.Cell{w}
		for _, tgt := range m.pts[w] {
			for _, loc := range m.strat.Lookup(τ, nil, tgt) {
				for _, e := range m.strat.Resolve(loc, src, τ) {
					m.edge(e)
					m.dep(w, e.Dst)
				}
			}
		}

	case ir.OpMemCopy:
		dp, sp := norm(st.Ptr, nil), norm(st.Src, nil)
		art.watched = []core.Cell{dp, sp}
		for _, td := range m.pts[dp] {
			for _, ts := range m.pts[sp] {
				for _, e := range m.strat.Resolve(td, ts, nil) {
					m.edge(e)
					m.dep(dp, e.Dst)
					m.dep(sp, e.Dst)
				}
			}
		}

	case ir.OpPtrArith:
		w, dst := norm(st.Src, nil), norm(st.Dst, nil)
		art.watched = []core.Cell{w}
		m.write(dst)
		m.dep(w, dst)

	case ir.OpCall:
		w := norm(st.Ptr, nil)
		art.watched = []core.Cell{w}
		for _, tgt := range m.pts[w] {
			if tgt.Obj.Kind != ir.ObjFunc || tgt.Obj.Sym == nil {
				continue
			}
			fn := m.prog.FuncOf[tgt.Obj.Sym]
			if fn == nil {
				continue
			}
			for i, arg := range st.Args {
				if arg == nil {
					continue
				}
				argCell := norm(arg, nil)
				if i < len(fn.Params) && fn.Params[i] != nil {
					p := fn.Params[i]
					for _, e := range m.strat.Resolve(norm(p, nil), argCell, p.Type) {
						m.edge(e)
						m.dep(w, e.Dst)
					}
				} else if fn.Varargs != nil {
					for _, e := range m.strat.Resolve(norm(fn.Varargs, nil), argCell, arg.Type) {
						m.edge(e)
						m.dep(w, e.Dst)
					}
				}
			}
			if fn.Retval != nil && st.Dst != nil {
				for _, e := range m.strat.Resolve(norm(st.Dst, nil), norm(fn.Retval, nil), st.Dst.Type) {
					m.edge(e)
					m.dep(w, e.Dst)
				}
			}
		}
	}

	art.counts = counterDiff(before, *m.strat.Recorder())
	m.arts[st] = art
}

// pointee mirrors the solver's pointeeType: the declared pointee of a
// pointer (or array-of-pointer) object.
func pointee(o *ir.Object) *types.Type {
	if o == nil || o.Type == nil {
		return nil
	}
	t := o.Type
	for t.Kind == types.Array {
		t = t.Elem
	}
	if t.Kind == types.Ptr {
		return t.Elem
	}
	return nil
}
