package incr

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Delta is the unit-level difference between two programs: which functions
// (or the global pseudo-unit) appeared, disappeared, or changed encoding.
// Unit names are function symbol uniques plus GlobalUnit; each list is
// sorted.
type Delta struct {
	Added   []string
	Removed []string
	Changed []string
}

// Empty reports whether the two programs fingerprint identically.
func (d Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Changed) == 0
}

func (d Delta) String() string {
	return fmt.Sprintf("delta{+%d -%d ~%d}", len(d.Added), len(d.Removed), len(d.Changed))
}

// Diff fingerprints both programs and returns their unit-level delta.
func Diff(old, new *ir.Program) Delta {
	return diffUnits(fingerprints(old), fingerprints(new))
}

func diffUnits(old, new map[string]string) Delta {
	var d Delta
	for name, enc := range old {
		nenc, ok := new[name]
		switch {
		case !ok:
			d.Removed = append(d.Removed, name)
		case nenc != enc:
			d.Changed = append(d.Changed, name)
		}
	}
	for name := range new {
		if _, ok := old[name]; !ok {
			d.Added = append(d.Added, name)
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.Strings(d.Changed)
	return d
}

// dirty returns the set of unit names whose OLD statements must be
// retracted: changed and removed units.
func (d Delta) dirty() map[string]bool {
	m := make(map[string]bool, len(d.Changed)+len(d.Removed))
	for _, n := range d.Changed {
		m[n] = true
	}
	for _, n := range d.Removed {
		m[n] = true
	}
	return m
}

// unitOf names the unit a statement belongs to.
func unitOf(st *ir.Stmt) string {
	if st.Fn == nil {
		return GlobalUnit
	}
	return st.Fn.Sym.Unique
}
