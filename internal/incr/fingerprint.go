package incr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cc/types"
	"repro/internal/ir"
)

// Partitioned fingerprinting: every function is rendered into a canonical
// string that is a pure function of its analysis-relevant IR — statement
// ops, operand identities, field paths and structural types — and nothing
// positional. Two parses of a program where a unit's source is untouched
// produce the same encoding for it even when OTHER units were edited, which
// is what lets Diff localize an edit:
//
//   - Objects with stable link-time names (file-scope variables and
//     functions, including file statics) are rendered by their unique
//     symbol name.
//   - Everything else — locals, parameters, temps, heap and string
//     pseudo-objects, function-scope statics (whose sema uniques embed a
//     global symbol counter) — is rendered by its role (param index,
//     retval, varargs) or by a per-unit first-use index, never by name or
//     source position. The encoding is alpha-equivalent: renaming a local
//     or shifting line numbers does not change it.
//   - Types are rendered structurally (typeFP), expanding struct/union
//     bodies recursively, so editing a struct declaration changes the
//     fingerprint of every unit that touches the type even though the
//     type's NAME is all that appears at the use sites.
//
// Global initializers form one pseudo-unit (GlobalUnit) containing their
// statements in program order plus the stable-named object roster; a
// changed global initializer retracts like a changed function.

// GlobalUnit names the pseudo-unit that carries global-initializer
// statements and the global object roster.
const GlobalUnit = "<globals>"

// stableNamed reports whether the object's symbol is a stable link-time
// anchor: file-scope (Global) and free of the "@id" suffix sema appends to
// scope-local uniques (function-scope statics are Global but carry it).
func stableNamed(o *ir.Object) bool {
	return o != nil && o.Sym != nil && o.Sym.Global && !strings.Contains(o.Sym.Unique, "@")
}

// writeTypeFP renders t structurally: kind, qualifiers, pointee/element,
// signature, and full struct/union field lists (name, bit-width, field
// type). Named-record recursion is cut by rendering only the tag on
// re-entry; the guard is removed on exit so sibling uses still expand.
// Typedef spellings and enum tags are cosmetic to the analysis and are
// excluded.
func writeTypeFP(sb *strings.Builder, t *types.Type, open map[*types.Record]bool) {
	if t == nil {
		sb.WriteByte('_')
		return
	}
	fmt.Fprintf(sb, "k%d", int(t.Kind))
	if t.Qual != 0 {
		fmt.Fprintf(sb, "q%d", int(t.Qual))
	}
	if t.Kind == types.Array {
		fmt.Fprintf(sb, "[%d]", t.ArrayLen)
	}
	if t.Elem != nil {
		sb.WriteByte('*')
		writeTypeFP(sb, t.Elem, open)
	}
	if r := t.Record; r != nil {
		if open[r] {
			fmt.Fprintf(sb, "{^%s.%v}", r.Tag, r.Union)
			return
		}
		open[r] = true
		fmt.Fprintf(sb, "{%s.%v.%v", r.Tag, r.Union, r.Complete)
		for _, f := range r.Fields {
			fmt.Fprintf(sb, " %s.%d:", f.Name, f.BitWidth)
			writeTypeFP(sb, f.Type, open)
		}
		sb.WriteByte('}')
		delete(open, r)
	}
	if sig := t.Sig; sig != nil {
		sb.WriteByte('(')
		for i := range sig.Params {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeTypeFP(sb, sig.Params[i].Type, open)
		}
		if sig.Variadic {
			sb.WriteString(",...")
		}
		sb.WriteByte(')')
		writeTypeFP(sb, sig.Result, open)
	}
}

func typeFP(t *types.Type) string {
	var sb strings.Builder
	writeTypeFP(&sb, t, make(map[*types.Record]bool))
	return sb.String()
}

// typeMemo caches top-level type renderings by *types.Type identity. Every
// operand occurrence renders its full structural type, and one parse shares
// type pointers across all occurrences, so memoizing the TOP-LEVEL render
// (always entered with an empty open-record map, hence context-free) turns
// fingerprinting from O(occurrences × type size) into O(distinct types).
// Nested writeTypeFP recursion deliberately bypasses the cache: inside an
// open record the rendering of a self-referential type depends on the open
// set, so only whole fresh renders are safe to reuse. One memo serves one
// fingerprints() call; type pointers are not stable across parses.
type typeMemo map[*types.Type]string

func (m typeMemo) fp(t *types.Type) string {
	if s, ok := m[t]; ok {
		return s
	}
	var sb strings.Builder
	writeTypeFP(&sb, t, make(map[*types.Record]bool))
	s := sb.String()
	m[t] = s
	return s
}

// encoder renders one unit's statements. roles pre-names the unit's
// parameter/retval/varargs objects; anon assigns first-use indices to every
// other non-stable object.
type encoder struct {
	sb    strings.Builder
	types typeMemo
	roles map[*ir.Object]string
	anon  map[*ir.Object]int
}

func newEncoder(fn *ir.Func, types typeMemo) *encoder {
	e := &encoder{types: types, roles: make(map[*ir.Object]string), anon: make(map[*ir.Object]int)}
	if fn == nil {
		return e
	}
	for i, p := range fn.Params {
		if p != nil {
			e.roles[p] = fmt.Sprintf("p%d", i)
		}
	}
	if fn.Retval != nil {
		e.roles[fn.Retval] = "r"
	}
	if fn.Varargs != nil {
		e.roles[fn.Varargs] = "v"
	}
	return e
}

// obj and stmt are the fingerprint hot path (one call per operand
// occurrence program-wide), so they append with strconv instead of
// fmt.Fprintf's reflection.
func (e *encoder) obj(o *ir.Object) {
	switch {
	case o == nil:
		e.sb.WriteByte('-')
		return
	case stableNamed(o):
		e.sb.WriteByte('g')
		e.sb.WriteString(strconv.Itoa(int(o.Kind)))
		e.sb.WriteByte(':')
		e.sb.WriteString(o.Sym.Unique)
		e.sb.WriteByte(':')
	default:
		if role, ok := e.roles[o]; ok {
			e.sb.WriteString(role)
			e.sb.WriteByte(':')
			break
		}
		idx, ok := e.anon[o]
		if !ok {
			idx = len(e.anon)
			e.anon[o] = idx
		}
		e.sb.WriteByte('l')
		e.sb.WriteString(strconv.Itoa(idx))
		e.sb.WriteByte('.')
		e.sb.WriteString(strconv.Itoa(int(o.Kind)))
		e.sb.WriteByte(':')
	}
	e.sb.WriteString(e.types.fp(o.Type))
}

func (e *encoder) stmt(st *ir.Stmt) {
	e.sb.WriteString(strconv.Itoa(int(st.Op)))
	e.sb.WriteByte(' ')
	e.obj(st.Dst)
	e.sb.WriteByte(' ')
	e.obj(st.Src)
	e.sb.WriteByte(' ')
	e.obj(st.Ptr)
	e.sb.WriteByte(' ')
	e.sb.WriteString(strings.Join([]string(st.Path), "."))
	e.sb.WriteByte(' ')
	if st.Cast != nil {
		e.sb.WriteString(e.types.fp(st.Cast))
	}
	for _, a := range st.Args {
		e.sb.WriteByte(' ')
		e.obj(a)
	}
	e.sb.WriteByte('\n')
}

// funcFP renders one function: header, parameter/result shape, then its
// statements in order.
func funcFP(fn *ir.Func, types typeMemo) string {
	e := newEncoder(fn, types)
	fmt.Fprintf(&e.sb, "fn %s\n", fn.Sym.Unique)
	for i, p := range fn.Params {
		if p != nil {
			fmt.Fprintf(&e.sb, "p%d %s\n", i, types.fp(p.Type))
		}
	}
	if fn.Retval != nil {
		fmt.Fprintf(&e.sb, "r %s\n", types.fp(fn.Retval.Type))
	}
	if fn.Varargs != nil {
		e.sb.WriteString("v\n")
	}
	for _, st := range fn.Stmts {
		e.stmt(st)
	}
	return e.sb.String()
}

// globalFP renders the global pseudo-unit: every statement outside any
// function (global initializers, in program order) plus the roster of
// stable-named objects with their kinds and structural types. The roster
// makes a declaration-only change (e.g. a global's type, with no code
// mentioning it yet) visible to Diff.
func globalFP(prog *ir.Program, types typeMemo) string {
	e := newEncoder(nil, types)
	e.sb.WriteString("unit <globals>\n")
	for _, st := range prog.Stmts {
		if st.Fn == nil {
			e.stmt(st)
		}
	}
	roster := make([]string, 0, len(prog.Objects))
	for _, o := range prog.Objects {
		if stableNamed(o) {
			roster = append(roster, fmt.Sprintf("obj %d %s %s\n", int(o.Kind), o.Sym.Unique, types.fp(o.Type)))
		}
	}
	sort.Strings(roster)
	for _, line := range roster {
		e.sb.WriteString(line)
	}
	return e.sb.String()
}

// fingerprints keys every unit of the program by its canonical encoding.
func fingerprints(prog *ir.Program) map[string]string {
	types := make(typeMemo)
	units := make(map[string]string, len(prog.Funcs)+1)
	for _, fn := range prog.Funcs {
		units[fn.Sym.Unique] = funcFP(fn, types)
	}
	units[GlobalUnit] = globalFP(prog, types)
	return units
}
