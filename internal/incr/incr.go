// Package incr is the incremental re-analysis subsystem: it keeps the
// solved state of one analysis run as a persistent, resumable constraint
// graph, diffs a re-submitted program against it at function granularity,
// and re-solves only the slice the edit can reach.
//
// The pipeline has three stages:
//
//  1. Partitioned fingerprinting (fingerprint.go): every function — plus a
//     pseudo-unit for global initializers — is keyed by a canonical,
//     position-independent encoding of its IR. Diff reduces an edit to the
//     set of added/removed/changed units.
//  2. Graph capture and snapshots (incr.go, snapshot.go): Capture folds a
//     completed dense solve into per-cell fact lists in first-interned
//     order; WriteSnapshot persists that state in the checked `ptrincr1`
//     container (sha256 + length header, like the store's result spill) so
//     it survives a daemon restart.
//  3. Delta solve (match.go, taint.go, resume.go): Resume matches the old
//     program's objects onto the new one, retracts the constraints of
//     changed/removed units by computing the taint closure of the cells
//     they wrote, seeds a fresh solver with the surviving facts, and runs
//     the ordinary fixpoint to re-convergence. Any situation the taint
//     proof does not cover falls back to a cold solve — counted, never
//     wrong.
//
// The correctness contract is exact: a resumed solve produces byte-identical
// results (fact dumps, TotalFacts, Figure-3 counters) to a cold solve of the
// edited program. The solver's single-fire watcher replay (core.Analyze*)
// makes those counters a pure function of (program, strategy), which is what
// lets a warm schedule reproduce them.
package incr

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cc/layout"
	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/metrics"
)

// Config pins everything that affects a graph's identity: the strategy and
// ABI plus every option that changes solver output. A Resume under a config
// differing from the captured one falls back to a cold solve.
//
// Deliberately absent: timeouts, parallelism and demand budgets (they never
// change an answer), NoPrepass/TrackPeakMem (the offline prepass and set
// interner are a cold-solve-only optimization — warm resumes always run
// without them, so the knob cannot differentiate graphs), resource Limits
// (an incomplete solve is not resumable, so graphs are only captured from
// unlimited runs) and FlagMisuse (misuse records are a whole-run observable
// the delta path cannot reproduce; the facade never captures graphs for
// flagging configs).
type Config struct {
	// Strategy names the analysis instance ("common-initial-seq" when
	// empty); ABI names the layout ("lp64" when empty).
	Strategy string `json:"strategy"`
	ABI      string `json:"abi"`

	ModelMainArgs      bool `json:"model_main_args,omitempty"`
	NoLibSummaries     bool `json:"no_lib_summaries,omitempty"`
	CloneAllocWrappers bool `json:"clone_alloc_wrappers,omitempty"`
	NoPtrArithSmear    bool `json:"no_ptr_arith_smear,omitempty"`
	NoMemoization      bool `json:"no_memoization,omitempty"`
	NoCycleElim        bool `json:"no_cycle_elim,omitempty"`
}

// Resolved returns the config with the default strategy/ABI names filled
// in — the identity a captured graph actually carries.
func (c Config) Resolved() Config { return c.withDefaults() }

// withDefaults resolves the empty strategy/ABI names so that configs
// compare by meaning, not spelling.
func (c Config) withDefaults() Config {
	if c.Strategy == "" {
		c.Strategy = "common-initial-seq"
	}
	if c.ABI == "" {
		c.ABI = "lp64"
	}
	return c
}

// frontend maps the config onto front-end options.
func (c Config) frontend() (frontend.Options, error) {
	var abi *layout.ABI
	switch c.withDefaults().ABI {
	case "lp64":
		abi = layout.LP64
	case "ilp32":
		abi = layout.ILP32
	case "packed1":
		abi = layout.Packed1
	default:
		return frontend.Options{}, fmt.Errorf("incr: unknown ABI %q (want lp64, ilp32 or packed1)", c.ABI)
	}
	return frontend.Options{
		ABI:                abi,
		ModelMainArgs:      c.ModelMainArgs,
		NoLibSummaries:     c.NoLibSummaries,
		CloneAllocWrappers: c.CloneAllocWrappers,
	}, nil
}

// coreOptions maps the config onto solver options. Limits stay zero: the
// incremental path only handles complete solves.
func (c Config) coreOptions() core.Options {
	return core.Options{
		NoPtrArithSmear: c.NoPtrArithSmear,
		NoCycleElim:     c.NoCycleElim,
	}
}

// strategy builds a fresh instance for the config over the given layout
// engine.
func (c Config) strategy(lay *layout.Engine) (core.Strategy, error) {
	s := metrics.NewStrategy(c.withDefaults().Strategy, lay)
	if s == nil {
		return nil, fmt.Errorf("incr: unknown strategy %q", c.Strategy)
	}
	if c.NoMemoization {
		core.SetMemoization(s, false)
	}
	return s, nil
}

// Graph is the persistent constraint-graph state of one completed solve:
// the sources and parsed program it came from, the per-unit fingerprints,
// and every cell's final points-to set in the order the solver first
// interned the cells (which keeps resume seeding deterministic).
//
// The union-find condensation is deliberately NOT serialized — the
// materialized per-cell sets fold it in (merged members carry their
// representative's full union), and cycle condensation is re-discovered
// online. The solved graph's watcher/copy edges and per-statement rule
// work ARE part of the persistent state, but in derived form: because the
// solver's single-fire replay makes them a pure function of (program,
// final sets, strategy), the statement mirror (mirror.go) reconstructs
// them exactly from the fact lists on first use — per-statement counter
// contributions, copy-edge lists and the taint dependency index — so the
// ptrincr1 container stays small while Resume still skips the replay work
// the captured solve already performed.
type Graph struct {
	cfg     Config
	sources []frontend.Source
	res     *frontend.Result
	units   map[string]string
	order   []core.Cell
	facts   map[core.Cell][]core.Cell

	artOnce sync.Once
	art     *artifacts
	artErr  error
}

// artifacts returns the graph's mirror artifacts, building them on first
// use (one replay of the statements against the final sets, roughly the
// cost of the original solve — paid once per resident graph, not per
// Resume). Safe for concurrent use; the Graph must not be copied.
func (g *Graph) artifacts() (*artifacts, error) {
	g.artOnce.Do(func() {
		// The mirror dirties its strategy's recorder and memo, so it gets
		// a throwaway instance over the captured layout.
		strat, err := g.cfg.strategy(layout.New(g.res.Layout.ABI()))
		if err != nil {
			g.artErr = err
			return
		}
		g.art = buildArtifacts(g.res.IR, strat, g.facts)
	})
	return g.art, g.artErr
}

// Config returns the configuration the graph was captured under.
func (g *Graph) Config() Config { return g.cfg }

// Sources returns the translation units the graph was captured from.
func (g *Graph) Sources() []frontend.Source { return g.sources }

// NumCells returns the number of cells holding facts.
func (g *Graph) NumCells() int { return len(g.order) }

// NumFacts returns the total number of persisted points-to facts.
func (g *Graph) NumFacts() int {
	n := 0
	for _, ts := range g.facts {
		n += len(ts)
	}
	return n
}

// Capture folds a completed solve into a resumable Graph. The result must
// come from the dense solver (core.Analyze*), must have reached fixpoint,
// and must have been produced under cfg over exactly these sources;
// violations are errors, not fallbacks, because a miscaptured graph would
// poison every later Resume.
func Capture(sources []frontend.Source, cfg Config, res *frontend.Result, result *core.Result) (*Graph, error) {
	cfg = cfg.withDefaults()
	if result.Incomplete != nil {
		return nil, fmt.Errorf("incr: cannot capture an incomplete solve (%s)", result.Incomplete.Reason)
	}
	if name := result.Strategy.Name(); name != cfg.Strategy {
		return nil, fmt.Errorf("incr: result solved under %q, config says %q", name, cfg.Strategy)
	}
	cells, redirect, sets, ok := result.DenseState()
	if !ok {
		return nil, fmt.Errorf("incr: reference-solver results have no dense state to capture")
	}
	rep := func(id core.CellID) core.CellID {
		for redirect != nil && redirect[id] != id {
			id = redirect[id]
		}
		return id
	}
	g := &Graph{
		cfg:     cfg,
		sources: append([]frontend.Source(nil), sources...),
		res:     res,
		units:   fingerprints(res.IR),
		facts:   make(map[core.Cell][]core.Cell),
	}
	for i := range cells {
		set := sets[rep(core.CellID(i))]
		if len(set) == 0 {
			continue
		}
		targets := make([]core.Cell, len(set))
		for j, id := range set {
			targets[j] = cells[id]
		}
		g.order = append(g.order, cells[i])
		g.facts[cells[i]] = targets
	}
	return g, nil
}

// Analyze is the subsystem's cold path: front end plus dense solve under
// cfg. Resume falls back to it whenever a retraction cannot be proven
// safe, and tests use it as the oracle.
func Analyze(ctx context.Context, sources []frontend.Source, cfg Config) (*frontend.Result, *core.Result, error) {
	fopts, err := cfg.frontend()
	if err != nil {
		return nil, nil, err
	}
	res, err := frontend.Load(sources, fopts)
	if err != nil {
		return nil, nil, err
	}
	strat, err := cfg.strategy(res.Layout)
	if err != nil {
		return nil, nil, err
	}
	return res, core.AnalyzeContext(ctx, res.IR, strat, cfg.coreOptions()), nil
}

// Solve is Analyze followed by Capture: one call takes sources to a
// resumable Graph plus its result.
func Solve(ctx context.Context, sources []frontend.Source, cfg Config) (*Graph, *core.Result, error) {
	res, result, err := Analyze(ctx, sources, cfg)
	if err != nil {
		return nil, nil, err
	}
	if result.Incomplete != nil {
		return nil, result, fmt.Errorf("incr: solve stopped early (%s)", result.Incomplete.Reason)
	}
	g, err := Capture(sources, cfg, res, result)
	if err != nil {
		return nil, result, err
	}
	return g, result, nil
}
