package server

import (
	"sync"

	"repro/pointsto"
)

// graphCache keeps persistent constraint graphs (pointsto.Graph) keyed by
// the same content hash the result cache uses, so a later /v1/analyze can
// name one as its base and solve the edited program warm. Graphs are
// registered after successful resumable solves and evicted count-based LRU:
// a graph pins its front-end result and materialized fact lists, so the
// bound is on residency, not bytes. Unlike sessions there is no creation
// flight — graphs are only ever stored by a solve that already ran.
type graphCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*graphEntry

	clock   int64
	stored  int64
	evicted int64
}

type graphEntry struct {
	g    *pointsto.Graph
	tick int64
}

func newGraphCache(max int) *graphCache {
	if max <= 0 {
		max = 64
	}
	return &graphCache{max: max, entries: make(map[string]*graphEntry)}
}

// get returns the resident graph for key, refreshing its LRU position.
func (c *graphCache) get(key string) (*pointsto.Graph, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.clock++
	e.tick = c.clock
	return e.g, true
}

// put stores (or refreshes) the graph for key, evicting LRU entries beyond
// the cap.
func (c *graphCache) put(key string, g *pointsto.Graph) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	if e, ok := c.entries[key]; ok {
		e.g, e.tick = g, c.clock
		return
	}
	c.entries[key] = &graphEntry{g: g, tick: c.clock}
	c.stored++
	for len(c.entries) > c.max {
		var oldestKey string
		var oldest int64
		first := true
		for k, e := range c.entries {
			if first || e.tick < oldest {
				oldestKey, oldest, first = k, e.tick, false
			}
		}
		delete(c.entries, oldestKey)
		c.evicted++
	}
}

// counts snapshots the cache gauges for /varz.
func (c *graphCache) counts() (resident, stored, evicted int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(len(c.entries)), c.stored, c.evicted
}
