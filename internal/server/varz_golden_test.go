package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// cyclicProgram contains a two-variable copy cycle, so solving it collapses
// cells — through the offline prepass by default, or through online cycle
// elimination under NoPrepass — and populates the wave counters in /varz.
const cyclicProgram = `
int a, b;
int *p, *q;
int main(void) {
	p = &a;
	q = &b;
	p = q;
	q = p;
	return *p;
}
`

// jsonShape renders the key structure of a decoded JSON document: one
// sorted, indented line per key, with values reduced to their JSON type.
// Map-valued fields with dynamic keys (endpoints, histogram buckets) keep
// their keys — the test controls the traffic, so they are deterministic.
func jsonShape(sb *strings.Builder, v any, key, indent string) {
	switch t := v.(type) {
	case map[string]any:
		fmt.Fprintf(sb, "%s%s: object\n", indent, key)
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			jsonShape(sb, t[k], k, indent+"  ")
		}
	case []any:
		fmt.Fprintf(sb, "%s%s: array\n", indent, key)
	case string:
		fmt.Fprintf(sb, "%s%s: string\n", indent, key)
	case float64:
		fmt.Fprintf(sb, "%s%s: number\n", indent, key)
	case bool:
		fmt.Fprintf(sb, "%s%s: bool\n", indent, key)
	default:
		fmt.Fprintf(sb, "%s%s: null\n", indent, key)
	}
}

// TestVarzShapeGolden pins the /varz JSON shape — every key and its JSON
// type, including the solver's SCC/wave counters — against a checked-in
// golden file. Values are intentionally not compared (uptimes and latencies
// vary); a key appearing, disappearing or changing type is the contract
// break this test catches. Regenerate after intentional changes with:
//
//	UPDATE_VARZ_GOLDEN=1 go test ./internal/server -run TestVarzShapeGolden
func TestVarzShapeGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := AnalyzeRequest{Sources: []SourceJSON{{Name: "cyclic.c", Text: cyclicProgram}}}
	if resp, raw := postJSON(t, ts.URL+"/v1/analyze", req); resp.StatusCode != 200 {
		t.Fatalf("analyze: status %d: %s", resp.StatusCode, raw)
	}

	v := varz(t, ts.URL)
	if v.Solver.Waves == 0 {
		t.Errorf("cyclic program did not run waves: %+v", v.Solver)
	}
	if v.Solver.SCCsFound == 0 && v.Solver.PrepCollapsed == 0 {
		t.Errorf("cyclic program collapsed nothing: %+v", v.Solver)
	}

	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	jsonShape(&sb, doc, "varz", "")
	got := []byte(sb.String())

	golden := filepath.Join("testdata", "varz_shape.golden")
	if os.Getenv("UPDATE_VARZ_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_VARZ_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("/varz shape drifted from %s\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}
