package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/store"
	"repro/pointsto"
)

const tinyProgram = `
int g;
int *p = &g;
int *q = &g;
int main(void) { return *p + *q; }
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		st, err := store.New(0, "")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func getJSON(t *testing.T, url string, dst any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if dst != nil {
		if err := json.Unmarshal(raw, dst); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, raw)
		}
	}
	return resp
}

func varz(t *testing.T, base string) Varz {
	t.Helper()
	var v Varz
	getJSON(t, base+"/varz", &v)
	return v
}

// TestLoadSingleflight hammers one program from 64 goroutines and asserts
// exactly one solver run (singleflight) and byte-identical responses.
func TestLoadSingleflight(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := AnalyzeRequest{Sources: []SourceJSON{{Name: "tiny.c", Text: tinyProgram}}}

	const n = 64
	bodies := make([][]byte, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, raw := postJSON(t, ts.URL+"/v1/analyze", req)
			statuses[i] = resp.StatusCode
			bodies[i] = raw
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d got a different response:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	v := varz(t, ts.URL)
	if v.Solver.Solves != 1 {
		t.Errorf("solver ran %d times under %d concurrent requests, want exactly 1", v.Solver.Solves, n)
	}
	if v.Cache.Solves != 1 {
		t.Errorf("cache counted %d solves, want 1", v.Cache.Solves)
	}
	if v.Endpoints["analyze"].Requests != n {
		t.Errorf("analyze endpoint counted %d requests, want %d", v.Endpoints["analyze"].Requests, n)
	}
}

// slowSources is a synthetic workload big enough that its solve reliably
// outlives a 1 ms request deadline.
func slowSources() []SourceJSON {
	p := corpus.DefaultGenParams()
	p.NStructs = 8
	p.NFields = 6
	p.NObjects = 5
	p.NDerefs = 3000
	p.CastDensity = 60
	var out []SourceJSON
	for _, s := range corpus.Generate(p) {
		out = append(out, SourceJSON{Name: s.Name, Text: s.Text})
	}
	return out
}

// TestCancelMidSolveReturns499 asserts that a request whose deadline
// expires mid-solve gets a 499 and that the abandoned partial result does
// not poison the cache.
func TestCancelMidSolveReturns499(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := AnalyzeRequest{
		Sources: slowSources(),
		Limits:  LimitsJSON{TimeoutMS: 1},
	}
	resp, raw := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != StatusClientClosedRequest {
		t.Fatalf("status = %d, want 499: %s", resp.StatusCode, raw)
	}
	var errResp ErrorResponse
	if err := json.Unmarshal(raw, &errResp); err != nil {
		t.Fatalf("decode error body: %v\n%s", err, raw)
	}
	if errResp.Kind != "canceled" || errResp.Key == "" {
		t.Fatalf("error body = %+v, want kind=canceled with a key", errResp)
	}

	// The canceled solve must not be cached: querying its key is a 404 and
	// the cache holds no entries.
	resp = getJSON(t, ts.URL+"/v1/pointsto?key="+errResp.Key+"&var=x", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("canceled result was cached: pointsto status %d, want 404", resp.StatusCode)
	}
	// The 499 is written at the request deadline while the abandoned solve
	// goroutine is still winding down, so poll for its canceled counter.
	deadline := time.Now().Add(10 * time.Second)
	v := varz(t, ts.URL)
	for v.Solver.Canceled == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		v = varz(t, ts.URL)
	}
	if v.Solver.Canceled == 0 {
		t.Errorf("solver canceled counter = 0, want > 0")
	}
	if v.Cache.Entries != 0 {
		t.Errorf("cache entries = %d after canceled solve, want 0", v.Cache.Entries)
	}
	if v.Endpoints["analyze"].Canceled != 1 {
		t.Errorf("analyze 499 counter = %d, want 1", v.Endpoints["analyze"].Canceled)
	}
}

// TestEndToEnd is the acceptance flow: start the daemon on a real listener,
// POST a corpus program, query pointsto and alias, verify the second
// identical POST is a cache hit via /varz, then shut down (the SIGTERM
// path) and assert a clean drain.
func TestEndToEnd(t *testing.T) {
	st, err := store.New(0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Store: st})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background()) // cancel == SIGTERM (cmd wires signal.NotifyContext)
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, l, 5*time.Second) }()
	base := "http://" + l.Addr().String()

	// Liveness.
	if resp := getJSON(t, base+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Analyze a corpus program.
	resp, raw := postJSON(t, base+"/v1/analyze", AnalyzeRequest{Corpus: "anagram"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d: %s", resp.StatusCode, raw)
	}
	var rep ReportJSON
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if !store.ValidKey(rep.Key) || rep.TotalFacts == 0 || rep.Incomplete {
		t.Fatalf("implausible report: %+v", rep)
	}

	// Query points-to and alias against the returned key; an unknown
	// variable is a 404, distinguishable from a known pointer that points
	// nowhere.
	var pt QueryResultJSON
	if resp := getJSON(t, base+"/v1/pointsto?key="+rep.Key+"&var=main", &pt); resp.StatusCode != http.StatusOK {
		t.Fatalf("pointsto status %d", resp.StatusCode)
	}
	if pt.Var != "main" || pt.Op != OpPointsTo {
		t.Errorf("main should be a known name: %+v", pt)
	}
	if resp := getJSON(t, base+"/v1/pointsto?key="+rep.Key+"&var=no_such_var", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown var: status %d, want 404", resp.StatusCode)
	}
	var al QueryResultJSON
	if resp := getJSON(t, base+"/v1/alias?key="+rep.Key+"&a=main&b=main", &al); resp.StatusCode != http.StatusOK {
		t.Fatalf("alias status %d", resp.StatusCode)
	}

	// A second identical POST must be a cache hit: same body, no new solve.
	before := varz(t, base)
	resp2, raw2 := postJSON(t, base+"/v1/analyze", AnalyzeRequest{Corpus: "anagram"})
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(raw, raw2) {
		t.Fatalf("second POST: status %d, identical=%v", resp2.StatusCode, bytes.Equal(raw, raw2))
	}
	after := varz(t, base)
	if after.Solver.Solves != before.Solver.Solves {
		t.Errorf("second POST re-solved (solves %d -> %d)", before.Solver.Solves, after.Solver.Solves)
	}
	if after.Cache.Hits <= before.Cache.Hits {
		t.Errorf("second POST was not a cache hit (hits %d -> %d)", before.Cache.Hits, after.Cache.Hits)
	}
	if after.Cache.DiskWrites == 0 {
		t.Errorf("spill directory configured but nothing was spilled")
	}

	// SIGTERM: drain cleanly.
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v, want clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after shutdown")
	}
}

// TestShutdownDrainsInflightSolve asserts the drain window lets a running
// solve finish: a request in flight when shutdown begins still completes
// with a 200.
func TestShutdownDrainsInflightSolve(t *testing.T) {
	st, err := store.New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Store: st})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, l, 30*time.Second) }()
	base := "http://" + l.Addr().String()

	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 1)
	go func() {
		resp, raw := postJSON(t, base+"/v1/analyze", AnalyzeRequest{Sources: slowSources()})
		results <- result{resp.StatusCode, raw}
	}()

	// Begin shutdown as soon as the solve is in flight (or, if it finished
	// very fast, after it completed — then the request trivially drained).
	deadline := time.Now().Add(10 * time.Second)
	for st.Stats().Inflight == 0 && st.Stats().Solves == 0 {
		if time.Now().After(deadline) {
			t.Fatal("solve never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	r := <-results
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request finished with %d during drain, want 200: %s", r.status, r.body)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v, want nil after draining the in-flight solve", err)
	}
}

func TestFaultTaxonomyMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Parse fault → 422.
	resp, raw := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Sources: []SourceJSON{{Name: "bad.c", Text: "int main( {"}}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("parse error: status %d, want 422: %s", resp.StatusCode, raw)
	}
	var e ErrorResponse
	json.Unmarshal(raw, &e)
	if e.Kind != "parse" && e.Kind != "sema" {
		t.Errorf("parse error kind = %q", e.Kind)
	}

	// Usage errors → 400.
	for _, body := range []AnalyzeRequest{
		{},                                     // no sources
		{Corpus: "no-such-program"},            // unknown corpus entry
		{Corpus: "anagram", Strategy: "bogus"}, // unknown instance
	} {
		resp, raw := postJSON(t, ts.URL+"/v1/analyze", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400: %s", body, resp.StatusCode, raw)
		}
	}

	// Unknown/malformed keys.
	if resp := getJSON(t, ts.URL+"/v1/pointsto?key="+strings.Repeat("a", 64)+"&var=x", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown key: status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/pointsto?key=zzz&var=x", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed key: status %d, want 400", resp.StatusCode)
	}
}

// TestLimitCeilingClamp: a server-wide step ceiling turns an unlimited
// request into a 200 with incomplete:true — the limit taxonomy is not an
// HTTP error — and an over-ceiling request is clamped to the same key.
func TestLimitCeilingClamp(t *testing.T) {
	_, ts := newTestServer(t, Config{CeilLimits: pointsto.Limits{MaxSteps: 3}})
	req := AnalyzeRequest{Sources: []SourceJSON{{Name: "tiny.c", Text: tinyProgram}}}

	resp, raw := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, raw)
	}
	var rep ReportJSON
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Incomplete || rep.Stop == nil || rep.Stop.Reason != "max-steps" {
		t.Fatalf("want incomplete max-steps report, got %+v", rep)
	}

	// Asking for more than the ceiling clamps back to it: same key, cache hit.
	req.Limits = LimitsJSON{MaxSteps: 1 << 30}
	_, raw2 := postJSON(t, ts.URL+"/v1/analyze", req)
	var rep2 ReportJSON
	if err := json.Unmarshal(raw2, &rep2); err != nil {
		t.Fatal(err)
	}
	if rep2.Key != rep.Key {
		t.Errorf("over-ceiling request got key %s, want clamped key %s", rep2.Key, rep.Key)
	}
	if v := varz(t, ts.URL); v.Solver.Solves != 1 {
		t.Errorf("clamped request re-solved: %d solves", v.Solver.Solves)
	}
}

// TestCompare runs one casting program under all four instances and checks
// the paper-order results plus the per-variable diff section.
func TestCompare(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	prog := `
struct a { int *x; int *y; };
struct b { int *x; };
int i1, i2;
int main(void) {
	struct a s;
	s.x = &i1;
	s.y = &i2;
	struct b *pb = (struct b *)&s;
	int *through = pb->x;
	return *through;
}
`
	resp, raw := postJSON(t, ts.URL+"/v1/compare", CompareRequest{
		Sources: []SourceJSON{{Name: "cast.c", Text: prog}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var cr CompareResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(cr.Results))
	}
	wantOrder := []string{"collapse-always", "collapse-on-cast", "common-initial-seq", "offsets"}
	for i, want := range wantOrder {
		if cr.Results[i].Strategy != want {
			t.Errorf("results[%d] = %s, want %s (paper order)", i, cr.Results[i].Strategy, want)
		}
		if !store.ValidKey(cr.Results[i].Key) {
			t.Errorf("results[%d] has invalid key %q", i, cr.Results[i].Key)
		}
	}
	// Collapse-always smears s's fields while CIS keeps them apart, so at
	// least one variable must differ across instances.
	if len(cr.Diffs) == 0 {
		t.Error("expected at least one differing variable between instances")
	}
	for _, d := range cr.Diffs {
		if len(d.Sets) != 4 {
			t.Errorf("diff %q has %d instance sets, want 4", d.Var, len(d.Sets))
		}
	}
}

// TestWarmRestartServesFromSpill: a new server over a fresh store with the
// same spill directory answers queries without re-solving.
func TestWarmRestartServesFromSpill(t *testing.T) {
	dir := t.TempDir()
	st1, _ := store.New(0, dir)
	_, ts1 := newTestServer(t, Config{Store: st1})
	_, raw := postJSON(t, ts1.URL+"/v1/analyze", AnalyzeRequest{Sources: []SourceJSON{{Name: "tiny.c", Text: tinyProgram}}})
	var rep ReportJSON
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}

	st2, _ := store.New(0, dir)
	_, ts2 := newTestServer(t, Config{Store: st2})
	var pt QueryResultJSON
	if resp := getJSON(t, ts2.URL+"/v1/pointsto?key="+rep.Key+"&var=p", &pt); resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted daemon: pointsto status %d, want 200 from spill", resp.StatusCode)
	}
	if len(pt.Targets) != 1 || pt.Targets[0] != "g" {
		t.Errorf("p points to %v, want [g]", pt.Targets)
	}
	if v := varz(t, ts2.URL); v.Solver.Solves != 0 || v.Cache.DiskHits != 1 {
		t.Errorf("restart should warm from disk without solving: %+v", v)
	}
	var al QueryResultJSON
	getJSON(t, ts2.URL+"/v1/alias?key="+rep.Key+"&a=p&b=q", &al)
	if al.MayAlias == nil || !*al.MayAlias {
		t.Error("p and q both point at g; spilled snapshot must still answer alias")
	}
}

func TestVarzShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Sources: []SourceJSON{{Name: "tiny.c", Text: tinyProgram}}})
	v := varz(t, ts.URL)
	if v.Solver.Solves != 1 {
		t.Errorf("solver solves = %d, want 1", v.Solver.Solves)
	}
	// The offline prepass can collapse a tiny program to zero worklist
	// drains; either residual steps or prepass merges prove the solve ran.
	if v.Solver.Steps <= 0 && v.Solver.PrepCollapsed <= 0 {
		t.Errorf("solver did no observable work: %+v", v.Solver)
	}
	ep, ok := v.Endpoints["analyze"]
	if !ok || ep.Latency.Count != 1 {
		t.Errorf("analyze latency histogram: %+v", ep)
	}
	total := int64(0)
	for _, c := range ep.Latency.Buckets {
		total += c
	}
	if total != ep.Latency.Count {
		t.Errorf("histogram buckets sum to %d, count %d", total, ep.Latency.Count)
	}
	if v.UptimeSeconds < 0 {
		t.Errorf("uptime = %v, want >= 0", v.UptimeSeconds)
	}
}
