package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/fault"
	"repro/internal/store"
)

// kindIs reports whether err classifies as the given fault kind.
func kindIs(err error, want fault.Kind) bool {
	k, ok := fault.KindOf(err)
	return ok && k == want
}

func decodeBytes(t *testing.T, raw []byte, dst any) {
	t.Helper()
	if err := json.Unmarshal(raw, dst); err != nil {
		t.Fatalf("decode: %v\n%s", err, raw)
	}
}

// distinctProgram returns a unique tiny program per index, so concurrent
// requests address distinct store keys (no singleflight piggybacking).
func distinctProgram(i int) []SourceJSON {
	text := fmt.Sprintf("int g%d;\nint *p%d = &g%d;\nint main(void) { return *p%d; }\n", i, i, i, i)
	return []SourceJSON{{Name: fmt.Sprintf("prog%d.c", i), Text: text}}
}

// TestAdmissionAcquire unit-tests the controller: slot grant, queue wait,
// queue-full rejection, and cancellation while queued.
func TestAdmissionAcquire(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: 1})

	release1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	// Second request occupies the one queue seat.
	ctx, cancel := context.WithCancel(context.Background())
	abandoned := make(chan error, 1)
	go func() {
		_, e := a.acquire(ctx)
		abandoned <- e
	}()
	waitFor(t, func() bool { return a.queued.Load() == 1 })

	// Third request finds the queue full: immediate overload rejection.
	if _, err := a.acquire(context.Background()); !kindIs(err, fault.KindOverloaded) {
		t.Fatalf("queue-full acquire: err = %v, want KindOverloaded", err)
	}
	if a.shedQueueFull.Load() != 1 {
		t.Errorf("shedQueueFull = %d, want 1", a.shedQueueFull.Load())
	}

	// A queued request whose context dies gives up with KindCanceled.
	cancel()
	if err := <-abandoned; !kindIs(err, fault.KindCanceled) {
		t.Fatalf("canceled wait: err = %v, want KindCanceled", err)
	}
	if a.canceledWaiting.Load() != 1 {
		t.Errorf("canceledWaiting = %d, want 1", a.canceledWaiting.Load())
	}

	// The freed queue seat takes a new waiter, and releasing the slot
	// admits it.
	type result struct {
		release func()
		err     error
	}
	queued := make(chan result, 1)
	go func() {
		r, e := a.acquire(context.Background())
		queued <- result{r, e}
	}()
	waitFor(t, func() bool { return a.queued.Load() == 1 })
	release1()
	r := <-queued
	if r.err != nil {
		t.Fatalf("queued acquire after release: %v", r.err)
	}
	r.release()
	if got := a.admitted.Load(); got != 2 {
		t.Errorf("admitted = %d, want 2", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadQueueFullReturns429 storms an admission-limited server with
// 4x more concurrent distinct-program requests than slots+queue can hold.
// Every response must be 200 or a 429 carrying Retry-After (header and
// body agreeing), the shed counter must match the 429s, and every accepted
// answer must be byte-identical when re-fetched after the storm.
func TestOverloadQueueFullReturns429(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Admission: AdmissionConfig{MaxInflight: 1, MaxQueue: 2},
		Chaos:     chaos.New(chaos.Config{Seed: 1, SolveDelay: 100 * time.Millisecond, SolveDelayP: 1}),
	})

	const n = 12 // 4x the slots+queue capacity of 3
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	retryHeaders := make([]string, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, raw := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Sources: distinctProgram(i)})
			statuses[i] = resp.StatusCode
			bodies[i] = raw
			retryHeaders[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	close(start)
	wg.Wait()

	var ok200, shed429 int
	for i := 0; i < n; i++ {
		switch statuses[i] {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed429++
			var er ErrorResponse
			decodeBytes(t, bodies[i], &er)
			if er.Kind != "overloaded" {
				t.Errorf("429 kind = %q, want overloaded", er.Kind)
			}
			secs, err := strconv.Atoi(retryHeaders[i])
			if err != nil || secs < 1 || secs > 60 {
				t.Errorf("429 Retry-After header = %q, want integer in [1,60]", retryHeaders[i])
			}
			if er.RetryAfter != secs {
				t.Errorf("429 body retry_after = %d, header = %d", er.RetryAfter, secs)
			}
		default:
			t.Errorf("request %d: status %d, want 200 or 429: %s", i, statuses[i], bodies[i])
		}
	}
	if ok200 == 0 || shed429 == 0 {
		t.Fatalf("storm produced %d 200s and %d 429s; need both", ok200, shed429)
	}

	v := varz(t, ts.URL)
	adm := v.Admission.Endpoints["analyze"]
	if adm.MaxInflight != 1 || adm.MaxQueue != 2 {
		t.Errorf("admission bounds = %d/%d, want 1/2", adm.MaxInflight, adm.MaxQueue)
	}
	if adm.ShedQueueFull != int64(shed429) {
		t.Errorf("shed_queue_full = %d, want %d (the observed 429s)", adm.ShedQueueFull, shed429)
	}
	if adm.Admitted != int64(ok200) {
		t.Errorf("admitted = %d, want %d (the observed 200s)", adm.Admitted, ok200)
	}
	if adm.Inflight != 0 || adm.Queued != 0 {
		t.Errorf("gauges not drained: inflight=%d queued=%d", adm.Inflight, adm.Queued)
	}

	// Accepted answers are byte-identical to the unloaded (cache-served)
	// answer for the same program.
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			continue
		}
		resp, raw := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Sources: distinctProgram(i)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("re-fetch %d: status %d", i, resp.StatusCode)
		}
		if !bytes.Equal(raw, bodies[i]) {
			t.Errorf("request %d: loaded answer differs from unloaded answer:\n%s\nvs\n%s", i, bodies[i], raw)
		}
	}
}

// TestDeadlineShedReturns503: once a program has a cost estimate on record,
// a request for it whose deadline budget cannot cover that estimate is shed
// with 503 "would-miss-deadline" before consuming a slot. The store runs
// with a 1-byte budget so nothing stays in memory and the second request
// genuinely needs solver work.
func TestDeadlineShedReturns503(t *testing.T) {
	st, err := store.New(1, "")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{
		Store:     st,
		Admission: AdmissionConfig{MaxInflight: 2},
		Chaos:     chaos.New(chaos.Config{Seed: 1, SolveDelay: 150 * time.Millisecond, SolveDelayP: 1}),
	})
	req := AnalyzeRequest{Sources: []SourceJSON{{Name: "tiny.c", Text: tinyProgram}}}

	// Prime the cost estimate: the chaos delay counts as solve time, so the
	// EWMA lands near 150ms.
	if resp, raw := postJSON(t, ts.URL+"/v1/analyze", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("priming solve: status %d: %s", resp.StatusCode, raw)
	}

	// 5ms of budget against a ~150ms estimate: shed, don't solve.
	req.Limits = LimitsJSON{TimeoutMS: 5}
	resp, raw := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", resp.StatusCode, raw)
	}
	var er ErrorResponse
	decodeBytes(t, raw, &er)
	if er.Kind != "would-miss-deadline" {
		t.Errorf("kind = %q, want would-miss-deadline", er.Kind)
	}
	if er.Key == "" {
		t.Errorf("503 lost the request key")
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}

	// A roomy deadline passes the same gate and solves.
	req.Limits = LimitsJSON{TimeoutMS: 30_000}
	if resp, raw := postJSON(t, ts.URL+"/v1/analyze", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("roomy deadline: status %d: %s", resp.StatusCode, raw)
	}

	v := varz(t, ts.URL)
	adm := v.Admission.Endpoints["analyze"]
	if adm.ShedDeadline != 1 {
		t.Errorf("shed_deadline = %d, want 1", adm.ShedDeadline)
	}
	if v.Admission.CostKeys == 0 {
		t.Errorf("cost table is empty after a solve")
	}
	if v.Chaos.SolveDelays == 0 {
		t.Errorf("chaos solve delays not counted")
	}
}

// TestCacheHitBypassesAdmission: a memory-cached answer never consumes a
// slot, even when the controller is saturated.
func TestCacheHitBypassesAdmission(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Admission: AdmissionConfig{MaxInflight: 1, MaxQueue: 1},
	})
	req := AnalyzeRequest{Sources: []SourceJSON{{Name: "tiny.c", Text: tinyProgram}}}
	if resp, raw := postJSON(t, ts.URL+"/v1/analyze", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("priming solve: status %d: %s", resp.StatusCode, raw)
	}
	admitted := s.admissions["analyze"].admitted.Load()

	// Saturate the controller: park a slot-holder manually.
	release, err := s.admissions["analyze"].acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// The cached program still answers 200 without touching admission.
	resp, raw := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache hit under saturation: status %d: %s", resp.StatusCode, raw)
	}
	if got := s.admissions["analyze"].admitted.Load(); got != admitted+1 {
		// +1 accounts for the manual acquire above; the cached request must
		// not have added another.
		t.Errorf("cache hit consumed admission: admitted went %d -> %d", admitted, got)
	}
}

// TestSlowClientWritesStayIntact: the chaos slow-writer trickles response
// bodies without corrupting them.
func TestSlowClientWritesStayIntact(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Chaos: chaos.New(chaos.Config{Seed: 3, SlowWrite: time.Microsecond, SlowWriteChunk: 7, SlowWriteP: 1}),
	})
	req := AnalyzeRequest{Sources: []SourceJSON{{Name: "tiny.c", Text: tinyProgram}}}
	resp, raw := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var rep ReportJSON
	decodeBytes(t, raw, &rep)
	if rep.Key == "" || rep.TotalFacts == 0 {
		t.Errorf("slow-written body decoded to an empty report: %+v", rep)
	}
	v := varz(t, ts.URL)
	if v.Chaos.SlowWrites == 0 {
		t.Errorf("slow writes not counted in /varz")
	}
}
