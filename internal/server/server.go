// Package server exposes the pointer analysis as a query service: an
// HTTP/JSON API over the pointsto facade, backed by the content-addressed
// result cache of internal/store.
//
// Endpoints:
//
//	POST /v1/analyze   solve (or fetch) one program under one instance;
//	                   returns the report summary plus the cache key
//	POST /v1/session   open a warm query session for a program (front end
//	                   only — no solving); queries against its key answer
//	                   through the demand engine
//	GET  /v1/pointsto  ?key=&var=   points-to set of a variable
//	GET  /v1/alias     ?key=&a=&b=  may-alias query between two variables
//	POST /v1/query     a batch of pointsto/alias queries in one round trip
//	POST /v1/compare   one program under all four §4.3 instances, diffed
//	GET  /healthz      liveness probe
//	GET  /varz         expvar-flavored counters: cache stats, solver work,
//	                   demand-engine counters, per-endpoint latency
//	                   histograms
//
// Queries answer session-first: a warm session solves just the constraint
// slice the query demands (first-query latency scales with the query, not
// the program), falling back to a cached exhaustive snapshot when no
// session is resident.
//
// The fault taxonomy of internal/fault is the wire contract: parse/sema
// faults map to 422 (the input is wrong), a tripped resource limit is NOT
// an error (200 with "incomplete": true — the facts returned are sound but
// not exhaustive), cancellation maps to 499, a query for an undefined
// variable name to 404 (kind "unknown-name"), and internal faults
// (recovered panics) to 500.
//
// Per-request limits and timeouts are clamped to the server's configured
// ceilings, so one client cannot buy more solver than the operator allows.
// Shutdown drains: in-flight solves run to completion under the drain
// timeout, then the base context is canceled and stragglers finish as 499s.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/corpus"
	"repro/internal/export"
	"repro/internal/fault"
	"repro/internal/store"
	"repro/pointsto"
)

// StatusClientClosedRequest is the non-standard 499 status (nginx
// convention) reported when an analysis is canceled mid-solve — the client
// went away or its per-request timeout expired.
const StatusClientClosedRequest = 499

// maxCompareDiffs bounds the diff section of /v1/compare responses.
const maxCompareDiffs = 100

// Config configures a Server.
type Config struct {
	// Store is the result cache (required).
	Store *store.Store
	// MaxSourceBytes bounds the request body size; 0 selects 4 MiB.
	MaxSourceBytes int64
	// CeilLimits are the per-request solver-limit ceilings; zero fields
	// leave that dimension unlimited.
	CeilLimits pointsto.Limits
	// MaxTimeout is the per-request timeout ceiling (also the default when
	// a request names none); 0 means no server-imposed timeout.
	MaxTimeout time.Duration
	// MaxSessions bounds the warm query sessions kept resident (LRU
	// eviction beyond it); 0 selects 32.
	MaxSessions int
	// MaxGraphs bounds the persistent constraint graphs kept resident for
	// base-key incremental re-analysis (LRU eviction beyond it); 0 selects
	// 64.
	MaxGraphs int
	// Admission bounds concurrent solver consumption per solve-bearing
	// endpoint (analyze, compare, session). The zero value disables
	// admission control; see AdmissionConfig.
	Admission AdmissionConfig
	// AdmissionPerEndpoint overrides Admission for named endpoints.
	AdmissionPerEndpoint map[string]AdmissionConfig
	// Chaos, when non-nil, injects deterministic faults (solve latency,
	// slow-client writes) into the request path; the store's spill hooks
	// are wired separately by the daemon. Nil in production.
	Chaos *chaos.Chaos
}

// Server is the analysis query service.
type Server struct {
	cfg        Config
	mux        *http.ServeMux
	start      time.Time
	endpoints  map[string]*endpointStats
	sessions   *sessionCache
	graphs     *graphCache
	admissions map[string]*admission
	costs      *costTable

	solves, solveSteps, solveIncomplete atomic.Int64
	solveRejected, solveCanceled        atomic.Int64
	solveNS                             atomic.Int64

	// Incremental re-analysis traffic: warm resumes served, base keys that
	// found no resident graph, and resumes that fell back to a cold solve.
	incrHits, incrMisses, incrFallbacks atomic.Int64

	// Constraint-graph layer totals across all solves (cycle elimination +
	// wave scheduling; see pointsto.SolverStats).
	solveSCCs, solveMerged, solveWaves atomic.Int64
	solveTravSaved                     atomic.Int64

	// Parallel wave-executor totals (zero while solves run sequentially).
	solveParWaves, solveParShards, solveParSteals atomic.Int64

	// Offline-prepass and set-interner totals.
	solvePrepClasses, solvePrepCollapsed atomic.Int64
	solveInternSets, solveInternBytes    atomic.Int64
}

// New builds a Server over the given cache.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		panic("server: Config.Store is required")
	}
	if cfg.MaxSourceBytes <= 0 {
		cfg.MaxSourceBytes = 4 << 20
	}
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		start:      time.Now(),
		endpoints:  make(map[string]*endpointStats),
		sessions:   newSessionCache(cfg.MaxSessions),
		graphs:     newGraphCache(cfg.MaxGraphs),
		admissions: make(map[string]*admission),
		costs:      newCostTable(),
	}
	for _, endpoint := range []string{"analyze", "compare", "session"} {
		acfg := cfg.Admission
		if override, ok := cfg.AdmissionPerEndpoint[endpoint]; ok {
			acfg = override
		}
		s.admissions[endpoint] = newAdmission(acfg)
	}
	s.mux.HandleFunc("POST /v1/analyze", s.instrument("analyze", s.handleAnalyze))
	s.mux.HandleFunc("POST /v1/session", s.instrument("session", s.handleSession))
	s.mux.HandleFunc("GET /v1/pointsto", s.instrument("pointsto", s.handlePointsTo))
	s.mux.HandleFunc("GET /v1/alias", s.instrument("alias", s.handleAlias))
	s.mux.HandleFunc("POST /v1/query", s.instrument("query", s.handleQuery))
	s.mux.HandleFunc("POST /v1/compare", s.instrument("compare", s.handleCompare))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /varz", s.handleVarz)
	return s
}

// Handler returns the HTTP handler (also useful under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve runs the HTTP server on l until ctx is canceled (the daemon's
// SIGTERM path), then shuts down gracefully: the listener closes, in-flight
// requests — including running solves — drain for up to drain, and anything
// still running afterwards is canceled through the request contexts and
// finishes as a 499. Returns nil on a clean drain.
func (s *Server) Serve(ctx context.Context, l net.Listener, drain time.Duration) error {
	base, cancel := context.WithCancel(context.Background())
	defer cancel()
	hs := &http.Server{
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return base },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	dctx := context.Background()
	if drain > 0 {
		var dcancel context.CancelFunc
		dctx, dcancel = context.WithTimeout(dctx, drain)
		defer dcancel()
	}
	err := hs.Shutdown(dctx) // waits for in-flight requests
	cancel()                 // hard-cancel stragglers that outlived the drain window
	<-errc                   // hs.Serve has returned ErrServerClosed
	if errors.Is(err, context.DeadlineExceeded) {
		return fault.New(fault.KindCanceled, "shutdown", "", err)
	}
	return err
}

// --- request plumbing ---

// clamp bounds a requested value by a ceiling: with a ceiling configured,
// "no limit requested" and "more than the ceiling" both become the ceiling.
func clamp(req, ceil int) int {
	if ceil > 0 && (req <= 0 || req > ceil) {
		return ceil
	}
	return max(req, 0)
}

func clampDuration(req, ceil time.Duration) time.Duration {
	if ceil > 0 && (req <= 0 || req > ceil) {
		return ceil
	}
	return max(req, 0)
}

// requestConfig converts request parameters into a facade Config with the
// server's ceilings applied.
func (s *Server) requestConfig(strategy pointsto.Strategy, abi string, lim LimitsJSON) pointsto.Config {
	return pointsto.Config{
		Strategy: strategy,
		ABI:      abi,
		Limits: pointsto.Limits{
			MaxSteps: clamp(lim.MaxSteps, s.cfg.CeilLimits.MaxSteps),
			MaxFacts: clamp(lim.MaxFacts, s.cfg.CeilLimits.MaxFacts),
			MaxCells: clamp(lim.MaxCells, s.cfg.CeilLimits.MaxCells),
		},
		// Timeout deliberately left zero: the deadline rides on the request
		// context so the store's singleflight can keep a solve alive while
		// other, longer-lived requests still wait on it.
	}
}

// requestContext derives the solve deadline for one request.
func (s *Server) requestContext(r *http.Request, lim LimitsJSON) (context.Context, context.CancelFunc) {
	timeout := clampDuration(time.Duration(lim.TimeoutMS)*time.Millisecond, s.cfg.MaxTimeout)
	if timeout > 0 {
		return context.WithTimeout(r.Context(), timeout)
	}
	return context.WithCancel(r.Context())
}

// resolveSources turns a request's sources-or-corpus into facade sources.
func resolveSources(sources []SourceJSON, corpusName string) ([]pointsto.Source, error) {
	switch {
	case corpusName != "" && len(sources) > 0:
		return nil, fmt.Errorf("set either sources or corpus, not both")
	case corpusName != "":
		fsrc, err := corpus.Source(corpusName)
		if err != nil {
			return nil, err
		}
		out := make([]pointsto.Source, len(fsrc))
		for i, f := range fsrc {
			out[i] = pointsto.Source{Name: f.Name, Text: f.Text}
		}
		return out, nil
	case len(sources) > 0:
		out := make([]pointsto.Source, len(sources))
		for i, src := range sources {
			if src.Name == "" {
				src.Name = fmt.Sprintf("input%d.c", i)
			}
			out[i] = pointsto.Source{Name: src.Name, Text: src.Text}
		}
		return out, nil
	}
	return nil, fmt.Errorf("no sources (set \"sources\" or \"corpus\")")
}

// parseStrategy maps an instance name ("" = common-initial-seq) to the enum.
func parseStrategy(name string) (pointsto.Strategy, error) {
	if name == "" {
		return pointsto.CIS, nil
	}
	for _, st := range pointsto.Strategies() {
		if st.String() == name {
			return st, nil
		}
	}
	return 0, fmt.Errorf("unknown strategy %q (want one of %v)", name, pointsto.Strategies())
}

// decodeBody decodes a JSON request body under the configured size cap.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// --- responses ---

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body) // nothing useful to do with a write error here
}

// classify maps a classified error onto the wire contract's (status, kind)
// pair. The default is 400/"usage" for unclassified request-shaping errors.
func classify(err error) (status int, kind string) {
	kind = "usage"
	status = http.StatusBadRequest
	switch k, classified := fault.KindOf(err); {
	case classified && (k == fault.KindParse || k == fault.KindSema):
		kind, status = k.String(), http.StatusUnprocessableEntity
	case classified && k == fault.KindCanceled,
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		kind, status = fault.KindCanceled.String(), StatusClientClosedRequest
	case classified && k == fault.KindUnknownName:
		kind, status = k.String(), http.StatusNotFound
	case classified && k == fault.KindOverloaded:
		// Admission control refused the work: the queue is full. 429 tells
		// the client to back off (Retry-After carries the estimate).
		kind, status = k.String(), http.StatusTooManyRequests
	case classified && k == fault.KindDeadline:
		// Shed before solving: the request's remaining deadline budget
		// cannot cover the estimated solve cost. 503 + Retry-After.
		kind, status = k.String(), http.StatusServiceUnavailable
	case classified && k == fault.KindLimit:
		// Shouldn't normally escape as an error (limit trips are reported
		// as incomplete 200s), but keep the mapping total.
		kind, status = k.String(), http.StatusOK
	case classified && k == fault.KindInternal:
		kind, status = k.String(), http.StatusInternalServerError
	}
	return status, kind
}

// writeError maps a classified error onto the wire contract. key, when
// known, lets the client retry the query later. Admission rejections carry
// their backoff hint both as a Retry-After header and in the body.
func writeError(w http.ResponseWriter, err error, key string) {
	status, kind := classify(err)
	retryAfter := setRetryAfter(w, err)
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Kind: kind, Key: key, RetryAfter: retryAfter})
}

func reportJSON(key string, snap *export.Snapshot) ReportJSON {
	out := ReportJSON{
		Key:          key,
		Strategy:     snap.Strategy,
		ABI:          snap.ABI,
		TotalFacts:   snap.TotalFacts,
		DerefSites:   snap.DerefSites,
		AvgDerefSize: snap.AvgDerefSize,
		Steps:        snap.Steps,
		DurationNS:   snap.DurationNS,
		Incomplete:   snap.Incomplete != nil,
		Stop:         snap.Incomplete,
	}
	return out
}

// --- handlers ---

// solveSnapshot runs one governed analysis through the cache, recording the
// solver counters for /varz. endpoint selects the admission controller:
// a request the memory cache or an in-flight solve can answer bypasses
// admission; one that needs real solver work must be admitted first (and
// may instead be shed — 429 when the queue is full, 503 when its deadline
// budget cannot cover the estimated cost).
//
// base, when non-empty, names a resident constraint graph to resume from:
// the solve then retracts only what the edit invalidated and re-converges
// warm, byte-identically to a cold solve. Warm solves are costed under an
// "incr|"-prefixed estimate namespace so the admission layer's deadline
// shedding learns the (much cheaper) delta-solve cost instead of blending
// it into the cold estimate for the same key. The returned IncrJSON says
// which path actually served the request (nil when nothing solved — cache
// hit or joined flight — or when no base was named).
func (s *Server) solveSnapshot(ctx context.Context, endpoint, key, base string, sources []pointsto.Source, cfg pointsto.Config) (*export.Snapshot, *IncrJSON, error) {
	if snap, ok := s.cfg.Store.Peek(key); ok {
		return snap, nil, nil
	}
	var graph *pointsto.Graph
	var info *IncrJSON
	if base != "" {
		if g, ok := s.graphs.get(base); ok && cfg.Resumable() {
			graph = g
		} else {
			s.incrMisses.Add(1)
			reason := "no-graph"
			if ok {
				reason = "config-ineligible"
			}
			info = &IncrJSON{Outcome: "cold", FallbackReason: reason}
		}
	}
	costKey := key
	if graph != nil {
		costKey = "incr|" + key
	}
	if !s.cfg.Store.Joinable(key) {
		release, err := s.admitSolve(ctx, endpoint, costKey)
		if err != nil {
			return nil, nil, err
		}
		defer release()
	}
	snap, _, err := s.cfg.Store.GetOrSolve(ctx, key, func(sctx context.Context) (*export.Snapshot, error) {
		start := time.Now()
		s.solves.Add(1)
		// Injected latency counts as solve time: chaos-slowed programs must
		// look expensive to the cost table so shedding engages.
		s.cfg.Chaos.SolveDelay(sctx)
		var rep *pointsto.Report
		var sess *pointsto.Session
		var aerr error
		if graph != nil {
			var ri *pointsto.ResumeInfo
			sess, ri, aerr = pointsto.ResumeSession(sctx, graph, sources, cfg)
			if aerr == nil {
				if ri.Outcome == "resumed" {
					s.incrHits.Add(1)
				} else {
					s.incrFallbacks.Add(1)
				}
				info = &IncrJSON{
					Outcome:        ri.Outcome,
					FallbackReason: ri.FallbackReason,
					UnitsChanged:   ri.UnitsAdded + ri.UnitsRemoved + ri.UnitsChanged,
					StmtsRetracted: ri.StmtsRetracted,
					CellsSeeded:    ri.CellsSeeded,
					FactsSeeded:    ri.FactsSeeded,
				}
			}
		} else {
			sess, aerr = pointsto.NewSession(sources, cfg)
		}
		if aerr == nil {
			rep, aerr = sess.Report(sctx)
		}
		elapsed := time.Since(start)
		s.solveNS.Add(elapsed.Nanoseconds())
		s.costs.observe(costKey, elapsed)
		if aerr != nil {
			switch k, _ := fault.KindOf(aerr); k {
			case fault.KindCanceled:
				s.solveCanceled.Add(1)
			case fault.KindParse, fault.KindSema:
				s.solveRejected.Add(1)
			}
			return nil, aerr
		}
		s.solveSteps.Add(int64(rep.Steps()))
		ss := rep.SolverStats()
		s.solveSCCs.Add(int64(ss.SCCsFound))
		s.solveMerged.Add(int64(ss.CellsMerged))
		s.solveWaves.Add(int64(ss.Waves))
		s.solveTravSaved.Add(int64(ss.TraversalsSaved))
		s.solveParWaves.Add(int64(ss.ParWaves))
		s.solveParShards.Add(int64(ss.ParShards))
		s.solveParSteals.Add(int64(ss.ParSteals))
		s.solvePrepClasses.Add(int64(ss.PrepClasses))
		s.solvePrepCollapsed.Add(int64(ss.PrepCollapsed))
		s.solveInternSets.Add(int64(ss.InternSets))
		s.solveInternBytes.Add(int64(ss.InternBytes))
		if rep.Incomplete() != nil {
			s.solveIncomplete.Add(1)
		}
		// Register the solved graph so later requests can name this key as
		// their base. Capture is cheap (the report is already solved) and
		// failures only cost warmth.
		if rep.Incomplete() == nil && cfg.Resumable() {
			if g, gerr := sess.Graph(sctx); gerr == nil {
				s.graphs.put(key, g)
			}
		}
		return export.NewSnapshot(rep, cfg.ABI), nil
	})
	if err != nil {
		return nil, nil, err
	}
	return snap, info, nil
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, err, "")
		return
	}
	sources, err := resolveSources(req.Sources, req.Corpus)
	if err != nil {
		writeError(w, err, "")
		return
	}
	strategy, err := parseStrategy(req.Strategy)
	if err != nil {
		writeError(w, err, "")
		return
	}
	if req.Base != "" && !store.ValidKey(req.Base) {
		writeError(w, fmt.Errorf("malformed base key %q", req.Base), "")
		return
	}
	cfg := s.requestConfig(strategy, req.ABI, req.Limits)
	key := store.Key(sources, cfg)
	ctx, cancel := s.requestContext(r, req.Limits)
	defer cancel()
	snap, incrInfo, err := s.solveSnapshot(ctx, "analyze", key, req.Base, sources, cfg)
	if err != nil {
		writeError(w, err, key)
		return
	}
	out := reportJSON(key, snap)
	out.Incr = incrInfo
	writeJSON(w, http.StatusOK, out)
}

// handleSession opens (or refreshes) a warm query session. Only the front
// end runs here — no solving — so the endpoint is cheap; the demand engine
// pays per query instead.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, err, "")
		return
	}
	sources, err := resolveSources(req.Sources, req.Corpus)
	if err != nil {
		writeError(w, err, "")
		return
	}
	strategy, err := parseStrategy(req.Strategy)
	if err != nil {
		writeError(w, err, "")
		return
	}
	// Sessions are deliberately limit-free: a session answers exactly, so
	// its key is the content hash without any Limits dimension. The same
	// key therefore also addresses full-solve snapshots of the same
	// limit-free config.
	cfg := pointsto.Config{Strategy: strategy, ABI: req.ABI}
	key := store.Key(sources, cfg)
	// A warm session answers from residency — no admission needed. Only
	// building a new one (front-end work) consumes a slot.
	if sess, ok := s.sessions.get(key); ok {
		writeJSON(w, http.StatusOK, SessionResponse{Key: key, Cached: true, Names: sess.Names()})
		return
	}
	release, err := s.admitSolve(r.Context(), "session", key)
	if err != nil {
		writeError(w, err, key)
		return
	}
	sess, cached, err := s.sessions.getOrCreate(key, sources, cfg)
	release()
	if err != nil {
		writeError(w, err, key)
		return
	}
	writeJSON(w, http.StatusOK, SessionResponse{Key: key, Cached: cached, Names: sess.Names()})
}

// serveQuery answers one form-parameterized query (the GET endpoints).
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, q QueryJSON) {
	ctx, cancel := s.requestContext(r, LimitsJSON{})
	defer cancel()
	res, qerr := s.runQuery(ctx, q)
	if qerr != nil {
		writeJSON(w, qerr.status, qerr.body)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handlePointsTo(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, QueryJSON{Op: OpPointsTo, Key: r.FormValue("key"), Var: r.FormValue("var")})
}

func (s *Server) handleAlias(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, QueryJSON{Op: OpMayAlias, Key: r.FormValue("key"), A: r.FormValue("a"), B: r.FormValue("b")})
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req CompareRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, err, "")
		return
	}
	sources, err := resolveSources(req.Sources, req.Corpus)
	if err != nil {
		writeError(w, err, "")
		return
	}
	ctx, cancel := s.requestContext(r, req.Limits)
	defer cancel()

	resp := CompareResponse{}
	snaps := make(map[string]*export.Snapshot, len(pointsto.Strategies()))
	for _, strategy := range pointsto.Strategies() {
		cfg := s.requestConfig(strategy, req.ABI, req.Limits)
		key := store.Key(sources, cfg)
		snap, _, err := s.solveSnapshot(ctx, "compare", key, "", sources, cfg)
		if err != nil {
			writeError(w, err, key)
			return
		}
		snaps[strategy.String()] = snap
		resp.Results = append(resp.Results, reportJSON(key, snap))
	}

	// Diff: every variable whose points-to set differs across instances.
	// Vars are keyed identically in every snapshot (same front end run),
	// so iterate one snapshot's names.
	names := snaps[pointsto.CIS.String()].SortedVarNames()
	for _, name := range names {
		sets := make(map[string][]string, len(snaps))
		differs := false
		var first []string
		for i, strategy := range pointsto.Strategies() {
			targets := snaps[strategy.String()].Vars[name]
			sets[strategy.String()] = targets
			if i == 0 {
				first = targets
			} else if !equalStrings(first, targets) {
				differs = true
			}
		}
		if !differs {
			continue
		}
		if len(resp.Diffs) >= maxCompareDiffs {
			resp.Truncated = true
			break
		}
		resp.Diffs = append(resp.Diffs, CompareDiff{Var: name, Sets: sets})
	}
	writeJSON(w, http.StatusOK, resp)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	varz := Varz{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Cache:         s.cfg.Store.Stats(),
		Demand:        s.sessions.varz(),
		Solver: SolverVarz{
			Solves:          s.solves.Load(),
			Steps:           s.solveSteps.Load(),
			Incomplete:      s.solveIncomplete.Load(),
			Rejected:        s.solveRejected.Load(),
			Canceled:        s.solveCanceled.Load(),
			InFlightNS:      s.solveNS.Load(),
			SCCsFound:       s.solveSCCs.Load(),
			CellsMerged:     s.solveMerged.Load(),
			Waves:           s.solveWaves.Load(),
			TraversalsSaved: s.solveTravSaved.Load(),
			ParWaves:        s.solveParWaves.Load(),
			ParShards:       s.solveParShards.Load(),
			ParSteals:       s.solveParSteals.Load(),
			PrepClasses:     s.solvePrepClasses.Load(),
			PrepCollapsed:   s.solvePrepCollapsed.Load(),
			InternSets:      s.solveInternSets.Load(),
			InternBytes:     s.solveInternBytes.Load(),
		},
		Endpoints: make(map[string]EndpointJSON, len(s.endpoints)),
		Incr: IncrVarz{
			Hits:      s.incrHits.Load(),
			Misses:    s.incrMisses.Load(),
			Fallbacks: s.incrFallbacks.Load(),
		},
		Admission: AdmissionVarz{
			CostKeys:  s.costs.keys(),
			Endpoints: make(map[string]AdmissionEndpointVarz, len(s.admissions)),
		},
		Chaos: s.cfg.Chaos.Stats(),
	}
	varz.Incr.Graphs, varz.Incr.Stored, varz.Incr.Evicted = s.graphs.counts()
	for name, a := range s.admissions {
		varz.Admission.Endpoints[name] = a.varz()
	}
	names := make([]string, 0, len(s.endpoints))
	for name := range s.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ep := s.endpoints[name]
		varz.Endpoints[name] = EndpointJSON{
			Requests:  ep.requests.Load(),
			Errors4xx: ep.errors4xx.Load(),
			Errors5xx: ep.errors5xx.Load(),
			Canceled:  ep.canceled.Load(),
			Latency:   ep.latency.snapshot(),
		}
	}
	writeJSON(w, http.StatusOK, varz)
}
