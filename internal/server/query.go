package server

import (
	"context"
	"fmt"
	"net/http"

	"repro/internal/fault"
	"repro/internal/store"
)

// This file is the one query path behind /v1/pointsto, /v1/alias and the
// batched /v1/query: every entry point normalizes its input into a
// QueryJSON, and runQuery answers it — session-first (the demand engine of
// a warm Session solves just the queried slice), falling back to a cached
// exhaustive snapshot when no session is resident for the key.

// validateQuery checks a query's shape; the returned error text is safe to
// hand to clients.
func validateQuery(q QueryJSON) error {
	switch q.Op {
	case OpPointsTo:
		if q.Var == "" {
			return fmt.Errorf("missing var parameter")
		}
	case OpMayAlias:
		if q.A == "" || q.B == "" {
			return fmt.Errorf("missing a or b parameter")
		}
	default:
		return fmt.Errorf("unknown op %q (want %q or %q)", q.Op, OpPointsTo, OpMayAlias)
	}
	if !store.ValidKey(q.Key) {
		return fmt.Errorf("malformed key (want 64 hex digits)")
	}
	return nil
}

// queryError is a failed query, pre-mapped onto the wire contract.
type queryError struct {
	status int
	body   ErrorResponse
}

// failQuery classifies err for one query.
func failQuery(err error, key string) *queryError {
	status, kind := classify(err)
	return &queryError{status: status, body: ErrorResponse{Error: err.Error(), Kind: kind, Key: key}}
}

// runQuery answers one normalized query. Session-first: a warm session for
// the key answers through the demand engine; otherwise a cached snapshot
// (from an earlier full solve) answers; an unknown key is a 404 the client
// fixes by opening a session or analyzing first.
func (s *Server) runQuery(ctx context.Context, q QueryJSON) (QueryResultJSON, *queryError) {
	if err := validateQuery(q); err != nil {
		return QueryResultJSON{}, &queryError{
			status: http.StatusBadRequest,
			body:   ErrorResponse{Error: err.Error(), Kind: "usage"},
		}
	}
	if sess, ok := s.sessions.get(q.Key); ok {
		switch q.Op {
		case OpPointsTo:
			targets, err := sess.PointsTo(ctx, q.Var)
			if err != nil {
				return QueryResultJSON{}, failQuery(err, q.Key)
			}
			if targets == nil {
				targets = []string{}
			}
			return QueryResultJSON{Op: q.Op, Key: q.Key, Var: q.Var, Targets: targets}, nil
		case OpMayAlias:
			alias, err := sess.MayAlias(ctx, q.A, q.B)
			if err != nil {
				return QueryResultJSON{}, failQuery(err, q.Key)
			}
			return QueryResultJSON{Op: q.Op, Key: q.Key, A: q.A, B: q.B, MayAlias: &alias}, nil
		}
	}
	snap, ok := s.cfg.Store.Get(q.Key)
	if !ok {
		return QueryResultJSON{}, &queryError{
			status: http.StatusNotFound,
			body: ErrorResponse{
				Error: "unknown key (not cached; POST /v1/session or /v1/analyze first)",
				Kind:  "usage", Key: q.Key,
			},
		}
	}
	incomplete := snap.Incomplete != nil
	unknown := func(name string) *queryError {
		return failQuery(fault.Newf(fault.KindUnknownName, "query", "", "unknown name %q", name), q.Key)
	}
	switch q.Op {
	case OpPointsTo:
		if !snap.HasVar(q.Var) {
			return QueryResultJSON{}, unknown(q.Var)
		}
		targets := snap.PointsTo(q.Var)
		if targets == nil {
			targets = []string{}
		}
		return QueryResultJSON{Op: q.Op, Key: q.Key, Var: q.Var, Targets: targets, Incomplete: incomplete}, nil
	default: // OpMayAlias; validateQuery rejected everything else
		for _, name := range []string{q.A, q.B} {
			if !snap.HasVar(name) {
				return QueryResultJSON{}, unknown(name)
			}
		}
		alias := snap.MayAlias(q.A, q.B)
		return QueryResultJSON{Op: q.Op, Key: q.Key, A: q.A, B: q.B, MayAlias: &alias, Incomplete: incomplete}, nil
	}
}

// handleQuery is the batched POST /v1/query: many queries, one round trip,
// one warm session. Per-query failures are reported in place (with the
// status the standalone endpoint would have used) so one bad name cannot
// fail a batch.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryBatchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, err, "")
		return
	}
	if len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty queries", Kind: "usage"})
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("too many queries (%d > %d)", len(req.Queries), maxBatchQueries), Kind: "usage"})
		return
	}
	ctx, cancel := s.requestContext(r, LimitsJSON{})
	defer cancel()
	resp := QueryBatchResponse{Results: make([]QueryResultJSON, len(req.Queries))}
	for i, q := range req.Queries {
		res, qerr := s.runQuery(ctx, q)
		if qerr != nil {
			resp.Results[i] = QueryResultJSON{
				Op: q.Op, Key: q.Key, Var: q.Var, A: q.A, B: q.B,
				Error: &qerr.body, Status: qerr.status,
			}
			continue
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxBatchQueries bounds one /v1/query request.
const maxBatchQueries = 1000
