package server

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
)

// openSession POSTs /v1/session and decodes the response.
func openSession(t *testing.T, base string, req SessionRequest) SessionResponse {
	t.Helper()
	resp, raw := postJSON(t, base+"/v1/session", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session status %d: %s", resp.StatusCode, raw)
	}
	var sr SessionResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestSessionEndpointAnswersWithoutFullSolve is the service-tier tentpole
// check: open a session, query through it, and verify (a) no exhaustive
// solve ever ran, (b) the demand counters moved, and (c) the answers are
// byte-identical to the exhaustive snapshot a /v1/analyze of the same
// program produces.
func TestSessionEndpointAnswersWithoutFullSolve(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sr := openSession(t, ts.URL, SessionRequest{Corpus: "anagram"})
	if len(sr.Names) == 0 || sr.Cached {
		t.Fatalf("fresh session: %+v", sr)
	}

	// Demand answers for a few names.
	demand := make(map[string][]string)
	for _, name := range sr.Names {
		var qr QueryResultJSON
		if resp := getJSON(t, ts.URL+"/v1/pointsto?key="+sr.Key+"&var="+name, &qr); resp.StatusCode != http.StatusOK {
			t.Fatalf("pointsto %q: status %d", name, resp.StatusCode)
		}
		if qr.Incomplete {
			t.Errorf("demand answer for %q flagged incomplete", name)
		}
		demand[name] = qr.Targets
	}

	v := varz(t, ts.URL)
	if v.Solver.Solves != 0 {
		t.Errorf("demand queries forced %d full solves, want 0", v.Solver.Solves)
	}
	if v.Demand.Sessions != 1 || v.Demand.Created != 1 {
		t.Errorf("demand sessions: %+v", v.Demand)
	}
	if v.Demand.Queries == 0 || v.Demand.StmtsActivated == 0 || v.Demand.CellsVisited == 0 {
		t.Errorf("demand counters did not move: %+v", v.Demand)
	}

	// Reopening is a cache hit.
	if sr2 := openSession(t, ts.URL, SessionRequest{Corpus: "anagram"}); !sr2.Cached || sr2.Key != sr.Key {
		t.Errorf("second open: %+v, want cached with same key", sr2)
	}

	// The exhaustive oracle: /v1/analyze with no limits shares the session's
	// limit-free key, so its snapshot answers the same queries — and must
	// agree byte for byte.
	resp, raw := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Corpus: "anagram"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d: %s", resp.StatusCode, raw)
	}
	var rep ReportJSON
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Key != sr.Key {
		t.Fatalf("limit-free analyze key %s != session key %s", rep.Key, sr.Key)
	}
	srv2, ts2 := newTestServer(t, Config{})
	_ = srv2 // fresh server: no session resident, so queries hit the snapshot path
	postJSON(t, ts2.URL+"/v1/analyze", AnalyzeRequest{Corpus: "anagram"})
	for name, want := range demand {
		var qr QueryResultJSON
		if resp := getJSON(t, ts2.URL+"/v1/pointsto?key="+rep.Key+"&var="+name, &qr); resp.StatusCode != http.StatusOK {
			t.Fatalf("snapshot pointsto %q: status %d", name, resp.StatusCode)
		}
		got := qr.Targets
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("demand vs snapshot for %q: demand %v, snapshot %v", name, want, got)
		}
	}
}

// TestSessionUnknownVar404 pins the unknown-name wire contract on the
// session path.
func TestSessionUnknownVar404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sr := openSession(t, ts.URL, SessionRequest{Sources: []SourceJSON{{Name: "tiny.c", Text: tinyProgram}}})

	var e ErrorResponse
	resp := getJSON(t, ts.URL+"/v1/pointsto?key="+sr.Key+"&var=no_such_var", &e)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown var: status %d, want 404", resp.StatusCode)
	}
	if e.Kind != "unknown-name" {
		t.Errorf("unknown var kind = %q, want unknown-name", e.Kind)
	}
	// A known pointer that points nowhere is a 200 with an empty set — the
	// two cases are distinguishable on the wire.
	var qr QueryResultJSON
	if resp := getJSON(t, ts.URL+"/v1/pointsto?key="+sr.Key+"&var=g", &qr); resp.StatusCode != http.StatusOK {
		t.Errorf("known empty var: status %d, want 200", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/alias?key="+sr.Key+"&a=p&b=no_such_var", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("alias with unknown var: status %d, want 404", resp.StatusCode)
	}
}

// TestBatchQuery exercises POST /v1/query: many queries, one round trip,
// per-item errors in place.
func TestBatchQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sr := openSession(t, ts.URL, SessionRequest{Sources: []SourceJSON{{Name: "tiny.c", Text: tinyProgram}}})

	req := QueryBatchRequest{Queries: []QueryJSON{
		{Op: OpPointsTo, Key: sr.Key, Var: "p"},
		{Op: OpMayAlias, Key: sr.Key, A: "p", B: "q"},
		{Op: OpPointsTo, Key: sr.Key, Var: "no_such_var"},
		{Op: "bogus", Key: sr.Key},
	}}
	resp, raw := postJSON(t, ts.URL+"/v1/query", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	var br QueryBatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(br.Results))
	}
	if got := br.Results[0].Targets; !reflect.DeepEqual(got, []string{"g"}) {
		t.Errorf("batch pointsto(p) = %v, want [g]", got)
	}
	if br.Results[1].MayAlias == nil || !*br.Results[1].MayAlias {
		t.Errorf("batch alias(p,q) = %+v, want true", br.Results[1])
	}
	if br.Results[2].Error == nil || br.Results[2].Status != http.StatusNotFound || br.Results[2].Error.Kind != "unknown-name" {
		t.Errorf("batch unknown var: %+v, want in-place 404 unknown-name", br.Results[2])
	}
	if br.Results[3].Error == nil || br.Results[3].Status != http.StatusBadRequest {
		t.Errorf("batch bad op: %+v, want in-place 400", br.Results[3])
	}

	// Shape errors on the batch itself.
	if resp, _ := postJSON(t, ts.URL+"/v1/query", QueryBatchRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
}

// TestSessionEviction: the LRU cap retires the oldest session; its key then
// answers via the snapshot path (404 here, since nothing was analyzed).
func TestSessionEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 1})
	sr1 := openSession(t, ts.URL, SessionRequest{Sources: []SourceJSON{{Name: "tiny.c", Text: tinyProgram}}})
	// Touch the first session so its counters exist, then displace it.
	getJSON(t, ts.URL+"/v1/pointsto?key="+sr1.Key+"&var=p", nil)
	openSession(t, ts.URL, SessionRequest{Corpus: "anagram"})

	v := varz(t, ts.URL)
	if v.Demand.Sessions != 1 || v.Demand.Evicted != 1 || v.Demand.Created != 2 {
		t.Errorf("after eviction: %+v", v.Demand)
	}
	if v.Demand.Queries == 0 {
		t.Errorf("evicted session's counters were dropped: %+v", v.Demand)
	}
	if resp := getJSON(t, ts.URL+"/v1/pointsto?key="+sr1.Key+"&var=p", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted key with no snapshot: status %d, want 404", resp.StatusCode)
	}
}

// TestSessionParseFault422: the session endpoint speaks the same fault
// taxonomy as /v1/analyze.
func TestSessionParseFault422(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/session", SessionRequest{
		Sources: []SourceJSON{{Name: "bad.c", Text: "int main( {"}}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("parse error: status %d, want 422: %s", resp.StatusCode, raw)
	}
	var e ErrorResponse
	json.Unmarshal(raw, &e)
	if e.Kind != "parse" && e.Kind != "sema" {
		t.Errorf("kind = %q", e.Kind)
	}
}
