package server

import (
	"repro/internal/export"
)

// SourceJSON is one translation unit of an analysis request.
type SourceJSON struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// LimitsJSON carries per-request resource bounds. Every field is clamped to
// the server's configured ceiling; zero means "use the ceiling" (or
// unlimited when the server has none).
type LimitsJSON struct {
	MaxSteps  int   `json:"max_steps,omitempty"`
	MaxFacts  int   `json:"max_facts,omitempty"`
	MaxCells  int   `json:"max_cells,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// AnalyzeRequest is the body of POST /v1/analyze. Exactly one of Sources or
// Corpus must be set; Corpus names a built-in benchmark program.
type AnalyzeRequest struct {
	Sources  []SourceJSON `json:"sources,omitempty"`
	Corpus   string       `json:"corpus,omitempty"`
	Strategy string       `json:"strategy,omitempty"` // instance name; default common-initial-seq
	ABI      string       `json:"abi,omitempty"`      // lp64 (default), ilp32, packed1
	Limits   LimitsJSON   `json:"limits,omitempty"`
}

// ReportJSON is the summary returned by /v1/analyze and /v1/compare: the
// cache key to query against plus the headline metrics. Incomplete is true
// when a resource limit stopped the solve before fixpoint — the facts are
// sound but not exhaustive (the stop detail is in Stop).
type ReportJSON struct {
	Key          string                 `json:"key"`
	Strategy     string                 `json:"strategy"`
	ABI          string                 `json:"abi"`
	TotalFacts   int                    `json:"total_facts"`
	DerefSites   int                    `json:"deref_sites"`
	AvgDerefSize float64                `json:"avg_deref_size"`
	Steps        int                    `json:"steps"`
	DurationNS   int64                  `json:"duration_ns"`
	Incomplete   bool                   `json:"incomplete"`
	Stop         *export.IncompleteJSON `json:"stop,omitempty"`
}

// PointsToResponse is the body of GET /v1/pointsto.
type PointsToResponse struct {
	Key     string   `json:"key"`
	Var     string   `json:"var"`
	Found   bool     `json:"found"` // false: the program has no such variable
	Targets []string `json:"targets"`
	// Incomplete mirrors the report: on a partial result an empty Targets
	// means "not derived", not "points nowhere".
	Incomplete bool `json:"incomplete"`
}

// AliasResponse is the body of GET /v1/alias.
type AliasResponse struct {
	Key        string `json:"key"`
	A          string `json:"a"`
	B          string `json:"b"`
	MayAlias   bool   `json:"may_alias"`
	Incomplete bool   `json:"incomplete"` // a false MayAlias is inconclusive when true
}

// CompareRequest is the body of POST /v1/compare: one program analyzed
// under all four instances.
type CompareRequest struct {
	Sources []SourceJSON `json:"sources,omitempty"`
	Corpus  string       `json:"corpus,omitempty"`
	ABI     string       `json:"abi,omitempty"`
	Limits  LimitsJSON   `json:"limits,omitempty"`
}

// CompareDiff is one variable whose points-to set differs across instances.
type CompareDiff struct {
	Var  string              `json:"var"`
	Sets map[string][]string `json:"sets"` // instance name → sorted targets
}

// CompareResponse is the body of POST /v1/compare. Results follow the
// paper's presentation order (§4.3: collapse-always, collapse-on-cast,
// common-initial-seq, offsets).
type CompareResponse struct {
	Results []ReportJSON  `json:"results"`
	Diffs   []CompareDiff `json:"diffs"`
	// Truncated is true when more than maxCompareDiffs variables differed
	// and the tail was dropped.
	Truncated bool `json:"truncated"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"` // fault taxonomy: parse, sema, limit, canceled, internal, usage
	// Key is set when the request was well-formed enough to address the
	// cache (so a client can retry the query later).
	Key string `json:"key,omitempty"`
}
