package server

import (
	"repro/internal/export"
)

// SourceJSON is one translation unit of an analysis request.
type SourceJSON struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// LimitsJSON carries per-request resource bounds. Every field is clamped to
// the server's configured ceiling; zero means "use the ceiling" (or
// unlimited when the server has none).
type LimitsJSON struct {
	MaxSteps  int   `json:"max_steps,omitempty"`
	MaxFacts  int   `json:"max_facts,omitempty"`
	MaxCells  int   `json:"max_cells,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// AnalyzeRequest is the body of POST /v1/analyze. Exactly one of Sources or
// Corpus must be set; Corpus names a built-in benchmark program.
type AnalyzeRequest struct {
	Sources  []SourceJSON `json:"sources,omitempty"`
	Corpus   string       `json:"corpus,omitempty"`
	Strategy string       `json:"strategy,omitempty"` // instance name; default common-initial-seq
	ABI      string       `json:"abi,omitempty"`      // lp64 (default), ilp32, packed1
	Limits   LimitsJSON   `json:"limits,omitempty"`
	// Base names the key of an earlier analyze whose constraint graph the
	// server may resume from (an edit-and-reanalyze workflow: analyze once,
	// then send edited sources with base set to the returned key). Purely a
	// performance hint — if the graph is gone, the config differs, or the
	// delta cannot be proven safe, the server solves cold; the answer is
	// byte-identical either way. The response's "incr" section says which
	// path ran.
	Base string `json:"base,omitempty"`
}

// IncrJSON reports how an analyze with a base key was actually served.
type IncrJSON struct {
	// Outcome is "resumed" (warm delta solve) or "cold". FallbackReason
	// explains a cold outcome: "no-graph" (base not resident),
	// "config-ineligible" (limits or misuse flagging on the request),
	// "config-mismatch" (graph captured under a different config) or
	// "match-conflict" (the edit defeated object matching).
	Outcome        string `json:"outcome"`
	FallbackReason string `json:"fallback_reason,omitempty"`
	// Delta shape of a warm resume (zero on cold paths).
	UnitsChanged   int `json:"units_changed,omitempty"`
	StmtsRetracted int `json:"stmts_retracted,omitempty"`
	CellsSeeded    int `json:"cells_seeded,omitempty"`
	FactsSeeded    int `json:"facts_seeded,omitempty"`
}

// ReportJSON is the summary returned by /v1/analyze and /v1/compare: the
// cache key to query against plus the headline metrics. Incomplete is true
// when a resource limit stopped the solve before fixpoint — the facts are
// sound but not exhaustive (the stop detail is in Stop).
type ReportJSON struct {
	Key          string                 `json:"key"`
	Strategy     string                 `json:"strategy"`
	ABI          string                 `json:"abi"`
	TotalFacts   int                    `json:"total_facts"`
	DerefSites   int                    `json:"deref_sites"`
	AvgDerefSize float64                `json:"avg_deref_size"`
	Steps        int                    `json:"steps"`
	DurationNS   int64                  `json:"duration_ns"`
	Incomplete   bool                   `json:"incomplete"`
	Stop         *export.IncompleteJSON `json:"stop,omitempty"`
	// Incr is set when the request named a base key: how the incremental
	// path served it. Absent on cache hits (nothing solved at all).
	Incr *IncrJSON `json:"incr,omitempty"`
}

// Query ops for QueryJSON.Op.
const (
	OpPointsTo = "pointsto"
	OpMayAlias = "alias"
)

// QueryJSON is the one query shape every read endpoint speaks: GET
// /v1/pointsto and GET /v1/alias normalize their form parameters into it,
// and POST /v1/query accepts a batch of them verbatim. Var carries the
// pointsto operand; A and B carry the alias operands.
type QueryJSON struct {
	Op  string `json:"op"` // "pointsto" or "alias"
	Key string `json:"key"`
	Var string `json:"var,omitempty"`
	A   string `json:"a,omitempty"`
	B   string `json:"b,omitempty"`
}

// QueryResultJSON is one query's answer — the body of GET /v1/pointsto and
// GET /v1/alias, and one element of a /v1/query batch response. Exactly one
// of Targets (pointsto) or MayAlias (alias) is populated. A query for a
// variable name the program does not define fails with 404 and kind
// "unknown-name" — an empty Targets therefore always means "points
// nowhere", never "no such variable".
type QueryResultJSON struct {
	Op       string   `json:"op"`
	Key      string   `json:"key"`
	Var      string   `json:"var,omitempty"`
	A        string   `json:"a,omitempty"`
	B        string   `json:"b,omitempty"`
	Targets  []string `json:"targets,omitempty"`
	MayAlias *bool    `json:"may_alias,omitempty"`
	// Incomplete mirrors the answering report: on a partial (limit-tripped)
	// result an empty Targets or false MayAlias means "not derived", not
	// conclusive absence. Always false for demand-engine answers.
	Incomplete bool `json:"incomplete,omitempty"`
	// Error and Status are set only inside /v1/query batch responses, where
	// per-query failures are reported in place; the standalone endpoints
	// use HTTP status codes instead.
	Error  *ErrorResponse `json:"error,omitempty"`
	Status int            `json:"status,omitempty"`
}

// QueryBatchRequest is the body of POST /v1/query.
type QueryBatchRequest struct {
	Queries []QueryJSON `json:"queries"`
}

// QueryBatchResponse is the body of POST /v1/query: one result per query,
// in request order.
type QueryBatchResponse struct {
	Results []QueryResultJSON `json:"results"`
}

// SessionRequest is the body of POST /v1/session: open (or refresh) a warm
// query session for a program. Sessions take no limits — a session answers
// queries exactly, via the demand engine or its memoized full solve — so
// the returned key is the limit-free content hash of sources + config.
type SessionRequest struct {
	Sources  []SourceJSON `json:"sources,omitempty"`
	Corpus   string       `json:"corpus,omitempty"`
	Strategy string       `json:"strategy,omitempty"` // instance name; default common-initial-seq
	ABI      string       `json:"abi,omitempty"`      // lp64 (default), ilp32, packed1
}

// SessionResponse is the body of POST /v1/session. Names lists every
// queryable variable and function, so a client can drive /v1/query without
// guessing.
type SessionResponse struct {
	Key    string   `json:"key"`
	Cached bool     `json:"cached"` // the session was already warm
	Names  []string `json:"names"`
}

// CompareRequest is the body of POST /v1/compare: one program analyzed
// under all four instances.
type CompareRequest struct {
	Sources []SourceJSON `json:"sources,omitempty"`
	Corpus  string       `json:"corpus,omitempty"`
	ABI     string       `json:"abi,omitempty"`
	Limits  LimitsJSON   `json:"limits,omitempty"`
}

// CompareDiff is one variable whose points-to set differs across instances.
type CompareDiff struct {
	Var  string              `json:"var"`
	Sets map[string][]string `json:"sets"` // instance name → sorted targets
}

// CompareResponse is the body of POST /v1/compare. Results follow the
// paper's presentation order (§4.3: collapse-always, collapse-on-cast,
// common-initial-seq, offsets).
type CompareResponse struct {
	Results []ReportJSON  `json:"results"`
	Diffs   []CompareDiff `json:"diffs"`
	// Truncated is true when more than maxCompareDiffs variables differed
	// and the tail was dropped.
	Truncated bool `json:"truncated"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Kind is the fault taxonomy code: parse, sema, limit, canceled,
	// internal, usage, unknown-name, overloaded, would-miss-deadline.
	Kind string `json:"kind"`
	// Key is set when the request was well-formed enough to address the
	// cache (so a client can retry the query later).
	Key string `json:"key,omitempty"`
	// RetryAfter mirrors the Retry-After header (seconds) on admission
	// rejections (429 overloaded, 503 would-miss-deadline).
	RetryAfter int `json:"retry_after,omitempty"`
}
