package server

import (
	"container/list"
	"context"
	"errors"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// This file is the server's overload armor: admission control for the
// endpoints that can consume solver capacity. Each such endpoint owns an
// admission controller — a fixed number of concurrency slots plus a
// bounded wait queue. A request that finds a free slot runs; one that
// finds the queue full is rejected immediately with 429 ("overloaded") and
// a Retry-After estimate, because queueing it would only deepen the
// overload. Orthogonally, a request whose remaining deadline budget is
// smaller than the cached cost estimate for its program (an EWMA of past
// solve times, tracked per store key) is shed with 503
// ("would-miss-deadline") without consuming a slot at all: starting a
// solve whose answer will expire before it exists is pure waste.
//
// Requests that the cache can answer from memory, and requests that can
// piggyback on an in-flight solve for the same key, bypass admission
// entirely — admission protects solver capacity, not cheap reads.

// AdmissionConfig bounds one endpoint's solver consumption.
type AdmissionConfig struct {
	// MaxInflight is the number of requests allowed to hold solver
	// capacity concurrently; 0 disables admission control (unlimited).
	// A slot is one solve, not one core: when the analysis runs with
	// Options.Parallelism > 1, every admitted solve fans out that many
	// workers during its parallel waves, so size MaxInflight for
	// cores / per-solve parallelism rather than cores.
	MaxInflight int
	// MaxQueue is the number of requests allowed to wait for a slot beyond
	// MaxInflight; 0 selects 4×MaxInflight. Further requests get 429.
	MaxQueue int
}

// admission is one endpoint's controller.
type admission struct {
	slots    chan struct{} // nil = admission disabled
	maxQueue int64

	queued   atomic.Int64 // gauge: waiting for a slot
	inflight atomic.Int64 // gauge: holding a slot

	admitted        atomic.Int64
	shedQueueFull   atomic.Int64
	shedDeadline    atomic.Int64
	canceledWaiting atomic.Int64
}

func newAdmission(cfg AdmissionConfig) *admission {
	a := &admission{}
	if cfg.MaxInflight > 0 {
		a.slots = make(chan struct{}, cfg.MaxInflight)
		a.maxQueue = int64(cfg.MaxQueue)
		if a.maxQueue <= 0 {
			a.maxQueue = int64(4 * cfg.MaxInflight)
		}
	}
	return a
}

// acquire admits the request (returning the release func the caller must
// defer) or rejects it: KindOverloaded when the queue is full, KindCanceled
// when ctx dies while waiting.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	if a.slots == nil {
		a.admitted.Add(1)
		return func() {}, nil
	}
	taken := func() func() {
		a.admitted.Add(1)
		a.inflight.Add(1)
		return func() {
			a.inflight.Add(-1)
			<-a.slots
		}
	}
	select {
	case a.slots <- struct{}{}:
		return taken(), nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.shedQueueFull.Add(1)
		return nil, fault.Newf(fault.KindOverloaded, "admit", "",
			"solve queue full (%d waiting beyond %d slots)", a.maxQueue, cap(a.slots))
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return taken(), nil
	case <-ctx.Done():
		a.canceledWaiting.Add(1)
		return nil, fault.New(fault.KindCanceled, "admit", "", ctx.Err())
	}
}

// varz snapshots the controller's counters.
func (a *admission) varz() AdmissionEndpointVarz {
	v := AdmissionEndpointVarz{
		MaxQueue:        a.maxQueue,
		Inflight:        a.inflight.Load(),
		Queued:          a.queued.Load(),
		Admitted:        a.admitted.Load(),
		ShedQueueFull:   a.shedQueueFull.Load(),
		ShedDeadline:    a.shedDeadline.Load(),
		CanceledWaiting: a.canceledWaiting.Load(),
	}
	if a.slots != nil {
		v.MaxInflight = cap(a.slots)
	}
	return v
}

// --- per-key cost estimates ---

// costAlpha is the EWMA weight of the newest observation.
const costAlpha = 0.3

// maxCostKeys bounds the cost table; beyond it the least recently touched
// estimate is dropped (an evicted key just loses shed protection until it
// is solved again).
const maxCostKeys = 4096

// costTable tracks an EWMA of solve wall time per store key, plus a global
// mean used for Retry-After estimates. All methods are concurrency-safe.
type costTable struct {
	mu      sync.Mutex
	entries map[string]*list.Element // key → element; value *costEntry
	lru     *list.List

	totalNS atomic.Int64
	totalN  atomic.Int64
}

type costEntry struct {
	key  string
	ewma time.Duration
}

func newCostTable() *costTable {
	return &costTable{entries: make(map[string]*list.Element), lru: list.New()}
}

// observe folds one measured solve duration into the key's estimate.
func (ct *costTable) observe(key string, d time.Duration) {
	ct.totalNS.Add(d.Nanoseconds())
	ct.totalN.Add(1)
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if el, ok := ct.entries[key]; ok {
		e := el.Value.(*costEntry)
		e.ewma = time.Duration(costAlpha*float64(d) + (1-costAlpha)*float64(e.ewma))
		ct.lru.MoveToFront(el)
		return
	}
	ct.entries[key] = ct.lru.PushFront(&costEntry{key: key, ewma: d})
	for len(ct.entries) > maxCostKeys {
		tail := ct.lru.Back()
		delete(ct.entries, tail.Value.(*costEntry).key)
		ct.lru.Remove(tail)
	}
}

// estimate returns the key's expected solve cost, when one is known.
func (ct *costTable) estimate(key string) (time.Duration, bool) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	el, ok := ct.entries[key]
	if !ok {
		return 0, false
	}
	ct.lru.MoveToFront(el)
	return el.Value.(*costEntry).ewma, true
}

// meanSolve is the global mean solve duration (zero until one completes).
func (ct *costTable) meanSolve() time.Duration {
	n := ct.totalN.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(ct.totalNS.Load() / n)
}

// keys returns the number of tracked estimates (a /varz gauge).
func (ct *costTable) keys() int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return len(ct.entries)
}

// --- wiring ---

// retryAfterError decorates an admission rejection with the backoff hint
// the wire contract carries as a Retry-After header.
type retryAfterError struct {
	err   error
	after int // seconds
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

// retryAfter estimates how long a rejected client should back off: the
// queue ahead of it, costed at the mean solve time, divided across the
// endpoint's slots — clamped to [1s, 60s] so the hint is always actionable.
func (s *Server) retryAfter(a *admission) int {
	mean := s.costs.meanSolve()
	if mean <= 0 {
		mean = 250 * time.Millisecond // cold daemon: a guess beats silence
	}
	waiting := float64(a.queued.Load() + a.inflight.Load() + 1)
	slots := 1.0
	if a.slots != nil {
		slots = float64(cap(a.slots))
	}
	secs := math.Ceil(waiting * mean.Seconds() / slots)
	return int(math.Min(math.Max(secs, 1), 60))
}

// admitSolve runs the admission decision for one request about to consume
// solver capacity on endpoint. The caller must defer the returned release.
// Order matters: a memory hit or a joinable in-flight solve bypasses
// admission (the caller detects that itself via Peek/Joinable); here the
// request is known to need real work.
func (s *Server) admitSolve(ctx context.Context, endpoint, key string) (release func(), err error) {
	a := s.admissions[endpoint]
	if a == nil {
		return func() {}, nil
	}
	// Deadline-aware shedding: refusing in O(1) beats solving for nobody.
	if deadline, ok := ctx.Deadline(); ok {
		if est, known := s.costs.estimate(key); known {
			if remaining := time.Until(deadline); remaining < est {
				a.shedDeadline.Add(1)
				ferr := fault.Newf(fault.KindDeadline, "admit", "",
					"remaining deadline budget %v is below the estimated solve cost %v", remaining.Round(time.Millisecond), est.Round(time.Millisecond))
				return nil, &retryAfterError{err: ferr, after: s.retryAfter(a)}
			}
		}
	}
	release, err = a.acquire(ctx)
	if err != nil {
		if errors.Is(err, fault.ErrOverloaded) {
			return nil, &retryAfterError{err: err, after: s.retryAfter(a)}
		}
		return nil, err
	}
	return release, nil
}

// AdmissionEndpointVarz is the wire form of one endpoint's admission
// counters.
type AdmissionEndpointVarz struct {
	MaxInflight     int   `json:"max_inflight"`
	MaxQueue        int64 `json:"max_queue"`
	Inflight        int64 `json:"inflight"`         // gauge: holding a slot
	Queued          int64 `json:"queued"`           // gauge: waiting for a slot
	Admitted        int64 `json:"admitted"`         // requests granted a slot
	ShedQueueFull   int64 `json:"shed_queue_full"`  // 429s: queue was full
	ShedDeadline    int64 `json:"shed_deadline"`    // 503s: would miss deadline
	CanceledWaiting int64 `json:"canceled_waiting"` // gave up while queued
}

// AdmissionVarz aggregates the admission layer for /varz.
type AdmissionVarz struct {
	CostKeys  int                              `json:"cost_keys"` // tracked per-key solve-cost estimates
	Endpoints map[string]AdmissionEndpointVarz `json:"endpoints"`
}

// retryAfterSeconds extracts the backoff hint a response should carry.
func retryAfterSeconds(err error) (int, bool) {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return ra.after, true
	}
	return 0, false
}

// setRetryAfter stamps the header when the error carries a hint.
func setRetryAfter(w http.ResponseWriter, err error) int {
	if secs, ok := retryAfterSeconds(err); ok {
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		return secs
	}
	return 0
}
