package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

const incrBaseProgram = `
struct box { int *slot; };
int u, v;
struct box bx;
int *out;
void put(struct box *b) { b->slot = &u; }
int main() { put(&bx); out = bx.slot; return 0; }
`

// TestAnalyzeWithBase drives the edit-and-reanalyze loop end to end: a cold
// analyze registers a constraint graph, an edited request naming it as base
// resumes warm with identical facts to a cold solve of the edit, and the
// /varz incr counters record the traffic.
func TestAnalyzeWithBase(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	analyze := func(text, base string) ReportJSON {
		t.Helper()
		req := AnalyzeRequest{Sources: []SourceJSON{{Name: "b.c", Text: text}}, Base: base}
		resp, raw := postJSON(t, ts.URL+"/v1/analyze", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze: %d: %s", resp.StatusCode, raw)
		}
		var out ReportJSON
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	cold := analyze(incrBaseProgram, "")
	if cold.Incr != nil {
		t.Errorf("cold analyze should carry no incr section, got %+v", cold.Incr)
	}

	edited := strings.Replace(incrBaseProgram, "b->slot = &u;", "b->slot = &v;", 1)
	warm := analyze(edited, cold.Key)
	if warm.Incr == nil || warm.Incr.Outcome != "resumed" {
		t.Fatalf("want warm resume, got %+v", warm.Incr)
	}
	if warm.Incr.CellsSeeded == 0 || warm.Incr.UnitsChanged == 0 {
		t.Errorf("warm resume reports empty delta: %+v", warm.Incr)
	}

	// Byte-identical answers: cold-solving the edit on a fresh server gives
	// the same facts the warm path cached.
	_, ts2 := newTestServer(t, Config{})
	req := AnalyzeRequest{Sources: []SourceJSON{{Name: "b.c", Text: edited}}}
	resp, raw := postJSON(t, ts2.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh analyze: %d: %s", resp.StatusCode, raw)
	}
	var fresh ReportJSON
	if err := json.Unmarshal(raw, &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Key != warm.Key || fresh.TotalFacts != warm.TotalFacts {
		t.Errorf("warm and cold disagree: warm key=%s facts=%d, cold key=%s facts=%d",
			warm.Key, warm.TotalFacts, fresh.Key, fresh.TotalFacts)
	}

	// An unknown (but well-formed) base is a counted miss that still solves.
	bogus := strings.Repeat("ab", 32)
	third := strings.Replace(incrBaseProgram, "out = bx.slot;", "out = &u;", 1)
	miss := analyze(third, bogus)
	if miss.Incr == nil || miss.Incr.Outcome != "cold" || miss.Incr.FallbackReason != "no-graph" {
		t.Errorf("want no-graph miss, got %+v", miss.Incr)
	}

	v := varz(t, ts.URL)
	if v.Incr.Hits != 1 || v.Incr.Misses != 1 {
		t.Errorf("incr counters: want 1 hit / 1 miss, got %+v", v.Incr)
	}
	if v.Incr.Graphs == 0 || v.Incr.Stored < 2 {
		t.Errorf("graph registry did not accumulate: %+v", v.Incr)
	}

	// A malformed base is rejected before any solving.
	resp, raw = postJSON(t, ts.URL+"/v1/analyze",
		AnalyzeRequest{Sources: []SourceJSON{{Name: "b.c", Text: incrBaseProgram}}, Base: "../etc/passwd"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed base: want 400, got %d: %s", resp.StatusCode, raw)
	}
}

// TestAnalyzeBaseIneligibleConfig: a limit-bearing request cannot ride the
// incremental path even when the base graph is resident.
func TestAnalyzeBaseIneligibleConfig(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := AnalyzeRequest{Sources: []SourceJSON{{Name: "b.c", Text: incrBaseProgram}}}
	resp, raw := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d: %s", resp.StatusCode, raw)
	}
	var cold ReportJSON
	if err := json.Unmarshal(raw, &cold); err != nil {
		t.Fatal(err)
	}

	edited := strings.Replace(incrBaseProgram, "&u", "&v", 1)
	limReq := AnalyzeRequest{
		Sources: []SourceJSON{{Name: "b.c", Text: edited}},
		Base:    cold.Key,
		Limits:  LimitsJSON{MaxSteps: 1 << 20},
	}
	resp, raw = postJSON(t, ts.URL+"/v1/analyze", limReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("limited analyze: %d: %s", resp.StatusCode, raw)
	}
	var lim ReportJSON
	if err := json.Unmarshal(raw, &lim); err != nil {
		t.Fatal(err)
	}
	if lim.Incr == nil || lim.Incr.Outcome != "cold" || lim.Incr.FallbackReason != "config-ineligible" {
		t.Errorf("want config-ineligible fallback, got %+v", lim.Incr)
	}
}
