package server

import (
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/store"
)

// histogram is a fixed-bucket latency histogram: bucket i counts requests
// with latency < 1ms·2^i, plus an overflow bucket. Cheap enough to sit on
// every request, precise enough for a /varz dashboard.
type histogram struct {
	mu      sync.Mutex
	buckets [13]int64 // <1ms, <2ms, <4ms, ..., <1s, <2s, >=2s
	count   int64
	sumNS   int64
}

// bucketLabels mirror the buckets field (upper bounds, cumulative style).
var bucketLabels = []string{
	"le_1ms", "le_2ms", "le_4ms", "le_8ms", "le_16ms", "le_32ms",
	"le_64ms", "le_128ms", "le_256ms", "le_512ms", "le_1s", "le_2s", "inf",
}

func (h *histogram) observe(d time.Duration) {
	idx := 0
	for bound := time.Millisecond; idx < len(h.buckets)-1 && d >= bound; idx++ {
		bound *= 2
	}
	h.mu.Lock()
	h.buckets[idx]++
	h.count++
	h.sumNS += d.Nanoseconds()
	h.mu.Unlock()
}

// HistogramJSON is the wire form of a latency histogram.
type HistogramJSON struct {
	Count   int64            `json:"count"`
	MeanMS  float64          `json:"mean_ms"`
	Buckets map[string]int64 `json:"buckets"`
}

func (h *histogram) snapshot() HistogramJSON {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := HistogramJSON{Count: h.count, Buckets: make(map[string]int64, len(bucketLabels))}
	for i, label := range bucketLabels {
		out.Buckets[label] = h.buckets[i]
	}
	if h.count > 0 {
		out.MeanMS = float64(h.sumNS) / float64(h.count) / 1e6
	}
	return out
}

// endpointStats aggregates one endpoint's traffic.
type endpointStats struct {
	requests  atomic.Int64
	errors4xx atomic.Int64
	errors5xx atomic.Int64
	canceled  atomic.Int64 // 499s
	latency   histogram
}

// EndpointJSON is the wire form of one endpoint's stats.
type EndpointJSON struct {
	Requests  int64         `json:"requests"`
	Errors4xx int64         `json:"errors_4xx"`
	Errors5xx int64         `json:"errors_5xx"`
	Canceled  int64         `json:"canceled_499"`
	Latency   HistogramJSON `json:"latency"`
}

// Varz is the /varz document: expvar-flavored counters covering the cache,
// the solver, the admission layer, and per-endpoint traffic.
type Varz struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Cache         store.Stats             `json:"cache"`
	Solver        SolverVarz              `json:"solver"`
	Demand        DemandVarz              `json:"demand"`
	Incr          IncrVarz                `json:"incr"`
	Admission     AdmissionVarz           `json:"admission"`
	Chaos         chaos.Stats             `json:"chaos"`
	Endpoints     map[string]EndpointJSON `json:"endpoints"`
}

// DemandVarz aggregates the warm-session demand engine's daemon-lifetime
// counters (resident sessions plus everything already evicted).
type DemandVarz struct {
	Sessions int64 `json:"sessions"` // warm sessions currently resident
	Created  int64 `json:"created"`  // sessions ever created
	Evicted  int64 `json:"evicted"`  // sessions dropped by the LRU cap

	Queries        int64 `json:"queries"`         // PointsTo/MayAlias queries answered
	MemoHits       int64 `json:"memo_hits"`       // queries fully covered by earlier slices
	Fallbacks      int64 `json:"fallbacks"`       // budget trips rerouted to the exhaustive solver
	FullSolves     int64 `json:"full_solves"`     // exhaustive solves sessions had to run
	StmtsActivated int64 `json:"stmts_activated"` // statements pulled into demand slices
	CellsVisited   int64 `json:"cells_visited"`   // cells interned by demand slices
}

// IncrVarz aggregates the incremental re-analysis layer: graph residency
// and how base-key requests were served.
type IncrVarz struct {
	Graphs  int64 `json:"graphs"`  // constraint graphs currently resident
	Stored  int64 `json:"stored"`  // graphs ever registered
	Evicted int64 `json:"evicted"` // graphs dropped by the LRU cap

	Hits      int64 `json:"hits"`      // warm delta solves served
	Misses    int64 `json:"misses"`    // base named but no usable graph
	Fallbacks int64 `json:"fallbacks"` // resumes that fell back to a cold solve
}

// SolverVarz aggregates the daemon-lifetime solver work.
type SolverVarz struct {
	Solves     int64 `json:"solves"`      // analyses actually run (cache misses that solved)
	Steps      int64 `json:"steps"`       // total worklist steps across those solves
	Incomplete int64 `json:"incomplete"`  // solves that stopped at a resource limit
	Rejected   int64 `json:"rejected"`    // inputs refused (parse/sema)
	Canceled   int64 `json:"canceled"`    // solves abandoned by cancellation
	InFlightNS int64 `json:"inflight_ns"` // total wall time spent solving

	// Constraint-graph layer totals (online cycle elimination + wave
	// scheduling in the dense solver).
	SCCsFound       int64 `json:"sccs_found"`       // copy-edge cycles collapsed
	CellsMerged     int64 `json:"cells_merged"`     // cells folded into representatives
	Waves           int64 `json:"waves"`            // topological passes run
	TraversalsSaved int64 `json:"traversals_saved"` // edge traversals avoided vs per-fact schedule

	// Work-stealing wave-executor totals, all zero while solves run
	// sequentially (the default unless Options.Parallelism > 1 reaches the
	// solver). Steals are schedule-dependent; the rest are deterministic
	// per solve at a fixed parallelism.
	ParWaves  int64 `json:"par_waves"`  // frontiers executed sharded
	ParShards int64 `json:"par_shards"` // shards claimed across those waves
	ParSteals int64 `json:"par_steals"` // shards claimed from another worker's queue

	// Offline-prepass and set-interner totals (constraint reduction before
	// the fixpoint, hash-consed points-to set sharing during it); zero when
	// the pair did not engage.
	PrepClasses   int64 `json:"prep_classes"`   // equivalence classes merged pre-fixpoint
	PrepCollapsed int64 `json:"prep_collapsed"` // cells folded by those merges
	InternSets    int64 `json:"intern_sets"`    // sets re-pointed at a shared allocation
	InternBytes   int64 `json:"intern_bytes"`   // approximate bytes released by sharing
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// chaosWriter redirects the response body through a chaos-wrapped writer
// (slow-client simulation) while header writes stay on the recorder.
type chaosWriter struct {
	*statusRecorder
	body io.Writer
}

func (w *chaosWriter) Write(p []byte) (int, error) { return w.body.Write(p) }

// instrument wraps a handler with per-endpoint counting and latency
// recording under the given name, plus the chaos slow-writer when one is
// configured.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := &endpointStats{}
	s.endpoints[name] = ep
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		var hw http.ResponseWriter = rec
		if s.cfg.Chaos != nil {
			if body := s.cfg.Chaos.WrapWriter(rec); body != io.Writer(rec) {
				hw = &chaosWriter{statusRecorder: rec, body: body}
			}
		}
		h(hw, r)
		ep.requests.Add(1)
		switch {
		case rec.status == StatusClientClosedRequest:
			ep.canceled.Add(1)
		case rec.status >= 500:
			ep.errors5xx.Add(1)
		case rec.status >= 400:
			ep.errors4xx.Add(1)
		}
		ep.latency.observe(time.Since(start))
	}
}
