package server

import (
	"sync"

	"repro/pointsto"
)

// sessionCache keeps warm pointsto.Sessions keyed by the same content hash
// the result cache uses, so /v1/pointsto and /v1/alias can answer through
// the demand engine without forcing (or having already forced) a full
// solve. Eviction is count-based LRU: a Session pins its front-end result
// and accumulated demand slice, so the bound is on residency, not bytes.
// Evicted sessions fold their counters into the cache totals so /varz
// numbers are daemon-lifetime, not residency-lifetime.
type sessionCache struct {
	mu       sync.Mutex
	max      int
	entries  map[string]*sessionEntry
	creating map[string]*sessionFlight

	clock   int64 // monotonic LRU tick source
	created int64
	evicted int64
	retired pointsto.SessionStats // counters of evicted sessions
}

// sessionEntry is one resident session plus its LRU clock.
type sessionEntry struct {
	sess *pointsto.Session
	tick int64
}

// sessionFlight dedups concurrent creations of the same key: the front end
// runs once, every caller shares the outcome.
type sessionFlight struct {
	done chan struct{}
	sess *pointsto.Session
	err  error
}

func newSessionCache(max int) *sessionCache {
	if max <= 0 {
		max = 32
	}
	return &sessionCache{
		max:      max,
		entries:  make(map[string]*sessionEntry),
		creating: make(map[string]*sessionFlight),
	}
}

// get returns the resident session for key, refreshing its LRU position.
func (c *sessionCache) get(key string) (*pointsto.Session, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e.tick = c.nextTickLocked()
	return e.sess, true
}

// tick is a monotonic LRU clock; nextTickLocked advances it.
func (c *sessionCache) nextTickLocked() int64 {
	c.clock++
	return c.clock
}

// getOrCreate returns the session for key, building it (front end only — no
// solving) on first use. Construction errors are classified faults and are
// not cached: a later identical request retries. cached reports whether the
// session already existed.
func (c *sessionCache) getOrCreate(key string, sources []pointsto.Source, cfg pointsto.Config) (sess *pointsto.Session, cached bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		e.tick = c.nextTickLocked()
		c.mu.Unlock()
		return e.sess, true, nil
	}
	if f, ok := c.creating[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.sess, false, f.err
	}
	f := &sessionFlight{done: make(chan struct{})}
	c.creating[key] = f
	c.mu.Unlock()

	f.sess, f.err = pointsto.NewSession(sources, cfg)

	c.mu.Lock()
	delete(c.creating, key)
	if f.err == nil {
		c.entries[key] = &sessionEntry{sess: f.sess, tick: c.nextTickLocked()}
		c.created++
		c.evictLocked()
	}
	c.mu.Unlock()
	close(f.done)
	return f.sess, false, f.err
}

// evictLocked drops least-recently-used sessions down to the residency cap.
func (c *sessionCache) evictLocked() {
	for len(c.entries) > c.max {
		var oldestKey string
		var oldest int64
		first := true
		for k, e := range c.entries {
			if first || e.tick < oldest {
				oldestKey, oldest, first = k, e.tick, false
			}
		}
		c.retireLocked(c.entries[oldestKey].sess)
		delete(c.entries, oldestKey)
		c.evicted++
	}
}

// retireLocked folds a departing session's counters into the totals.
func (c *sessionCache) retireLocked(s *pointsto.Session) {
	st := s.Stats()
	c.retired.Queries += st.Queries
	c.retired.MemoHits += st.MemoHits
	c.retired.Fallbacks += st.Fallbacks
	c.retired.FullSolves += st.FullSolves
	c.retired.ObjectsDemanded += st.ObjectsDemanded
	c.retired.StmtsActivated += st.StmtsActivated
	c.retired.CellsVisited += st.CellsVisited
}

// varz aggregates the cache's demand counters: the retired totals plus
// every resident session's live numbers.
func (c *sessionCache) varz() DemandVarz {
	c.mu.Lock()
	defer c.mu.Unlock()
	agg := c.retired
	for _, e := range c.entries {
		st := e.sess.Stats()
		agg.Queries += st.Queries
		agg.MemoHits += st.MemoHits
		agg.Fallbacks += st.Fallbacks
		agg.FullSolves += st.FullSolves
		agg.ObjectsDemanded += st.ObjectsDemanded
		agg.StmtsActivated += st.StmtsActivated
		agg.CellsVisited += st.CellsVisited
	}
	return DemandVarz{
		Sessions:       int64(len(c.entries)),
		Created:        c.created,
		Evicted:        c.evicted,
		Queries:        agg.Queries,
		MemoHits:       agg.MemoHits,
		Fallbacks:      agg.Fallbacks,
		FullSolves:     agg.FullSolves,
		StmtsActivated: int64(agg.StmtsActivated),
		CellsVisited:   int64(agg.CellsVisited),
	}
}
