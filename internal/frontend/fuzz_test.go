package frontend

import (
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeeds collects the corpus every frontend fuzz run starts from:
// the malformed inputs that once mattered, a couple of valid programs
// exercising structs/casts/preprocessing, the real corpus programs, and
// every regression input in testdata/crashers.
func fuzzSeeds(tb testing.TB) []string {
	seeds := []string{
		// Promoted from TestMalformedInputsError.
		"int x",
		"struct {",
		"#if 1\nint x;",
		"void f(void) { return 1; }}",
		"int f(void) { goto; }",
		"int a[-]; ",
		"\"unterminated",
		"#define F(x x) x",
		"#include <nosuchheader.h>",
		"int f(int, int,, int);",
		// Valid programs covering the interesting constructs.
		"int x; int *p; int main(void) { p = &x; return *p; }",
		`#include <stdlib.h>
struct S { int *a; struct S *next; } g;
int x;
int *f(struct S *p) {
	p->a = &x;
	p->next = (struct S *)malloc(sizeof(struct S));
	return p->next->a;
}
int main(void) { return *f(&g) != 0; }`,
		"struct A { int x; int *p; }; struct B { int y; int *q; };\n" +
			"int v; int main(void) { struct A a; a.p = &v;\n" +
			"struct B *b = (struct B *)&a; return *b->q; }",
	}
	// Real corpus programs (read off disk: corpus imports frontend, so this
	// package cannot import corpus without a cycle).
	paths, err := filepath.Glob("../corpus/testdata/*.c")
	if err != nil {
		tb.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, string(data))
	}
	seeds = append(seeds, crasherSeeds(tb)...)
	return seeds
}

// crasherSeeds loads testdata/crashers: inputs that crashed the frontend
// once. Each is replayed by TestCrashersNoPanic and seeded into FuzzLoad
// so a fix can never regress silently.
func crasherSeeds(tb testing.TB) []string {
	paths, err := filepath.Glob(filepath.Join("testdata", "crashers", "*"))
	if err != nil {
		tb.Fatal(err)
	}
	var seeds []string
	for _, p := range paths {
		if filepath.Base(p) == "README.md" {
			continue
		}
		data, err := os.ReadFile(p)
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, string(data))
	}
	return seeds
}

// FuzzLoad drives the whole frontend — preprocess, parse, sema, normalize —
// over arbitrary bytes. The property is total robustness: Load may reject
// the input with a classified error, but must never panic (the fuzz engine
// reports any panic as a crasher).
func FuzzLoad(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		res, err := Load([]Source{{Name: "fuzz.c", Text: src}}, Options{})
		if err == nil && res == nil {
			t.Fatal("Load returned nil result and nil error")
		}
	})
}

// TestCrashersNoPanic replays every recorded crasher input (regression
// guard for fixed fuzz findings); runs in plain `go test` with no -fuzz.
func TestCrashersNoPanic(t *testing.T) {
	for i, src := range crasherSeeds(t) {
		res, err := Load([]Source{{Name: "crasher.c", Text: src}}, Options{})
		if err == nil && res == nil {
			t.Errorf("crasher %d: nil result and nil error", i)
		}
	}
}
