package frontend

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cc/layout"
	"repro/internal/fault"
)

func TestLoadSimple(t *testing.T) {
	r, err := Load([]Source{{Name: "a.c", Text: "int x, *p;\nvoid f(void) { p = &x; }"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.IR == nil || r.Sema == nil || r.Layout == nil || r.Universe == nil {
		t.Fatal("incomplete result")
	}
	if r.IR.NumStmts() == 0 {
		t.Error("no statements")
	}
}

func TestLoadMultiFile(t *testing.T) {
	r, err := Load([]Source{
		{Name: "a.c", Text: "int shared;\nint *get(void) { return &shared; }"},
		{Name: "b.c", Text: "extern int shared;\nint *get(void);\nint *p;\nvoid f(void) { p = get(); }"},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// get's retval flows across files: p must have facts after analysis;
	// here we only check the IR wired one shared symbol.
	seen := 0
	for _, o := range r.IR.Objects {
		if o.Sym != nil && o.Sym.Name == "shared" {
			seen++
		}
	}
	if seen != 1 {
		t.Errorf("shared has %d IR objects, want 1", seen)
	}
}

func TestLoadWithDefines(t *testing.T) {
	src := "#if WIDE\nlong x;\n#else\nint x;\n#endif"
	r, err := Load([]Source{{Name: "a.c", Text: src}}, Options{Defines: map[string]string{"WIDE": "1"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range r.IR.Objects {
		if o.Name == "x" && o.Type.String() != "long" {
			t.Errorf("x type = %s, want long", o.Type)
		}
	}
}

func TestLoadWithABI(t *testing.T) {
	r, err := Load([]Source{{Name: "a.c", Text: "int x;"}}, Options{ABI: layout.ILP32})
	if err != nil {
		t.Fatal(err)
	}
	if r.Layout.ABI().Name != "ilp32" {
		t.Errorf("ABI = %s", r.Layout.ABI().Name)
	}
}

func TestLoadInMemoryInclude(t *testing.T) {
	r, err := Load([]Source{
		{Name: "main.c", Text: "#include \"defs.h\"\nint y = VALUE;"},
		{Name: "defs.h", Text: "#define VALUE 7\n"},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestLoadDiskInclude(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ext.h"), []byte("#define EXT 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load([]Source{{Name: "m.c", Text: "#include \"ext.h\"\nint z = EXT;"}},
		Options{IncludeDirs: []string{dir}})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.c")
	if err := os.WriteFile(path, []byte("int main(void) { return 0; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadFiles([]string{path}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Files) != 1 {
		t.Errorf("files = %d", len(r.Files))
	}
	if _, err := LoadFiles([]string{filepath.Join(dir, "missing.c")}, Options{}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestNoLibSummaries(t *testing.T) {
	src := "#include <string.h>\nchar a[4], b[4];\nvoid f(void) { strcpy(a, b); }"
	r, err := Load([]Source{{Name: "m.c", Text: src}}, Options{NoLibSummaries: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range r.IR.Warnings {
		if strings.Contains(w, "strcpy") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected strcpy warning, got %v", r.IR.Warnings)
	}
}

func TestModelMainArgs(t *testing.T) {
	src := "int main(int argc, char **argv) { char *s = argv[0]; return 0; }"
	r, err := Load([]Source{{Name: "m.c", Text: src}}, Options{ModelMainArgs: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range r.IR.Objects {
		if o.Name == "argv@vec" {
			found = true
		}
	}
	if !found {
		t.Error("argv model objects missing")
	}
}

// Load errors must carry the fault taxonomy: parse-stage failures match
// fault.ErrParse, type errors match fault.ErrSema, and both expose stage
// and position via errors.As.
func TestLoadErrorsAreClassified(t *testing.T) {
	cases := []struct {
		src  string
		want error
	}{
		{"int x", fault.ErrParse},                                // parser failure
		{"#if 1\nint x;", fault.ErrParse},                        // preprocessor failure
		{"int f(void) { return &&; }", fault.ErrParse},           // scanner/parser failure
		{"void f(void) { undeclared(); x = 1; }", fault.ErrSema}, // sema failure
	}
	for _, c := range cases {
		_, err := Load([]Source{{Name: "bad.c", Text: c.src}}, Options{})
		if err == nil {
			t.Errorf("%q: no error", c.src)
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("%q: error %v does not match %v", c.src, err, c.want)
		}
		var fe *fault.Error
		if !errors.As(err, &fe) {
			t.Errorf("%q: not a fault.Error: %v", c.src, err)
			continue
		}
		if fe.Stage == "" {
			t.Errorf("%q: fault has no stage", c.src)
		}
	}
}

func TestLoadFilesMissingIsClassified(t *testing.T) {
	_, err := LoadFiles([]string{"/nonexistent/missing.c"}, Options{})
	if !errors.Is(err, fault.ErrParse) {
		t.Errorf("missing file error %v does not match ErrParse", err)
	}
}

func TestErrorPosExtraction(t *testing.T) {
	cases := []struct {
		msg, want string
	}{
		{"a.c:3:7: unexpected token", "a.c:3:7"},
		{"a.c:12: something", "a.c:12"},
		{"no position here", ""},
		{"weird:prefix: text", ""},
	}
	for _, c := range cases {
		if got := errorPos(errors.New(c.msg)); got != c.want {
			t.Errorf("errorPos(%q) = %q, want %q", c.msg, got, c.want)
		}
	}
}

// Malformed inputs must produce errors, never panics.
func TestMalformedInputsError(t *testing.T) {
	cases := []string{
		"int x",         // missing semicolon
		"struct {",      // unterminated struct
		"#if 1\nint x;", // unterminated conditional
		"void f(void) { return 1; }}",
		"int f(void) { goto; }",
		"int a[-]; ",
		"\"unterminated",
		"#define F(x x) x",
		"#include <nosuchheader.h>",
		"int f(int, int,, int);",
	}
	for _, src := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", src, r)
				}
			}()
			if _, err := Load([]Source{{Name: "bad.c", Text: src}}, Options{}); err == nil {
				t.Logf("note: %q loaded without error (tolerated)", src)
			}
		}()
	}
}

// Random byte soup must never panic anywhere in the pipeline.
func TestFuzzishNoPanic(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	alphabet := []byte("abcxyz0189 \t\n(){}[];,*&#<>\"'=+-/\\%.:!|^~?")
	for i := 0; i < 400; i++ {
		n := r.Intn(200)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[r.Intn(len(alphabet))]
		}
		src := string(buf)
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on input %q: %v", src, rec)
				}
			}()
			Load([]Source{{Name: "fuzz.c", Text: src}}, Options{}) //nolint:errcheck
		}()
	}
}

// Structured fuzz: mutate a valid program by deleting random spans.
func TestFuzzishMutatedProgram(t *testing.T) {
	base := `
#include <stdlib.h>
struct S { int *a; struct S *next; } g;
int x;
int *f(struct S *p) {
	p->a = &x;
	p->next = (struct S *)malloc(sizeof(struct S));
	return p->next->a;
}
int main(void) { return *f(&g) != 0; }
`
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		b := []byte(base)
		// Delete a random span.
		if len(b) > 10 {
			start := r.Intn(len(b) - 5)
			end := start + r.Intn(len(b)-start)
			b = append(b[:start], b[end:]...)
		}
		src := string(b)
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on mutated input:\n%s\n%v", src, rec)
				}
			}()
			Load([]Source{{Name: "mut.c", Text: src}}, Options{}) //nolint:errcheck
		}()
	}
}
