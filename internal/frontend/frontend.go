// Package frontend wires the whole pipeline together: preprocess → parse →
// semantic analysis → IR normalization. It is the entry point used by the
// command-line tools, the examples and the benchmark harness.
package frontend

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cc/ast"
	"repro/internal/cc/layout"
	"repro/internal/cc/parser"
	"repro/internal/cc/pp"
	"repro/internal/cc/sema"
	"repro/internal/cc/types"
	"repro/internal/ir"
	"repro/internal/libsum"
)

// Source is one translation unit.
type Source struct {
	Name string
	Text string
}

// Options configures the pipeline.
type Options struct {
	// Defines are predefined preprocessor macros.
	Defines map[string]string
	// ABI selects the layout strategy (LP64 if nil); it affects sizeof in
	// constant expressions and the Offsets analysis instance.
	ABI *layout.ABI
	// IncludeDirs are searched for #include "..." files.
	IncludeDirs []string
	// ModelMainArgs gives main's argv synthetic targets.
	ModelMainArgs bool
	// NoLibSummaries disables the libc summaries (ablation).
	NoLibSummaries bool
	// CloneAllocWrappers inlines small allocation-wrapper functions at
	// their call sites so each caller gets distinct heap objects (one
	// level of heap cloning; see ir.InlineAllocWrappers). Off by default,
	// matching the paper's plain allocation-site naming.
	CloneAllocWrappers bool
}

// Result bundles the pipeline outputs.
type Result struct {
	Files    []*ast.File
	Sema     *sema.Program
	IR       *ir.Program
	Layout   *layout.Engine
	Universe *types.Universe
}

// Load runs the full pipeline over the given sources.
func Load(sources []Source, opts Options) (*Result, error) {
	univ := types.NewUniverse()
	lay := layout.New(opts.ABI)

	include := func(name string, system bool, from string) (string, []byte, error) {
		dirs := append([]string{from}, opts.IncludeDirs...)
		for _, d := range dirs {
			path := filepath.Join(d, name)
			content, err := os.ReadFile(path)
			if err == nil {
				return path, content, nil
			}
		}
		// In-memory sources can be included too.
		for _, s := range sources {
			if s.Name == name {
				return name, []byte(s.Text), nil
			}
		}
		return "", nil, fmt.Errorf("include %q not found", name)
	}

	var files []*ast.File
	for _, src := range sources {
		prep := pp.New(pp.Config{Defines: opts.Defines, Include: include})
		toks, err := prep.Process(src.Name, []byte(src.Text))
		if err != nil {
			return nil, fmt.Errorf("preprocess %s: %w", src.Name, err)
		}
		f, err := parser.Parse(src.Name, toks, parser.Config{Universe: univ, Layout: lay})
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", src.Name, err)
		}
		files = append(files, f)
	}

	prog, err := sema.Analyze(files, univ, lay)
	if err != nil {
		return nil, fmt.Errorf("semantic analysis: %w", err)
	}

	cfg := ir.Config{ModelMainArgs: opts.ModelMainArgs}
	if !opts.NoLibSummaries {
		cfg.Summarizer = libsum.New()
	}
	irProg := ir.Build(prog, cfg)
	if opts.CloneAllocWrappers {
		ir.InlineAllocWrappers(irProg, 0)
	}

	return &Result{
		Files:    files,
		Sema:     prog,
		IR:       irProg,
		Layout:   lay,
		Universe: univ,
	}, nil
}

// LoadFiles reads and loads C files from disk.
func LoadFiles(paths []string, opts Options) (*Result, error) {
	var sources []Source
	for _, p := range paths {
		content, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		sources = append(sources, Source{Name: p, Text: string(content)})
	}
	return Load(sources, opts)
}

// MustLoad is a test helper that panics on error.
func MustLoad(sources []Source, opts Options) *Result {
	r, err := Load(sources, opts)
	if err != nil {
		panic(err)
	}
	return r
}
