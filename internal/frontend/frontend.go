// Package frontend wires the whole pipeline together: preprocess → parse →
// semantic analysis → IR normalization. It is the entry point used by the
// command-line tools, the examples and the benchmark harness.
package frontend

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cc/ast"
	"repro/internal/cc/layout"
	"repro/internal/cc/parser"
	"repro/internal/cc/pp"
	"repro/internal/cc/sema"
	"repro/internal/cc/types"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/libsum"
)

// Source is one translation unit.
type Source struct {
	Name string
	Text string
}

// Options configures the pipeline.
type Options struct {
	// Defines are predefined preprocessor macros.
	Defines map[string]string
	// ABI selects the layout strategy (LP64 if nil); it affects sizeof in
	// constant expressions and the Offsets analysis instance.
	ABI *layout.ABI
	// IncludeDirs are searched for #include "..." files.
	IncludeDirs []string
	// ModelMainArgs gives main's argv synthetic targets.
	ModelMainArgs bool
	// NoLibSummaries disables the libc summaries (ablation).
	NoLibSummaries bool
	// CloneAllocWrappers inlines small allocation-wrapper functions at
	// their call sites so each caller gets distinct heap objects (one
	// level of heap cloning; see ir.InlineAllocWrappers). Off by default,
	// matching the paper's plain allocation-site naming.
	CloneAllocWrappers bool
}

// Result bundles the pipeline outputs.
type Result struct {
	Files    []*ast.File
	Sema     *sema.Program
	IR       *ir.Program
	Layout   *layout.Engine
	Universe *types.Universe
}

// Load runs the full pipeline over the given sources.
//
// Failures come back as *fault.Error: preprocessing, scanning and parsing
// problems match fault.ErrParse, type-checking problems match
// fault.ErrSema, and any panic inside the pipeline is converted into a
// fault.ErrInternal with the stage and stack attached rather than crashing
// the caller.
func Load(sources []Source, opts Options) (res *Result, err error) {
	defer fault.Recover("frontend", &err)
	univ := types.NewUniverse()
	lay := layout.New(opts.ABI)

	include := func(name string, system bool, from string) (string, []byte, error) {
		dirs := append([]string{from}, opts.IncludeDirs...)
		for _, d := range dirs {
			path := filepath.Join(d, name)
			content, err := os.ReadFile(path)
			if err == nil {
				return path, content, nil
			}
		}
		// In-memory sources can be included too.
		for _, s := range sources {
			if s.Name == name {
				return name, []byte(s.Text), nil
			}
		}
		return "", nil, fmt.Errorf("include %q not found", name)
	}

	var files []*ast.File
	for _, src := range sources {
		prep := pp.New(pp.Config{Defines: opts.Defines, Include: include})
		toks, err := prep.Process(src.Name, []byte(src.Text))
		if err != nil {
			return nil, classify(fault.KindParse, "preprocess", src.Name, err)
		}
		f, err := parser.Parse(src.Name, toks, parser.Config{Universe: univ, Layout: lay})
		if err != nil {
			return nil, classify(fault.KindParse, "parse", src.Name, err)
		}
		files = append(files, f)
	}

	prog, err := sema.Analyze(files, univ, lay)
	if err != nil {
		return nil, classify(fault.KindSema, "sema", "", err)
	}

	cfg := ir.Config{ModelMainArgs: opts.ModelMainArgs}
	if !opts.NoLibSummaries {
		cfg.Summarizer = libsum.New()
	}
	irProg := ir.Build(prog, cfg)
	if opts.CloneAllocWrappers {
		ir.InlineAllocWrappers(irProg, 0)
	}

	return &Result{
		Files:    files,
		Sema:     prog,
		IR:       irProg,
		Layout:   lay,
		Universe: univ,
	}, nil
}

// classify wraps a pipeline error into the taxonomy, attaching the best
// source position available: the "file:line:col" prefix the preprocessor,
// parser and type checker put on their messages, or the unit name.
func classify(kind fault.Kind, stage, unit string, err error) *fault.Error {
	pos := errorPos(err)
	if pos == "" {
		pos = unit
	}
	return fault.New(kind, stage, pos, err)
}

// errorPos extracts a leading "file:line:col" (or "file:line") position from
// an error's text, returning "" when the message has no such prefix.
func errorPos(err error) string {
	if err == nil {
		return ""
	}
	msg := err.Error()
	head, _, ok := strings.Cut(msg, ": ")
	if !ok {
		return ""
	}
	// A position prefix looks like name:12 or name:12:3 — the segments
	// after the name must be decimal.
	parts := strings.Split(head, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return ""
	}
	for _, p := range parts[1:] {
		if p == "" {
			return ""
		}
		for _, r := range p {
			if r < '0' || r > '9' {
				return ""
			}
		}
	}
	return head
}

// LoadFiles reads and loads C files from disk.
func LoadFiles(paths []string, opts Options) (*Result, error) {
	var sources []Source
	for _, p := range paths {
		content, err := os.ReadFile(p)
		if err != nil {
			return nil, fault.New(fault.KindParse, "read", p, err)
		}
		sources = append(sources, Source{Name: p, Text: string(content)})
	}
	return Load(sources, opts)
}

// MustLoad panics on error. It is a helper for tests and examples with
// known-good embedded sources ONLY — production paths must call Load and
// handle the classified error.
func MustLoad(sources []Source, opts Options) *Result {
	r, err := Load(sources, opts)
	if err != nil {
		panic(err)
	}
	return r
}
