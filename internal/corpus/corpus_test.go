package corpus

import (
	"testing"

	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/metrics"
)

// mustSource is the package-local panicking loader for these tests; the
// test-only exported variant for other packages lives in corpustest (the
// corpus package itself must not export a panicking API).
func mustSource(name string) []frontend.Source {
	s, err := Source(name)
	if err != nil {
		panic(err)
	}
	return s
}

func TestAllProgramsLoad(t *testing.T) {
	for _, e := range Programs {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			src, err := Source(e.Name)
			if err != nil {
				t.Fatalf("source: %v", err)
			}
			res, err := frontend.Load(src, frontend.Options{})
			if err != nil {
				t.Fatalf("frontend: %v", err)
			}
			if len(res.IR.Warnings) > 0 {
				t.Errorf("warnings: %v", res.IR.Warnings)
			}
			if res.IR.NumStmts() == 0 {
				t.Error("no statements lowered")
			}
			if len(res.IR.Sites) == 0 {
				t.Error("no dereference sites")
			}
		})
	}
}

func TestAllProgramsAnalyze(t *testing.T) {
	for _, e := range Programs {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			src := mustSource(e.Name)
			p, err := metrics.Measure(e.Name, src, frontend.Options{}, metrics.Options{})
			if err != nil {
				t.Fatalf("measure: %v", err)
			}
			for _, sn := range metrics.StrategyNames {
				run := p.Runs[sn]
				if run == nil {
					t.Fatalf("no run for %s", sn)
				}
				if run.TotalFacts == 0 {
					t.Errorf("%s: no facts", sn)
				}
				if run.AvgDerefSize <= 0 {
					t.Errorf("%s: avg deref size = %v", sn, run.AvgDerefSize)
				}
			}
		})
	}
}

func TestGroupMembership(t *testing.T) {
	// The measured mismatch counters must agree with the declared
	// grouping: casting programs show struct-type mismatches, the others
	// show none (the paper's 8/12 split).
	for _, e := range Programs {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			src := mustSource(e.Name)
			p, err := metrics.Measure(e.Name, src, frontend.Options{}, metrics.Options{
				Strategies: []string{"common-initial-seq", "offsets"},
			})
			if err != nil {
				t.Fatalf("measure: %v", err)
			}
			if p.HasStructCast != e.CastGroup {
				t.Errorf("measured cast group = %v, declared %v", p.HasStructCast, e.CastGroup)
			}
		})
	}
}

func TestFieldSensitivityWinsOnCastGroup(t *testing.T) {
	// The paper's headline: collapse-always sets are never smaller, and on
	// struct-heavy programs they are strictly larger.
	strictly := 0
	for _, e := range Programs {
		src := mustSource(e.Name)
		p, err := metrics.Measure(e.Name, src, frontend.Options{}, metrics.Options{})
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		ca := p.Runs["collapse-always"].AvgDerefSize
		off := p.Runs["offsets"].AvgDerefSize
		if ca+1e-9 < off {
			t.Errorf("%s: collapse-always (%.2f) beat offsets (%.2f)", e.Name, ca, off)
		}
		if ca > off*1.5 {
			strictly++
		}
	}
	if strictly < 5 {
		t.Errorf("only %d programs show collapse-always ≥1.5× offsets; corpus too easy", strictly)
	}
}

func TestPortabilityCheap(t *testing.T) {
	// The paper's second claim: the portable CIS instance is usually
	// within a few percent of the layout-specific Offsets instance.
	within5pct := 0
	for _, e := range Programs {
		src := mustSource(e.Name)
		p, err := metrics.Measure(e.Name, src, frontend.Options{}, metrics.Options{
			Strategies: []string{"common-initial-seq", "offsets"},
		})
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		cis := p.Runs["common-initial-seq"].AvgDerefSize
		off := p.Runs["offsets"].AvgDerefSize
		if off > 0 && cis <= off*1.05 {
			within5pct++
		}
	}
	if within5pct < 15 {
		t.Errorf("CIS within 5%% of Offsets on only %d/20 programs; portability claim broken", within5pct)
	}
}

func TestLookupAndSortedByGroup(t *testing.T) {
	if _, ok := Lookup("bc"); !ok {
		t.Error("bc not found")
	}
	if _, ok := Lookup("nonesuch"); ok {
		t.Error("nonesuch found")
	}
	names := SortedByGroup()
	if len(names) != len(Programs) {
		t.Fatalf("len = %d", len(names))
	}
	seenCast := false
	for _, n := range names {
		e, _ := Lookup(n)
		if e.CastGroup {
			seenCast = true
		} else if seenCast {
			t.Errorf("non-cast program %s after cast group", n)
		}
	}
}

func TestGenerateLoads(t *testing.T) {
	for _, cd := range []int{0, 25, 75} {
		p := DefaultGenParams()
		p.CastDensity = cd
		src := Generate(p)
		res, err := frontend.Load(src, frontend.Options{})
		if err != nil {
			t.Fatalf("cast density %d: %v", cd, err)
		}
		r := core.Analyze(res.IR, core.NewCIS())
		if r.TotalFacts() == 0 {
			t.Errorf("cast density %d: no facts", cd)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultGenParams())
	b := Generate(DefaultGenParams())
	if a[0].Text != b[0].Text {
		t.Error("generator not deterministic")
	}
}

func TestGenerateScales(t *testing.T) {
	small := DefaultGenParams()
	big := DefaultGenParams()
	big.NStructs = 8
	big.NDerefs = 200
	ssrc := Generate(small)
	bsrc := Generate(big)
	if len(bsrc[0].Text) <= len(ssrc[0].Text) {
		t.Error("bigger parameters should generate more code")
	}
}
