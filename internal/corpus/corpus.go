// Package corpus provides the benchmark programs for the evaluation: twenty
// self-contained C programs mirroring the paper's suite (GNU utilities,
// SPEC and the Landi/Austin benchmarks), split as the paper reports —
// programs whose structure accesses all use correct types, and programs
// that cast structures — plus a parameterized generator for size sweeps.
//
// See DESIGN.md §3 for why this substitution preserves the shape of the
// paper's results.
package corpus

import (
	"embed"
	"fmt"
	"sort"

	"repro/internal/frontend"
)

//go:embed testdata/*.c
var testdata embed.FS

// Entry describes one benchmark program.
type Entry struct {
	Name string
	// CastGroup is true for programs written to exercise structure
	// casting (the paper's second group of 12).
	CastGroup bool
	// Description summarizes the program and the idiom it exercises.
	Description string
}

// Programs lists the corpus in the paper's presentation order: the
// non-casting group first, each group sorted by size.
var Programs = []Entry{
	// Group 1: no structure casting.
	{"allroots", false, "polynomial root finder; structs with embedded arrays"},
	{"ul", false, "do-underlining filter; mode tables"},
	{"anagram", false, "anagram classes; qsort callbacks, string hashing"},
	{"ft", false, "minimum spanning tree; leftist heap, pointer chasing"},
	{"compress", false, "LZW compressor; hash-chained code table"},
	{"ks", false, "graph partitioning; pins/nets/buckets"},
	{"yacr2", false, "channel router; constraint chains"},
	{"ratfor", false, "rational-Fortran translator; frame stack"},

	// Group 2: structure casting.
	{"diffh", true, "line diff; void* hash payloads"},
	{"compiler", true, "expression compiler; node-header inheritance (CIS idiom)"},
	{"loader", true, "object-file loader; byte image cast to record views"},
	{"eqntott", true, "truth tables; raw block copies of term records"},
	{"backprop", true, "neural net; checkpoint through char* views"},
	{"simulator", true, "CPU simulator; memory cast to insn/TCB views"},
	{"li", true, "lisp interpreter; tagged cell views, free-list reuse"},
	{"pmake", true, "make; generic void* list library"},
	{"twig", true, "tree-pattern matcher; partial initial sequences (CIS worst case)"},
	{"flex", true, "scanner generator; union-valued NFA states"},
	{"bc", true, "bignum calculator; header+payload raw blocks (collapse worst case)"},
	{"less", true, "pager buffer cache; incompatible node overlays (CoC worst case)"},
}

// Names returns the program names in order.
func Names() []string {
	out := make([]string, len(Programs))
	for i, e := range Programs {
		out[i] = e.Name
	}
	return out
}

// Lookup finds a corpus entry by name.
func Lookup(name string) (Entry, bool) {
	for _, e := range Programs {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Source returns the C source of a corpus program.
func Source(name string) ([]frontend.Source, error) {
	data, err := testdata.ReadFile("testdata/" + name + ".c")
	if err != nil {
		return nil, fmt.Errorf("corpus: unknown program %q: %w", name, err)
	}
	return []frontend.Source{{Name: name + ".c", Text: string(data)}}, nil
}

// All returns every (name, sources) pair in order.
func All() (map[string][]frontend.Source, []string, error) {
	out := make(map[string][]frontend.Source, len(Programs))
	var names []string
	for _, e := range Programs {
		src, err := Source(e.Name)
		if err != nil {
			return nil, nil, err
		}
		out[e.Name] = src
		names = append(names, e.Name)
	}
	return out, names, nil
}

// SortedByGroup returns names with the non-casting group first, preserving
// declaration order within groups.
func SortedByGroup() []string {
	names := Names()
	sort.SliceStable(names, func(i, j int) bool {
		a, _ := Lookup(names[i])
		b, _ := Lookup(names[j])
		if a.CastGroup != b.CastGroup {
			return !a.CastGroup
		}
		return false
	})
	return names
}
