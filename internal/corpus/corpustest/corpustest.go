// Package corpustest provides test-only helpers over the benchmark corpus.
// It exists so that test packages get a panicking loader without the corpus
// package itself exporting one: production callers (the cmd tools, the
// facade, the server) must use corpus.Source and report the error.
package corpustest

import (
	"repro/internal/corpus"
	"repro/internal/frontend"
)

// MustSource returns the C source of a corpus program, panicking on unknown
// names. For tests and examples only.
func MustSource(name string) []frontend.Source {
	s, err := corpus.Source(name)
	if err != nil {
		panic(err)
	}
	return s
}
