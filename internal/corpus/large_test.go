package corpus

import (
	"testing"

	"repro/internal/core"
	"repro/internal/frontend"
)

func loadLarge(t *testing.T, p LargeParams) *frontend.Result {
	t.Helper()
	res, err := frontend.Load(GenerateLarge(p), frontend.Options{})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(res.IR.Warnings) != 0 {
		t.Errorf("warnings: %v", res.IR.Warnings)
	}
	return res
}

func TestGenerateLargeLoads(t *testing.T) {
	p := DefaultLargeParams()
	res := loadLarge(t, p)
	if min := p.NChains * p.ChainLen; len(res.IR.Stmts) < min {
		t.Errorf("generated %d statements, want >= %d", len(res.IR.Stmts), min)
	}
	r := core.Analyze(res.IR, core.NewCIS())
	if r.Incomplete != nil {
		t.Fatalf("incomplete: %v", r.Incomplete)
	}
	if r.TotalFacts() == 0 {
		t.Error("no facts")
	}
}

func TestGenerateLargeDeterministic(t *testing.T) {
	a := GenerateLarge(DefaultLargeParams())
	b := GenerateLarge(DefaultLargeParams())
	if a[0].Text != b[0].Text {
		t.Error("not deterministic")
	}
}

// The statement count must scale linearly with the size knobs — this is the
// contract the benchmark drivers rely on to hit a target program size.
func TestGenerateLargeScales(t *testing.T) {
	small := loadLarge(t, LargeParams{NChains: 10, ChainLen: 10, NTargets: 32, NFields: 4, Seed: 1})
	big := loadLarge(t, LargeParams{NChains: 60, ChainLen: 20, NTargets: 32, NFields: 4, Seed: 1})
	if s, b := len(small.IR.Stmts), len(big.IR.Stmts); b < 5*s {
		t.Errorf("scaling too shallow: %d stmts -> %d stmts", s, b)
	}
}

// The hub-and-chains shape is the prepass showcase: nearly every chain cell
// must fold into its head, and with the prepass ablated the answer must not
// change — the small-scale version of the claim the benchmark makes at
// half a million statements.
func TestGenerateLargePrepassCollapsesChains(t *testing.T) {
	p := LargeParams{NChains: 16, ChainLen: 25, NTargets: 64, NFields: 8, CrossEvery: 5, Seed: 7}
	res := loadLarge(t, p)
	strat := core.NewCollapseAlways()
	on := core.Analyze(res.IR, strat)
	if on.Incomplete != nil {
		t.Fatalf("incomplete: %v", on.Incomplete)
	}
	// Each chain has ChainLen-1 foldable links (the head is a load
	// destination and stays); allow slack for the jittered lengths and the
	// cross links, but the bulk must collapse.
	if want := p.NChains * (p.ChainLen - 2); on.Wave.PrepCollapsed < want {
		t.Errorf("collapsed %d cells, want >= %d: %+v", on.Wave.PrepCollapsed, want, on.Wave)
	}
	off := core.AnalyzeWith(res.IR, core.NewCollapseAlways(), core.Options{NoPrepass: true})
	ref := core.AnalyzeReference(res.IR, core.NewCollapseAlways(), core.Options{})
	if on.TotalFacts() != off.TotalFacts() || on.TotalFacts() != ref.TotalFacts() {
		t.Errorf("TotalFacts: on=%d off=%d ref=%d",
			on.TotalFacts(), off.TotalFacts(), ref.TotalFacts())
	}
	if on.AvgDerefSetSize() != off.AvgDerefSetSize() || on.AvgDerefSetSize() != ref.AvgDerefSetSize() {
		t.Errorf("AvgDerefSetSize: on=%v off=%v ref=%v",
			on.AvgDerefSetSize(), off.AvgDerefSetSize(), ref.AvgDerefSetSize())
	}
}
