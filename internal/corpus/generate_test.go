package corpus

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/ir"
	"repro/internal/steens"
)

func TestGenerateCallGraphLoads(t *testing.T) {
	src := GenerateCallGraph(DefaultCallGraphParams())
	res, err := frontend.Load(src, frontend.Options{})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(res.IR.Warnings) != 0 {
		t.Errorf("warnings: %v", res.IR.Warnings)
	}
	r := core.Analyze(res.IR, core.NewCIS())
	if r.TotalFacts() == 0 {
		t.Error("no facts")
	}
}

func TestGenerateCallGraphDeterministic(t *testing.T) {
	a := GenerateCallGraph(DefaultCallGraphParams())
	b := GenerateCallGraph(DefaultCallGraphParams())
	if a[0].Text != b[0].Text {
		t.Error("not deterministic")
	}
}

func TestCallGraphWorkloadSeparatesSubsetFromUnification(t *testing.T) {
	// The point of the dispatch workload: the subset-based framework
	// keeps table entries separate, unification merges every handler
	// that shares a table (and through shared handlers, tables).
	p := DefaultCallGraphParams()
	p.NHandlers = 8
	p.NTables = 1
	src := GenerateCallGraph(p)
	res, err := frontend.Load(src, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var observed *ir.Object
	for _, o := range res.IR.Objects {
		if o.Sym != nil && o.Sym.Name == "observed" {
			observed = o
		}
	}

	subset := core.Analyze(res.IR, core.NewCIS())
	subSize := subset.PointsTo(observed, nil).Len()

	uni := steens.Analyze(res.IR)
	uniSize := len(uni.PointsTo(observed))

	if subSize == 0 {
		t.Fatal("subset analysis found nothing")
	}
	if uniSize < subSize {
		t.Errorf("unification (%d) more precise than subsets (%d)?", uniSize, subSize)
	}
}

func TestGenerateCallGraphScales(t *testing.T) {
	small := DefaultCallGraphParams()
	big := DefaultCallGraphParams()
	big.NHandlers = 32
	big.NCalls = 200
	if len(GenerateCallGraph(big)[0].Text) <= len(GenerateCallGraph(small)[0].Text) {
		t.Error("bigger parameters should generate more code")
	}
}

func TestGenerateCallGraphHandlersBindThroughTables(t *testing.T) {
	src := GenerateCallGraph(CallGraphParams{NHandlers: 4, NTables: 2, NCalls: 10, Seed: 3})
	res, err := frontend.Load(src, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := core.Analyze(res.IR, core.NewCIS())
	var observed *ir.Object
	for _, o := range res.IR.Objects {
		if o.Sym != nil && o.Sym.Name == "observed" {
			observed = o
		}
	}
	set := r.PointsTo(observed, nil)
	stateTargets := 0
	for c := range set {
		if strings.Contains(c.Obj.Name, "state") {
			stateTargets++
		}
	}
	if stateTargets == 0 {
		t.Errorf("observed points to %v, want handler states", set.Sorted())
	}
}

func TestSolverScalesOnLargeWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test")
	}
	p := DefaultGenParams()
	p.NStructs = 16
	p.NFields = 6
	p.NObjects = 8
	p.NDerefs = 600
	p.CastDensity = 40
	src := Generate(p)
	res, err := frontend.Load(src, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() core.Strategy{
		func() core.Strategy { return core.NewCIS() },
		func() core.Strategy { return core.NewOffsets(res.Layout) },
	} {
		strat := mk()
		r := core.Analyze(res.IR, strat)
		if r.TotalFacts() == 0 {
			t.Errorf("%s: no facts", strat.Name())
		}
		t.Logf("%s: %d stmts, %d facts in %v",
			strat.Name(), res.IR.NumStmts(), r.TotalFacts(), r.Duration)
	}
}
