package corpus

import (
	"testing"

	"repro/internal/frontend"
)

// TestEditsDeterministic: the same (source, seed) pair yields the same
// edit sequence; a different seed yields a different one.
func TestEditsDeterministic(t *testing.T) {
	src, err := Source("compiler")
	if err != nil {
		t.Fatal(err)
	}
	a := Edits(src[0].Text, 7, 4)
	b := Edits(src[0].Text, 7, 4)
	if len(a) == 0 {
		t.Fatal("no edits generated for compiler.c")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, edit %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := Edits(src[0].Text, 8, 4)
	same := len(c) == len(a)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical edit sequences")
	}
}

// TestEditsCompile: every generated edit loads through the real front end
// and actually differs from the original.
func TestEditsCompile(t *testing.T) {
	names := []string{"compiler", "anagram", "ks"}
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		src, err := Source(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, ed := range Edits(src[0].Text, 3, 5) {
			if ed.Text == src[0].Text {
				t.Errorf("%s/%v: edit is identical to the original", name, ed)
			}
			if _, err := frontend.Load([]frontend.Source{{Name: src[0].Name, Text: ed.Text}}, frontend.Options{}); err != nil {
				t.Errorf("%s/%v: generated edit does not compile: %v", name, ed, err)
			}
		}
	}
}

// TestEditsKindCoverage: across a few seeds on a big program, all three
// mutation kinds appear.
func TestEditsKindCoverage(t *testing.T) {
	src, err := Source("compiler")
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for seed := uint32(1); seed <= 5; seed++ {
		for _, ed := range Edits(src[0].Text, seed, 4) {
			kinds[ed.Kind] = true
		}
	}
	for _, k := range []string{"add", "remove", "retype"} {
		if !kinds[k] {
			t.Errorf("kind %q never generated across seeds 1..5", k)
		}
	}
}
