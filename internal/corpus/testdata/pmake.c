/* pmake: the heart of a make program built on a generic void*-based list
 * library, after BSD pmake. Client payloads round-trip through void*, so
 * every use reinstates the type with a cast (struct casting group). */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

/* --- generic list library (Lst) --- */

struct lstnode {
    void *datum;
    struct lstnode *next;
};

struct lst {
    struct lstnode *first;
    struct lstnode *last;
    int count;
};

void lst_init(struct lst *l)
{
    l->first = 0;
    l->last = 0;
    l->count = 0;
}

void lst_append(struct lst *l, void *datum)
{
    struct lstnode *n = (struct lstnode *)malloc(sizeof(struct lstnode));
    if (n == 0)
        exit(1);
    n->datum = datum;
    n->next = 0;
    if (l->last != 0)
        l->last->next = n;
    else
        l->first = n;
    l->last = n;
    l->count++;
}

void *lst_find(struct lst *l, int (*match)(void *datum, void *key), void *key)
{
    struct lstnode *n;
    for (n = l->first; n != 0; n = n->next) {
        if (match(n->datum, key))
            return n->datum;
    }
    return 0;
}

void lst_foreach(struct lst *l, void (*fn)(void *datum, void *arg), void *arg)
{
    struct lstnode *n;
    for (n = l->first; n != 0; n = n->next)
        fn(n->datum, arg);
}

/* --- make graph --- */

#define ST_UNMADE 0
#define ST_BEINGMADE 1
#define ST_MADE 2

struct gnode {
    char name[32];
    int state;
    long mtime;
    struct lst children;     /* of struct gnode* */
    struct lst commands;     /* of char* */
};

static struct lst allnodes;

int match_name(void *datum, void *key)
{
    struct gnode *gn = (struct gnode *)datum;
    return strcmp(gn->name, (char *)key) == 0;
}

struct gnode *targ_find(const char *name, int create)
{
    struct gnode *gn;
    gn = (struct gnode *)lst_find(&allnodes, match_name, (void *)name);
    if (gn != 0 || !create)
        return gn;
    gn = (struct gnode *)malloc(sizeof(struct gnode));
    if (gn == 0)
        exit(1);
    strncpy(gn->name, name, sizeof(gn->name) - 1);
    gn->name[sizeof(gn->name) - 1] = '\0';
    gn->state = ST_UNMADE;
    gn->mtime = 0;
    lst_init(&gn->children);
    lst_init(&gn->commands);
    lst_append(&allnodes, gn);
    return gn;
}

void add_dependency(const char *parent, const char *child)
{
    struct gnode *p = targ_find(parent, 1);
    struct gnode *c = targ_find(child, 1);
    lst_append(&p->children, c);
}

void add_command(const char *target, const char *cmd)
{
    struct gnode *gn = targ_find(target, 1);
    lst_append(&gn->commands, strdup(cmd));
}

void print_command(void *datum, void *arg)
{
    struct gnode *gn = (struct gnode *)arg;
    printf("  [%s] %s\n", gn->name, (char *)datum);
}

/* out-of-date check: any child newer, or target missing */
struct oodstate {
    struct gnode *parent;
    int ood;
};

void check_child(void *datum, void *arg)
{
    struct gnode *child = (struct gnode *)datum;
    struct oodstate *st = (struct oodstate *)arg;
    if (child->mtime > st->parent->mtime)
        st->ood = 1;
}

int out_of_date(struct gnode *gn)
{
    struct oodstate st;
    if (gn->mtime == 0)
        return 1;
    st.parent = gn;
    st.ood = 0;
    lst_foreach(&gn->children, check_child, &st);
    return st.ood;
}

static long clock_now = 100;

void make_node(void *datum, void *arg);

int make(struct gnode *gn)
{
    if (gn->state == ST_MADE)
        return 0;
    if (gn->state == ST_BEINGMADE) {
        fprintf(stderr, "make: cycle through %s\n", gn->name);
        return 1;
    }
    gn->state = ST_BEINGMADE;
    lst_foreach(&gn->children, make_node, 0);
    if (out_of_date(gn)) {
        printf("making %s:\n", gn->name);
        lst_foreach(&gn->commands, print_command, gn);
        gn->mtime = ++clock_now;
    }
    gn->state = ST_MADE;
    return 0;
}

void make_node(void *datum, void *arg)
{
    (void)arg;
    make((struct gnode *)datum);
}

void load_rules(void)
{
    add_dependency("all", "prog");
    add_dependency("prog", "main.o");
    add_dependency("prog", "util.o");
    add_dependency("main.o", "main.c");
    add_dependency("main.o", "util.h");
    add_dependency("util.o", "util.c");
    add_dependency("util.o", "util.h");
    add_command("prog", "cc -o prog main.o util.o");
    add_command("main.o", "cc -c main.c");
    add_command("util.o", "cc -c util.c");
    /* leaves exist already */
    targ_find("main.c", 1)->mtime = 10;
    targ_find("util.c", 1)->mtime = 12;
    targ_find("util.h", 1)->mtime = 11;
}

int main(void)
{
    struct gnode *root;
    lst_init(&allnodes);
    load_rules();
    root = targ_find("all", 0);
    if (root == 0) {
        fprintf(stderr, "make: no target\n");
        return 1;
    }
    make(root);
    printf("done; %d known targets\n", allnodes.count);
    return 0;
}
