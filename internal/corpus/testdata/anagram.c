/* anagram: group dictionary words by sorted-letter signature, after the
 * Austin benchmark of the same name. Dynamic word records, string handling,
 * qsort with a comparison callback. No struct casting. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <ctype.h>

#define MAXWORDS 512
#define MAXLEN 32

struct word {
    char text[MAXLEN];
    char sig[MAXLEN];
    struct word *nextsig;   /* chain of words with the same signature */
};

struct sigclass {
    char sig[MAXLEN];
    struct word *members;
    int count;
};

static struct word *words[MAXWORDS];
static int nwords;
static struct sigclass classes[MAXWORDS];
static int nclasses;

void letter_sort(char *dst, const char *src)
{
    int counts[26];
    int i, k;
    char c;
    for (i = 0; i < 26; i++)
        counts[i] = 0;
    for (i = 0; src[i] != '\0'; i++) {
        c = src[i];
        if (isalpha(c))
            counts[tolower(c) - 'a']++;
    }
    k = 0;
    for (i = 0; i < 26; i++) {
        int n;
        for (n = 0; n < counts[i]; n++)
            dst[k++] = (char)('a' + i);
    }
    dst[k] = '\0';
}

struct word *make_word(const char *text)
{
    struct word *w;
    w = (struct word *)malloc(sizeof(struct word));
    if (w == 0)
        exit(1);
    strncpy(w->text, text, MAXLEN - 1);
    w->text[MAXLEN - 1] = '\0';
    letter_sort(w->sig, w->text);
    w->nextsig = 0;
    return w;
}

struct sigclass *find_class(const char *sig)
{
    int i;
    for (i = 0; i < nclasses; i++) {
        if (strcmp(classes[i].sig, sig) == 0)
            return &classes[i];
    }
    strcpy(classes[nclasses].sig, sig);
    classes[nclasses].members = 0;
    classes[nclasses].count = 0;
    nclasses++;
    return &classes[nclasses - 1];
}

void add_word(const char *text)
{
    struct word *w;
    struct sigclass *sc;
    if (nwords >= MAXWORDS)
        return;
    w = make_word(text);
    words[nwords++] = w;
    sc = find_class(w->sig);
    w->nextsig = sc->members;
    sc->members = w;
    sc->count++;
}

int cmp_class(const void *a, const void *b)
{
    const struct sigclass *ca = (const struct sigclass *)a;
    const struct sigclass *cb = (const struct sigclass *)b;
    if (ca->count != cb->count)
        return cb->count - ca->count;
    return strcmp(ca->sig, cb->sig);
}

void report(void)
{
    int i;
    struct word *w;
    qsort(classes, nclasses, sizeof(struct sigclass), cmp_class);
    for (i = 0; i < nclasses; i++) {
        if (classes[i].count < 2)
            continue;
        printf("%s:", classes[i].sig);
        for (w = classes[i].members; w != 0; w = w->nextsig)
            printf(" %s", w->text);
        printf("\n");
    }
}

static const char *builtin[] = {
    "listen", "silent", "enlist", "google", "dog", "god",
    "act", "cat", "tac", "stream", "master", "tamers",
    "night", "thing", "stop", "tops", "spot", "post",
};

int main(void)
{
    int i;
    char buf[MAXLEN];
    for (i = 0; i < (int)(sizeof(builtin) / sizeof(builtin[0])); i++)
        add_word(builtin[i]);
    while (fgets(buf, sizeof buf, stdin) != 0) {
        char *nl = strchr(buf, '\n');
        if (nl != 0)
            *nl = '\0';
        if (buf[0] != '\0')
            add_word(buf);
    }
    report();
    return 0;
}
