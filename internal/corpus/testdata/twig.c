/* twig: a tree-pattern matcher after the code-generator generator. Subject
 * trees and pattern trees are distinct record types that share only a
 * partial initial sequence, and the matcher walks both through casts to a
 * "tree header" type — the paper's worst case for Common Initial Sequence. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define OP_CONST 1
#define OP_REG 2
#define OP_PLUS 3
#define OP_MUL 4
#define OP_LOAD 5

/* Generic header: the first two members are shared by both tree kinds. */
struct treehdr {
    int op;
    int arity;
};

/* Subject trees carry values and child pointers. */
struct subject {
    int op;
    int arity;
    long value;
    struct subject *kid[2];
    int matched_rule;
};

/* Pattern trees carry costs and a wildcard flag — the third member differs
 * in type from struct subject, so the CIS stops after two members. */
struct pattern {
    int op;
    int arity;
    short cost;              /* != subject's long value: CIS ends here */
    short wildcard;
    struct pattern *kid[2];
    int rule;
};

static struct subject *subj_nodes[64];
static int nsubj;

struct subject *S(int op, long value, struct subject *l, struct subject *r)
{
    struct subject *s = (struct subject *)malloc(sizeof(struct subject));
    if (s == 0)
        exit(1);
    s->op = op;
    s->arity = (l != 0) + (r != 0);
    s->value = value;
    s->kid[0] = l;
    s->kid[1] = r;
    s->matched_rule = -1;
    if (nsubj < 64)
        subj_nodes[nsubj++] = s;
    return s;
}

struct pattern *P(int op, int wildcard, int cost, int rule,
                  struct pattern *l, struct pattern *r)
{
    struct pattern *p = (struct pattern *)malloc(sizeof(struct pattern));
    if (p == 0)
        exit(1);
    p->op = op;
    p->arity = (l != 0) + (r != 0);
    p->cost = (short)cost;
    p->wildcard = (short)wildcard;
    p->kid[0] = l;
    p->kid[1] = r;
    p->rule = rule;
    return p;
}

/* Both kinds are inspected through the generic header. */
int tree_op(void *t)
{
    struct treehdr *h = (struct treehdr *)t;
    return h->op;
}

int tree_arity(void *t)
{
    struct treehdr *h = (struct treehdr *)t;
    return h->arity;
}

/* match: does pattern p match subject s? */
int match(struct subject *s, struct pattern *p)
{
    int i;
    if (p->wildcard)
        return 1;
    if (tree_op(s) != tree_op(p))
        return 0;
    if (tree_arity(s) != tree_arity(p))
        return 0;
    for (i = 0; i < s->arity; i++) {
        if (!match(s->kid[i], p->kid[i]))
            return 0;
    }
    return 1;
}

struct rule {
    const char *name;
    struct pattern *pat;
    int cost;
};

#define MAXRULES 16
static struct rule rules[MAXRULES];
static int nrules;

void add_rule(const char *name, struct pattern *pat, int cost)
{
    if (nrules >= MAXRULES)
        return;
    rules[nrules].name = name;
    rules[nrules].pat = pat;
    rules[nrules].cost = cost;
    pat->rule = nrules;
    nrules++;
}

/* label: bottom-up, choose the cheapest matching rule per subject node */
int label(struct subject *s)
{
    int i, best, bestcost, total;
    for (i = 0; i < s->arity; i++)
        label(s->kid[i]);
    best = -1;
    bestcost = 1 << 30;
    for (i = 0; i < nrules; i++) {
        if (match(s, rules[i].pat)) {
            total = rules[i].cost;
            if (total < bestcost) {
                bestcost = total;
                best = i;
            }
        }
    }
    s->matched_rule = best;
    return best;
}

void emit(struct subject *s, int depth)
{
    int i;
    for (i = 0; i < s->arity; i++)
        emit(s->kid[i], depth + 1);
    for (i = 0; i < depth; i++)
        printf("  ");
    if (s->matched_rule >= 0)
        printf("%s", rules[s->matched_rule].name);
    else
        printf("?");
    printf(" (op %d", s->op);
    if (s->op == OP_CONST)
        printf(" %ld", s->value);
    printf(")\n");
}

/* a pattern copy utility that duplicates through raw memory, another
 * source of struct casting */
struct pattern *pat_clone(struct pattern *p)
{
    char *raw;
    struct pattern *q;
    int i;
    if (p == 0)
        return 0;
    raw = (char *)malloc(sizeof(struct pattern));
    if (raw == 0)
        exit(1);
    memcpy(raw, (char *)p, sizeof(struct pattern));
    q = (struct pattern *)raw;
    for (i = 0; i < 2; i++)
        q->kid[i] = pat_clone(p->kid[i]);
    return q;
}

int main(void)
{
    struct subject *tree;
    struct pattern *wild, *addri, *muli;

    wild = P(0, 1, 0, -1, 0, 0);
    /* rule: reg <- PLUS(reg, CONST) "addi" */
    addri = P(OP_PLUS, 0, 1, -1, P(OP_REG, 1, 0, -1, 0, 0),
              P(OP_CONST, 0, 0, -1, 0, 0));
    /* rule: reg <- MUL(anything, anything) "mul" */
    muli = P(OP_MUL, 0, 3, -1, pat_clone(wild), pat_clone(wild));

    add_rule("anything", wild, 9);
    add_rule("addi", addri, 1);
    add_rule("mul", muli, 3);

    /* subject: MUL(PLUS(REG, CONST 4), LOAD(REG)) */
    tree = S(OP_MUL, 0,
             S(OP_PLUS, 0, S(OP_REG, 1, 0, 0), S(OP_CONST, 4, 0, 0)),
             S(OP_LOAD, 0, S(OP_REG, 2, 0, 0), 0));

    label(tree);
    emit(tree, 0);
    printf("%d subject nodes, %d rules\n", nsubj, nrules);
    return 0;
}
