/* less: the buffer-cache core of a pager after less-177 — the paper's worst
 * case for Collapse on Cast. Buffer blocks are allocated as raw storage and
 * threaded onto several chains through *differently shaped* node views that
 * do not share useful common initial sequences, so casting smears fields. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define BUFSIZE 256
#define NBUFS 16

/* The "real" buffer record. */
struct buf {
    struct buf *next, *prev; /* LRU chain */
    long block;              /* file block number */
    int datalen;
    char data[BUFSIZE];
};

/* The head of the LRU chain is addressed as if it were a buffer — only the
 * two chain words exist. less-177 does exactly this trick. */
struct bufhead {
    struct buf *next, *prev;
};

/* Hash chains reuse the data area of free buffers via a different view. */
struct hashlink {
    long key;
    struct hashlink *chain;
};

#define HASHSIZE 8

struct screenpos {
    long line;
    long block;
    int offset;
};

static struct bufhead lru;
static struct hashlink *hashtab[HASHSIZE];
static int nalloc;

struct buf *buf_alloc(void)
{
    struct buf *b = (struct buf *)calloc(1, sizeof(struct buf));
    if (b == 0)
        exit(1);
    nalloc++;
    return b;
}

/* insert at head of LRU: the head is cast to a buf pointer */
void lru_insert(struct buf *b)
{
    struct buf *head = (struct buf *)&lru;
    b->next = head->next;
    b->prev = head;
    if (head->next != 0)
        head->next->prev = b;
    head->next = b;
    if (lru.prev == 0)
        lru.prev = b;
}

void lru_remove(struct buf *b)
{
    if (b->prev != 0)
        b->prev->next = b->next;
    if (b->next != 0)
        b->next->prev = b->prev;
    else
        lru.prev = b->prev;
    b->next = 0;
    b->prev = 0;
}

struct buf *lru_tail(void)
{
    struct buf *head = (struct buf *)&lru;
    struct buf *b = lru.prev;
    if (b == head)
        return 0;
    return b;
}

int hashof(long block)
{
    return (int)(block % HASHSIZE);
}

/* Publish a buffer in the hash table: a hashlink view is overlaid onto the
 * buffer's data area. */
void hash_insert(struct buf *b)
{
    struct hashlink *h = (struct hashlink *)b->data;
    int slot = hashof(b->block);
    h->key = b->block;
    h->chain = hashtab[slot];
    hashtab[slot] = h;
}

struct buf *hash_find(long block)
{
    struct hashlink *h;
    for (h = hashtab[hashof(block)]; h != 0; h = h->chain) {
        if (h->key == block) {
            /* recover the buffer from the embedded data pointer */
            return (struct buf *)((char *)h - (long)&((struct buf *)0)->data);
        }
    }
    return 0;
}

void hash_remove(struct buf *b)
{
    struct hashlink **hp;
    struct hashlink *target = (struct hashlink *)b->data;
    for (hp = &hashtab[hashof(b->block)]; *hp != 0; hp = &(*hp)->chain) {
        if (*hp == target) {
            *hp = target->chain;
            return;
        }
    }
}

/* fake file reading: fill with a pattern */
void fill_block(struct buf *b, long block)
{
    int i;
    for (i = 0; i < BUFSIZE - 1; i++)
        b->data[i] = (char)('a' + (int)((block + i) % 26));
    b->data[BUFSIZE - 1] = '\0';
    b->datalen = BUFSIZE - 1;
    b->block = block;
}

struct buf *getblock(long block)
{
    struct buf *b;
    b = hash_find(block);
    if (b != 0) {
        lru_remove(b);
        lru_insert(b);
        return b;
    }
    if (nalloc < NBUFS) {
        b = buf_alloc();
    } else {
        b = lru_tail();
        if (b == 0)
            b = buf_alloc();
        else {
            lru_remove(b);
            hash_remove(b);
        }
    }
    fill_block(b, block);
    hash_insert(b);
    lru_insert(b);
    return b;
}

/* screen position bookkeeping */
static struct screenpos topline;

char *line_at(struct screenpos *sp)
{
    struct buf *b = getblock(sp->block);
    if (sp->offset >= b->datalen)
        sp->offset = 0;
    return b->data + sp->offset;
}

void forward(struct screenpos *sp, int lines)
{
    sp->line += lines;
    sp->block = sp->line / 4;
    sp->offset = (int)(sp->line % 4) * 32;
}

/* --- search: scan forward through cached blocks for a pattern --- */

struct searchstate {
    char pattern[32];
    long lastblock;
    int lastoffset;
};

static struct searchstate lastsearch;

int match_at(const char *text, const char *pat)
{
    int i;
    for (i = 0; pat[i] != '\0'; i++) {
        if (text[i] == '\0' || text[i] != pat[i])
            return 0;
    }
    return 1;
}

/* returns the block where the pattern was found, or -1 */
long search_forward(const char *pat, long fromblock, long toblock)
{
    long blk;
    int off;
    struct buf *b;
    strncpy(lastsearch.pattern, pat, sizeof(lastsearch.pattern) - 1);
    lastsearch.pattern[sizeof(lastsearch.pattern) - 1] = '\0';
    for (blk = fromblock; blk <= toblock; blk++) {
        b = getblock(blk);
        for (off = 0; off < b->datalen; off++) {
            if (match_at(b->data + off, pat)) {
                lastsearch.lastblock = blk;
                lastsearch.lastoffset = off;
                return blk;
            }
        }
    }
    return -1;
}

/* --- marks: single-letter saved positions, as in less --- */

static struct screenpos marks[26];
static int markset[26];

void set_mark(int name, struct screenpos *sp)
{
    int i = name - 'a';
    if (i < 0 || i >= 26)
        return;
    marks[i] = *sp;
    markset[i] = 1;
}

int goto_mark(int name, struct screenpos *sp)
{
    int i = name - 'a';
    if (i < 0 || i >= 26 || !markset[i])
        return 0;
    *sp = marks[i];
    return 1;
}

int main(void)
{
    long i;
    char *text;
    topline.line = 0;
    topline.block = 0;
    topline.offset = 0;
    for (i = 0; i < 40; i++) {
        text = line_at(&topline);
        printf("%.20s\n", text);
        forward(&topline, 1);
    }
    /* jump backwards: the cache serves old blocks */
    topline.line = 2;
    forward(&topline, 0);
    text = line_at(&topline);
    printf("revisit: %.20s\n", text);
    /* search within the cache and jump around with marks */
    set_mark('a', &topline);
    {
        long hit = search_forward("mnop", 0, 12);
        printf("search: %ld (offset %d)\n", hit, lastsearch.lastoffset);
    }
    forward(&topline, 20);
    text = line_at(&topline);
    printf("after jump: %.20s\n", text);
    if (goto_mark('a', &topline)) {
        text = line_at(&topline);
        printf("back at mark: %.20s\n", text);
    }
    printf("buffers allocated: %d\n", nalloc);
    return 0;
}
