/* simulator: a little CPU simulator whose memory is a flat byte array that
 * gets viewed as instruction words, register save areas and task control
 * blocks through casts (struct casting group, offsets-friendly). */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define MEMSIZE 4096
#define NREGS 8

/* instruction word view */
struct insn {
    unsigned char opcode;
    unsigned char rd, rs1, rs2;
    int imm;
};

/* register save area view */
struct savearea {
    long regs[NREGS];
    long pc;
};

/* task control block: lives in simulated memory too */
struct tcb {
    int id;
    int state;               /* 0 ready, 1 running, 2 done */
    struct savearea save;
    struct tcb *next;
};

#define OP_HALT 0
#define OP_ADDI 1
#define OP_ADD 2
#define OP_LD 3
#define OP_ST 4
#define OP_BNE 5
#define OP_YIELD 6

static unsigned char memory[MEMSIZE];
static long regs[NREGS];
static long pc;
static struct tcb *runqueue;

/* carve simulated memory into objects */
static int memtop;

void *mem_alloc(int size)
{
    void *p;
    size = (size + 7) & ~7;
    if (memtop + size > MEMSIZE) {
        fprintf(stderr, "sim: out of memory\n");
        exit(1);
    }
    p = &memory[memtop];
    memtop += size;
    return p;
}

/* program loading: encode instructions into memory */
int emit(int where, int opcode, int rd, int rs1, int rs2, int imm)
{
    struct insn *i = (struct insn *)&memory[where];
    i->opcode = (unsigned char)opcode;
    i->rd = (unsigned char)rd;
    i->rs1 = (unsigned char)rs1;
    i->rs2 = (unsigned char)rs2;
    i->imm = imm;
    return where + (int)sizeof(struct insn);
}

struct insn *fetch(long at)
{
    return (struct insn *)&memory[at];
}

void save_context(struct savearea *sa)
{
    int i;
    for (i = 0; i < NREGS; i++)
        sa->regs[i] = regs[i];
    sa->pc = pc;
}

void restore_context(struct savearea *sa)
{
    int i;
    for (i = 0; i < NREGS; i++)
        regs[i] = sa->regs[i];
    pc = sa->pc;
}

struct tcb *new_task(long entry)
{
    struct tcb *t = (struct tcb *)mem_alloc(sizeof(struct tcb));
    static int nextid = 1;
    int i;
    t->id = nextid++;
    t->state = 0;
    for (i = 0; i < NREGS; i++)
        t->save.regs[i] = 0;
    t->save.pc = entry;
    t->next = runqueue;
    runqueue = t;
    return t;
}

struct tcb *pick_task(void)
{
    struct tcb *t;
    for (t = runqueue; t != 0; t = t->next) {
        if (t->state == 0)
            return t;
    }
    return 0;
}

/* run one task until yield or halt; returns 0 when it halted */
int run_task(struct tcb *t)
{
    struct insn *i;
    long steps = 0;
    t->state = 1;
    restore_context(&t->save);
    for (steps = 0; steps < 10000; steps++) {
        i = fetch(pc);
        pc += (long)sizeof(struct insn);
        switch (i->opcode) {
        case OP_HALT:
            t->state = 2;
            return 0;
        case OP_ADDI:
            regs[i->rd] = regs[i->rs1] + i->imm;
            break;
        case OP_ADD:
            regs[i->rd] = regs[i->rs1] + regs[i->rs2];
            break;
        case OP_LD: {
            long *slot = (long *)&memory[regs[i->rs1] + i->imm];
            regs[i->rd] = *slot;
            break;
        }
        case OP_ST: {
            long *slot = (long *)&memory[regs[i->rs1] + i->imm];
            *slot = regs[i->rd];
            break;
        }
        case OP_BNE:
            if (regs[i->rs1] != regs[i->rs2])
                pc += i->imm;
            break;
        case OP_YIELD:
            save_context(&t->save);
            t->state = 0;
            return 1;
        default:
            t->state = 2;
            return 0;
        }
    }
    save_context(&t->save);
    t->state = 0;
    return 1;
}

void scheduler(void)
{
    struct tcb *t;
    int alive = 1;
    while (alive) {
        t = pick_task();
        if (t == 0)
            break;
        run_task(t);
    }
}

int main(void)
{
    int at, loop;
    long datum;
    struct tcb *t;

    memtop = 1024;           /* below: code; above: heap for TCBs */

    /* data cell at address 512 */
    datum = 512;
    *(long *)&memory[datum] = 0;

    /* task A: add 1 to the cell five times, yielding between steps */
    at = 0;
    at = emit(at, OP_ADDI, 1, 0, 0, (int)datum); /* r1 = &cell */
    loop = at;
    at = emit(at, OP_LD, 2, 1, 0, 0);            /* r2 = *r1 */
    at = emit(at, OP_ADDI, 2, 2, 0, 1);          /* r2++ */
    at = emit(at, OP_ST, 2, 1, 0, 0);            /* *r1 = r2 */
    at = emit(at, OP_YIELD, 0, 0, 0, 0);
    at = emit(at, OP_ADDI, 3, 3, 0, 1);          /* r3++ */
    at = emit(at, OP_ADDI, 4, 0, 0, 5);          /* r4 = 5 */
    at = emit(at, OP_BNE, 0, 3, 4, loop - at - (int)sizeof(struct insn));
    at = emit(at, OP_HALT, 0, 0, 0, 0);

    /* two tasks run the same code */
    t = new_task(0);
    t = new_task(0);
    (void)t;

    scheduler();

    printf("cell = %ld\n", *(long *)&memory[datum]);
    printf("tasks:");
    for (t = runqueue; t != 0; t = t->next)
        printf(" %d:%s", t->id, t->state == 2 ? "done" : "live");
    printf("\n");
    return 0;
}
