/* ul: do-underlining text filter, after the Unix utility. Character
 * buffers, a small state machine over backspace sequences, mode tables.
 * Plain char handling; no structures are cast. */
#include <stdio.h>
#include <string.h>

#define MAXLINE 1024

#define M_PLAIN 0
#define M_UNDER 1
#define M_BOLD  2

struct cell {
    char ch;
    int mode;
};

static struct cell line[MAXLINE];
static int linelen;
static int curmode;

struct modeseq {
    int mode;
    const char *start;
    const char *end;
};

static struct modeseq seqs[] = {
    { M_PLAIN, "", "" },
    { M_UNDER, "<u>", "</u>" },
    { M_BOLD, "<b>", "</b>" },
};

void reset_line(void)
{
    int i;
    for (i = 0; i < MAXLINE; i++) {
        line[i].ch = ' ';
        line[i].mode = M_PLAIN;
    }
    linelen = 0;
}

void put_at(int col, char c, int mode)
{
    if (col < 0 || col >= MAXLINE)
        return;
    if (line[col].ch == '_' && c != '_') {
        line[col].ch = c;
        line[col].mode = M_UNDER;
    } else if (c == '_' && line[col].ch != ' ') {
        line[col].mode = M_UNDER;
    } else if (c == line[col].ch && c != ' ') {
        line[col].mode = M_BOLD;
    } else {
        line[col].ch = c;
        line[col].mode = mode;
    }
    if (col >= linelen)
        linelen = col + 1;
}

struct modeseq *seq_for(int mode)
{
    int i;
    for (i = 0; i < (int)(sizeof(seqs) / sizeof(seqs[0])); i++) {
        if (seqs[i].mode == mode)
            return &seqs[i];
    }
    return &seqs[0];
}

void flush_line(FILE *out)
{
    int i, mode;
    struct modeseq *ms;
    mode = M_PLAIN;
    for (i = 0; i < linelen; i++) {
        if (line[i].mode != mode) {
            ms = seq_for(mode);
            fputs(ms->end, out);
            mode = line[i].mode;
            ms = seq_for(mode);
            fputs(ms->start, out);
        }
        fputc(line[i].ch, out);
    }
    if (mode != M_PLAIN) {
        ms = seq_for(mode);
        fputs(ms->end, out);
    }
    fputc('\n', out);
    reset_line();
}

void process(FILE *in, FILE *out)
{
    int c, col;
    col = 0;
    curmode = M_PLAIN;
    reset_line();
    while ((c = fgetc(in)) != EOF) {
        switch (c) {
        case '\b':
            if (col > 0)
                col--;
            break;
        case '\n':
            flush_line(out);
            col = 0;
            break;
        case '\t':
            col = (col + 8) & ~7;
            break;
        case '\r':
            col = 0;
            break;
        default:
            put_at(col, (char)c, curmode);
            col++;
            break;
        }
    }
    if (linelen > 0)
        flush_line(out);
}

int main(void)
{
    process(stdin, stdout);
    return 0;
}
