/* compiler: an expression compiler/evaluator whose AST uses the classic
 * C "inheritance" idiom — every node type begins with the same header and
 * code casts between the base and variant views (struct casting group,
 * common-initial-sequence friendly). */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <ctype.h>

#define N_NUM 1
#define N_VAR 2
#define N_BIN 3
#define N_ASSIGN 4

/* The base "class": kind, source position, and the parent link. Every
 * variant repeats this header, so the three members form a common initial
 * sequence that generic code exploits through base-pointer casts. */
struct node {
    int kind;
    int pos;
    struct node *parent;
};

struct numnode {
    int kind;
    int pos;
    struct node *parent;
    long value;
};

struct varnode {
    int kind;
    int pos;
    struct node *parent;
    char name[16];
    struct vardef *def;
};

struct binnode {
    int kind;
    int pos;
    struct node *parent;
    int op;                  /* '+', '-', '*', '/' */
    struct node *lhs, *rhs;
};

struct assignnode {
    int kind;
    int pos;
    struct node *parent;
    struct varnode *target;
    struct node *value;
};

struct vardef {
    char name[16];
    long value;
    struct vardef *next;
};

static struct vardef *globals;
static const char *input;
static int inpos;

struct node *parse_expr(void);

struct vardef *lookup_var(const char *name)
{
    struct vardef *v;
    for (v = globals; v != 0; v = v->next) {
        if (strcmp(v->name, name) == 0)
            return v;
    }
    v = (struct vardef *)malloc(sizeof(struct vardef));
    if (v == 0)
        exit(1);
    strncpy(v->name, name, sizeof(v->name) - 1);
    v->name[sizeof(v->name) - 1] = '\0';
    v->value = 0;
    v->next = globals;
    globals = v;
    return v;
}

int peekch(void)
{
    while (input[inpos] == ' ')
        inpos++;
    return input[inpos];
}

int getch(void)
{
    int c = peekch();
    if (c != '\0')
        inpos++;
    return c;
}

struct node *mk_num(long v)
{
    struct numnode *n = (struct numnode *)malloc(sizeof(struct numnode));
    if (n == 0)
        exit(1);
    n->kind = N_NUM;
    n->pos = inpos;
    n->parent = 0;
    n->value = v;
    return (struct node *)n;
}

struct node *mk_var(const char *name)
{
    struct varnode *n = (struct varnode *)malloc(sizeof(struct varnode));
    if (n == 0)
        exit(1);
    n->kind = N_VAR;
    n->pos = inpos;
    n->parent = 0;
    strncpy(n->name, name, sizeof(n->name) - 1);
    n->name[sizeof(n->name) - 1] = '\0';
    n->def = lookup_var(name);
    return (struct node *)n;
}

struct node *mk_bin(int op, struct node *l, struct node *r)
{
    struct binnode *n = (struct binnode *)malloc(sizeof(struct binnode));
    if (n == 0)
        exit(1);
    n->kind = N_BIN;
    n->pos = inpos;
    n->parent = 0;
    n->op = op;
    n->lhs = l;
    n->rhs = r;
    l->parent = (struct node *)n;
    r->parent = (struct node *)n;
    return (struct node *)n;
}

struct node *parse_primary(void)
{
    int c = peekch();
    if (isdigit(c)) {
        long v = 0;
        while (isdigit(peekch()))
            v = v * 10 + (getch() - '0');
        return mk_num(v);
    }
    if (isalpha(c)) {
        char name[16];
        int i = 0;
        while (isalnum(peekch()) && i < 15)
            name[i++] = (char)getch();
        name[i] = '\0';
        return mk_var(name);
    }
    if (c == '(') {
        struct node *e;
        getch();
        e = parse_expr();
        if (peekch() == ')')
            getch();
        return e;
    }
    getch();
    return mk_num(0);
}

struct node *parse_term(void)
{
    struct node *l = parse_primary();
    while (peekch() == '*' || peekch() == '/') {
        int op = getch();
        l = mk_bin(op, l, parse_primary());
    }
    return l;
}

struct node *parse_sum(void)
{
    struct node *l = parse_term();
    while (peekch() == '+' || peekch() == '-') {
        int op = getch();
        l = mk_bin(op, l, parse_term());
    }
    return l;
}

struct node *parse_expr(void)
{
    struct node *l = parse_sum();
    if (peekch() == '=') {
        /* only a variable can be assigned */
        if (l->kind == N_VAR) {
            struct assignnode *a;
            getch();
            a = (struct assignnode *)malloc(sizeof(struct assignnode));
            if (a == 0)
                exit(1);
            a->kind = N_ASSIGN;
            a->pos = l->pos;
            a->parent = 0;
            a->target = (struct varnode *)l;
            a->value = parse_expr();
            l->parent = (struct node *)a;
            a->value->parent = (struct node *)a;
            return (struct node *)a;
        }
    }
    return l;
}

/* Generic header utilities: any variant pointer can be inspected through
 * the base view; the parent chain lives in the common initial sequence. */
int node_depth(void *t)
{
    struct node *n = (struct node *)t;
    int d = 0;
    while (n->parent != 0) {
        n = n->parent;
        d++;
    }
    return d;
}

struct node *node_root(void *t)
{
    struct node *n = (struct node *)t;
    while (n->parent != 0)
        n = n->parent;
    return n;
}

long eval_node(struct node *n)
{
    switch (n->kind) {
    case N_NUM:
        return ((struct numnode *)n)->value;
    case N_VAR:
        return ((struct varnode *)n)->def->value;
    case N_BIN: {
        struct binnode *b = (struct binnode *)n;
        long l = eval_node(b->lhs);
        long r = eval_node(b->rhs);
        switch (b->op) {
        case '+':
            return l + r;
        case '-':
            return l - r;
        case '*':
            return l * r;
        case '/':
            return r == 0 ? 0 : l / r;
        }
        return 0;
    }
    case N_ASSIGN: {
        struct assignnode *a = (struct assignnode *)n;
        long v = eval_node(a->value);
        a->target->def->value = v;
        return v;
    }
    }
    return 0;
}

/* A tiny "code generator": walk the tree emitting a stack machine. */
void gen_node(struct node *n, FILE *out)
{
    switch (n->kind) {
    case N_NUM:
        fprintf(out, "\tpush %ld\n", ((struct numnode *)n)->value);
        break;
    case N_VAR: {
        struct varnode *v = (struct varnode *)n;
        fprintf(out, "\tload %s  ; depth %d root-kind %d\n",
                v->name, node_depth(v), node_root(v)->kind);
        break;
    }
    case N_BIN: {
        struct binnode *b = (struct binnode *)n;
        gen_node(b->lhs, out);
        gen_node(b->rhs, out);
        fprintf(out, "\top %c\n", b->op);
        break;
    }
    case N_ASSIGN: {
        struct assignnode *a = (struct assignnode *)n;
        gen_node(a->value, out);
        fprintf(out, "\tstore %s\n", a->target->name);
        break;
    }
    }
}

void run(const char *src)
{
    struct node *tree;
    input = src;
    inpos = 0;
    tree = parse_expr();
    printf("; %s\n", src);
    gen_node(tree, stdout);
    printf("= %ld\n", eval_node(tree));
}

int main(void)
{
    run("x = 2 + 3 * 4");
    run("y = x * x");
    run("y - x");
    run("(1 + 2) * (3 + 4)");
    return 0;
}
