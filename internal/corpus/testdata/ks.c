/* ks: Kernighan–Schweikert style graph partitioning, after the Austin "ks"
 * benchmark. Modules and nets linked through membership records, gain
 * buckets, swap selection. No struct casting. */
#include <stdio.h>
#include <stdlib.h>

#define NMODULES 64
#define NNETS 96

struct net;

struct pin {
    struct net *net;
    struct pin *nextpin;     /* next pin of this module */
};

struct module {
    int id;
    int side;                /* 0 or 1 */
    int locked;
    int gain;
    struct pin *pins;
    struct module *bucketnext, *bucketprev;
};

struct conn {
    struct module *mod;
    struct conn *nextconn;
};

struct net {
    int id;
    int count[2];            /* modules on each side */
    struct conn *conns;
};

static struct module modules[NMODULES];
static struct net nets[NNETS];
static struct module *bucket[2];   /* per-side gain bucket heads */

static unsigned int seed = 99;

int nextrand(int mod)
{
    seed = seed * 1103515245u + 12345u;
    return (int)((seed >> 16) % (unsigned int)mod);
}

void connect(struct module *m, struct net *n)
{
    struct pin *p;
    struct conn *c;
    p = (struct pin *)malloc(sizeof(struct pin));
    c = (struct conn *)malloc(sizeof(struct conn));
    if (p == 0 || c == 0)
        exit(1);
    p->net = n;
    p->nextpin = m->pins;
    m->pins = p;
    c->mod = m;
    c->nextconn = n->conns;
    n->conns = c;
}

void build(void)
{
    int i, k;
    for (i = 0; i < NMODULES; i++) {
        modules[i].id = i;
        modules[i].side = i & 1;
        modules[i].locked = 0;
        modules[i].gain = 0;
        modules[i].pins = 0;
        modules[i].bucketnext = 0;
        modules[i].bucketprev = 0;
    }
    for (i = 0; i < NNETS; i++) {
        nets[i].id = i;
        nets[i].conns = 0;
        nets[i].count[0] = 0;
        nets[i].count[1] = 0;
        for (k = 0; k < 3; k++)
            connect(&modules[nextrand(NMODULES)], &nets[i]);
    }
}

void count_sides(void)
{
    int i;
    struct conn *c;
    for (i = 0; i < NNETS; i++) {
        nets[i].count[0] = 0;
        nets[i].count[1] = 0;
        for (c = nets[i].conns; c != 0; c = c->nextconn)
            nets[i].count[c->mod->side]++;
    }
}

int cutsize(void)
{
    int i, cut;
    cut = 0;
    for (i = 0; i < NNETS; i++) {
        if (nets[i].count[0] > 0 && nets[i].count[1] > 0)
            cut++;
    }
    return cut;
}

void compute_gain(struct module *m)
{
    struct pin *p;
    int from, to;
    from = m->side;
    to = 1 - from;
    m->gain = 0;
    for (p = m->pins; p != 0; p = p->nextpin) {
        if (p->net->count[from] == 1)
            m->gain++;
        if (p->net->count[to] == 0)
            m->gain--;
    }
}

void bucket_insert(struct module *m)
{
    struct module **head;
    head = &bucket[m->side];
    m->bucketprev = 0;
    m->bucketnext = *head;
    if (*head != 0)
        (*head)->bucketprev = m;
    *head = m;
}

void bucket_remove(struct module *m)
{
    if (m->bucketprev != 0)
        m->bucketprev->bucketnext = m->bucketnext;
    else
        bucket[m->side] = m->bucketnext;
    if (m->bucketnext != 0)
        m->bucketnext->bucketprev = m->bucketprev;
    m->bucketnext = 0;
    m->bucketprev = 0;
}

struct module *best_unlocked(int side)
{
    struct module *m, *best;
    best = 0;
    for (m = bucket[side]; m != 0; m = m->bucketnext) {
        if (m->locked)
            continue;
        if (best == 0 || m->gain > best->gain)
            best = m;
    }
    return best;
}

void move(struct module *m)
{
    struct pin *p;
    int from, to;
    from = m->side;
    to = 1 - from;
    bucket_remove(m);
    for (p = m->pins; p != 0; p = p->nextpin) {
        p->net->count[from]--;
        p->net->count[to]++;
    }
    m->side = to;
    m->locked = 1;
    bucket_insert(m);
}

int one_pass(void)
{
    int i, before, after;
    struct module *m;
    count_sides();
    before = cutsize();
    bucket[0] = 0;
    bucket[1] = 0;
    for (i = 0; i < NMODULES; i++) {
        modules[i].locked = 0;
        compute_gain(&modules[i]);
        bucket_insert(&modules[i]);
    }
    for (i = 0; i < NMODULES / 4; i++) {
        m = best_unlocked(i & 1);
        if (m == 0)
            break;
        move(m);
    }
    count_sides();
    after = cutsize();
    return before - after;
}

int main(void)
{
    int pass, gain;
    build();
    count_sides();
    printf("initial cut = %d\n", cutsize());
    for (pass = 0; pass < 6; pass++) {
        gain = one_pass();
        printf("pass %d gain %d\n", pass, gain);
        if (gain <= 0)
            break;
    }
    printf("final cut = %d\n", cutsize());
    return 0;
}
