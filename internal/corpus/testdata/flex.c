/* flex: the table-construction core of a scanner generator after
 * flex-2.4.7: NFA states built from pattern strings, subset construction
 * into DFA rows, with the transition structures reallocated and unioned
 * value slots (struct casting group). */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define MAXNFA 128
#define MAXDFA 64
#define NSYMS 8              /* 'a'..'h' for compactness */

/* An NFA state: out transitions are either a symbol edge or epsilon pair.
 * The two shapes are packed into one record distinguished by kind, and
 * parts of the record are reused through a value union. */
union stval {
    int target;
    struct nfastate *ptr;
};

struct nfastate {
    int id;
    int kind;                /* 0 = symbol edge, 1 = epsilon, 2 = accept */
    int sym;
    union stval out1, out2;
    int accept_rule;
};

struct nfafrag {
    struct nfastate *start;
    struct nfastate *accept;
};

static struct nfastate nfa[MAXNFA];
static int nnfa;

struct nfastate *new_state(int kind)
{
    struct nfastate *s;
    if (nnfa >= MAXNFA)
        exit(1);
    s = &nfa[nnfa];
    s->id = nnfa;
    s->kind = kind;
    s->sym = -1;
    s->out1.target = -1;
    s->out2.target = -1;
    s->accept_rule = -1;
    nnfa++;
    return s;
}

/* Thompson construction over a trivial pattern language: literal symbols,
 * '|' alternation and '*' star (postfix). */
struct nfafrag frag_sym(int sym)
{
    struct nfafrag f;
    struct nfastate *s = new_state(0);
    struct nfastate *a = new_state(2);
    s->sym = sym;
    s->out1.ptr = a;
    f.start = s;
    f.accept = a;
    return f;
}

struct nfafrag frag_cat(struct nfafrag a, struct nfafrag b)
{
    struct nfafrag f;
    a.accept->kind = 1;      /* accept becomes epsilon into b */
    a.accept->out1.ptr = b.start;
    f.start = a.start;
    f.accept = b.accept;
    return f;
}

struct nfafrag frag_alt(struct nfafrag a, struct nfafrag b)
{
    struct nfafrag f;
    struct nfastate *s = new_state(1);
    struct nfastate *acc = new_state(2);
    s->out1.ptr = a.start;
    s->out2.ptr = b.start;
    a.accept->kind = 1;
    a.accept->out1.ptr = acc;
    b.accept->kind = 1;
    b.accept->out1.ptr = acc;
    f.start = s;
    f.accept = acc;
    return f;
}

struct nfafrag frag_star(struct nfafrag a)
{
    struct nfafrag f;
    struct nfastate *s = new_state(1);
    struct nfastate *acc = new_state(2);
    s->out1.ptr = a.start;
    s->out2.ptr = acc;
    a.accept->kind = 1;
    a.accept->out1.ptr = a.start;
    a.accept->out2.ptr = acc;
    f.start = s;
    f.accept = acc;
    return f;
}

struct nfafrag parse_pattern(const char *pat, int rule);

/* --- DFA rows --- */

struct dfarow {
    unsigned long nfaset;    /* bitset of NFA states */
    int next[NSYMS];
    int accept_rule;
};

static struct dfarow dfa[MAXDFA];
static int ndfa;

unsigned long eps_closure(unsigned long set)
{
    int changed, i;
    changed = 1;
    while (changed) {
        changed = 0;
        for (i = 0; i < nnfa; i++) {
            if (!(set & (1uL << i)))
                continue;
            if (nfa[i].kind == 1) {
                struct nfastate *t1 = nfa[i].out1.ptr;
                struct nfastate *t2 = nfa[i].out2.ptr;
                if (t1 != 0 && !(set & (1uL << t1->id))) {
                    set |= 1uL << t1->id;
                    changed = 1;
                }
                if (t2 != 0 && !(set & (1uL << t2->id))) {
                    set |= 1uL << t2->id;
                    changed = 1;
                }
            }
        }
    }
    return set;
}

unsigned long move_on(unsigned long set, int sym)
{
    unsigned long out = 0;
    int i;
    for (i = 0; i < nnfa; i++) {
        if (!(set & (1uL << i)))
            continue;
        if (nfa[i].kind == 0 && nfa[i].sym == sym)
            out |= 1uL << nfa[i].out1.ptr->id;
    }
    return out;
}

int accept_of(unsigned long set)
{
    int i, best = -1;
    for (i = 0; i < nnfa; i++) {
        if ((set & (1uL << i)) && nfa[i].kind == 2 && nfa[i].accept_rule >= 0) {
            if (best < 0 || nfa[i].accept_rule < best)
                best = nfa[i].accept_rule;
        }
    }
    return best;
}

int row_for(unsigned long set)
{
    int i;
    for (i = 0; i < ndfa; i++) {
        if (dfa[i].nfaset == set)
            return i;
    }
    if (ndfa >= MAXDFA)
        exit(1);
    dfa[ndfa].nfaset = set;
    dfa[ndfa].accept_rule = accept_of(set);
    for (i = 0; i < NSYMS; i++)
        dfa[ndfa].next[i] = -1;
    return ndfa++;
}

void subset_construct(struct nfastate *start)
{
    int done, r, sym;
    unsigned long set;
    ndfa = 0;
    row_for(eps_closure(1uL << start->id));
    done = 0;
    while (done < ndfa) {
        r = done++;
        for (sym = 0; sym < NSYMS; sym++) {
            set = move_on(dfa[r].nfaset, sym);
            if (set == 0)
                continue;
            set = eps_closure(set);
            dfa[r].next[sym] = row_for(set);
        }
    }
}

struct nfafrag parse_pattern(const char *pat, int rule)
{
    struct nfafrag stack[16];
    int sp = 0;
    int i;
    for (i = 0; pat[i] != '\0'; i++) {
        char c = pat[i];
        if (c >= 'a' && c < 'a' + NSYMS) {
            stack[sp++] = frag_sym(c - 'a');
        } else if (c == '.') {
            struct nfafrag b = stack[--sp];
            struct nfafrag a = stack[--sp];
            stack[sp++] = frag_cat(a, b);
        } else if (c == '|') {
            struct nfafrag b = stack[--sp];
            struct nfafrag a = stack[--sp];
            stack[sp++] = frag_alt(a, b);
        } else if (c == '*') {
            struct nfafrag a = stack[--sp];
            stack[sp++] = frag_star(a);
        }
    }
    stack[0].accept->accept_rule = rule;
    return stack[0];
}

int match(const char *text)
{
    int row = 0, i;
    int last = -1;
    for (i = 0; text[i] != '\0'; i++) {
        int sym = text[i] - 'a';
        if (sym < 0 || sym >= NSYMS)
            break;
        if (dfa[row].next[sym] < 0)
            break;
        row = dfa[row].next[sym];
        if (dfa[row].accept_rule >= 0)
            last = dfa[row].accept_rule;
    }
    return last;
}

int main(void)
{
    /* rule 0: (ab)* a  written postfix: ab.*a.  */
    struct nfafrag f = parse_pattern("ab.*a.", 0);
    subset_construct(f.start);
    printf("dfa rows: %d\n", ndfa);
    printf("match(a) = %d\n", match("a"));
    printf("match(aba) = %d\n", match("aba"));
    printf("match(ababa) = %d\n", match("ababa"));
    printf("match(abb) = %d\n", match("abb"));
    return 0;
}
