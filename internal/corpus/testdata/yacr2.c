/* yacr2: a simplified channel router after the Austin benchmark. Tracks,
 * nets with pin intervals, a vertical-constraint graph, greedy track
 * assignment. Arrays of structs and pointer fields; no struct casting. */
#include <stdio.h>
#include <stdlib.h>

#define MAXNETS 48
#define MAXCOLS 128
#define MAXTRACKS 32

struct netseg {
    int id;
    int left, right;         /* column interval */
    int track;               /* assigned track, -1 if none */
    struct netseg *above;    /* vertical constraint: must be above this */
};

struct track {
    int used[MAXCOLS];       /* occupancy per column */
    struct netseg *segs[MAXNETS];
    int nsegs;
};

struct channel {
    struct netseg nets[MAXNETS];
    int nnets;
    struct track tracks[MAXTRACKS];
    int ntracks;
};

static struct channel chan;
static unsigned int seed = 7;

int nextrand(int mod)
{
    seed = seed * 1103515245u + 12345u;
    return (int)((seed >> 16) % (unsigned int)mod);
}

void build_channel(struct channel *ch, int n)
{
    int i, a, b;
    ch->nnets = n;
    ch->ntracks = 0;
    for (i = 0; i < n; i++) {
        a = nextrand(MAXCOLS - 2);
        b = a + 1 + nextrand(MAXCOLS - a - 1);
        ch->nets[i].id = i;
        ch->nets[i].left = a;
        ch->nets[i].right = b;
        ch->nets[i].track = -1;
        ch->nets[i].above = 0;
    }
    /* random vertical constraints between overlapping nets */
    for (i = 1; i < n; i++) {
        struct netseg *s = &ch->nets[i];
        struct netseg *p = &ch->nets[nextrand(i)];
        if (p->left <= s->right && s->left <= p->right && nextrand(3) == 0)
            s->above = p;
    }
}

int track_fits(struct track *t, struct netseg *s)
{
    int c;
    for (c = s->left; c <= s->right; c++) {
        if (t->used[c])
            return 0;
    }
    return 1;
}

void track_place(struct track *t, struct netseg *s, int trackno)
{
    int c;
    for (c = s->left; c <= s->right; c++)
        t->used[c] = 1;
    t->segs[t->nsegs++] = s;
    s->track = trackno;
}

/* Constraint depth: how many nets must lie above this one. */
int depth(struct netseg *s)
{
    int d;
    struct netseg *p;
    d = 0;
    for (p = s->above; p != 0; p = p->above) {
        d++;
        if (d > MAXNETS)
            break; /* cycle guard */
    }
    return d;
}

int cmp_net(const void *a, const void *b)
{
    const struct netseg *const *na = (const struct netseg *const *)a;
    const struct netseg *const *nb = (const struct netseg *const *)b;
    int da = depth(*(struct netseg **)a);
    int db = depth(*(struct netseg **)b);
    if (da != db)
        return db - da;
    return (*na)->left - (*nb)->left;
}

void route(struct channel *ch)
{
    struct netseg *order[MAXNETS];
    int i, t;
    for (i = 0; i < ch->nnets; i++)
        order[i] = &ch->nets[i];
    qsort(order, ch->nnets, sizeof(struct netseg *), cmp_net);
    for (i = 0; i < ch->nnets; i++) {
        struct netseg *s = order[i];
        int mintrack = 0;
        if (s->above != 0 && s->above->track >= 0)
            mintrack = s->above->track + 1;
        for (t = mintrack; t < MAXTRACKS; t++) {
            if (track_fits(&ch->tracks[t], s)) {
                track_place(&ch->tracks[t], s, t);
                if (t >= ch->ntracks)
                    ch->ntracks = t + 1;
                break;
            }
        }
    }
}

void report(struct channel *ch)
{
    int i;
    printf("%d nets routed on %d tracks\n", ch->nnets, ch->ntracks);
    for (i = 0; i < ch->nnets; i++) {
        struct netseg *s = &ch->nets[i];
        printf("net %d [%d,%d] -> track %d", s->id, s->left, s->right, s->track);
        if (s->above != 0)
            printf(" (below net %d)", s->above->id);
        printf("\n");
    }
}

int main(void)
{
    build_channel(&chan, 40);
    route(&chan);
    report(&chan);
    return 0;
}
