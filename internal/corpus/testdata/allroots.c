/* allroots: find all real roots of polynomials by interval bisection and
 * Newton refinement. Structures with embedded arrays, pointer parameters,
 * no casting of structures anywhere (paper group: no struct casts). */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>

#define MAXDEG 16
#define MAXROOTS 16

struct poly {
    int deg;
    double coef[MAXDEG + 1];   /* coef[i] multiplies x^i */
};

struct rootset {
    int n;
    double root[MAXROOTS];
};

struct interval {
    double lo, hi;
};

static struct poly workp;
static struct rootset found;

double poly_eval(struct poly *p, double x)
{
    double v;
    int i;
    v = 0.0;
    for (i = p->deg; i >= 0; i--)
        v = v * x + p->coef[i];
    return v;
}

void poly_derive(struct poly *p, struct poly *dp)
{
    int i;
    dp->deg = p->deg - 1;
    if (dp->deg < 0)
        dp->deg = 0;
    for (i = 1; i <= p->deg; i++)
        dp->coef[i - 1] = p->coef[i] * (double)i;
}

void poly_copy(struct poly *dst, struct poly *src)
{
    int i;
    dst->deg = src->deg;
    for (i = 0; i <= src->deg; i++)
        dst->coef[i] = src->coef[i];
}

/* Deflate p by the root r: p := p / (x - r). */
void poly_deflate(struct poly *p, double r)
{
    double carry, t;
    int i;
    carry = p->coef[p->deg];
    for (i = p->deg - 1; i >= 0; i--) {
        t = p->coef[i];
        p->coef[i] = carry;
        carry = t + r * carry;
    }
    p->deg--;
}

double refine_newton(struct poly *p, struct poly *dp, double x0)
{
    double x, fx, dfx;
    int iter;
    x = x0;
    for (iter = 0; iter < 40; iter++) {
        fx = poly_eval(p, x);
        dfx = poly_eval(dp, x);
        if (fabs(dfx) < 1e-12)
            break;
        x = x - fx / dfx;
    }
    return x;
}

int bisect(struct poly *p, struct interval *iv, double *out)
{
    double lo, hi, mid, flo, fmid;
    int iter;
    lo = iv->lo;
    hi = iv->hi;
    flo = poly_eval(p, lo);
    if (flo * poly_eval(p, hi) > 0.0)
        return 0;
    for (iter = 0; iter < 60; iter++) {
        mid = (lo + hi) / 2.0;
        fmid = poly_eval(p, mid);
        if (flo * fmid <= 0.0)
            hi = mid;
        else {
            lo = mid;
            flo = fmid;
        }
    }
    *out = (lo + hi) / 2.0;
    return 1;
}

void add_root(struct rootset *rs, double r)
{
    if (rs->n < MAXROOTS) {
        rs->root[rs->n] = r;
        rs->n++;
    }
}

void find_roots(struct poly *p, struct rootset *rs)
{
    struct poly dp;
    struct interval iv;
    double r;
    double step;
    rs->n = 0;
    poly_copy(&workp, p);
    while (workp.deg > 0) {
        poly_derive(&workp, &dp);
        step = 0.5;
        iv.lo = -64.0;
        r = 0.0;
        while (iv.lo < 64.0) {
            iv.hi = iv.lo + step;
            if (bisect(&workp, &iv, &r))
                break;
            iv.lo = iv.hi;
        }
        if (iv.lo >= 64.0)
            break;
        r = refine_newton(&workp, &dp, r);
        add_root(rs, r);
        poly_deflate(&workp, r);
    }
}

void print_roots(struct rootset *rs)
{
    int i;
    for (i = 0; i < rs->n; i++)
        printf("root %d = %f\n", i, rs->root[i]);
}

void build_poly(struct poly *p, int deg)
{
    int i;
    p->deg = deg;
    for (i = 0; i <= deg; i++)
        p->coef[i] = (double)((i * 7 + 3) % 11) - 5.0;
    if (p->coef[deg] == 0.0)
        p->coef[deg] = 1.0;
}

int main(void)
{
    struct poly p;
    int deg;
    for (deg = 2; deg <= 6; deg++) {
        build_poly(&p, deg);
        find_roots(&p, &found);
        print_roots(&found);
    }
    return 0;
}
