/* ft: minimum spanning tree over a random graph, after the Austin "ft"
 * benchmark. Linked vertex/edge records, a leftist-heap priority queue,
 * heavy pointer chasing. No struct casting. */
#include <stdio.h>
#include <stdlib.h>

struct vertex {
    int id;
    int key;
    int intree;
    struct vertex *parent;
    struct edge *adj;       /* adjacency list */
    struct vertex *next;    /* all-vertices list */
};

struct edge {
    int weight;
    struct vertex *to;
    struct edge *nextadj;
};

struct heapnode {
    struct vertex *v;
    int rank;
    struct heapnode *left, *right;
};

static struct vertex *vertices;
static int nvertices;

struct vertex *new_vertex(int id)
{
    struct vertex *v;
    v = (struct vertex *)malloc(sizeof(struct vertex));
    if (v == 0)
        exit(1);
    v->id = id;
    v->key = 1 << 28;
    v->intree = 0;
    v->parent = 0;
    v->adj = 0;
    v->next = vertices;
    vertices = v;
    nvertices++;
    return v;
}

void add_edge(struct vertex *from, struct vertex *to, int w)
{
    struct edge *e;
    e = (struct edge *)malloc(sizeof(struct edge));
    if (e == 0)
        exit(1);
    e->weight = w;
    e->to = to;
    e->nextadj = from->adj;
    from->adj = e;
}

/* Leftist heap keyed on vertex key. */
struct heapnode *heap_merge(struct heapnode *a, struct heapnode *b)
{
    struct heapnode *t;
    if (a == 0)
        return b;
    if (b == 0)
        return a;
    if (b->v->key < a->v->key) {
        t = a;
        a = b;
        b = t;
    }
    a->right = heap_merge(a->right, b);
    if (a->left == 0 || a->left->rank < a->right->rank) {
        t = a->left;
        a->left = a->right;
        a->right = t;
    }
    if (a->right == 0)
        a->rank = 1;
    else
        a->rank = a->right->rank + 1;
    return a;
}

struct heapnode *heap_insert(struct heapnode *h, struct vertex *v)
{
    struct heapnode *n;
    n = (struct heapnode *)malloc(sizeof(struct heapnode));
    if (n == 0)
        exit(1);
    n->v = v;
    n->rank = 1;
    n->left = 0;
    n->right = 0;
    return heap_merge(h, n);
}

struct heapnode *heap_pop(struct heapnode *h, struct vertex **out)
{
    *out = h->v;
    return heap_merge(h->left, h->right);
}

static unsigned int seed = 12345;

int nextrand(int mod)
{
    seed = seed * 1103515245u + 12345u;
    return (int)((seed >> 16) % (unsigned int)mod);
}

void build_graph(int n, int extra)
{
    struct vertex **tab;
    int i;
    tab = (struct vertex **)malloc(n * sizeof(struct vertex *));
    if (tab == 0)
        exit(1);
    for (i = 0; i < n; i++)
        tab[i] = new_vertex(i);
    /* spanning chain plus random extras, both directions */
    for (i = 1; i < n; i++) {
        int w = 1 + nextrand(100);
        add_edge(tab[i - 1], tab[i], w);
        add_edge(tab[i], tab[i - 1], w);
    }
    for (i = 0; i < extra; i++) {
        int a = nextrand(n), b = nextrand(n);
        int w = 1 + nextrand(100);
        if (a != b) {
            add_edge(tab[a], tab[b], w);
            add_edge(tab[b], tab[a], w);
        }
    }
    free(tab);
}

long prim(void)
{
    struct heapnode *heap;
    struct vertex *v;
    struct edge *e;
    long total;
    heap = 0;
    total = 0;
    vertices->key = 0;
    heap = heap_insert(heap, vertices);
    while (heap != 0) {
        heap = heap_pop(heap, &v);
        if (v->intree)
            continue;
        v->intree = 1;
        total += v->key;
        for (e = v->adj; e != 0; e = e->nextadj) {
            if (!e->to->intree && e->weight < e->to->key) {
                e->to->key = e->weight;
                e->to->parent = v;
                heap = heap_insert(heap, e->to);
            }
        }
    }
    return total;
}

int main(void)
{
    struct vertex *v;
    build_graph(64, 128);
    printf("mst weight = %ld\n", prim());
    for (v = vertices; v != 0; v = v->next) {
        if (v->parent != 0)
            printf("%d <- %d (key %d)\n", v->id, v->parent->id, v->key);
    }
    return 0;
}
