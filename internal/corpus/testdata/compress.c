/* compress: LZW compression over stdin, after the classic utility.
 * Hash-chained code table stored in parallel arrays inside a struct,
 * bit-packed output. Arrays and integer tricks, but no struct casting. */
#include <stdio.h>
#include <stdlib.h>

#define TABSIZE 5003
#define MAXBITS 12
#define MAXCODE ((1 << MAXBITS) - 1)
#define FIRSTCODE 257
#define CLEARCODE 256

struct codetable {
    long hashkey[TABSIZE];   /* (prefix << 8) | byte, or -1 */
    int code[TABSIZE];
    int nextcode;
};

struct bitwriter {
    FILE *out;
    unsigned long acc;
    int nbits;
    long written;
};

static struct codetable table;
static struct bitwriter bw;

void table_clear(struct codetable *t)
{
    int i;
    for (i = 0; i < TABSIZE; i++)
        t->hashkey[i] = -1;
    t->nextcode = FIRSTCODE;
}

int table_find(struct codetable *t, int prefix, int byte, int *slot)
{
    long key;
    int h, step;
    key = ((long)prefix << 8) | (long)byte;
    h = (int)((key * 2654435761uL) % TABSIZE);
    if (h < 0)
        h = -h;
    step = 1 + (int)(key % (TABSIZE - 2));
    for (;;) {
        if (t->hashkey[h] == -1) {
            *slot = h;
            return -1;
        }
        if (t->hashkey[h] == key)
            return t->code[h];
        h -= step;
        if (h < 0)
            h += TABSIZE;
    }
}

void table_add(struct codetable *t, int slot, int prefix, int byte)
{
    if (t->nextcode > MAXCODE)
        return;
    t->hashkey[slot] = ((long)prefix << 8) | (long)byte;
    t->code[slot] = t->nextcode;
    t->nextcode++;
}

void bw_init(struct bitwriter *w, FILE *out)
{
    w->out = out;
    w->acc = 0;
    w->nbits = 0;
    w->written = 0;
}

void bw_put(struct bitwriter *w, int code, int width)
{
    w->acc |= (unsigned long)code << w->nbits;
    w->nbits += width;
    while (w->nbits >= 8) {
        fputc((int)(w->acc & 0xff), w->out);
        w->acc >>= 8;
        w->nbits -= 8;
        w->written++;
    }
}

void bw_flush(struct bitwriter *w)
{
    if (w->nbits > 0) {
        fputc((int)(w->acc & 0xff), w->out);
        w->written++;
    }
    w->acc = 0;
    w->nbits = 0;
}

int codewidth(int nextcode)
{
    int w;
    w = 9;
    while ((1 << w) < nextcode && w < MAXBITS)
        w++;
    return w;
}

long compress_stream(FILE *in, FILE *out)
{
    int c, prefix, code, slot;
    long inbytes;
    table_clear(&table);
    bw_init(&bw, out);
    inbytes = 0;
    prefix = fgetc(in);
    if (prefix == EOF)
        return 0;
    inbytes++;
    while ((c = fgetc(in)) != EOF) {
        inbytes++;
        code = table_find(&table, prefix, c, &slot);
        if (code >= 0) {
            prefix = code;
            continue;
        }
        bw_put(&bw, prefix, codewidth(table.nextcode));
        table_add(&table, slot, prefix, c);
        prefix = c;
        if (table.nextcode > MAXCODE) {
            bw_put(&bw, CLEARCODE, MAXBITS);
            table_clear(&table);
        }
    }
    bw_put(&bw, prefix, codewidth(table.nextcode));
    bw_flush(&bw);
    return inbytes;
}

/* --- decompressor: rebuild the string table from the code stream --- */

struct bitreader {
    const unsigned char *data;
    long len;
    long pos;
    unsigned long acc;
    int nbits;
};

void br_init(struct bitreader *r, const unsigned char *data, long len)
{
    r->data = data;
    r->len = len;
    r->pos = 0;
    r->acc = 0;
    r->nbits = 0;
}

int br_get(struct bitreader *r, int width)
{
    int code;
    while (r->nbits < width) {
        if (r->pos >= r->len)
            return -1;
        r->acc |= (unsigned long)r->data[r->pos++] << r->nbits;
        r->nbits += 8;
    }
    code = (int)(r->acc & ((1uL << width) - 1));
    r->acc >>= width;
    r->nbits -= width;
    return code;
}

struct dicttable {
    int prefix[1 << MAXBITS];
    unsigned char last[1 << MAXBITS];
    int next;
};

static struct dicttable dict;

void dict_clear(struct dicttable *d)
{
    int i;
    for (i = 0; i < 256; i++) {
        d->prefix[i] = -1;
        d->last[i] = (unsigned char)i;
    }
    d->next = FIRSTCODE;
}

/* expand one code into buf (reversed), returning its length */
int dict_expand(struct dicttable *d, int code, unsigned char *buf, int cap)
{
    int n = 0;
    while (code >= 0 && n < cap) {
        buf[n++] = d->last[code];
        code = d->prefix[code];
    }
    return n;
}

long decompress_buffer(const unsigned char *in, long inlen, FILE *out)
{
    struct bitreader br;
    unsigned char expand[1 << MAXBITS];
    int code, prev, i, n;
    long written = 0;

    br_init(&br, in, inlen);
    dict_clear(&dict);
    prev = br_get(&br, codewidth(dict.next));
    if (prev < 0)
        return 0;
    n = dict_expand(&dict, prev, expand, sizeof expand);
    for (i = n - 1; i >= 0; i--) {
        fputc(expand[i], out);
        written++;
    }
    for (;;) {
        code = br_get(&br, codewidth(dict.next + 1));
        if (code < 0)
            break;
        if (code == CLEARCODE) {
            dict_clear(&dict);
            prev = br_get(&br, codewidth(dict.next));
            continue;
        }
        if (code < dict.next) {
            n = dict_expand(&dict, code, expand, sizeof expand);
        } else {
            /* the KwKwK case: code == next */
            n = dict_expand(&dict, prev, expand, sizeof expand);
            if (n < (int)sizeof expand) {
                int j;
                for (j = n; j > 0; j--)
                    expand[j] = expand[j - 1];
                expand[0] = expand[n];
                n++;
            }
        }
        for (i = n - 1; i >= 0; i--) {
            fputc(expand[i], out);
            written++;
        }
        if (dict.next <= MAXCODE) {
            dict.prefix[dict.next] = prev;
            dict.last[dict.next] = expand[n - 1];
            dict.next++;
        }
        prev = code;
    }
    return written;
}

int main(void)
{
    long in;
    in = compress_stream(stdin, stdout);
    fprintf(stderr, "read %ld bytes, wrote %ld bytes\n", in, bw.written);
    return 0;
}
