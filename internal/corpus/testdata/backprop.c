/* backprop: a two-layer neural network trainer after the Austin benchmark.
 * Layers are malloc'd matrices reached through double**; the network record
 * is checkpointed by flattening it through a char* byte view and restored
 * by the inverse cast (struct casting group). */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

struct layer {
    int nin, nout;
    double **w;              /* nout rows of nin+1 weights (bias last) */
    double *out;
    double *delta;
};

struct net {
    struct layer hidden;
    struct layer output;
    double rate;
};

static unsigned int seed = 4242;

double frand(void)
{
    seed = seed * 1103515245u + 12345u;
    return (double)((seed >> 16) & 0x7fff) / 32768.0 - 0.5;
}

double *vec_alloc(int n)
{
    double *v = (double *)malloc(n * sizeof(double));
    if (v == 0)
        exit(1);
    return v;
}

double **mat_alloc(int rows, int cols)
{
    double **m;
    int i;
    m = (double **)malloc(rows * sizeof(double *));
    if (m == 0)
        exit(1);
    for (i = 0; i < rows; i++)
        m[i] = vec_alloc(cols);
    return m;
}

void layer_init(struct layer *l, int nin, int nout)
{
    int i, j;
    l->nin = nin;
    l->nout = nout;
    l->w = mat_alloc(nout, nin + 1);
    l->out = vec_alloc(nout);
    l->delta = vec_alloc(nout);
    for (i = 0; i < nout; i++) {
        for (j = 0; j <= nin; j++)
            l->w[i][j] = frand();
    }
}

double squash(double x)
{
    return 1.0 / (1.0 + exp(-x));
}

void layer_forward(struct layer *l, double *in)
{
    int i, j;
    double sum;
    for (i = 0; i < l->nout; i++) {
        sum = l->w[i][l->nin]; /* bias */
        for (j = 0; j < l->nin; j++)
            sum += l->w[i][j] * in[j];
        l->out[i] = squash(sum);
    }
}

void net_forward(struct net *n, double *in)
{
    layer_forward(&n->hidden, in);
    layer_forward(&n->output, n->hidden.out);
}

void net_backward(struct net *n, double *in, double *target)
{
    int i, j;
    struct layer *o = &n->output;
    struct layer *h = &n->hidden;

    for (i = 0; i < o->nout; i++) {
        double y = o->out[i];
        o->delta[i] = y * (1.0 - y) * (target[i] - y);
    }
    for (i = 0; i < h->nout; i++) {
        double sum = 0.0;
        for (j = 0; j < o->nout; j++)
            sum += o->delta[j] * o->w[j][i];
        h->delta[i] = h->out[i] * (1.0 - h->out[i]) * sum;
    }
    for (i = 0; i < o->nout; i++) {
        for (j = 0; j < o->nin; j++)
            o->w[i][j] += n->rate * o->delta[i] * h->out[j];
        o->w[i][o->nin] += n->rate * o->delta[i];
    }
    for (i = 0; i < h->nout; i++) {
        for (j = 0; j < h->nin; j++)
            h->w[i][j] += n->rate * h->delta[i] * in[j];
        h->w[i][h->nin] += n->rate * h->delta[i];
    }
}

/* checkpoint: flatten weights through a byte view into a save buffer,
 * restore with the inverse casts */
struct checkpoint {
    char bytes[4096];
    int used;
};

static struct checkpoint ckpt;

void save_weights(struct net *n)
{
    char *p = ckpt.bytes;
    struct layer *ls[2];
    int k, i;
    ls[0] = &n->hidden;
    ls[1] = &n->output;
    for (k = 0; k < 2; k++) {
        struct layer *l = ls[k];
        for (i = 0; i < l->nout; i++) {
            int bytes = (l->nin + 1) * (int)sizeof(double);
            memcpy(p, (char *)l->w[i], bytes);
            p += bytes;
        }
    }
    ckpt.used = (int)(p - ckpt.bytes);
}

void restore_weights(struct net *n)
{
    char *p = ckpt.bytes;
    struct layer *ls[2];
    int k, i;
    ls[0] = &n->hidden;
    ls[1] = &n->output;
    for (k = 0; k < 2; k++) {
        struct layer *l = ls[k];
        for (i = 0; i < l->nout; i++) {
            int bytes = (l->nin + 1) * (int)sizeof(double);
            double *row = (double *)p;
            memcpy((char *)l->w[i], (char *)row, bytes);
            p += bytes;
        }
    }
}

/* checkpoint integrity: fold the byte image as machine words, reading the
 * char buffer through a long* view */
long ckpt_checksum(void)
{
    long sum = 0;
    long *words = (long *)ckpt.bytes;
    int i, nwords;
    nwords = ckpt.used / (int)sizeof(long);
    for (i = 0; i < nwords; i++)
        sum ^= words[i];
    return sum;
}

/* XOR training set */
static double xin[4][2] = { {0, 0}, {0, 1}, {1, 0}, {1, 1} };
static double xout[4][1] = { {0}, {1}, {1}, {0} };

double total_error(struct net *n)
{
    int s;
    double err = 0.0, d;
    for (s = 0; s < 4; s++) {
        net_forward(n, xin[s]);
        d = n->output.out[0] - xout[s][0];
        err += d * d;
    }
    return err;
}

int main(void)
{
    struct net net;
    int epoch, s;
    double err, best;

    layer_init(&net.hidden, 2, 4);
    layer_init(&net.output, 4, 1);
    net.rate = 0.8;

    best = 1e9;
    for (epoch = 0; epoch < 2000; epoch++) {
        for (s = 0; s < 4; s++) {
            net_forward(&net, xin[s]);
            net_backward(&net, xin[s], xout[s]);
        }
        err = total_error(&net);
        if (err < best) {
            best = err;
            save_weights(&net);
        }
    }
    restore_weights(&net);
    printf("best error %.4f (checkpoint %d bytes, checksum %ld)\n",
           best, ckpt.used, ckpt_checksum());
    for (s = 0; s < 4; s++) {
        net_forward(&net, xin[s]);
        printf("%g %g -> %.3f\n", xin[s][0], xin[s][1], net.output.out[0]);
    }
    return 0;
}
