/* eqntott: boolean equation to truth-table converter after the SPEC
 * benchmark. Product terms are bit-pair vectors stored as short arrays but
 * shuffled through char* block operations and casts between the PTERM
 * record and raw storage (struct casting group). */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define MAXVARS 12
#define ZERO 0
#define ONE 1
#define DASH 2

/* A product term: one bit-pair per input variable plus an output value.
 * Terms are kept in a singly linked pool where free entries are reused
 * through a different view. */
struct pterm {
    short var[MAXVARS];
    short output;
    struct pterm *next;
};

struct freeterm {
    struct freeterm *chain;
};

static int nvars;
static struct pterm *terms;
static struct freeterm *freepool;
static int ntermsalloc;

struct pterm *term_alloc(void)
{
    struct pterm *t;
    if (freepool != 0) {
        t = (struct pterm *)freepool;
        freepool = freepool->chain;
    } else {
        t = (struct pterm *)malloc(sizeof(struct pterm));
        if (t == 0)
            exit(1);
        ntermsalloc++;
    }
    memset((char *)t, 0, sizeof(struct pterm));
    return t;
}

void term_free(struct pterm *t)
{
    struct freeterm *f = (struct freeterm *)t;
    f->chain = freepool;
    freepool = f;
}

struct pterm *term_clone(struct pterm *src)
{
    struct pterm *t = term_alloc();
    /* block copy through char pointers, as the original does */
    memcpy((char *)t->var, (char *)src->var, sizeof(src->var));
    t->output = src->output;
    return t;
}

void term_add(struct pterm *t)
{
    t->next = terms;
    terms = t;
}

/* parse a cube string like "01-0:1" */
struct pterm *term_parse(const char *s)
{
    struct pterm *t = term_alloc();
    int i;
    for (i = 0; i < nvars && s[i] != '\0' && s[i] != ':'; i++) {
        switch (s[i]) {
        case '0':
            t->var[i] = ZERO;
            break;
        case '1':
            t->var[i] = ONE;
            break;
        default:
            t->var[i] = DASH;
            break;
        }
    }
    if (s[i] == ':')
        t->output = (short)(s[i + 1] - '0');
    return t;
}

/* does the term cover the assignment encoded in bits? */
int covers(struct pterm *t, unsigned int bits)
{
    int i;
    for (i = 0; i < nvars; i++) {
        int want = t->var[i];
        int have = (bits >> i) & 1;
        if (want == DASH)
            continue;
        if (want != have)
            return 0;
    }
    return 1;
}

int eval(unsigned int bits)
{
    struct pterm *t;
    for (t = terms; t != 0; t = t->next) {
        if (covers(t, bits))
            return t->output;
    }
    return 0;
}

/* term comparison for canonical ordering: raw memory compare of the bit
 * vectors, viewed as bytes */
int term_cmp(struct pterm *a, struct pterm *b)
{
    return memcmp((char *)a->var, (char *)b->var, sizeof(a->var));
}

/* merge pairs differing in exactly one non-dash position */
int try_merge(void)
{
    struct pterm *a, *b;
    int i, diff, at, merged;
    merged = 0;
    for (a = terms; a != 0; a = a->next) {
        for (b = a->next; b != 0; b = b->next) {
            if (a->output != b->output)
                continue;
            diff = 0;
            at = -1;
            for (i = 0; i < nvars; i++) {
                if (a->var[i] != b->var[i]) {
                    diff++;
                    at = i;
                }
            }
            if (diff == 1 && a->var[at] != DASH && b->var[at] != DASH) {
                struct pterm *m = term_clone(a);
                m->var[at] = DASH;
                term_add(m);
                merged++;
            }
        }
    }
    return merged;
}

void print_table(FILE *out)
{
    unsigned int bits, total;
    int i;
    total = 1u << nvars;
    for (bits = 0; bits < total; bits++) {
        for (i = nvars - 1; i >= 0; i--)
            fputc('0' + (int)((bits >> i) & 1), out);
        fprintf(out, " %d\n", eval(bits));
    }
}

int count_terms(void)
{
    int n = 0;
    struct pterm *t;
    for (t = terms; t != 0; t = t->next)
        n++;
    return n;
}

int main(void)
{
    struct pterm *t;
    nvars = 4;
    term_add(term_parse("00--:1"));
    term_add(term_parse("1-1-:1"));
    term_add(term_parse("01-0:1"));
    term_add(term_parse("1100:1"));
    /* recycle a scratch term through the free list, as the real program
     * does between passes */
    t = term_parse("----:0");
    term_free(t);
    try_merge();
    printf("%d terms (%d allocated)\n", count_terms(), ntermsalloc);
    print_table(stdout);
    /* canonical order check via raw compares */
    for (t = terms; t != 0 && t->next != 0; t = t->next) {
        if (term_cmp(t, t->next) == 0)
            printf("duplicate cube\n");
    }
    return 0;
}
