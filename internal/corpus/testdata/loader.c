/* loader: an object-file loader after the Landi benchmark. A raw byte image
 * is interpreted by casting interior pointers to header, section and symbol
 * record views — the classic binary-format idiom (struct casting group). */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define IMGSIZE 2048
#define MAGIC 0x424A

struct filehdr {
    int magic;
    int nsections;
    int symoff;              /* byte offset of symbol table */
    int nsyms;
};

struct secthdr {
    char name[8];
    int offset;
    int size;
    int flags;
};

struct symrec {
    char name[12];
    int section;
    int value;
};

/* loaded representation */
struct section {
    char name[8];
    char *data;
    int size;
    struct section *next;
};

struct symbol {
    char name[12];
    struct section *home;
    int value;
    struct symbol *next;
};

static unsigned char image[IMGSIZE];
static struct section *sections;
static struct symbol *symbols;

/* --- image construction (the "assembler") --- */

static int imgtop;

int img_write(const void *src, int len)
{
    int at = imgtop;
    memcpy(&image[at], src, len);
    imgtop += len;
    return at;
}

void build_image(void)
{
    struct filehdr fh;
    struct secthdr sh;
    struct symrec sr;
    char text[64];
    char data[32];
    int textoff, dataoff;
    int i;

    imgtop = (int)sizeof(struct filehdr) + 2 * (int)sizeof(struct secthdr);

    for (i = 0; i < (int)sizeof text; i++)
        text[i] = (char)(i * 3);
    for (i = 0; i < (int)sizeof data; i++)
        data[i] = (char)(0x40 + i);

    textoff = img_write(text, sizeof text);
    dataoff = img_write(data, sizeof data);

    fh.magic = MAGIC;
    fh.nsections = 2;
    fh.nsyms = 3;
    fh.symoff = imgtop;

    strcpy(sr.name, "start");
    sr.section = 0;
    sr.value = 0;
    img_write(&sr, sizeof sr);
    strcpy(sr.name, "loop");
    sr.section = 0;
    sr.value = 16;
    img_write(&sr, sizeof sr);
    strcpy(sr.name, "table");
    sr.section = 1;
    sr.value = 8;
    img_write(&sr, sizeof sr);

    memcpy(&image[0], &fh, sizeof fh);

    strcpy(sh.name, ".text");
    sh.offset = textoff;
    sh.size = sizeof text;
    sh.flags = 1;
    memcpy(&image[sizeof fh], &sh, sizeof sh);

    strcpy(sh.name, ".data");
    sh.offset = dataoff;
    sh.size = sizeof data;
    sh.flags = 2;
    memcpy(&image[sizeof fh + sizeof sh], &sh, sizeof sh);
}

/* --- the loader proper: all casts into the image --- */

struct filehdr *file_header(void)
{
    return (struct filehdr *)image;
}

struct secthdr *section_header(int i)
{
    unsigned char *base = image + sizeof(struct filehdr);
    return (struct secthdr *)(base + i * (int)sizeof(struct secthdr));
}

struct symrec *symbol_record(struct filehdr *fh, int i)
{
    unsigned char *base = image + fh->symoff;
    return (struct symrec *)(base + i * (int)sizeof(struct symrec));
}

struct section *load_sections(struct filehdr *fh)
{
    int i;
    struct section *head = 0;
    for (i = fh->nsections - 1; i >= 0; i--) {
        struct secthdr *sh = section_header(i);
        struct section *s = (struct section *)malloc(sizeof(struct section));
        if (s == 0)
            exit(1);
        memcpy(s->name, sh->name, sizeof s->name);
        s->size = sh->size;
        s->data = (char *)&image[sh->offset];
        s->next = head;
        head = s;
    }
    return head;
}

struct section *section_by_index(int idx)
{
    struct section *s = sections;
    while (idx > 0 && s != 0) {
        s = s->next;
        idx--;
    }
    return s;
}

struct symbol *load_symbols(struct filehdr *fh)
{
    int i;
    struct symbol *head = 0;
    for (i = fh->nsyms - 1; i >= 0; i--) {
        struct symrec *sr = symbol_record(fh, i);
        struct symbol *sym = (struct symbol *)malloc(sizeof(struct symbol));
        if (sym == 0)
            exit(1);
        memcpy(sym->name, sr->name, sizeof sym->name);
        sym->home = section_by_index(sr->section);
        sym->value = sr->value;
        sym->next = head;
        head = sym;
    }
    return head;
}

struct symbol *sym_lookup(const char *name)
{
    struct symbol *s;
    for (s = symbols; s != 0; s = s->next) {
        if (strcmp(s->name, name) == 0)
            return s;
    }
    return 0;
}

char *sym_address(struct symbol *s)
{
    if (s == 0 || s->home == 0)
        return 0;
    return s->home->data + s->value;
}

int main(void)
{
    struct filehdr *fh;
    struct section *s;
    struct symbol *sym;
    char *addr;

    build_image();

    fh = file_header();
    if (fh->magic != MAGIC) {
        fprintf(stderr, "loader: bad magic\n");
        return 1;
    }
    sections = load_sections(fh);
    symbols = load_symbols(fh);

    for (s = sections; s != 0; s = s->next)
        printf("section %-8s size %d\n", s->name, s->size);
    for (sym = symbols; sym != 0; sym = sym->next)
        printf("symbol %-12s in %-8s at %d\n", sym->name,
               sym->home != 0 ? sym->home->name : "?", sym->value);

    sym = sym_lookup("table");
    addr = sym_address(sym);
    if (addr != 0)
        printf("table[0] = %d\n", (int)addr[0]);
    return 0;
}
