/* diffh: a line-oriented diff after diffh from the Landi suite. Lines are
 * hashed into a generic table whose entries carry their payload as void*
 * and are recovered by casts; candidate matches form linked chains
 * (struct casting group). */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define MAXLINES 128
#define HASHSIZE 64

/* generic hash table, payloads are void* */
struct hentry {
    unsigned long key;
    void *payload;
    struct hentry *next;
};

static struct hentry *htab[HASHSIZE];

void hash_insert(unsigned long key, void *payload)
{
    struct hentry *e = (struct hentry *)malloc(sizeof(struct hentry));
    int slot = (int)(key % HASHSIZE);
    if (e == 0)
        exit(1);
    e->key = key;
    e->payload = payload;
    e->next = htab[slot];
    htab[slot] = e;
}

void *hash_find(unsigned long key)
{
    struct hentry *e;
    for (e = htab[(int)(key % HASHSIZE)]; e != 0; e = e->next) {
        if (e->key == key)
            return e->payload;
    }
    return 0;
}

/* line records */
struct line {
    int number;              /* in its file */
    unsigned long hash;
    char text[80];
    struct line *samehash;   /* chain of equal-hash lines in file A */
    int matched;             /* matched line number in the other file */
};

struct file {
    struct line lines[MAXLINES];
    int nlines;
};

static struct file fileA, fileB;

unsigned long hash_text(const char *s)
{
    unsigned long h = 5381;
    while (*s != '\0')
        h = h * 33 + (unsigned long)(unsigned char)*s++;
    return h;
}

void add_line(struct file *f, const char *text)
{
    struct line *l;
    if (f->nlines >= MAXLINES)
        return;
    l = &f->lines[f->nlines];
    l->number = f->nlines;
    strncpy(l->text, text, sizeof(l->text) - 1);
    l->text[sizeof(l->text) - 1] = '\0';
    l->hash = hash_text(l->text);
    l->samehash = 0;
    l->matched = -1;
    f->nlines++;
}

/* index file A by hash; chains handle collisions of equal lines */
void index_file(struct file *f)
{
    int i;
    for (i = 0; i < f->nlines; i++) {
        struct line *l = &f->lines[i];
        struct line *prev = (struct line *)hash_find(l->hash);
        if (prev != 0)
            l->samehash = prev;
        hash_insert(l->hash, l);
    }
}

/* match lines of B against the index of A */
void match_file(struct file *a, struct file *b)
{
    int i;
    for (i = 0; i < b->nlines; i++) {
        struct line *lb = &b->lines[i];
        struct line *la = (struct line *)hash_find(lb->hash);
        while (la != 0) {
            if (la->matched < 0 && strcmp(la->text, lb->text) == 0) {
                la->matched = lb->number;
                lb->matched = la->number;
                break;
            }
            la = la->samehash;
        }
    }
    (void)a;
}

/* longest increasing run of matches forms the common part */
void report(struct file *a, struct file *b)
{
    int i, lastb;
    lastb = -1;
    for (i = 0; i < a->nlines; i++) {
        struct line *la = &a->lines[i];
        if (la->matched > lastb) {
            lastb = la->matched;
        } else if (la->matched < 0) {
            printf("< %s\n", la->text);
        } else {
            la->matched = -1;  /* out of order: treat as deleted */
            printf("< %s\n", la->text);
        }
    }
    for (i = 0; i < b->nlines; i++) {
        struct line *lb = &b->lines[i];
        if (lb->matched < 0 || a->lines[lb->matched].matched != lb->number)
            printf("> %s\n", lb->text);
    }
}

static const char *docA[] = {
    "the quick brown fox",
    "jumps over",
    "the lazy dog",
    "and runs away",
    "into the woods",
};

static const char *docB[] = {
    "the quick brown fox",
    "leaps over",
    "the lazy dog",
    "into the woods",
    "never to return",
};

int main(void)
{
    int i;
    for (i = 0; i < (int)(sizeof(docA) / sizeof(docA[0])); i++)
        add_line(&fileA, docA[i]);
    for (i = 0; i < (int)(sizeof(docB) / sizeof(docB[0])); i++)
        add_line(&fileB, docB[i]);
    index_file(&fileA);
    match_file(&fileA, &fileB);
    report(&fileA, &fileB);
    return 0;
}
