/* li: a miniature lisp interpreter after 130.li. Tagged cells carry their
 * payload in differently-typed views that share a common header; the free
 * list reuses cell memory through casts (struct casting group). */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define T_NIL 0
#define T_CONS 1
#define T_SYM 2
#define T_INT 3

/* Every cell view starts with the tag: a common initial sequence. */
struct cell {
    int tag;
    struct cell *link;       /* generic second word */
};

struct cons {
    int tag;
    struct cell *car;
    struct cell *cdr;
};

struct symbol {
    int tag;
    struct symbol *next;     /* symbol table chain */
    char name[16];
    struct cell *value;
};

struct intcell {
    int tag;
    long value;
};

/* Free cells are threaded through yet another view of the same memory. */
struct freecell {
    int tag;
    struct freecell *nextfree;
};

#define POOLSIZE 256

union anycell {
    struct cell c;
    struct cons cons;
    struct symbol sym;
    struct intcell num;
    struct freecell free;
};

static union anycell pool[POOLSIZE];
static struct freecell *freelist;
static struct symbol *symtab;
static struct cell nilcell;

void pool_init(void)
{
    int i;
    freelist = 0;
    for (i = 0; i < POOLSIZE; i++) {
        struct freecell *f = (struct freecell *)&pool[i];
        f->tag = T_NIL;
        f->nextfree = freelist;
        freelist = f;
    }
    nilcell.tag = T_NIL;
    nilcell.link = 0;
}

struct cell *cell_alloc(int tag)
{
    struct freecell *f;
    struct cell *c;
    if (freelist == 0) {
        fprintf(stderr, "li: out of cells\n");
        exit(1);
    }
    f = freelist;
    freelist = f->nextfree;
    c = (struct cell *)f;
    c->tag = tag;
    c->link = 0;
    return c;
}

void cell_free(struct cell *c)
{
    struct freecell *f = (struct freecell *)c;
    f->tag = T_NIL;
    f->nextfree = freelist;
    freelist = f;
}

struct cell *mk_cons(struct cell *car, struct cell *cdr)
{
    struct cons *cc = (struct cons *)cell_alloc(T_CONS);
    cc->car = car;
    cc->cdr = cdr;
    return (struct cell *)cc;
}

struct cell *mk_int(long v)
{
    struct intcell *ic = (struct intcell *)cell_alloc(T_INT);
    ic->value = v;
    return (struct cell *)ic;
}

struct symbol *intern(const char *name)
{
    struct symbol *s;
    for (s = symtab; s != 0; s = s->next) {
        if (strcmp(s->name, name) == 0)
            return s;
    }
    s = (struct symbol *)cell_alloc(T_SYM);
    strncpy(s->name, name, sizeof(s->name) - 1);
    s->name[sizeof(s->name) - 1] = '\0';
    s->value = &nilcell;
    s->next = symtab;
    symtab = s;
    return s;
}

struct cell *car(struct cell *c)
{
    if (c->tag != T_CONS)
        return &nilcell;
    return ((struct cons *)c)->car;
}

struct cell *cdr(struct cell *c)
{
    if (c->tag != T_CONS)
        return &nilcell;
    return ((struct cons *)c)->cdr;
}

long int_value(struct cell *c)
{
    if (c->tag != T_INT)
        return 0;
    return ((struct intcell *)c)->value;
}

struct cell *eval(struct cell *e);

/* (+ a b ...) over the argument list */
struct cell *prim_add(struct cell *args)
{
    long sum = 0;
    struct cell *p;
    for (p = args; p->tag == T_CONS; p = cdr(p))
        sum += int_value(eval(car(p)));
    return mk_int(sum);
}

struct cell *prim_cons(struct cell *args)
{
    return mk_cons(eval(car(args)), eval(car(cdr(args))));
}

struct cell *prim_car(struct cell *args)
{
    return car(eval(car(args)));
}

struct cell *eval(struct cell *e)
{
    struct symbol *s;
    if (e->tag == T_INT || e->tag == T_NIL)
        return e;
    if (e->tag == T_SYM)
        return ((struct symbol *)e)->value;
    /* a list: dispatch on the head symbol */
    if (car(e)->tag == T_SYM) {
        s = (struct symbol *)car(e);
        if (strcmp(s->name, "+") == 0)
            return prim_add(cdr(e));
        if (strcmp(s->name, "cons") == 0)
            return prim_cons(cdr(e));
        if (strcmp(s->name, "car") == 0)
            return prim_car(cdr(e));
        if (strcmp(s->name, "quote") == 0)
            return car(cdr(e));
    }
    return &nilcell;
}

void print_cell(struct cell *c)
{
    switch (c->tag) {
    case T_NIL:
        printf("nil");
        break;
    case T_INT:
        printf("%ld", int_value(c));
        break;
    case T_SYM:
        printf("%s", ((struct symbol *)c)->name);
        break;
    case T_CONS:
        printf("(");
        print_cell(car(c));
        printf(" . ");
        print_cell(cdr(c));
        printf(")");
        break;
    }
}

/* set a symbol's global value */
void set_value(const char *name, struct cell *v)
{
    struct symbol *s = intern(name);
    s->value = v;
}

int main(void)
{
    struct cell *expr, *result;
    pool_init();
    symtab = 0;

    set_value("x", mk_int(40));

    /* (+ x 2) */
    expr = mk_cons((struct cell *)intern("+"),
                   mk_cons((struct cell *)intern("x"),
                           mk_cons(mk_int(2), &nilcell)));
    result = eval(expr);
    print_cell(result);
    printf("\n");

    /* (car (cons 1 2)) */
    expr = mk_cons((struct cell *)intern("car"),
                   mk_cons(mk_cons((struct cell *)intern("cons"),
                                   mk_cons(mk_int(1),
                                           mk_cons(mk_int(2), &nilcell))),
                           &nilcell));
    result = eval(expr);
    print_cell(result);
    printf("\n");

    cell_free(expr);
    return 0;
}
