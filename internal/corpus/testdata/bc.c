/* bc: an arbitrary-precision integer calculator after the Unix utility.
 * Numbers are variable-length records allocated as raw bytes and cast to
 * the bignum view; the digit area is addressed past the header, so header
 * and payload views alias (struct casting group — the paper's worst case
 * for Collapse Always). */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <ctype.h>

struct bignum {
    int len;                 /* number of digits used */
    int cap;
    int neg;
    char *digits;            /* least significant first, points into self */
};

/* Raw allocation: header and digits in one block, linked free list of
 * recycled blocks threaded through the same bytes. */
struct freeblk {
    int cap;
    struct freeblk *next;
};

static struct freeblk *freelist;

struct bignum *num_alloc(int cap)
{
    char *raw;
    struct bignum *n;
    struct freeblk **fp;
    /* first-fit from the free list */
    for (fp = &freelist; *fp != 0; fp = &(*fp)->next) {
        if ((*fp)->cap >= cap) {
            struct freeblk *b = *fp;
            *fp = b->next;
            n = (struct bignum *)b;
            n->len = 0;
            n->neg = 0;
            n->digits = (char *)n + sizeof(struct bignum);
            return n;
        }
    }
    raw = (char *)malloc(sizeof(struct bignum) + cap);
    if (raw == 0)
        exit(1);
    n = (struct bignum *)raw;
    n->len = 0;
    n->cap = cap;
    n->neg = 0;
    n->digits = raw + sizeof(struct bignum);
    return n;
}

void num_free(struct bignum *n)
{
    struct freeblk *b = (struct freeblk *)n;
    int cap = n->cap;
    b->cap = cap;
    b->next = freelist;
    freelist = b;
}

struct bignum *num_from_string(const char *s)
{
    int len, i;
    struct bignum *n;
    int neg = 0;
    if (*s == '-') {
        neg = 1;
        s++;
    }
    len = (int)strlen(s);
    n = num_alloc(len + 1);
    n->neg = neg;
    n->len = len;
    for (i = 0; i < len; i++)
        n->digits[i] = (char)(s[len - 1 - i] - '0');
    while (n->len > 1 && n->digits[n->len - 1] == 0)
        n->len--;
    return n;
}

void num_print(struct bignum *n, FILE *out)
{
    int i;
    if (n->neg && !(n->len == 1 && n->digits[0] == 0))
        fputc('-', out);
    for (i = n->len - 1; i >= 0; i--)
        fputc('0' + n->digits[i], out);
}

int num_cmp_abs(struct bignum *a, struct bignum *b)
{
    int i;
    if (a->len != b->len)
        return a->len - b->len;
    for (i = a->len - 1; i >= 0; i--) {
        if (a->digits[i] != b->digits[i])
            return a->digits[i] - b->digits[i];
    }
    return 0;
}

struct bignum *num_add_abs(struct bignum *a, struct bignum *b)
{
    int i, carry, da, db, max;
    struct bignum *r;
    max = a->len > b->len ? a->len : b->len;
    r = num_alloc(max + 2);
    carry = 0;
    for (i = 0; i < max || carry; i++) {
        da = i < a->len ? a->digits[i] : 0;
        db = i < b->len ? b->digits[i] : 0;
        r->digits[i] = (char)((da + db + carry) % 10);
        carry = (da + db + carry) / 10;
    }
    r->len = i > 0 ? i : 1;
    return r;
}

struct bignum *num_sub_abs(struct bignum *a, struct bignum *b)
{
    int i, borrow, da, db;
    struct bignum *r;
    r = num_alloc(a->len + 1);
    borrow = 0;
    for (i = 0; i < a->len; i++) {
        da = a->digits[i] - borrow;
        db = i < b->len ? b->digits[i] : 0;
        if (da < db) {
            da += 10;
            borrow = 1;
        } else
            borrow = 0;
        r->digits[i] = (char)(da - db);
    }
    r->len = a->len;
    while (r->len > 1 && r->digits[r->len - 1] == 0)
        r->len--;
    return r;
}

struct bignum *num_add(struct bignum *a, struct bignum *b)
{
    struct bignum *r;
    if (a->neg == b->neg) {
        r = num_add_abs(a, b);
        r->neg = a->neg;
        return r;
    }
    if (num_cmp_abs(a, b) >= 0) {
        r = num_sub_abs(a, b);
        r->neg = a->neg;
    } else {
        r = num_sub_abs(b, a);
        r->neg = b->neg;
    }
    return r;
}

struct bignum *num_mul(struct bignum *a, struct bignum *b)
{
    int i, j, carry, t;
    struct bignum *r;
    r = num_alloc(a->len + b->len + 1);
    for (i = 0; i < a->len + b->len + 1; i++)
        r->digits[i] = 0;
    for (i = 0; i < a->len; i++) {
        carry = 0;
        for (j = 0; j < b->len; j++) {
            t = r->digits[i + j] + a->digits[i] * b->digits[j] + carry;
            r->digits[i + j] = (char)(t % 10);
            carry = t / 10;
        }
        r->digits[i + b->len] = (char)(r->digits[i + b->len] + carry);
    }
    r->len = a->len + b->len;
    while (r->len > 1 && r->digits[r->len - 1] == 0)
        r->len--;
    r->neg = a->neg != b->neg;
    return r;
}

/* long division: repeated subtraction of shifted divisors, as the real
 * bc does digit by digit */
struct bignum *num_divmod(struct bignum *a, struct bignum *b, struct bignum **rem)
{
    struct bignum *q, *r, *shifted, *t;
    int shift, digit, i;

    q = num_alloc(a->len + 1);
    for (i = 0; i < a->len + 1; i++)
        q->digits[i] = 0;
    q->len = a->len > 0 ? a->len : 1;

    r = num_alloc(a->len + 2);
    r->len = 1;
    r->digits[0] = 0;

    if (b->len == 1 && b->digits[0] == 0) {
        if (rem != 0)
            *rem = r;
        return q; /* division by zero yields zero, like an error flag */
    }

    for (shift = a->len - 1; shift >= 0; shift--) {
        /* r = r * 10 + a->digits[shift] */
        for (i = r->len; i > 0; i--)
            r->digits[i] = r->digits[i - 1];
        r->digits[0] = a->digits[shift];
        r->len++;
        while (r->len > 1 && r->digits[r->len - 1] == 0)
            r->len--;

        digit = 0;
        for (;;) {
            if (num_cmp_abs(r, b) < 0)
                break;
            t = num_sub_abs(r, b);
            num_free(r);
            r = t;
            digit++;
        }
        q->digits[shift] = (char)digit;
    }
    while (q->len > 1 && q->digits[q->len - 1] == 0)
        q->len--;
    q->neg = a->neg != b->neg;
    if (rem != 0)
        *rem = r;
    else
        num_free(r);
    shifted = 0;
    (void)shifted;
    return q;
}

/* single-letter registers, as in bc */
static struct bignum *registers[26];

void reg_store(int name, struct bignum *v)
{
    int i = name - 'a';
    if (i < 0 || i >= 26)
        return;
    if (registers[i] != 0)
        num_free(registers[i]);
    registers[i] = v;
}

struct bignum *reg_load(int name)
{
    int i = name - 'a';
    if (i < 0 || i >= 26 || registers[i] == 0)
        return num_from_string("0");
    /* return a copy so the register survives num_free by the caller */
    {
        struct bignum *c = num_alloc(registers[i]->len + 1);
        int k;
        c->len = registers[i]->len;
        c->neg = registers[i]->neg;
        for (k = 0; k < c->len; k++)
            c->digits[k] = registers[i]->digits[k];
        return c;
    }
}

/* --- expression evaluator over a value stack --- */

#define MAXSTK 32

struct evalstate {
    struct bignum *stk[MAXSTK];
    int sp;
    const char *src;
    int pos;
};

static struct evalstate ev;

void push_num(struct evalstate *e, struct bignum *n)
{
    if (e->sp < MAXSTK)
        e->stk[e->sp++] = n;
}

struct bignum *pop_num(struct evalstate *e)
{
    if (e->sp == 0)
        return num_from_string("0");
    return e->stk[--e->sp];
}

int peekc(struct evalstate *e)
{
    while (e->src[e->pos] == ' ')
        e->pos++;
    return e->src[e->pos];
}

void expr(struct evalstate *e);

void primary(struct evalstate *e)
{
    char buf[64];
    int i = 0;
    if (peekc(e) == '(') {
        e->pos++;
        expr(e);
        if (peekc(e) == ')')
            e->pos++;
        return;
    }
    if (peekc(e) >= 'a' && peekc(e) <= 'z') {
        int name = e->src[e->pos++];
        push_num(e, reg_load(name));
        return;
    }
    while (isdigit(e->src[e->pos]) && i < 63)
        buf[i++] = e->src[e->pos++];
    buf[i] = '\0';
    push_num(e, num_from_string(i > 0 ? buf : "0"));
}

void term(struct evalstate *e)
{
    primary(e);
    for (;;) {
        int c = peekc(e);
        struct bignum *a, *b, *r;
        if (c != '*' && c != '/' && c != '%')
            break;
        e->pos++;
        primary(e);
        b = pop_num(e);
        a = pop_num(e);
        if (c == '*')
            r = num_mul(a, b);
        else if (c == '/')
            r = num_divmod(a, b, 0);
        else {
            struct bignum *rem = 0;
            struct bignum *q = num_divmod(a, b, &rem);
            num_free(q);
            r = rem;
        }
        num_free(a);
        num_free(b);
        push_num(e, r);
    }
}

void expr(struct evalstate *e)
{
    term(e);
    for (;;) {
        int c = peekc(e);
        struct bignum *a, *b, *r;
        if (c != '+' && c != '-')
            break;
        e->pos++;
        term(e);
        b = pop_num(e);
        a = pop_num(e);
        if (c == '-')
            b->neg = !b->neg;
        r = num_add(a, b);
        num_free(a);
        num_free(b);
        push_num(e, r);
    }
}

void calc(const char *line)
{
    struct bignum *r;
    ev.src = line;
    ev.pos = 0;
    ev.sp = 0;
    /* "x = expr" stores into a register */
    if (line[0] >= 'a' && line[0] <= 'z' && line[1] == ' ' && line[2] == '=') {
        ev.pos = 3;
        expr(&ev);
        r = pop_num(&ev);
        num_print(r, stdout);
        printf("\n");
        reg_store(line[0], r);
        return;
    }
    expr(&ev);
    r = pop_num(&ev);
    num_print(r, stdout);
    printf("\n");
    num_free(r);
}

int main(void)
{
    calc("12345678901234567890 + 98765432109876543210");
    calc("99999 * 99999");
    calc("(123 + 456) * 789");
    calc("1000000000000 - 1");
    calc("x = 1000 / 7");
    calc("y = 1000 % 7");
    calc("x * 7 + y");
    calc("z = x + y");
    calc("z / (1 + 1)");
    return 0;
}
