/* ratfor: a miniature rational-Fortran translator in the spirit of the
 * Software Tools version: tokenizer, keyword table, nested control
 * translation with an explicit stack, string output buffers. No struct
 * casting. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <ctype.h>

#define MAXTOK 128
#define MAXSTACK 64

#define T_EOF 0
#define T_WORD 1
#define T_NUM 2
#define T_PUNCT 3
#define T_NEWLINE 4

struct token {
    int kind;
    char text[MAXTOK];
};

struct keyword {
    const char *name;
    int code;
};

#define K_IF 1
#define K_ELSE 2
#define K_WHILE 3
#define K_REPEAT 4
#define K_UNTIL 5

static struct keyword keywords[] = {
    { "if", K_IF },
    { "else", K_ELSE },
    { "while", K_WHILE },
    { "repeat", K_REPEAT },
    { "until", K_UNTIL },
};

struct frame {
    int kind;      /* keyword code */
    int label;
};

struct translator {
    FILE *in;
    FILE *out;
    struct frame stack[MAXSTACK];
    int sp;
    int nextlabel;
    struct token tok;
    int pushedback;
};

static struct translator tr;

int kw_lookup(const char *name)
{
    int i;
    for (i = 0; i < (int)(sizeof(keywords) / sizeof(keywords[0])); i++) {
        if (strcmp(keywords[i].name, name) == 0)
            return keywords[i].code;
    }
    return 0;
}

void get_token(struct translator *t)
{
    int c, i;
    struct token *tk;
    if (t->pushedback) {
        t->pushedback = 0;
        return;
    }
    tk = &t->tok;
    c = fgetc(t->in);
    while (c == ' ' || c == '\t')
        c = fgetc(t->in);
    if (c == EOF) {
        tk->kind = T_EOF;
        tk->text[0] = '\0';
        return;
    }
    if (c == '\n') {
        tk->kind = T_NEWLINE;
        strcpy(tk->text, "\n");
        return;
    }
    if (isalpha(c)) {
        i = 0;
        while (isalnum(c) && i < MAXTOK - 1) {
            tk->text[i++] = (char)c;
            c = fgetc(t->in);
        }
        tk->text[i] = '\0';
        if (c != EOF)
            ungetc(c, t->in);
        tk->kind = T_WORD;
        return;
    }
    if (isdigit(c)) {
        i = 0;
        while (isdigit(c) && i < MAXTOK - 1) {
            tk->text[i++] = (char)c;
            c = fgetc(t->in);
        }
        tk->text[i] = '\0';
        if (c != EOF)
            ungetc(c, t->in);
        tk->kind = T_NUM;
        return;
    }
    tk->kind = T_PUNCT;
    tk->text[0] = (char)c;
    tk->text[1] = '\0';
}

void unget_token(struct translator *t)
{
    t->pushedback = 1;
}

int new_label(struct translator *t)
{
    t->nextlabel += 10;
    return t->nextlabel;
}

void push_frame(struct translator *t, int kind, int label)
{
    if (t->sp >= MAXSTACK) {
        fprintf(stderr, "ratfor: nesting too deep\n");
        exit(1);
    }
    t->stack[t->sp].kind = kind;
    t->stack[t->sp].label = label;
    t->sp++;
}

struct frame *top_frame(struct translator *t)
{
    if (t->sp == 0)
        return 0;
    return &t->stack[t->sp - 1];
}

void pop_frame(struct translator *t)
{
    if (t->sp > 0)
        t->sp--;
}

void copy_condition(struct translator *t)
{
    int depth;
    get_token(t);
    if (t->tok.kind != T_PUNCT || t->tok.text[0] != '(') {
        fprintf(stderr, "ratfor: expected (\n");
        return;
    }
    fputs("(", t->out);
    depth = 1;
    for (;;) {
        get_token(t);
        if (t->tok.kind == T_EOF)
            return;
        if (t->tok.kind == T_PUNCT && t->tok.text[0] == '(')
            depth++;
        if (t->tok.kind == T_PUNCT && t->tok.text[0] == ')') {
            depth--;
            if (depth == 0)
                break;
        }
        fputs(t->tok.text, t->out);
    }
    fputs(")", t->out);
}

void stmt_if(struct translator *t)
{
    int lab;
    lab = new_label(t);
    fputs("      if (.not.", t->out);
    copy_condition(t);
    fprintf(t->out, ") goto %d\n", lab);
    push_frame(t, K_IF, lab);
}

void stmt_else(struct translator *t)
{
    struct frame *f;
    int lab;
    f = top_frame(t);
    if (f == 0 || f->kind != K_IF) {
        fprintf(stderr, "ratfor: else without if\n");
        return;
    }
    lab = new_label(t);
    fprintf(t->out, "      goto %d\n", lab);
    fprintf(t->out, "%d    continue\n", f->label);
    f->label = lab;
}

void stmt_while(struct translator *t)
{
    int top, out;
    top = new_label(t);
    out = new_label(t);
    fprintf(t->out, "%d    continue\n", top);
    fputs("      if (.not.", t->out);
    copy_condition(t);
    fprintf(t->out, ") goto %d\n", out);
    push_frame(t, K_WHILE, top);
    push_frame(t, K_WHILE, out);
}

void close_block(struct translator *t)
{
    struct frame *f;
    f = top_frame(t);
    if (f == 0)
        return;
    if (f->kind == K_IF) {
        fprintf(t->out, "%d    continue\n", f->label);
        pop_frame(t);
        return;
    }
    if (f->kind == K_WHILE) {
        int out = f->label;
        pop_frame(t);
        f = top_frame(t);
        fprintf(t->out, "      goto %d\n", f->label);
        fprintf(t->out, "%d    continue\n", out);
        pop_frame(t);
        return;
    }
    pop_frame(t);
}

void translate(struct translator *t)
{
    int code;
    for (;;) {
        get_token(t);
        if (t->tok.kind == T_EOF)
            break;
        if (t->tok.kind == T_NEWLINE)
            continue;
        if (t->tok.kind == T_WORD) {
            code = kw_lookup(t->tok.text);
            switch (code) {
            case K_IF:
                stmt_if(t);
                continue;
            case K_ELSE:
                stmt_else(t);
                continue;
            case K_WHILE:
                stmt_while(t);
                continue;
            default:
                break;
            }
        }
        if (t->tok.kind == T_PUNCT && t->tok.text[0] == '}') {
            close_block(t);
            continue;
        }
        if (t->tok.kind == T_PUNCT && t->tok.text[0] == '{')
            continue;
        /* ordinary statement text: copy the rest of the line */
        fputs("      ", t->out);
        fputs(t->tok.text, t->out);
        for (;;) {
            get_token(t);
            if (t->tok.kind == T_NEWLINE || t->tok.kind == T_EOF)
                break;
            fputs(" ", t->out);
            fputs(t->tok.text, t->out);
        }
        fputs("\n", t->out);
    }
    while (t->sp > 0)
        close_block(t);
}

int main(void)
{
    tr.in = stdin;
    tr.out = stdout;
    tr.sp = 0;
    tr.nextlabel = 100;
    tr.pushedback = 0;
    translate(&tr);
    return 0;
}
