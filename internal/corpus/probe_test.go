package corpus

// Per-(program, strategy) smoke probe with verbose timing; useful for
// localizing performance problems: run with
//
//	go test -run TestProbeEach -v ./internal/corpus/

import (
	"testing"

	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/metrics"
)

func TestProbeEach(t *testing.T) {
	if testing.Short() {
		t.Skip("probe is for manual use")
	}
	for _, e := range Programs {
		src := mustSource(e.Name)
		res, err := frontend.Load(src, frontend.Options{})
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		for _, sn := range metrics.StrategyNames {
			t.Run(e.Name+"/"+sn, func(t *testing.T) {
				strat := metrics.NewStrategy(sn, res.Layout)
				r := core.Analyze(res.IR, strat)
				t.Logf("%d facts in %v", r.TotalFacts(), r.Duration)
			})
		}
	}
}
