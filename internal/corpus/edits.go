package corpus

import (
	"fmt"
	"regexp"
	"strings"

	"repro/internal/frontend"
)

// The edit generator produces seeded, deterministic single-function
// mutations of a C source: the workload shape the incremental re-analysis
// subsystem (internal/incr) serves. Each edit adds, removes or retypes one
// pointer-flavored assignment statement inside a function body; every
// candidate is validated through the real front end, so only compiling
// mutations are returned. The same (source, seed) pair always yields the
// same edit sequence.

// Edit is one generated mutation.
type Edit struct {
	Kind string // "add", "remove" or "retype"
	Line int    // 1-based line of the anchor statement in the original text
	Text string // complete mutated source
}

func (e Edit) String() string { return fmt.Sprintf("%s@%d", e.Kind, e.Line) }

// anchorRe matches a simple whole-line assignment statement — the shape the
// mutations rewrite. Group 1 is the left-hand side, group 2 the right-hand
// side expression.
var anchorRe = regexp.MustCompile(`^\s*(\*?[A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*=\s*([^;=]+);\s*$`)

// funcOpenRe loosely matches the first line of a function definition at
// file scope. Precision does not matter: it only groups anchors into
// same-function pools, and every emitted edit is validated by the front
// end anyway.
var funcOpenRe = regexp.MustCompile(`^[A-Za-z_][\w\s\*,]*\([^;{]*\)?\s*\{?\s*$`)

// anchor is one mutation site.
type anchor struct {
	line int // index into the lines slice
	lhs  string
	rhs  string
	fn   int // function pool the anchor belongs to
}

// findAnchors scans the source for assignment statements inside function
// bodies, tracking brace depth so file-scope initializers are excluded.
func findAnchors(lines []string) []anchor {
	var out []anchor
	depth, fn := 0, 0
	for i, line := range lines {
		if depth == 0 && funcOpenRe.MatchString(line) {
			fn++
		}
		if depth > 0 {
			if m := anchorRe.FindStringSubmatch(line); m != nil {
				out = append(out, anchor{line: i, lhs: m[1], rhs: strings.TrimSpace(m[2]), fn: fn})
			}
		}
		depth += strings.Count(line, "{") - strings.Count(line, "}")
	}
	return out
}

// retypeCasts are tried round-robin by the retype mutation; void* first,
// since C converts it implicitly to any object pointer.
var retypeCasts = []string{"(void *)", "(char *)", "(int *)"}

// Edits generates up to n distinct validated mutations of src (the text of
// one translation unit), deterministically from seed. Fewer than n edits
// come back when the source offers too few viable anchors.
func Edits(src string, seed uint32, n int) []Edit {
	lines := strings.Split(src, "\n")
	anchors := findAnchors(lines)
	if len(anchors) == 0 || n <= 0 {
		return nil
	}
	r := &genRand{state: seed*2654435761 + 1}
	var out []Edit
	seen := map[string]bool{src: true}
	for attempts := 0; len(out) < n && attempts < 40*n; attempts++ {
		a := anchors[r.next(len(anchors))]
		var kind, text string
		switch r.next(3) {
		case 0: // remove the anchor statement
			kind = "remove"
			text = spliceLines(lines, a.line, 1, nil)
		case 1: // add a recombined assignment after the anchor
			kind = "add"
			b := anchors[r.next(len(anchors))]
			if b.fn != a.fn || b.lhs == a.lhs {
				continue
			}
			indent := lines[a.line][:len(lines[a.line])-len(strings.TrimLeft(lines[a.line], " \t"))]
			text = spliceLines(lines, a.line+1, 0, []string{indent + a.lhs + " = " + b.rhs + ";"})
		default: // retype the right-hand side with an explicit cast
			kind = "retype"
			if strings.HasPrefix(a.rhs, "(") {
				continue
			}
			cast := retypeCasts[r.next(len(retypeCasts))]
			indent := lines[a.line][:len(lines[a.line])-len(strings.TrimLeft(lines[a.line], " \t"))]
			text = spliceLines(lines, a.line, 1, []string{indent + a.lhs + " = " + cast + " " + a.rhs + ";"})
		}
		if seen[text] {
			continue
		}
		seen[text] = true
		if _, err := frontend.Load([]frontend.Source{{Name: "edit.c", Text: text}}, frontend.Options{}); err != nil {
			continue
		}
		out = append(out, Edit{Kind: kind, Line: a.line + 1, Text: text})
	}
	return out
}

// spliceLines rebuilds the source with `del` lines at index i replaced by
// ins.
func spliceLines(lines []string, i, del int, ins []string) string {
	out := make([]string, 0, len(lines)-del+len(ins))
	out = append(out, lines[:i]...)
	out = append(out, ins...)
	out = append(out, lines[i+del:]...)
	return strings.Join(out, "\n")
}
