package core

import "math/bits"

// bitsBlock is one 64-id neighborhood of a Bits set: the block index
// (id >> 6) plus the occupancy word. Keeping index and word in one struct
// means a set is a single allocation however it grows.
type bitsBlock struct {
	idx  uint32
	word uint64
}

// Bits is a sparse bitset over CellIDs: a sorted list of 64-bit word blocks
// (roaring-lite), so points-to sets cost one word per 64-id neighborhood
// actually populated instead of one map entry per fact. The zero value is an
// empty, ready-to-use set.
//
// The solver's hot loop runs entirely on this type: membership and insertion
// are a binary search plus a bit test, and whole-batch propagation through a
// copy edge is a word-wise merge (UnionInPlace / UnionDiff) rather than a
// per-fact map probe. UnionDiff additionally reports exactly the newly-set
// ids, which is what the difference-propagation worklist needs: every new
// fact is pushed once, and already-known facts cost one AND-NOT per word.
// Merges grow the receiver in place (one backward pass after an append), so
// at steady state propagation allocates nothing.
type Bits struct {
	blocks []bitsBlock
	n      int // population count
}

// search returns the insertion position of block blk in b.blocks.
func (b *Bits) search(blk uint32) int {
	// Fast path: append-mostly workloads hit the tail.
	if n := len(b.blocks); n == 0 || b.blocks[n-1].idx < blk {
		return n
	}
	lo, hi := 0, len(b.blocks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.blocks[mid].idx < blk {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Add inserts id, reporting whether it was new.
func (b *Bits) Add(id CellID) bool {
	blk, bit := uint32(id>>6), uint64(1)<<(id&63)
	i := b.search(blk)
	if i < len(b.blocks) && b.blocks[i].idx == blk {
		if b.blocks[i].word&bit != 0 {
			return false
		}
		b.blocks[i].word |= bit
		b.n++
		return true
	}
	if cap(b.blocks) == 0 {
		b.blocks = make([]bitsBlock, 0, 4)
	}
	b.blocks = append(b.blocks, bitsBlock{})
	copy(b.blocks[i+1:], b.blocks[i:])
	b.blocks[i] = bitsBlock{idx: blk, word: bit}
	b.n++
	return true
}

// Has reports membership.
func (b *Bits) Has(id CellID) bool {
	blk := uint32(id >> 6)
	i := b.search(blk)
	return i < len(b.blocks) && b.blocks[i].idx == blk && b.blocks[i].word&(1<<(id&63)) != 0
}

// Remove clears id, reporting whether it was present. Emptied blocks are
// kept (they re-fill in practice); Len and Iterate are unaffected.
func (b *Bits) Remove(id CellID) bool {
	blk, bit := uint32(id>>6), uint64(1)<<(id&63)
	i := b.search(blk)
	if i >= len(b.blocks) || b.blocks[i].idx != blk || b.blocks[i].word&bit == 0 {
		return false
	}
	b.blocks[i].word &^= bit
	b.n--
	return true
}

// Len returns the population count.
func (b *Bits) Len() int { return b.n }

// Clear empties the set, keeping the allocated blocks for reuse.
func (b *Bits) Clear() {
	b.blocks = b.blocks[:0]
	b.n = 0
}

// Iterate calls fn for every set id in ascending order. fn must not mutate b.
func (b *Bits) Iterate(fn func(CellID)) {
	for i := range b.blocks {
		w := b.blocks[i].word
		base := CellID(b.blocks[i].idx) << 6
		for w != 0 {
			fn(base + CellID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// AppendTo appends every set id to buf in ascending order and returns it —
// the snapshot primitive for iterating while the set may grow.
func (b *Bits) AppendTo(buf []CellID) []CellID {
	for i := range b.blocks {
		w := b.blocks[i].word
		base := CellID(b.blocks[i].idx) << 6
		for w != 0 {
			buf = append(buf, base+CellID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return buf
}

// subsumes reports whether every id of o is already in b — one AND-NOT per
// shared block, no writes. Callers gate it on o.n <= b.n (a larger source
// cannot be a subset), which is what makes it a profitable pre-check: the
// solver's redundant merges around cycles hit this path constantly.
func (b *Bits) subsumes(o *Bits) bool {
	bi := 0
	for oi := range o.blocks {
		blk := o.blocks[oi].idx
		for bi < len(b.blocks) && b.blocks[bi].idx < blk {
			bi++
		}
		if bi == len(b.blocks) || b.blocks[bi].idx != blk ||
			o.blocks[oi].word&^b.blocks[bi].word != 0 {
			return false
		}
	}
	return true
}

// UnionInPlace adds every id of o to b, returning how many were new.
// o is not modified; b and o may not alias unless identical (a self-union
// is a no-op).
func (b *Bits) UnionInPlace(o *Bits) int {
	if o == b || o.n == 0 {
		return 0
	}
	// Popcount-gated subset early exit: when o cannot outnumber b, one
	// read-only scan settles whether there is anything to do — the common
	// case for the redundant propagation that circles collapsed cycles.
	if o.n <= b.n && b.subsumes(o) {
		return 0
	}
	// Count o's blocks missing from b to decide whether the block list
	// must grow.
	missing := 0
	bi := 0
	for oi := range o.blocks {
		blk := o.blocks[oi].idx
		for bi < len(b.blocks) && b.blocks[bi].idx < blk {
			bi++
		}
		if bi == len(b.blocks) || b.blocks[bi].idx != blk {
			missing++
		}
	}
	if missing == 0 {
		// Every block exists: OR word-wise in place.
		added := 0
		bi = 0
		for oi := range o.blocks {
			for b.blocks[bi].idx != o.blocks[oi].idx {
				bi++
			}
			before := bits.OnesCount64(b.blocks[bi].word)
			b.blocks[bi].word |= o.blocks[oi].word
			added += bits.OnesCount64(b.blocks[bi].word) - before
		}
		b.n += added
		return added
	}
	// Grow the tail, then merge backwards in place: each source block is
	// read before its slot is overwritten because the write position never
	// overtakes the read position from behind.
	old := len(b.blocks)
	for i := 0; i < missing; i++ {
		b.blocks = append(b.blocks, bitsBlock{})
	}
	w := len(b.blocks) - 1
	bi, oi := old-1, len(o.blocks)-1
	for oi >= 0 {
		if bi >= 0 && b.blocks[bi].idx > o.blocks[oi].idx {
			b.blocks[w] = b.blocks[bi]
			bi--
		} else if bi >= 0 && b.blocks[bi].idx == o.blocks[oi].idx {
			b.blocks[w] = bitsBlock{idx: b.blocks[bi].idx, word: b.blocks[bi].word | o.blocks[oi].word}
			bi--
			oi--
		} else {
			b.blocks[w] = o.blocks[oi]
			oi--
		}
		w--
	}
	// Remaining b-blocks are already in position (bi == w after the loop).
	total := 0
	for i := range b.blocks {
		total += bits.OnesCount64(b.blocks[i].word)
	}
	added := total - b.n
	b.n = total
	return added
}

// UnionDiff adds every id of o to b and appends exactly the newly-set ids
// to buf (ascending), returning buf. This is the diff-propagation primitive:
// the caller pushes the returned ids — and only those — onto the worklist.
func (b *Bits) UnionDiff(o *Bits, buf []CellID) []CellID {
	if o == b || o.n == 0 {
		return buf
	}
	// Popcount-gated subset early exit, as in UnionInPlace: a contained
	// source produces no diff and no writes, so settle it with the
	// read-only scan and skip both the append loop and the union.
	if o.n <= b.n && b.subsumes(o) {
		return buf
	}
	// Pre-size buf to its o.n upper bound (at most every id of o is new):
	// one reallocation up front instead of append-doubling mid-loop on the
	// drain path.
	if free := cap(buf) - len(buf); free < o.n {
		nb := make([]CellID, len(buf), len(buf)+o.n)
		copy(nb, buf)
		buf = nb
	}
	start := len(buf)
	bi := 0
	for oi := range o.blocks {
		blk := o.blocks[oi].idx
		for bi < len(b.blocks) && b.blocks[bi].idx < blk {
			bi++
		}
		w := o.blocks[oi].word
		if bi < len(b.blocks) && b.blocks[bi].idx == blk {
			w &^= b.blocks[bi].word
		}
		base := CellID(blk) << 6
		for w != 0 {
			buf = append(buf, base+CellID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	if len(buf) > start {
		b.UnionInPlace(o)
	}
	return buf
}

// UnionAll adds every id of every source set to b, returning how many were
// new. It is the fan-in primitive of the parallel wave barrier: several
// shards' pending buffers targeting one cell merge in a single k-way
// block-merge pass (one count pass, one backward placement pass), instead
// of k full UnionInPlace passes each moving b's tail. Sources equal to b or
// nil are skipped; sources are not modified.
func (b *Bits) UnionAll(srcs []*Bits) int {
	// Collect live sources; degenerate fan-ins fall back to the pairwise
	// primitives.
	var liveArr [8]*Bits
	live := liveArr[:0]
	for _, o := range srcs {
		if o == nil || o == b || o.n == 0 {
			continue
		}
		if len(live) == cap(live) {
			grown := make([]*Bits, len(live), 2*len(live))
			copy(grown, live)
			live = grown
		}
		live = append(live, o)
	}
	switch len(live) {
	case 0:
		return 0
	case 1:
		return b.UnionInPlace(live[0])
	}

	// Pass 1: count the distinct block indexes the union of the sources
	// contributes beyond b, with a k-way forward scan.
	var curArr [8]int
	cur := curArr[:0]
	for range live {
		cur = append(cur, 0)
	}
	missing := 0
	bi := 0
	for {
		// Smallest unconsumed block index across the sources.
		blk := ^uint32(0)
		for i, o := range live {
			if cur[i] < len(o.blocks) && o.blocks[cur[i]].idx < blk {
				blk = o.blocks[cur[i]].idx
			}
		}
		if blk == ^uint32(0) {
			break
		}
		for i, o := range live {
			if cur[i] < len(o.blocks) && o.blocks[cur[i]].idx == blk {
				cur[i]++
			}
		}
		for bi < len(b.blocks) && b.blocks[bi].idx < blk {
			bi++
		}
		if bi == len(b.blocks) || b.blocks[bi].idx != blk {
			missing++
		}
	}

	// Pass 2: grow b's tail by the missing blocks and merge backwards —
	// the UnionInPlace trick generalized to k sources: at each step the
	// largest pending block index is placed, OR-ing together every source
	// (and b) block sharing it. Each of b's original blocks is read before
	// its slot is overwritten because the write cursor never overtakes the
	// read cursor from behind.
	old := len(b.blocks)
	for i := 0; i < missing; i++ {
		b.blocks = append(b.blocks, bitsBlock{})
	}
	for i, o := range live {
		cur[i] = len(o.blocks) - 1
	}
	w := len(b.blocks) - 1
	rb := old - 1
	for {
		// Largest unplaced block index across b and the sources.
		blk := uint32(0)
		have := false
		if rb >= 0 {
			blk, have = b.blocks[rb].idx, true
		}
		for i, o := range live {
			if cur[i] >= 0 {
				if idx := o.blocks[cur[i]].idx; !have || idx > blk {
					blk, have = idx, true
				}
			}
		}
		if !have {
			break
		}
		word := uint64(0)
		if rb >= 0 && b.blocks[rb].idx == blk {
			word = b.blocks[rb].word
			rb--
		}
		for i, o := range live {
			if cur[i] >= 0 && o.blocks[cur[i]].idx == blk {
				word |= o.blocks[cur[i]].word
				cur[i]--
			}
		}
		b.blocks[w] = bitsBlock{idx: blk, word: word}
		w--
	}
	total := 0
	for i := range b.blocks {
		total += bits.OnesCount64(b.blocks[i].word)
	}
	added := total - b.n
	b.n = total
	return added
}
