package core

import (
	"repro/internal/cc/types"
	"repro/internal/ir"
)

// This file contains the type-flattening utilities shared by the field-based
// strategies: enumerating normalized leaf cells, first-field normalization,
// enclosing-structure candidates, and the followingFields function of
// §4.3.2.
//
// Normalized cells of an object are:
//   - for a scalar: the object itself (empty path);
//   - for a struct: the leaves of its fields, in declaration order;
//   - for a union: a single cell at the union (unions are collapsed, which
//     keeps the analysis safe without modeling overlap — see DESIGN.md);
//   - for an array: the cells of its single representative element.

const maxDepth = 64 // defensive bound against malformed recursive types

// leafPaths returns the normalized cell paths of type t, in layout order.
func leafPaths(t *types.Type) []ir.Path {
	var out []ir.Path
	appendLeaves(t, nil, &out, 0)
	if len(out) == 0 {
		out = append(out, nil)
	}
	return out
}

func appendLeaves(t *types.Type, prefix ir.Path, out *[]ir.Path, depth int) {
	if t == nil || depth > maxDepth {
		*out = append(*out, prefix)
		return
	}
	switch t.Kind {
	case types.Array:
		appendLeaves(t.Elem, prefix, out, depth+1)
	case types.Struct:
		if !t.Record.Complete || len(t.Record.Fields) == 0 {
			*out = append(*out, prefix)
			return
		}
		for i := range t.Record.Fields {
			f := &t.Record.Fields[i]
			if f.Name == "" {
				continue // unnamed bit-field padding
			}
			appendLeaves(f.Type, prefix.Extend(f.Name), out, depth+1)
		}
	case types.Union:
		*out = append(*out, prefix) // collapsed
	default:
		*out = append(*out, prefix)
	}
}

// typeAt walks a field path from t and returns the type it names (nil when
// the path does not fit the type).
func typeAt(t *types.Type, path ir.Path) *types.Type {
	cur := t
	for _, name := range path {
		if cur == nil {
			return nil
		}
		for cur.Kind == types.Array {
			cur = cur.Elem
		}
		if !cur.IsRecord() {
			return nil
		}
		i := cur.Record.FieldIndex(name)
		if i < 0 {
			return nil
		}
		cur = cur.Record.Fields[i].Type
	}
	return cur
}

// normalizePath maps a source-level field path on an object of type t to its
// normalized cell path: the path is truncated at the first union, and then
// extended through first fields until it names a non-aggregate (the paper's
// normalize for the portable instances).
func normalizePath(t *types.Type, path ir.Path) ir.Path {
	cur := t
	var out ir.Path
	for _, name := range path {
		if cur == nil {
			return out
		}
		for cur.Kind == types.Array {
			cur = cur.Elem
		}
		if cur.Kind == types.Union {
			return out // collapse: the union cell
		}
		if !cur.IsRecord() {
			return out
		}
		i := cur.Record.FieldIndex(name)
		if i < 0 {
			return out
		}
		out = out.Extend(name)
		cur = cur.Record.Fields[i].Type
	}
	return descendFirstField(cur, out)
}

// descendFirstField extends base through innermost first fields while the
// current type is a struct (stopping at unions and scalars).
func descendFirstField(t *types.Type, base ir.Path) ir.Path {
	cur := t
	for depth := 0; depth < maxDepth; depth++ {
		if cur == nil {
			return base
		}
		for cur.Kind == types.Array {
			cur = cur.Elem
		}
		if cur == nil || cur.Kind != types.Struct || !cur.Record.Complete || len(cur.Record.Fields) == 0 {
			return base
		}
		f := &cur.Record.Fields[0]
		if f.Name == "" {
			return base
		}
		base = base.Extend(f.Name)
		cur = f.Type
	}
	return base
}

// pathEq compares two field paths.
func pathEq(a, b ir.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// candidate is one enclosing-structure candidate δ for a normalized cell:
// a prefix path whose normalization equals the cell.
type candidate struct {
	path ir.Path
	typ  *types.Type
}

// candidatesFor returns the candidates δ with normalize(t.δ) == normPath,
// innermost (longest δ) first. This is the paper's search for an enclosing
// structure of which the cell is the innermost first field.
func candidatesFor(t *types.Type, normPath ir.Path) []candidate {
	var out []candidate
	for n := len(normPath); n >= 0; n-- {
		prefix := normPath[:n]
		pt := typeAt(t, prefix)
		if pt == nil {
			continue
		}
		// A pointer to an array is a pointer to its (single
		// representative) element, so candidates match by element type.
		for pt.Kind == types.Array {
			pt = pt.Elem
		}
		if pathEq(normalizePath(t, prefix), normPath) {
			out = append(out, candidate{path: append(ir.Path{}, prefix...), typ: pt})
		} else if n < len(normPath) {
			// Once a shorter prefix stops normalizing to the cell,
			// no shorter prefix can (normalization only descends
			// through first fields).
			break
		}
	}
	return out
}

// followingLeaves returns the normalized leaf paths of t at or after
// normPath in layout order (the paper's followingFields plus the field
// itself). When normPath is not found the full leaf list is returned
// (conservative).
func followingLeaves(t *types.Type, normPath ir.Path) []ir.Path {
	leaves := leafPaths(t)
	for i, l := range leaves {
		if pathEq(l, normPath) {
			return leaves[i:]
		}
	}
	return leaves
}

// leafCount returns the number of scalar leaves under t (unions count all
// their members' leaves; used for the Figure 4 per-field expansion).
func leafCount(t *types.Type) int {
	if t == nil {
		return 1
	}
	switch t.Kind {
	case types.Array:
		return leafCount(t.Elem)
	case types.Struct, types.Union:
		if !t.Record.Complete || len(t.Record.Fields) == 0 {
			return 1
		}
		n := 0
		for i := range t.Record.Fields {
			if t.Record.Fields[i].Name == "" {
				continue
			}
			n += leafCount(t.Record.Fields[i].Type)
		}
		if n == 0 {
			return 1
		}
		return n
	default:
		return 1
	}
}
