package core

import (
	"repro/internal/cc/layout"
	"repro/internal/cc/types"
	"repro/internal/ir"
)

// heapExtent bounds the byte offsets tracked inside scalar-hinted heap
// blocks (see Offsets.canon).
const heapExtent = 4096

// Offsets implements the §4.2.2 instance: cells are ⟨object, byte offset⟩
// pairs computed from one specific layout strategy. It is the most precise
// instance, but its results are only safe for the configured ABI — the
// paper's portability caveat.
//
//	normalize(s.α)        = s.offsetof(τ_s, α)
//	lookup(τ, α, t.k)     = { t.(k + offsetof(τ, α)) }
//	resolve(s.j, t.k, τ)  = { ⟨s.(j+i), t.(k+i)⟩ | 0 ≤ i < sizeof(τ) }
//
// The per-byte pair set of resolve is represented as a range Edge instead of
// being materialized (see Edge).
type Offsets struct {
	lay  *layout.Engine
	gran int64
	rec  Recorder
	memo memoTable

	leafCache map[*types.Type][]int64
}

var _ Strategy = (*Offsets)(nil)
var _ Memoizer = (*Offsets)(nil)

// NewOffsets returns the Offsets instance over the given layout engine.
func NewOffsets(lay *layout.Engine) *Offsets {
	return NewOffsetsGranular(lay, 1)
}

// NewOffsetsGranular returns an Offsets instance that rounds every cell
// offset down to a multiple of gran bytes. Granularity 1 is the paper's
// per-byte sub-field model; coarser granularities trade precision for
// fewer cells (an ablation of the per-byte design choice).
func NewOffsetsGranular(lay *layout.Engine, gran int64) *Offsets {
	if lay == nil {
		lay = layout.New(nil)
	}
	if gran < 1 {
		gran = 1
	}
	return &Offsets{lay: lay, gran: gran, leafCache: make(map[*types.Type][]int64)}
}

// Name implements Strategy.
func (s *Offsets) Name() string { return "offsets" }

// Recorder implements Strategy.
func (s *Offsets) Recorder() *Recorder { return &s.rec }

// Layout exposes the engine (used by tests and reports).
func (s *Offsets) Layout() *layout.Engine { return s.lay }

func (s *Offsets) offsetOf(t *types.Type, path ir.Path) int64 {
	if t == nil || len(path) == 0 {
		return 0
	}
	off, err := s.lay.OffsetofPath(t, path)
	if err != nil {
		return 0
	}
	return off
}

// canon maps a raw byte offset in obj to its canonical form, implementing
// the paper's array adjustment: "if t.n is within any element of an array,
// n is adjusted to be the corresponding offset within the array's (single)
// representative element." Offsets beyond the object's extent have no
// well-defined referent (out-of-bounds under Assumption 1) and are dropped.
// Heap objects are treated as arrays of their inferred element type, so
// their offsets fold modulo the element size; untyped heap blobs keep a
// single cell at offset 0.
func (s *Offsets) canon(obj *ir.Object, off int64) (int64, bool) {
	if off < 0 {
		return 0, false
	}
	if s.gran > 1 {
		off = off / s.gran * s.gran
	}
	t := obj.Type
	if t == nil {
		// Untyped blob: offsets carry no type structure but remain
		// meaningful to this instance (lookup only needs the declared
		// access type); bound them like scalar-hinted heap blocks.
		if off >= heapExtent {
			off = 0
		}
		return off, true
	}
	if obj.Kind == ir.ObjHeap {
		// A heap block of record element type is an unbounded array of
		// that type: fold into the representative element. For scalar
		// element hints (char *p = malloc(n) and friends) the block is
		// routinely overlaid with record views, so byte offsets are
		// kept up to a fixed bound — heapExtent — which also bounds
		// the cell space of cyclic heap-to-heap copies.
		esz := s.lay.Sizeof(t)
		if t.IsRecord() && esz > 0 {
			off %= esz
			return s.canonIn(t, off, 0)
		}
		if off >= heapExtent {
			if esz > 0 {
				off %= esz
			} else {
				off = 0
			}
		}
		return off, true
	}
	return s.canonIn(t, off, 0)
}

func (s *Offsets) canonIn(t *types.Type, off int64, depth int) (int64, bool) {
	if t == nil || depth > maxDepth {
		return off, true
	}
	switch t.Kind {
	case types.Array:
		esz := s.lay.Sizeof(t.Elem)
		if esz <= 0 {
			return 0, true
		}
		if t.ArrayLen >= 0 && off >= esz*t.ArrayLen {
			return 0, false // beyond the whole array
		}
		rel, ok := s.canonIn(t.Elem, off%esz, depth+1)
		return rel, ok
	case types.Struct:
		if !t.Record.Complete {
			return off, true
		}
		l := s.lay.Of(t.Record)
		if off >= l.Size {
			return 0, false
		}
		// Find the field containing the offset (last field whose start
		// is <= off and which spans it).
		for i := len(t.Record.Fields) - 1; i >= 0; i-- {
			f := &t.Record.Fields[i]
			start := l.Offsets[i]
			if off < start {
				continue
			}
			fsz := s.lay.Sizeof(f.Type)
			if off < start+fsz {
				rel, ok := s.canonIn(f.Type, off-start, depth+1)
				if !ok {
					return 0, false
				}
				return start + rel, true
			}
			break // padding byte: keep as-is
		}
		return off, true
	case types.Union:
		if !t.Record.Complete {
			return off, true
		}
		if sz := s.lay.Of(t.Record).Size; off >= sz {
			return 0, false
		}
		return off, true
	default:
		if sz := s.lay.Sizeof(t); sz > 0 && off >= sz {
			return 0, false
		}
		return off, true
	}
}

// Normalize implements Strategy.
func (s *Offsets) Normalize(obj *ir.Object, path ir.Path) Cell {
	off, ok := s.canon(obj, s.offsetOf(obj.Type, path))
	if !ok {
		off = 0
	}
	return Cell{Obj: obj, Off: off, ByOff: true}
}

// SetMemoization implements Memoizer.
func (s *Offsets) SetMemoization(on bool) { s.memo.SetMemoization(on) }

// Lookup implements Strategy (memoized; see memo.go).
func (s *Offsets) Lookup(τ *types.Type, path ir.Path, target Cell) []Cell {
	// No type test (results depend only on the declared type's layout);
	// mismatch columns do not apply to this instance.
	s.rec.recordLookup(isRecordType(τ) || objIsRecord(target.Obj), false)
	key := lookupKey{τ: τ, path: JoinPath(path), target: target}
	if v, ok := s.memo.getLookup(key); ok {
		s.rec.LookupCacheHits++
		return v.cells
	}
	var cells []Cell
	if off, ok := s.canon(target.Obj, target.Off+s.offsetOf(τ, path)); ok {
		cells = []Cell{{Obj: target.Obj, Off: off, ByOff: true}}
	} // else: out-of-bounds access, no referent (Assumption 1)
	s.memo.putLookup(key, lookupVal{cells: cells})
	s.rec.LookupCacheMisses++
	return cells
}

// Resolve implements Strategy (memoized; see memo.go).
func (s *Offsets) Resolve(dst, src Cell, τ *types.Type) []Edge {
	s.rec.recordResolve(isRecordType(τ) || objIsRecord(dst.Obj) || objIsRecord(src.Obj), false)
	key := resolveKey{dst: dst, src: src, τ: τ}
	if v, ok := s.memo.getResolve(key); ok {
		s.rec.ResolveCacheHits++
		return v.edges
	}
	size := int64(-1) // unknown extent: copy everything from the offsets on
	if τ != nil {
		if n := s.lay.Sizeof(τ); n > 0 {
			size = n
		}
	}
	edges := []Edge{{
		Dst:  Cell{Obj: dst.Obj, Off: dst.Off, ByOff: true},
		Src:  Cell{Obj: src.Obj, Off: src.Off, ByOff: true},
		Size: size,
	}}
	s.memo.putResolve(key, resolveVal{edges: edges})
	s.rec.ResolveCacheMisses++
	return edges
}

// CellsOf implements Strategy: the byte offsets of every scalar leaf of the
// object's type (the paper's "any sub-field" for Assumption 1 smearing).
func (s *Offsets) CellsOf(obj *ir.Object) []Cell {
	offs := s.leafOffsets(obj.Type)
	cells := make([]Cell, 0, len(offs))
	seen := make(map[int64]bool, len(offs))
	for _, off := range offs {
		if s.gran > 1 {
			off = off / s.gran * s.gran
		}
		if seen[off] {
			continue
		}
		seen[off] = true
		cells = append(cells, Cell{Obj: obj, Off: off, ByOff: true})
	}
	return cells
}

func (s *Offsets) leafOffsets(t *types.Type) []int64 {
	if t == nil {
		return []int64{0}
	}
	if cached, ok := s.leafCache[t]; ok {
		return cached
	}
	var out []int64
	s.appendLeafOffsets(t, 0, &out, 0)
	if len(out) == 0 {
		out = []int64{0}
	}
	// Deduplicate (union members may share offsets).
	seen := make(map[int64]bool, len(out))
	uniq := out[:0]
	for _, o := range out {
		if !seen[o] {
			seen[o] = true
			uniq = append(uniq, o)
		}
	}
	s.leafCache[t] = uniq
	return uniq
}

func (s *Offsets) appendLeafOffsets(t *types.Type, base int64, out *[]int64, depth int) {
	if t == nil || depth > maxDepth {
		*out = append(*out, base)
		return
	}
	switch t.Kind {
	case types.Array:
		// Single representative element.
		s.appendLeafOffsets(t.Elem, base, out, depth+1)
	case types.Struct, types.Union:
		if !t.Record.Complete || len(t.Record.Fields) == 0 {
			*out = append(*out, base)
			return
		}
		l := s.lay.Of(t.Record)
		for i := range t.Record.Fields {
			f := &t.Record.Fields[i]
			if f.Name == "" {
				continue
			}
			s.appendLeafOffsets(f.Type, base+l.Offsets[i], out, depth+1)
		}
	default:
		*out = append(*out, base)
	}
}

// ExpandedSize implements Strategy: one offset, one field.
func (s *Offsets) ExpandedSize(Cell) int { return 1 }

// PropagateEdge implements Strategy: a fact at src.Off + i flows to
// dst.Off + i when i falls inside the copied range. The destination offset
// is canonicalized (array folding, bounds check) so that cyclic copies with
// shifted bases cannot ratchet offsets without bound.
func (s *Offsets) PropagateEdge(e Edge, src Cell) (Cell, bool) {
	if src.Obj != e.Src.Obj {
		return Cell{}, false
	}
	delta := src.Off - e.Src.Off
	if delta < 0 {
		return Cell{}, false
	}
	if e.Size >= 0 && delta >= e.Size {
		return Cell{}, false
	}
	off, ok := s.canon(e.Dst.Obj, e.Dst.Off+delta)
	if !ok {
		return Cell{}, false
	}
	return Cell{Obj: e.Dst.Obj, Off: off, ByOff: true}, true
}
