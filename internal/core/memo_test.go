package core_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
)

// memoWorkload exercises every memoizable path: struct copies (resolve with
// known extent), memcopies through void* (resolve with unknown extent), and
// repeated field accesses under casts (lookup hits and mismatches).
const memoWorkload = `
struct A { int *a1; char pad; int *a2; } a, a2;
struct B { char *b1; int *b2; } b;
struct Hdr { int kind; int *payload; };
struct Ext { int kind; int *payload; int *extra; } e1, e2;
int x, y, z, *p, *q, *r;

void copies(void) {
	a.a1 = &x;
	a.a2 = &y;
	a2 = a;
	a = *(struct A *)&b;
	p = a.a1;
	q = a2.a2;
}

void headers(void) {
	struct Hdr *h;
	e1.payload = &z;
	h = (struct Hdr *)&e1;
	r = h->payload;
	e2 = e1;
	h = (struct Hdr *)&e2;
	r = h->payload;
}
`

// factDump renders the full points-to graph as sorted "cell -> target" lines.
func factDump(res *core.Result) []string {
	var out []string
	for _, c := range res.SortedCells() {
		for _, t := range res.PointsToCell(c).Sorted() {
			out = append(out, c.String()+" -> "+t.String())
		}
	}
	sort.Strings(out)
	return out
}

// TestMemoizationPreservesResults runs every strategy with the caches on and
// off and demands identical facts AND identical instrumentation counts —
// the memo layer must be invisible except for the hit/miss counters.
func TestMemoizationPreservesResults(t *testing.T) {
	res := loadIR(t, memoWorkload, nil)
	for name := range strategies(res.Layout) {
		t.Run(name, func(t *testing.T) {
			on := strategies(res.Layout)[name]
			off := strategies(res.Layout)[name]
			core.SetMemoization(off, false)

			rOn := core.Analyze(res.IR, on)
			rOff := core.Analyze(res.IR, off)

			if got, want := rOn.TotalFacts(), rOff.TotalFacts(); got != want {
				t.Errorf("TotalFacts: memo on %d, off %d", got, want)
			}
			if got, want := rOn.AvgDerefSetSize(), rOff.AvgDerefSetSize(); got != want {
				t.Errorf("AvgDerefSetSize: memo on %v, off %v", got, want)
			}
			fOn, fOff := factDump(rOn), factDump(rOff)
			if strings.Join(fOn, "\n") != strings.Join(fOff, "\n") {
				t.Errorf("fact graphs differ:\nmemo on:\n%s\nmemo off:\n%s",
					strings.Join(fOn, "\n"), strings.Join(fOff, "\n"))
			}

			recOn, recOff := on.Recorder(), off.Recorder()
			if recOn.LookupCalls != recOff.LookupCalls {
				t.Errorf("LookupCalls: memo on %d, off %d (cache hits must still count as logical calls)",
					recOn.LookupCalls, recOff.LookupCalls)
			}
			if recOn.ResolveCalls != recOff.ResolveCalls {
				t.Errorf("ResolveCalls: memo on %d, off %d",
					recOn.ResolveCalls, recOff.ResolveCalls)
			}
			if recOn.LookupMismatches != recOff.LookupMismatches {
				t.Errorf("LookupMismatches: memo on %d, off %d (hits must replay the cached flag)",
					recOn.LookupMismatches, recOff.LookupMismatches)
			}
			if recOn.ResolveMismatches != recOff.ResolveMismatches {
				t.Errorf("ResolveMismatches: memo on %d, off %d",
					recOn.ResolveMismatches, recOff.ResolveMismatches)
			}
			if recOff.LookupCacheHits != 0 || recOff.ResolveCacheHits != 0 {
				t.Errorf("memo off recorded cache hits: lookup %d resolve %d",
					recOff.LookupCacheHits, recOff.ResolveCacheHits)
			}
		})
	}
}

// TestMemoizationCountersConsistent checks the counter invariant: every
// logical lookup call is either a cache hit or a cache miss.
func TestMemoizationCountersConsistent(t *testing.T) {
	res := loadIR(t, memoWorkload, nil)
	for name, strat := range strategies(res.Layout) {
		core.Analyze(res.IR, strat)
		rec := strat.Recorder()
		if rec.LookupCacheHits+rec.LookupCacheMisses != rec.LookupCalls {
			t.Errorf("%s: lookup hits %d + misses %d != calls %d",
				name, rec.LookupCacheHits, rec.LookupCacheMisses, rec.LookupCalls)
		}
		if rec.LookupCacheHits == 0 {
			t.Errorf("%s: workload produced no lookup cache hits", name)
		}
		if rec.ResolveCacheHits+rec.ResolveCacheMisses < rec.ResolveCalls {
			// CIS/CoC cache but do not record τ == nil (unknown-extent)
			// resolves, so hits+misses may exceed calls — never undercount.
			t.Errorf("%s: resolve hits %d + misses %d < calls %d",
				name, rec.ResolveCacheHits, rec.ResolveCacheMisses, rec.ResolveCalls)
		}
	}
}
