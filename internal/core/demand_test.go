package core_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cc/layout"
	"repro/internal/core"
	"repro/internal/ir"
)

// demandSrc exercises every rule family the slice builder must handle:
// address-of, field access, loads, stores through pointers, memcopy
// (struct assignment), casts, pointer arithmetic, and calls with
// parameter/return bindings.
const demandSrc = `
struct S { int *s1; int *s2; };
struct T { struct S hd; int *extra; };
int a, b, c;
struct S s, s2;
struct T t;
int *gp;
int **pp;

int *pick(int *x, int *y) {
	if (a) return x;
	return y;
}

void store_through(int **d, int *v) { *d = v; }

void main() {
	s.s1 = &a;
	s.s2 = &b;
	t.hd = s;                  /* memcopy */
	gp = ((struct S *)&t)->s1; /* cast + field load */
	pp = &gp;
	store_through(pp, &c);     /* call + store through param */
	gp = pick(&a, &b);         /* call + return binding */
	gp = gp + 1;               /* pointer arithmetic */
	s2 = *(struct S *)&t;      /* cast + memcopy load */
}
`

// demandAnswer formats a demand points-to set the same way targetCells does
// for the exhaustive result.
func demandAnswer(d *core.Demand, obj *ir.Object) map[string]bool {
	out := make(map[string]bool)
	for c := range d.PointsToObj(obj) {
		out[c.String()] = true
	}
	return out
}

// namedPointers returns the program's non-temp objects, the query surface a
// Session exposes.
func namedPointers(p *ir.Program) []*ir.Object {
	var out []*ir.Object
	for _, o := range p.Objects {
		if !o.IsTemp() {
			out = append(out, o)
		}
	}
	return out
}

// TestDemandMatchesFull pins the tentpole's correctness contract at the
// core layer: for every strategy and every named object, the demand
// engine's answer equals the exhaustive solver's, with the memo both cold
// (fresh engine per object) and warm (one engine, every object in
// sequence).
func TestDemandMatchesFull(t *testing.T) {
	res := loadIR(t, demandSrc, nil)
	for name := range strategies(nil) {
		t.Run(name, func(t *testing.T) {
			mk := func() core.Strategy {
				return strategies(layout.New(res.Layout.ABI()))[name]
			}
			full := core.AnalyzeContext(context.Background(), res.IR, mk(), core.Options{})

			// Cold: a fresh engine answers each single query correctly.
			for _, obj := range namedPointers(res.IR) {
				d := core.NewDemand(res.IR, mk(), core.Options{}, 0)
				if err := d.Query(context.Background(), obj); err != nil {
					t.Fatalf("cold query %s: %v", obj.Name, err)
				}
				got := demandAnswer(d, obj)
				want := targetCells(full, obj)
				wantSet(t, "cold "+obj.Name, got, keys(want)...)
			}

			// Warm: one engine accumulates every slice; earlier answers must
			// survive later expansion, and re-queries must be memo hits.
			d := core.NewDemand(res.IR, mk(), core.Options{}, 0)
			objs := namedPointers(res.IR)
			for _, obj := range objs {
				if err := d.Query(context.Background(), obj); err != nil {
					t.Fatalf("warm query %s: %v", obj.Name, err)
				}
			}
			for _, obj := range objs {
				wantSet(t, "warm "+obj.Name, demandAnswer(d, obj), keys(targetCells(full, obj))...)
			}
			before := d.Stats().MemoHits
			if err := d.Query(context.Background(), objs...); err != nil {
				t.Fatalf("re-query: %v", err)
			}
			if after := d.Stats().MemoHits; after != before+1 {
				t.Errorf("MemoHits after re-query = %d, want %d", after, before+1)
			}
		})
	}
}

// TestDemandQueryOrderIrrelevant runs the warm sequence in reverse to pin
// the revDeps replay: edges recorded before their destination object was
// demanded must be honored when a later query demands it.
func TestDemandQueryOrderIrrelevant(t *testing.T) {
	res := loadIR(t, demandSrc, nil)
	full := core.AnalyzeContext(context.Background(), res.IR, core.NewCIS(), core.Options{})
	d := core.NewDemand(res.IR, core.NewCIS(), core.Options{}, 0)
	objs := namedPointers(res.IR)
	for i := len(objs) - 1; i >= 0; i-- {
		if err := d.Query(context.Background(), objs[i]); err != nil {
			t.Fatalf("query %s: %v", objs[i].Name, err)
		}
	}
	for _, obj := range objs {
		wantSet(t, "reverse "+obj.Name, demandAnswer(d, obj), keys(targetCells(full, obj))...)
	}
}

// TestDemandSliceSmallerThanProgram checks the engine actually skips work:
// querying one local in a program with an unrelated heavy component must
// not activate the unrelated statements.
func TestDemandSliceSmallerThanProgram(t *testing.T) {
	src := `
int a, b, c, d;
int *p, *q, *r, *s;
void unrelated() { q = &b; r = &c; s = &d; r = q; s = r; q = s; }
void main() { p = &a; }
`
	res := loadIR(t, src, nil)
	d := core.NewDemand(res.IR, core.NewCIS(), core.Options{}, 0)
	p := objByName(t, res.IR, "p")
	if err := d.Query(context.Background(), p); err != nil {
		t.Fatalf("query: %v", err)
	}
	wantSet(t, "p", demandAnswer(d, p), "a")
	st := d.Stats()
	if st.TotalStmts == 0 || st.StmtsActivated >= st.TotalStmts {
		t.Errorf("activated %d of %d statements, want a strict subset", st.StmtsActivated, st.TotalStmts)
	}
	full := core.AnalyzeContext(context.Background(), res.IR, core.NewCIS(), core.Options{})
	if d.Stats().CellsVisited >= full.NumCells() {
		t.Errorf("demand visited %d cells, full solve %d — slice should be smaller", d.Stats().CellsVisited, full.NumCells())
	}
}

// TestDemandBudget checks that a budget trip poisons the engine and keeps
// failing fast.
func TestDemandBudget(t *testing.T) {
	res := loadIR(t, demandSrc, nil)
	d := core.NewDemand(res.IR, core.NewCIS(), core.Options{}, 1)
	gp := objByName(t, res.IR, "gp")
	err := d.Query(context.Background(), gp)
	if !errors.Is(err, core.ErrDemandBudget) {
		t.Fatalf("budget query err = %v, want ErrDemandBudget", err)
	}
	if !d.Poisoned() {
		t.Error("engine not poisoned after budget trip")
	}
	if err := d.Query(context.Background(), gp); !errors.Is(err, core.ErrDemandBudget) {
		t.Errorf("post-poison query err = %v, want ErrDemandBudget", err)
	}
}

// TestDemandCanceled checks that cancellation mid-query reports a canceled
// fault and poisons the engine rather than serving half-propagated state.
func TestDemandCanceled(t *testing.T) {
	res := loadIR(t, demandSrc, nil)
	d := core.NewDemand(res.IR, core.NewCIS(), core.Options{}, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := d.Query(ctx, objByName(t, res.IR, "gp"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query err = %v, want context.Canceled in chain", err)
	}
	if !d.Poisoned() {
		t.Error("engine not poisoned after cancellation")
	}
}
