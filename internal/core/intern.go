package core

// CellID is a dense per-run identifier for an interned Cell. IDs are
// assigned in first-seen order by a CellTable, so a run's cell universe maps
// onto a compact [0, Len) range and points-to sets become Bits bitsets
// instead of map[Cell]struct{} hashes.
type CellID uint32

// CellTable interns normalized Cells to dense CellIDs and back. It is
// per-run state: strategies still speak Cell at their API boundary, and the
// solver interns each cell once — at edge-creation or fact-creation time —
// so the fixpoint's hot loop never hashes a three-field struct.
type CellTable struct {
	ids   map[Cell]CellID
	cells []Cell
}

// NewCellTable returns an empty table.
func NewCellTable() *CellTable {
	return &CellTable{ids: make(map[Cell]CellID)}
}

// ID interns c, assigning the next dense id on first sight.
func (t *CellTable) ID(c Cell) CellID {
	if id, ok := t.ids[c]; ok {
		return id
	}
	id := CellID(len(t.cells))
	t.ids[c] = id
	t.cells = append(t.cells, c)
	return id
}

// Find returns c's id without interning it.
func (t *CellTable) Find(c Cell) (CellID, bool) {
	id, ok := t.ids[c]
	return id, ok
}

// Cell returns the cell for an id previously returned by ID.
func (t *CellTable) Cell(id CellID) Cell { return t.cells[id] }

// Len returns the number of interned cells; valid ids are [0, Len).
func (t *CellTable) Len() int { return len(t.cells) }
