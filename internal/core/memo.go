package core

import (
	"repro/internal/cc/types"
	"repro/internal/ir"
)

// This file implements the strategy-level memoization of lookup and resolve.
// Both functions are pure: their results depend only on the declared type,
// the field selector and the target cell (plus the immutable type graph and
// layout), so within one analysis run a repeated call — the common case,
// since many statements dereference the same cells with the same declared
// types — can be answered from a cache.
//
// Invariants:
//
//   - The Recorder counts LOGICAL calls: a cache hit still increments the
//     lookup/resolve counters (and replays the memoized mismatch flag), so
//     the Figure 3 instrumentation is identical with and without the cache.
//   - Cached slices are shared across calls and must never be mutated by
//     callers; the solver only iterates them.
//   - Caches live inside a strategy instance, so concurrent analysis runs
//     (core.AnalyzeBatch) are isolated as long as each run constructs its
//     own Strategy.

// lookupKey identifies one logical lookup(τ, α, target) call.
type lookupKey struct {
	τ      *types.Type
	path   string
	target Cell
}

// resolveKey identifies one logical resolve(dst, src, τ) call.
type resolveKey struct {
	dst, src Cell
	τ        *types.Type
}

type lookupVal struct {
	cells    []Cell
	mismatch bool
}

type resolveVal struct {
	edges    []Edge
	mismatch bool
}

// memoTable is the per-instance cache. The zero value is an enabled, empty
// cache; maps are allocated on first store.
type memoTable struct {
	off      bool
	lookups  map[lookupKey]lookupVal
	resolves map[resolveKey]resolveVal
}

// SetMemoization enables or disables the lookup/resolve caches (they are on
// by default). Disabling clears any cached entries; results are identical
// either way — the switch exists for the cache-correctness tests and as an
// ablation.
func (m *memoTable) SetMemoization(on bool) {
	m.off = !on
	if !on {
		m.lookups = nil
		m.resolves = nil
	}
}

func (m *memoTable) getLookup(k lookupKey) (lookupVal, bool) {
	if m.off {
		return lookupVal{}, false
	}
	v, ok := m.lookups[k]
	return v, ok
}

func (m *memoTable) putLookup(k lookupKey, v lookupVal) {
	if m.off {
		return
	}
	if m.lookups == nil {
		m.lookups = make(map[lookupKey]lookupVal)
	}
	m.lookups[k] = v
}

func (m *memoTable) getResolve(k resolveKey) (resolveVal, bool) {
	if m.off {
		return resolveVal{}, false
	}
	v, ok := m.resolves[k]
	return v, ok
}

func (m *memoTable) putResolve(k resolveKey, v resolveVal) {
	if m.off {
		return
	}
	if m.resolves == nil {
		m.resolves = make(map[resolveKey]resolveVal)
	}
	m.resolves[k] = v
}

// Memoizer is implemented by every strategy whose lookup/resolve results are
// cached; it exposes the cache switch.
type Memoizer interface {
	SetMemoization(on bool)
}

// SetMemoization flips the cache switch when the strategy supports one.
func SetMemoization(s Strategy, on bool) {
	if m, ok := s.(Memoizer); ok {
		m.SetMemoization(on)
	}
}

// memoLookup answers a counted Lookup call through the cache: on a miss the
// uncounted core lk runs and its result is stored. Either way the recorder
// counts one logical call with the call's (deterministic) flags.
func (f *fieldOps) memoLookup(lk lookupFn, τ *types.Type, path ir.Path, target Cell) []Cell {
	key := lookupKey{τ: τ, path: JoinPath(path), target: target}
	if v, ok := f.memo.getLookup(key); ok {
		f.rec.recordLookup(structsInvolved(τ, target), v.mismatch)
		f.rec.LookupCacheHits++
		return v.cells
	}
	cells, mismatch := lk(τ, path, target)
	f.memo.putLookup(key, lookupVal{cells: cells, mismatch: mismatch})
	f.rec.recordLookup(structsInvolved(τ, target), mismatch)
	f.rec.LookupCacheMisses++
	return cells
}

// memoResolve answers a counted Resolve call through the cache, building the
// result via resolveVia on a miss. Unknown-extent copies (τ == nil) are not
// counted as resolve calls, matching the uncached behavior.
func (f *fieldOps) memoResolve(lk lookupFn, dst, src Cell, τ *types.Type) []Edge {
	key := resolveKey{dst: dst, src: src, τ: τ}
	if v, ok := f.memo.getResolve(key); ok {
		if τ != nil {
			f.rec.recordResolve(structsInvolved(τ, dst, src), v.mismatch)
		}
		f.rec.ResolveCacheHits++
		return v.edges
	}
	edges, mismatch := f.resolveVia(lk, dst, src, τ)
	f.memo.putResolve(key, resolveVal{edges: edges, mismatch: mismatch})
	if τ != nil {
		f.rec.recordResolve(structsInvolved(τ, dst, src), mismatch)
	}
	f.rec.ResolveCacheMisses++
	return edges
}
