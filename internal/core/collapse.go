package core

import (
	"repro/internal/cc/types"
	"repro/internal/ir"
)

// CollapseAlways implements the §4.3.1 instance: every structure is
// collapsed into a single variable. It is the most general and least
// precise portable strategy:
//
//	normalize(s.α)        = s
//	lookup(τ, α, t.β)     = { t }
//	resolve(s.α, t.β, τ)  = { ⟨s, t⟩ }
type CollapseAlways struct {
	rec  Recorder
	memo memoTable
}

var _ Strategy = (*CollapseAlways)(nil)
var _ Memoizer = (*CollapseAlways)(nil)

// NewCollapseAlways returns the Collapse Always instance.
func NewCollapseAlways() *CollapseAlways { return &CollapseAlways{} }

// Name implements Strategy.
func (s *CollapseAlways) Name() string { return "collapse-always" }

// Recorder implements Strategy.
func (s *CollapseAlways) Recorder() *Recorder { return &s.rec }

// Normalize implements Strategy: every field of s maps to s itself.
func (s *CollapseAlways) Normalize(obj *ir.Object, _ ir.Path) Cell {
	return Cell{Obj: obj}
}

// SetMemoization implements Memoizer.
func (s *CollapseAlways) SetMemoization(on bool) { s.memo.SetMemoization(on) }

// exactEdges implements exactEdger: edges carry exactly their source cell.
func (s *CollapseAlways) exactEdges() bool { return true }

// Lookup implements Strategy (memoized; see memo.go).
func (s *CollapseAlways) Lookup(τ *types.Type, _ ir.Path, target Cell) []Cell {
	// The instance performs no type test (Figure 3's mismatch columns do
	// not apply); struct involvement is still recorded.
	s.rec.recordLookup(isRecordType(τ) || objIsRecord(target.Obj), false)
	key := lookupKey{τ: τ, target: target}
	if v, ok := s.memo.getLookup(key); ok {
		s.rec.LookupCacheHits++
		return v.cells
	}
	cells := []Cell{{Obj: target.Obj}}
	s.memo.putLookup(key, lookupVal{cells: cells})
	s.rec.LookupCacheMisses++
	return cells
}

// Resolve implements Strategy (memoized; see memo.go).
func (s *CollapseAlways) Resolve(dst, src Cell, τ *types.Type) []Edge {
	s.rec.recordResolve(isRecordType(τ) || objIsRecord(dst.Obj) || objIsRecord(src.Obj), false)
	key := resolveKey{dst: dst, src: src, τ: τ}
	if v, ok := s.memo.getResolve(key); ok {
		s.rec.ResolveCacheHits++
		return v.edges
	}
	edges := []Edge{{Dst: Cell{Obj: dst.Obj}, Src: Cell{Obj: src.Obj}}}
	s.memo.putResolve(key, resolveVal{edges: edges})
	s.rec.ResolveCacheMisses++
	return edges
}

// CellsOf implements Strategy: one cell per object.
func (s *CollapseAlways) CellsOf(obj *ir.Object) []Cell {
	return []Cell{{Obj: obj}}
}

// ExpandedSize implements Strategy: a collapsed fact stands for every field
// of the object (the Figure 4 expansion).
func (s *CollapseAlways) ExpandedSize(c Cell) int {
	return leafCount(c.Obj.Type)
}

// PropagateEdge implements Strategy.
func (s *CollapseAlways) PropagateEdge(e Edge, src Cell) (Cell, bool) {
	return exactEdgePropagate(e, src)
}

func isRecordType(t *types.Type) bool { return t != nil && t.IsRecord() }

func objIsRecord(o *ir.Object) bool {
	return o != nil && o.Type != nil && (o.Type.IsRecord() ||
		o.Type.Kind == types.Array && isRecordType(arrayElem(o.Type)))
}

func arrayElem(t *types.Type) *types.Type {
	for t != nil && t.Kind == types.Array {
		t = t.Elem
	}
	return t
}
