package core

import "slices"

// This file is the constraint-graph layer of the dense solver: a union-find
// over CellIDs that collapses cells proven pointer-equivalent, online SCC
// detection over the exact (Size == 0) copy edges, and the wave scheduler
// that drains the worklist in topological order of the condensed graph.
//
// Cells on a cycle of exact copy edges provably converge to the same
// points-to set — each member's set flows into every other member — so the
// solver can fold the whole cycle into one representative and propagate into
// (and out of) it once instead of once per member. The scheduler then visits
// dirty representatives in reverse topological order of the condensed graph,
// so within one wave a delta crosses each edge once, instead of once per
// fact the classic per-fact worklist would pay.
//
// Byte-identical observables are non-negotiable (the corpus-wide
// differential test against AnalyzeReference): merging therefore never
// rewrites facts (points-to targets keep their original CellIDs), the
// Result maps every member cell back onto its representative's set through
// a find() snapshot (Result.redirect), and mergeSCC equalizes the members'
// rule consumers at merge time so that every watcher still fires exactly
// once per (cell, fact) — the same count the unmerged schedule produces.
//
// Range edges (the Offsets instance's Size != 0 byte ranges) are excluded by
// construction: only strategies that declare exactEdges() populate the
// exactOut adjacency this layer walks, and the Offsets instance does not —
// its edges keep the generic PropagateEdge path untouched.

// WaveStats counts the constraint-graph layer's work during one solve.
type WaveStats struct {
	// SCCsFound is the number of multi-cell strongly connected components
	// collapsed by online cycle elimination.
	SCCsFound int
	// CellsMerged is the number of cells folded into another
	// representative (SCC size minus one, summed over SCCs).
	CellsMerged int
	// Waves is the number of topological passes the scheduler ran.
	Waves int
	// EdgeBatches is the number of batched copy-edge traversals actually
	// performed: one per (edge, delta batch).
	EdgeBatches int
	// FactCrossings is the number of (edge, fact) pairs those batches
	// carried — what a per-fact worklist schedule would have traversed.
	FactCrossings int

	// ParWaves is the number of waves the parallel shard executor ran
	// (zero for a sequential solve). Like Waves/EdgeBatches it is a
	// deterministic function of (program, strategy, Options.Parallelism).
	ParWaves int
	// ParShards is the number of shard drains those waves performed.
	ParShards int
	// ParSteals counts shards a worker claimed from another worker's
	// queue. It is the one counter that depends on runtime scheduling
	// (and GOMAXPROCS), so it is excluded from regression baselines and
	// never compared across runs.
	ParSteals int
	// ParPendings is the number of cross-shard pending delta buffers
	// merged at wave barriers.
	ParPendings int

	// PrepClasses is the number of pointer-equivalence classes the
	// offline prepass merged (prepass.go); PrepCollapsed the cells folded
	// into another representative by those merges (class size minus one,
	// summed); PrepChains the cells whose class membership came from the
	// single-predecessor inheritance rule (copy chains and cast temps)
	// rather than a shared signature. All three are a deterministic
	// function of (program, strategy) — the prepass runs before any
	// schedule-dependent work — but they are still zeroed in regression
	// baselines recorded under parallelism, alongside the intern family.
	PrepClasses   int
	PrepCollapsed int
	PrepChains    int

	// InternEpochs is the number of interning passes the solve ran (one
	// per wave barrier plus the final pass); InternSets the cumulative
	// number of sets re-pointed at a canonical equal allocation;
	// InternBytes the approximate block storage those aliasing events
	// released (capacity of the dropped allocation, cumulative — a set
	// re-cloned by copy-on-write and interned again counts again). The
	// family is schedule-dependent: epochs fall at wave barriers, so the
	// values differ between sequential and parallel executors.
	InternEpochs int
	InternSets   int
	InternBytes  int

	// PeakLiveBytes is the highest runtime.ReadMemStats HeapAlloc
	// observed at the solve's sample points (Options.TrackPeakMem only;
	// zero otherwise). Machine-dependent; never part of any identity.
	PeakLiveBytes uint64
}

// TraversalsSaved is the headline counter: edge traversals avoided relative
// to the naive per-fact schedule.
func (w WaveStats) TraversalsSaved() int {
	if w.FactCrossings <= w.EdgeBatches {
		return 0
	}
	return w.FactCrossings - w.EdgeBatches
}

// cycleRedundancyTrigger re-arms SCC detection: when this many exact-edge
// batch propagations in a row added nothing new (UnionDiff kept finding the
// same deltas going around a cycle), the next wave re-runs Tarjan over the
// condensed graph before draining.
const cycleRedundancyTrigger = 64

// find returns the representative of c under the union-find, with path
// halving. Until the first merge actually happens — always, outside wave
// mode — the mapping is the identity and costs one branch, so the seeding
// phase (which dominates small solves) pays nothing for the indirection.
// The forest only covers cells that existed at the last detection pass
// (detectCycles grows it in one batch); anything younger is its own root.
func (s *solver) find(c CellID) CellID {
	if !s.merged || int(c) >= len(s.parent) {
		return c
	}
	for s.parent[c] != c {
		s.parent[c] = s.parent[s.parent[c]]
		c = s.parent[c]
	}
	return c
}

// runWaves is the fixpoint loop of the wave scheduler. Each wave walks the
// ranked subgraph — the Tarjan pop order, reversed, so sources come first —
// draining every cell with a pending delta. Because downstream cells sit
// later in the walk, a delta discovered at a source cascades through the
// whole condensed graph within a single wave, accumulating fan-in along the
// way; only facts flowing against the topological order (derived by rules,
// or crossing edges added mid-wave) wait for the next wave. Cells outside
// the ranked subgraph (interned after the last detection, or never touched
// by an exact edge) drain after the walk, in id order. SCC detection runs
// before the first wave (the seeded graph already contains most cycles) and
// again when redundant propagation evidence accumulates.
func (s *solver) runWaves() {
	for len(s.dirty) > 0 {
		if s.stop != nil {
			return
		}
		s.stats.Waves++
		if s.stats.Waves == 1 || s.redundant >= cycleRedundancyTrigger {
			// Re-detection is pointless unless an edge was added since the
			// last pass: on a static graph every cycle is already collapsed,
			// so redundant propagation alone cannot mean a missed SCC.
			if s.stats.Waves == 1 || s.edgesSinceSCC > 0 {
				s.edgesSinceSCC = 0
				s.detectCycles()
				if s.par != nil {
					// Merges only happen inside detectCycles, so this is
					// the one place the workers' flat find() snapshot can
					// go stale.
					s.par.refreshFlat(s)
				}
			}
			s.redundant = 0
			if s.stop != nil {
				return
			}
		}
		// Snapshot the dirty list (swapping buffers, not copying): the walk
		// covers every ranked cell regardless, so the snapshot is only
		// needed to find the unranked residual afterwards. Cells dirtied
		// during this wave land on the fresh list and join the next one.
		snap := s.dirty
		s.dirty, s.dirtyPrev = s.dirtyPrev[:0], snap
		if s.par != nil && len(snap) >= parMinFrontier {
			// Parallel ranked walk: shards of the topo order drained by
			// worker goroutines, cross-shard deltas and rule firings
			// deferred to a deterministic barrier. The dispatch decision
			// depends only on the dirty count, never on timing, so the
			// wave sequence is identical run to run.
			s.par.runWave(s)
			if s.stop != nil {
				return
			}
		} else {
			for i := len(s.topo) - 1; i >= 0; i-- {
				c := s.topo[i]
				if s.delta[c].Len() == 0 {
					continue
				}
				if s.stop != nil {
					return
				}
				if s.steps%cancelCheckEvery == 0 {
					if s.checkCtx(); s.stop != nil {
						return
					}
				}
				s.steps++
				s.drain(c)
			}
		}
		// Residual: dirty cells outside the ranked subgraph, deduplicated
		// and drained in ascending id order for determinism.
		wave := s.waveBuf[:0]
		for _, c := range snap {
			r := s.find(c)
			if int(r) < len(s.rank) && s.rank[r] >= 0 {
				continue // ranked: the walk above covered it
			}
			if s.delta[r].Len() > 0 {
				wave = append(wave, uint64(r))
			}
		}
		slices.Sort(wave)
		prev := ^uint64(0)
		for _, key := range wave {
			if key == prev {
				continue // duplicate: several members dirtied one rep
			}
			prev = key
			if s.stop != nil {
				break
			}
			if s.steps%cancelCheckEvery == 0 {
				if s.checkCtx(); s.stop != nil {
					break
				}
			}
			s.steps++
			s.drain(CellID(key))
		}
		s.waveBuf = wave[:0]
		// Interning epoch: after the wave's mutations settle, alias any set
		// touched this wave that equals an already-seen allocation. snap
		// aliases dirtyPrev, which the next wave truncates, so sorting it in
		// place inside internEpoch is safe.
		if s.intern != nil {
			s.internEpoch(snap)
		}
		s.samplePeak()
	}
}

// detectCycles runs an iterative Tarjan SCC pass over the representatives'
// exact-edge adjacency, collapses every multi-member component, and records
// the component completion order as the topological rank the wave scheduler
// sorts by. Afterwards every representative's adjacency is compacted:
// targets are mapped through find(), self-loops dropped, duplicates removed.
func (s *solver) detectCycles() {
	n := len(s.pts)
	// The working arrays are reused across detection passes: they grow to n
	// once, and each pass resets only the entries it stamped (sccSeen), so a
	// re-detection on a large cell table costs O(visited subgraph), not O(n).
	// Roots come from exactSrcs — only cells with exact out-edges can be on a
	// cycle, and everything else reachable is visited through their edges;
	// cells outside the subgraph keep rank -1 and drain last, which is the
	// right topological position for pure sinks.
	if cap(s.sccIndex) < n {
		// All live entries are zero between passes (each pass resets what it
		// stamped), so growth is a plain allocation, no copy.
		s.sccIndex = make([]int32, n, n+n/2)[:n]
		s.sccLow = make([]int32, n, n+n/2)[:n]
		s.sccOn = make([]bool, n, n+n/2)[:n]
	} else {
		s.sccIndex = s.sccIndex[:n]
		s.sccLow = s.sccLow[:n]
		s.sccOn = s.sccOn[:n]
	}
	index, low, onstack := s.sccIndex, s.sccLow, s.sccOn
	stack, frames, seen := s.sccStack[:0], s.sccFrames[:0], s.sccSeen[:0]
	var next, sccID int32
	var sccs [][]CellID

	// Grow the union-find forest and rank table in one batch — cheaper than
	// maintaining them on every interning, and find()/the scheduler treat
	// ids past the end as unmerged and unranked.
	for i := len(s.parent); i < n; i++ {
		s.parent = append(s.parent, CellID(i))
		s.rank = append(s.rank, -1)
	}

	// Reset the previous pass's ranks so that rank >= 0 means exactly "in
	// the topo order this pass is about to build" — the wave scheduler's
	// residual pass relies on that to pick up every unranked dirty cell.
	for _, v := range s.topo {
		s.rank[v] = -1
	}
	s.topo = s.topo[:0]

	for _, src := range s.exactSrcs {
		root := s.find(src)
		if index[root] != 0 {
			continue
		}
		next++
		index[root], low[root] = next, next
		seen = append(seen, root)
		stack = append(stack, root)
		onstack[root] = true
		frames = append(frames[:0], sccFrame{v: root})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(s.exactOut[f.v]) {
				w := s.find(s.exactOut[f.v][f.ei])
				f.ei++
				switch {
				case w == f.v:
					// self-loop after an earlier merge
				case index[w] == 0:
					next++
					index[w], low[w] = next, next
					seen = append(seen, w)
					stack = append(stack, w)
					onstack[w] = true
					frames = append(frames, sccFrame{v: w})
				case onstack[w] && index[w] < low[f.v]:
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := &frames[len(frames)-1]; low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] != index[v] {
				continue
			}
			// v roots a component: pop it into the topo order, stamping the
			// rank — sinks first; the walk reverses. Only a multi-member
			// component (an actual cycle) copies its members out, so the
			// common singleton case allocates nothing.
			base := len(s.topo)
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onstack[w] = false
				s.rank[w] = sccID
				s.topo = append(s.topo, w)
				if w == v {
					break
				}
			}
			sccID++
			if len(s.topo)-base > 1 {
				sccs = append(sccs, append([]CellID(nil), s.topo[base:]...))
			}
		}
	}
	// Leave the arrays all-zero for the next pass, touching only what this
	// one stamped; save the (possibly regrown) stacks back for reuse.
	for _, v := range seen {
		index[v] = 0
	}
	s.sccSeen = seen[:0]
	s.sccStack, s.sccFrames = stack[:0], frames[:0]

	for _, members := range sccs {
		s.mergeSCC(members)
		if s.stop != nil {
			return
		}
	}
	if len(sccs) == 0 {
		return
	}
	// Keep only representatives in the walk order: merged members' deltas
	// were folded into their representative, which sits at the component's
	// position (members of one SCC pop consecutively).
	kept := s.topo[:0]
	for _, v := range s.topo {
		if s.find(v) == v {
			kept = append(kept, v)
		}
	}
	s.topo = kept
	// Compact adjacency once per detection pass, so cascading merges do
	// not accumulate duplicate or self-loop edges in the hot drain loop.
	// The sweep doubles as the rebuild of exactSrcs: representatives absorb
	// their members' entries (find-mapped), duplicates collapse (via the
	// onstack array, all-false after the walk, as a visited marker), and
	// cells whose every edge folded into their own component drop out.
	// Cells interned during merge deliveries can sit past the marker's
	// bounds; they are new, so they cannot be duplicates.
	marked := seen[:0]
	srcs := s.exactSrcs[:0]
	for _, c0 := range s.exactSrcs {
		c := s.find(c0)
		if int(c) < len(onstack) {
			if onstack[c] {
				continue
			}
			onstack[c] = true
			marked = append(marked, c)
		}
		out := s.exactOut[c]
		if len(out) == 0 {
			continue
		}
		for i, d := range out {
			out[i] = s.find(d)
		}
		slices.Sort(out)
		kept := out[:0]
		prev := c // sentinel: dropping c also drops self-loops
		for _, d := range out {
			if d != prev && d != c {
				kept = append(kept, d)
				prev = d
			}
		}
		s.exactOut[c] = kept
		if len(kept) > 0 {
			srcs = append(srcs, c)
		}
	}
	s.exactSrcs = srcs
	for _, c := range marked {
		onstack[c] = false
	}
	s.sccSeen = marked[:0]
}

// sccFrame is one explicit-stack frame of the iterative Tarjan walk.
type sccFrame struct {
	v  CellID
	ei int // next out-edge index to visit
}

// mergePending snapshots one member's merge-time obligations: the facts its
// consumers (watchers and out-edges) have not yet seen, plus the consumer
// lists themselves as they stood before the structural merge.
type mergePending struct {
	member   CellID
	need     []CellID
	watchers []watch
	edges    []CellID
}

// mergeSCC folds the members of one exact-copy-edge cycle into a single
// representative (the smallest CellID, for determinism).
//
// The protocol keeps rule firing counts byte-identical to the unmerged run.
// In that run every member converges to the same final set U, and each
// member's watchers fire exactly once per fact of U (the delta sets dedup).
// Here: U is computed up front; for each member the facts its consumers have
// NOT yet seen — facts absent from its set, plus its still-pending delta —
// are delivered synchronously, exactly once, to that member's own watchers
// and pushed through its own out-edges. Afterwards every consumer group has
// seen exactly U, the groups are concatenated onto the representative, and
// any later fact arriving at the representative fires the combined list once
// — precisely what the unmerged schedule would have done member by member.
func (s *solver) mergeSCC(members []CellID) {
	s.stats.SCCsFound++
	s.stats.CellsMerged += len(members) - 1
	s.mergeCells(members)
}

// mergeCells is the strategy-agnostic merge protocol shared by cycle
// elimination (mergeSCC) and the offline prepass (prepass.go): it folds the
// given cells into the smallest member and delivers each member's
// outstanding facts through its own pre-merge consumers exactly once, per
// the contract documented on mergeSCC. Callers account their own stats.
func (s *solver) mergeCells(members []CellID) {
	slices.Sort(members)
	rep := members[0]
	s.merged = true

	// Union of the members' current sets, and the ids it contains.
	union := s.takeBits()
	for _, m := range members {
		union.UnionInPlace(&s.pts[m])
	}
	uids := union.AppendTo(s.getScratch())

	// Snapshot per-member obligations before mutating any structure. The
	// facts a member's consumers have seen are exactly its set minus its
	// pending delta, so the outstanding facts are (U \ pts) ∪ delta.
	pendings := make([]mergePending, 0, len(members))
	for _, m := range members {
		p := mergePending{member: m, watchers: s.watchers[m], edges: s.exactOut[m]}
		for _, id := range uids {
			if !s.pts[m].Has(id) || s.delta[m].Has(id) {
				p.need = append(p.need, id)
			}
		}
		pendings = append(pendings, p)
	}

	// Structural merge: union-find pointers first, so every addFact and
	// mergeFrom issued by the deliveries below lands on the representative.
	for _, m := range members[1:] {
		s.parent[m] = rep
	}
	wasEmpty := s.pts[rep].Len() == 0
	old := s.pts[rep]
	s.pts[rep] = union
	if s.sharedSet(rep) {
		// old aliases an interned allocation other cells may still point
		// at: drop it instead of recycling (pool reuse would corrupt the
		// aliases), and clear the flag — rep now owns the fresh union.
		s.intern.shared[rep] = false
	} else {
		s.recycleBits(old)
	}
	if wasEmpty && union.Len() > 0 {
		s.ncells++
		s.recordFactObj(rep)
	}
	for _, m := range members {
		s.delta[m].Clear() // obligations move into the need snapshots
	}
	for _, m := range members[1:] {
		s.watchers[rep] = append(s.watchers[rep], s.watchers[m]...)
		s.watchers[m] = nil
		s.exactOut[rep] = append(s.exactOut[rep], s.exactOut[m]...)
		s.exactOut[m] = nil
	}

	// Deliveries: push each member's outstanding facts through its own
	// pre-merge consumers. Facts derived reentrantly by the fired rules
	// land in the representative's delta and are drained — once, to the
	// combined watcher list — by the normal wave schedule.
	needBits := s.takeBits()
	for _, p := range pendings {
		if len(p.need) == 0 {
			continue
		}
		needBits.Clear()
		for _, id := range p.need {
			needBits.Add(id)
		}
		for _, d := range p.edges {
			rd := s.find(d)
			if rd == rep {
				continue // intra-component edge: absorbed by the union
			}
			s.stats.EdgeBatches++
			s.stats.FactCrossings += needBits.Len()
			s.mergeFrom(rd, &needBits)
		}
		for _, w := range p.watchers {
			for _, id := range p.need {
				s.applyRule(w, s.table.Cell(id), id)
			}
		}
	}
	s.recycleBits(needBits)
	s.putScratch(uids)
}
