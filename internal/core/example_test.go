package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/ir"
)

// ExampleAnalyze demonstrates the three-step API: front-end a C program,
// pick an instance, query points-to sets.
func ExampleAnalyze() {
	src := `
struct S { int *s1; int *s2; } s;
int x, y, *p;
void f(void) {
	s.s1 = &x;
	s.s2 = &y;
	p = s.s1;
}`
	res, err := frontend.Load(
		[]frontend.Source{{Name: "intro.c", Text: src}},
		frontend.Options{},
	)
	if err != nil {
		panic(err)
	}

	result := core.Analyze(res.IR, core.NewCIS())

	var p *ir.Object
	for _, o := range res.IR.Objects {
		if o.Name == "p" {
			p = o
		}
	}
	for _, target := range result.PointsTo(p, nil).Sorted() {
		fmt.Println("p ->", target)
	}
	// Output:
	// p -> x
}

// ExampleNewCollapseAlways shows the precision difference on the paper's
// introductory example: the collapsed instance merges the two fields.
func ExampleNewCollapseAlways() {
	src := `
struct S { int *s1; int *s2; } s;
int x, y, *p;
void f(void) {
	s.s1 = &x;
	s.s2 = &y;
	p = s.s1;
}`
	res, _ := frontend.Load(
		[]frontend.Source{{Name: "intro.c", Text: src}},
		frontend.Options{},
	)
	result := core.Analyze(res.IR, core.NewCollapseAlways())

	var p *ir.Object
	for _, o := range res.IR.Objects {
		if o.Name == "p" {
			p = o
		}
	}
	for _, target := range result.PointsTo(p, nil).Sorted() {
		fmt.Println("p ->", target)
	}
	// Output:
	// p -> x
	// p -> y
}

// ExampleStrategy_lookup exercises a strategy's lookup directly: a pointer
// declared struct S* actually targeting a struct T object (§4.1 Problem 2).
func ExampleStrategy_lookup() {
	src := `
struct S { int *s1; int s2; char *s3; } *p;
struct T { int *t1; int *t2; char *t3; } t;
void f(void) { p = (struct S *)&t; }`
	res, _ := frontend.Load(
		[]frontend.Source{{Name: "p2.c", Text: src}},
		frontend.Options{},
	)
	var tObj *ir.Object
	for _, o := range res.IR.Objects {
		if o.Name == "t" {
			tObj = o
		}
	}
	var sType = res.Sema.LookupGlobal("p").Type.Pointee()

	cis := core.NewCIS()
	target := cis.Normalize(tObj, nil)
	for _, cell := range cis.Lookup(sType, ir.Path{"s3"}, target) {
		fmt.Println(cell)
	}
	// Output:
	// t.t2
	// t.t3
}
