package core

import (
	"repro/internal/cc/types"
	"repro/internal/ir"
)

// CollapseOnCast implements the §4.3.2 instance: fields are kept separate,
// and a structure's fields are smeared together only when it is accessed as
// a type different from its declared type. Portable, and more precise than
// Collapse Always.
//
//	normalize(s.α)     = innermost first field of s.α
//	lookup(τ, α, t.β̂)  = { normalize(t.δ.α) }   if some enclosing δ of β̂
//	                                            has (compatible) type τ
//	                   = followingFields(t, β̂)  otherwise
//	resolve            = pairs of lookups over the fields of the LHS type
type CollapseOnCast struct {
	fieldOps
}

var _ Strategy = (*CollapseOnCast)(nil)

// NewCollapseOnCast returns the Collapse on Cast instance.
func NewCollapseOnCast() *CollapseOnCast {
	return &CollapseOnCast{fieldOps: newFieldOps()}
}

// NewCollapseOnCastNoNormalize returns a variant without the first-field
// normalization. It is UNSOUND (misses the §4.1 Problem 1 inferences) and
// exists only as the ablation DESIGN.md describes.
func NewCollapseOnCastNoNormalize() *CollapseOnCast {
	s := &CollapseOnCast{fieldOps: newFieldOps()}
	s.noFirstField = true
	return s
}

// Name implements Strategy.
func (s *CollapseOnCast) Name() string { return "collapse-on-cast" }

// Recorder implements Strategy.
func (s *CollapseOnCast) Recorder() *Recorder { return &s.rec }

// Normalize implements Strategy.
func (s *CollapseOnCast) Normalize(obj *ir.Object, path ir.Path) Cell {
	return s.normalize(obj, path)
}

// lookup is the uncounted core (also used from resolve, which per the
// paper's footnote does not count its internal lookups).
func (s *CollapseOnCast) lookup(τ *types.Type, path ir.Path, target Cell) ([]Cell, bool) {
	obj := target.Obj
	if obj.Type == nil {
		return []Cell{target}, true // untyped blob: its single cell
	}
	for _, cand := range candidatesFor(obj.Type, target.PathSlice()) {
		if types.CompatibleLax(τ, cand.typ) {
			full := cand.path.Extend(path...)
			return []Cell{s.normalize(obj, full)}, false
		}
	}
	return s.smear(target), true
}

// Lookup implements Strategy (memoized; see memo.go).
func (s *CollapseOnCast) Lookup(τ *types.Type, path ir.Path, target Cell) []Cell {
	return s.memoLookup(s.lookup, τ, path, target)
}

// Resolve implements Strategy (memoized; see memo.go).
func (s *CollapseOnCast) Resolve(dst, src Cell, τ *types.Type) []Edge {
	return s.memoResolve(s.lookup, dst, src, τ)
}

// CellsOf implements Strategy.
func (s *CollapseOnCast) CellsOf(obj *ir.Object) []Cell { return s.cellsOf(obj) }

// ExpandedSize implements Strategy.
func (s *CollapseOnCast) ExpandedSize(c Cell) int { return s.expandedSize(c) }

// PropagateEdge implements Strategy.
func (s *CollapseOnCast) PropagateEdge(e Edge, src Cell) (Cell, bool) {
	return exactEdgePropagate(e, src)
}
