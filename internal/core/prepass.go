package core

import (
	"slices"

	"repro/internal/ir"
)

// This file is the offline constraint-reduction prepass: HVN-style
// hash-value numbering over the static constraint graph, run once between
// statement seeding and the fixpoint. Cells proven to converge to equal
// final points-to sets are folded through the same union-find /
// delivery protocol as online cycle elimination (mergeCells), so the
// fixpoint propagates into each equivalence class once instead of once per
// member — and the interner then keeps what remains deduplicated.
//
// Soundness rests on a closed-world property of the solver's fact sources.
// A cell can gain facts from exactly three places: a logged direct
// (address-of) fact, a static exact copy edge present in exactOut after
// seeding, or a rule firing at runtime. Every rule-created fact or edge
// lands on a cell of a statically identifiable object set — the "indirect"
// objects below — because the strategies' Lookup/Resolve never emit a cell
// outside the object they are handed:
//
//   - OpAddrField / OpLoad / OpPtrArith destinations (rules 2/4 and the
//     arithmetic smear write them at firing time);
//   - OpCall destinations, parameters and varargs (call binding resolves
//     edges into them per discovered callee);
//   - address-taken objects (OpAddrOf sources): OpStore and OpMemCopy
//     resolve edges into cells of pointed-to objects, and every points-to
//     target's object is address-taken by construction.
//
// Cells of unmarked objects therefore have a complete static description:
// their final set is determined by their logged directs and their exact
// in-edges. Hash-value numbering exploits it bottom-up, on the condensation
// of the unmarked subgraph (components of mutually-copying cells provably
// converge to one set, merged or not):
//
//   vn(C) = 0                       no directs, no external in-edges: the
//                                   final set is provably empty;
//   vn(C) = vn(S)                   no directs and every external in-edge
//                                   comes from value number vn(S): the
//                                   final set IS S's final set — this is
//                                   the copy-chain/cast-temp rule, and it
//                                   holds even when S is an indirect cell
//                                   with an opaque (unique) number;
//   vn(C) = hash-cons(directs, in)  otherwise: equal signatures, equal
//                                   final sets.
//
// Edges from provably-empty sources are dropped from signatures (they
// contribute nothing), which lets a chain behind an empty head collapse
// with the head. Indirect cells get a fresh opaque number on first use as a
// source, so chains hanging off one load/param collapse INTO that cell.
//
// Merging whole classes preserves the Figure-3 counters for the same
// reason mergeSCC does (see congraph.go): members converge to the same
// final set, mergeCells delivers each member's outstanding facts through
// its own pre-merge consumers exactly once, and afterwards every fact
// reaching the representative fires the concatenated consumer list once —
// exactly the (consumer, fact) pairs the unmerged schedule produces.
//
// Multi-member components among unmarked cells are merged here, so the
// online SCC pass later finds only cycles created mid-fixpoint or running
// through indirect cells.

// prepState collects the seeding-time inputs of the prepass: the direct
// (address-of) facts, which by the end of seeding are indistinguishable in
// pts from facts that arrived through copy-edge replay.
type prepState struct {
	direct [][2]CellID // (dst, target) per OpAddrOf statement
}

// vnSig is one registered signature bucket entry: the value number it
// defines plus the exact signature content for collision checking.
type vnSig struct {
	vn   uint32
	dirs []CellID
	srcs []uint32
}

const vnNone = ^uint32(0)

// runPrepass detects pointer-equivalent cells over the static constraint
// graph and merges each equivalence class. It runs once, after seeding and
// before the fixpoint; prep state is released on return.
func (s *solver) runPrepass() {
	defer func() { s.prep = nil }()
	n := len(s.pts)
	if n == 0 {
		return
	}

	// Indirect objects: every object whose cells can receive a fact or an
	// in-edge from a rule firing (see the file comment for the case split).
	indirectObj := make(map[*ir.Object]bool)
	for _, st := range s.prog.Stmts {
		switch st.Op {
		case ir.OpAddrOf:
			indirectObj[st.Src] = true
		case ir.OpAddrField, ir.OpLoad, ir.OpPtrArith:
			indirectObj[st.Dst] = true
		case ir.OpCall:
			if st.Dst != nil {
				indirectObj[st.Dst] = true
			}
		}
	}
	for _, fn := range s.prog.Funcs {
		for _, p := range fn.Params {
			if p != nil {
				indirectObj[p] = true
			}
		}
		if fn.Varargs != nil {
			indirectObj[fn.Varargs] = true
		}
	}
	indirect := make([]bool, n)
	for i := 0; i < n; i++ {
		if indirectObj[s.table.Cell(CellID(i)).Obj] {
			indirect[i] = true
		}
	}

	// Reverse adjacency in CSR form: signature building walks in-edges.
	// exactOut is already deduplicated (edgeSet), and no merge has happened
	// yet, so ids are raw.
	radjOff := make([]int32, n+1)
	for src := 0; src < n; src++ {
		for _, dst := range s.exactOut[src] {
			radjOff[dst+1]++
		}
	}
	for i := 0; i < n; i++ {
		radjOff[i+1] += radjOff[i]
	}
	radj := make([]CellID, radjOff[n])
	fill := make([]int32, n)
	for src := 0; src < n; src++ {
		for _, dst := range s.exactOut[src] {
			radj[radjOff[dst]+fill[dst]] = CellID(src)
			fill[dst]++
		}
	}

	// Direct facts in CSR form, per destination cell.
	dirOff := make([]int32, n+1)
	for _, d := range s.prep.direct {
		dirOff[d[0]+1]++
	}
	for i := 0; i < n; i++ {
		dirOff[i+1] += dirOff[i]
	}
	dirs := make([]CellID, dirOff[n])
	for i := range fill {
		fill[i] = 0
	}
	for _, d := range s.prep.direct {
		dirs[dirOff[d[0]]+fill[d[0]]] = d[1]
		fill[d[0]]++
	}

	// Condense the unmarked subgraph: iterative Tarjan over cells not
	// marked indirect, following exact out-edges between unmarked
	// endpoints. Components complete in reverse topological order of the
	// condensation (a component pops only after everything it reaches),
	// so for a cross-component edge src→dst, comp(dst) < comp(src); the
	// numbering pass below walks components in descending id so every
	// in-edge's source component is numbered first.
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	on := make([]bool, n)
	var stack []CellID
	var frames []sccFrame
	order := make([]CellID, 0, n) // members, grouped by component
	compStart := []int32{0}       // order offsets, one per component
	var next int32
	for root := 0; root < n; root++ {
		if indirect[root] || index[root] != 0 {
			continue
		}
		next++
		index[root], low[root] = next, next
		stack = append(stack, CellID(root))
		on[root] = true
		frames = append(frames[:0], sccFrame{v: CellID(root)})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(s.exactOut[f.v]) {
				w := s.exactOut[f.v][f.ei]
				f.ei++
				switch {
				case indirect[w]:
					// Edge leaves the subgraph: no constraint on order.
				case index[w] == 0:
					next++
					index[w], low[w] = next, next
					stack = append(stack, w)
					on[w] = true
					frames = append(frames, sccFrame{v: w})
				case on[w] && index[w] < low[f.v]:
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := &frames[len(frames)-1]; low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] != index[v] {
				continue
			}
			id := int32(len(compStart) - 1)
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				on[w] = false
				comp[w] = id
				order = append(order, w)
				if w == v {
					break
				}
			}
			compStart = append(compStart, int32(len(order)))
		}
	}
	ncomp := len(compStart) - 1

	// Number the components. vn 0 is "provably empty"; unique numbers for
	// indirect sources are handed out lazily on first use, which also
	// registers the source cell as the founding member of its class — a
	// chain that inherits that number then collapses into the source.
	vn := make([]uint32, n)
	for i := range vn {
		vn[i] = vnNone
	}
	classes := [][]CellID{nil} // per vn; vn 0 collects provably-empty cells
	nextVN := uint32(1)
	vnOf := func(c CellID) uint32 {
		if vn[c] == vnNone {
			vn[c] = nextVN
			classes = append(classes, []CellID{c})
			nextVN++
		}
		return vn[c]
	}
	sigTab := make(map[uint64][]vnSig)
	var srcVNs []uint32
	var dirBuf []CellID
	for k := ncomp - 1; k >= 0; k-- {
		members := order[compStart[k]:compStart[k+1]]
		srcVNs = srcVNs[:0]
		dirBuf = dirBuf[:0]
		for _, m := range members {
			for _, src := range radj[radjOff[m]:radjOff[m+1]] {
				if !indirect[src] && comp[src] == int32(k) {
					continue // intra-component edge
				}
				if v := vnOf(src); v != 0 {
					// Provably-empty sources contribute nothing to the
					// final set; dropping them merges a chain behind an
					// empty head with the head's own class.
					srcVNs = append(srcVNs, v)
				}
			}
			dirBuf = append(dirBuf, dirs[dirOff[m]:dirOff[m+1]]...)
		}
		slices.Sort(srcVNs)
		srcVNs = slices.Compact(srcVNs)
		slices.Sort(dirBuf)
		dirBuf = slices.Compact(dirBuf)

		var v uint32
		switch {
		case len(dirBuf) == 0 && len(srcVNs) == 0:
			v = 0
		case len(dirBuf) == 0 && len(srcVNs) == 1:
			// Single-source inheritance: the component's final set is
			// exactly the source class's final set.
			v = srcVNs[0]
			s.stats.PrepChains += len(members)
		default:
			h := uint64(14695981039346656037)
			for _, d := range dirBuf {
				h = (h ^ uint64(d)) * 1099511628211
			}
			h = (h ^ 0xffffffffffffffff) * 1099511628211 // directs/sources separator
			for _, sv := range srcVNs {
				h = (h ^ uint64(sv)) * 1099511628211
			}
			v = vnNone
			for _, e := range sigTab[h] {
				if slices.Equal(e.dirs, dirBuf) && slices.Equal(e.srcs, srcVNs) {
					v = e.vn
					break
				}
			}
			if v == vnNone {
				v = nextVN
				nextVN++
				classes = append(classes, nil)
				sigTab[h] = append(sigTab[h], vnSig{
					vn:   v,
					dirs: append([]CellID(nil), dirBuf...),
					srcs: append([]uint32(nil), srcVNs...),
				})
			}
		}
		for _, m := range members {
			vn[m] = v
		}
		classes[v] = append(classes[v], members...)
	}

	// Merge every multi-member class through the shared protocol. The
	// union-find forest is grown here exactly as detectCycles grows it, so
	// a later online pass sees a consistent parent/rank table.
	for i := len(s.parent); i < n; i++ {
		s.parent = append(s.parent, CellID(i))
		s.rank = append(s.rank, -1)
	}
	for _, members := range classes {
		if len(members) < 2 {
			continue
		}
		if s.stop != nil {
			return
		}
		s.stats.PrepClasses++
		s.stats.PrepCollapsed += len(members) - 1
		s.mergeCells(members)
	}
}
