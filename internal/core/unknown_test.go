package core_test

import (
	"testing"

	"repro/internal/core"
)

// Tests for the Unknown-value flagging mode (the §4.2.1 alternative).

func TestUnknownFlagsCorruptedDeref(t *testing.T) {
	// A pointer spliced together by arithmetic is dereferenced: under
	// UseUnknown the site must be flagged.
	src := `
int a[4], *p, x;
void f(void) {
	p = a;
	p = p + 3;
	x = *p;
}`
	r := loadIR(t, src, nil)
	res := core.AnalyzeWith(r.IR, core.NewCIS(), core.Options{UseUnknown: true})
	if len(res.Misuses) == 0 {
		t.Fatal("no misuse flagged for arithmetic-derived dereference")
	}
	found := false
	for _, m := range res.Misuses {
		if m.Stmt != "" && m.Pos.IsValid() {
			found = true
		}
	}
	if !found {
		t.Errorf("misuse records incomplete: %+v", res.Misuses)
	}
}

func TestUnknownDoesNotFlagCleanDerefs(t *testing.T) {
	src := `
int x, *p, y;
void f(void) {
	p = &x;
	y = *p;
}`
	r := loadIR(t, src, nil)
	res := core.AnalyzeWith(r.IR, core.NewCIS(), core.Options{UseUnknown: true})
	if len(res.Misuses) != 0 {
		t.Errorf("clean program flagged: %+v", res.Misuses)
	}
}

func TestUnknownPreservesRealTargets(t *testing.T) {
	// The Unknown augmentation must not lose the Assumption 1 targets.
	src := `
struct G { int *g1; int *g2; } g;
int x, y, **p, *r;
void f(void) {
	g.g1 = &x;
	g.g2 = &y;
	p = &g.g1;
	p = p + 1;
	r = *p;
}`
	r := loadIR(t, src, nil)
	res := core.AnalyzeWith(r.IR, core.NewCIS(), core.Options{UseUnknown: true})
	rv := objByName(t, r.IR, "r")
	got := targetObjs(res, rv)
	if !got["x"] || !got["y"] {
		t.Errorf("pts(r) = %v, want x and y despite Unknown mode", keys(got))
	}
	// And the deref of the arithmetic-derived p is flagged.
	if len(res.Misuses) == 0 {
		t.Error("deref of p+1 not flagged")
	}
}

func TestUnknownOffByDefault(t *testing.T) {
	src := "int a[4], *p, x;\nvoid f(void) { p = a + 1; x = *p; }"
	r := loadIR(t, src, nil)
	res := core.Analyze(r.IR, core.NewCIS())
	if len(res.Misuses) != 0 {
		t.Errorf("misuses recorded without UseUnknown: %+v", res.Misuses)
	}
}

func TestUnknownFlagsEachSiteOnce(t *testing.T) {
	src := `
int a[8], *p, x;
void f(void) {
	int i;
	p = a;
	for (i = 0; i < 4; i++) {
		p = p + 1;
		x = *p;
	}
}`
	r := loadIR(t, src, nil)
	res := core.AnalyzeWith(r.IR, core.NewCIS(), core.Options{UseUnknown: true})
	seen := make(map[string]int)
	for _, m := range res.Misuses {
		seen[m.Pos.String()+m.Stmt]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("site %s flagged %d times", k, n)
		}
	}
}
