package core_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// ringSrc builds a C program whose solve cost scales with n: n pointer
// variables copied around a ring, each also taking the address of several
// targets, so every address fact must travel the whole ring.
func ringSrc(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "int t0, t1, t2, t3;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "int *p%d;\n", i)
	}
	b.WriteString("void f(void) {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\tp%d = &t%d;\n", i, i%4)
		fmt.Fprintf(&b, "\tp%d = p%d;\n", (i+1)%n, i)
	}
	b.WriteString("}\n")
	return b.String()
}

func TestLimitMaxSteps(t *testing.T) {
	r := loadIR(t, ringSrc(200), nil)
	for name, strat := range strategies(r.Layout) {
		res := core.AnalyzeContext(context.Background(), r.IR, strat,
			core.Options{Limits: core.Limits{MaxSteps: 10}})
		if res.Incomplete == nil {
			t.Fatalf("%s: expected incomplete result", name)
		}
		if res.Incomplete.Reason != core.StopMaxSteps {
			t.Errorf("%s: reason = %s, want %s", name, res.Incomplete.Reason, core.StopMaxSteps)
		}
		if res.Steps > 10 {
			t.Errorf("%s: %d steps, limit 10", name, res.Steps)
		}
		if !errors.Is(res.Incomplete.AsError(), fault.ErrLimit) {
			t.Errorf("%s: stop error is not ErrLimit: %v", name, res.Incomplete.AsError())
		}
	}
}

func TestLimitMaxFacts(t *testing.T) {
	r := loadIR(t, ringSrc(100), nil)
	for name, strat := range strategies(r.Layout) {
		res := core.AnalyzeContext(context.Background(), r.IR, strat,
			core.Options{Limits: core.Limits{MaxFacts: 5}})
		if res.Incomplete == nil || res.Incomplete.Reason != core.StopMaxFacts {
			t.Fatalf("%s: incomplete = %v, want max-facts", name, res.Incomplete)
		}
		if got := res.TotalFacts(); got > 5 {
			t.Errorf("%s: %d facts recorded, limit 5", name, got)
		}
	}
}

func TestLimitMaxCells(t *testing.T) {
	r := loadIR(t, ringSrc(100), nil)
	for name, strat := range strategies(r.Layout) {
		res := core.AnalyzeContext(context.Background(), r.IR, strat,
			core.Options{Limits: core.Limits{MaxCells: 3}})
		if res.Incomplete == nil || res.Incomplete.Reason != core.StopMaxCells {
			t.Fatalf("%s: incomplete = %v, want max-cells", name, res.Incomplete)
		}
	}
}

// Partial results must be a subset of the fixpoint: every fact derived under
// a limit must also be in the unlimited run's fact set.
func TestPartialResultIsSoundSubset(t *testing.T) {
	r := loadIR(t, ringSrc(60), nil)
	for name, strat := range strategies(r.Layout) {
		full := core.Analyze(r.IR, strat)
		if full.Incomplete != nil {
			t.Fatalf("%s: unlimited run incomplete", name)
		}
		for _, maxSteps := range []int{1, 5, 25} {
			lim := core.AnalyzeContext(context.Background(), r.IR,
				strategies(r.Layout)[name],
				core.Options{Limits: core.Limits{MaxSteps: maxSteps}})
			lim.Cells(func(c core.Cell, set core.CellSet) {
				fullSet := full.PointsToCell(c)
				for tgt := range set {
					if !fullSet.Has(tgt) {
						t.Errorf("%s (MaxSteps=%d): partial fact %s -> %s not in fixpoint",
							name, maxSteps, c, tgt)
					}
				}
			})
		}
	}
}

func TestZeroLimitsReachFixpoint(t *testing.T) {
	r := loadIR(t, ringSrc(50), nil)
	for name, strat := range strategies(r.Layout) {
		// NoPrepass: the offline prepass collapses the whole ring into one
		// cell, which can legitimately leave zero worklist drains; this
		// test asserts the classic fixpoint actually stepped.
		res := core.AnalyzeContext(context.Background(), r.IR, strat, core.Options{NoPrepass: true})
		if res.Incomplete != nil {
			t.Errorf("%s: zero limits produced incomplete result: %s", name, res.Incomplete)
		}
		if res.Steps == 0 {
			t.Errorf("%s: no steps counted", name)
		}
	}
}

func TestCanceledContext(t *testing.T) {
	r := loadIR(t, ringSrc(100), nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled before the run starts
	for name, strat := range strategies(r.Layout) {
		res := core.AnalyzeContext(ctx, r.IR, strat, core.Options{})
		if res.Incomplete == nil || !res.Incomplete.Canceled() {
			t.Fatalf("%s: incomplete = %v, want canceled", name, res.Incomplete)
		}
		err := res.Incomplete.AsError()
		if !errors.Is(err, fault.ErrCanceled) {
			t.Errorf("%s: stop error is not ErrCanceled: %v", name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: stop error does not unwrap to context.Canceled", name)
		}
	}
}

func TestDeadlineExceeded(t *testing.T) {
	r := loadIR(t, ringSrc(400), nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure the deadline has passed
	res := core.AnalyzeContext(ctx, r.IR, core.NewCIS(), core.Options{})
	if res.Incomplete == nil || res.Incomplete.Reason != core.StopDeadline {
		t.Fatalf("incomplete = %v, want deadline", res.Incomplete)
	}
	if !errors.Is(res.Incomplete.AsError(), context.DeadlineExceeded) {
		t.Error("stop error does not unwrap to context.DeadlineExceeded")
	}
}

func TestBatchIsolatesPanickingJob(t *testing.T) {
	r := loadIR(t, ringSrc(20), nil)
	jobs := []core.BatchJob{
		{Prog: r.IR, Strat: core.NewCIS()},
		{Prog: nil, Strat: core.NewCIS()}, // nil program panics in the solver
		{Prog: r.IR, Strat: core.NewCollapseAlways()},
	}
	results, errs := core.AnalyzeBatchContext(context.Background(), jobs, 2)
	if results[0] == nil || errs[0] != nil {
		t.Errorf("job 0 should succeed: res=%v err=%v", results[0], errs[0])
	}
	if results[1] != nil || errs[1] == nil {
		t.Fatalf("job 1 should fault: res=%v err=%v", results[1], errs[1])
	}
	if !errors.Is(errs[1], fault.ErrInternal) {
		t.Errorf("job 1 error is not ErrInternal: %v", errs[1])
	}
	var fe *fault.Error
	if !errors.As(errs[1], &fe) || len(fe.Stack) == 0 {
		t.Errorf("job 1 fault carries no stack")
	}
	if results[2] == nil || errs[2] != nil {
		t.Errorf("job 2 should still run after job 1 panicked: res=%v err=%v", results[2], errs[2])
	}
}

func TestBatchLimitTrippedJobIsolates(t *testing.T) {
	r := loadIR(t, ringSrc(100), nil)
	jobs := []core.BatchJob{
		{Prog: r.IR, Strat: core.NewCIS(), Opts: core.Options{Limits: core.Limits{MaxSteps: 3}}},
		{Prog: r.IR, Strat: core.NewCollapseOnCast()},
	}
	results, errs := core.AnalyzeBatchContext(context.Background(), jobs, 2)
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("limit trips are not errors: %v %v", errs[0], errs[1])
	}
	if results[0].Incomplete == nil || results[0].Incomplete.Reason != core.StopMaxSteps {
		t.Errorf("job 0 incomplete = %v, want max-steps", results[0].Incomplete)
	}
	if results[1].Incomplete != nil {
		t.Errorf("job 1 should complete: %v", results[1].Incomplete)
	}
}

func TestBatchCancellationDrainsQuickly(t *testing.T) {
	r := loadIR(t, ringSrc(60), nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var jobs []core.BatchJob
	for i := 0; i < 16; i++ {
		jobs = append(jobs, core.BatchJob{Prog: r.IR, Strat: core.NewCIS()})
	}
	start := time.Now()
	results, errs := core.AnalyzeBatchContext(ctx, jobs, 2)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("canceled batch took %v", elapsed)
	}
	for i := range jobs {
		if errs[i] != nil {
			t.Errorf("job %d errored: %v", i, errs[i])
		}
		if results[i] == nil || results[i].Incomplete == nil || !results[i].Incomplete.Canceled() {
			t.Errorf("job %d not canceled: %+v", i, results[i])
		}
	}
}
