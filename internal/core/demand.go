package core

import (
	"context"
	"errors"

	"repro/internal/ir"
)

// This file is the query-directed solver: instead of seeding every statement
// and running the whole-program fixpoint, a Demand engine activates only the
// statements that can contribute facts to the cells a client actually asks
// about, walking the constraint graph backwards from the queried objects.
//
// The slice is computed at object granularity. Demanding an object o means
// "every cell of o must reach its full-fixpoint points-to set", which
// requires activating
//
//   - every statement whose destination is o (AddrOf, Copy, AddrField,
//     Load, PtrArith, and Call statements binding a return value into o);
//   - Store and MemCopy statements that can write into o. Once any
//     address-taken object (the Src of some AddrOf — the only objects a
//     store can reach) is demanded, every store's pointer operand is
//     demanded so its slice resolves where the store writes; the store
//     itself is then activated only when that points-to set actually
//     reaches a demanded object (the sweep in pump). Tracking the pointer
//     costs a pointer-chain slice; firing the store costs the full
//     premise slice of its value operand — the distinction is what keeps
//     a query's slice from swallowing every store in the program;
//   - Call statements that can bind into o when o is a parameter or
//     varargs object: same lazy scheme, with the call's function-pointer
//     operand demanded up front and the call activated only when its
//     points-to set reaches a function whose parameters are demanded.
//
// Activation is initStmt, unchanged: the watch/replay machinery already
// makes late registration equivalent to seed-time registration (watch
// replays the facts present at the watched cell, addEdge replays the facts
// at an edge's source), so a statement activated mid-run derives exactly
// what it would have derived from the start. Activating a statement demands
// its premise operands (the watched pointers), and every copy edge the
// activated rules add is observed through the solver's noteEdge hook: an
// edge into a demanded object demands the edge's source object; an edge
// into a not-(yet-)demanded object is parked in revDeps and replayed if
// that object is demanded by a later query.
//
// Soundness of the slice rests on two properties of the framework. First,
// strategies are pure: Normalize/Lookup/Resolve depend only on types and
// cells, never on solver state, so a rule fired in the slice derives the
// same facts it derives in the full run. Second, the fixpoint is a least
// fixpoint of monotone rules, so any schedule that fires every rule
// instance relevant to the demanded cells converges to the same sets for
// those cells — which is what the corpus-wide differential test pins,
// byte for byte, against the exhaustive solver.
//
// The engine memoizes across queries: demanded objects, activated
// statements, and all derived facts persist, so a later query pays only for
// the part of its slice the earlier queries have not already explored. Wave
// scheduling and cycle elimination stay off (find() is the identity) — the
// slice is expected to be small, and merging would complicate the
// invariants for no measured gain.

// ErrDemandBudget reports that a query's slice exceeded the engine's
// activation budget; the caller should fall back to the exhaustive solver.
var ErrDemandBudget = errors.New("demand: slice budget exceeded")

// DemandStats counts the demand engine's cumulative work.
type DemandStats struct {
	// Queries is the number of Query calls; MemoHits counts those fully
	// answered by previously explored slices (no new activation and no new
	// propagation).
	Queries  int
	MemoHits int
	// ObjectsDemanded and StmtsActivated size the explored slice;
	// CellsVisited is the number of cells interned by it (the full solve's
	// Result.NumCells is the comparable whole-program figure).
	ObjectsDemanded int
	StmtsActivated  int
	CellsVisited    int
	// TotalStmts is the program's statement count (the budget denominator).
	TotalStmts int
}

// Demand is the query-directed solver. It is not safe for concurrent use;
// callers (the pointsto.Session) serialize queries.
type Demand struct {
	s      *solver
	budget int // max statement activations; <= 0 means unlimited

	demanded map[*ir.Object]bool
	queue    []*ir.Object

	// Static statement indexes, built once from the program.
	byDst      map[*ir.Object][]*ir.Stmt // statements writing facts/edges into the object
	addrTaken  map[*ir.Object]bool       // objects appearing as AddrOf sources (possible pointees)
	paramOwner map[*ir.Object]*ir.Object // parameter/varargs object → its function's object

	// Statically resolved statements: a store or call whose pointer operand
	// is a single-definition AddrOf temp has a known target, so it joins a
	// per-object index instead of the tracked pools below.
	storesInto  map[*ir.Object][]*ir.Stmt // object → stores that write into it
	callsToFunc map[*ir.Object][]*ir.Stmt // function object → direct calls to it
	dynStores   []*ir.Stmt                // stores through computed pointers
	dynCalls    []*ir.Stmt                // calls through computed function pointers

	// revDeps parks copy edges whose destination object was not demanded
	// when the edge appeared: dst object → source objects to demand if dst
	// ever is. Entries are consumed (deleted) on demand.
	revDeps map[*ir.Object][]*ir.Object

	// Lazy store/call activation: tracked statements have their pointer
	// operand demanded but fire only when the sweep finds that pointer
	// reaching a demanded object (stores) or a wanted function (calls).
	pendingStores []*ir.Stmt
	pendingCalls  []*ir.Stmt
	wantFuncs     map[*ir.Object]bool // function objects with demanded params

	activated         map[*ir.Stmt]bool
	storesOn, callsOn bool
	poisoned          bool
	stats             DemandStats
}

// NewDemand builds a demand engine over the program. budget bounds the
// number of statement activations any query sequence may accumulate before
// queries fail with ErrDemandBudget (<= 0 means unlimited).
//
// Options.UseUnknown is rejected by construction (Result.Misuses is a
// whole-program observable a slice cannot reproduce); Limits are ignored —
// governance of a demand query is its context plus the budget.
func NewDemand(prog *ir.Program, strat Strategy, opts Options, budget int) *Demand {
	opts.UseUnknown = false
	opts.Limits = Limits{}
	s := newSolver(context.Background(), prog, strat, opts)
	s.waves = false
	// The prepass models the full static graph, but a demand solver only
	// materializes the demanded slice of it; the interner's epochs hang off
	// wave barriers, which the demand pump never reaches. Disable both.
	s.prep, s.intern = nil, nil
	d := &Demand{
		s:           s,
		budget:      budget,
		demanded:    make(map[*ir.Object]bool),
		byDst:       make(map[*ir.Object][]*ir.Stmt),
		addrTaken:   make(map[*ir.Object]bool),
		paramOwner:  make(map[*ir.Object]*ir.Object),
		storesInto:  make(map[*ir.Object][]*ir.Stmt),
		callsToFunc: make(map[*ir.Object][]*ir.Stmt),
		wantFuncs:   make(map[*ir.Object]bool),
		revDeps:     make(map[*ir.Object][]*ir.Object),
		activated:   make(map[*ir.Stmt]bool, len(prog.Stmts)),
	}
	d.stats.TotalStmts = len(prog.Stmts)
	s.noteEdge = d.noteEdgeHook
	var stores, calls []*ir.Stmt
	for _, st := range prog.Stmts {
		switch st.Op {
		case ir.OpAddrOf:
			d.byDst[st.Dst] = append(d.byDst[st.Dst], st)
			d.addrTaken[st.Src] = true
		case ir.OpCopy, ir.OpAddrField, ir.OpLoad, ir.OpPtrArith:
			d.byDst[st.Dst] = append(d.byDst[st.Dst], st)
		case ir.OpStore, ir.OpMemCopy:
			stores = append(stores, st)
		case ir.OpCall:
			calls = append(calls, st)
			if st.Dst != nil {
				d.byDst[st.Dst] = append(d.byDst[st.Dst], st)
			}
		}
	}
	for _, fn := range prog.Funcs {
		if fn.Obj == nil {
			continue
		}
		for _, p := range fn.Params {
			if p != nil {
				d.paramOwner[p] = fn.Obj
			}
		}
		if fn.Varargs != nil {
			d.paramOwner[fn.Varargs] = fn.Obj
		}
	}
	// Split stores and calls into statically resolved (pointer operand is a
	// single-definition AddrOf temp, so the target is known without
	// solving) and dynamic (tracked lazily, fired by the sweep).
	for _, st := range stores {
		if o := d.staticTarget(st.Ptr); o != nil {
			d.storesInto[o] = append(d.storesInto[o], st)
		} else {
			d.dynStores = append(d.dynStores, st)
		}
	}
	for _, st := range calls {
		if o := d.staticTarget(st.Ptr); o != nil && o.Kind == ir.ObjFunc {
			d.callsToFunc[o] = append(d.callsToFunc[o], st)
		} else {
			d.dynCalls = append(d.dynCalls, st)
		}
	}
	return d
}

// staticTarget resolves a pointer operand to its one possible pointee, or
// nil when the pointer is computed. A normalization temp written by exactly
// one statement — an AddrOf — and never address-taken itself can only ever
// point to that AddrOf's source: temps are call-site/expression-local, so
// no store, call binding or second definition can widen the set.
func (d *Demand) staticTarget(p *ir.Object) *ir.Object {
	if p == nil || !p.IsTemp() || d.addrTaken[p] || d.paramOwner[p] != nil {
		return nil
	}
	defs := d.byDst[p]
	if len(defs) != 1 || defs[0].Op != ir.OpAddrOf {
		return nil
	}
	return defs[0].Src
}

// Poisoned reports whether a canceled or budget-tripped query froze the
// engine. A poisoned engine answers no further queries; the owner discards
// it (and rebuilds, or falls back to the exhaustive solver).
func (d *Demand) Poisoned() bool { return d.poisoned }

// Stats returns the cumulative slice counters.
func (d *Demand) Stats() DemandStats {
	st := d.stats
	st.CellsVisited = d.s.table.Len()
	return st
}

// noteEdgeHook observes one deduplicated copy edge (see solver.noteEdge).
func (d *Demand) noteEdgeHook(dst, src *ir.Object) {
	if d.demanded[dst] {
		d.demand(src)
	} else {
		d.revDeps[dst] = append(d.revDeps[dst], src)
	}
}

// demand marks an object's cells as needed and queues its expansion.
func (d *Demand) demand(o *ir.Object) {
	if o == nil || d.demanded[o] {
		return
	}
	d.demanded[o] = true
	d.queue = append(d.queue, o)
}

// activate seeds one statement (idempotently) and demands its premise
// operands — the pointers whose points-to sets gate the statement's rule.
func (d *Demand) activate(st *ir.Stmt) error {
	if d.activated[st] {
		return nil
	}
	d.activated[st] = true
	d.stats.StmtsActivated++
	if d.budget > 0 && d.stats.StmtsActivated > d.budget {
		d.poisoned = true
		return ErrDemandBudget
	}
	d.s.initStmt(st)
	switch st.Op {
	case ir.OpAddrField, ir.OpLoad, ir.OpCall:
		d.demand(st.Ptr)
	case ir.OpStore:
		if st.Src != nil {
			d.demand(st.Ptr)
		}
	case ir.OpMemCopy:
		d.demand(st.Ptr)
		d.demand(st.Src)
	case ir.OpPtrArith:
		d.demand(st.Src)
	}
	return nil
}

// expand activates everything the newly demanded object requires.
func (d *Demand) expand(o *ir.Object) error {
	d.stats.ObjectsDemanded++
	for _, st := range d.byDst[o] {
		if err := d.activate(st); err != nil {
			return err
		}
	}
	// Stores with a statically known target fire exactly when that target
	// is demanded; the rest are tracked once any address-taken object is
	// demanded, and fired by the sweep when their pointer's points-to set
	// reaches a demanded object.
	for _, st := range d.storesInto[o] {
		if err := d.activate(st); err != nil {
			return err
		}
	}
	if d.addrTaken[o] && !d.storesOn {
		d.storesOn = true
		for _, st := range d.dynStores {
			d.track(st, &d.pendingStores)
		}
	}
	// Same split for calls: direct calls to the demanded parameter's
	// function fire immediately, indirect calls are tracked and fired when
	// their function pointer reaches a wanted function.
	if fo := d.paramOwner[o]; fo != nil && !d.wantFuncs[fo] {
		d.wantFuncs[fo] = true
		for _, st := range d.callsToFunc[fo] {
			if err := d.activate(st); err != nil {
				return err
			}
		}
		if !d.callsOn {
			d.callsOn = true
			for _, st := range d.dynCalls {
				d.track(st, &d.pendingCalls)
			}
		}
	}
	if deps := d.revDeps[o]; deps != nil {
		delete(d.revDeps, o)
		for _, src := range deps {
			d.demand(src)
		}
	}
	return nil
}

// track demands a statement's pointer operand and parks the statement for
// the sweep; a statement with no pointer operand just stays parked (it can
// never become eligible, and an already-activated one is skipped here and
// again by activate's idempotence).
func (d *Demand) track(st *ir.Stmt, pending *[]*ir.Stmt) {
	if d.activated[st] {
		return
	}
	d.demand(st.Ptr)
	*pending = append(*pending, st)
}

// sweep activates every tracked store whose pointer reaches a demanded
// object and every tracked call whose pointer reaches a wanted function,
// returning how many statements fired.
func (d *Demand) sweep() (int, error) {
	fired := 0
	stores := d.pendingStores[:0]
	for _, st := range d.pendingStores {
		switch {
		case d.activated[st]:
			// Fired through byDst (a call's Dst) or an earlier sweep pass.
		case d.reaches(st.Ptr, d.demanded):
			if err := d.activate(st); err != nil {
				return fired, err
			}
			fired++
		default:
			stores = append(stores, st)
		}
	}
	d.pendingStores = stores
	calls := d.pendingCalls[:0]
	for _, st := range d.pendingCalls {
		switch {
		case d.activated[st]:
		case d.reaches(st.Ptr, d.wantFuncs):
			if err := d.activate(st); err != nil {
				return fired, err
			}
			fired++
		default:
			calls = append(calls, st)
		}
	}
	d.pendingCalls = calls
	return fired, nil
}

// reaches reports whether the pointer's current points-to set contains a
// cell of any object in want.
func (d *Demand) reaches(p *ir.Object, want map[*ir.Object]bool) bool {
	if p == nil {
		return false
	}
	s := d.s
	id := s.find(s.normID(p))
	hit := false
	s.pts[id].Iterate(func(t CellID) {
		if !hit && want[s.table.Cell(t).Obj] {
			hit = true
		}
	})
	return hit
}

// Query drives the slice containing objs to fixpoint: after a nil return,
// every cell of every demanded object holds exactly its full-fixpoint
// points-to set. Cancellation (via ctx) and a tripped budget poison the
// engine — partially propagated state is not resumable — and return the
// classified error; the memoized state of earlier completed queries is
// never served from a poisoned engine, because the owner discards it.
func (d *Demand) Query(ctx context.Context, objs ...*ir.Object) error {
	if d.poisoned {
		if d.s.stop != nil {
			return d.s.stop.AsError()
		}
		return ErrDemandBudget
	}
	d.stats.Queries++
	fresh := false
	for _, o := range objs {
		if o != nil && !d.demanded[o] {
			fresh = true
			d.demand(o)
		}
	}
	if !fresh && len(d.s.dirty) == 0 {
		d.stats.MemoHits++
		return nil
	}
	return d.pump(ctx)
}

// pump alternates slice expansion, the solver's propagation loop, and the
// lazy store/call sweep until all three are quiescent.
func (d *Demand) pump(ctx context.Context) error {
	s := d.s
	s.ctx = ctx
	for {
		for len(d.queue) > 0 {
			if s.checkCtx(); s.stop != nil {
				break
			}
			o := d.queue[len(d.queue)-1]
			d.queue = d.queue[:len(d.queue)-1]
			if err := d.expand(o); err != nil {
				return err
			}
		}
		s.runLoop()
		if s.stop != nil {
			// Cancellation freezes the solver permanently (addFact refuses
			// new facts); the worklist state cannot be resumed soundly.
			d.poisoned = true
			return s.stop.AsError()
		}
		fired, err := d.sweep()
		if err != nil {
			return err
		}
		if fired == 0 && len(d.queue) == 0 && len(s.dirty) == 0 {
			return nil
		}
	}
}

// PointsToObj returns the points-to set of the object's base cell
// (Normalize(obj, nil)), equal at slice fixpoint to the exhaustive
// Result.PointsTo for every demanded object. The returned set is freshly
// allocated.
func (d *Demand) PointsToObj(obj *ir.Object) CellSet {
	s := d.s
	id := s.normID(obj)
	set := &s.pts[id]
	cs := make(CellSet, set.Len())
	set.Iterate(func(t CellID) { cs[s.table.Cell(t)] = struct{}{} })
	return cs
}
