package core
