package core

import (
	"runtime"
	"slices"
)

// This file is the hash-consed points-to-set pool: a per-solve table that
// detects structurally-equal Bits values and makes the cells share one
// allocation, with copy-on-write when a sharing cell mutates.
//
// Inclusion-based fixpoints converge with massive set duplication — every
// cell downstream of a copy chain ends with the same targets — so at scale
// the dominant live allocation is N identical block slices. Interning runs
// as an epoch at each wave barrier (and once more when the solve finishes):
// cells touched during the wave are hashed over their exact block
// representation and re-pointed at the first allocation seen with equal
// content. Epochs happen only at deterministic points on the solver
// goroutine, so the parallel executor's observables are unaffected.
//
// The sharing discipline is a single invariant: a cell whose shared flag is
// set never mutates its Bits in place. The three mutation sites (addFact,
// mergeFrom, and the parallel executor's mergeShard) check sharedSet first
// and either prove the mutation a no-op (membership / subsumption — the
// common case around converged chains, and the reason interning saves time
// as well as space) or clone through cowSet. Shared allocations are likewise
// never recycled into the Bits free pool (mergeCells guards its one recycle
// site), since pool reuse would rewrite blocks other cells still read.
//
// Equality is over the exact representation (block list and population),
// not the abstract set: Remove can leave zero words behind, and treating
// those as equal to a compacted twin would make "hash equal, content equal"
// depend on history. Exact equality keeps the check two comparisons per
// block with no normalization pass.
//
// Table entries are registrations, not truths: a registered cell can mutate
// later (clearing its flag or not even having one), so a candidate's content
// is re-verified at alias time and stale entries are simply skipped. A
// mutated cell re-registers under its new hash at the next epoch that sees
// it dirty.
type bitsIntern struct {
	tab    map[uint64][]CellID // content hash → cells registered with it
	shared []bool              // per-cell: blocks alias an interned allocation
	buf    []CellID            // reusable epoch scratch (find-mapped, sorted)
}

func newBitsIntern() *bitsIntern {
	return &bitsIntern{tab: make(map[uint64][]CellID, 256)}
}

// bitsHash is FNV-1a over the exact block representation.
func bitsHash(b *Bits) uint64 {
	h := uint64(14695981039346656037)
	for i := range b.blocks {
		h = (h ^ uint64(b.blocks[i].idx)) * 1099511628211
		h = (h ^ b.blocks[i].word) * 1099511628211
	}
	return h
}

// bitsEqual reports exact representation equality.
func bitsEqual(a, b *Bits) bool {
	if a.n != b.n || len(a.blocks) != len(b.blocks) {
		return false
	}
	for i := range a.blocks {
		if a.blocks[i] != b.blocks[i] {
			return false
		}
	}
	return true
}

// sharedSet reports whether c's blocks alias an interned allocation and must
// not be mutated in place. Cells past the flag array's end were interned
// into the cell table after the last epoch, so they cannot be sharing.
// Safe from parallel workers: the flag is only set at barriers, and only
// cleared (via cowSet) by the worker that owns c.
func (s *solver) sharedSet(c CellID) bool {
	return s.intern != nil && int(c) < len(s.intern.shared) && s.intern.shared[c]
}

// cowSet gives c a private copy of its (currently shared) blocks. The clone
// is exact-length: a set being mutated right now usually grows through the
// normal append path immediately after.
func (s *solver) cowSet(c CellID) {
	b := &s.pts[c]
	nb := make([]bitsBlock, len(b.blocks))
	copy(nb, b.blocks)
	b.blocks = nb
	s.intern.shared[c] = false
}

// internEpoch is one interning pass over the cells dirtied by the wave that
// just completed. cells may contain duplicates and merged-away members; it
// is find-mapped, sorted and deduplicated here (the caller's buffer is dead
// until the next wave truncates it, so sorting in place is fine).
func (s *solver) internEpoch(cells []CellID) {
	it := s.intern
	s.stats.InternEpochs++
	if n := len(s.pts); len(it.shared) < n {
		grown := make([]bool, n)
		copy(grown, it.shared)
		it.shared = grown
	}
	buf := it.buf[:0]
	for _, c := range cells {
		buf = append(buf, s.find(c))
	}
	slices.Sort(buf)
	for i, c := range buf {
		if i > 0 && buf[i-1] == c {
			continue
		}
		s.internCell(c)
	}
	it.buf = buf[:0]
}

// internFinal is the terminal pass over the whole cell table: merged-away
// members drop their dead pre-merge storage (queries read the
// representative through Result.redirect), and every representative's set
// is interned so the retained Result holds one allocation per distinct
// value.
func (s *solver) internFinal() {
	it := s.intern
	s.stats.InternEpochs++
	if n := len(s.pts); len(it.shared) < n {
		grown := make([]bool, n)
		copy(grown, it.shared)
		it.shared = grown
	}
	if s.merged {
		for i := range s.pts {
			c := CellID(i)
			if s.find(c) != c {
				s.pts[i] = Bits{}
				it.shared[i] = false
			}
		}
	}
	for i := range s.pts {
		if s.merged && s.find(CellID(i)) != CellID(i) {
			continue
		}
		s.internCell(CellID(i))
	}
}

// internCell registers c's current content in the pool, or re-points c at an
// existing allocation with equal content, marking both ends shared.
func (s *solver) internCell(c CellID) {
	it := s.intern
	b := &s.pts[c]
	if b.n == 0 || it.shared[c] {
		// Shared cells are already canonical: their content cannot have
		// changed since the flag was set (mutation clears it via cowSet).
		return
	}
	h := bitsHash(b)
	for _, cd := range it.tab[h] {
		if cd == c {
			return // still registered with this exact content
		}
		o := &s.pts[cd]
		if len(o.blocks) > 0 && len(b.blocks) > 0 && &o.blocks[0] == &b.blocks[0] {
			// Already one allocation (e.g. both re-pointed before a flag
			// array regrowth): just restore the flags.
			it.shared[c], it.shared[cd] = true, true
			return
		}
		if !bitsEqual(b, o) {
			continue // stale registration or hash collision
		}
		s.stats.InternSets++
		s.stats.InternBytes += cap(b.blocks) * 16 // sizeof(bitsBlock)
		// Drop c's private allocation for the canonical one. Not recycled:
		// letting the GC take it is the point of the exercise — the free
		// pool would keep it live.
		b.blocks = o.blocks[:len(o.blocks):len(o.blocks)]
		it.shared[c], it.shared[cd] = true, true
		return
	}
	it.tab[h] = append(it.tab[h], c)
}

// peakSampleEvery is the classic worklist's drain cadence between peak-heap
// samples under Options.TrackPeakMem (wave mode samples at barriers
// instead). ReadMemStats is a stop-the-world operation, so the cadence errs
// coarse.
const peakSampleEvery = 4096

// samplePeak records the current live heap into WaveStats.PeakLiveBytes if
// it is the highest seen. No-op unless Options.TrackPeakMem is set.
func (s *solver) samplePeak() {
	if !s.opts.TrackPeakMem {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > s.stats.PeakLiveBytes {
		s.stats.PeakLiveBytes = ms.HeapAlloc
	}
}
