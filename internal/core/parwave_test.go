package core_test

// Tests for the parallel wave executor (parwave.go): the shard/steal/barrier
// schedule must be observable only through the ParWave* counters — fact
// dumps, TotalFacts, AvgDerefSetSize and the Figure-3 counters stay
// byte-identical to the sequential executor and to the map-based reference
// solver, corpus-wide, at any Parallelism and any GOMAXPROCS. Run with
// -race: the corpus differential doubles as the data-race probe for the
// shard ownership protocol.

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/frontend"
	"repro/internal/metrics"
)

// parallelCorpus loads the differential corpus (truncated under -short).
func parallelCorpus(t *testing.T) []string {
	t.Helper()
	names := corpus.SortedByGroup()
	if testing.Short() {
		names = names[:4]
	}
	return names
}

// TestParallelSolverMatchesSequential is the corpus-wide differential:
// every program × exact-edge strategy × Parallelism ∈ {2, 8} against both
// the sequential dense solver and AnalyzeReference.
func TestParallelSolverMatchesSequential(t *testing.T) {
	sawParallel := false
	for _, name := range parallelCorpus(t) {
		src, err := corpus.Source(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := frontend.Load(src, frontend.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, sname := range metrics.StrategyNames {
			t.Run(name+"/"+sname, func(t *testing.T) {
				mkStrat := func() core.Strategy {
					return metrics.NewStrategy(sname, res.Layout)
				}
				seqStrat := mkStrat()
				seq := core.Analyze(res.IR, seqStrat)
				refStrat := mkStrat()
				ref := core.AnalyzeReference(res.IR, refStrat, core.Options{})
				if seq.Incomplete != nil || ref.Incomplete != nil {
					t.Fatalf("unexpected incomplete run: seq=%v ref=%v",
						seq.Incomplete, ref.Incomplete)
				}
				seqDump := denseFactDump(seq)
				refDump := denseFactDump(ref)
				if seqDump != refDump {
					t.Fatal("sequential dense solver disagrees with reference")
				}
				for _, par := range []int{2, 8} {
					parStrat := mkStrat()
					got := core.AnalyzeWith(res.IR, parStrat, core.Options{Parallelism: par})
					if got.Incomplete != nil {
						t.Fatalf("par=%d: incomplete: %v", par, got.Incomplete)
					}
					if got.Wave.ParWaves > 0 {
						sawParallel = true
					}
					if d := denseFactDump(got); d != seqDump {
						t.Errorf("par=%d: fact dump differs from sequential:\n--- parallel ---\n%s--- sequential ---\n%s",
							par, d, seqDump)
					}
					if g, w := got.TotalFacts(), seq.TotalFacts(); g != w {
						t.Errorf("par=%d: TotalFacts=%d, sequential=%d", par, g, w)
					}
					if g, w := got.AvgDerefSetSize(), seq.AvgDerefSetSize(); g != w {
						t.Errorf("par=%d: AvgDerefSetSize=%v, sequential=%v", par, g, w)
					}
					if g, w := recorderLine(parStrat.Recorder()), recorderLine(seqStrat.Recorder()); g != w {
						t.Errorf("par=%d: Figure-3 counters parallel(%s) sequential(%s)", par, g, w)
					}
				}
			})
		}
	}
	if !sawParallel {
		t.Error("no corpus run engaged the parallel executor (ParWaves == 0 everywhere)")
	}
}

// TestParallelDifferentialGOMAXPROCS re-runs the differential on the
// largest corpus program at GOMAXPROCS ∈ {1, 2, 8}: fact sets must be
// identical at every setting — the executor's shard layout is derived from
// Options.Parallelism, never from the runtime's processor count.
func TestParallelDifferentialGOMAXPROCS(t *testing.T) {
	src, err := corpus.Source("compiler")
	if err != nil {
		t.Fatal(err)
	}
	res, err := frontend.Load(src, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, sname := range metrics.StrategyNames {
		seqStrat := metrics.NewStrategy(sname, res.Layout)
		seq := core.Analyze(res.IR, seqStrat)
		seqDump := denseFactDump(seq)
		seqRec := recorderLine(seqStrat.Recorder())
		for _, gmp := range []int{1, 2, 8} {
			runtime.GOMAXPROCS(gmp)
			parStrat := metrics.NewStrategy(sname, res.Layout)
			got := core.AnalyzeWith(res.IR, parStrat, core.Options{Parallelism: 8})
			if got.Incomplete != nil {
				t.Fatalf("%s gomaxprocs=%d: incomplete: %v", sname, gmp, got.Incomplete)
			}
			if d := denseFactDump(got); d != seqDump {
				t.Errorf("%s gomaxprocs=%d: fact dump differs from sequential", sname, gmp)
			}
			if g := recorderLine(parStrat.Recorder()); g != seqRec {
				t.Errorf("%s gomaxprocs=%d: Figure-3 counters %s, sequential %s", sname, gmp, g, seqRec)
			}
		}
	}
}

// TestParallelDeterministicCounters pins the determinism contract for the
// schedule counters: at fixed Parallelism, repeated runs agree on every
// WaveStats field except ParSteals (the one documented schedule-dependent
// counter), and on Steps.
func TestParallelDeterministicCounters(t *testing.T) {
	src, err := corpus.Source("compiler")
	if err != nil {
		t.Fatal(err)
	}
	res, err := frontend.Load(src, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	normalize := func(w core.WaveStats) core.WaveStats {
		w.ParSteals = 0
		return w
	}
	for _, sname := range metrics.StrategyNames {
		var first *core.Result
		for run := 0; run < 3; run++ {
			got := core.AnalyzeWith(res.IR, metrics.NewStrategy(sname, res.Layout),
				core.Options{Parallelism: 8})
			if got.Incomplete != nil {
				t.Fatalf("%s run %d: incomplete: %v", sname, run, got.Incomplete)
			}
			if first == nil {
				first = got
				if sname != "offsets" && got.Wave.ParWaves == 0 {
					t.Errorf("%s: compiler solve never went parallel: %+v", sname, got.Wave)
				}
				continue
			}
			if a, b := normalize(got.Wave), normalize(first.Wave); a != b {
				t.Errorf("%s run %d: WaveStats differ across runs:\n%+v\n%+v", sname, run, a, b)
			}
			if got.Steps != first.Steps {
				t.Errorf("%s run %d: Steps=%d, first run %d", sname, run, got.Steps, first.Steps)
			}
		}
	}
}

// atomicCountdownCtx is countdownCtx's race-safe sibling: workers poll Err
// concurrently during a parallel wave, so the countdown must be atomic.
type atomicCountdownCtx struct {
	context.Context
	polls atomic.Int64
}

func (c *atomicCountdownCtx) Err() error {
	if c.polls.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func (c *atomicCountdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

// TestParallelCancellationMidWave cancels parallel solves at a sweep of
// countdown depths. Every stopped run must report a canceled Incomplete
// whose recorded facts are a subset of the reference fixpoint (partial but
// sound — dropped pendings and rule work only lose derivations), and at
// least one cancellation must land after a parallel wave ran.
func TestParallelCancellationMidWave(t *testing.T) {
	src, err := corpus.Source("compiler")
	if err != nil {
		t.Fatal(err)
	}
	res, err := frontend.Load(src, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	strat := core.NewCIS()
	full := core.AnalyzeReference(res.IR, strat, core.Options{})
	if full.Incomplete != nil {
		t.Fatal("reference run incomplete")
	}
	stopped, midWave := false, false
	for polls := int64(1); polls <= 4096; polls *= 4 {
		ctx := &atomicCountdownCtx{Context: context.Background()}
		ctx.polls.Store(polls)
		// NoPrepass keeps the frontiers above parMinFrontier so a parallel
		// wave actually runs before the countdown lands.
		lim := core.AnalyzeContext(ctx, res.IR, core.NewCIS(), core.Options{Parallelism: 8, NoPrepass: true})
		if lim.Incomplete == nil {
			continue // solved before the countdown expired
		}
		stopped = true
		if !lim.Incomplete.Canceled() {
			t.Fatalf("polls=%d: reason = %s, want canceled", polls, lim.Incomplete.Reason)
		}
		if lim.Wave.ParWaves > 0 {
			midWave = true
		}
		lim.Cells(func(c core.Cell, set core.CellSet) {
			fullSet := full.PointsToCell(c)
			for tgt := range set {
				if !fullSet.Has(tgt) {
					t.Errorf("polls=%d: partial fact %s -> %s not in reference fixpoint", polls, c, tgt)
				}
			}
		})
	}
	if !stopped {
		t.Error("no countdown produced a canceled parallel solve")
	}
	if !midWave {
		t.Error("no cancellation landed after a parallel wave (ParWaves == 0 in every stopped run)")
	}
}

// TestParallelSmallFrontierFallback: tiny programs never cross
// parMinFrontier, so a Parallelism > 1 solve must still work (and stay on
// the sequential walk) — the executor is an optimization, not a mode.
func TestParallelSmallFrontierFallback(t *testing.T) {
	r := loadIR(t, mutualSrc(), nil)
	for name, strat := range exactStrategies() {
		res := core.AnalyzeWith(r.IR, strat, core.Options{Parallelism: 8})
		if res.Incomplete != nil {
			t.Fatalf("%s: incomplete: %v", name, res.Incomplete)
		}
		if res.Wave.ParWaves != 0 {
			t.Errorf("%s: tiny frontier went parallel: %+v", name, res.Wave)
		}
		if got := fmt.Sprintf("%s %s", targets(t, res, r.IR, "p"), targets(t, res, r.IR, "q")); got != "{a, b} {a, b}" {
			t.Errorf("%s: p q = %s, want {a, b} {a, b}", name, got)
		}
	}
}
