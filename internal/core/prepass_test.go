package core_test

// Unit tests for the offline constraint-reduction prepass (prepass.go):
// hash-value numbering must fold copy chains, equal-signature siblings and
// statically-visible cycles before the fixpoint, while staying invisible in
// every observable except WaveStats — the corpus-wide guarantee lives in
// prepass_diff_test.go.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

// chainSrc builds one seeded copy chain: p0 = &a, then p1 = p0, ...,
// p<n-1> = p<n-2>. Every link converges to {a}, so HVN folds the whole
// chain into one class.
func chainSrc(n int) string {
	var b strings.Builder
	b.WriteString("int a;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "int *p%d;\n", i)
	}
	b.WriteString("void f(void) {\n\tp0 = &a;\n")
	for i := 1; i < n; i++ {
		fmt.Fprintf(&b, "\tp%d = p%d;\n", i, i-1)
	}
	b.WriteString("}\n")
	return b.String()
}

func TestPrepassCollapsesCopyChain(t *testing.T) {
	const n = 20
	r := loadIR(t, chainSrc(n), nil)
	for name, strat := range exactStrategies() {
		res := core.Analyze(r.IR, strat)
		if res.Incomplete != nil {
			t.Fatalf("%s: incomplete: %v", name, res.Incomplete)
		}
		// The chain inherits p0's value number link by link, so all n cells
		// land in one class and the online SCC pass has nothing left to find.
		if res.Wave.PrepCollapsed < n-1 {
			t.Errorf("%s: collapsed %d cells, want >= %d: %+v",
				name, res.Wave.PrepCollapsed, n-1, res.Wave)
		}
		if res.Wave.PrepChains < n-1 {
			t.Errorf("%s: chain rule fired %d times, want >= %d",
				name, res.Wave.PrepChains, n-1)
		}
		if res.Wave.SCCsFound != 0 {
			t.Errorf("%s: online pass found SCCs in a chain: %+v", name, res.Wave)
		}
		for i := 0; i < n; i++ {
			if got := targets(t, res, r.IR, fmt.Sprintf("p%d", i)); got != "{a}" {
				t.Errorf("%s: p%d -> %s, want {a}", name, i, got)
			}
		}
	}
}

func TestPrepassMergesEqualSignatures(t *testing.T) {
	src := `
int a;
int *p, *q, *r;
void f(void) {
	p = &a;
	q = &a;
	r = &a;
}
`
	r := loadIR(t, src, nil)
	for name, strat := range exactStrategies() {
		res := core.Analyze(r.IR, strat)
		// p, q, r share the signature (directs = {a}, no in-edges): one
		// hash-consed class, two cells folded into the representative.
		if res.Wave.PrepClasses < 1 || res.Wave.PrepCollapsed < 2 {
			t.Errorf("%s: equal signatures not merged: %+v", name, res.Wave)
		}
		for _, v := range []string{"p", "q", "r"} {
			if got := targets(t, res, r.IR, v); got != "{a}" {
				t.Errorf("%s: %s -> %s, want {a}", name, v, got)
			}
		}
	}
}

func TestPrepassCollapsesStaticCycle(t *testing.T) {
	r := loadIR(t, mutualSrc(), nil)
	for name, strat := range exactStrategies() {
		res := core.Analyze(r.IR, strat)
		// The p<->q cycle is statically visible, so the prepass folds it and
		// detectCycles never fires; the answer is the converged union.
		if res.Wave.PrepCollapsed < 1 {
			t.Errorf("%s: static cycle not collapsed offline: %+v", name, res.Wave)
		}
		if res.Wave.SCCsFound != 0 {
			t.Errorf("%s: cycle left for the online pass: %+v", name, res.Wave)
		}
		if p, q := targets(t, res, r.IR, "p"), targets(t, res, r.IR, "q"); p != "{a, b}" || q != "{a, b}" {
			t.Errorf("%s: p=%s q=%s, want {a, b} for both", name, p, q)
		}
	}
}

func TestPrepassFoldsProvablyEmptyCells(t *testing.T) {
	src := `
int a;
int *dead0, *dead1, *dead2;
int *live;
void f(void) {
	live = &a;
	dead1 = dead0;
	dead2 = dead1;
}
`
	r := loadIR(t, src, nil)
	for name, strat := range exactStrategies() {
		res := core.Analyze(r.IR, strat)
		if res.Incomplete != nil {
			t.Fatalf("%s: incomplete: %v", name, res.Incomplete)
		}
		// dead0 has no facts and no in-edges (vn 0); dropping vn-0 sources
		// from signatures pulls dead1/dead2 into the same provably-empty
		// class, and the merge is observationally silent: all stay empty.
		for _, v := range []string{"dead0", "dead1", "dead2"} {
			if got := targets(t, res, r.IR, v); got != "{}" {
				t.Errorf("%s: %s -> %s, want {}", name, v, got)
			}
		}
		if got := targets(t, res, r.IR, "live"); got != "{a}" {
			t.Errorf("%s: live -> %s, want {a}", name, got)
		}
	}
}

func TestPrepassInheritsThroughIndirectSource(t *testing.T) {
	src := `
int a;
int *x;
int **p;
int *q, *r, *s;
void f(void) {
	x = &a;
	p = &x;
	q = *p;
	r = q;
	s = r;
}
`
	rr := loadIR(t, src, nil)
	for name, strat := range exactStrategies() {
		res := core.Analyze(rr.IR, strat)
		// q is a load destination (indirect), but r and s hang off it by
		// exact copies: the lazy unique number registers q as the founding
		// member, so the chain collapses INTO q.
		if res.Wave.PrepCollapsed < 2 || res.Wave.PrepChains < 2 {
			t.Errorf("%s: chain behind load not folded: %+v", name, res.Wave)
		}
		for _, v := range []string{"q", "r", "s"} {
			if got := targets(t, res, rr.IR, v); got != "{a}" {
				t.Errorf("%s: %s -> %s, want {a}", name, v, got)
			}
		}
	}
}

func TestPrepassDisabledUnderLimitsAndOffsets(t *testing.T) {
	r := loadIR(t, chainSrc(10), nil)
	lim := core.AnalyzeWith(r.IR, core.NewCIS(),
		core.Options{Limits: core.Limits{MaxSteps: 1 << 20}})
	if lim.Wave.PrepClasses != 0 || lim.Wave.PrepCollapsed != 0 || lim.Wave.InternEpochs != 0 {
		t.Errorf("limited run engaged the prepass/interner: %+v", lim.Wave)
	}
	off := core.Analyze(r.IR, core.NewOffsets(r.Layout))
	if off.Wave.PrepClasses != 0 || off.Wave.PrepCollapsed != 0 {
		t.Errorf("offsets run engaged the prepass: %+v", off.Wave)
	}
}

// The prep_* counters are a pure function of (program, strategy): repeat
// runs and parallel runs must report identical numbers, which is what lets
// the regression baseline pin them on sequential evaluations.
func TestPrepassCountersDeterministic(t *testing.T) {
	r := loadIR(t, chainSrc(30), nil)
	for name, strat := range exactStrategies() {
		seq1 := core.Analyze(r.IR, strat)
		seq2 := core.Analyze(r.IR, strat)
		par := core.AnalyzeWith(r.IR, strat, core.Options{Parallelism: 8})
		for label, res := range map[string]*core.Result{"repeat": seq2, "parallel": par} {
			if res.Wave.PrepClasses != seq1.Wave.PrepClasses ||
				res.Wave.PrepCollapsed != seq1.Wave.PrepCollapsed ||
				res.Wave.PrepChains != seq1.Wave.PrepChains {
				t.Errorf("%s/%s: prep counters drifted: first %+v, %s %+v",
					name, label, seq1.Wave, label, res.Wave)
			}
		}
	}
}
