package core

import (
	"sort"
	"testing"
)

// FuzzBitsIntern differentially tests the hash-consed pool against a naive
// private-copy model: a byte stream drives an interleaving of cell
// mutations (through the same COW discipline the solver's mutation sites
// use) and interning epochs over a small cell table. After every operation,
// every cell's content must equal the model — which catches both equality
// bugs (aliasing two unequal sets) and aliasing bugs (a copy-on-write
// mutation bleeding into another cell sharing the allocation).
func FuzzBitsIntern(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})                            // one add
	f.Add([]byte{0, 1, 2, 2, 0, 0, 0, 1, 2})          // add, epoch, re-add same
	f.Add([]byte{0, 0, 5, 0, 1, 5, 2, 0, 1, 1, 0, 1}) // equal sets, epoch, union
	f.Add([]byte{0, 2, 7, 0, 3, 7, 3, 0, 0, 0, 2, 9}) // share then diverge via COW
	f.Fuzz(func(t *testing.T, data []byte) {
		const ncells = 6
		s := &solver{pts: make([]Bits, ncells), intern: newBitsIntern()}
		model := make([]map[CellID]bool, ncells)
		for i := range model {
			model[i] = make(map[CellID]bool)
		}
		check := func(step int) {
			t.Helper()
			for c := 0; c < ncells; c++ {
				got := make(map[CellID]bool, s.pts[c].Len())
				s.pts[c].Iterate(func(id CellID) { got[id] = true })
				if len(got) != len(model[c]) {
					t.Fatalf("step %d: cell %d has %d targets, model %d",
						step, c, len(got), len(model[c]))
				}
				for id := range model[c] {
					if !got[id] {
						t.Fatalf("step %d: cell %d lost target %d", step, c, id)
					}
				}
			}
		}
		all := make([]CellID, ncells)
		for i := range all {
			all[i] = CellID(i)
		}
		for i := 0; i+2 < len(data); i += 3 {
			op, a, b := data[i], CellID(data[i+1])%ncells, data[i+2]
			switch op % 4 {
			case 0: // add one target, COW-guarded like addFact
				tgt := CellID(b) // spread over a few blocks via high bits
				if s.sharedSet(a) {
					if s.pts[a].Has(tgt) {
						break
					}
					s.cowSet(a)
				}
				s.pts[a].Add(tgt)
				model[a][tgt] = true
			case 1: // union src into dst, COW-guarded like mergeFrom
				src := CellID(b) % ncells
				sb := &s.pts[src]
				if s.sharedSet(a) {
					if sb.n <= s.pts[a].n && s.pts[a].subsumes(sb) {
						break
					}
					s.cowSet(a)
				}
				s.pts[a].UnionInPlace(sb)
				for id := range model[src] {
					model[a][id] = true
				}
			case 2: // epoch over a pair (duplicates allowed by contract)
				s.internEpoch([]CellID{a, CellID(b) % ncells, a})
			case 3: // epoch over the whole table
				s.internEpoch(all)
			}
			check(i)
		}
		s.internFinal()
		check(len(data))

		// The safety invariant behind copy-on-write: whenever two cells alias
		// one allocation, BOTH must carry the shared flag — a missing flag
		// would let an in-place mutation bleed into the other cell. (Pool
		// reachability is deliberately not an invariant: table entries are
		// registrations, not truths, and stale ones are skipped at alias
		// time.)
		for c := 0; c < ncells; c++ {
			for d := c + 1; d < ncells; d++ {
				cb, db := &s.pts[c], &s.pts[d]
				if len(cb.blocks) == 0 || len(db.blocks) == 0 || &cb.blocks[0] != &db.blocks[0] {
					continue
				}
				if !s.sharedSet(CellID(c)) || !s.sharedSet(CellID(d)) {
					t.Fatalf("cells %d and %d alias one allocation but flags are %v/%v",
						c, d, s.sharedSet(CellID(c)), s.sharedSet(CellID(d)))
				}
			}
		}

		// Determinism sanity: a second internFinal is idempotent.
		before := make([]string, ncells)
		for c := 0; c < ncells; c++ {
			before[c] = dumpBits(&s.pts[c])
		}
		s.internFinal()
		for c := 0; c < ncells; c++ {
			if dumpBits(&s.pts[c]) != before[c] {
				t.Fatalf("second internFinal changed cell %d", c)
			}
		}
	})
}

func dumpBits(b *Bits) string {
	ids := make([]int, 0, b.Len())
	b.Iterate(func(id CellID) { ids = append(ids, int(id)) })
	sort.Ints(ids)
	out := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		out = append(out, byte(id), byte(id>>8), ',')
	}
	return string(out)
}
