package core_test

import (
	"testing"

	"repro/internal/cc/layout"
	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/ir"
)

// Additional solver and strategy coverage beyond the paper's worked
// examples in solver_test.go.

func TestExpandedSizes(t *testing.T) {
	src := `
struct Inner { int *a; int *b; } ;
struct Outer { struct Inner in; int *c; } o;
union U { int *u1; char *u2; } u;
int x, *p;
void f(void) {
	p = &x;
	o.c = &x;
	u.u1 = &x;
}`
	r := loadIR(t, src, nil)
	o := objByName(t, r.IR, "o")
	u := objByName(t, r.IR, "u")
	x := objByName(t, r.IR, "x")

	ca := core.NewCollapseAlways()
	if got := ca.ExpandedSize(core.Cell{Obj: o}); got != 3 {
		t.Errorf("collapse ExpandedSize(o) = %d, want 3 leaves", got)
	}
	if got := ca.ExpandedSize(core.Cell{Obj: u}); got != 2 {
		t.Errorf("collapse ExpandedSize(u) = %d, want 2", got)
	}
	if got := ca.ExpandedSize(core.Cell{Obj: x}); got != 1 {
		t.Errorf("collapse ExpandedSize(x) = %d, want 1", got)
	}

	cis := core.NewCIS()
	leaf := cis.Normalize(o, ir.Path{"c"})
	if got := cis.ExpandedSize(leaf); got != 1 {
		t.Errorf("cis ExpandedSize(o.c) = %d, want 1", got)
	}
	// The collapsed union cell stands for both members.
	ucell := cis.Normalize(u, nil)
	if got := cis.ExpandedSize(ucell); got != 2 {
		t.Errorf("cis ExpandedSize(u) = %d, want 2", got)
	}

	off := core.NewOffsets(r.Layout)
	if got := off.ExpandedSize(core.Cell{Obj: o, Off: 8}); got != 1 {
		t.Errorf("offsets ExpandedSize = %d, want 1", got)
	}
}

func TestCellString(t *testing.T) {
	o := &ir.Object{ID: 1, Name: "v"}
	cases := []struct {
		c    core.Cell
		want string
	}{
		{core.Cell{Obj: o}, "v"},
		{core.Cell{Obj: o, Off: 8}, "v@8"},
		{core.Cell{Obj: o, Path: "a.b"}, "v.a.b"},
		{core.Cell{}, "<nil>"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("Cell.String() = %q, want %q", got, c.want)
		}
	}
}

func TestNormalizeFirstFieldDescent(t *testing.T) {
	src := `
struct In { int *deep; int *other; };
struct Mid { struct In in; int *m; };
struct Out { struct Mid mid; int *o; } obj;
int z;
void f(void) { obj.o = &z; }`
	r := loadIR(t, src, nil)
	obj := objByName(t, r.IR, "obj")

	cis := core.NewCIS()
	// A reference to the whole object normalizes to the innermost
	// first field.
	if got := cis.Normalize(obj, nil).String(); got != "obj.mid.in.deep" {
		t.Errorf("normalize(obj) = %q", got)
	}
	// A nested struct reference descends too.
	if got := cis.Normalize(obj, ir.Path{"mid"}).String(); got != "obj.mid.in.deep" {
		t.Errorf("normalize(obj.mid) = %q", got)
	}
	// A scalar field stays put.
	if got := cis.Normalize(obj, ir.Path{"o"}).String(); got != "obj.o" {
		t.Errorf("normalize(obj.o) = %q", got)
	}
}

func TestOffsetsGranularCoarsens(t *testing.T) {
	src := `
struct Pair { char tag; char tag2; int *p; } g;
int x, *r;
void f(void) {
	g.p = &x;
	r = ((struct Pair *)&g)->p;
}`
	r := loadIR(t, src, nil)
	g := objByName(t, r.IR, "g")

	fine := core.NewOffsetsGranular(r.Layout, 1)
	coarse := core.NewOffsetsGranular(r.Layout, 8)
	// tag and tag2 have distinct cells at granularity 1, shared at 8.
	c1a := fine.Normalize(g, ir.Path{"tag"})
	c1b := fine.Normalize(g, ir.Path{"tag2"})
	if c1a == c1b {
		t.Error("granularity 1 should separate tag and tag2")
	}
	c8a := coarse.Normalize(g, ir.Path{"tag"})
	c8b := coarse.Normalize(g, ir.Path{"tag2"})
	if c8a != c8b {
		t.Error("granularity 8 should merge tag and tag2")
	}
	// The analysis still finds x through the pointer field.
	res := core.Analyze(r.IR, core.NewOffsetsGranular(r.Layout, 8))
	rv := objByName(t, r.IR, "r")
	if got := targetObjs(res, rv); !got["x"] {
		t.Errorf("granular offsets lost x: %v", got)
	}
}

func TestNoPtrArithSmearOption(t *testing.T) {
	src := `
struct G { int *g1; int *g2; } g;
int x, y, **p, *r;
void f(void) {
	g.g1 = &x;
	g.g2 = &y;
	p = &g.g1;
	p = p + 1;
	r = *p;
}`
	r := loadIR(t, src, nil)
	rv := objByName(t, r.IR, "r")

	with := core.Analyze(r.IR, core.NewCIS())
	if got := targetObjs(with, rv); !got["y"] {
		t.Errorf("smear on: pts(r) = %v, want y included", keys(got))
	}
	without := core.AnalyzeWith(r.IR, core.NewCIS(), core.Options{NoPtrArithSmear: true})
	if got := targetObjs(without, rv); got["y"] {
		t.Errorf("smear off: pts(r) = %v, y must be absent", keys(got))
	}
}

func TestResultAPIs(t *testing.T) {
	src := "int x, *p;\nvoid f(void) { p = &x; }"
	r := loadIR(t, src, nil)
	res := core.Analyze(r.IR, core.NewCIS())
	p := objByName(t, r.IR, "p")

	cell := res.Strategy.Normalize(p, nil)
	set := res.PointsToCell(cell)
	if set.Len() != 1 {
		t.Fatalf("PointsToCell len = %d", set.Len())
	}
	count := 0
	res.Cells(func(c core.Cell, s core.CellSet) { count += s.Len() })
	if count != res.TotalFacts() {
		t.Errorf("Cells total %d != TotalFacts %d", count, res.TotalFacts())
	}
	sorted := set.Sorted()
	if len(sorted) != 1 || sorted[0].Obj.Name != "x" {
		t.Errorf("Sorted = %v", sorted)
	}
	if !set.Has(sorted[0]) {
		t.Error("Has(member) = false")
	}
}

func TestEmptyProgram(t *testing.T) {
	r := loadIR(t, "int main(void) { return 0; }", nil)
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		if res.TotalFacts() != 0 {
			t.Errorf("%s: facts = %d on pointer-free program", name, res.TotalFacts())
		}
		if res.AvgDerefSetSize() != 0 {
			t.Errorf("%s: avg = %v", name, res.AvgDerefSetSize())
		}
	}
}

func TestRecursiveStructChase(t *testing.T) {
	src := `
struct node { struct node *next; int *payload; };
int a, b;
void f(void) {
	struct node n1, n2, n3;
	n1.next = &n2;
	n2.next = &n3;
	n3.next = &n1;    /* cycle */
	n1.payload = &a;
	n3.payload = &b;
	int *r = n1.next->next->next->payload;
}`
	r := loadIR(t, src, nil)
	var rv *ir.Object
	for _, o := range r.IR.Objects {
		if o.Sym != nil && o.Sym.Name == "r" {
			rv = o
		}
	}
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		got := targetObjs(res, rv)
		// Flow-insensitively the chase reaches every node's payload.
		if !got["a"] && !got["b"] {
			t.Errorf("%s: pts(r) = %v", name, keys(got))
		}
	}
}

func TestKRFunctionEndToEnd(t *testing.T) {
	src := `
int *pick(p, q, which)
int *p, *q;
int which;
{
	if (which)
		return p;
	return q;
}
int x, y, *r;
void f(void) { r = pick(&x, &y, 1); }`
	r := loadIR(t, src, nil)
	rv := objByName(t, r.IR, "r")
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		got := targetObjs(res, rv)
		if !got["x"] || !got["y"] {
			t.Errorf("%s: pts(r) = %v, want {x,y} through the K&R function", name, keys(got))
		}
	}
}

func TestDerefThroughIntRoundTrip(t *testing.T) {
	// A pointer laundered through a long must keep its facts
	// (the paper: all variables' points-to sets are tracked).
	src := `
int x, *p, *q;
long stash;
void f(void) {
	p = &x;
	stash = (long)p;
	q = (int *)stash;
}`
	r := loadIR(t, src, nil)
	q := objByName(t, r.IR, "q")
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		got := targetObjs(res, q)
		if !got["x"] {
			t.Errorf("%s: pts(q) = %v, want x (laundered through long)", name, keys(got))
		}
	}
}

func TestNestedArrayOfStructAnalysis(t *testing.T) {
	src := `
struct E { int *v; };
struct T { struct E rows[4]; } tab;
int x, *r;
void f(void) {
	tab.rows[2].v = &x;
	r = tab.rows[0].v;
}`
	r := loadIR(t, src, nil)
	rv := objByName(t, r.IR, "r")
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		got := targetObjs(res, rv)
		// Single representative element: index 2 write is seen at index 0.
		if !got["x"] {
			t.Errorf("%s: pts(r) = %v, want x", name, keys(got))
		}
	}
}

func TestStoreThroughCastedHeapBlob(t *testing.T) {
	// Untyped heap (no hint) accessed through a struct view.
	src := `
#include <stdlib.h>
struct S { int *f1; int *f2; };
int x;
void *mk(void) { return malloc(sizeof(struct S)); }
int *g(void) {
	struct S *s = (struct S *)mk();
	s->f2 = &x;
	return s->f2;
}`
	r := loadIR(t, src, nil)
	var rv *ir.Object
	for _, f := range r.IR.Funcs {
		if f.Sym.Name == "g" {
			rv = f.Retval
		}
	}
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		got := targetObjs(res, rv)
		if !got["x"] {
			t.Errorf("%s: pts(g()) = %v, want x via untyped heap", name, keys(got))
		}
	}
}

func TestMultiTU(t *testing.T) {
	// Cross-translation-unit flow with same-tag distinct record decls.
	srcs := []frontend.Source{
		{Name: "a.c", Text: `
struct pair { int *fst; int *snd; };
int ga;
void fill(struct pair *p) { p->fst = &ga; }`},
		{Name: "b.c", Text: `
struct pair { int *fst; int *snd; };
void fill(struct pair *p);
struct pair gp;
int *r;
void use(void) {
	fill(&gp);
	r = gp.fst;
}`},
	}
	res, err := frontend.Load(srcs, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var rv *ir.Object
	for _, o := range res.IR.Objects {
		if o.Sym != nil && o.Sym.Name == "r" {
			rv = o
		}
	}
	for _, mk := range []func() core.Strategy{
		func() core.Strategy { return core.NewCIS() },
		func() core.Strategy { return core.NewOffsets(layout.New(nil)) },
	} {
		result := core.Analyze(res.IR, mk())
		got := targetObjs(result, rv)
		if !got["ga"] {
			t.Errorf("%s: pts(r) = %v, want ga across TUs", result.Strategy.Name(), keys(got))
		}
	}
}
