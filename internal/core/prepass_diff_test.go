package core_test

// Corpus-wide differential for the prepass + interner pair: the default
// solve (prepass on), the NoPrepass ablation, and the map-based reference
// solver must agree byte-for-byte on every observable — fact dumps,
// TotalFacts, AvgDerefSetSize, and the Figure-3 instrumentation — on every
// corpus program under all four strategies. The parallel variant runs the
// same comparison through the work-stealing executor so `go test -race`
// exercises the copy-on-write guards under real contention.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/frontend"
	"repro/internal/metrics"
)

func TestPrepassDifferentialCorpus(t *testing.T) {
	prepassDifferential(t, core.Options{})
}

func TestPrepassDifferentialCorpusParallel(t *testing.T) {
	prepassDifferential(t, core.Options{Parallelism: 8})
}

func prepassDifferential(t *testing.T, baseOpts core.Options) {
	names := corpus.SortedByGroup()
	if testing.Short() {
		names = names[:4]
	}
	for _, name := range names {
		src, err := corpus.Source(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := frontend.Load(src, frontend.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, sname := range metrics.StrategyNames {
			t.Run(name+"/"+sname, func(t *testing.T) {
				onStrat := metrics.NewStrategy(sname, res.Layout)
				on := core.AnalyzeWith(res.IR, onStrat, baseOpts)

				offOpts := baseOpts
				offOpts.NoPrepass = true
				offStrat := metrics.NewStrategy(sname, res.Layout)
				off := core.AnalyzeWith(res.IR, offStrat, offOpts)

				refStrat := metrics.NewStrategy(sname, res.Layout)
				ref := core.AnalyzeReference(res.IR, refStrat, core.Options{})

				if on.Incomplete != nil || off.Incomplete != nil || ref.Incomplete != nil {
					t.Fatalf("unexpected incomplete run: on=%v off=%v ref=%v",
						on.Incomplete, off.Incomplete, ref.Incomplete)
				}
				if off.Wave.PrepClasses != 0 || off.Wave.PrepCollapsed != 0 ||
					off.Wave.InternEpochs != 0 || off.Wave.InternSets != 0 {
					t.Errorf("ablation still ran the prepass/interner: %+v", off.Wave)
				}
				if a, b, c := on.TotalFacts(), off.TotalFacts(), ref.TotalFacts(); a != b || a != c {
					t.Errorf("TotalFacts: on=%d off=%d ref=%d", a, b, c)
				}
				if a, b, c := on.AvgDerefSetSize(), off.AvgDerefSetSize(), ref.AvgDerefSetSize(); a != b || a != c {
					t.Errorf("AvgDerefSetSize: on=%v off=%v ref=%v", a, b, c)
				}
				dOn, dOff, dRef := denseFactDump(on), denseFactDump(off), denseFactDump(ref)
				if dOn != dOff {
					t.Errorf("fact dump differs under NoPrepass:\n--- on ---\n%s--- off ---\n%s", dOn, dOff)
				}
				if dOn != dRef {
					t.Errorf("fact dump differs from reference:\n--- on ---\n%s--- ref ---\n%s", dOn, dRef)
				}
				rOn, rOff, rRef := recorderLine(onStrat.Recorder()),
					recorderLine(offStrat.Recorder()), recorderLine(refStrat.Recorder())
				if rOn != rOff || rOn != rRef {
					t.Errorf("Figure-3 counters: on(%s) off(%s) ref(%s)", rOn, rOff, rRef)
				}
			})
		}
	}
}

// The interner must never change what a Result answers after the solve
// either: mutating-by-query is impossible (Result is read-only), but merged
// members must still answer through the representative after internFinal
// freed their pre-merge storage.
func TestInternFinalKeepsMergedMembersAnswering(t *testing.T) {
	r := loadIR(t, chainSrc(12), nil)
	for name, strat := range exactStrategies() {
		res := core.Analyze(r.IR, strat)
		if res.Wave.PrepCollapsed == 0 {
			t.Fatalf("%s: chain not collapsed, test is vacuous", name)
		}
		for i := 0; i < 12; i++ {
			v := fmt.Sprintf("p%d", i)
			if got := targets(t, res, r.IR, v); got != "{a}" {
				t.Errorf("%s: %s -> %s after internFinal, want {a}", name, v, got)
			}
		}
	}
}
