package core_test

// Satellite coverage for display ordering under the dense representation:
// CellSet.Sorted's comparator, and Result.SortedCells determinism through
// the lazy map-view materialization — including on an Incomplete partial
// result, where materialization runs over whatever fact subset the aborted
// solver left behind.

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/ir"
)

func TestCellSetSortedOrdering(t *testing.T) {
	oa := &ir.Object{ID: 3, Name: "a"}
	oa2 := &ir.Object{ID: 7, Name: "a"} // same name, later ID
	ob := &ir.Object{ID: 1, Name: "b"}
	want := []core.Cell{
		{Obj: oa},                      // name "a", ID 3, no selector
		{Obj: oa, Off: 0, ByOff: true}, // offset cell sorts after the bare cell
		{Obj: oa, Path: "f"},
		{Obj: oa, Off: 4, ByOff: true},
		{Obj: oa2}, // same name, higher ID
		{Obj: ob},
		{Obj: ob, Off: 8, ByOff: true},
	}
	set := make(core.CellSet, len(want))
	for _, c := range want {
		set.Add(c)
	}
	got := set.Sorted()
	if len(got) != len(want) {
		t.Fatalf("Sorted returned %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sorted[%d] = %v (%s), want %v (%s)", i, got[i], got[i], want[i], want[i])
		}
	}
}

func loadSorted(t *testing.T) *frontend.Result {
	t.Helper()
	const src = `
struct S { int *a; int *b; } s, t;
int x, y, *p, *q;
int main(void) {
	s.a = &x; s.b = &y;
	t = s;
	p = s.a; q = t.b;
	return 0;
}`
	r, err := frontend.Load([]frontend.Source{{Name: "t.c", Text: src}}, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func dumpSortedCells(res *core.Result) string {
	var sb strings.Builder
	for _, c := range res.SortedCells() {
		sb.WriteString(c.String())
		sb.WriteString(";")
	}
	return sb.String()
}

// TestSortedCellsDeterministic runs the same analysis repeatedly and reads
// SortedCells from concurrent goroutines: every observation — within a
// result (racing the one-time materialization) and across independent runs —
// must be identical.
func TestSortedCellsDeterministic(t *testing.T) {
	r := loadSorted(t)
	var first string
	for run := 0; run < 4; run++ {
		res := core.Analyze(r.IR, core.NewOffsets(r.Layout))
		var wg sync.WaitGroup
		got := make([]string, 8)
		for i := range got {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i] = dumpSortedCells(res)
			}(i)
		}
		wg.Wait()
		for i, g := range got {
			if g != got[0] {
				t.Fatalf("run %d: concurrent SortedCells disagree:\n[0] %s\n[%d] %s", run, got[0], i, g)
			}
		}
		if run == 0 {
			first = got[0]
			if first == "" {
				t.Fatal("empty SortedCells dump")
			}
		} else if got[0] != first {
			t.Fatalf("run %d: SortedCells differ across runs:\n%s\n%s", run, first, got[0])
		}
	}
}

// TestSortedCellsIncomplete exercises lazy materialization on a partial
// result: an aborted run must still expose a stable, deterministic view of
// the facts it did derive.
func TestSortedCellsIncomplete(t *testing.T) {
	r := loadSorted(t)
	opts := core.Options{Limits: core.Limits{MaxFacts: 3}}
	var first string
	for run := 0; run < 4; run++ {
		res := core.AnalyzeWith(r.IR, core.NewOffsets(r.Layout), opts)
		if res.Incomplete == nil {
			t.Fatal("expected an incomplete result under MaxFacts=3")
		}
		if res.Incomplete.Reason != core.StopMaxFacts {
			t.Fatalf("stop reason = %v, want StopMaxFacts", res.Incomplete.Reason)
		}
		if got := res.TotalFacts(); got > 3 {
			t.Fatalf("partial result has %d facts, limit 3", got)
		}
		dump := dumpSortedCells(res)
		// The view must agree with per-cell queries and repeat identically.
		for _, c := range res.SortedCells() {
			if res.PointsToCell(c).Len() == 0 {
				t.Fatalf("SortedCells lists %s with an empty set", c)
			}
		}
		if d2 := dumpSortedCells(res); d2 != dump {
			t.Fatalf("repeated SortedCells differ on the same result")
		}
		if run == 0 {
			first = dump
		} else if dump != first {
			t.Fatalf("run %d: partial SortedCells differ across runs:\n%s\n%s", run, first, dump)
		}
	}
}
