package core

import (
	"sort"
	"testing"
)

// decodeBitsIDs turns a fuzz byte stream into CellIDs biased toward block
// boundaries: each pair (hi, lo) selects block hi with bit lo&63, so ids
// cluster around multiples of 64 — the word edges UnionDiff's merge walk has
// to get right.
func decodeBitsIDs(data []byte) []CellID {
	ids := make([]CellID, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		ids = append(ids, CellID(data[i])<<6|CellID(data[i+1]&63))
	}
	return ids
}

// FuzzBitsUnionDiff differentially tests UnionDiff (and the UnionInPlace it
// delegates to) against a map[uint32]bool reference model: the receiver must
// end up holding exactly the union, the returned buffer must list exactly
// the newly-set ids in ascending order, and the o == b aliased-receiver
// union must be a no-op.
func FuzzBitsUnionDiff(f *testing.F) {
	f.Add([]byte{}, []byte{})                       // empty ∪ empty
	f.Add([]byte{0, 0}, []byte{})                   // one ∪ empty
	f.Add([]byte{}, []byte{0, 63, 1, 0})            // empty receiver grows
	f.Add([]byte{0, 0, 0, 63}, []byte{0, 63, 1, 0}) // shared block + new block
	f.Add([]byte{2, 1, 4, 1}, []byte{1, 1, 3, 1})   // interleaved blocks
	f.Add([]byte{255, 63, 0, 0}, []byte{255, 63})   // extreme block indices
	f.Add([]byte{1, 5, 1, 5, 1, 6}, []byte{1, 5})   // duplicates in stream
	f.Fuzz(func(t *testing.T, bBytes, oBytes []byte) {
		var b, o Bits
		bRef := make(map[uint32]bool)
		for _, id := range decodeBitsIDs(bBytes) {
			b.Add(id)
			bRef[uint32(id)] = true
		}
		oRef := make(map[uint32]bool)
		for _, id := range decodeBitsIDs(oBytes) {
			o.Add(id)
			oRef[uint32(id)] = true
		}

		// Expected diff: o's ids absent from b, ascending.
		var wantDiff []CellID
		for id := range oRef {
			if !bRef[id] {
				wantDiff = append(wantDiff, CellID(id))
			}
		}
		sort.Slice(wantDiff, func(i, j int) bool { return wantDiff[i] < wantDiff[j] })

		// Non-empty prefix in buf: UnionDiff must append, not overwrite.
		sentinel := []CellID{^CellID(0)}
		gotBuf := b.UnionDiff(&o, sentinel)
		if len(gotBuf) == 0 || gotBuf[0] != ^CellID(0) {
			t.Fatalf("UnionDiff clobbered the buffer prefix: %v", gotBuf)
		}
		gotDiff := gotBuf[1:]
		if len(gotDiff) != len(wantDiff) {
			t.Fatalf("diff length = %d, want %d (got %v, want %v)",
				len(gotDiff), len(wantDiff), gotDiff, wantDiff)
		}
		for i := range wantDiff {
			if gotDiff[i] != wantDiff[i] {
				t.Fatalf("diff[%d] = %d, want %d", i, gotDiff[i], wantDiff[i])
			}
		}

		// Receiver now holds the union; o is untouched.
		union := make(map[uint32]bool, len(bRef)+len(oRef))
		for id := range bRef {
			union[id] = true
		}
		for id := range oRef {
			union[id] = true
		}
		if b.Len() != len(union) {
			t.Fatalf("b.Len = %d, want %d", b.Len(), len(union))
		}
		b.Iterate(func(id CellID) {
			if !union[uint32(id)] {
				t.Fatalf("b contains %d not in the union model", id)
			}
		})
		if o.Len() != len(oRef) {
			t.Fatalf("o.Len changed: %d, want %d", o.Len(), len(oRef))
		}
		o.Iterate(func(id CellID) {
			if !oRef[uint32(id)] {
				t.Fatalf("o mutated: contains %d", id)
			}
		})

		// Aliased receiver: a self-union must change nothing and report no
		// new ids.
		selfBuf := b.UnionDiff(&b, nil)
		if len(selfBuf) != 0 {
			t.Fatalf("self-union reported new ids: %v", selfBuf)
		}
		if b.Len() != len(union) {
			t.Fatalf("self-union changed Len: %d, want %d", b.Len(), len(union))
		}

		// UnionInPlace agreement on fresh copies: same union, added count
		// equals the diff length.
		var b2 Bits
		for id := range bRef {
			b2.Add(CellID(id))
		}
		if added := b2.UnionInPlace(&o); added != len(wantDiff) {
			t.Fatalf("UnionInPlace added = %d, want %d", added, len(wantDiff))
		}
		if b2.Len() != len(union) {
			t.Fatalf("UnionInPlace Len = %d, want %d", b2.Len(), len(union))
		}
	})
}

// FuzzBitsUnionAll differentially tests the k-way bulk union against the
// map model: three fuzz streams become the receiver and two sources, the
// receiver must end up with exactly the three-way union (added count
// matching), the sources must be untouched, and passing the receiver itself
// (or nil) among the sources must be ignored.
func FuzzBitsUnionAll(f *testing.F) {
	f.Add([]byte{}, []byte{}, []byte{})                         // all empty
	f.Add([]byte{0, 0}, []byte{}, []byte{})                     // sources empty
	f.Add([]byte{}, []byte{0, 63}, []byte{1, 0})                // empty receiver grows
	f.Add([]byte{0, 0}, []byte{0, 0}, []byte{0, 0})             // full overlap
	f.Add([]byte{2, 1}, []byte{1, 1, 3, 1}, []byte{0, 5, 4, 5}) // interleaved blocks
	f.Add([]byte{255, 63}, []byte{255, 63, 0, 0}, []byte{128, 7})
	f.Add([]byte{1, 5, 1, 6}, []byte{1, 5}, []byte{1, 7, 1, 5}) // shared block, three ways
	f.Fuzz(func(t *testing.T, bBytes, o1Bytes, o2Bytes []byte) {
		var b, o1, o2 Bits
		ref := make(map[uint32]bool)
		for _, id := range decodeBitsIDs(bBytes) {
			b.Add(id)
			ref[uint32(id)] = true
		}
		o1Ref := make(map[uint32]bool)
		for _, id := range decodeBitsIDs(o1Bytes) {
			o1.Add(id)
			o1Ref[uint32(id)] = true
		}
		o2Ref := make(map[uint32]bool)
		for _, id := range decodeBitsIDs(o2Bytes) {
			o2.Add(id)
			o2Ref[uint32(id)] = true
		}
		union := make(map[uint32]bool, len(ref)+len(o1Ref)+len(o2Ref))
		for id := range ref {
			union[id] = true
		}
		for id := range o1Ref {
			union[id] = true
		}
		for id := range o2Ref {
			union[id] = true
		}
		wantAdded := len(union) - len(ref)

		// Self and nil entries in the source list must be skipped.
		if added := b.UnionAll([]*Bits{&o1, nil, &b, &o2}); added != wantAdded {
			t.Fatalf("UnionAll added = %d, want %d", added, wantAdded)
		}
		if b.Len() != len(union) {
			t.Fatalf("b.Len = %d, want %d", b.Len(), len(union))
		}
		prev := CellID(0)
		first := true
		b.Iterate(func(id CellID) {
			if !union[uint32(id)] {
				t.Fatalf("b contains %d not in the union model", id)
			}
			if !first && id <= prev {
				t.Fatalf("b not ascending at %d after %d", id, prev)
			}
			prev, first = id, false
		})
		if o1.Len() != len(o1Ref) || o2.Len() != len(o2Ref) {
			t.Fatalf("sources mutated: o1=%d/%d o2=%d/%d",
				o1.Len(), len(o1Ref), o2.Len(), len(o2Ref))
		}
		o1.Iterate(func(id CellID) {
			if !o1Ref[uint32(id)] {
				t.Fatalf("o1 mutated: contains %d", id)
			}
		})
		o2.Iterate(func(id CellID) {
			if !o2Ref[uint32(id)] {
				t.Fatalf("o2 mutated: contains %d", id)
			}
		})

		// Idempotence: unioning the same sources again adds nothing.
		if added := b.UnionAll([]*Bits{&o1, &o2}); added != 0 {
			t.Fatalf("repeated UnionAll added %d ids", added)
		}
	})
}
