// Package core implements the paper's tunable pointer-analysis framework:
// the inference rules of Figure 2 as a worklist fixpoint solver, driven by
// a Strategy that supplies the three functions normalize, lookup and
// resolve. The four instances — Offsets, Collapse Always, Collapse on Cast
// and Common Initial Sequence — are provided as Strategy implementations.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// Cell is a normalized abstract memory location: an object plus a selector.
// The selector space depends on the strategy: the Offsets instance uses byte
// offsets (Off, with ByOff set), the field-based instances use normalized
// field paths (Path), and the Collapse Always instance uses neither.
type Cell struct {
	Obj  *ir.Object
	Off  int64
	Path string // dotted normalized field path

	// ByOff marks a cell whose selector is a byte offset. The Offsets
	// strategy sets it on every cell it produces, so its offset-0 cell
	// renders as "obj@0" and cannot be confused with (or compare equal
	// to) the selector-free whole-object cell the collapsing strategies
	// use for the same object.
	ByOff bool
}

func (c Cell) String() string {
	switch {
	case c.Obj == nil:
		return "<nil>"
	case c.Path != "":
		return c.Obj.Name + "." + c.Path
	case c.ByOff || c.Off != 0:
		return fmt.Sprintf("%s@%d", c.Obj.Name, c.Off)
	default:
		return c.Obj.Name
	}
}

// PathSlice parses the dotted path back into components.
func (c Cell) PathSlice() ir.Path {
	if c.Path == "" {
		return nil
	}
	return ir.Path(strings.Split(c.Path, "."))
}

// JoinPath renders a field path as a cell selector.
func JoinPath(p ir.Path) string { return strings.Join(p, ".") }

// CellSet is a set of cells.
type CellSet map[Cell]struct{}

// Add inserts c, reporting whether it was new.
func (s CellSet) Add(c Cell) bool {
	if _, ok := s[c]; ok {
		return false
	}
	s[c] = struct{}{}
	return true
}

// Has reports membership.
func (s CellSet) Has(c Cell) bool {
	_, ok := s[c]
	return ok
}

// Len returns the number of cells.
func (s CellSet) Len() int { return len(s) }

// Sorted returns the cells in a stable display order.
func (s CellSet) Sorted() []Cell {
	out := make([]Cell, 0, len(s))
	for c := range s {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Obj != b.Obj {
			if a.Obj.Name != b.Obj.Name {
				return a.Obj.Name < b.Obj.Name
			}
			return a.Obj.ID < b.Obj.ID
		}
		if a.Off != b.Off {
			return a.Off < b.Off
		}
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		return !a.ByOff && b.ByOff
	})
	return out
}

// Edge is a copy constraint produced by resolve: facts arriving at (a range
// around) Src flow to the corresponding position at Dst.
//
// For the field-based strategies an edge relates exactly one source cell to
// one destination cell (Size is 0). For the Offsets strategy an edge covers
// Size bytes starting at the two cells' offsets — the paper's
// "⟨s.(j+i), t.(k+i)⟩ for i in 0..sizeof(τ)-1" expressed as a range rather
// than materialized per byte.
type Edge struct {
	Dst, Src Cell
	Size     int64 // 0: exact cell; >0: byte range (Offsets); -1: whole object
}

func (e Edge) String() string {
	switch {
	case e.Size > 0:
		return fmt.Sprintf("%s ⇐ %s [%d bytes]", e.Dst, e.Src, e.Size)
	case e.Size < 0:
		return fmt.Sprintf("%s ⇐ %s [all]", e.Dst, e.Src)
	default:
		return fmt.Sprintf("%s ⇐ %s", e.Dst, e.Src)
	}
}
