package core

import (
	"repro/internal/cc/types"
	"repro/internal/ir"
)

// fieldOps carries the machinery shared by the two portable field-sensitive
// strategies (Collapse on Cast and Common Initial Sequence): first-field
// normalization, enclosing-candidate search, followingFields smearing, and
// the resolve construction that pairs both sides through lookup.
type fieldOps struct {
	rec  Recorder
	memo memoTable

	// noFirstField disables the innermost-first-field normalization
	// (ablation only: without it, a pointer to a structure and a pointer
	// to its first field are different cells, and Problem 1 accesses are
	// missed — unsound, but it quantifies what normalize buys).
	noFirstField bool

	leafCache map[*types.Type][]ir.Path
}

func newFieldOps() fieldOps {
	return fieldOps{leafCache: make(map[*types.Type][]ir.Path)}
}

// SetMemoization implements Memoizer for the field-based strategies.
func (f *fieldOps) SetMemoization(on bool) { f.memo.SetMemoization(on) }

// exactEdges implements exactEdger: both field strategies propagate through
// exactEdgePropagate, so their Size==0 edges are indexable by source cell.
func (f *fieldOps) exactEdges() bool { return true }

func (f *fieldOps) leaves(t *types.Type) []ir.Path {
	if cached, ok := f.leafCache[t]; ok {
		return cached
	}
	l := leafPaths(t)
	f.leafCache[t] = l
	return l
}

// normalize is the shared normalize of §4.3.2/§4.3.3: map a reference to its
// innermost first field.
func (f *fieldOps) normalize(obj *ir.Object, path ir.Path) Cell {
	if obj.Type == nil {
		return Cell{Obj: obj} // untyped heap blob: a single cell
	}
	if f.noFirstField {
		return Cell{Obj: obj, Path: JoinPath(path)}
	}
	return Cell{Obj: obj, Path: JoinPath(normalizePath(obj.Type, path))}
}

// smear returns the cells of target's object at or after target in layout
// order (the followingFields fallback both portable instances use on a type
// mismatch).
func (f *fieldOps) smear(target Cell) []Cell {
	t := target.Obj.Type
	if t == nil {
		return []Cell{{Obj: target.Obj}}
	}
	var out []Cell
	for _, l := range followingLeaves(t, target.PathSlice()) {
		out = append(out, Cell{Obj: target.Obj, Path: JoinPath(l)})
	}
	if len(out) == 0 {
		out = append(out, target)
	}
	return out
}

// cellsOf enumerates all normalized cells of an object.
func (f *fieldOps) cellsOf(obj *ir.Object) []Cell {
	if obj.Type == nil {
		return []Cell{{Obj: obj}}
	}
	ls := f.leaves(obj.Type)
	out := make([]Cell, len(ls))
	for i, l := range ls {
		out[i] = Cell{Obj: obj, Path: JoinPath(l)}
	}
	return out
}

// expandedSize counts the source fields a cell stands for.
func (f *fieldOps) expandedSize(c Cell) int {
	t := typeAt(c.Obj.Type, c.PathSlice())
	if t == nil {
		return leafCount(c.Obj.Type)
	}
	return leafCount(t)
}

// lookupFn is the uncounted core of a strategy's lookup; mismatch reports
// whether the fallback smearing was used.
type lookupFn func(τ *types.Type, path ir.Path, target Cell) (cells []Cell, mismatch bool)

// resolveVia implements resolve in terms of a lookup function, as both
// portable instances define it (§4.3.2):
//
//	resolve(s.α̂, t.β̂, τ) = { ⟨γ, γ'⟩ | δ a field of τ,
//	                          γ  ∈ lookup(τ_δ?, δ, s.α̂),
//	                          γ' ∈ lookup(τ_δ?, δ, t.β̂) }
//
// δ ranges over the normalized leaves of τ so that nested structures copy
// field by field. τ == nil (a copy of unknown extent) pairs everything at or
// after each endpoint.
func (f *fieldOps) resolveVia(lk lookupFn, dst, src Cell, τ *types.Type) ([]Edge, bool) {
	if τ == nil {
		ds := f.smear(dst)
		ss := f.smear(src)
		var edges []Edge
		for _, d := range ds {
			for _, s := range ss {
				edges = append(edges, Edge{Dst: d, Src: s})
			}
		}
		return edges, true
	}
	var edges []Edge
	mismatch := false
	for _, δ := range f.leaves(τ) {
		ds, m1 := lk(τ, δ, dst)
		ss, m2 := lk(τ, δ, src)
		if m1 || m2 {
			mismatch = true
		}
		for _, d := range ds {
			for _, s := range ss {
				edges = append(edges, Edge{Dst: d, Src: s})
			}
		}
	}
	return edges, mismatch
}

// structsInvolved reports whether a lookup/resolve call "involves
// structures" for the Figure 3 instrumentation.
func structsInvolved(τ *types.Type, cells ...Cell) bool {
	if isRecordType(τ) {
		return true
	}
	for _, c := range cells {
		if objIsRecord(c.Obj) {
			return true
		}
	}
	return false
}
