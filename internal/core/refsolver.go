package core

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"repro/internal/ir"
)

// This file preserves the original map-based fixpoint (points-to sets as
// map[Cell]struct{}, delta lists as []Cell) exactly as it ran before the
// dense CellID/Bits rewrite in solver.go. It is the differential-testing
// oracle: AnalyzeReference must produce byte-identical SortedCells output,
// fact counts and Figure-3 instrumentation to AnalyzeWith on every program,
// which the corpus-wide test in dense_diff_test.go enforces. It is not used
// on any production path.

// AnalyzeReference runs the retained map-based solver. Results, resource
// limits and instrumentation behave identically to AnalyzeWith; only the
// internal representation (and therefore speed) differs.
func AnalyzeReference(prog *ir.Program, strat Strategy, opts Options) *Result {
	s := &refSolver{
		limits:   opts.Limits,
		prog:     prog,
		strat:    strat,
		opts:     opts,
		pts:      make(map[Cell]CellSet),
		factObjs: make(map[*ir.Object][]Cell),
		edgeSet:  make(map[Edge]bool),
		edgeIdx:  make(map[*ir.Object][]Edge),
		watchers: make(map[Cell][]watch),
		bound:    make(map[callBinding]bool),
	}
	if opts.UseUnknown {
		s.unknown = &ir.Object{ID: -1, Name: "<unknown>", Kind: ir.ObjVar}
	}
	start := time.Now()
	s.run()
	return &Result{
		Strategy:   strat,
		Program:    prog,
		pts:        s.pts,
		Duration:   time.Since(start),
		Steps:      s.steps,
		Incomplete: s.stop,
		Misuses:    s.misuses,
	}
}

// memPair identifies one (destination target, source target) pair of a
// memcopy statement. Both pointer operands watch their cells, so without
// dedup a pair would be resolved once or twice depending on the order the
// two facts reach the worklist; resolving each pair exactly once keeps the
// instrumentation counts independent of the propagation schedule.
type memPair struct {
	stmt     *ir.Stmt
	dst, src Cell
}

type refSolver struct {
	prog  *ir.Program
	strat Strategy
	opts  Options

	limits Limits
	steps  int
	nfacts int
	stop   *Stop

	unknown *ir.Object
	misuses []Misuse
	flagged map[*ir.Stmt]bool

	pts      map[Cell]CellSet
	factObjs map[*ir.Object][]Cell

	edgeSet map[Edge]bool
	edgeIdx map[*ir.Object][]Edge

	watchers map[Cell][]watch
	bound    map[callBinding]bool
	memDone  map[memPair]bool

	delta map[Cell][]Cell
	dirty []Cell
}

func (s *refSolver) norm(obj *ir.Object, path ir.Path) Cell {
	return s.strat.Normalize(obj, path)
}

func (s *refSolver) run() {
	for _, st := range s.prog.Stmts {
		if s.stop != nil {
			return
		}
		s.initStmt(st)
	}
	for len(s.dirty) > 0 {
		if s.stop != nil {
			return
		}
		if s.limits.MaxSteps > 0 && s.steps >= s.limits.MaxSteps {
			s.abort(StopMaxSteps, s.limits.MaxSteps, nil)
			return
		}
		s.steps++
		c := s.dirty[len(s.dirty)-1]
		s.dirty = s.dirty[:len(s.dirty)-1]
		s.drain(c)
	}
}

func (s *refSolver) abort(reason StopReason, limit int, err error) {
	if s.stop != nil {
		return
	}
	s.stop = &Stop{
		Reason: reason,
		Steps:  s.steps,
		Facts:  s.nfacts,
		Cells:  len(s.pts),
		Limit:  limit,
		Err:    err,
	}
}

func (s *refSolver) initStmt(st *ir.Stmt) {
	switch st.Op {
	case ir.OpAddrOf:
		why := ""
		if traceCell != "" {
			why = "addrof " + st.String()
		}
		s.addFactWhy(s.norm(st.Dst, nil), s.norm(st.Src, st.Path), why)

	case ir.OpCopy:
		dst := s.norm(st.Dst, nil)
		src := s.norm(st.Src, st.Path)
		for _, e := range s.strat.Resolve(dst, src, st.Dst.Type) {
			s.addEdge(e)
		}

	case ir.OpAddrField, ir.OpLoad:
		s.watch(s.norm(st.Ptr, nil), st, 0)

	case ir.OpStore:
		if st.Src == nil {
			return
		}
		s.watch(s.norm(st.Ptr, nil), st, 0)

	case ir.OpMemCopy:
		s.watch(s.norm(st.Ptr, nil), st, 0)
		s.watch(s.norm(st.Src, nil), st, 1)

	case ir.OpPtrArith:
		s.watch(s.norm(st.Src, nil), st, 0)

	case ir.OpCall:
		s.watch(s.norm(st.Ptr, nil), st, 0)
	}
}

// watch registers the statement and replays existing facts at the cell.
// Like the dense solver's watch, the replay is single-fire: facts still
// pending in the cell's delta fire at the coming drain, so replaying them
// here would double-fire. The replay set is snapshotted before any rule
// runs — rules fired reentrantly may grow both pts[c] and delta[c].
func (s *refSolver) watch(c Cell, st *ir.Stmt, role int) {
	s.watchers[c] = append(s.watchers[c], watch{stmt: st, role: role})
	set, ok := s.pts[c]
	if !ok {
		return
	}
	pend := s.delta[c]
	replay := make([]Cell, 0, len(set))
	for tgt := range set {
		if !slices.Contains(pend, tgt) {
			replay = append(replay, tgt)
		}
	}
	for _, tgt := range replay {
		s.applyRule(watch{stmt: st, role: role}, tgt)
	}
}

func (s *refSolver) addFactWhy(c, tgt Cell, why string) {
	if traceCell != "" && strings.Contains(c.String(), traceCell) {
		fmt.Printf("TRACE %s += %s   [%s]\n", c, tgt, why)
	}
	s.addFact(c, tgt)
}

func (s *refSolver) addFact(c, tgt Cell) {
	if s.stop != nil {
		return
	}
	set, ok := s.pts[c]
	if !ok {
		if s.limits.MaxCells > 0 && len(s.pts) >= s.limits.MaxCells {
			s.abort(StopMaxCells, s.limits.MaxCells, nil)
			return
		}
		set = make(CellSet)
		s.pts[c] = set
	}
	if !set.Add(tgt) {
		return
	}
	s.nfacts++
	if s.limits.MaxFacts > 0 && s.nfacts >= s.limits.MaxFacts {
		s.abort(StopMaxFacts, s.limits.MaxFacts, nil)
		// The fact that tripped the limit stays recorded (it is sound);
		// only propagation of it is skipped.
		return
	}
	if len(set) == 1 {
		s.factObjs[c.Obj] = append(s.factObjs[c.Obj], c)
	}
	if s.delta == nil {
		s.delta = make(map[Cell][]Cell)
	}
	pend := s.delta[c]
	if len(pend) == 0 {
		s.dirty = append(s.dirty, c)
	}
	s.delta[c] = append(pend, tgt)
}

func (s *refSolver) drain(c Cell) {
	batch := s.delta[c]
	if len(batch) == 0 {
		return
	}
	s.delta[c] = nil
	for _, e := range s.edgeIdx[c.Obj] {
		if dst, ok := s.strat.PropagateEdge(e, c); ok {
			why := ""
			if traceCell != "" {
				why = "edge " + e.String()
			}
			for _, tgt := range batch {
				s.addFactWhy(dst, tgt, why)
			}
		}
	}
	for _, w := range s.watchers[c] {
		for _, tgt := range batch {
			s.applyRule(w, tgt)
		}
	}
}

func (s *refSolver) addEdge(e Edge) {
	if s.edgeSet[e] {
		return
	}
	s.edgeSet[e] = true
	s.edgeIdx[e.Src.Obj] = append(s.edgeIdx[e.Src.Obj], e)
	for _, c := range s.factObjs[e.Src.Obj] {
		if dst, ok := s.strat.PropagateEdge(e, c); ok {
			for tgt := range s.pts[c] {
				s.addFact(dst, tgt)
			}
		}
	}
}

func (s *refSolver) memCopy(st *ir.Stmt, dst, src Cell) {
	key := memPair{stmt: st, dst: dst, src: src}
	if s.memDone[key] {
		return
	}
	if s.memDone == nil {
		s.memDone = make(map[memPair]bool)
	}
	s.memDone[key] = true
	for _, e := range s.strat.Resolve(dst, src, nil) {
		s.addEdge(e)
	}
}

func (s *refSolver) applyRule(w watch, tgt Cell) {
	st := w.stmt
	if s.unknown != nil && tgt.Obj == s.unknown {
		switch st.Op {
		case ir.OpAddrField, ir.OpLoad, ir.OpStore, ir.OpMemCopy, ir.OpCall:
			if s.flagged == nil {
				s.flagged = make(map[*ir.Stmt]bool)
			}
			if !s.flagged[st] {
				s.flagged[st] = true
				ptr := ""
				if st.Ptr != nil {
					ptr = st.Ptr.Name
				}
				s.misuses = append(s.misuses, Misuse{Pos: st.Pos, Stmt: st.String(), Ptr: ptr})
			}
			return
		}
	}
	switch st.Op {
	case ir.OpAddrField:
		dst := s.norm(st.Dst, nil)
		why := ""
		if traceCell != "" {
			why = "addrfield " + st.String()
		}
		for _, c := range s.strat.Lookup(pointeeType(st.Ptr), st.Path, tgt) {
			s.addFactWhy(dst, c, why)
		}

	case ir.OpLoad:
		dst := s.norm(st.Dst, nil)
		for _, loc := range s.strat.Lookup(pointeeType(st.Ptr), nil, tgt) {
			for _, e := range s.strat.Resolve(dst, loc, st.Dst.Type) {
				s.addEdge(e)
			}
		}

	case ir.OpStore:
		τ := pointeeType(st.Ptr)
		if τ == nil && st.Src.Type != nil {
			τ = st.Src.Type
		}
		src := s.norm(st.Src, nil)
		for _, loc := range s.strat.Lookup(τ, nil, tgt) {
			for _, e := range s.strat.Resolve(loc, src, τ) {
				s.addEdge(e)
			}
		}

	case ir.OpMemCopy:
		if w.role == 0 {
			for src := range s.pts[s.norm(st.Src, nil)] {
				s.memCopy(st, tgt, src)
			}
		} else {
			for dst := range s.pts[s.norm(st.Ptr, nil)] {
				s.memCopy(st, dst, tgt)
			}
		}

	case ir.OpPtrArith:
		dst := s.norm(st.Dst, nil)
		s.addFact(dst, tgt)
		if !s.opts.NoPtrArithSmear {
			for _, c := range s.strat.CellsOf(tgt.Obj) {
				s.addFact(dst, c)
			}
		}
		if s.unknown != nil {
			s.addFact(dst, s.norm(s.unknown, nil))
		}

	case ir.OpCall:
		if tgt.Obj.Kind != ir.ObjFunc || tgt.Obj.Sym == nil {
			return
		}
		fn := s.prog.FuncOf[tgt.Obj.Sym]
		if fn == nil {
			return
		}
		key := callBinding{stmt: st, fn: tgt.Obj}
		if s.bound[key] {
			return
		}
		s.bound[key] = true
		for i, arg := range st.Args {
			if arg == nil {
				continue
			}
			argCell := s.norm(arg, nil)
			if i < len(fn.Params) && fn.Params[i] != nil {
				p := fn.Params[i]
				for _, e := range s.strat.Resolve(s.norm(p, nil), argCell, p.Type) {
					s.addEdge(e)
				}
			} else if fn.Varargs != nil {
				for _, e := range s.strat.Resolve(s.norm(fn.Varargs, nil), argCell, arg.Type) {
					s.addEdge(e)
				}
			}
		}
		if fn.Retval != nil && st.Dst != nil {
			for _, e := range s.strat.Resolve(s.norm(st.Dst, nil), s.norm(fn.Retval, nil), st.Dst.Type) {
				s.addEdge(e)
			}
		}
	}
}
