package core

// Direct unit tests of the four strategies' normalize/lookup/resolve on
// hand-constructed types, independent of the C front end. These pin the
// §4.2.2/§4.3 definitions at the function level; solver_test.go covers the
// same definitions through whole programs.

import (
	"testing"

	"repro/internal/cc/layout"
	"repro/internal/cc/types"
	"repro/internal/ir"
)

type fixture struct {
	u    *types.Universe
	lay  *layout.Engine
	intT *types.Type
	pInt *types.Type

	structS *types.Type // struct S { int *s1; int s2; char *s3; }
	structT *types.Type // struct T { int *t1; int *t2; char *t3; }

	objT   *ir.Object // a struct T object
	nextID int
}

func newFixture() *fixture {
	f := &fixture{u: types.NewUniverse(), lay: layout.New(nil)}
	f.intT = f.u.Basic(types.Int)
	f.pInt = types.PointerTo(f.intT)
	pChar := types.PointerTo(f.u.Basic(types.Char))

	f.structS = f.u.NewRecord("S", false)
	f.structS.Record.Fields = []types.Field{
		{Name: "s1", Type: f.pInt, BitWidth: -1},
		{Name: "s2", Type: f.intT, BitWidth: -1},
		{Name: "s3", Type: pChar, BitWidth: -1},
	}
	f.structS.Record.Complete = true

	f.structT = f.u.NewRecord("T", false)
	f.structT.Record.Fields = []types.Field{
		{Name: "t1", Type: f.pInt, BitWidth: -1},
		{Name: "t2", Type: f.pInt, BitWidth: -1},
		{Name: "t3", Type: pChar, BitWidth: -1},
	}
	f.structT.Record.Complete = true

	f.objT = f.newObj("t", f.structT)
	return f
}

func (f *fixture) newObj(name string, t *types.Type) *ir.Object {
	f.nextID++
	return &ir.Object{ID: f.nextID, Name: name, Kind: ir.ObjVar, Type: t}
}

func cellStrings(cells []Cell) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = c.String()
	}
	return out
}

func TestUnitCollapseAlways(t *testing.T) {
	f := newFixture()
	s := NewCollapseAlways()
	if got := s.Normalize(f.objT, ir.Path{"t2"}); got != (Cell{Obj: f.objT}) {
		t.Errorf("normalize = %v", got)
	}
	cells := s.Lookup(f.structS, ir.Path{"s3"}, Cell{Obj: f.objT})
	if len(cells) != 1 || cells[0].Obj != f.objT || cells[0].Path != "" {
		t.Errorf("lookup = %v", cellStrings(cells))
	}
	dst := f.newObj("d", f.structS)
	edges := s.Resolve(Cell{Obj: dst}, Cell{Obj: f.objT}, f.structS)
	if len(edges) != 1 {
		t.Fatalf("resolve edges = %d", len(edges))
	}
	if edges[0].Dst.Obj != dst || edges[0].Src.Obj != f.objT {
		t.Errorf("resolve = %v", edges[0])
	}
}

func TestUnitCollapseOnCastLookup(t *testing.T) {
	f := newFixture()
	s := NewCollapseOnCast()
	tgt := s.Normalize(f.objT, nil) // t.t1

	// Matching declared type: exact field.
	cells := s.Lookup(f.structT, ir.Path{"t2"}, tgt)
	if len(cells) != 1 || cells[0].String() != "t.t2" {
		t.Errorf("matched lookup = %v", cellStrings(cells))
	}
	// Mismatched declared type: all fields from the target on.
	cells = s.Lookup(f.structS, ir.Path{"s3"}, tgt)
	want := map[string]bool{"t.t1": true, "t.t2": true, "t.t3": true}
	if len(cells) != 3 {
		t.Fatalf("mismatched lookup = %v", cellStrings(cells))
	}
	for _, c := range cells {
		if !want[c.String()] {
			t.Errorf("unexpected cell %s", c)
		}
	}
	// Mismatch from a mid-struct target: only following fields.
	mid := Cell{Obj: f.objT, Path: "t2"}
	cells = s.Lookup(f.structS, ir.Path{"s1"}, mid)
	if len(cells) != 2 {
		t.Errorf("mid lookup = %v", cellStrings(cells))
	}
}

func TestUnitCISLookup(t *testing.T) {
	f := newFixture()
	s := NewCIS()
	tgt := s.Normalize(f.objT, nil)

	// s1/t1 and... S = {int* s1; int s2; char* s3}, T = {int* t1; int*
	// t2; char* t3}: the CIS is ⟨s1,t1⟩ only (int vs int* at position 1).
	cells := s.Lookup(f.structS, ir.Path{"s1"}, tgt)
	if len(cells) != 1 || cells[0].String() != "t.t1" {
		t.Errorf("inside-CIS lookup = %v", cellStrings(cells))
	}
	// s2 is outside the CIS: all fields from the first field after it.
	cells = s.Lookup(f.structS, ir.Path{"s2"}, tgt)
	if len(cells) != 2 {
		t.Fatalf("outside-CIS lookup = %v", cellStrings(cells))
	}
	got := map[string]bool{}
	for _, c := range cells {
		got[c.String()] = true
	}
	if !got["t.t2"] || !got["t.t3"] {
		t.Errorf("outside-CIS lookup = %v", cellStrings(cells))
	}
}

func TestUnitOffsetsLookup(t *testing.T) {
	f := newFixture()
	s := NewOffsets(f.lay)
	tgt := Cell{Obj: f.objT} // offset 0

	// offsetof(S, s3) = 16 under lp64 (ptr@0, int@8, pad, ptr@16).
	cells := s.Lookup(f.structS, ir.Path{"s3"}, tgt)
	if len(cells) != 1 || cells[0].Off != 16 {
		t.Errorf("lookup = %v", cellStrings(cells))
	}
	// Out-of-bounds access: dropped.
	far := Cell{Obj: f.objT, Off: 16}
	cells = s.Lookup(f.structS, ir.Path{"s3"}, far)
	if len(cells) != 0 {
		t.Errorf("oob lookup = %v (size of T is 24, 16+16 is out)", cellStrings(cells))
	}
}

func TestUnitOffsetsResolveRange(t *testing.T) {
	f := newFixture()
	s := NewOffsets(f.lay)
	dst := f.newObj("d", f.structS)
	edges := s.Resolve(Cell{Obj: dst}, Cell{Obj: f.objT}, f.structS)
	if len(edges) != 1 {
		t.Fatalf("edges = %d", len(edges))
	}
	e := edges[0]
	if e.Size != f.lay.Sizeof(f.structS) {
		t.Errorf("edge size = %d, want sizeof(S) = %d", e.Size, f.lay.Sizeof(f.structS))
	}
	// Propagation: a fact at t@8 lands at d@8 (inside the range).
	if got, ok := s.PropagateEdge(e, Cell{Obj: f.objT, Off: 8}); !ok || got.Off != 8 || got.Obj != dst {
		t.Errorf("propagate = %v, %v", got, ok)
	}
	// Outside the range: dropped.
	if _, ok := s.PropagateEdge(e, Cell{Obj: f.objT, Off: 100}); ok {
		t.Error("propagate accepted an out-of-range offset")
	}
	// Wrong object: dropped.
	other := f.newObj("o", f.structT)
	if _, ok := s.PropagateEdge(e, Cell{Obj: other, Off: 0}); ok {
		t.Error("propagate accepted the wrong object")
	}
}

func TestUnitFieldResolveMatchedTypes(t *testing.T) {
	f := newFixture()
	for _, s := range []Strategy{NewCollapseOnCast(), NewCIS()} {
		dst := f.newObj("d", f.structT)
		edges := s.Resolve(s.Normalize(dst, nil), s.Normalize(f.objT, nil), f.structT)
		// Matched struct copy: one exact pair per field.
		if len(edges) != 3 {
			t.Fatalf("%s: edges = %v", s.Name(), edges)
		}
		for _, e := range edges {
			if e.Dst.Path != e.Src.Path {
				t.Errorf("%s: pair %v copies across fields", s.Name(), e)
			}
		}
	}
}

func TestUnitFieldResolveMismatchedTypes(t *testing.T) {
	f := newFixture()
	coc := NewCollapseOnCast()
	dst := f.newObj("d", f.structS)
	// Copy T-shaped memory into an S destination with LHS type S:
	// the source side mismatches per field, producing cross pairs.
	edges := coc.Resolve(coc.Normalize(dst, nil), coc.Normalize(f.objT, nil), f.structS)
	if len(edges) <= 3 {
		t.Errorf("mismatched resolve should smear: %d edges", len(edges))
	}
}

func TestUnitLookupOnUntypedBlob(t *testing.T) {
	f := newFixture()
	blob := &ir.Object{ID: 99, Name: "blob", Kind: ir.ObjHeap} // no type
	for _, s := range []Strategy{NewCollapseOnCast(), NewCIS()} {
		cells := s.Lookup(f.structS, ir.Path{"s2"}, Cell{Obj: blob})
		if len(cells) != 1 || cells[0].Obj != blob {
			t.Errorf("%s: blob lookup = %v", s.Name(), cellStrings(cells))
		}
	}
	off := NewOffsets(f.lay)
	cells := off.Lookup(f.structS, ir.Path{"s2"}, Cell{Obj: blob})
	if len(cells) != 1 || cells[0].Off != 8 {
		t.Errorf("offsets blob lookup = %v, want offset 8", cellStrings(cells))
	}
}

func TestUnitCellsOf(t *testing.T) {
	f := newFixture()
	if got := NewCollapseAlways().CellsOf(f.objT); len(got) != 1 {
		t.Errorf("collapse CellsOf = %v", cellStrings(got))
	}
	if got := NewCIS().CellsOf(f.objT); len(got) != 3 {
		t.Errorf("cis CellsOf = %v", cellStrings(got))
	}
	if got := NewOffsets(f.lay).CellsOf(f.objT); len(got) != 3 {
		t.Errorf("offsets CellsOf = %v", cellStrings(got))
	}
}

func TestUnitRecorderFromResolveNotCounted(t *testing.T) {
	// The paper's footnote: lookups made inside resolve are not counted.
	f := newFixture()
	s := NewCIS()
	dst := f.newObj("d", f.structT)
	before := s.Recorder().LookupCalls
	s.Resolve(s.Normalize(dst, nil), s.Normalize(f.objT, nil), f.structT)
	if s.Recorder().LookupCalls != before {
		t.Errorf("resolve incremented LookupCalls by %d",
			s.Recorder().LookupCalls-before)
	}
	if s.Recorder().ResolveCalls == before {
		// ResolveCalls is a different counter; ensure it moved.
	}
	if s.Recorder().ResolveCalls == 0 {
		t.Error("ResolveCalls not counted")
	}
}
