package core

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cc/token"
	"repro/internal/cc/types"
	"repro/internal/ir"
)

// Result is the outcome of one analysis run.
type Result struct {
	Strategy Strategy
	Program  *ir.Program

	pts      map[Cell]CellSet
	Duration time.Duration

	// Steps counts worklist drains performed by the run.
	Steps int

	// Incomplete is non-nil when the solver stopped before fixpoint — a
	// resource limit tripped or the context was canceled. The facts
	// recorded up to the stop are all individually justified by the
	// inference rules (sound over what was seen); only further
	// derivations are missing, so the result is a subset of the fixpoint.
	Incomplete *Stop

	// Misuses lists flagged dereferences of possibly corrupted pointers
	// (populated only under Options.UseUnknown).
	Misuses []Misuse
}

// PointsTo returns the points-to set of the normalized cell for obj.path.
func (r *Result) PointsTo(obj *ir.Object, path ir.Path) CellSet {
	c := r.Strategy.Normalize(obj, path)
	return r.pts[c]
}

// PointsToCell returns the points-to set of a cell.
func (r *Result) PointsToCell(c Cell) CellSet { return r.pts[c] }

// Cells iterates over all cells with non-empty points-to sets, in map order.
// Use SortedCells when the iteration order must be deterministic.
func (r *Result) Cells(fn func(c Cell, set CellSet)) {
	for c, s := range r.pts {
		if len(s) > 0 {
			fn(c, s)
		}
	}
}

// SortedCells returns every cell with a non-empty points-to set in the
// stable display order of CellSet.Sorted, so dumps, graphs and golden tests
// do not depend on Go's randomized map iteration.
func (r *Result) SortedCells() []Cell {
	cells := make(CellSet, len(r.pts))
	for c, s := range r.pts {
		if len(s) > 0 {
			cells[c] = struct{}{}
		}
	}
	return cells.Sorted()
}

// TotalFacts is the total number of points-to edges (Figure 6's metric).
func (r *Result) TotalFacts() int {
	n := 0
	for _, s := range r.pts {
		n += len(s)
	}
	return n
}

// SiteSetSize returns the (expanded) points-to set size of a dereference
// site: the number of fields the dereferenced pointer may reference, with
// collapsed facts expanded per-field as in Figure 4.
func (r *Result) SiteSetSize(site *ir.DerefSite) int {
	set := r.PointsTo(site.Ptr, nil)
	n := 0
	for c := range set {
		n += r.Strategy.ExpandedSize(c)
	}
	return n
}

// AvgDerefSetSize is Figure 4's metric: the average points-to set size over
// all static dereference sites.
func (r *Result) AvgDerefSetSize() float64 {
	if len(r.Program.Sites) == 0 {
		return 0
	}
	total := 0
	for _, s := range r.Program.Sites {
		total += r.SiteSetSize(s)
	}
	return float64(total) / float64(len(r.Program.Sites))
}

// Options tunes the solver; the zero value is the paper's configuration.
type Options struct {
	// NoPtrArithSmear disables the Assumption 1 rule: pointer arithmetic
	// results then keep only the operand's own targets instead of
	// smearing over every sub-field. Unsound; provided as an ablation.
	NoPtrArithSmear bool

	// Limits bounds solver resources; the zero value is unlimited. See
	// the Limits type for partial-result semantics when a bound trips.
	Limits Limits

	// UseUnknown implements the alternative §4.2.1 sketches before
	// adopting Assumption 1: pointer-arithmetic results additionally
	// carry a special Unknown value representing a possibly corrupted
	// pointer, and every dereference whose pointer may be Unknown is
	// flagged as a potential misuse of memory (Result.Misuses). The
	// paper rejects this as the *sole* strategy for being overly
	// pessimistic; here it augments the Assumption 1 treatment to
	// provide the flagging capability the paper describes.
	UseUnknown bool
}

// Misuse flags one dereference of a possibly corrupted pointer.
type Misuse struct {
	Pos  token.Pos
	Stmt string
	Ptr  string
}

// Analyze runs the flow-insensitive, context-insensitive fixpoint over the
// program with the given strategy.
func Analyze(prog *ir.Program, strat Strategy) *Result {
	return AnalyzeWith(prog, strat, Options{})
}

// AnalyzeWith is Analyze with explicit solver options.
func AnalyzeWith(prog *ir.Program, strat Strategy, opts Options) *Result {
	return AnalyzeContext(context.Background(), prog, strat, opts)
}

// cancelCheckEvery is how many worklist drains pass between context polls.
// Drains are microsecond-scale, so this bounds cancellation latency well
// below a millisecond while keeping the poll off the per-fact hot path.
const cancelCheckEvery = 64

// AnalyzeContext is AnalyzeWith under a context: cancellation (or the
// deadline) stops the fixpoint between worklist drains and the partial
// result comes back with Result.Incomplete set. A nil Incomplete means the
// run reached fixpoint.
func AnalyzeContext(ctx context.Context, prog *ir.Program, strat Strategy, opts Options) *Result {
	s := &solver{
		ctx:      ctx,
		limits:   opts.Limits,
		prog:     prog,
		strat:    strat,
		opts:     opts,
		pts:      make(map[Cell]CellSet),
		factObjs: make(map[*ir.Object][]Cell),
		edgeSet:  make(map[Edge]bool),
		edgeIdx:  make(map[*ir.Object][]Edge),
		watchers: make(map[Cell][]watch),
		bound:    make(map[callBinding]bool),
	}
	if opts.UseUnknown {
		s.unknown = &ir.Object{ID: -1, Name: "<unknown>", Kind: ir.ObjVar}
	}
	start := time.Now()
	s.run()
	return &Result{
		Strategy:   strat,
		Program:    prog,
		pts:        s.pts,
		Duration:   time.Since(start),
		Steps:      s.steps,
		Incomplete: s.stop,
		Misuses:    s.misuses,
	}
}

// watch is a registered statement premise: when a new points-to fact lands
// on the watched cell, the statement's rule fires with that fact.
type watch struct {
	stmt *ir.Stmt
	role int // for OpMemCopy: 0 = destination pointer, 1 = source pointer
}

type callBinding struct {
	stmt *ir.Stmt
	fn   *ir.Object
}

// memPair identifies one (destination target, source target) pair of a
// memcopy statement. Both pointer operands watch their cells, so without
// dedup a pair would be resolved once or twice depending on the order the
// two facts reach the worklist; resolving each pair exactly once keeps the
// instrumentation counts independent of the propagation schedule.
type memPair struct {
	stmt     *ir.Stmt
	dst, src Cell
}

type solver struct {
	prog  *ir.Program
	strat Strategy
	opts  Options

	// Resource governance: the fixpoint polls ctx every cancelCheckEvery
	// drains and compares counters against limits as facts are added.
	// When either trips, stop is set and addFact freezes — no new facts
	// or worklist entries — so the run winds down with the partial (but
	// individually sound) fact set it had.
	ctx    context.Context
	limits Limits
	steps  int   // worklist drains performed
	nfacts int   // points-to edges recorded
	stop   *Stop // non-nil once the run is aborted

	unknown *ir.Object // non-nil under Options.UseUnknown
	misuses []Misuse
	flagged map[*ir.Stmt]bool

	pts      map[Cell]CellSet
	factObjs map[*ir.Object][]Cell // cells with facts, per object (for edges)

	edgeSet map[Edge]bool
	edgeIdx map[*ir.Object][]Edge // copy edges indexed by source object

	watchers map[Cell][]watch
	bound    map[callBinding]bool
	memDone  map[memPair]bool

	// Difference propagation (Heintze–Tardieu): the worklist holds cells
	// whose points-to sets grew, and delta holds, per cell, exactly the
	// targets added since the cell was last processed. Rules and copy
	// edges therefore fire once per *new* fact, and the per-cell watcher
	// and edge lists are walked once per batch of new facts rather than
	// once per fact.
	delta map[Cell][]Cell
	dirty []Cell
}

func (s *solver) norm(obj *ir.Object, path ir.Path) Cell {
	return s.strat.Normalize(obj, path)
}

func (s *solver) run() {
	// Seed: process every statement once, polling for cancellation on the
	// same cadence as the fixpoint loop (a pathological unit can make even
	// seeding expensive — AddrOf replays and Copy resolves run here).
	for i, st := range s.prog.Stmts {
		if s.stop != nil {
			return
		}
		if i%cancelCheckEvery == 0 {
			s.checkCtx()
		}
		s.initStmt(st)
	}
	// Fixpoint over cell deltas.
	for len(s.dirty) > 0 {
		if s.stop != nil {
			return
		}
		if s.limits.MaxSteps > 0 && s.steps >= s.limits.MaxSteps {
			s.abort(StopMaxSteps, s.limits.MaxSteps, nil)
			return
		}
		if s.steps%cancelCheckEvery == 0 {
			if s.checkCtx(); s.stop != nil {
				return
			}
		}
		s.steps++
		c := s.dirty[len(s.dirty)-1]
		s.dirty = s.dirty[:len(s.dirty)-1]
		s.drain(c)
	}
}

// checkCtx polls the run's context and aborts on cancellation.
func (s *solver) checkCtx() {
	if s.ctx == nil || s.stop != nil {
		return
	}
	if err := s.ctx.Err(); err != nil {
		s.abort(stopFor(err), 0, err)
	}
}

// abort freezes the solver with the given stop reason; the first abort wins.
func (s *solver) abort(reason StopReason, limit int, err error) {
	if s.stop != nil {
		return
	}
	s.stop = &Stop{
		Reason: reason,
		Steps:  s.steps,
		Facts:  s.nfacts,
		Cells:  len(s.pts),
		Limit:  limit,
		Err:    err,
	}
}

func (s *solver) initStmt(st *ir.Stmt) {
	switch st.Op {
	case ir.OpAddrOf:
		why := ""
		if traceCell != "" {
			why = "addrof " + st.String()
		}
		s.addFactWhy(s.norm(st.Dst, nil), s.norm(st.Src, st.Path), why)

	case ir.OpCopy:
		dst := s.norm(st.Dst, nil)
		src := s.norm(st.Src, st.Path)
		for _, e := range s.strat.Resolve(dst, src, st.Dst.Type) {
			s.addEdge(e)
		}

	case ir.OpAddrField, ir.OpLoad:
		s.watch(s.norm(st.Ptr, nil), st, 0)

	case ir.OpStore:
		if st.Src == nil {
			return // store of a pointer-free value
		}
		s.watch(s.norm(st.Ptr, nil), st, 0)

	case ir.OpMemCopy:
		s.watch(s.norm(st.Ptr, nil), st, 0)
		s.watch(s.norm(st.Src, nil), st, 1)

	case ir.OpPtrArith:
		s.watch(s.norm(st.Src, nil), st, 0)

	case ir.OpCall:
		s.watch(s.norm(st.Ptr, nil), st, 0)
	}
}

// watch registers the statement and replays existing facts at the cell.
func (s *solver) watch(c Cell, st *ir.Stmt, role int) {
	s.watchers[c] = append(s.watchers[c], watch{stmt: st, role: role})
	if set, ok := s.pts[c]; ok {
		for tgt := range set {
			s.applyRule(watch{stmt: st, role: role}, tgt)
		}
	}
}

// traceCell, when set via PTRTRACE, dumps every fact added to a matching
// cell together with the rule that produced it (debug aid).
var traceCell = os.Getenv("PTRTRACE")

func (s *solver) addFactWhy(c, tgt Cell, why string) {
	if traceCell != "" && strings.Contains(c.String(), traceCell) {
		fmt.Printf("TRACE %s += %s   [%s]\n", c, tgt, why)
	}
	s.addFact(c, tgt)
}

// addFact records pointsTo(c, tgt) and schedules propagation of the delta.
// Once the run is aborted the solver is frozen: no new facts, no new
// worklist entries — the fact set stays exactly what had been derived.
func (s *solver) addFact(c, tgt Cell) {
	if s.stop != nil {
		return
	}
	set, ok := s.pts[c]
	if !ok {
		if s.limits.MaxCells > 0 && len(s.pts) >= s.limits.MaxCells {
			s.abort(StopMaxCells, s.limits.MaxCells, nil)
			return
		}
		set = make(CellSet)
		s.pts[c] = set
	}
	if !set.Add(tgt) {
		return
	}
	s.nfacts++
	if s.limits.MaxFacts > 0 && s.nfacts >= s.limits.MaxFacts {
		s.abort(StopMaxFacts, s.limits.MaxFacts, nil)
		// The fact that tripped the limit stays recorded (it is sound);
		// only propagation of it is skipped.
		return
	}
	if len(set) == 1 {
		s.factObjs[c.Obj] = append(s.factObjs[c.Obj], c)
	}
	if s.delta == nil {
		s.delta = make(map[Cell][]Cell)
	}
	pend := s.delta[c]
	if len(pend) == 0 {
		s.dirty = append(s.dirty, c)
	}
	s.delta[c] = append(pend, tgt)
}

// drain pushes a cell's pending delta through copy edges and statement
// premises. Rules fired here may grow the delta of any cell, including c
// itself; addFact re-enqueues it in that case.
func (s *solver) drain(c Cell) {
	batch := s.delta[c]
	if len(batch) == 0 {
		return
	}
	s.delta[c] = nil
	// Copy edges whose source object matches. The edge list is snapshotted
	// by the range header: edges added while draining replay existing facts
	// themselves (addEdge), so they must not also see this batch.
	for _, e := range s.edgeIdx[c.Obj] {
		if dst, ok := s.strat.PropagateEdge(e, c); ok {
			why := ""
			if traceCell != "" {
				why = "edge " + e.String()
			}
			for _, tgt := range batch {
				s.addFactWhy(dst, tgt, why)
			}
		}
	}
	// Statement premises on this cell.
	for _, w := range s.watchers[c] {
		for _, tgt := range batch {
			s.applyRule(w, tgt)
		}
	}
}

// addEdge records a copy edge and replays existing facts at its source.
func (s *solver) addEdge(e Edge) {
	if s.edgeSet[e] {
		return
	}
	s.edgeSet[e] = true
	s.edgeIdx[e.Src.Obj] = append(s.edgeIdx[e.Src.Obj], e)
	for _, c := range s.factObjs[e.Src.Obj] {
		if dst, ok := s.strat.PropagateEdge(e, c); ok {
			for tgt := range s.pts[c] {
				s.addFact(dst, tgt)
			}
		}
	}
}

// memCopy resolves one (dst target, src target) pair of a memcopy statement,
// skipping pairs already resolved from the other operand's watch.
func (s *solver) memCopy(st *ir.Stmt, dst, src Cell) {
	key := memPair{stmt: st, dst: dst, src: src}
	if s.memDone[key] {
		return
	}
	if s.memDone == nil {
		s.memDone = make(map[memPair]bool)
	}
	s.memDone[key] = true
	for _, e := range s.strat.Resolve(dst, src, nil) {
		s.addEdge(e)
	}
}

// pointeeType returns the declared pointee type of a pointer-valued object.
func pointeeType(o *ir.Object) *types.Type {
	if o == nil || o.Type == nil {
		return nil
	}
	t := o.Type
	for t.Kind == types.Array {
		t = t.Elem
	}
	if t.Kind == types.Ptr {
		return t.Elem
	}
	return nil
}

// applyRule fires one statement rule for a newly discovered pointer target.
func (s *solver) applyRule(w watch, tgt Cell) {
	st := w.stmt
	if s.unknown != nil && tgt.Obj == s.unknown {
		// A possibly corrupted pointer reaches a dereference (or call):
		// flag it once and do not derive referents from Unknown.
		switch st.Op {
		case ir.OpAddrField, ir.OpLoad, ir.OpStore, ir.OpMemCopy, ir.OpCall:
			if s.flagged == nil {
				s.flagged = make(map[*ir.Stmt]bool)
			}
			if !s.flagged[st] {
				s.flagged[st] = true
				ptr := ""
				if st.Ptr != nil {
					ptr = st.Ptr.Name
				}
				s.misuses = append(s.misuses, Misuse{Pos: st.Pos, Stmt: st.String(), Ptr: ptr})
			}
			return
		}
	}
	switch st.Op {
	case ir.OpAddrField:
		// Rule 2: s = &((*p).α).
		dst := s.norm(st.Dst, nil)
		why := ""
		if traceCell != "" {
			why = "addrfield " + st.String()
		}
		for _, c := range s.strat.Lookup(pointeeType(st.Ptr), st.Path, tgt) {
			s.addFactWhy(dst, c, why)
		}

	case ir.OpLoad:
		// Rule 4: s = *q — lookup identifies the referenced location
		// (counted, like Rule 2's lookups), then the copy is resolved
		// with the LHS type fixing the extent.
		dst := s.norm(st.Dst, nil)
		for _, loc := range s.strat.Lookup(pointeeType(st.Ptr), nil, tgt) {
			for _, e := range s.strat.Resolve(dst, loc, st.Dst.Type) {
				s.addEdge(e)
			}
		}

	case ir.OpStore:
		// Rule 5: *p = t — lookup identifies the stored-to location;
		// the declared pointee type of p fixes the extent
		// (Complication 4).
		τ := pointeeType(st.Ptr)
		if τ == nil && st.Src.Type != nil {
			τ = st.Src.Type
		}
		src := s.norm(st.Src, nil)
		for _, loc := range s.strat.Lookup(τ, nil, tgt) {
			for _, e := range s.strat.Resolve(loc, src, τ) {
				s.addEdge(e)
			}
		}

	case ir.OpMemCopy:
		// Block copy of unknown extent between two pointees: resolve each
		// (dst target, src target) pair exactly once.
		if w.role == 0 {
			for src := range s.pts[s.norm(st.Src, nil)] {
				s.memCopy(st, tgt, src)
			}
		} else {
			for dst := range s.pts[s.norm(st.Ptr, nil)] {
				s.memCopy(st, dst, tgt)
			}
		}

	case ir.OpPtrArith:
		// Assumption 1: the result may point to any sub-field of the
		// pointed-to object (or of any structure containing it, which
		// the outermost-object representation already covers). The
		// sub-fields are the statically known cells of the object; for
		// untyped heap storage this approximates interior offsets by
		// the block's base cell (see DESIGN.md §6).
		dst := s.norm(st.Dst, nil)
		s.addFact(dst, tgt)
		if !s.opts.NoPtrArithSmear {
			for _, c := range s.strat.CellsOf(tgt.Obj) {
				s.addFact(dst, c)
			}
		}
		if s.unknown != nil {
			s.addFact(dst, Cell{Obj: s.unknown})
		}

	case ir.OpCall:
		// Context-insensitive binding.
		if tgt.Obj.Kind != ir.ObjFunc || tgt.Obj.Sym == nil {
			return
		}
		fn := s.prog.FuncOf[tgt.Obj.Sym]
		if fn == nil {
			return
		}
		key := callBinding{stmt: st, fn: tgt.Obj}
		if s.bound[key] {
			return
		}
		s.bound[key] = true
		for i, arg := range st.Args {
			if arg == nil {
				continue
			}
			argCell := s.norm(arg, nil)
			if i < len(fn.Params) && fn.Params[i] != nil {
				p := fn.Params[i]
				for _, e := range s.strat.Resolve(s.norm(p, nil), argCell, p.Type) {
					s.addEdge(e)
				}
			} else if fn.Varargs != nil {
				for _, e := range s.strat.Resolve(s.norm(fn.Varargs, nil), argCell, arg.Type) {
					s.addEdge(e)
				}
			}
		}
		if fn.Retval != nil && st.Dst != nil {
			for _, e := range s.strat.Resolve(s.norm(st.Dst, nil), s.norm(fn.Retval, nil), st.Dst.Type) {
				s.addEdge(e)
			}
		}
	}
}
