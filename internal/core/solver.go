package core

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/cc/token"
	"repro/internal/cc/types"
	"repro/internal/ir"
)

// Result is the outcome of one analysis run.
//
// The solver produces results in the dense CellID/Bits representation; the
// map[Cell]CellSet view that PointsTo, PointsToCell and Cells expose is
// materialized lazily, once, on first use (metrics-only consumers — Total-
// Facts, SiteSetSize, AvgDerefSetSize — read the dense form directly and
// never pay for it). Materialization is guarded by a sync.Once, so a Result
// remains safe for concurrent use.
type Result struct {
	Strategy Strategy
	Program  *ir.Program

	// Dense form (nil table for results built by AnalyzeReference, which
	// constructs the map view directly).
	table *CellTable
	dense []Bits

	// redirect maps every CellID onto its union-find representative when
	// online cycle elimination merged cells (nil otherwise): a merged
	// member's observable points-to set IS its representative's set — the
	// set every member provably converges to — so queries, dumps and
	// metrics read dense[redirect[id]] and stay byte-identical to a run
	// without merging.
	redirect []CellID

	matOnce sync.Once
	pts     map[Cell]CellSet

	Duration time.Duration

	// Steps counts worklist drains performed by the run.
	Steps int

	// Wave counts the constraint-graph layer's work: SCCs collapsed,
	// cells merged, waves run, and batched vs per-fact edge traversals.
	Wave WaveStats

	// Incomplete is non-nil when the solver stopped before fixpoint — a
	// resource limit tripped or the context was canceled. The facts
	// recorded up to the stop are all individually justified by the
	// inference rules (sound over what was seen); only further
	// derivations are missing, so the result is a subset of the fixpoint.
	Incomplete *Stop

	// Misuses lists flagged dereferences of possibly corrupted pointers
	// (populated only under Options.UseUnknown).
	Misuses []Misuse
}

// set returns the dense points-to set of id, following the cycle-merge
// redirect when one exists.
func (r *Result) set(id CellID) *Bits {
	if r.redirect != nil {
		id = r.redirect[id]
	}
	return &r.dense[id]
}

// points returns the map view, materializing it from the dense form on
// first use.
func (r *Result) points() map[Cell]CellSet {
	r.matOnce.Do(func() {
		if r.pts != nil {
			return // built directly by the reference solver
		}
		m := make(map[Cell]CellSet)
		for id := range r.dense {
			set := r.set(CellID(id))
			if set.Len() == 0 {
				continue
			}
			cs := make(CellSet, set.Len())
			set.Iterate(func(t CellID) { cs[r.table.Cell(t)] = struct{}{} })
			m[r.table.Cell(CellID(id))] = cs
		}
		r.pts = m
	})
	return r.pts
}

// PointsTo returns the points-to set of the normalized cell for obj.path.
func (r *Result) PointsTo(obj *ir.Object, path ir.Path) CellSet {
	c := r.Strategy.Normalize(obj, path)
	return r.points()[c]
}

// PointsToCell returns the points-to set of a cell.
func (r *Result) PointsToCell(c Cell) CellSet { return r.points()[c] }

// Cells iterates over all cells with non-empty points-to sets, in map order.
// Use SortedCells when the iteration order must be deterministic.
func (r *Result) Cells(fn func(c Cell, set CellSet)) {
	for c, s := range r.points() {
		if len(s) > 0 {
			fn(c, s)
		}
	}
}

// SortedCells returns every cell with a non-empty points-to set in the
// stable display order of CellSet.Sorted, so dumps, graphs and golden tests
// do not depend on Go's randomized map iteration.
func (r *Result) SortedCells() []Cell {
	pts := r.points()
	cells := make(CellSet, len(pts))
	for c, s := range pts {
		if len(s) > 0 {
			cells[c] = struct{}{}
		}
	}
	return cells.Sorted()
}

// NumCells returns the number of cells the run interned — for a full solve,
// every cell any statement or fact touched; for a demand slice, only the
// cells of the explored subgraph. It is the denominator of the demand
// engine's slice-size ratio.
func (r *Result) NumCells() int {
	if r.table != nil {
		return r.table.Len()
	}
	return len(r.pts)
}

// TotalFacts is the total number of points-to edges (Figure 6's metric).
// It reads the dense form and does not materialize the map view.
func (r *Result) TotalFacts() int {
	if r.table != nil {
		n := 0
		for i := range r.dense {
			n += r.set(CellID(i)).Len()
		}
		return n
	}
	n := 0
	for _, s := range r.pts {
		n += len(s)
	}
	return n
}

// SiteSetSize returns the (expanded) points-to set size of a dereference
// site: the number of fields the dereferenced pointer may reference, with
// collapsed facts expanded per-field as in Figure 4. Like TotalFacts it
// reads the dense form directly.
func (r *Result) SiteSetSize(site *ir.DerefSite) int {
	if r.table != nil {
		c := r.Strategy.Normalize(site.Ptr, nil)
		id, ok := r.table.Find(c)
		if !ok || int(id) >= len(r.dense) {
			return 0
		}
		n := 0
		r.set(id).Iterate(func(t CellID) { n += r.Strategy.ExpandedSize(r.table.Cell(t)) })
		return n
	}
	set := r.PointsTo(site.Ptr, nil)
	n := 0
	for c := range set {
		n += r.Strategy.ExpandedSize(c)
	}
	return n
}

// AvgDerefSetSize is Figure 4's metric: the average points-to set size over
// all static dereference sites.
func (r *Result) AvgDerefSetSize() float64 {
	if len(r.Program.Sites) == 0 {
		return 0
	}
	total := 0
	for _, s := range r.Program.Sites {
		total += r.SiteSetSize(s)
	}
	return float64(total) / float64(len(r.Program.Sites))
}

// Options tunes the solver; the zero value is the paper's configuration.
type Options struct {
	// NoPtrArithSmear disables the Assumption 1 rule: pointer arithmetic
	// results then keep only the operand's own targets instead of
	// smearing over every sub-field. Unsound; provided as an ablation.
	NoPtrArithSmear bool

	// Limits bounds solver resources; the zero value is unlimited. See
	// the Limits type for partial-result semantics when a bound trips.
	Limits Limits

	// NoCycleElim disables online cycle elimination and the topological
	// wave scheduler, falling back to the classic per-cell LIFO worklist.
	// Results are identical either way (the constraint-graph layer is an
	// observable-preserving optimization); provided as an ablation and a
	// kill switch.
	NoCycleElim bool

	// Parallelism is the number of workers the wave scheduler may use
	// inside one solve. 0 and 1 run the sequential executor; higher values
	// shard each wave's ranked frontier across that many workers
	// (parwave.go), with work stealing between them. Points-to fact sets
	// are byte-identical at every setting and across runs at any
	// GOMAXPROCS; schedule-dependent performance counters (Waves,
	// EdgeBatches, FactCrossings, and the ParWave* family) are a
	// deterministic function of (program, strategy, Parallelism) except
	// WaveStats.ParSteals, which depends on runtime scheduling. The knob
	// is inert — sequential — whenever the constraint-graph layer is off
	// (NoCycleElim, resource Limits, or a non-exact-edge strategy).
	Parallelism int

	// UseUnknown implements the alternative §4.2.1 sketches before
	// adopting Assumption 1: pointer-arithmetic results additionally
	// carry a special Unknown value representing a possibly corrupted
	// pointer, and every dereference whose pointer may be Unknown is
	// flagged as a potential misuse of memory (Result.Misuses). The
	// paper rejects this as the *sole* strategy for being overly
	// pessimistic; here it augments the Assumption 1 treatment to
	// provide the flagging capability the paper describes.
	UseUnknown bool

	// NoPrepass disables the offline constraint-reduction prepass
	// (prepass.go) and the hash-consed set interner (bitsintern.go).
	// Both are observable-preserving optimizations — facts and Figure-3
	// counters are byte-identical either way — so the switch is an
	// ablation and a kill switch, excluded from cache keys and graph
	// identity. Like the wave layer, the pair engages only for
	// exact-edge strategies with zero Limits, and never under
	// UseUnknown or an incremental resume.
	NoPrepass bool

	// TrackPeakMem samples runtime.ReadMemStats at wave barriers (and on
	// a coarse cadence in the classic worklist) and records the highest
	// observed live-heap size in WaveStats.PeakLiveBytes. Off by default:
	// each sample is a stop-the-world sweep, so the knob is for
	// benchmarking (ptrbench -peak-mem), not production solves. The
	// sampled value is machine- and GC-schedule-dependent and is never
	// part of any identity or regression comparison.
	TrackPeakMem bool
}

// Misuse flags one dereference of a possibly corrupted pointer.
type Misuse struct {
	Pos  token.Pos
	Stmt string
	Ptr  string
}

// Analyze runs the flow-insensitive, context-insensitive fixpoint over the
// program with the given strategy.
func Analyze(prog *ir.Program, strat Strategy) *Result {
	return AnalyzeWith(prog, strat, Options{})
}

// AnalyzeWith is Analyze with explicit solver options.
func AnalyzeWith(prog *ir.Program, strat Strategy, opts Options) *Result {
	return AnalyzeContext(context.Background(), prog, strat, opts)
}

// cancelCheckEvery is how many worklist drains pass between context polls.
// Drains are microsecond-scale, so this bounds cancellation latency well
// below a millisecond while keeping the poll off the per-fact hot path.
const cancelCheckEvery = 64

// AnalyzeContext is AnalyzeWith under a context: cancellation (or the
// deadline) stops the fixpoint between worklist drains and the partial
// result comes back with Result.Incomplete set. A nil Incomplete means the
// run reached fixpoint.
func AnalyzeContext(ctx context.Context, prog *ir.Program, strat Strategy, opts Options) *Result {
	s := newSolver(ctx, prog, strat, opts)
	start := time.Now()
	s.run()
	return s.finish(start)
}

// SeedFact pre-loads one cell's known points-to targets before the
// fixpoint runs: the incremental-resume path seeds a fresh solver with
// facts proven by a prior solve over the unchanged slice of the program.
type SeedFact struct {
	Cell    Cell
	Targets []Cell
}

// AnalyzeSeededContext is AnalyzeContext with the fact store pre-loaded.
// The caller warrants that every seeded fact is a member of the program's
// fixpoint (internal/incr proves this with its taint analysis); the solver
// then converges to exactly the fixpoint an unseeded run reaches — seeded
// facts enter pts with no pending delta, so they behave precisely like
// facts whose propagation already completed: watcher registration replays
// them once and copy-edge creation pushes them across, but no drain
// cascade re-derives them. Seeding composes only with zero Limits (the
// per-fact trip accounting is defined against a cold schedule); callers
// must fall back to a cold solve otherwise.
func AnalyzeSeededContext(ctx context.Context, prog *ir.Program, strat Strategy, opts Options, seeds []SeedFact) *Result {
	return AnalyzeResumeContext(ctx, prog, strat, opts, ResumeState{Seeds: seeds})
}

// ResumeState is the frozen slice of a prior solve that a warm run starts
// from. Beyond the seeded facts it can carry the prior solve's copy edges
// and a set of statements whose constraint generation the prior solve
// already performed in full:
//
//   - Edges are installed before the fixpoint with no source replay and no
//     strategy Resolve call. The caller warrants each edge was present in
//     the prior solve between cells whose seeded sets are complete, so the
//     prior fixpoint's closure guarantees the destination set already
//     contains everything the skipped replay would have pushed.
//   - SkipReplay statements register their watchers WITHOUT the single-fire
//     replay of facts present at registration, and skip their OpAddrOf /
//     OpCopy seeding work entirely. The caller warrants that the facts a
//     skipped statement would have been replayed (exactly the seeded sets
//     of its watched cells — nothing else is in pts before the run) are the
//     ones the prior solve already fired through it, that every cell it
//     writes is seeded with its complete final set, and that its copy edges
//     are in Edges. New facts arriving during the run still fire skipped
//     statements normally (drains and SCC merge deliveries only ever carry
//     facts absent from a cell's set, which seeded facts never are).
//
// The elided firings' Figure-3 counter contributions are NOT recorded on
// the strategy — the caller accounts for them separately (internal/incr
// carries per-statement contributions captured from the prior solve), which
// is what keeps a warm solve's counters byte-identical to a cold one while
// doing only delta work.
type ResumeState struct {
	Seeds      []SeedFact
	Edges      []Edge
	SkipReplay map[*ir.Stmt]bool
}

// AnalyzeResumeContext is the generalized seeded entry point: it loads the
// ResumeState (seeds, then restored edges, then the replay-suppression set)
// and runs the ordinary fixpoint. With only Seeds set it is exactly
// AnalyzeSeededContext. Same Limits caveat: zero Limits only.
func AnalyzeResumeContext(ctx context.Context, prog *ir.Program, strat Strategy, opts Options, rs ResumeState) *Result {
	s := newSolver(ctx, prog, strat, opts)
	if len(rs.Seeds) > 0 || len(rs.Edges) > 0 || rs.SkipReplay != nil {
		// A warm resume starts from a prior solve's state, which the
		// prepass signature computation does not model (seeded facts are
		// indistinguishable from direct ones); skip both it and the
		// interner. Observables are schedule-independent, so warm and
		// cold solves still agree byte for byte.
		s.prep, s.intern = nil, nil
	}
	s.skip = rs.SkipReplay
	start := time.Now()
	s.seed(rs.Seeds)
	for _, e := range rs.Edges {
		s.restoreEdge(e)
	}
	s.run()
	return s.finish(start)
}

// seed pre-loads the fact store. Seeded facts enter pts only — never delta —
// so they are invisible to drains and merge obligations.
func (s *solver) seed(seeds []SeedFact) {
	for _, sf := range seeds {
		// Intern the targets before taking the set pointer: interning can
		// grow (and reallocate) s.pts.
		ids := s.getScratch()
		for _, t := range sf.Targets {
			ids = append(ids, s.cellID(t))
		}
		c := s.cellID(sf.Cell)
		set := &s.pts[c]
		isNew := set.Len() == 0
		s.seedBits(set)
		added := 0
		for _, id := range ids {
			if set.Add(id) {
				added++
			}
		}
		if added > 0 {
			s.nfacts += added
			if isNew {
				s.ncells++
				s.recordFactObj(c)
			}
		}
		s.putScratch(ids)
	}
}

// restoreEdge installs a copy edge proven by a prior solve: deduplicated
// like addEdge and indexed identically, but with no replay of the source's
// facts (the ResumeState contract makes the replay a no-op) and no strategy
// involvement. It runs before any statement processing, so find() is the
// identity and no merge bookkeeping exists yet to update.
func (s *solver) restoreEdge(e Edge) {
	src := s.cellID(e.Src)
	dst := s.cellID(e.Dst)
	key := edgeKey{dst: dst, src: src, size: e.Size}
	if s.edgeSet[key] {
		return
	}
	s.edgeSet[key] = true
	if s.exact && e.Size == 0 {
		if cap(s.exactOut[src]) == 0 {
			s.exactOut[src] = s.arenaIDs(2)
		}
		if s.waves {
			s.edgesSinceSCC++
			if len(s.exactOut[src]) == 0 {
				s.exactSrcs = append(s.exactSrcs, src)
			}
		}
		s.exactOut[src] = append(s.exactOut[src], dst)
		return
	}
	s.hasRange = true
	if s.edgeIdx == nil {
		s.edgeIdx = make(map[*ir.Object][]Edge)
	}
	s.edgeIdx[e.Src.Obj] = append(s.edgeIdx[e.Src.Obj], e)
}

// DenseState exposes a dense result's final solver state for serialization
// by the incremental-resume subsystem: every interned cell in first-seen
// order, the union-find redirect produced by online cycle elimination (nil
// when no cells merged — every cell is its own representative), and each
// representative's points-to set as sorted CellIDs (nil both for empty sets
// and for merged-away members, whose facts live on their representative).
// It returns ok=false for results built by AnalyzeReference, which have no
// dense form.
func (r *Result) DenseState() (cells []Cell, redirect []CellID, sets [][]CellID, ok bool) {
	if r.table == nil {
		return nil, nil, nil, false
	}
	n := r.table.Len()
	cells = make([]Cell, n)
	for i := 0; i < n; i++ {
		cells[i] = r.table.Cell(CellID(i))
	}
	sets = make([][]CellID, n)
	for i := 0; i < n; i++ {
		id := CellID(i)
		if r.redirect != nil && r.redirect[id] != id {
			continue
		}
		if b := &r.dense[id]; b.Len() > 0 {
			sets[i] = b.AppendTo(make([]CellID, 0, b.Len()))
		}
	}
	return cells, r.redirect, sets, true
}

// newSolver builds a solver over the program with empty fact state; run (or
// the demand engine's pump) drives it to fixpoint afterwards.
func newSolver(ctx context.Context, prog *ir.Program, strat Strategy, opts Options) *solver {
	nobj := len(prog.Objects)
	s := &solver{
		ctx:       ctx,
		limits:    opts.Limits,
		prog:      prog,
		strat:     strat,
		opts:      opts,
		table:     NewCellTable(),
		normCache: make(map[*ir.Object]CellID, nobj),
		factObjs:  make(map[*ir.Object][]CellID, nobj),
		edgeSet:   make(map[edgeKey]bool, 4*nobj),
		bound:     make(map[callBinding]bool),
		pts:       make([]Bits, 0, 2*nobj),
		delta:     make([]Bits, 0, 2*nobj),
		watchers:  make([][]watch, 0, 2*nobj),
		exactOut:  make([][]CellID, 0, 2*nobj),
	}
	if ee, ok := strat.(exactEdger); ok {
		s.exact = ee.exactEdges()
	}
	// Wave scheduling + online cycle elimination: exact-edge strategies
	// only (range edges are excluded from collapse by construction), and
	// only without fact/cell limits — merging equalizes whole sets at
	// once, which the per-fact trip accounting of MaxFacts/MaxCells (and
	// the step accounting of MaxSteps) is defined against.
	s.waves = s.exact && !opts.NoCycleElim && opts.Limits == (Limits{})
	// The parallel wave executor needs the wave scheduler, and the PTRTRACE
	// debug dump needs the strictly sequential schedule to stay readable.
	if opts.Parallelism > 1 && s.waves && traceCell == "" {
		s.par = newParExec(opts.Parallelism)
	}
	// Offline prepass + set interner: exact edges and zero limits for the
	// same reasons as the wave layer (signatures are defined over the
	// static exact-edge graph; merging equalizes sets wholesale), no
	// UseUnknown (the unknown object's facts are injected per rule firing,
	// outside the static signature model), and a sequential trace. The
	// pair is independent of NoCycleElim: merges ride the same union-find
	// whether or not the wave scheduler runs.
	if s.exact && !opts.NoPrepass && opts.Limits == (Limits{}) && !opts.UseUnknown && traceCell == "" {
		s.prep = &prepState{}
		s.intern = newBitsIntern()
	}
	if opts.UseUnknown {
		s.unknown = &ir.Object{ID: -1, Name: "<unknown>", Kind: ir.ObjVar}
	}
	return s
}

// finish packages the solver's state as a Result.
func (s *solver) finish(start time.Time) *Result {
	if s.intern != nil && s.stop == nil {
		// Final interning pass: the retained Result shares one allocation
		// per distinct set value, and merged-away members release their
		// dead pre-merge storage (queries read the representative through
		// Result.redirect, never the member's own set).
		s.internFinal()
	}
	s.samplePeak()
	res := &Result{
		Strategy:   s.strat,
		Program:    s.prog,
		table:      s.table,
		dense:      s.pts,
		Duration:   time.Since(start),
		Steps:      s.steps,
		Incomplete: s.stop,
		Misuses:    s.misuses,
		Wave:       s.stats,
	}
	if s.merged {
		red := make([]CellID, len(s.pts))
		for i := range red {
			red[i] = s.find(CellID(i))
		}
		res.redirect = red
	}
	return res
}

// watch is a registered statement premise: when a new points-to fact lands
// on the watched cell, the statement's rule fires with that fact.
type watch struct {
	stmt *ir.Stmt
	role int // for OpMemCopy: 0 = destination pointer, 1 = source pointer
}

type callBinding struct {
	stmt *ir.Stmt
	fn   *ir.Object
}

// memPairID identifies one (destination target, source target) pair of a
// memcopy statement, keyed by interned ids. See memPair in refsolver.go for
// why pairs are resolved exactly once.
type memPairID struct {
	stmt     *ir.Stmt
	dst, src CellID
}

// edgeKey dedups copy edges by interned endpoints — cheaper to hash than an
// Edge (two Cell structs), and equivalent since interning is injective.
type edgeKey struct {
	dst, src CellID
	size     int64
}

// solver runs the Figure-2 fixpoint on the dense representation: every cell
// is interned to a CellID once — when a strategy hands it across the API
// boundary — and all per-fact state (points-to sets, deltas, edge indexes,
// watcher lists) is indexed by id. The hot loop therefore never hashes a
// Cell struct and never allocates per fact; batch propagation through copy
// edges is a word-wise Bits union.
type solver struct {
	prog  *ir.Program
	strat Strategy
	opts  Options

	// Resource governance: the fixpoint polls ctx every cancelCheckEvery
	// drains and compares counters against limits as facts are added.
	// When either trips, stop is set and addFact freezes — no new facts
	// or worklist entries — so the run winds down with the partial (but
	// individually sound) fact set it had.
	ctx    context.Context
	limits Limits
	steps  int   // worklist drains performed
	nfacts int   // points-to edges recorded
	ncells int   // distinct cells holding facts (non-empty pts sets)
	stop   *Stop // non-nil once the run is aborted

	unknown *ir.Object // non-nil under Options.UseUnknown
	misuses []Misuse
	flagged map[*ir.Stmt]bool

	table     *CellTable
	normCache map[*ir.Object]CellID // Normalize(obj, nil) interned, per object

	pts      []Bits                  // points-to sets, indexed by CellID
	delta    []Bits                  // pending new targets, indexed by CellID
	dirty    []CellID                // cells whose delta is non-empty
	watchers [][]watch               // statement premises, indexed by CellID
	factObjs map[*ir.Object][]CellID // cells with facts, per object (for edges)

	edgeSet map[edgeKey]bool
	// Copy-edge indexes. Strategies whose PropagateEdge fires exactly on
	// the edge's source cell (the field-based instances) get their edges
	// indexed by source CellID — drain then walks a []CellID instead of
	// filtering every edge on the source object. Range edges (Offsets) and
	// edges from unknown strategies stay in the by-object index and go
	// through PropagateEdge.
	exact    bool
	exactOut [][]CellID            // exact edges: src id → dst ids
	edgeIdx  map[*ir.Object][]Edge // range/generic edges by source object
	hasRange bool

	bound   map[callBinding]bool
	memDone map[memPairID]bool

	// skip, when non-nil (incremental resume), marks statements whose
	// constraint generation the prior solve already performed: initStmt
	// registers their watchers without the single-fire replay and omits
	// their AddrOf/Copy work. See ResumeState.
	skip map[*ir.Stmt]bool

	// noteEdge, when set (demand engine only), observes every deduplicated
	// copy edge as (destination object, source object) — the demand
	// engine's backward-dependency signal.
	noteEdge func(dst, src *ir.Object)

	// prep, when non-nil, collects the seeding-time inputs of the offline
	// constraint-reduction prepass, which run() executes between statement
	// seeding and the fixpoint (prepass.go). intern, when non-nil, is the
	// per-solve hash-consed set pool with its copy-on-write flags
	// (bitsintern.go). Both are nil under Options.NoPrepass, for demand
	// solvers, and on incremental resumes.
	prep   *prepState
	intern *bitsIntern

	// Constraint-graph layer (congraph.go). waves gates the whole layer:
	// it is on for exact-edge strategies running without fact/cell limits
	// (merging equalizes sets wholesale, which per-fact limit accounting
	// cannot attribute). parent is the union-find forest, rank the last
	// Tarjan pass's topological order, redundant the evidence counter
	// that re-arms detection, merged whether any SCC collapsed.
	waves         bool
	merged        bool
	par           *parExec // non-nil when Options.Parallelism > 1 and waves are on
	parent        []CellID
	rank          []int32
	redundant     int
	edgesSinceSCC int // exact edges added since the last detection pass
	stats         WaveStats

	// Reusable buffers for the wave scheduler and Tarjan passes, so a solve
	// that runs detection more than once (or many waves) does not reallocate
	// its O(cells) working state each time.
	topo      []CellID   // ranked subgraph in Tarjan pop order (sinks first)
	waveBuf   []uint64   // packed ids of one wave's residual (unranked) cells
	dirtyPrev []CellID   // previous wave's dirty list, swapped to avoid reallocation
	exactSrcs []CellID   // cells with exact out-edges: Tarjan's root set (may hold dups)
	sccIndex  []int32    // Tarjan visit numbers (0 = unvisited outside a pass)
	sccLow    []int32    // Tarjan low-links
	sccOn     []bool     // on-stack flags
	sccSeen   []CellID   // vertices visited this pass, for O(visited) index reset
	sccStack  []CellID   // Tarjan component stack
	sccFrames []sccFrame // explicit DFS stack

	// Reusable buffers: id snapshots for iterate-while-mutating sites and
	// drained delta bitsets. Both are stacks so reentrant rule firing
	// (applyRule → addEdge → replay) gets its own buffer.
	scratch  [][]CellID
	bitsFree []Bits

	// Chunked arenas: most per-cell slices (a points-to set's first blocks,
	// a cell's watcher list, an exact-edge adjacency list) stay tiny, so
	// they carve their initial capacity out of shared slabs instead of
	// allocating individually. A slice that outgrows its slot falls back
	// to the normal append path; the abandoned slot is the price of one
	// oversized set, not a leak.
	blockArena []bitsBlock
	watchArena []watch
	idArena    []CellID
}

// arenaBlocks returns an empty capacity-c block slice carved from the slab.
func (s *solver) arenaBlocks(c int) []bitsBlock {
	if len(s.blockArena) < c {
		s.blockArena = make([]bitsBlock, 512)
	}
	out := s.blockArena[:0:c]
	s.blockArena = s.blockArena[c:]
	return out
}

// seedBits gives an untouched Bits its initial arena-backed capacity.
func (s *solver) seedBits(b *Bits) {
	if cap(b.blocks) == 0 {
		b.blocks = s.arenaBlocks(4)
	}
}

func (s *solver) arenaWatch(c int) []watch {
	if len(s.watchArena) < c {
		s.watchArena = make([]watch, 256)
	}
	out := s.watchArena[:0:c]
	s.watchArena = s.watchArena[c:]
	return out
}

func (s *solver) arenaIDs(c int) []CellID {
	if len(s.idArena) < c {
		s.idArena = make([]CellID, 512)
	}
	out := s.idArena[:0:c]
	s.idArena = s.idArena[c:]
	return out
}

func (s *solver) norm(obj *ir.Object, path ir.Path) Cell {
	return s.strat.Normalize(obj, path)
}

// cellID interns c and grows the id-indexed state to cover it.
func (s *solver) cellID(c Cell) CellID {
	id := s.table.ID(c)
	if n := s.table.Len(); n > len(s.pts) {
		if n <= cap(s.pts) {
			s.pts = s.pts[:n]
			s.delta = s.delta[:n]
			s.watchers = s.watchers[:n]
			s.exactOut = s.exactOut[:n]
		} else {
			grow := n * 2
			pts := make([]Bits, n, grow)
			copy(pts, s.pts)
			s.pts = pts
			delta := make([]Bits, n, grow)
			copy(delta, s.delta)
			s.delta = delta
			watchers := make([][]watch, n, grow)
			copy(watchers, s.watchers)
			s.watchers = watchers
			exactOut := make([][]CellID, n, grow)
			copy(exactOut, s.exactOut)
			s.exactOut = exactOut
		}
	}
	return id
}

// normID interns Normalize(obj, nil) through a per-object cache: rule
// firings normalize the same destination objects over and over, and for the
// field strategies each Normalize allocates a path string.
func (s *solver) normID(obj *ir.Object) CellID {
	if id, ok := s.normCache[obj]; ok {
		return id
	}
	id := s.cellID(s.norm(obj, nil))
	s.normCache[obj] = id
	return id
}

func (s *solver) getScratch() []CellID {
	if n := len(s.scratch); n > 0 {
		b := s.scratch[n-1]
		s.scratch = s.scratch[:n-1]
		return b[:0]
	}
	return make([]CellID, 0, 64)
}

func (s *solver) putScratch(b []CellID) { s.scratch = append(s.scratch, b) }

func (s *solver) takeBits() Bits {
	if n := len(s.bitsFree); n > 0 {
		b := s.bitsFree[n-1]
		s.bitsFree = s.bitsFree[:n-1]
		return b
	}
	return Bits{}
}

func (s *solver) recycleBits(b Bits) {
	b.Clear()
	s.bitsFree = append(s.bitsFree, b)
}

func (s *solver) run() {
	// Seed: process every statement once, polling for cancellation on the
	// same cadence as the fixpoint loop (a pathological unit can make even
	// seeding expensive — AddrOf replays and Copy resolves run here).
	for i, st := range s.prog.Stmts {
		if s.stop != nil {
			return
		}
		if i%cancelCheckEvery == 0 {
			s.checkCtx()
		}
		s.initStmt(st)
	}
	if s.prep != nil && s.stop == nil {
		// Offline constraint reduction: merge pointer-equivalent cells
		// over the static graph before any fixpoint propagation pays for
		// them (prepass.go).
		s.runPrepass()
	}
	s.samplePeak()
	if s.waves {
		// Topological wave scheduling with online cycle elimination
		// (congraph.go); observables are identical to the classic loop.
		s.runWaves()
		return
	}
	s.runLoop()
}

// runLoop is the classic per-cell LIFO fixpoint over cell deltas. It is the
// schedule used without wave mode, and the propagation phase the demand
// engine alternates with slice expansion.
func (s *solver) runLoop() {
	for len(s.dirty) > 0 {
		if s.stop != nil {
			return
		}
		if s.limits.MaxSteps > 0 && s.steps >= s.limits.MaxSteps {
			s.abort(StopMaxSteps, s.limits.MaxSteps, nil)
			return
		}
		if s.steps%cancelCheckEvery == 0 {
			if s.checkCtx(); s.stop != nil {
				return
			}
		}
		if s.opts.TrackPeakMem && s.steps%peakSampleEvery == 0 {
			// No wave barriers in the classic loop: sample on a coarse
			// drain cadence instead.
			s.samplePeak()
		}
		s.steps++
		c := s.dirty[len(s.dirty)-1]
		s.dirty = s.dirty[:len(s.dirty)-1]
		s.drain(c)
	}
}

// checkCtx polls the run's context and aborts on cancellation.
func (s *solver) checkCtx() {
	if s.ctx == nil || s.stop != nil {
		return
	}
	if err := s.ctx.Err(); err != nil {
		s.abort(stopFor(err), 0, err)
	}
}

// abort freezes the solver with the given stop reason; the first abort wins.
func (s *solver) abort(reason StopReason, limit int, err error) {
	if s.stop != nil {
		return
	}
	s.stop = &Stop{
		Reason: reason,
		Steps:  s.steps,
		Facts:  s.nfacts,
		Cells:  s.ncells,
		Limit:  limit,
		Err:    err,
	}
}

func (s *solver) initStmt(st *ir.Stmt) {
	if s.skip != nil && s.skip[st] {
		s.initSkipped(st)
		return
	}
	switch st.Op {
	case ir.OpAddrOf:
		dst, tgt := s.normID(st.Dst), s.cellID(s.norm(st.Src, st.Path))
		if s.prep != nil {
			// The prepass needs the direct (address-of) facts separate
			// from facts that arrived by propagation, and by seeding time
			// the two are indistinguishable in pts — so log them here.
			s.prep.direct = append(s.prep.direct, [2]CellID{dst, tgt})
		}
		s.addFact(dst, tgt)

	case ir.OpCopy:
		dst := s.norm(st.Dst, nil)
		src := s.norm(st.Src, st.Path)
		for _, e := range s.strat.Resolve(dst, src, st.Dst.Type) {
			s.addEdge(e)
		}

	case ir.OpAddrField, ir.OpLoad:
		s.watch(s.normID(st.Ptr), st, 0)

	case ir.OpStore:
		if st.Src == nil {
			return // store of a pointer-free value
		}
		s.watch(s.normID(st.Ptr), st, 0)

	case ir.OpMemCopy:
		s.watch(s.normID(st.Ptr), st, 0)
		s.watch(s.normID(st.Src), st, 1)

	case ir.OpPtrArith:
		s.watch(s.normID(st.Src), st, 0)

	case ir.OpCall:
		s.watch(s.normID(st.Ptr), st, 0)
	}
}

// initSkipped processes a statement the ResumeState marked as already
// performed by the prior solve: its AddrOf fact is seeded, its Copy/rule
// edges are restored, and its elided rule firings are carried in the
// caller's counter contribution — so only the watcher registrations remain,
// with the replay suppressed. Facts arriving after registration (always new
// facts: seeded ones never enter a delta, a merge obligation, or a drain)
// fire it like any other watcher.
func (s *solver) initSkipped(st *ir.Stmt) {
	switch st.Op {
	case ir.OpAddrField, ir.OpLoad, ir.OpCall, ir.OpPtrArith:
		ptr := st.Ptr
		if st.Op == ir.OpPtrArith {
			ptr = st.Src
		}
		s.register(s.normID(ptr), st, 0)
	case ir.OpStore:
		if st.Src != nil {
			s.register(s.normID(st.Ptr), st, 0)
		}
	case ir.OpMemCopy:
		s.register(s.normID(st.Ptr), st, 0)
		s.register(s.normID(st.Src), st, 1)
	}
	// OpAddrOf, OpCopy: nothing left to do.
}

// register appends a watcher with no replay.
func (s *solver) register(c CellID, st *ir.Stmt, role int) {
	c = s.find(c)
	if cap(s.watchers[c]) == 0 {
		s.watchers[c] = s.arenaWatch(2)
	}
	s.watchers[c] = append(s.watchers[c], watch{stmt: st, role: role})
}

// watch registers the statement and replays existing facts at the cell.
// The replay is single-fire: facts still pending in the cell's delta are
// skipped here because the coming drain (or SCC merge delivery) fires them
// to every registered watcher, including this one. Each (watcher, fact)
// pair therefore fires exactly once regardless of when the watcher
// registered relative to the fact's propagation — the invariant mergeSCC's
// obligation snapshot assumes, and what makes the Figure-3 counters a pure
// function of (program, strategy) rather than of the schedule, so a warm
// incremental resume reproduces them byte-identically.
func (s *solver) watch(c CellID, st *ir.Stmt, role int) {
	c = s.find(c)
	if cap(s.watchers[c]) == 0 {
		s.watchers[c] = s.arenaWatch(2)
	}
	s.watchers[c] = append(s.watchers[c], watch{stmt: st, role: role})
	if s.pts[c].Len() > 0 {
		buf := s.pts[c].AppendTo(s.getScratch())
		if s.delta[c].Len() > 0 {
			kept := buf[:0]
			for _, tgt := range buf {
				if !s.delta[c].Has(tgt) {
					kept = append(kept, tgt)
				}
			}
			buf = kept
		}
		for _, tgt := range buf {
			s.applyRule(watch{stmt: st, role: role}, s.table.Cell(tgt), tgt)
		}
		s.putScratch(buf)
	}
}

// traceCell, when set via PTRTRACE, dumps every fact added to a matching
// cell together with the rule that produced it (debug aid).
var traceCell = os.Getenv("PTRTRACE")

// addFact records pointsTo(c, tgt) and schedules propagation of the delta.
// Once the run is aborted the solver is frozen: no new facts, no new
// worklist entries — the fact set stays exactly what had been derived.
func (s *solver) addFact(c, tgt CellID) {
	if s.stop != nil {
		return
	}
	c = s.find(c)
	set := &s.pts[c]
	isNew := set.Len() == 0
	if isNew && s.limits.MaxCells > 0 && s.ncells >= s.limits.MaxCells {
		s.abort(StopMaxCells, s.limits.MaxCells, nil)
		return
	}
	if s.sharedSet(c) {
		if set.Has(tgt) {
			return // no mutation: keep sharing the interned allocation
		}
		s.cowSet(c)
	}
	s.seedBits(set)
	if !set.Add(tgt) {
		return
	}
	if traceCell != "" {
		cc := s.table.Cell(c)
		if strings.Contains(cc.String(), traceCell) {
			fmt.Printf("TRACE %s += %s\n", cc, s.table.Cell(tgt))
		}
	}
	if isNew {
		s.ncells++
	}
	s.nfacts++
	if s.limits.MaxFacts > 0 && s.nfacts >= s.limits.MaxFacts {
		s.abort(StopMaxFacts, s.limits.MaxFacts, nil)
		// The fact that tripped the limit stays recorded (it is sound);
		// only propagation of it is skipped.
		return
	}
	if isNew {
		s.recordFactObj(c)
	}
	if s.delta[c].Len() == 0 {
		s.dirty = append(s.dirty, c)
	}
	s.seedBits(&s.delta[c])
	s.delta[c].Add(tgt)
}

// recordFactObj indexes a newly non-empty cell under its object.
func (s *solver) recordFactObj(c CellID) {
	obj := s.table.Cell(c).Obj
	lst := s.factObjs[obj]
	if cap(lst) == 0 {
		lst = s.arenaIDs(4)
	}
	s.factObjs[obj] = append(lst, c)
}

// mergeFrom unions src's points-to set into dst's, pushing exactly the new
// facts, and reports how many were new (the cycle-detection trigger watches
// for repeated zero-gain merges). It is the batch form of addFact used for
// copy-edge propagation: with no fact/cell limits configured (the common
// case) the union is a word-wise Bits merge with no per-fact work at all;
// under limits it falls back to per-fact accounting so trip points match
// addFact exactly.
func (s *solver) mergeFrom(dst CellID, src *Bits) int {
	dst = s.find(dst)
	if s.stop != nil || src.Len() == 0 || src == &s.pts[dst] {
		return 0
	}
	if s.limits.MaxFacts > 0 || s.limits.MaxCells > 0 {
		before := s.pts[dst].Len()
		buf := src.AppendTo(s.getScratch())
		for _, tgt := range buf {
			s.addFact(dst, tgt)
		}
		s.putScratch(buf)
		return s.pts[dst].Len() - before
	}
	set := &s.pts[dst]
	isNew := set.Len() == 0
	if s.sharedSet(dst) {
		if src.n <= set.n && set.subsumes(src) {
			return 0 // no-gain merge: keep sharing the interned allocation
		}
		s.cowSet(dst)
	}
	s.seedBits(set)
	buf := set.UnionDiff(src, s.getScratch())
	added := len(buf)
	if len(buf) > 0 {
		if traceCell != "" {
			cc := s.table.Cell(dst)
			if strings.Contains(cc.String(), traceCell) {
				for _, tgt := range buf {
					fmt.Printf("TRACE %s += %s\n", cc, s.table.Cell(tgt))
				}
			}
		}
		if isNew {
			s.ncells++
			s.recordFactObj(dst)
		}
		s.nfacts += len(buf)
		d := &s.delta[dst]
		if d.Len() == 0 {
			s.dirty = append(s.dirty, dst)
		}
		s.seedBits(d)
		for _, tgt := range buf {
			d.Add(tgt)
		}
	}
	s.putScratch(buf)
	return added
}

// drain pushes a cell's pending delta through copy edges and statement
// premises. Rules fired here may grow the delta of any cell, including c
// itself; addFact re-enqueues it in that case.
func (s *solver) drain(c CellID) {
	if s.delta[c].Len() == 0 {
		return
	}
	batch := s.delta[c]
	s.delta[c] = s.takeBits()
	// Exact copy edges out of this cell (field strategies): whole-batch
	// bitset merges. The slice header snapshots the edge list: edges added
	// while draining replay existing facts themselves (addEdge), so they
	// must not also see this batch.
	for _, dst := range s.exactOut[c] {
		rd := s.find(dst)
		if rd == c {
			continue // self-loop left by a merge: delta ⊆ pts already
		}
		s.stats.EdgeBatches++
		s.stats.FactCrossings += batch.Len()
		if s.mergeFrom(rd, &batch) == 0 {
			s.redundant++ // zero-gain merge: evidence of a cycle
		} else {
			s.redundant = 0
		}
	}
	// Range/generic edges whose source object matches, filtered through
	// the strategy's PropagateEdge. (Mutually exclusive with wave mode:
	// exactEdger strategies never emit Size != 0 edges, so hasRange implies
	// the identity find() and no merged cells.)
	if s.hasRange {
		cCell := s.table.Cell(c)
		for _, e := range s.edgeIdx[cCell.Obj] {
			if dst, ok := s.strat.PropagateEdge(e, cCell); ok {
				s.stats.EdgeBatches++
				s.stats.FactCrossings += batch.Len()
				s.mergeFrom(s.cellID(dst), &batch)
			}
		}
	}
	// Statement premises on this cell.
	for _, w := range s.watchers[c] {
		buf := batch.AppendTo(s.getScratch())
		for _, tgt := range buf {
			s.applyRule(w, s.table.Cell(tgt), tgt)
		}
		s.putScratch(buf)
	}
	s.recycleBits(batch)
}

// addEdge records a copy edge and replays existing facts at its source.
// Endpoints are interned here — once per distinct edge — so propagation and
// deduplication never re-hash a Cell struct.
func (s *solver) addEdge(e Edge) {
	src := s.cellID(e.Src)
	dst := s.cellID(e.Dst)
	key := edgeKey{dst: dst, src: src, size: e.Size}
	if s.edgeSet[key] {
		return
	}
	s.edgeSet[key] = true
	if s.noteEdge != nil {
		s.noteEdge(e.Dst.Obj, e.Src.Obj)
	}
	if s.exact && e.Size == 0 {
		rs := s.find(src)
		if cap(s.exactOut[rs]) == 0 {
			s.exactOut[rs] = s.arenaIDs(2)
		}
		if s.waves {
			s.edgesSinceSCC++
			if len(s.exactOut[rs]) == 0 {
				s.exactSrcs = append(s.exactSrcs, rs)
			}
		}
		s.exactOut[rs] = append(s.exactOut[rs], dst)
		if rd := s.find(dst); rd != rs && s.pts[rs].Len() > 0 {
			s.stats.EdgeBatches++
			s.stats.FactCrossings += s.pts[rs].Len()
			s.mergeFrom(rd, &s.pts[rs])
		}
		return
	}
	s.hasRange = true
	if s.edgeIdx == nil {
		s.edgeIdx = make(map[*ir.Object][]Edge)
	}
	s.edgeIdx[e.Src.Obj] = append(s.edgeIdx[e.Src.Obj], e)
	for _, cid := range s.factObjs[e.Src.Obj] {
		if dst, ok := s.strat.PropagateEdge(e, s.table.Cell(cid)); ok {
			if dstID := s.cellID(dst); dstID != cid {
				s.mergeFrom(dstID, &s.pts[cid])
			}
		}
	}
}

// memCopy resolves one (dst target, src target) pair of a memcopy statement,
// skipping pairs already resolved from the other operand's watch.
func (s *solver) memCopy(st *ir.Stmt, dst, src CellID) {
	key := memPairID{stmt: st, dst: dst, src: src}
	if s.memDone[key] {
		return
	}
	if s.memDone == nil {
		s.memDone = make(map[memPairID]bool)
	}
	s.memDone[key] = true
	for _, e := range s.strat.Resolve(s.table.Cell(dst), s.table.Cell(src), nil) {
		s.addEdge(e)
	}
}

// pointeeType returns the declared pointee type of a pointer-valued object.
func pointeeType(o *ir.Object) *types.Type {
	if o == nil || o.Type == nil {
		return nil
	}
	t := o.Type
	for t.Kind == types.Array {
		t = t.Elem
	}
	if t.Kind == types.Ptr {
		return t.Elem
	}
	return nil
}

// applyRule fires one statement rule for a newly discovered pointer target.
// tgt and tgtID are the same cell in both representations: rules hand Cells
// to the strategy boundary and ids to the fact store.
func (s *solver) applyRule(w watch, tgt Cell, tgtID CellID) {
	st := w.stmt
	if s.unknown != nil && tgt.Obj == s.unknown {
		// A possibly corrupted pointer reaches a dereference (or call):
		// flag it once and do not derive referents from Unknown.
		switch st.Op {
		case ir.OpAddrField, ir.OpLoad, ir.OpStore, ir.OpMemCopy, ir.OpCall:
			if s.flagged == nil {
				s.flagged = make(map[*ir.Stmt]bool)
			}
			if !s.flagged[st] {
				s.flagged[st] = true
				ptr := ""
				if st.Ptr != nil {
					ptr = st.Ptr.Name
				}
				s.misuses = append(s.misuses, Misuse{Pos: st.Pos, Stmt: st.String(), Ptr: ptr})
			}
			return
		}
	}
	switch st.Op {
	case ir.OpAddrField:
		// Rule 2: s = &((*p).α).
		dst := s.normID(st.Dst)
		for _, c := range s.strat.Lookup(pointeeType(st.Ptr), st.Path, tgt) {
			s.addFact(dst, s.cellID(c))
		}

	case ir.OpLoad:
		// Rule 4: s = *q — lookup identifies the referenced location
		// (counted, like Rule 2's lookups), then the copy is resolved
		// with the LHS type fixing the extent.
		dst := s.norm(st.Dst, nil)
		for _, loc := range s.strat.Lookup(pointeeType(st.Ptr), nil, tgt) {
			for _, e := range s.strat.Resolve(dst, loc, st.Dst.Type) {
				s.addEdge(e)
			}
		}

	case ir.OpStore:
		// Rule 5: *p = t — lookup identifies the stored-to location;
		// the declared pointee type of p fixes the extent
		// (Complication 4).
		τ := pointeeType(st.Ptr)
		if τ == nil && st.Src.Type != nil {
			τ = st.Src.Type
		}
		src := s.norm(st.Src, nil)
		for _, loc := range s.strat.Lookup(τ, nil, tgt) {
			for _, e := range s.strat.Resolve(loc, src, τ) {
				s.addEdge(e)
			}
		}

	case ir.OpMemCopy:
		// Block copy of unknown extent between two pointees: resolve each
		// (dst target, src target) pair exactly once.
		other := st.Src
		if w.role != 0 {
			other = st.Ptr
		}
		if id := s.find(s.normID(other)); s.pts[id].Len() > 0 {
			buf := s.pts[id].AppendTo(s.getScratch())
			if w.role == 0 {
				for _, src := range buf {
					s.memCopy(st, tgtID, src)
				}
			} else {
				for _, dst := range buf {
					s.memCopy(st, dst, tgtID)
				}
			}
			s.putScratch(buf)
		}

	case ir.OpPtrArith:
		// Assumption 1: the result may point to any sub-field of the
		// pointed-to object (or of any structure containing it, which
		// the outermost-object representation already covers). The
		// sub-fields are the statically known cells of the object; for
		// untyped heap storage this approximates interior offsets by
		// the block's base cell (see DESIGN.md §6).
		dst := s.normID(st.Dst)
		s.addFact(dst, tgtID)
		if !s.opts.NoPtrArithSmear {
			for _, c := range s.strat.CellsOf(tgt.Obj) {
				s.addFact(dst, s.cellID(c))
			}
		}
		if s.unknown != nil {
			s.addFact(dst, s.normID(s.unknown))
		}

	case ir.OpCall:
		// Context-insensitive binding.
		if tgt.Obj.Kind != ir.ObjFunc || tgt.Obj.Sym == nil {
			return
		}
		fn := s.prog.FuncOf[tgt.Obj.Sym]
		if fn == nil {
			return
		}
		key := callBinding{stmt: st, fn: tgt.Obj}
		if s.bound[key] {
			return
		}
		s.bound[key] = true
		for i, arg := range st.Args {
			if arg == nil {
				continue
			}
			argCell := s.norm(arg, nil)
			if i < len(fn.Params) && fn.Params[i] != nil {
				p := fn.Params[i]
				for _, e := range s.strat.Resolve(s.norm(p, nil), argCell, p.Type) {
					s.addEdge(e)
				}
			} else if fn.Varargs != nil {
				for _, e := range s.strat.Resolve(s.norm(fn.Varargs, nil), argCell, arg.Type) {
					s.addEdge(e)
				}
			}
		}
		if fn.Retval != nil && st.Dst != nil {
			for _, e := range s.strat.Resolve(s.norm(st.Dst, nil), s.norm(fn.Retval, nil), st.Dst.Type) {
				s.addEdge(e)
			}
		}
	}
}
