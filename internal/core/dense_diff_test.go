package core_test

// Differential test for the dense CellID/Bits solver rewrite: AnalyzeWith
// (dense) and AnalyzeReference (the retained map-based solver, refsolver.go)
// must agree exactly — same SortedCells dump, same Figure-6 fact count, same
// Figure-4 dereference sizes, same Figure-3 logical-call instrumentation —
// on every corpus program, under all four strategies, with memoization both
// on and off.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/frontend"
	"repro/internal/metrics"
)

// denseFactDump renders a result as the canonical sorted fact listing.
func denseFactDump(res *core.Result) string {
	var sb strings.Builder
	for _, c := range res.SortedCells() {
		sb.WriteString(c.String())
		sb.WriteString(" -> {")
		for i, t := range res.PointsToCell(c).Sorted() {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(t.String())
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

func recorderLine(r *core.Recorder) string {
	return fmt.Sprintf("lk=%d lkS=%d lkM=%d rs=%d rsS=%d rsM=%d",
		r.LookupCalls, r.LookupStructs, r.LookupMismatches,
		r.ResolveCalls, r.ResolveStructs, r.ResolveMismatches)
}

func TestDenseSolverMatchesReference(t *testing.T) {
	names := corpus.SortedByGroup()
	if testing.Short() {
		names = names[:4]
	}
	for _, name := range names {
		src, err := corpus.Source(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := frontend.Load(src, frontend.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, sname := range metrics.StrategyNames {
			for _, memo := range []bool{true, false} {
				label := fmt.Sprintf("%s/%s/memo=%v", name, sname, memo)
				t.Run(label, func(t *testing.T) {
					mkStrat := func() core.Strategy {
						s := metrics.NewStrategy(sname, res.Layout)
						if m, ok := s.(core.Memoizer); ok {
							m.SetMemoization(memo)
						}
						return s
					}

					denseStrat := mkStrat()
					dense := core.Analyze(res.IR, denseStrat)
					refStrat := mkStrat()
					ref := core.AnalyzeReference(res.IR, refStrat, core.Options{})

					if dense.Incomplete != nil || ref.Incomplete != nil {
						t.Fatalf("unexpected incomplete run: dense=%v ref=%v",
							dense.Incomplete, ref.Incomplete)
					}
					if d, r := dense.TotalFacts(), ref.TotalFacts(); d != r {
						t.Errorf("TotalFacts: dense=%d ref=%d", d, r)
					}
					if d, r := dense.AvgDerefSetSize(), ref.AvgDerefSetSize(); d != r {
						t.Errorf("AvgDerefSetSize: dense=%v ref=%v", d, r)
					}
					if d, r := denseFactDump(dense), denseFactDump(ref); d != r {
						t.Errorf("fact dump mismatch:\n--- dense ---\n%s--- reference ---\n%s", d, r)
					}
					if d, r := recorderLine(denseStrat.Recorder()), recorderLine(refStrat.Recorder()); d != r {
						t.Errorf("Figure-3 counters: dense(%s) ref(%s)", d, r)
					}
				})
			}
		}
	}
}
