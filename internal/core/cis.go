package core

import (
	"repro/internal/cc/types"
	"repro/internal/ir"
)

// CIS implements the §4.3.3 "Common Initial Sequence" instance: like
// Collapse on Cast, but when two structure types share a common initial
// sequence (ISO C guarantees identical layout for it), accesses within that
// sequence still match field-for-field even across a cast. Portable, and
// the most precise of the portable instances.
type CIS struct {
	fieldOps
}

var _ Strategy = (*CIS)(nil)

// NewCIS returns the Common Initial Sequence instance.
func NewCIS() *CIS {
	return &CIS{fieldOps: newFieldOps()}
}

// Name implements Strategy.
func (s *CIS) Name() string { return "common-initial-seq" }

// Recorder implements Strategy.
func (s *CIS) Recorder() *Recorder { return &s.rec }

// Normalize implements Strategy (same normalize as Collapse on Cast).
func (s *CIS) Normalize(obj *ir.Object, path ir.Path) Cell {
	return s.normalize(obj, path)
}

// lookup is the uncounted core of CIS lookup:
//
//  1. If some enclosing candidate δ of the target cell has a type
//     compatible with τ, the access maps exactly (the full common case).
//  2. Otherwise, if some candidate's type shares a non-empty common initial
//     sequence with τ and the accessed field lies inside it, the access
//     maps to the corresponding field.
//  3. Otherwise all fields of the target object starting at the first field
//     after the common initial sequence (or at the target itself when the
//     sequence is empty) are returned.
func (s *CIS) lookup(τ *types.Type, path ir.Path, target Cell) ([]Cell, bool) {
	obj := target.Obj
	if obj.Type == nil {
		return []Cell{target}, true
	}
	cands := candidatesFor(obj.Type, target.PathSlice())

	for _, cand := range cands {
		if types.CompatibleLax(τ, cand.typ) {
			full := cand.path.Extend(path...)
			return []Cell{s.normalize(obj, full)}, false
		}
	}

	// Partial match through a common initial sequence.
	if isRecordType(τ) && !τ.Record.Union && len(path) > 0 {
		for _, cand := range cands {
			if cand.typ == nil || !cand.typ.IsRecord() || cand.typ.Record.Union {
				continue
			}
			pairs := types.CommonInitialSequence(τ.Record, cand.typ.Record)
			if len(pairs) == 0 {
				continue
			}
			ai := τ.Record.FieldIndex(path[0])
			if ai >= 0 && ai < len(pairs) {
				// Inside the sequence: corresponding field, then the
				// rest of the path (member types are compatible, so
				// the remaining components exist on both sides).
				bName := cand.typ.Record.Fields[pairs[ai].B].Name
				full := cand.path.Extend(bName).Extend(path[1:]...)
				return []Cell{s.normalize(obj, full)}, true
			}
			// Outside the sequence: all fields of the object starting
			// with the first field after the sequence.
			start := cand.path
			if len(pairs) < len(cand.typ.Record.Fields) {
				start = cand.path.Extend(cand.typ.Record.Fields[len(pairs)].Name)
				norm := normalizePath(obj.Type, start)
				return s.smear(Cell{Obj: obj, Path: JoinPath(norm)}), true
			}
			// The sequence covers the whole candidate: spill into the
			// fields following the candidate (Complication 1).
			return s.smearAfterPrefix(obj, cand.path), true
		}
	}

	return s.smear(target), true
}

// smearAfterPrefix returns all cells of obj strictly after the leaves that
// live under prefix (used when an access runs past the end of a nested
// structure).
func (s *CIS) smearAfterPrefix(obj *ir.Object, prefix ir.Path) []Cell {
	ls := s.leaves(obj.Type)
	var out []Cell
	past := false
	for _, l := range ls {
		if hasPrefix(l, prefix) {
			past = true
			continue
		}
		if past {
			out = append(out, Cell{Obj: obj, Path: JoinPath(l)})
		}
	}
	if len(out) == 0 {
		// Nothing follows: keep the last cell of the candidate so that
		// the result is never empty (safe fallback).
		return s.smear(s.normalize(obj, prefix))
	}
	return out
}

func hasPrefix(p, prefix ir.Path) bool {
	if len(prefix) > len(p) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

// Lookup implements Strategy (memoized; see memo.go).
func (s *CIS) Lookup(τ *types.Type, path ir.Path, target Cell) []Cell {
	return s.memoLookup(s.lookup, τ, path, target)
}

// Resolve implements Strategy (memoized; see memo.go).
func (s *CIS) Resolve(dst, src Cell, τ *types.Type) []Edge {
	return s.memoResolve(s.lookup, dst, src, τ)
}

// CellsOf implements Strategy.
func (s *CIS) CellsOf(obj *ir.Object) []Cell { return s.cellsOf(obj) }

// ExpandedSize implements Strategy.
func (s *CIS) ExpandedSize(c Cell) int { return s.expandedSize(c) }

// PropagateEdge implements Strategy.
func (s *CIS) PropagateEdge(e Edge, src Cell) (Cell, bool) {
	return exactEdgePropagate(e, src)
}
