package core

import (
	"repro/internal/cc/types"
	"repro/internal/ir"
)

// Recorder counts lookup/resolve activity, reproducing the instrumentation
// behind Figure 3 of the paper (columns 5–8). Calls to lookup made from
// inside resolve are not counted, matching the paper's footnote.
type Recorder struct {
	LookupCalls      int
	LookupStructs    int // calls that involved structures
	LookupMismatches int // struct calls where the types did not match

	ResolveCalls      int
	ResolveStructs    int
	ResolveMismatches int

	// Cache counters for the strategy-level memoization. The call counts
	// above are LOGICAL calls — hits increment them too — so Figure 3's
	// semantics are unchanged by caching; hits+misses always equals the
	// corresponding call count.
	LookupCacheHits    int
	LookupCacheMisses  int
	ResolveCacheHits   int
	ResolveCacheMisses int
}

func (r *Recorder) recordLookup(isStruct, mismatch bool) {
	if r == nil {
		return
	}
	r.LookupCalls++
	if isStruct {
		r.LookupStructs++
		if mismatch {
			r.LookupMismatches++
		}
	}
}

func (r *Recorder) recordResolve(isStruct, mismatch bool) {
	if r == nil {
		return
	}
	r.ResolveCalls++
	if isStruct {
		r.ResolveStructs++
		if mismatch {
			r.ResolveMismatches++
		}
	}
}

// Strategy is one instance of the framework: definitions of normalize,
// lookup and resolve (§4.2.2, §4.3), plus the cell-universe helpers the
// solver and the metrics need.
type Strategy interface {
	// Name identifies the instance ("offsets", "collapse-always", ...).
	Name() string

	// Normalize maps an object plus source-level field path to its
	// canonical cell (the paper's normalize).
	Normalize(obj *ir.Object, path ir.Path) Cell

	// Lookup returns the cells actually referenced when a pointer
	// declared to point to τ is dereferenced with field selector path,
	// while actually pointing at target (the paper's lookup).
	Lookup(τ *types.Type, path ir.Path, target Cell) []Cell

	// Resolve matches the cells copied when an object is block-copied:
	// dst and src are the normalized endpoints and τ is the declared
	// type of the assignment's left-hand side, which fixes the copy
	// size (the paper's resolve; τ == nil means a copy of unknown
	// extent, e.g. memcpy).
	Resolve(dst, src Cell, τ *types.Type) []Edge

	// CellsOf enumerates the normalized cells of an object (used for
	// the Assumption 1 pointer-arithmetic smearing and for metrics).
	CellsOf(obj *ir.Object) []Cell

	// ExpandedSize is the number of source-level fields the cell stands
	// for — 1 for a field-precise cell, the flattened field count for a
	// collapsed object (Figure 4's expansion of Collapse Always facts).
	ExpandedSize(c Cell) int

	// PropagateEdge applies a copy edge to a fact arriving at cell src:
	// it returns the destination cell when the edge carries that cell.
	PropagateEdge(e Edge, src Cell) (Cell, bool)

	// Recorder returns the instrumentation counters (may be nil).
	Recorder() *Recorder
}

// exactEdgePropagate is the shared PropagateEdge for the field strategies:
// an edge carries exactly its source cell.
func exactEdgePropagate(e Edge, src Cell) (Cell, bool) {
	if e.Src == src {
		return e.Dst, true
	}
	return Cell{}, false
}

// exactEdger is an optional Strategy refinement. A strategy whose
// PropagateEdge is exactEdgePropagate for every Size==0 edge it produces —
// i.e. an edge carries exactly its source cell, never a range of offsets —
// can declare so and the solver indexes those edges by interned source id,
// turning per-fact PropagateEdge filtering into a direct adjacency walk with
// whole-batch bitset merges. Strategies that do not implement it (or range
// edges like the Offsets instance's) go through the generic PropagateEdge
// path unchanged.
type exactEdger interface {
	exactEdges() bool
}

// ExactEdges reports whether the strategy declares exact-only copy edges
// (every edge it resolves carries exactly its source cell, Size == 0). The
// incremental-resume subsystem gates its replay-elision optimization on
// this: restored edges and suppressed replays are only provably equivalent
// to a cold schedule when edge propagation is a plain per-cell union.
func ExactEdges(s Strategy) bool {
	ee, ok := s.(exactEdger)
	return ok && ee.exactEdges()
}
