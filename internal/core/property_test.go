package core

// Property-based tests (testing/quick) over the framework's core data
// structures: type flattening, normalization, candidate search, offset
// canonicalization and solver determinism.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cc/layout"
	"repro/internal/cc/types"
	"repro/internal/frontend"
	"repro/internal/ir"
)

// genType builds a random C type tree.
func genType(r *rand.Rand, u *types.Universe, depth int) *types.Type {
	if depth <= 0 {
		return genScalar(r, u)
	}
	switch r.Intn(6) {
	case 0:
		return types.PointerTo(genType(r, u, depth-1))
	case 1:
		return types.ArrayOf(genType(r, u, depth-1), int64(1+r.Intn(8)))
	case 2, 3:
		return genRecord(r, u, depth-1, false)
	case 4:
		return genRecord(r, u, depth-1, true)
	default:
		return genScalar(r, u)
	}
}

var scalarKinds = []types.Kind{
	types.Char, types.SChar, types.UChar, types.Short, types.UShort,
	types.Int, types.UInt, types.Long, types.ULong, types.Float, types.Double,
}

func genScalar(r *rand.Rand, u *types.Universe) *types.Type {
	return u.Basic(scalarKinds[r.Intn(len(scalarKinds))])
}

var recordCounter int

func genRecord(r *rand.Rand, u *types.Universe, depth int, union bool) *types.Type {
	recordCounter++
	t := u.NewRecord("", union)
	n := 1 + r.Intn(5)
	for i := 0; i < n; i++ {
		name := string(rune('a'+i)) + "f"
		t.Record.Fields = append(t.Record.Fields, types.Field{
			Name: name, Type: genType(r, u, depth-1), BitWidth: -1,
		})
	}
	t.Record.Complete = true
	return t
}

func TestPropertyLeafPathsResolve(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	u := types.NewUniverse()
	for i := 0; i < 300; i++ {
		typ := genType(r, u, 4)
		leaves := leafPaths(typ)
		if len(leaves) == 0 {
			t.Fatalf("type %s has no leaves", typ)
		}
		for _, l := range leaves {
			if typeAt(typ, l) == nil {
				t.Fatalf("leaf %v of %s does not resolve", l, typ)
			}
		}
	}
}

func TestPropertyNormalizeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	u := types.NewUniverse()
	for i := 0; i < 300; i++ {
		typ := genType(r, u, 4)
		for _, l := range leafPaths(typ) {
			n1 := normalizePath(typ, l)
			n2 := normalizePath(typ, n1)
			if !pathEq(n1, n2) {
				t.Fatalf("normalize not idempotent on %s: %v -> %v -> %v", typ, l, n1, n2)
			}
		}
		// The empty path normalizes to the first leaf (or a union cell).
		n := normalizePath(typ, nil)
		if !pathEq(normalizePath(typ, n), n) {
			t.Fatalf("normalize(ε) not stable on %s: %v", typ, n)
		}
	}
}

func TestPropertyCandidatesNormalizeBack(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	u := types.NewUniverse()
	for i := 0; i < 300; i++ {
		typ := genType(r, u, 4)
		for _, l := range leafPaths(typ) {
			norm := normalizePath(typ, l)
			for _, cand := range candidatesFor(typ, norm) {
				if !pathEq(normalizePath(typ, cand.path), norm) {
					t.Fatalf("candidate %v of %s does not normalize back to %v",
						cand.path, typ, norm)
				}
			}
			// The cell itself must always be among the candidates.
			cands := candidatesFor(typ, norm)
			found := false
			for _, c := range cands {
				if pathEq(c.path, norm) {
					found = true
				}
			}
			if !found {
				t.Fatalf("cell %v missing from its own candidates on %s", norm, typ)
			}
		}
	}
}

func TestPropertyFollowingLeavesSuffix(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	u := types.NewUniverse()
	for i := 0; i < 300; i++ {
		typ := genType(r, u, 4)
		leaves := leafPaths(typ)
		// followingLeaves from the first leaf is everything; from the
		// last leaf it is exactly that leaf.
		first := followingLeaves(typ, leaves[0])
		if len(first) != len(leaves) {
			t.Fatalf("followingLeaves(first) = %d leaves, want %d on %s",
				len(first), len(leaves), typ)
		}
		last := followingLeaves(typ, leaves[len(leaves)-1])
		if len(last) != 1 {
			t.Fatalf("followingLeaves(last) = %d leaves, want 1 on %s", len(last), typ)
		}
	}
}

func TestPropertyLeafCountConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	u := types.NewUniverse()
	for i := 0; i < 300; i++ {
		typ := genType(r, u, 4)
		// leafCount counts through unions, leafPaths collapses them, so
		// count ≥ paths; equal when no unions are present.
		if leafCount(typ) < len(leafPaths(typ)) {
			t.Fatalf("leafCount %d < leaf paths %d on %s",
				leafCount(typ), len(leafPaths(typ)), typ)
		}
	}
}

func TestPropertyOffsetsCanonBounds(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	u := types.NewUniverse()
	lay := layout.New(nil)
	s := NewOffsets(lay)
	nextID := 0
	for i := 0; i < 300; i++ {
		typ := genType(r, u, 4)
		size := lay.Sizeof(typ)
		if size <= 0 {
			continue
		}
		nextID++
		obj := &ir.Object{ID: nextID, Name: "o", Kind: ir.ObjVar, Type: typ}
		for trial := 0; trial < 20; trial++ {
			off := r.Int63n(3 * size)
			got, ok := s.canon(obj, off)
			if !ok {
				continue
			}
			if got < 0 || got >= size {
				t.Fatalf("canon(%s, %d) = %d outside [0,%d)", typ, off, got, size)
			}
			// Idempotence.
			got2, ok2 := s.canon(obj, got)
			if !ok2 || got2 != got {
				t.Fatalf("canon not idempotent on %s: %d -> %d -> %d(%v)",
					typ, off, got, got2, ok2)
			}
		}
		// Every static leaf offset must be canonical already.
		for _, c := range s.CellsOf(obj) {
			got, ok := s.canon(obj, c.Off)
			if !ok || got != c.Off {
				t.Fatalf("leaf offset %d of %s not canonical (got %d, %v)",
					c.Off, typ, got, ok)
			}
		}
	}
}

func TestPropertyLayoutInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	u := types.NewUniverse()
	lay := layout.New(nil)
	for i := 0; i < 300; i++ {
		typ := genRecord(r, u, 3, false)
		l := lay.Of(typ.Record)
		var prev int64 = -1
		for j, f := range typ.Record.Fields {
			off := l.Offsets[j]
			if off < 0 || off+lay.Sizeof(f.Type) > l.Size {
				t.Fatalf("field %s of %s at %d overruns size %d", f.Name, typ, off, l.Size)
			}
			if off <= prev && lay.Sizeof(typ.Record.Fields[j-1].Type) > 0 {
				t.Fatalf("field %s of %s at %d not after previous at %d", f.Name, typ, off, prev)
			}
			if a := lay.Alignof(f.Type); a > 0 && off%a != 0 {
				t.Fatalf("field %s of %s at %d misaligned (align %d)", f.Name, typ, off, a)
			}
			prev = off
		}
		if l.Align > 0 && l.Size%l.Align != 0 {
			t.Fatalf("size %d of %s not a multiple of align %d", l.Size, typ, l.Align)
		}
	}
}

func TestPropertyCompatibleReflexiveSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	u := types.NewUniverse()
	for i := 0; i < 300; i++ {
		a := genType(r, u, 3)
		b := genType(r, u, 3)
		if !types.Compatible(a, a) {
			t.Fatalf("Compatible(%s, %s) not reflexive", a, a)
		}
		if types.Compatible(a, b) != types.Compatible(b, a) {
			t.Fatalf("Compatible(%s, %s) not symmetric", a, b)
		}
		if types.CompatibleLax(a, b) != types.CompatibleLax(b, a) {
			t.Fatalf("CompatibleLax(%s, %s) not symmetric", a, b)
		}
		// Strict compatibility implies lax compatibility.
		if types.Compatible(a, b) && !types.CompatibleLax(a, b) {
			t.Fatalf("Compatible but not CompatibleLax: %s vs %s", a, b)
		}
	}
}

func TestPropertyCISPairsBounded(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	u := types.NewUniverse()
	for i := 0; i < 300; i++ {
		a := genRecord(r, u, 2, false)
		b := genRecord(r, u, 2, false)
		pairs := types.CommonInitialSequence(a.Record, b.Record)
		max := len(a.Record.Fields)
		if len(b.Record.Fields) < max {
			max = len(b.Record.Fields)
		}
		if len(pairs) > max {
			t.Fatalf("CIS longer than the shorter record: %d > %d", len(pairs), max)
		}
		if len(types.CommonInitialSequence(b.Record, a.Record)) != len(pairs) {
			t.Fatal("CIS not symmetric in length")
		}
		// CIS with itself covers every field.
		self := types.CommonInitialSequence(a.Record, a.Record)
		if len(self) != len(a.Record.Fields) {
			t.Fatalf("CIS(a,a) = %d pairs, want %d", len(self), len(a.Record.Fields))
		}
	}
}

func TestPropertySolverDeterministic(t *testing.T) {
	// Same program, same strategy → identical fact counts and metric,
	// regardless of map iteration order inside the solver.
	seeds := []uint32{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		src := genWorkload(seed)
		res, err := frontend.Load(src, frontend.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var facts []int
		var sizes []float64
		for trial := 0; trial < 3; trial++ {
			r := Analyze(res.IR, NewCIS())
			facts = append(facts, r.TotalFacts())
			sizes = append(sizes, r.AvgDerefSetSize())
		}
		for i := 1; i < len(facts); i++ {
			if facts[i] != facts[0] || sizes[i] != sizes[0] {
				t.Fatalf("seed %d: nondeterministic: facts %v sizes %v", seed, facts, sizes)
			}
		}
	}
}

func TestPropertyPrecisionOrdering(t *testing.T) {
	// Collapse Always (expanded) must never be more precise than CIS on
	// arbitrary generated workloads.
	for seed := uint32(1); seed <= 8; seed++ {
		src := genWorkload(seed)
		res, err := frontend.Load(src, frontend.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ca := Analyze(res.IR, NewCollapseAlways()).AvgDerefSetSize()
		cis := Analyze(res.IR, NewCIS()).AvgDerefSetSize()
		if ca+1e-9 < cis {
			t.Errorf("seed %d: collapse-always %.3f < CIS %.3f", seed, ca, cis)
		}
	}
}

// genWorkload builds a small synthetic program without importing corpus
// (which would create an import cycle through this package's tests).
func genWorkload(seed uint32) []frontend.Source {
	r := rand.New(rand.NewSource(int64(seed)))
	src := `
struct A { int *a1; char *a2; struct A *next; } ga, gb;
struct B { int *b1; char *b2; } gc;
int t1, t2, t3;
char c1, c2;
int *sink; char *csink;
int main(void) {
`
	stmts := []string{
		"ga.a1 = &t1;",
		"ga.a2 = &c1;",
		"gb.a1 = &t2;",
		"gb.next = &ga;",
		"gc.b1 = &t3;",
		"gc.b2 = &c2;",
		"sink = ga.a1;",
		"sink = gb.next->a1;",
		"csink = ((struct B *)&ga)->b2;",
		"sink = ((struct A *)&gc)->a1;",
		"ga = *(struct A *)&gb;",
		"csink = ga.a2;",
	}
	n := 4 + r.Intn(8)
	for i := 0; i < n; i++ {
		src += "\t" + stmts[r.Intn(len(stmts))] + "\n"
	}
	src += "\treturn 0;\n}\n"
	return []frontend.Source{{Name: "gen.c", Text: src}}
}

// Keep testing/quick referenced for the signature-style property below.
func TestPropertyCellSetAdd(t *testing.T) {
	f := func(ids []int8) bool {
		set := make(CellSet)
		objs := make(map[int8]*ir.Object)
		total := 0
		for _, id := range ids {
			o, ok := objs[id]
			if !ok {
				o = &ir.Object{ID: int(id), Name: "o"}
				objs[id] = o
			}
			if set.Add(Cell{Obj: o}) {
				total++
			}
		}
		return set.Len() == total && set.Len() == len(objs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
