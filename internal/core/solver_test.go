package core_test

import (
	"strings"
	"testing"

	"repro/internal/cc/layout"
	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/ir"
)

// loadIR runs the front end over one source file.
func loadIR(t *testing.T, src string, abi *layout.ABI) *frontend.Result {
	t.Helper()
	r, err := frontend.Load([]frontend.Source{{Name: "t.c", Text: src}}, frontend.Options{ABI: abi})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return r
}

// strategies returns fresh instances of all four algorithms.
func strategies(lay *layout.Engine) map[string]core.Strategy {
	return map[string]core.Strategy{
		"offsets":            core.NewOffsets(lay),
		"collapse-always":    core.NewCollapseAlways(),
		"collapse-on-cast":   core.NewCollapseOnCast(),
		"common-initial-seq": core.NewCIS(),
	}
}

// objByName finds a program object by its display name.
func objByName(t *testing.T, p *ir.Program, name string) *ir.Object {
	t.Helper()
	for _, o := range p.Objects {
		if o.Name == name {
			return o
		}
	}
	t.Fatalf("object %q not found", name)
	return nil
}

// targets renders the points-to set of obj.path as a set of object names
// (ignoring selectors), for easy assertions.
func targetObjs(res *core.Result, obj *ir.Object, path ...string) map[string]bool {
	out := make(map[string]bool)
	for c := range res.PointsTo(obj, ir.Path(path)) {
		out[c.Obj.Name] = true
	}
	return out
}

// targetCells renders the points-to set as cell strings.
func targetCells(res *core.Result, obj *ir.Object, path ...string) map[string]bool {
	out := make(map[string]bool)
	for c := range res.PointsTo(obj, ir.Path(path)) {
		out[c.String()] = true
	}
	return out
}

func wantSet(t *testing.T, label string, got map[string]bool, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s = %v, want %v", label, keys(got), want)
		return
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("%s = %v, want %v", label, keys(got), want)
			return
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// --- The Introduction's motivating example ---

func TestIntroFieldSensitivity(t *testing.T) {
	src := `
struct S { int *s1; int *s2; } s;
int x, y, *p;
void f(void) {
	s.s1 = &x;
	s.s2 = &y;
	p = s.s1;
}`
	r := loadIR(t, src, nil)
	p := objByName(t, r.IR, "p")

	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		got := targetObjs(res, p)
		switch name {
		case "collapse-always":
			// Collapsing merges s1 and s2: p may point to x AND y.
			wantSet(t, name+": pts(p)", got, "x", "y")
		default:
			// Field-sensitive: p points only to x.
			wantSet(t, name+": pts(p)", got, "x")
		}
	}
}

// --- §4.1 Problem 1: a pointer to a struct points to its first field ---

func TestProblem1FirstField(t *testing.T) {
	src := `
struct S { int *s1; } s;
int x, *q, *r;
void f(void) {
	q = &x;
	*(int **)&s = q;   /* store through a cast: writes s.s1 */
	r = s.s1;
}`
	r := loadIR(t, src, nil)
	rv := objByName(t, r.IR, "r")
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		got := targetObjs(res, rv)
		if !got["x"] {
			t.Errorf("%s: pts(r) = %v, want x included", name, keys(got))
		}
	}
}

func TestProblem1Reverse(t *testing.T) {
	// A pointer to the first field can be used as a pointer to the struct.
	src := `
struct S { int *s1; } s, *p;
int x, *r;
void f(void) {
	s.s1 = &x;
	p = (struct S *)&s.s1;
	r = p->s1;
}`
	r := loadIR(t, src, nil)
	rv := objByName(t, r.IR, "r")
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		got := targetObjs(res, rv)
		if !got["x"] {
			t.Errorf("%s: pts(r) = %v, want x included", name, keys(got))
		}
	}
}

// --- §4.1 Problem 2: dereferencing a mistyped pointer (lookup) ---

func TestProblem2Lookup(t *testing.T) {
	src := `
struct S { int *s1; int s2; char *s3; } *p;
struct T { int *t1; int *t2; char *t3; } t;
char **c;
void f(void) {
	p = (struct S *)&t;
	c = &((*p).s3);
}`
	r := loadIR(t, src, nil)
	c := objByName(t, r.IR, "c")
	lay := r.Layout

	// Offsets (LP64): s3 is at offset 16; t3 is at offset 16 → exactly t3.
	res := core.Analyze(r.IR, core.NewOffsets(lay))
	wantSet(t, "offsets: pts(c)", targetCells(res, c), "t@16")

	// Collapse on Cast: no compatible enclosing type → all fields from t1.
	res = core.Analyze(r.IR, core.NewCollapseOnCast())
	wantSet(t, "coc: pts(c)", targetCells(res, c), "t.t1", "t.t2", "t.t3")

	// CIS: common initial sequence of S and T is just ⟨s1,t1⟩ (int vs
	// int* differ); s3 is outside it → fields from the first field after
	// the sequence: {t2, t3}.
	res = core.Analyze(r.IR, core.NewCIS())
	wantSet(t, "cis: pts(c)", targetCells(res, c), "t.t2", "t.t3")

	// Collapse Always: the whole of t.
	res = core.Analyze(r.IR, core.NewCollapseAlways())
	wantSet(t, "collapse: pts(c)", targetCells(res, c), "t")
}

// --- §4.1 Problem 3: block copy between different types (resolve) ---

func TestProblem3Resolve(t *testing.T) {
	src := `
struct S { int *s1; int s2; char *s3; } s;
struct T { int *t1; int *t2; char *t3; } t;
int a, b;
char ch;
void f(void) {
	t.t1 = &a;
	t.t2 = &b;
	t.t3 = &ch;
	s = *(struct S *)&t;
	}`
	r := loadIR(t, src, nil)
	s := objByName(t, r.IR, "s")

	// Offsets LP64: s1@0←t1@0 (a), s2@8..11←t2@8 bytes, s3@16←t3@16 (ch).
	res := core.Analyze(r.IR, core.NewOffsets(r.Layout))
	wantSet(t, "offsets: pts(s.s1)", targetObjs(res, s, "s1"), "a")
	wantSet(t, "offsets: pts(s.s3)", targetObjs(res, s, "s3"), "ch")
	// s2 holds part of t2's pointer to b (Complication 3).
	wantSet(t, "offsets: pts(s.s2)", targetObjs(res, s, "s2"), "b")

	// CIS: initial sequence ⟨s1,t1⟩ matches precisely; the rest smears.
	res = core.Analyze(r.IR, core.NewCIS())
	if got := targetObjs(res, s, "s1"); !got["a"] {
		t.Errorf("cis: pts(s.s1) = %v, want a included", keys(got))
	}
	// s3 must conservatively include everything from t2 on.
	got := targetObjs(res, s, "s3")
	if !got["b"] || !got["ch"] {
		t.Errorf("cis: pts(s.s3) = %v, want b and ch", keys(got))
	}
}

// --- §4.2.1 Complication 2: a double holding two pointers (ILP32) ---

func TestComplication2DoubleHoldsPointers(t *testing.T) {
	src := `
struct R { int *r1; int *r2; } r, r2;
double d;
int x, y;
void f(void) {
	r.r1 = &x;
	r.r2 = &y;
	d = *(double *)&r;
	r2 = *(struct R *)&d;
}`
	// ILP32: sizeof(double) == 8 == sizeof(struct R), so both pointers
	// fit inside d and can be recovered.
	r := loadIR(t, src, layout.ILP32)
	r2 := objByName(t, r.IR, "r2")

	res := core.Analyze(r.IR, core.NewOffsets(r.Layout))
	wantSet(t, "offsets/ilp32: pts(r2.r1)", targetObjs(res, r2, "r1"), "x")
	wantSet(t, "offsets/ilp32: pts(r2.r2)", targetObjs(res, r2, "r2"), "y")

	// The portable instances must also recover both (conservatively).
	for _, strat := range []core.Strategy{core.NewCollapseOnCast(), core.NewCIS()} {
		res := core.Analyze(r.IR, strat)
		g1 := targetObjs(res, r2, "r1")
		g2 := targetObjs(res, r2, "r2")
		if !g1["x"] || !g2["y"] {
			t.Errorf("%s: pts(r2.r1)=%v pts(r2.r2)=%v, want x and y recovered",
				strat.Name(), keys(g1), keys(g2))
		}
	}
}

// --- §4.2.1 Complication 4: LHS type determines the copy size ---

func TestComplication4CopySize(t *testing.T) {
	src := `
struct R { int *r1; int *r2; char *r3; } r;
struct S { int *s1; int *s2; int *s3; } s;
struct T { int *t1; int *t2; } *p;
int a, b, c;
void f(void) {
	s.s1 = &a;
	s.s2 = &b;
	s.s3 = &c;
	p = (struct T *)&r;
	*p = *(struct T *)&s;
}`
	r := loadIR(t, src, nil)
	rv := objByName(t, r.IR, "r")

	// Offsets: only the first two fields are copied (sizeof(struct T)).
	res := core.Analyze(r.IR, core.NewOffsets(r.Layout))
	wantSet(t, "offsets: pts(r.r1)", targetObjs(res, rv, "r1"), "a")
	wantSet(t, "offsets: pts(r.r2)", targetObjs(res, rv, "r2"), "b")
	if got := targetObjs(res, rv, "r3"); len(got) != 0 {
		t.Errorf("offsets: pts(r.r3) = %v, want empty (beyond sizeof(struct T))", keys(got))
	}
}

// --- §4.3.2 Collapse on Cast worked example ---

func TestCollapseOnCastExample(t *testing.T) {
	src := `
struct S { int s1; char s2; } *p, *q;
struct T { struct S t1; int t2; char t3; } t;
char *x, *y;
void f(void) {
	p = &t.t1;
	x = &(*p).s2;
	q = (struct S *)&t.t2;
	y = &(*q).s2;
}`
	r := loadIR(t, src, nil)
	x := objByName(t, r.IR, "x")
	y := objByName(t, r.IR, "y")

	res := core.Analyze(r.IR, core.NewCollapseOnCast())
	// p points to t.t1 whose type matches struct S: exact field.
	wantSet(t, "coc: pts(x)", targetCells(res, x), "t.t1.s2")
	// q points to t.t2 (an int, not a struct S): smear from t2 on.
	wantSet(t, "coc: pts(y)", targetCells(res, y), "t.t2", "t.t3")
}

// --- §4.3.3 Common Initial Sequence worked example ---

func TestCISExample(t *testing.T) {
	src := `
struct S { int *s1; int *s2; int *s3; } *p;
struct T { int *t1; int *t2; char t3; int t4; } t;
int **x, **y;
void f(void) {
	p = (struct S *)&t;
	x = &(*p).s2;
	y = &(*p).s3;
}`
	r := loadIR(t, src, nil)
	x := objByName(t, r.IR, "x")
	y := objByName(t, r.IR, "y")

	res := core.Analyze(r.IR, core.NewCIS())
	// s2 is inside the common initial sequence ⟨(s1,t1),(s2,t2)⟩.
	wantSet(t, "cis: pts(x)", targetCells(res, x), "t.t2")
	// s3 is outside: all fields from the first field after the CIS.
	wantSet(t, "cis: pts(y)", targetCells(res, y), "t.t3", "t.t4")

	// Collapse on Cast has no CIS refinement: everything from t1.
	res = core.Analyze(r.IR, core.NewCollapseOnCast())
	wantSet(t, "coc: pts(x)", targetCells(res, x), "t.t1", "t.t2", "t.t3", "t.t4")
}

// --- Interprocedural ---

func TestInterproceduralIdentity(t *testing.T) {
	src := `
int *id(int *v) { return v; }
int x, y, *p, *q;
void f(void) {
	p = id(&x);
	q = id(&y);
}`
	r := loadIR(t, src, nil)
	p := objByName(t, r.IR, "p")
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		got := targetObjs(res, p)
		// Context-insensitive: both calls merge.
		if !got["x"] || !got["y"] {
			t.Errorf("%s: pts(p) = %v, want {x,y}", name, keys(got))
		}
	}
}

func TestFunctionPointerDispatch(t *testing.T) {
	src := `
int x, y;
int *fx(void) { return &x; }
int *fy(void) { return &y; }
int *(*fp)(void);
int *r;
void f(int c) {
	if (c) fp = fx; else fp = fy;
	r = fp();
}`
	r := loadIR(t, src, nil)
	rv := objByName(t, r.IR, "r")
	fp := objByName(t, r.IR, "fp")
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		gotFp := targetObjs(res, fp)
		if !gotFp["fx"] || !gotFp["fy"] {
			t.Errorf("%s: pts(fp) = %v, want {fx,fy}", name, keys(gotFp))
		}
		got := targetObjs(res, rv)
		if !got["x"] || !got["y"] {
			t.Errorf("%s: pts(r) = %v, want {x,y}", name, keys(got))
		}
	}
}

func TestStructParamByValue(t *testing.T) {
	src := `
struct P { int *a; int *b; };
int x, y, *r;
void g(struct P p) { r = p.a; }
void f(void) {
	struct P s;
	s.a = &x;
	s.b = &y;
	g(s);
}`
	r := loadIR(t, src, nil)
	rv := objByName(t, r.IR, "r")
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		got := targetObjs(res, rv)
		if !got["x"] {
			t.Errorf("%s: pts(r) = %v, want x", name, keys(got))
		}
		if name != "collapse-always" && got["y"] {
			t.Errorf("%s: pts(r) = %v, y should not leak into p.a", name, keys(got))
		}
	}
}

// --- Heap ---

func TestHeapListChase(t *testing.T) {
	src := `
#include <stdlib.h>
struct node { struct node *next; int *val; };
int x;
void f(void) {
	struct node *head = (struct node *)malloc(sizeof(struct node));
	struct node *n2 = (struct node *)malloc(sizeof(struct node));
	head->next = n2;
	n2->val = &x;
	int *r = head->next->val;
}`
	r := loadIR(t, src, nil)
	var rObj *ir.Object
	for _, o := range r.IR.Objects {
		if o.Sym != nil && o.Sym.Name == "r" {
			rObj = o
		}
	}
	if rObj == nil {
		t.Fatal("r not found")
	}
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		got := targetObjs(res, rObj)
		if !got["x"] {
			t.Errorf("%s: pts(r) = %v, want x", name, keys(got))
		}
	}
}

func TestAllocationSitesDistinct(t *testing.T) {
	src := `
#include <stdlib.h>
int **p1, **p2;
void f(void) {
	p1 = (int **)malloc(8);
	p2 = (int **)malloc(8);
}`
	r := loadIR(t, src, nil)
	p1 := objByName(t, r.IR, "p1")
	p2 := objByName(t, r.IR, "p2")
	res := core.Analyze(r.IR, core.NewCIS())
	g1 := targetObjs(res, p1)
	g2 := targetObjs(res, p2)
	if len(g1) != 1 || len(g2) != 1 {
		t.Fatalf("pts sizes = %d/%d, want 1/1 (%v / %v)", len(g1), len(g2), keys(g1), keys(g2))
	}
	for k := range g1 {
		if g2[k] {
			t.Errorf("allocation sites merged: %v", k)
		}
	}
}

// --- Pointer arithmetic (Assumption 1) ---

func TestPtrArithSmearsWithinObject(t *testing.T) {
	src := `
struct G { int *g1; int *g2; } g;
int x, y, **p, *r;
void f(void) {
	g.g1 = &x;
	g.g2 = &y;
	p = &g.g1;
	p = p + 1;
	r = *p;
}`
	r := loadIR(t, src, nil)
	rv := objByName(t, r.IR, "r")
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		got := targetObjs(res, rv)
		// After p+1, p may point to any field of g: r sees x and y.
		if !got["x"] || !got["y"] {
			t.Errorf("%s: pts(r) = %v, want {x,y}", name, keys(got))
		}
	}
}

func TestPtrArithDoesNotEscapeObject(t *testing.T) {
	src := `
int a[4], b[4], *p, *q;
void f(void) {
	p = a;
	q = p + 1;
}`
	r := loadIR(t, src, nil)
	q := objByName(t, r.IR, "q")
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		got := targetObjs(res, q)
		if !got["a"] {
			t.Errorf("%s: pts(q) = %v, want a", name, keys(got))
		}
		if got["b"] {
			t.Errorf("%s: pts(q) leaked to unrelated object b", name)
		}
	}
}

// --- Library summaries end to end ---

func TestMemcpyPropagates(t *testing.T) {
	src := `
#include <string.h>
struct P { int *a; } src, dst;
int x;
void f(void) {
	src.a = &x;
	memcpy(&dst, &src, sizeof dst);
	int *r = dst.a;
}`
	r := loadIR(t, src, nil)
	var rObj *ir.Object
	for _, o := range r.IR.Objects {
		if o.Sym != nil && o.Sym.Name == "r" {
			rObj = o
		}
	}
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		got := targetObjs(res, rObj)
		if !got["x"] {
			t.Errorf("%s: pts(r) = %v, want x", name, keys(got))
		}
	}
}

func TestQsortInvokesComparator(t *testing.T) {
	src := `
#include <stdlib.h>
int cmp(const void *a, const void *b) {
	const int *pa = (const int *)a;
	return *pa;
}
int arr[10];
void f(void) { qsort(arr, 10, sizeof(int), cmp); }`
	r := loadIR(t, src, nil)
	// cmp's parameter a must point to arr.
	var aObj *ir.Object
	for _, o := range r.IR.Objects {
		if o.Kind == ir.ObjParam && o.Sym != nil && o.Sym.Name == "a" {
			aObj = o
		}
	}
	if aObj == nil {
		t.Fatal("param a not found")
	}
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		got := targetObjs(res, aObj)
		if !got["arr"] {
			t.Errorf("%s: pts(a) = %v, want arr", name, keys(got))
		}
	}
}

// --- Unions (collapsed, safe) ---

func TestUnionSafety(t *testing.T) {
	src := `
union U { int *u1; char *u2; } u;
int x;
char c, *r;
void f(void) {
	u.u1 = (int *)&x;
	r = u.u2;
}`
	r := loadIR(t, src, nil)
	rv := objByName(t, r.IR, "r")
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		got := targetObjs(res, rv)
		if !got["x"] {
			t.Errorf("%s: pts(r) = %v, want x (union members overlap)", name, keys(got))
		}
	}
}

// --- Metrics sanity ---

func TestAvgDerefSizeOrdering(t *testing.T) {
	// On a casting-free field-heavy program, collapse-always must be no
	// more precise than the others.
	src := `
struct S { int *a; int *b; int *c; } s;
int x, y, z, *r1, *r2, *r3, **pp;
void f(void) {
	s.a = &x; s.b = &y; s.c = &z;
	pp = &s.a; r1 = *pp;
	pp = &s.b; r2 = *pp;
	pp = &s.c; r3 = *pp;
}`
	r := loadIR(t, src, nil)
	sizes := make(map[string]float64)
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		sizes[name] = res.AvgDerefSetSize()
	}
	if sizes["collapse-always"] < sizes["offsets"] {
		t.Errorf("collapse-always (%v) should not beat offsets (%v)",
			sizes["collapse-always"], sizes["offsets"])
	}
	if sizes["offsets"] != sizes["common-initial-seq"] {
		t.Errorf("without casts, offsets (%v) and CIS (%v) should agree",
			sizes["offsets"], sizes["common-initial-seq"])
	}
}

func TestRecorderCounts(t *testing.T) {
	src := `
struct A { int *p; } a, b;
void f(void) { a = b; }`
	r := loadIR(t, src, nil)
	strat := core.NewCIS()
	core.Analyze(r.IR, strat)
	rec := strat.Recorder()
	if rec.ResolveCalls == 0 {
		t.Error("resolve never recorded")
	}
	if rec.ResolveStructs == 0 {
		t.Error("struct resolve never recorded")
	}
	if rec.ResolveMismatches != 0 {
		t.Errorf("mismatches = %d on a cast-free program", rec.ResolveMismatches)
	}
}

func TestRecorderMismatchOnCast(t *testing.T) {
	src := `
struct A { int *a1; char pad; } a;
struct B { char *b1; int *b2; } b;
void f(void) { a = *(struct A *)&b; }`
	r := loadIR(t, src, nil)
	strat := core.NewCIS()
	core.Analyze(r.IR, strat)
	rec := strat.Recorder()
	if rec.ResolveMismatches == 0 {
		t.Error("expected a resolve mismatch on struct cast")
	}
}

func TestTotalFactsPositive(t *testing.T) {
	src := "int x, *p;\nvoid f(void) { p = &x; }"
	r := loadIR(t, src, nil)
	for name, strat := range strategies(r.Layout) {
		res := core.Analyze(r.IR, strat)
		if res.TotalFacts() == 0 {
			t.Errorf("%s: no facts", name)
		}
	}
}

// --- Offsets ABI sensitivity (the portability argument) ---

func TestOffsetsABIDivergence(t *testing.T) {
	// Under LP64 struct S's s2 sits at offset 8; under Packed1 at 1.
	// A cast-based access to byte 8 therefore resolves differently —
	// this is exactly why offsets results are not portable.
	src := `
struct S { char tag; int *s2; } s;
struct U { char pad[8]; int *u2; } *p;
int x, *r;
void f(void) {
	s.s2 = &x;
	p = (struct U *)&s;
	r = p->u2;
}`
	// LP64: offsetof(S.s2)=8, lookup hits byte 8 → x found.
	r64 := loadIR(t, src, layout.LP64)
	res := core.Analyze(r64.IR, core.NewOffsets(r64.Layout))
	got := targetObjs(res, objByName(t, r64.IR, "r"))
	if !got["x"] {
		t.Errorf("lp64: pts(r) = %v, want x", keys(got))
	}

	// Packed1: offsetof(S.s2)=1 but the access reads byte 8 → miss.
	rp := loadIR(t, src, layout.Packed1)
	resP := core.Analyze(rp.IR, core.NewOffsets(rp.Layout))
	gotP := targetObjs(resP, objByName(t, rp.IR, "r"))
	if gotP["x"] {
		t.Errorf("packed1: pts(r) = %v; finding x means offsets did not change", keys(gotP))
	}
}

// --- Strings ---

func TestStringLiteralFlow(t *testing.T) {
	src := `char *s, *t2;
void f(void) { s = "hello"; t2 = s; }`
	r := loadIR(t, src, nil)
	t2 := objByName(t, r.IR, "t2")
	res := core.Analyze(r.IR, core.NewCIS())
	found := false
	for c := range res.PointsTo(t2, nil) {
		if strings.HasPrefix(c.Obj.Name, "strlit@") {
			found = true
		}
	}
	if !found {
		t.Errorf("pts(t2) = %v, want a string literal", targetObjs(res, t2))
	}
}
