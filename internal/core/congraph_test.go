package core_test

// Tests for the constraint-graph layer (congraph.go): online cycle
// elimination must be observable only through WaveStats — fact dumps,
// TotalFacts, AvgDerefSetSize and the Figure-3 counters stay byte-identical
// to both the NoCycleElim ablation and the map-based reference solver.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ir"
)

// mutualSrc builds two pointer variables copied into each other — the
// smallest possible copy-edge cycle — plus distinct address seeds on each
// side so both directions must propagate.
func mutualSrc() string {
	return `
int a, b;
int *p, *q;
void f(void) {
	p = &a;
	q = &b;
	p = q;
	q = p;
}
`
}

// exactStrategies returns the strategy instances that emit only exact
// (Size == 0) copy edges — the ones eligible for cycle elimination.
func exactStrategies() map[string]core.Strategy {
	return map[string]core.Strategy{
		"collapse-always":    core.NewCollapseAlways(),
		"collapse-on-cast":   core.NewCollapseOnCast(),
		"common-initial-seq": core.NewCIS(),
	}
}

// targets renders the points-to set of the named object as "{a, b}".
func targets(t *testing.T, res *core.Result, prog *ir.Program, name string) string {
	t.Helper()
	var names []string
	for _, c := range res.PointsTo(objByName(t, prog, name), nil).Sorted() {
		names = append(names, c.Obj.Name)
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ", ") + "}"
}

// factDump renders a result as the canonical sorted fact listing.
func waveFactDump(res *core.Result) string {
	var sb strings.Builder
	for _, c := range res.SortedCells() {
		sb.WriteString(c.String())
		sb.WriteString(" -> {")
		for i, t := range res.PointsToCell(c).Sorted() {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(t.String())
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

// noPrep pins a solve to the online cycle layer: the offline prepass would
// collapse these hand-built cycles before detectCycles ever sees them (its
// own coverage lives in prepass_test.go and the differential suites).
var noPrep = core.Options{NoPrepass: true}

func TestCycleCollapseMutualCopy(t *testing.T) {
	r := loadIR(t, mutualSrc(), nil)
	for name, strat := range exactStrategies() {
		res := core.AnalyzeWith(r.IR, strat, noPrep)
		if res.Incomplete != nil {
			t.Fatalf("%s: incomplete: %v", name, res.Incomplete)
		}
		if res.Wave.SCCsFound < 1 || res.Wave.CellsMerged < 1 {
			t.Errorf("%s: p<->q cycle not collapsed: %+v", name, res.Wave)
		}
		// Both members of the collapsed cycle observe the converged set.
		pSet := targets(t, res, r.IR, "p")
		qSet := targets(t, res, r.IR, "q")
		if pSet != "{a, b}" || qSet != "{a, b}" {
			t.Errorf("%s: p=%s q=%s, want {a, b} for both", name, pSet, qSet)
		}
	}
}

func TestCycleCollapseRing(t *testing.T) {
	r := loadIR(t, ringSrc(50), nil)
	for name, strat := range exactStrategies() {
		res := core.AnalyzeWith(r.IR, strat, noPrep)
		if res.Incomplete != nil {
			t.Fatalf("%s: incomplete: %v", name, res.Incomplete)
		}
		// The 50-element ring is one SCC: 49 cells fold into the
		// representative.
		if res.Wave.SCCsFound == 0 {
			t.Errorf("%s: ring SCC not found: %+v", name, res.Wave)
		}
		if res.Wave.CellsMerged < 49 {
			t.Errorf("%s: merged %d cells, want >= 49", name, res.Wave.CellsMerged)
		}
		if res.Wave.Waves == 0 {
			t.Errorf("%s: no waves recorded", name)
		}
		if res.Wave.FactCrossings < res.Wave.EdgeBatches {
			t.Errorf("%s: crossings %d < batches %d", name,
				res.Wave.FactCrossings, res.Wave.EdgeBatches)
		}
	}
}

// The layer is an observable-preserving optimization: with and without it,
// the dump, the fact count and the dereference metric are byte-identical,
// and both agree with the map-based reference solver.
func TestNoCycleElimAblationIdentical(t *testing.T) {
	srcs := map[string]string{
		"mutual": mutualSrc(),
		"ring":   ringSrc(40),
	}
	for sname, src := range srcs {
		r := loadIR(t, src, nil)
		for name, strat := range exactStrategies() {
			label := sname + "/" + name
			on := core.AnalyzeWith(r.IR, strat, noPrep)
			off := core.AnalyzeWith(r.IR, strat, core.Options{NoCycleElim: true, NoPrepass: true})
			ref := core.AnalyzeReference(r.IR, strat, core.Options{})
			if off.Wave.SCCsFound != 0 || off.Wave.CellsMerged != 0 || off.Wave.Waves != 0 {
				t.Errorf("%s: ablation still collapsed: %+v", label, off.Wave)
			}
			if on.Wave.CellsMerged == 0 {
				t.Errorf("%s: default run collapsed nothing", label)
			}
			dOn, dOff, dRef := waveFactDump(on), waveFactDump(off), waveFactDump(ref)
			if dOn != dOff {
				t.Errorf("%s: dump differs between cycle elim on/off\non:\n%s\noff:\n%s", label, dOn, dOff)
			}
			if dOn != dRef {
				t.Errorf("%s: dump differs from reference solver\ndense:\n%s\nref:\n%s", label, dOn, dRef)
			}
			if on.TotalFacts() != off.TotalFacts() || on.TotalFacts() != ref.TotalFacts() {
				t.Errorf("%s: TotalFacts on=%d off=%d ref=%d",
					label, on.TotalFacts(), off.TotalFacts(), ref.TotalFacts())
			}
			if on.AvgDerefSetSize() != off.AvgDerefSetSize() {
				t.Errorf("%s: AvgDerefSetSize on=%v off=%v",
					label, on.AvgDerefSetSize(), off.AvgDerefSetSize())
			}
		}
	}
}

// The Offsets instance emits Size != 0 range edges, so it is excluded from
// collapse by construction: its runs must never merge cells or run waves.
func TestOffsetsExcludedFromCollapse(t *testing.T) {
	r := loadIR(t, ringSrc(30), nil)
	res := core.Analyze(r.IR, core.NewOffsets(r.Layout))
	if res.Incomplete != nil {
		t.Fatalf("incomplete: %v", res.Incomplete)
	}
	if res.Wave.SCCsFound != 0 || res.Wave.CellsMerged != 0 || res.Wave.Waves != 0 {
		t.Errorf("offsets run used the wave scheduler: %+v", res.Wave)
	}
}

// Collapsing the ring must reduce batched edge traversals relative to the
// classic schedule on the same program — the headline win of the layer.
func TestWaveSchedulerSavesTraversals(t *testing.T) {
	r := loadIR(t, ringSrc(100), nil)
	strat := core.NewCollapseAlways()
	on := core.AnalyzeWith(r.IR, strat, noPrep)
	off := core.AnalyzeWith(r.IR, strat, core.Options{NoCycleElim: true, NoPrepass: true})
	if on.Wave.EdgeBatches >= off.Wave.EdgeBatches {
		t.Errorf("cycle elim did not reduce edge batches: on=%d off=%d",
			on.Wave.EdgeBatches, off.Wave.EdgeBatches)
	}
	if on.Wave.TraversalsSaved() == 0 {
		t.Errorf("no traversals saved on a 100-ring: %+v", on.Wave)
	}
}

// Limits force the classic per-cell schedule: per-fact trip accounting is
// defined against it, so wave runs must not engage when any limit is set.
func TestLimitsDisableWaves(t *testing.T) {
	r := loadIR(t, ringSrc(60), nil)
	res := core.AnalyzeWith(r.IR, core.NewCIS(),
		core.Options{Limits: core.Limits{MaxSteps: 1 << 20}})
	if res.Incomplete != nil {
		t.Fatalf("incomplete under a generous limit: %v", res.Incomplete)
	}
	if res.Wave.CellsMerged != 0 || res.Wave.Waves != 0 {
		t.Errorf("limited run engaged the wave scheduler: %+v", res.Wave)
	}
}

// countdownCtx reports cancellation after its Err method has been polled a
// fixed number of times — a deterministic way to stop the solver mid-wave.
type countdownCtx struct {
	context.Context
	polls int
}

func (c *countdownCtx) Err() error {
	if c.polls <= 0 {
		return context.Canceled
	}
	c.polls--
	return nil
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

// A wave cancelled mid-flight must still yield a sound partial report: every
// recorded fact is in the reference solver's fixpoint, and the reference run
// (acting as the resume oracle) is a superset that completes the answer.
func TestWaveCancellationSoundPartial(t *testing.T) {
	r := loadIR(t, ringSrc(120), nil)
	for name, strat := range exactStrategies() {
		full := core.AnalyzeReference(r.IR, strat, core.Options{})
		if full.Incomplete != nil {
			t.Fatalf("%s: reference run incomplete", name)
		}
		stopped := false
		for polls := 1; polls <= 6; polls++ {
			ctx := &countdownCtx{Context: context.Background(), polls: polls}
			lim := core.AnalyzeContext(ctx, r.IR, strat, core.Options{})
			if lim.Incomplete == nil {
				continue // solved before the countdown expired
			}
			stopped = true
			if !lim.Incomplete.Canceled() {
				t.Fatalf("%s (polls=%d): reason = %s, want canceled",
					name, polls, lim.Incomplete.Reason)
			}
			lim.Cells(func(c core.Cell, set core.CellSet) {
				fullSet := full.PointsToCell(c)
				for tgt := range set {
					if !fullSet.Has(tgt) {
						t.Errorf("%s (polls=%d): partial fact %s -> %s not in reference fixpoint",
							name, polls, c, tgt)
					}
				}
			})
		}
		if !stopped {
			t.Errorf("%s: no countdown produced a cancelled wave", name)
		}
	}
}

// Exercising cascading merges: several disjoint cycles bridged by chains, so
// a detection pass collapses multiple SCCs in one sweep and the compacted
// adjacency stays correct.
func TestMultipleSCCs(t *testing.T) {
	var b strings.Builder
	b.WriteString("int t0, t1, t2;\n")
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&b, "int *p%d;\n", i)
	}
	b.WriteString("void f(void) {\n")
	// Three 4-cycles, each seeded with a distinct target, chained so facts
	// flow 0-block -> 1-block -> 2-block.
	for blk := 0; blk < 3; blk++ {
		base := blk * 4
		fmt.Fprintf(&b, "\tp%d = &t%d;\n", base, blk)
		for i := 0; i < 4; i++ {
			fmt.Fprintf(&b, "\tp%d = p%d;\n", base+(i+1)%4, base+i)
		}
		if blk > 0 {
			fmt.Fprintf(&b, "\tp%d = p%d;\n", base, base-4)
		}
	}
	b.WriteString("}\n")

	r := loadIR(t, b.String(), nil)
	for name, strat := range exactStrategies() {
		res := core.AnalyzeWith(r.IR, strat, noPrep)
		ref := core.AnalyzeReference(r.IR, strat, core.Options{})
		if res.Wave.SCCsFound < 3 {
			t.Errorf("%s: found %d SCCs, want >= 3", name, res.Wave.SCCsFound)
		}
		if d, rd := waveFactDump(res), waveFactDump(ref); d != rd {
			t.Errorf("%s: dump differs from reference\ndense:\n%s\nref:\n%s", name, d, rd)
		}
		// The last block sees every upstream seed.
		if got := targets(t, res, r.IR, "p8"); got != "{t0, t1, t2}" {
			t.Errorf("%s: p8 -> %s, want {t0, t1, t2}", name, got)
		}
	}
}
