package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/ir"
)

// TestBitsAgainstMap drives Bits with a fixed-seed random operation stream,
// mirroring every step into a plain map and checking full agreement.
func TestBitsAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var b Bits
	ref := make(map[CellID]bool)
	// A spread of ids across many blocks plus dense runs within one block.
	idOf := func() CellID {
		if rng.Intn(2) == 0 {
			return CellID(rng.Intn(128)) // dense low range
		}
		return CellID(rng.Intn(1 << 20)) // sparse high range
	}
	for step := 0; step < 20000; step++ {
		id := idOf()
		switch rng.Intn(4) {
		case 0, 1: // Add twice as often as the rest
			want := !ref[id]
			if got := b.Add(id); got != want {
				t.Fatalf("step %d: Add(%d) = %v, want %v", step, id, got, want)
			}
			ref[id] = true
		case 2:
			if got := b.Has(id); got != ref[id] {
				t.Fatalf("step %d: Has(%d) = %v, want %v", step, id, got, ref[id])
			}
		case 3:
			want := ref[id]
			if got := b.Remove(id); got != want {
				t.Fatalf("step %d: Remove(%d) = %v, want %v", step, id, got, want)
			}
			delete(ref, id)
		}
		if b.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, b.Len(), len(ref))
		}
	}
	checkBitsEqual(t, &b, ref)
}

// checkBitsEqual asserts that Iterate and AppendTo both enumerate exactly
// ref's ids in ascending order.
func checkBitsEqual(t *testing.T, b *Bits, ref map[CellID]bool) {
	t.Helper()
	want := make([]CellID, 0, len(ref))
	for id := range ref {
		want = append(want, id)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []CellID
	b.Iterate(func(id CellID) { got = append(got, id) })
	if len(got) != len(want) {
		t.Fatalf("Iterate yielded %d ids, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Iterate[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	got2 := b.AppendTo(nil)
	for i := range got2 {
		if got2[i] != want[i] {
			t.Fatalf("AppendTo[%d] = %d, want %d", i, got2[i], want[i])
		}
	}
}

func TestBitsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		var a, b Bits
		refA := make(map[CellID]bool)
		refB := make(map[CellID]bool)
		for i := 0; i < rng.Intn(200); i++ {
			id := CellID(rng.Intn(1 << 14))
			a.Add(id)
			refA[id] = true
		}
		for i := 0; i < rng.Intn(200); i++ {
			id := CellID(rng.Intn(1 << 14))
			b.Add(id)
			refB[id] = true
		}
		wantNew := 0
		for id := range refB {
			if !refA[id] {
				wantNew++
			}
		}
		switch trial % 3 {
		case 0:
			if got := a.UnionInPlace(&b); got != wantNew {
				t.Fatalf("trial %d: UnionInPlace added %d, want %d", trial, got, wantNew)
			}
		case 1:
			diff := a.UnionDiff(&b, nil)
			if len(diff) != wantNew {
				t.Fatalf("trial %d: UnionDiff returned %d ids, want %d", trial, len(diff), wantNew)
			}
			for i, id := range diff {
				if refA[id] || !refB[id] {
					t.Fatalf("trial %d: UnionDiff id %d not newly-set", trial, id)
				}
				if i > 0 && diff[i-1] >= id {
					t.Fatalf("trial %d: UnionDiff not ascending", trial)
				}
			}
		case 2: // self-union is a no-op
			n := a.Len()
			if got := a.UnionInPlace(&a); got != 0 || a.Len() != n {
				t.Fatalf("trial %d: self-union changed the set", trial)
			}
			if diff := a.UnionDiff(&a, nil); len(diff) != 0 {
				t.Fatalf("trial %d: self-UnionDiff returned ids", trial)
			}
			continue
		}
		for id := range refB {
			refA[id] = true
		}
		checkBitsEqual(t, &a, refA)
		// b must be untouched.
		checkBitsEqual(t, &b, refB)
	}
}

// TestBitsUnionAllAgainstPairwise cross-checks the k-way merge against a
// fold of UnionInPlace over random source lists, including high fan-in.
func TestBitsUnionAllAgainstPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(12) // beyond the stack-array fast path (8)
		var a, b Bits
		srcs := make([]*Bits, k)
		for i := range srcs {
			srcs[i] = new(Bits)
			for j := 0; j < rng.Intn(60); j++ {
				srcs[i].Add(CellID(rng.Intn(1 << 12)))
			}
		}
		for j := 0; j < rng.Intn(60); j++ {
			id := CellID(rng.Intn(1 << 12))
			a.Add(id)
			b.Add(id)
		}
		wantAdded := 0
		for _, o := range srcs {
			wantAdded += b.UnionInPlace(o)
		}
		if got := a.UnionAll(srcs); got != wantAdded {
			t.Fatalf("trial %d: UnionAll added %d, pairwise added %d", trial, got, wantAdded)
		}
		if a.Len() != b.Len() {
			t.Fatalf("trial %d: UnionAll Len %d, pairwise Len %d", trial, a.Len(), b.Len())
		}
		b.Iterate(func(id CellID) {
			if !a.Has(id) {
				t.Fatalf("trial %d: UnionAll missing %d", trial, id)
			}
		})
	}
}

// benchBits builds a deterministic set of n ids spread over the given id
// range (shared benchmark fixture).
func benchBits(seed int64, n, idRange int) *Bits {
	rng := rand.New(rand.NewSource(seed))
	b := new(Bits)
	for i := 0; i < n; i++ {
		b.Add(CellID(rng.Intn(idRange)))
	}
	return b
}

// BenchmarkBitsUnionDiff pins the drain-path diff merge: "grow" unions a
// mostly-new source into a small receiver each iteration (the case the
// o.n pre-size targets — without it the append loop reallocates buf
// mid-merge), and "subset" unions a contained source (the popcount early
// exit: no writes at all).
func BenchmarkBitsUnionDiff(b *testing.B) {
	src := benchBits(7, 512, 1<<14)
	b.Run("grow", func(b *testing.B) {
		var buf []CellID
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst := benchBits(11, 32, 1<<14)
			buf = dst.UnionDiff(src, buf[:0])
		}
	})
	b.Run("subset", func(b *testing.B) {
		dst := benchBits(7, 512, 1<<14) // same seed: src ⊆ dst
		dst.UnionInPlace(src)
		var buf []CellID
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = dst.UnionDiff(src, buf[:0])
		}
	})
}

// BenchmarkBitsUnionAll compares the single-pass k-way barrier merge with
// the pairwise fold it replaces, at the fan-in the parallel executor
// produces (one pending buffer per publishing shard).
func BenchmarkBitsUnionAll(b *testing.B) {
	const k = 6
	srcs := make([]*Bits, k)
	for i := range srcs {
		srcs[i] = benchBits(int64(20+i), 256, 1<<14)
	}
	b.Run("unionall", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var dst Bits
			dst.UnionAll(srcs)
		}
	})
	b.Run("pairwise", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var dst Bits
			for _, o := range srcs {
				dst.UnionInPlace(o)
			}
		}
	})
}

func TestBitsClear(t *testing.T) {
	var b Bits
	for i := 0; i < 100; i++ {
		b.Add(CellID(i * 97))
	}
	b.Clear()
	if b.Len() != 0 || b.Has(0) || b.Has(97) {
		t.Fatal("Clear did not empty the set")
	}
	if !b.Add(5) || b.Len() != 1 {
		t.Fatal("set unusable after Clear")
	}
}

func TestCellTable(t *testing.T) {
	tab := NewCellTable()
	o1 := &ir.Object{ID: 1, Name: "a"}
	o2 := &ir.Object{ID: 2, Name: "b"}
	cells := []Cell{
		{Obj: o1},
		{Obj: o1, Off: 8, ByOff: true},
		{Obj: o2, Path: "f.g"},
		{Obj: o1, Off: 0, ByOff: true}, // distinct from the bare o1 cell
	}
	for i, c := range cells {
		if id := tab.ID(c); id != CellID(i) {
			t.Fatalf("ID(%v) = %d, want %d (first-seen order)", c, id, i)
		}
	}
	for i, c := range cells {
		if id := tab.ID(c); id != CellID(i) {
			t.Fatalf("re-intern ID(%v) = %d, want %d", c, id, i)
		}
		if got := tab.Cell(CellID(i)); got != c {
			t.Fatalf("Cell(%d) = %v, want %v", i, got, c)
		}
		if id, ok := tab.Find(c); !ok || id != CellID(i) {
			t.Fatalf("Find(%v) = %d,%v", c, id, ok)
		}
	}
	if _, ok := tab.Find(Cell{Obj: o2}); ok {
		t.Fatal("Find returned an id for a never-interned cell")
	}
	if tab.Len() != len(cells) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(cells))
	}
}
