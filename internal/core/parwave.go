package core

import (
	"sync"
	"sync/atomic"
)

// This file is the parallel wave executor: a work-stealing fan-out of the
// wave scheduler's ranked walk (congraph.go) across shards of the condensed
// constraint graph.
//
// The design splits one wave into a parallel phase and a sequential barrier.
// During the parallel phase workers perform ONLY pure Bits edge propagation:
// each shard is a contiguous span of the topological order, and a shard's
// owner is the only goroutine that may write the points-to or delta set of
// any cell ranked inside it, so intra-shard cascades run lock-free exactly
// like the sequential walk. A delta crossing into a foreign shard is not
// applied — it is published into the publishing shard's per-destination
// pending buffer. Everything that touches shared solver state — strategy
// rule firing (memo tables, Figure-3 counters, addEdge/addFact), the
// factObjs index, the dirty list, the counters — is deferred to the
// barrier, which runs on the solver goroutine and replays the shards'
// outputs in ascending shard order. Two consequences:
//
//   - No two goroutines ever mutate the same points-to set, watcher list,
//     or map: the parallel phase reads shared structure (topo, rank,
//     exactOut, watchers, a frozen find() snapshot) and writes only cells
//     it owns plus its private shard state.
//   - The result is deterministic in (program, strategy, Parallelism):
//     a shard's output depends only on the pre-wave state (cross-shard
//     deltas are invisible until the barrier), and the barrier consumes
//     shard outputs in shard order, so which worker ran which shard — the
//     only thing scheduling decides — cannot be observed. The single
//     exception is the ParSteals counter, which is documented as
//     schedule-dependent.
//
// Fact-set identity with the sequential executor then follows from the
// fixpoint's confluence: both schedules fire every (watcher, fact) pair
// exactly once (deltas dedup against pts before anything fires) and drain
// every pending delta before terminating, and the Figure-3 counters are a
// pure function of those exactly-once firings (see watch() in solver.go),
// so they too are byte-identical to a sequential solve.
//
// find() is frozen for the parallel phase as a flat representative array:
// merges happen only inside detectCycles, which runs sequentially at the
// top of a wave, so runWaves refreshes the snapshot right after each
// detection pass and workers index it without synchronization. Cells
// interned after the snapshot are their own representatives.
//
// Cancellation: workers poll the context every parCancelEvery drained
// cells and raise a shared atomic flag; everyone bails between cells. The
// barrier still folds in the partial counters, then drops the undelivered
// pendings and rule work — every fact already recorded is individually
// justified, so the Incomplete result is sound, merely missing further
// derivations, the same contract as the sequential path.

const (
	// parMinFrontier is the dirty-cell count below which a wave stays on
	// the sequential walk: sharding and goroutine fan-out cost more than a
	// small frontier is worth. The threshold reads only the deterministic
	// dirty count, so the parallel/sequential decision per wave is itself
	// deterministic.
	parMinFrontier = 64

	// parShardSpan is the target number of topo cells per shard. Shards
	// are oversubscribed relative to workers (up to parShardFactor per
	// worker) so stealing has granularity to balance skewed cascades.
	parShardSpan   = 64
	parShardFactor = 4

	// parCancelEvery is the worker-side analogue of cancelCheckEvery.
	parCancelEvery = 64

	// parMaxWorkers bounds the goroutine fan-out however large the
	// requested Parallelism is.
	parMaxWorkers = 64
)

// parPending accumulates one shard's outgoing deltas for one foreign cell.
type parPending struct {
	dst  CellID
	bits Bits
}

// parRule defers one drained cell's watcher firing to the barrier: the cell
// and the delta batch its watchers must see.
type parRule struct {
	cell  CellID
	batch Bits
}

// parShard is the unit of claimable work plus everything its processing
// produced. All fields are owned by the claiming worker until the barrier.
type parShard struct {
	lo, hi         int   // topo index span [lo, hi)
	loRank, hiRank int32 // rank span of the cells in [lo, hi): the ownership test

	steps         int
	edgeBatches   int
	factCrossings int
	nfacts        int
	gains         int // edge merges that added facts
	zeroGains     int // redundant merges: cycle-detection evidence

	newCells []CellID // cells whose pts went empty→non-empty (ncells/factObjs)
	dirty    []CellID // cells whose delta went empty→non-empty locally
	pend     []parPending
	pendIdx  map[CellID]int
	rules    []parRule
}

// parWorker is one goroutine's queue of shard ids plus its private
// allocation pools. Pools never migrate across goroutines mid-wave.
type parWorker struct {
	queue   []int32
	next    atomic.Int32
	scratch []CellID
	free    []Bits
}

func (w *parWorker) takeBits() Bits {
	if n := len(w.free); n > 0 {
		b := w.free[n-1]
		w.free = w.free[:n-1]
		return b
	}
	return Bits{}
}

func (w *parWorker) recycleBits(b Bits) {
	b.Clear()
	w.free = append(w.free, b)
}

// parExec is the per-solver parallel executor state, reused across waves.
type parExec struct {
	workers int
	shards  []parShard
	ws      []parWorker

	// flat is the frozen find() snapshot: flat[c] is c's representative as
	// of the last detection pass. Empty until the first merge (identity).
	flat []CellID

	// dstOrder/dstGroup group the shards' pendings by destination at the
	// barrier, in first-publication order.
	dstOrder []CellID
	dstGroup map[CellID][]*Bits

	stopFlag atomic.Bool
	steals   atomic.Int64
}

func newParExec(workers int) *parExec {
	if workers > parMaxWorkers {
		workers = parMaxWorkers
	}
	return &parExec{
		workers:  workers,
		ws:       make([]parWorker, workers),
		dstGroup: make(map[CellID][]*Bits),
	}
}

// refreshFlat rebuilds the workers' find() snapshot; called right after
// every detection pass (the only producer of merges).
func (p *parExec) refreshFlat(s *solver) {
	if !s.merged {
		p.flat = p.flat[:0]
		return
	}
	n := len(s.parent)
	if cap(p.flat) < n {
		p.flat = make([]CellID, n)
	} else {
		p.flat = p.flat[:n]
	}
	for i := range p.flat {
		p.flat[i] = s.find(CellID(i))
	}
}

// findFlat is the workers' race-free find(): representatives as of the last
// detection pass, identity beyond the snapshot (younger cells are unmerged).
func (p *parExec) findFlat(c CellID) CellID {
	if int(c) < len(p.flat) {
		return p.flat[c]
	}
	return c
}

// runWave executes one wave of the ranked walk in parallel: partition,
// fan out, then the deterministic barrier. The caller (runWaves) has
// already run cycle detection and swapped the dirty list for this wave.
func (p *parExec) runWave(s *solver) {
	nsh := p.prepare(s)
	if nsh == 0 {
		return
	}
	w := p.workers
	if w > nsh {
		w = nsh
	}
	// Block assignment: worker i owns the contiguous shard range
	// [i*nsh/w, (i+1)*nsh/w), preserving the walk's locality; stealing
	// redistributes when cascades skew.
	for i := 0; i < w; i++ {
		q := &p.ws[i]
		q.queue = q.queue[:0]
		for sid := i * nsh / w; sid < (i+1)*nsh/w; sid++ {
			q.queue = append(q.queue, int32(sid))
		}
		q.next.Store(0)
	}
	p.stopFlag.Store(false)

	if w == 1 {
		// One worker: run inline, skipping goroutine fan-out (and keeping
		// the executor exercisable under deterministic single-flow tests).
		p.work(s, 0, 1)
	} else {
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				p.work(s, i, w)
			}(i)
		}
		wg.Wait()
	}
	p.barrier(s, nsh)
}

// prepare partitions the current topo order into contiguous shards and
// resets their working state. Shard boundaries depend only on len(topo) and
// the configured worker count — never on GOMAXPROCS or timing.
func (p *parExec) prepare(s *solver) int {
	n := len(s.topo)
	if n == 0 {
		return 0
	}
	span := parShardSpan
	if maxSh := p.workers * parShardFactor; (n+span-1)/span > maxSh {
		span = (n + maxSh - 1) / maxSh
	}
	nsh := (n + span - 1) / span
	for len(p.shards) < nsh {
		p.shards = append(p.shards, parShard{pendIdx: make(map[CellID]int)})
	}
	for i := 0; i < nsh; i++ {
		sh := &p.shards[i]
		sh.lo = i * span
		sh.hi = sh.lo + span
		if sh.hi > n {
			sh.hi = n
		}
		// Ranks increase strictly along the compacted topo order (one
		// representative per component id), so contiguous index spans have
		// disjoint rank spans and the ownership test below is exact.
		sh.loRank = s.rank[s.topo[sh.lo]]
		sh.hiRank = s.rank[s.topo[sh.hi-1]]
		sh.steps, sh.edgeBatches, sh.factCrossings = 0, 0, 0
		sh.nfacts, sh.gains, sh.zeroGains = 0, 0, 0
		sh.newCells = sh.newCells[:0]
		sh.dirty = sh.dirty[:0]
		sh.pend = sh.pend[:0]
		sh.rules = sh.rules[:0]
	}
	return nsh
}

// owns reports whether cell rd (a representative) is ranked inside sh's
// span — i.e. whether the worker processing sh may write rd's sets.
func (sh *parShard) owns(s *solver, rd CellID) bool {
	if int(rd) >= len(s.rank) {
		return false
	}
	r := s.rank[rd]
	return r >= sh.loRank && r <= sh.hiRank
}

// work is one worker's wave: drain own shards, then steal.
func (p *parExec) work(s *solver, w, nw int) {
	ws := &p.ws[w]
	for {
		sid, stole := p.claim(w, nw)
		if sid < 0 {
			return
		}
		if stole {
			p.steals.Add(1)
		}
		p.runShard(s, &p.shards[sid], ws)
		if p.stopFlag.Load() {
			return
		}
	}
}

// claim pops the next shard id from the worker's own queue, falling back to
// stealing from peers scanned round-robin. Every queue slot is claimed by
// exactly one goroutine (the atomic cursor hands out unique indices), so a
// shard is processed exactly once however claims interleave.
func (p *parExec) claim(w, nw int) (sid int, stole bool) {
	own := &p.ws[w]
	if i := own.next.Add(1); int(i) <= len(own.queue) {
		return int(own.queue[i-1]), false
	}
	for d := 1; d < nw; d++ {
		v := &p.ws[(w+d)%nw]
		if int(v.next.Load()) >= len(v.queue) {
			continue // already dry; skip the wasted fetch-add
		}
		if i := v.next.Add(1); int(i) <= len(v.queue) {
			return int(v.queue[i-1]), true
		}
	}
	return -1, false
}

// runShard drains the shard's span in descending topo index — sources
// first, the same direction as the sequential walk — so a delta discovered
// upstream cascades through the whole shard within this wave.
func (p *parExec) runShard(s *solver, sh *parShard, ws *parWorker) {
	for i := sh.hi - 1; i >= sh.lo; i-- {
		c := s.topo[i]
		if s.delta[c].Len() == 0 {
			continue
		}
		if sh.steps%parCancelEvery == 0 {
			if p.stopFlag.Load() {
				return
			}
			if s.ctx != nil && s.ctx.Err() != nil {
				p.stopFlag.Store(true)
				return
			}
		}
		sh.steps++
		p.drainShard(s, sh, ws, c)
	}
}

// drainShard is the worker-side drain: identical to solver.drain except
// that foreign-shard merges become pendings, watcher firing is deferred,
// and all bookkeeping lands in shard-local state. Range edges cannot occur
// (wave mode implies an exact-edge strategy), and limits/trace are off by
// construction (newSolver gates the executor on both).
func (p *parExec) drainShard(s *solver, sh *parShard, ws *parWorker, c CellID) {
	batch := s.delta[c]
	s.delta[c] = ws.takeBits()
	for _, dst := range s.exactOut[c] {
		rd := p.findFlat(dst)
		if rd == c {
			continue // self-loop left by a merge: delta ⊆ pts already
		}
		sh.edgeBatches++
		sh.factCrossings += batch.Len()
		if sh.owns(s, rd) {
			if p.mergeShard(s, sh, ws, rd, &batch) == 0 {
				sh.zeroGains++
			} else {
				sh.gains++
			}
		} else {
			pi, ok := sh.pendIdx[rd]
			if !ok {
				pi = len(sh.pend)
				sh.pend = append(sh.pend, parPending{dst: rd, bits: ws.takeBits()})
				sh.pendIdx[rd] = pi
			}
			sh.pend[pi].bits.UnionInPlace(&batch)
		}
	}
	if len(s.watchers[c]) > 0 {
		sh.rules = append(sh.rules, parRule{cell: c, batch: batch})
	} else {
		ws.recycleBits(batch)
	}
}

// mergeShard is the worker-side mergeFrom for a cell the shard owns: the
// same UnionDiff/delta/dirty protocol, with counters and the newly-non-empty
// record deferred to shard state (ncells and factObjs are shared).
func (p *parExec) mergeShard(s *solver, sh *parShard, ws *parWorker, dst CellID, src *Bits) int {
	set := &s.pts[dst]
	if src.Len() == 0 || src == set {
		return 0
	}
	isNew := set.Len() == 0
	// Copy-on-write for interned sets, as in mergeFrom. Race-free: only the
	// worker owning dst's shard reaches here, the flag array is grown only
	// at barriers, and distinct elements of it are distinct memory
	// locations.
	if s.sharedSet(dst) {
		if src.n <= set.n && set.subsumes(src) {
			return 0 // no-gain merge: keep sharing the interned allocation
		}
		s.cowSet(dst)
	}
	buf := set.UnionDiff(src, ws.scratch[:0])
	added := len(buf)
	if added > 0 {
		if isNew {
			sh.newCells = append(sh.newCells, dst)
		}
		sh.nfacts += added
		d := &s.delta[dst]
		if d.Len() == 0 {
			sh.dirty = append(sh.dirty, dst)
		}
		for _, tgt := range buf {
			d.Add(tgt)
		}
	}
	ws.scratch = buf[:0]
	return added
}

// barrier folds the shards' outputs back into the solver, in ascending
// shard order so the merged state is independent of which worker ran what:
// counters and dirty lists first, then cross-shard pending deliveries
// (grouped per destination and combined with one UnionAll pass), then the
// deferred watcher firings. Runs on the solver goroutine; the WaitGroup in
// runWave orders every shard write before it.
func (p *parExec) barrier(s *solver, nsh int) {
	s.stats.ParWaves++
	anyGain := false
	zero := 0
	for i := 0; i < nsh; i++ {
		sh := &p.shards[i]
		s.steps += sh.steps
		if sh.steps > 0 {
			s.stats.ParShards++
		}
		s.stats.EdgeBatches += sh.edgeBatches
		s.stats.FactCrossings += sh.factCrossings
		s.nfacts += sh.nfacts
		for _, c := range sh.newCells {
			s.ncells++
			s.recordFactObj(c)
		}
		s.dirty = append(s.dirty, sh.dirty...)
		if sh.gains > 0 {
			anyGain = true
		}
		zero += sh.zeroGains
	}
	// Wave-level redundancy evidence: any productive merge clears the
	// counter (as a productive merge does sequentially); an all-redundant
	// wave accumulates toward the re-detection trigger.
	if anyGain {
		s.redundant = 0
	} else {
		s.redundant += zero
	}
	s.stats.ParSteals += int(p.steals.Swap(0))

	if p.stopFlag.Load() {
		// Canceled mid-wave: record the stop with the counters already
		// folded in, then drop undelivered pendings and rule work — the
		// recorded facts are sound without them.
		s.checkCtx()
		p.discard(s, nsh)
		return
	}

	// Cross-shard deliveries. Group the pendings by destination in
	// first-publication (shard, then intra-shard) order; a destination fed
	// by several shards gets its buffers combined in a single UnionAll
	// block-merge pass, then one mergeFrom installs the batch and queues
	// the delta.
	order := p.dstOrder[:0]
	for i := 0; i < nsh; i++ {
		sh := &p.shards[i]
		for j := range sh.pend {
			pe := &sh.pend[j]
			lst, ok := p.dstGroup[pe.dst]
			if !ok {
				order = append(order, pe.dst)
			}
			p.dstGroup[pe.dst] = append(lst, &pe.bits)
			s.stats.ParPendings++
		}
	}
	for _, dst := range order {
		srcs := p.dstGroup[dst]
		delete(p.dstGroup, dst)
		if s.stop == nil {
			if len(srcs) == 1 {
				s.mergeFrom(dst, srcs[0])
			} else {
				comb := s.takeBits()
				comb.UnionAll(srcs)
				s.mergeFrom(dst, &comb)
				s.recycleBits(comb)
			}
		}
	}
	p.dstOrder = order[:0]

	// Deferred rule firings: per shard, per drained cell (in the shard's
	// deterministic processing order), the batch replays to the cell's
	// watchers exactly as solver.drain would have.
	fired := 0
	for i := 0; i < nsh; i++ {
		sh := &p.shards[i]
		for j := range sh.rules {
			r := &sh.rules[j]
			if s.stop == nil {
				if fired%parCancelEvery == 0 {
					s.checkCtx()
				}
				fired++
				buf := r.batch.AppendTo(s.getScratch())
				for _, w := range s.watchers[r.cell] {
					for _, tgt := range buf {
						s.applyRule(w, s.table.Cell(tgt), tgt)
					}
				}
				s.putScratch(buf)
			}
			s.recycleBits(r.batch)
			r.batch = Bits{}
		}
		sh.rules = sh.rules[:0]
	}
	p.reclaim(s, nsh)
}

// discard drops undelivered pendings and rule batches after a mid-wave stop.
func (p *parExec) discard(s *solver, nsh int) {
	for i := 0; i < nsh; i++ {
		sh := &p.shards[i]
		for j := range sh.rules {
			s.recycleBits(sh.rules[j].batch)
			sh.rules[j].batch = Bits{}
		}
		sh.rules = sh.rules[:0]
	}
	p.reclaim(s, nsh)
}

// reclaim recycles the shards' pending buffers into the solver's shared
// pool (the barrier is sequential, so the pool is safe here) and clears the
// per-wave indexes.
func (p *parExec) reclaim(s *solver, nsh int) {
	for i := 0; i < nsh; i++ {
		sh := &p.shards[i]
		for j := range sh.pend {
			s.recycleBits(sh.pend[j].bits)
			sh.pend[j] = parPending{}
		}
		sh.pend = sh.pend[:0]
		clear(sh.pendIdx)
	}
}
