package core

// FuzzSolve drives the worklist solver, under all four strategies, over
// arbitrary programs in the paper's five normalized statement forms. The
// statements are decoded from the fuzz input over a fixed typed universe
// (two overlapping structs, scalar pointers, a double pointer), so every
// generated program respects the IR's invariants — any panic or hang the
// fuzzer finds is a real solver bug, not a malformed-program artifact.

import (
	"context"
	"testing"
	"time"

	"repro/internal/cc/layout"
	"repro/internal/cc/types"
	"repro/internal/ir"
)

// fuzzUniverse is the fixed object pool fuzz programs draw from.
type fuzzUniverse struct {
	lay  *layout.Engine
	objs []*ir.Object
}

func newFuzzUniverse() *fuzzUniverse {
	u := types.NewUniverse()
	intT := u.Basic(types.Int)
	pInt := types.PointerTo(intT)
	ppInt := types.PointerTo(pInt)
	pChar := types.PointerTo(u.Basic(types.Char))

	structS := u.NewRecord("S", false)
	structS.Record.Fields = []types.Field{
		{Name: "s1", Type: pInt, BitWidth: -1},
		{Name: "s2", Type: intT, BitWidth: -1},
		{Name: "s3", Type: pChar, BitWidth: -1},
	}
	structS.Record.Complete = true

	structT := u.NewRecord("T", false)
	structT.Record.Fields = []types.Field{
		{Name: "t1", Type: pInt, BitWidth: -1},
		{Name: "t2", Type: pInt, BitWidth: -1},
		{Name: "t3", Type: pChar, BitWidth: -1},
	}
	structT.Record.Complete = true

	f := &fuzzUniverse{lay: layout.New(nil)}
	add := func(name string, t *types.Type) {
		f.objs = append(f.objs, &ir.Object{
			ID: len(f.objs) + 1, Name: name, Kind: ir.ObjVar, Type: t,
		})
	}
	add("x", intT)
	add("y", intT)
	add("p", pInt)
	add("q", pInt)
	add("pp", ppInt)
	add("s", structS)
	add("t", structT)
	add("ps", types.PointerTo(structS))
	add("pt", types.PointerTo(structT))
	return f
}

// fieldPaths returns the valid field selections for a value of type t:
// the empty path always, plus each field name when t is a struct.
func fieldPaths(t *types.Type) []ir.Path {
	paths := []ir.Path{nil}
	if t != nil && t.IsRecord() && t.Record != nil {
		for _, f := range t.Record.Fields {
			paths = append(paths, ir.Path{f.Name})
		}
	}
	return paths
}

// decodeProgram turns fuzz bytes into a program of the five normalized
// forms: 4 bytes per statement (op, dst, src/ptr, path selector).
func decodeProgram(f *fuzzUniverse, data []byte) *ir.Program {
	const maxStmts = 256
	prog := &ir.Program{Objects: f.objs}
	pick := func(b byte) *ir.Object { return f.objs[int(b)%len(f.objs)] }
	for i := 0; i+4 <= len(data) && len(prog.Stmts) < maxStmts; i += 4 {
		op := ir.Op(int(data[i]) % 5) // the five normalized forms
		a, b := pick(data[i+1]), pick(data[i+2])
		sel := data[i+3]
		st := &ir.Stmt{Op: op}
		switch op {
		case ir.OpAddrOf:
			st.Dst, st.Src = a, b
			paths := fieldPaths(b.Type)
			st.Path = paths[int(sel)%len(paths)]
		case ir.OpAddrField:
			st.Dst, st.Ptr = a, b
			paths := fieldPaths(b.Type.Pointee())
			st.Path = paths[int(sel)%len(paths)]
		case ir.OpCopy:
			st.Dst, st.Src = a, b
			paths := fieldPaths(b.Type)
			st.Path = paths[int(sel)%len(paths)]
		case ir.OpLoad:
			st.Dst, st.Ptr = a, b
		case ir.OpStore:
			st.Ptr, st.Src = a, b
		}
		prog.Stmts = append(prog.Stmts, st)
	}
	return prog
}

// FuzzSolve checks that the solver terminates without panicking on every
// well-formed five-form program, under all four strategies, and that a
// governed run reports a valid Stop when it trips its bounds.
func FuzzSolve(f *testing.F) {
	// Seeds: each op solo, a mixed program, and adversarial repetition.
	f.Add([]byte{0, 2, 0, 0, 3, 2, 0, 0}) // p=&x; *p=x (addrof+store)
	f.Add([]byte{0, 5, 5, 1, 2, 6, 5, 2}) // struct paths via copy
	f.Add([]byte{1, 7, 7, 1, 4, 4, 7, 0}) // addrfield through *S, load **
	f.Add([]byte{0, 4, 2, 0, 2, 3, 2, 0, 3, 4, 3, 0, 4, 2, 4, 0})
	var ring []byte
	for i := 0; i < 64; i++ {
		ring = append(ring, 2, byte(2+i%3), byte(2+(i+1)%3), 0)
	}
	f.Add(ring)

	univ := newFuzzUniverse()
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := decodeProgram(univ, data)
		if len(prog.Stmts) == 0 {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		opts := Options{Limits: Limits{MaxSteps: 10000, MaxFacts: 100000}}
		for _, strat := range []Strategy{
			NewCIS(), NewCollapseAlways(), NewCollapseOnCast(), NewOffsets(univ.lay),
		} {
			r := AnalyzeContext(ctx, prog, strat, opts)
			if r == nil {
				t.Fatal("AnalyzeContext returned nil")
			}
			if r.Incomplete != nil {
				switch r.Incomplete.Reason {
				case StopMaxSteps, StopMaxFacts, StopMaxCells, StopCanceled, StopDeadline:
				default:
					t.Fatalf("invalid stop reason %q", r.Incomplete.Reason)
				}
			}
		}
	})
}
