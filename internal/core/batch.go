package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ir"
)

// BatchJob is one analysis to run as part of AnalyzeBatch. Programs may be
// shared between jobs (the solver only reads them), but every job MUST carry
// its own Strategy instance: strategies hold per-run state (the Recorder and
// the lookup/resolve memo tables) and are not safe for concurrent use.
type BatchJob struct {
	Prog  *ir.Program
	Strat Strategy
	Opts  Options
}

// AnalyzeBatch runs the jobs across a pool of parallelism workers and
// returns their results indexed exactly like jobs, so output ordering is
// deterministic regardless of scheduling. parallelism <= 0 selects
// GOMAXPROCS. The solver itself is sequential per job; the speedup comes
// from fanning independent (program, strategy) pairs — the shape of the
// paper's evaluation, which runs four instances over twenty programs.
func AnalyzeBatch(jobs []BatchJob, parallelism int) []*Result {
	results := make([]*Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	if parallelism == 1 {
		for i, j := range jobs {
			results[i] = AnalyzeWith(j.Prog, j.Strat, j.Opts)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				results[i] = AnalyzeWith(j.Prog, j.Strat, j.Opts)
			}
		}()
	}
	wg.Wait()
	return results
}
