package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/ir"
)

// BatchJob is one analysis to run as part of AnalyzeBatch. Programs may be
// shared between jobs (the solver only reads them), but every job MUST carry
// its own Strategy instance: strategies hold per-run state (the Recorder and
// the lookup/resolve memo tables) and are not safe for concurrent use.
type BatchJob struct {
	Prog  *ir.Program
	Strat Strategy
	Opts  Options
}

// AnalyzeBatch runs the jobs across a pool of parallelism workers and
// returns their results indexed exactly like jobs, so output ordering is
// deterministic regardless of scheduling. parallelism <= 0 selects
// GOMAXPROCS. The solver itself is sequential per job; the speedup comes
// from fanning independent (program, strategy) pairs — the shape of the
// paper's evaluation, which runs four instances over twenty programs.
//
// A job that panics leaves a nil slot in the returned slice; use
// AnalyzeBatchContext to also receive the per-job faults (and cancellation).
func AnalyzeBatch(jobs []BatchJob, parallelism int) []*Result {
	results, _ := AnalyzeBatchContext(context.Background(), jobs, parallelism)
	return results
}

// AnalyzeBatchContext is AnalyzeBatch under a context, with per-job fault
// isolation. results[i] and errs[i] describe job i:
//
//   - a job that completes (including limit-tripped jobs, whose Result
//     carries Incomplete) fills results[i] and leaves errs[i] nil;
//   - a job that panics leaves results[i] nil and records the recovered
//     KindInternal fault in errs[i] — the worker survives and the pool
//     keeps draining the remaining jobs;
//   - canceling ctx stops in-flight solvers (partial results with
//     Incomplete set) and makes not-yet-started jobs return immediately
//     the same way; cancellation is reported on the Result, not in errs.
func AnalyzeBatchContext(ctx context.Context, jobs []BatchJob, parallelism int) ([]*Result, []error) {
	results := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))
	if len(jobs) == 0 {
		return results, errs
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	one := func(i int) {
		defer fault.Recover("batch", &errs[i])
		j := jobs[i]
		results[i] = AnalyzeContext(ctx, j.Prog, j.Strat, j.Opts)
	}
	if parallelism == 1 {
		for i := range jobs {
			one(i)
		}
		return results, errs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				one(i)
			}
		}()
	}
	wg.Wait()
	return results, errs
}
