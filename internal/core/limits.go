package core

import (
	"context"
	"errors"

	"repro/internal/fault"
)

// Limits bounds the solver's resource use. Zero values mean "unlimited";
// the zero Limits reproduces the paper's unbounded fixpoint. When a limit
// trips, the solver stops and returns the facts derived so far — a partial
// result that is sound for everything already propagated (every recorded
// fact is justified by the inference rules; only further derivations are
// missing) — with Result.Incomplete describing the trip.
type Limits struct {
	// MaxSteps bounds worklist drains (cells popped from the worklist).
	MaxSteps int
	// MaxFacts bounds the total number of points-to edges.
	MaxFacts int
	// MaxCells bounds the number of distinct cells holding facts.
	MaxCells int
}

// StopReason is the machine-readable cause of an incomplete analysis.
type StopReason string

// Stop reasons.
const (
	StopMaxSteps StopReason = "max-steps"
	StopMaxFacts StopReason = "max-facts"
	StopMaxCells StopReason = "max-cells"
	StopCanceled StopReason = "canceled"
	StopDeadline StopReason = "deadline"
)

// Stop records why and where the solver stopped before reaching fixpoint.
type Stop struct {
	Reason StopReason
	Steps  int   // worklist drains performed
	Facts  int   // points-to edges recorded
	Cells  int   // distinct cells holding facts
	Limit  int   // the limit value that tripped; 0 for cancellation
	Err    error // the context's error for canceled/deadline stops
}

// Canceled reports whether the stop came from context cancellation (either
// an explicit cancel or a deadline) rather than a resource limit.
func (s *Stop) Canceled() bool {
	return s.Reason == StopCanceled || s.Reason == StopDeadline
}

func (s *Stop) String() string {
	if s == nil {
		return "complete"
	}
	return string(s.Reason)
}

// AsError converts the stop into its taxonomy error: KindLimit for tripped
// limits, KindCanceled for cancellation (wrapping the context error so
// errors.Is(err, context.Canceled / context.DeadlineExceeded) hold).
func (s *Stop) AsError() error {
	if s == nil {
		return nil
	}
	if s.Canceled() {
		return fault.New(fault.KindCanceled, "solve", "", s.Err)
	}
	return fault.Newf(fault.KindLimit, "solve", "",
		"%s: stopped at %d steps, %d facts, %d cells (limit %d)",
		s.Reason, s.Steps, s.Facts, s.Cells, s.Limit)
}

// stopFor classifies a context error into a stop reason.
func stopFor(err error) StopReason {
	if errors.Is(err, context.DeadlineExceeded) {
		return StopDeadline
	}
	return StopCanceled
}
