package steens_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/corpus/corpustest"
	"repro/internal/frontend"
	"repro/internal/ir"
	"repro/internal/steens"
)

func load(t *testing.T, src string) *frontend.Result {
	t.Helper()
	r, err := frontend.Load([]frontend.Source{{Name: "t.c", Text: src}}, frontend.Options{})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return r
}

func obj(t *testing.T, p *ir.Program, name string) *ir.Object {
	t.Helper()
	for _, o := range p.Objects {
		if o.Name == name || (o.Sym != nil && o.Sym.Name == name) {
			return o
		}
	}
	t.Fatalf("object %q not found", name)
	return nil
}

func names(objs []*ir.Object) map[string]bool {
	out := make(map[string]bool)
	for _, o := range objs {
		out[o.Name] = true
	}
	return out
}

func TestBasicAddressOf(t *testing.T) {
	r := load(t, "int x, *p;\nvoid f(void) { p = &x; }")
	res := steens.Analyze(r.IR)
	got := names(res.PointsTo(obj(t, r.IR, "p")))
	if !got["x"] {
		t.Errorf("pts(p) = %v, want x", got)
	}
}

func TestUnificationMergesTargets(t *testing.T) {
	// The signature difference from the subset-based framework: after
	// p = &x; q = &y; p = q, Steensgaard reports BOTH x and y for BOTH
	// pointers (their pointee classes are unified).
	src := `
int x, y, *p, *q;
void f(void) {
	p = &x;
	q = &y;
	p = q;
}`
	r := load(t, src)
	res := steens.Analyze(r.IR)
	gp := names(res.PointsTo(obj(t, r.IR, "p")))
	gq := names(res.PointsTo(obj(t, r.IR, "q")))
	if !gp["x"] || !gp["y"] {
		t.Errorf("pts(p) = %v, want x and y (unified)", gp)
	}
	if !gq["x"] || !gq["y"] {
		t.Errorf("pts(q) = %v, want x and y (unified)", gq)
	}

	// The framework's subset-based Collapse Always keeps q precise.
	cres := core.Analyze(r.IR, core.NewCollapseAlways())
	cq := cres.PointsTo(obj(t, r.IR, "q"), nil)
	if cq.Len() != 1 {
		t.Errorf("subset-based pts(q) has %d targets, want 1", cq.Len())
	}
}

func TestLoadStore(t *testing.T) {
	src := `
int x, *p, **pp, *r;
void f(void) {
	p = &x;
	pp = &p;
	r = *pp;
}`
	r := load(t, src)
	res := steens.Analyze(r.IR)
	if got := names(res.PointsTo(obj(t, r.IR, "r"))); !got["x"] {
		t.Errorf("pts(r) = %v, want x", got)
	}
}

func TestStoreThrough(t *testing.T) {
	src := `
int x, *q, **pp, *p;
void f(void) {
	pp = &p;
	q = &x;
	*pp = q;
}`
	r := load(t, src)
	res := steens.Analyze(r.IR)
	if got := names(res.PointsTo(obj(t, r.IR, "p"))); !got["x"] {
		t.Errorf("pts(p) = %v, want x", got)
	}
}

func TestInterprocedural(t *testing.T) {
	src := `
int *id(int *v) { return v; }
int x, *p;
void f(void) { p = id(&x); }`
	r := load(t, src)
	res := steens.Analyze(r.IR)
	if got := names(res.PointsTo(obj(t, r.IR, "p"))); !got["x"] {
		t.Errorf("pts(p) = %v, want x", got)
	}
}

func TestFunctionPointerBinding(t *testing.T) {
	src := `
int x, y;
int *fx(void) { return &x; }
int *fy(void) { return &y; }
int *(*fp)(void);
int *r;
void f(int c) {
	if (c) fp = fx; else fp = fy;
	r = fp();
}`
	r := load(t, src)
	res := steens.Analyze(r.IR)
	got := names(res.PointsTo(obj(t, r.IR, "r")))
	if !got["x"] || !got["y"] {
		t.Errorf("pts(r) = %v, want x and y", got)
	}
}

func TestLateFunctionBinding(t *testing.T) {
	// The function reaches the callee class only after the call site is
	// processed (statement order): the pending-call mechanism must bind.
	src := `
int x;
int *g(void) { return &x; }
int *(*fp)(void);
int *r;
void first(void) { r = fp(); }
void second(void) { fp = g; }`
	r := load(t, src)
	res := steens.Analyze(r.IR)
	if got := names(res.PointsTo(obj(t, r.IR, "r"))); !got["x"] {
		t.Errorf("pts(r) = %v, want x (late binding)", got)
	}
}

func TestSoundVsFramework(t *testing.T) {
	// On every corpus program, any target the subset-based Collapse
	// Always analysis finds for a dereferenced pointer must be inside
	// the Steensgaard class (unification only ever merges).
	for _, e := range corpus.Programs {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			src := corpustest.MustSource(e.Name)
			r, err := frontend.Load(src, frontend.Options{})
			if err != nil {
				t.Fatal(err)
			}
			su := steens.Analyze(r.IR)
			ca := core.Analyze(r.IR, core.NewCollapseAlways())
			for _, site := range r.IR.Sites {
				steensSet := names(su.PointsTo(site.Ptr))
				for c := range ca.PointsTo(site.Ptr, nil) {
					if !steensSet[c.Obj.Name] {
						t.Fatalf("site %v: %s found by collapse-always but not steensgaard",
							site.Pos, c.Obj.Name)
					}
				}
			}
		})
	}
}

func TestPrecisionNeverBeatsSubset(t *testing.T) {
	// Average set sizes: unification ≥ subset collapse on every program.
	expand := func(o *ir.Object) int { return 1 }
	for _, e := range corpus.Programs {
		src := corpustest.MustSource(e.Name)
		r, err := frontend.Load(src, frontend.Options{})
		if err != nil {
			t.Fatal(err)
		}
		su := steens.Analyze(r.IR)
		ca := core.Analyze(r.IR, core.NewCollapseAlways())

		// Count subset sizes without expansion for a fair comparison.
		subsetTotal := 0
		for _, site := range r.IR.Sites {
			subsetTotal += ca.PointsTo(site.Ptr, nil).Len()
		}
		steensAvg := su.AvgDerefSetSize(expand)
		subsetAvg := float64(subsetTotal) / float64(len(r.IR.Sites))
		if steensAvg+1e-9 < subsetAvg {
			t.Errorf("%s: steensgaard avg %.2f < collapse-always avg %.2f",
				e.Name, steensAvg, subsetAvg)
		}
	}
}

func TestAnalysisRunsFastOnCorpus(t *testing.T) {
	for _, e := range corpus.Programs {
		src := corpustest.MustSource(e.Name)
		r, err := frontend.Load(src, frontend.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := steens.Analyze(r.IR)
		if res.TotalFacts() == 0 {
			t.Errorf("%s: no facts", e.Name)
		}
	}
}
