// Package steens implements a Steensgaard-style unification-based points-to
// analysis over the same normalized IR the framework consumes. The paper's
// related-work section positions Steensgaard's algorithm as the other
// portable approach: it keeps running time near-linear by unifying the
// points-to sets of everything an assignment relates, at a (sometimes
// large) precision cost. This implementation is the classic object-level
// variant (structures collapsed), so comparing it against the framework's
// instances quantifies exactly the trade the paper describes.
package steens

import (
	"time"

	"repro/internal/ir"
)

// ecr is an equivalence-class representative in the union-find forest.
type ecr struct {
	parent *ecr
	rank   int

	// pts is the class every member of this class points to (nil = ⊥).
	pts *ecr

	// members are the program objects in this class (root only).
	members []*ir.Object
	// funcs are the function objects in this class (root only).
	funcs []*ir.Func
	// calls are call sites whose callee points into this class (root
	// only); kept so later-unified functions still bind.
	calls []*call
}

type call struct {
	args   []*ecr
	result *ecr
	bound  map[*ir.Func]bool
}

func (e *ecr) find() *ecr {
	root := e
	for root.parent != nil {
		root = root.parent
	}
	for e.parent != nil {
		next := e.parent
		e.parent = root
		e = next
	}
	return root
}

// Result holds the classes computed by Analyze.
type Result struct {
	Program  *ir.Program
	Duration time.Duration

	objECR map[*ir.Object]*ecr
}

// PointsTo returns the objects the given object's class may point to.
func (r *Result) PointsTo(obj *ir.Object) []*ir.Object {
	e, ok := r.objECR[obj]
	if !ok {
		return nil
	}
	p := e.find().pts
	if p == nil {
		return nil
	}
	return p.find().members
}

// ClassSize returns the size of the points-to class of obj (0 if ⊥).
func (r *Result) ClassSize(obj *ir.Object) int {
	return len(r.PointsTo(obj))
}

// AvgDerefSetSize mirrors core.Result.AvgDerefSetSize: the average number
// of objects (expanded per-field) a dereferenced pointer may reference.
func (r *Result) AvgDerefSetSize(expand func(*ir.Object) int) float64 {
	if len(r.Program.Sites) == 0 {
		return 0
	}
	total := 0
	for _, s := range r.Program.Sites {
		for _, o := range r.PointsTo(s.Ptr) {
			total += expand(o)
		}
	}
	return float64(total) / float64(len(r.Program.Sites))
}

// TotalFacts counts one fact per (object, pointee-class member), the
// closest analogue of the framework's edge count.
func (r *Result) TotalFacts() int {
	n := 0
	seen := make(map[*ecr]bool)
	for _, e := range r.objECR {
		root := e.find()
		if seen[root] {
			continue
		}
		seen[root] = true
		if root.pts != nil {
			n += len(root.members) * len(root.pts.find().members)
		}
	}
	return n
}

// solver carries the unification state.
type solver struct {
	prog   *ir.Program
	objECR map[*ir.Object]*ecr
}

// Analyze runs the unification analysis to completion.
func Analyze(prog *ir.Program) *Result {
	start := time.Now()
	s := &solver{prog: prog, objECR: make(map[*ir.Object]*ecr)}
	for _, st := range prog.Stmts {
		s.stmt(st)
	}
	return &Result{
		Program:  prog,
		Duration: time.Since(start),
		objECR:   s.objECR,
	}
}

// of returns (creating if needed) the ECR of an object.
func (s *solver) of(obj *ir.Object) *ecr {
	if e, ok := s.objECR[obj]; ok {
		return e.find()
	}
	e := &ecr{}
	e.members = []*ir.Object{obj}
	s.objECR[obj] = e
	if obj.Kind == ir.ObjFunc && obj.Sym != nil {
		if fn := s.prog.FuncOf[obj.Sym]; fn != nil {
			e.funcs = []*ir.Func{fn}
		}
	}
	return e
}

// ptsOf returns the points-to class of e, creating a fresh ⊥ class when
// absent (the eager variant of Steensgaard's conditional join).
func (s *solver) ptsOf(e *ecr) *ecr {
	e = e.find()
	if e.pts == nil {
		e.pts = &ecr{}
	}
	return e.pts.find()
}

// union merges two classes and reconciles their points-to links, function
// lists and pending call sites.
func (s *solver) union(a, b *ecr) *ecr {
	a, b = a.find(), b.find()
	if a == b {
		return a
	}
	if a.rank < b.rank {
		a, b = b, a
	}
	if a.rank == b.rank {
		a.rank++
	}
	b.parent = a

	oldFuncs := a.funcs
	oldCalls := a.calls
	newFuncs := b.funcs
	newCalls := b.calls

	a.members = append(a.members, b.members...)
	a.funcs = append(a.funcs, b.funcs...)
	a.calls = append(a.calls, b.calls...)
	b.members, b.funcs, b.calls = nil, nil, nil

	// Reconcile points-to links. The recursive union below may move a
	// under another root (cyclic classes), so re-find before writing.
	ap, bp := a.pts, b.pts
	a.pts, b.pts = nil, nil
	var merged *ecr
	switch {
	case ap == nil:
		merged = bp
	case bp == nil:
		merged = ap
	default:
		merged = s.union(ap, bp)
	}
	root := a.find()
	if root.pts == nil {
		root.pts = merged
	} else if merged != nil {
		s.union(root.pts, merged)
	}

	// Bind newly colocated (function, call site) pairs, both ways.
	for _, c := range oldCalls {
		for _, fn := range newFuncs {
			s.bind(c, fn)
		}
	}
	for _, c := range newCalls {
		for _, fn := range oldFuncs {
			s.bind(c, fn)
		}
		for _, fn := range newFuncs {
			s.bind(c, fn)
		}
	}
	return a.find()
}

// join unifies the points-to links of two classes (x = y).
func (s *solver) join(a, b *ecr) {
	s.union(s.ptsOf(a), s.ptsOf(b))
}

func (s *solver) stmt(st *ir.Stmt) {
	switch st.Op {
	case ir.OpAddrOf:
		// dst = &src: src joins dst's pointee class.
		s.union(s.ptsOf(s.of(st.Dst)), s.of(st.Src))

	case ir.OpAddrField:
		// dst = &((*p).α): a pointer into whatever p points at.
		s.join(s.of(st.Dst), s.of(st.Ptr))

	case ir.OpCopy, ir.OpPtrArith:
		s.join(s.of(st.Dst), s.of(st.Src))

	case ir.OpLoad:
		// dst = *p: λ(dst) ∪ λ(λ(p)).
		s.union(s.ptsOf(s.of(st.Dst)), s.ptsOf(s.ptsOf(s.of(st.Ptr))))

	case ir.OpStore:
		if st.Src == nil {
			return
		}
		// *p = src: λ(λ(p)) ∪ λ(src).
		s.union(s.ptsOf(s.ptsOf(s.of(st.Ptr))), s.ptsOf(s.of(st.Src)))

	case ir.OpMemCopy:
		// *d ⇐ *s: unify the pointees' pointees.
		s.union(s.ptsOf(s.ptsOf(s.of(st.Ptr))), s.ptsOf(s.ptsOf(s.of(st.Src))))

	case ir.OpCall:
		callee := s.ptsOf(s.of(st.Ptr)) // the class of callable objects
		c := &call{bound: make(map[*ir.Func]bool)}
		for _, a := range st.Args {
			if a == nil {
				c.args = append(c.args, nil)
				continue
			}
			c.args = append(c.args, s.of(a))
		}
		if st.Dst != nil {
			c.result = s.of(st.Dst)
		}
		callee = callee.find()
		callee.calls = append(callee.calls, c)
		for _, fn := range callee.funcs {
			s.bind(c, fn)
		}
	}
}

// bind unifies a call site with one candidate function.
func (s *solver) bind(c *call, fn *ir.Func) {
	if c.bound[fn] {
		return
	}
	c.bound[fn] = true
	for i, a := range c.args {
		if a == nil {
			continue
		}
		if i < len(fn.Params) && fn.Params[i] != nil {
			s.join(a, s.of(fn.Params[i]))
		} else if fn.Varargs != nil {
			s.join(a, s.of(fn.Varargs))
		}
	}
	if c.result != nil && fn.Retval != nil {
		s.join(c.result, s.of(fn.Retval))
	}
}
