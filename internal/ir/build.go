package ir

import (
	"fmt"

	"repro/internal/cc/ast"
	"repro/internal/cc/sema"
	"repro/internal/cc/token"
	"repro/internal/cc/types"
)

// Summarizer supplies pointer-effect models of external (library) functions,
// mirroring the paper's use of the Wilson–Lam libc summaries.
type Summarizer interface {
	// IsAllocator reports whether a call to name returns a fresh heap
	// block (malloc-like). Allocator calls get per-call-site heap
	// pseudo-variables.
	IsAllocator(name string) bool
	// EmitAllocEffects emits any extra effects of an allocator call
	// beyond res = &heap — e.g. realloc's aliasing of the old block.
	// args holds the lowered argument objects (entries may be nil).
	EmitAllocEffects(b *Builder, name string, res *Object, args []*Object, pos token.Pos)
	// EmitBody emits a synthetic body for the named external function
	// into fn using the builder's Emit API, returning false when the
	// function is unknown.
	EmitBody(b *Builder, fn *Func) bool
}

// Config controls IR construction.
type Config struct {
	// Summarizer models external functions; may be nil (all externals
	// are then treated as no-ops, with warnings).
	Summarizer Summarizer
	// ModelMainArgs, when set, gives main's argv a synthetic points-to
	// target so argv-walking code has something to chase.
	ModelMainArgs bool
}

// Build lowers a type-checked program to the normalized IR.
func Build(prog *sema.Program, cfg Config) *Program {
	b := &Builder{
		sema: prog,
		cfg:  cfg,
		out: &Program{
			Sema:     prog,
			FuncOf:   make(map[*sema.Symbol]*Func),
			ObjectOf: make(map[*sema.Symbol]*Object),
		},
	}
	b.build()
	return b.out
}

// Builder lowers AST to IR. Its exported Emit/New methods are also the API
// package libsum uses to express library summaries.
type Builder struct {
	sema   *sema.Program
	cfg    Config
	out    *Program
	fn     *Func // current function (nil during global initializers)
	nextID int
	nTemp  int
	nSite  int
}

// Program returns the program under construction.
func (b *Builder) Program() *Program { return b.out }

func (b *Builder) warnf(format string, args ...interface{}) {
	b.out.Warnings = append(b.out.Warnings, fmt.Sprintf(format, args...))
}

// --- object creation ---

func (b *Builder) newObject(name string, kind ObjKind, t *types.Type, pos token.Pos) *Object {
	b.nextID++
	o := &Object{ID: b.nextID, Name: name, Kind: kind, Type: t, Pos: pos}
	b.out.Objects = append(b.out.Objects, o)
	return o
}

// NewTemp creates a fresh normalization temporary of the given type.
func (b *Builder) NewTemp(t *types.Type, pos token.Pos) *Object {
	b.nTemp++
	return b.newObject(fmt.Sprintf("tmp%d", b.nTemp), ObjTemp, t, pos)
}

// NewHeap creates an allocation-site pseudo-variable.
func (b *Builder) NewHeap(name string, t *types.Type, pos token.Pos) *Object {
	return b.newObject(name, ObjHeap, t, pos)
}

// NewStatic creates a named static object (used by library summaries for
// internal buffers such as strtok's saved pointer or getenv's result).
func (b *Builder) NewStatic(name string, t *types.Type, pos token.Pos) *Object {
	return b.newObject(name, ObjVar, t, pos)
}

// Universe returns the program's type universe (for summary construction).
func (b *Builder) Universe() *types.Universe { return b.sema.Universe }

// EmitCall emits an indirect call statement (used by summaries of functions
// like qsort that invoke a caller-supplied function pointer).
func (b *Builder) EmitCall(result, calleePtr *Object, args []*Object, pos token.Pos) {
	b.emit(&Stmt{Op: OpCall, Dst: result, Ptr: calleePtr, Args: args, Pos: pos})
}

func (b *Builder) objectOf(sym *sema.Symbol) *Object {
	if o, ok := b.out.ObjectOf[sym]; ok {
		return o
	}
	kind := ObjVar
	switch sym.Kind {
	case sema.SymFunc:
		kind = ObjFunc
	case sema.SymParam:
		kind = ObjParam
	}
	o := b.newObject(sym.Unique, kind, sym.Type, sym.Pos)
	o.Sym = sym
	b.out.ObjectOf[sym] = o
	return o
}

// --- statement emission (exported for libsum) ---

func (b *Builder) emit(s *Stmt) *Stmt {
	s.Fn = b.fn
	if b.fn != nil {
		b.fn.Stmts = append(b.fn.Stmts, s)
	}
	b.out.Stmts = append(b.out.Stmts, s)
	if s.Site != nil && s.Site.ID == 0 {
		b.nSite++
		s.Site.ID = b.nSite
		b.out.Sites = append(b.out.Sites, s.Site)
	}
	return s
}

// EmitAddrOf emits dst = &src.path.
func (b *Builder) EmitAddrOf(dst *Object, src Ref, pos token.Pos) {
	b.emit(&Stmt{Op: OpAddrOf, Dst: dst, Src: src.Obj, Path: src.Path, Pos: pos})
}

// EmitCopy emits dst = src.path.
func (b *Builder) EmitCopy(dst *Object, src Ref, pos token.Pos) {
	b.emit(&Stmt{Op: OpCopy, Dst: dst, Src: src.Obj, Path: src.Path, Pos: pos})
}

// EmitLoad emits dst = *ptr.
func (b *Builder) EmitLoad(dst, ptr *Object, pos token.Pos) {
	b.emit(&Stmt{Op: OpLoad, Dst: dst, Ptr: ptr, Pos: pos})
}

// EmitStore emits *ptr = src.
func (b *Builder) EmitStore(ptr, src *Object, pos token.Pos) {
	b.emit(&Stmt{Op: OpStore, Ptr: ptr, Src: src, Pos: pos})
}

// EmitMemCopy emits a whole-object copy through two pointers (memcpy).
func (b *Builder) EmitMemCopy(dstPtr, srcPtr *Object, pos token.Pos) {
	b.emit(&Stmt{Op: OpMemCopy, Ptr: dstPtr, Src: srcPtr, Pos: pos})
}

// EmitPtrArith emits dst = src ⊕ … (Assumption 1 smearing).
func (b *Builder) EmitPtrArith(dst, src *Object, pos token.Pos) {
	b.emit(&Stmt{Op: OpPtrArith, Dst: dst, Src: src, Pos: pos})
}

// --- program construction ---

func (b *Builder) build() {
	// Create IR funcs for every defined function first so calls bind.
	for _, sym := range b.sema.Funcs {
		b.declareFunc(sym)
	}
	// Synthetic bodies for externals with summaries.
	for _, sym := range b.sema.Symbols {
		if sym.Kind != sema.SymFunc || sym.Def != nil {
			continue
		}
		if sym.Type.Kind != types.Func {
			continue
		}
		if b.cfg.Summarizer != nil && b.cfg.Summarizer.IsAllocator(sym.Name) {
			// Per-site handling; also give a shared synthetic body
			// so indirect calls through function pointers bind.
			fn := b.declareFunc(sym)
			b.fn = fn
			heap := b.NewHeap("heap@"+sym.Name, nil, sym.Pos)
			if fn.Retval != nil {
				b.EmitAddrOf(fn.Retval, Ref{Obj: heap}, sym.Pos)
			}
			b.fn = nil
			continue
		}
		if b.cfg.Summarizer != nil {
			fn := b.declareFunc(sym)
			b.fn = fn
			if !b.cfg.Summarizer.EmitBody(b, fn) {
				b.warnf("no summary for external function %q; treated as no-op", sym.Name)
			}
			b.fn = nil
			continue
		}
		b.warnf("no summarizer; external function %q treated as no-op", sym.Name)
	}

	// Global initializers.
	for _, f := range b.sema.Files {
		for _, d := range f.Decls {
			vd, ok := d.(*ast.VarDecl)
			if !ok || vd.Init == nil {
				continue
			}
			sym := b.sema.Info.Defs[d]
			if sym == nil {
				continue
			}
			b.lowerInit(Ref{Obj: b.objectOf(sym)}, sym.Type, vd.Init)
		}
	}

	// Function bodies.
	for _, sym := range b.sema.Funcs {
		fn := b.out.FuncOf[sym]
		b.fn = fn
		if b.cfg.ModelMainArgs && sym.Name == "main" && len(fn.Params) >= 2 && fn.Params[1] != nil {
			b.modelMainArgs(fn)
		}
		b.lowerStmt(sym.Def.Body)
		b.fn = nil
	}
}

// declareFunc creates (or returns) the IR Func for a function symbol.
func (b *Builder) declareFunc(sym *sema.Symbol) *Func {
	if fn, ok := b.out.FuncOf[sym]; ok {
		return fn
	}
	fn := &Func{Sym: sym, Obj: b.objectOf(sym)}
	sig := sym.Type.Sig

	var paramSyms []*sema.Symbol
	if sym.Def != nil {
		paramSyms = b.sema.Info.Params[sym.Def]
	}
	for i, prm := range sig.Params {
		var o *Object
		if i < len(paramSyms) && paramSyms[i] != nil {
			o = b.objectOf(paramSyms[i])
		} else {
			name := prm.Name
			if name == "" {
				name = fmt.Sprintf("arg%d", i)
			}
			o = b.newObject(fmt.Sprintf("%s::%s", sym.Unique, name), ObjParam, prm.Type, sym.Pos)
		}
		fn.Params = append(fn.Params, o)
	}
	if sig.Variadic || sig.OldStyle {
		fn.Varargs = b.newObject(sym.Unique+"::...", ObjVarargs, types.PointerTo(b.sema.Universe.Basic(types.Void)), sym.Pos)
	}
	if !sig.Result.IsVoid() {
		fn.Retval = b.newObject(sym.Unique+"::ret", ObjRetval, sig.Result, sym.Pos)
	}
	b.out.FuncOf[sym] = fn
	b.out.Funcs = append(b.out.Funcs, fn)
	return fn
}

// modelMainArgs gives argv something to point at.
func (b *Builder) modelMainArgs(fn *Func) {
	pos := fn.Sym.Pos
	u := b.sema.Universe
	charArr := types.ArrayOf(u.Basic(types.Char), 64)
	strObj := b.newObject("argv@str", ObjString, charArr, pos)
	vec := b.newObject("argv@vec", ObjVar, types.ArrayOf(types.PointerTo(u.Basic(types.Char)), 1), pos)
	t1 := b.NewTemp(types.PointerTo(u.Basic(types.Char)), pos)
	b.EmitAddrOf(t1, Ref{Obj: strObj}, pos)
	t2 := b.NewTemp(types.PointerTo(types.PointerTo(u.Basic(types.Char))), pos)
	b.EmitAddrOf(t2, Ref{Obj: vec}, pos)
	b.EmitStore(t2, t1, pos)
	b.EmitCopy(fn.Params[1], Ref{Obj: t2}, pos)
}

// --- lvalues ---

// lval is the lowered form of an lvalue expression: either a direct object
// reference (t.β) or an indirect one ((*p).α).
type lval struct {
	direct bool
	ref    Ref // valid when direct

	ptr  *Object // valid when !direct
	path Path
	site *DerefSite // shared by all statements emitted for one source deref

	typ *types.Type // C type of the lvalue
}

func (b *Builder) newSite(pos token.Pos, ptr *Object) *DerefSite {
	return &DerefSite{Pos: pos, Ptr: ptr} // registered on first emission
}

// emitWithSite attaches the site to the statement and emits it.
func (b *Builder) emitWithSite(s *Stmt, site *DerefSite) {
	s.Site = site
	b.emit(s)
}

func (b *Builder) exprType(e ast.Expr) *types.Type {
	if t, ok := b.sema.Info.Types[e]; ok {
		return t
	}
	return b.sema.Universe.Basic(types.Int)
}

// lvalue lowers e as an lvalue.
func (b *Builder) lvalue(e ast.Expr) lval {
	switch e := e.(type) {
	case *ast.Paren:
		return b.lvalue(e.X)

	case *ast.Ident:
		sym := b.sema.Info.Uses[e]
		if sym == nil {
			// Analysis proceeded past an undeclared name; synthesize.
			o := b.NewTemp(b.exprType(e), e.Pos())
			return lval{direct: true, ref: Ref{Obj: o}, typ: o.Type}
		}
		o := b.objectOf(sym)
		return lval{direct: true, ref: Ref{Obj: o}, typ: sym.Type}

	case *ast.Unary:
		if e.Op == token.MUL {
			ptr := b.valueObj(e.X)
			if ptr == nil {
				ptr = b.NewTemp(b.exprType(e.X), e.Pos())
			}
			return lval{
				ptr:  ptr,
				site: b.newSite(e.Pos(), ptr),
				typ:  b.exprType(e),
			}
		}

	case *ast.Member:
		if e.Arrow {
			ptr := b.valueObj(e.X)
			if ptr == nil {
				ptr = b.NewTemp(b.exprType(e.X), e.Pos())
			}
			return lval{
				ptr:  ptr,
				path: Path{e.Name},
				site: b.newSite(e.Pos(), ptr),
				typ:  b.exprType(e),
			}
		}
		lv := b.lvalue(e.X)
		if lv.direct {
			lv.ref.Path = lv.ref.Path.Extend(e.Name)
		} else {
			lv.path = lv.path.Extend(e.Name)
		}
		lv.typ = b.exprType(e)
		return lv

	case *ast.Index:
		// Arrays are modeled as a single element, so indexing an array
		// lvalue does not change the reference; indexing a pointer is a
		// dereference.
		b.value(e.I) // side effects of the index expression
		xt := b.exprType(e.X)
		if xt.Kind == types.Array {
			lv := b.lvalue(e.X)
			lv.typ = b.exprType(e)
			return lv
		}
		ptr := b.valueObj(e.X)
		if ptr == nil {
			ptr = b.NewTemp(xt, e.Pos())
		}
		return lval{
			ptr:  ptr,
			site: b.newSite(e.Pos(), ptr),
			typ:  b.exprType(e),
		}

	case *ast.Cast:
		// (T)lv as an lvalue (GCC extension, occasionally seen).
		lv := b.lvalue(e.X)
		lv.typ = e.T
		return lv
	}

	// Fallback: treat as a fresh location (keeps lowering total).
	o := b.NewTemp(b.exprType(e), e.Pos())
	return lval{direct: true, ref: Ref{Obj: o}, typ: o.Type}
}

// addrOfLval materializes a pointer temp holding the address of lv.
func (b *Builder) addrOfLval(lv lval, pos token.Pos) *Object {
	tmp := b.NewTemp(types.PointerTo(lv.typ), pos)
	if lv.direct {
		b.EmitAddrOf(tmp, lv.ref, pos)
		return tmp
	}
	if len(lv.path) == 0 {
		// &*p is just p.
		b.EmitCopy(tmp, Ref{Obj: lv.ptr}, pos)
		return tmp
	}
	b.emitWithSite(&Stmt{Op: OpAddrField, Dst: tmp, Ptr: lv.ptr, Path: lv.path, Pos: pos}, lv.site)
	return tmp
}

// readLval loads the current value of lv into an object.
// Returns nil when the lvalue's value cannot carry pointers... it always can
// under casting, so a temp is always produced.
func (b *Builder) readLval(lv lval, pos token.Pos) *Object {
	if lv.direct {
		// Array-typed and function-typed lvalues decay to addresses.
		if lv.typ.Kind == types.Array || lv.typ.Kind == types.Func {
			tmp := b.NewTemp(lv.typ.Decay(), pos)
			b.EmitAddrOf(tmp, lv.ref, pos)
			return tmp
		}
		if len(lv.ref.Path) == 0 {
			return lv.ref.Obj
		}
		tmp := b.NewTemp(lv.typ, pos)
		b.EmitCopy(tmp, lv.ref, pos)
		return tmp
	}
	// Indirect.
	if lv.typ.Kind == types.Array {
		// Loading an array field yields its address: &((*p).α).
		tmp := b.NewTemp(lv.typ.Decay(), pos)
		if len(lv.path) == 0 {
			b.EmitCopy(tmp, Ref{Obj: lv.ptr}, pos)
		} else {
			b.emitWithSite(&Stmt{Op: OpAddrField, Dst: tmp, Ptr: lv.ptr, Path: lv.path, Pos: pos}, lv.site)
		}
		return tmp
	}
	ptr := lv.ptr
	if len(lv.path) > 0 {
		fieldPtr := b.NewTemp(types.PointerTo(lv.typ), pos)
		b.emitWithSite(&Stmt{Op: OpAddrField, Dst: fieldPtr, Ptr: lv.ptr, Path: lv.path, Pos: pos}, lv.site)
		ptr = fieldPtr
	}
	tmp := b.NewTemp(lv.typ, pos)
	b.emitWithSite(&Stmt{Op: OpLoad, Dst: tmp, Ptr: ptr, Pos: pos}, lv.site)
	return tmp
}

// writeLval stores src (may be nil for pointer-free values) into lv.
func (b *Builder) writeLval(lv lval, src *Object, pos token.Pos) {
	if lv.direct {
		if len(lv.ref.Path) == 0 {
			if src != nil {
				b.EmitCopy(lv.ref.Obj, Ref{Obj: src}, pos)
			}
			return
		}
		if src == nil {
			return
		}
		// tmp = &s.β ; *tmp = src   (forms 1 + 5)
		tmp := b.NewTemp(types.PointerTo(lv.typ), pos)
		b.EmitAddrOf(tmp, lv.ref, pos)
		b.EmitStore(tmp, src, pos)
		return
	}
	ptr := lv.ptr
	if len(lv.path) > 0 {
		fieldPtr := b.NewTemp(types.PointerTo(lv.typ), pos)
		b.emitWithSite(&Stmt{Op: OpAddrField, Dst: fieldPtr, Ptr: lv.ptr, Path: lv.path, Pos: pos}, lv.site)
		ptr = fieldPtr
	}
	// A store through a pointer is a deref even when the stored value
	// carries no pointers; keep the statement so the site is counted.
	b.emitWithSite(&Stmt{Op: OpStore, Ptr: ptr, Src: src, Pos: pos}, lv.site)
}

// --- rvalues ---

// value lowers e for its value, returning a direct reference when one
// exists. ok is false when the value cannot carry address information
// (integer literals, comparison results, …).
func (b *Builder) value(e ast.Expr) (Ref, bool) {
	switch e := e.(type) {
	case nil:
		return Ref{}, false

	case *ast.Paren:
		return b.value(e.X)

	case *ast.IntLit, *ast.FloatLit, *ast.CharLit:
		return Ref{}, false

	case *ast.StringLit:
		obj := b.newObject(fmt.Sprintf("strlit@%s", e.Pos()), ObjString,
			types.ArrayOf(b.sema.Universe.Basic(types.Char), int64(len(e.Value)+1)), e.Pos())
		tmp := b.NewTemp(types.PointerTo(b.sema.Universe.Basic(types.Char)), e.Pos())
		b.EmitAddrOf(tmp, Ref{Obj: obj}, e.Pos())
		return Ref{Obj: tmp}, true

	case *ast.Ident:
		sym := b.sema.Info.Uses[e]
		if sym == nil {
			return Ref{}, false
		}
		o := b.objectOf(sym)
		if o.Type != nil && (o.Type.Kind == types.Array || o.Type.Kind == types.Func) {
			tmp := b.NewTemp(o.Type.Decay(), e.Pos())
			b.EmitAddrOf(tmp, Ref{Obj: o}, e.Pos())
			return Ref{Obj: tmp}, true
		}
		return Ref{Obj: o}, true

	case *ast.Unary:
		return b.valueUnary(e)

	case *ast.Postfix:
		lv := b.lvalue(e.X)
		old := b.readLval(lv, e.Pos())
		res := b.NewTemp(lv.typ, e.Pos())
		if old != nil {
			b.EmitPtrArith(res, old, e.Pos())
		}
		b.writeLval(lv, res, e.Pos())
		if old == nil {
			return Ref{}, false
		}
		return Ref{Obj: old}, true

	case *ast.Member, *ast.Index:
		lv := b.lvalue(e)
		obj := b.readLval(lv, e.Pos())
		if obj == nil {
			return Ref{}, false
		}
		return Ref{Obj: obj}, true

	case *ast.Binary:
		return b.valueBinary(e)

	case *ast.Assign:
		return b.valueAssign(e)

	case *ast.Cond:
		b.value(e.C)
		av := b.valueObj(e.A)
		bv := b.valueObj(e.B)
		if av == nil && bv == nil {
			return Ref{}, false
		}
		tmp := b.NewTemp(b.exprType(e), e.Pos())
		if av != nil {
			b.EmitCopy(tmp, Ref{Obj: av}, e.Pos())
		}
		if bv != nil {
			b.EmitCopy(tmp, Ref{Obj: bv}, e.Pos())
		}
		return Ref{Obj: tmp}, true

	case *ast.Comma:
		b.value(e.X)
		return b.value(e.Y)

	case *ast.Call:
		obj := b.lowerCall(e, nil)
		if obj == nil {
			return Ref{}, false
		}
		return Ref{Obj: obj}, true

	case *ast.Cast:
		return b.valueCast(e)

	case *ast.SizeofExpr, *ast.SizeofType:
		// sizeof does not evaluate its operand.
		return Ref{}, false
	}
	return Ref{}, false
}

// valueObj materializes the value of e as a top-level object (or nil).
func (b *Builder) valueObj(e ast.Expr) *Object {
	ref, ok := b.value(e)
	if !ok {
		return nil
	}
	if len(ref.Path) == 0 {
		return ref.Obj
	}
	tmp := b.NewTemp(b.exprType(e), e.Pos())
	b.EmitCopy(tmp, ref, e.Pos())
	return tmp
}

func (b *Builder) valueUnary(e *ast.Unary) (Ref, bool) {
	pos := e.Pos()
	switch e.Op {
	case token.AND:
		lv := b.lvalue(e.X)
		return Ref{Obj: b.addrOfLval(lv, pos)}, true

	case token.MUL:
		// Calling through a function pointer is handled in lowerCall;
		// here *p is a load.
		lv := b.lvalue(e)
		obj := b.readLval(lv, pos)
		if obj == nil {
			return Ref{}, false
		}
		return Ref{Obj: obj}, true

	case token.INC, token.DEC:
		lv := b.lvalue(e.X)
		old := b.readLval(lv, pos)
		res := b.NewTemp(lv.typ, pos)
		if old != nil {
			b.EmitPtrArith(res, old, pos)
		}
		b.writeLval(lv, res, pos)
		if old == nil {
			return Ref{}, false
		}
		return Ref{Obj: res}, true

	case token.ADD, token.SUB, token.TILDE:
		// Arithmetic on a (possibly pointer-carrying) value: smear.
		src := b.valueObj(e.X)
		if src == nil {
			return Ref{}, false
		}
		tmp := b.NewTemp(b.exprType(e), pos)
		b.EmitPtrArith(tmp, src, pos)
		return Ref{Obj: tmp}, true

	case token.NOT:
		b.value(e.X)
		return Ref{}, false
	}
	return Ref{}, false
}

func (b *Builder) valueBinary(e *ast.Binary) (Ref, bool) {
	pos := e.Pos()
	switch e.Op {
	case token.LAND, token.LOR, token.EQL, token.NEQ,
		token.LSS, token.GTR, token.LEQ, token.GEQ:
		// Comparison and logical results carry no addresses.
		b.value(e.X)
		b.value(e.Y)
		return Ref{}, false
	}
	// Arithmetic and bitwise operators: the result may encode an address
	// derived from either operand (Assumption 1).
	xo := b.valueObj(e.X)
	yo := b.valueObj(e.Y)
	if xo == nil && yo == nil {
		return Ref{}, false
	}
	tmp := b.NewTemp(b.exprType(e), pos)
	if xo != nil {
		b.EmitPtrArith(tmp, xo, pos)
	}
	if yo != nil {
		b.EmitPtrArith(tmp, yo, pos)
	}
	return Ref{Obj: tmp}, true
}

func (b *Builder) valueAssign(e *ast.Assign) (Ref, bool) {
	pos := e.Pos()
	if e.Op == token.ASSIGN {
		// Allocation hint: p = malloc(n).
		if call, ok := ast.Unparen(e.R).(*ast.Call); ok && b.allocatorCall(call) {
			lt := b.exprType(e.L).Decay()
			var hint *types.Type
			if lt.Kind == types.Ptr {
				hint = lt.Elem
			}
			obj := b.lowerCall(call, hint)
			lv := b.lvalue(e.L)
			b.writeLval(lv, obj, pos)
			if obj == nil {
				return Ref{}, false
			}
			return Ref{Obj: obj}, true
		}
		src := b.valueObj(e.R)
		lv := b.lvalue(e.L)
		b.writeLval(lv, src, pos)
		if src == nil {
			return Ref{}, false
		}
		return Ref{Obj: src}, true
	}
	// Compound assignment: read-modify-write with smearing.
	lv := b.lvalue(e.L)
	old := b.readLval(lv, pos)
	ro := b.valueObj(e.R)
	res := b.NewTemp(lv.typ, pos)
	any := false
	if old != nil {
		b.EmitPtrArith(res, old, pos)
		any = true
	}
	if ro != nil {
		b.EmitPtrArith(res, ro, pos)
		any = true
	}
	b.writeLval(lv, res, pos)
	if !any {
		return Ref{}, false
	}
	return Ref{Obj: res}, true
}

func (b *Builder) valueCast(e *ast.Cast) (Ref, bool) {
	pos := e.Pos()
	if e.T.IsVoid() {
		b.value(e.X)
		return Ref{}, false
	}
	// Allocation hint: (struct S *)malloc(n).
	if call, ok := ast.Unparen(e.X).(*ast.Call); ok && b.allocatorCall(call) {
		var hint *types.Type
		if e.T.Kind == types.Ptr {
			hint = e.T.Elem
		}
		obj := b.lowerCall(call, hint)
		if obj == nil {
			return Ref{}, false
		}
		tmp := b.NewTemp(e.T, pos)
		b.emit(&Stmt{Op: OpCopy, Dst: tmp, Src: obj, Cast: e.T, Pos: pos})
		return Ref{Obj: tmp}, true
	}
	src, ok := b.value(e.X)
	if !ok {
		return Ref{}, false
	}
	// Materialize into a temp of the cast type so that downstream uses
	// see the casted declared type; this is where type mismatches enter
	// the system, exactly like the paper's (τ) annotations.
	tmp := b.NewTemp(e.T, pos)
	b.emit(&Stmt{Op: OpCopy, Dst: tmp, Src: src.Obj, Path: src.Path, Cast: e.T, Pos: pos})
	return Ref{Obj: tmp}, true
}

// allocatorCall reports whether the call is a direct call to an allocator.
func (b *Builder) allocatorCall(call *ast.Call) bool {
	if b.cfg.Summarizer == nil {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	sym := b.sema.Info.Uses[id]
	if sym == nil || sym.Kind != sema.SymFunc || sym.Def != nil {
		return false
	}
	return b.cfg.Summarizer.IsAllocator(sym.Name)
}

// lowerCall lowers a call expression and returns the result object (nil for
// void or pointer-free results). allocHint types the heap block for
// allocator calls.
func (b *Builder) lowerCall(e *ast.Call, allocHint *types.Type) *Object {
	pos := e.Pos()

	// Strip *s around a function-pointer callee: (*fp)() ≡ fp().
	fun := ast.Unparen(e.Fun)
	for {
		u, ok := fun.(*ast.Unary)
		if !ok || u.Op != token.MUL {
			break
		}
		t := b.exprType(u.X).Decay()
		if t.Kind == types.Ptr && (t.Elem.Kind == types.Func ||
			t.Elem.Kind == types.Ptr && t.Elem.Elem.Kind == types.Func) {
			fun = ast.Unparen(u.X)
			continue
		}
		break
	}

	// Direct allocator call: allocation-site pseudo-variable.
	if b.allocatorCall(e) {
		var args []*Object
		for _, a := range e.Args {
			args = append(args, b.valueObj(a))
		}
		id := ast.Unparen(e.Fun).(*ast.Ident)
		name := id.Name
		heap := b.NewHeap(fmt.Sprintf("%s@%s", name, pos), allocHint, pos)
		res := b.NewTemp(b.exprType(e), pos)
		b.EmitAddrOf(res, Ref{Obj: heap}, pos)
		b.cfg.Summarizer.EmitAllocEffects(b, name, res, args, pos)
		return res
	}

	// Callee pointer object.
	var calleePtr *Object
	if id, ok := fun.(*ast.Ident); ok {
		if sym := b.sema.Info.Uses[id]; sym != nil && sym.Kind == sema.SymFunc {
			fnObj := b.objectOf(sym)
			calleePtr = b.NewTemp(types.PointerTo(sym.Type), pos)
			b.EmitAddrOf(calleePtr, Ref{Obj: fnObj}, pos)
		}
	}
	if calleePtr == nil {
		calleePtr = b.valueObj(fun)
		if calleePtr == nil {
			calleePtr = b.NewTemp(b.exprType(fun), pos)
		}
	}

	// Arguments.
	var args []*Object
	for _, a := range e.Args {
		args = append(args, b.valueObj(a))
	}

	// Result.
	var res *Object
	if rt := b.exprType(e); !rt.IsVoid() {
		res = b.NewTemp(rt, pos)
	}
	b.emit(&Stmt{Op: OpCall, Dst: res, Ptr: calleePtr, Args: args, Pos: pos})
	return res
}

// --- statements ---

func (b *Builder) lowerStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		b.value(s.X)
	case *ast.Block:
		for _, st := range s.List {
			b.lowerStmt(st)
		}
	case *ast.DeclStmt:
		for _, d := range s.Decls {
			vd, ok := d.(*ast.VarDecl)
			if !ok || vd.Init == nil {
				continue
			}
			sym := b.sema.Info.Defs[d]
			if sym == nil {
				continue
			}
			// Allocation hint for T *p = malloc(n).
			if call, ok2 := vd.Init.(ast.Expr); ok2 {
				if c, ok3 := ast.Unparen(call).(*ast.Call); ok3 && b.allocatorCall(c) {
					var hint *types.Type
					if sym.Type.Kind == types.Ptr {
						hint = sym.Type.Elem
					}
					obj := b.lowerCall(c, hint)
					if obj != nil {
						b.EmitCopy(b.objectOf(sym), Ref{Obj: obj}, vd.Pos())
					}
					continue
				}
			}
			b.lowerInit(Ref{Obj: b.objectOf(sym)}, sym.Type, vd.Init)
		}
	case *ast.Empty:
	case *ast.If:
		b.value(s.Cond)
		b.lowerStmt(s.Then)
		b.lowerStmt(s.Else)
	case *ast.While:
		b.value(s.Cond)
		b.lowerStmt(s.Body)
	case *ast.DoWhile:
		b.lowerStmt(s.Body)
		b.value(s.Cond)
	case *ast.For:
		if s.InitDecl != nil {
			b.lowerStmt(s.InitDecl)
		} else {
			b.value(s.Init)
		}
		b.value(s.Cond)
		b.value(s.Post)
		b.lowerStmt(s.Body)
	case *ast.Switch:
		b.value(s.Tag)
		b.lowerStmt(s.Body)
	case *ast.Case:
		for _, st := range s.Body {
			b.lowerStmt(st)
		}
	case *ast.Return:
		if s.Expr != nil {
			src, ok := b.value(s.Expr)
			if ok && b.fn != nil && b.fn.Retval != nil {
				b.EmitCopy(b.fn.Retval, src, s.Pos())
			}
		}
	case *ast.Label:
		b.lowerStmt(s.Stmt)
	case *ast.Break, *ast.Continue, *ast.Goto:
	}
}

// lowerInit lowers an initializer into assignments against dst (a direct
// reference with the declared type t).
func (b *Builder) lowerInit(dst Ref, t *types.Type, in ast.Init) {
	switch in := in.(type) {
	case *ast.InitList:
		switch {
		case t.IsRecord() && !t.Record.Union:
			fields := t.Record.Fields
			for i, item := range in.Items {
				if i >= len(fields) {
					break
				}
				b.lowerInit(Ref{Obj: dst.Obj, Path: dst.Path.Extend(fields[i].Name)}, fields[i].Type, item)
			}
		case t.IsRecord(): // union: first member
			if len(t.Record.Fields) > 0 && len(in.Items) > 0 {
				f := t.Record.Fields[0]
				b.lowerInit(Ref{Obj: dst.Obj, Path: dst.Path.Extend(f.Name)}, f.Type, in.Items[0])
			}
		case t.Kind == types.Array:
			// One representative element: all items land on it.
			for _, item := range in.Items {
				b.lowerInit(dst, t.Elem, item)
			}
		default:
			if len(in.Items) > 0 {
				b.lowerInit(dst, t, in.Items[0])
			}
		}
	case ast.Expr:
		src := b.valueObj(in)
		if src == nil {
			return
		}
		lv := lval{direct: true, ref: dst, typ: t}
		b.writeLval(lv, src, in.Pos())
	}
}
