package ir

import (
	"strings"
	"testing"

	"repro/internal/cc/types"
)

func TestPathString(t *testing.T) {
	if got := (Path{}).String(); got != "" {
		t.Errorf("empty path = %q", got)
	}
	if got := (Path{"a", "b"}).String(); got != ".a.b" {
		t.Errorf("path = %q", got)
	}
}

func TestPathExtendFreshBacking(t *testing.T) {
	base := Path{"a"}
	p1 := base.Extend("b")
	p2 := base.Extend("c")
	if p1[1] != "b" || p2[1] != "c" {
		t.Fatalf("extend aliasing: %v %v", p1, p2)
	}
	if len(base) != 1 {
		t.Error("base mutated")
	}
}

func TestObjKindStrings(t *testing.T) {
	kinds := map[ObjKind]string{
		ObjVar: "var", ObjParam: "param", ObjFunc: "func", ObjHeap: "heap",
		ObjString: "string", ObjTemp: "temp", ObjRetval: "retval", ObjVarargs: "varargs",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestOpStrings(t *testing.T) {
	ops := map[Op]string{
		OpAddrOf: "addrof", OpAddrField: "addrfield", OpCopy: "copy",
		OpLoad: "load", OpStore: "store", OpPtrArith: "ptrarith",
		OpCall: "call", OpMemCopy: "memcopy",
	}
	for op, want := range ops {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

func TestStmtStrings(t *testing.T) {
	u := types.NewUniverse()
	intT := u.Basic(types.Int)
	a := &Object{ID: 1, Name: "a", Type: intT}
	b := &Object{ID: 2, Name: "b", Type: intT}
	p := &Object{ID: 3, Name: "p", Type: types.PointerTo(intT)}

	cases := []struct {
		stmt *Stmt
		want string
	}{
		{&Stmt{Op: OpAddrOf, Dst: a, Src: b, Path: Path{"f"}}, "a = &b.f"},
		{&Stmt{Op: OpAddrField, Dst: a, Ptr: p, Path: Path{"g"}}, "a = &((*p).g)"},
		{&Stmt{Op: OpCopy, Dst: a, Src: b}, "a = b"},
		{&Stmt{Op: OpCopy, Dst: a, Src: b, Cast: intT}, "a = (int)b"},
		{&Stmt{Op: OpLoad, Dst: a, Ptr: p}, "a = *p"},
		{&Stmt{Op: OpStore, Ptr: p, Src: b}, "*p = b"},
		{&Stmt{Op: OpPtrArith, Dst: a, Src: b}, "a = b ⊕ …"},
		{&Stmt{Op: OpCall, Dst: a, Ptr: p, Args: []*Object{b, nil}}, "a = (*p)(b, _)"},
		{&Stmt{Op: OpCall, Ptr: p}, "(*p)()"},
		{&Stmt{Op: OpMemCopy, Ptr: p, Src: b}, "memcopy *p ⇐ *b"},
	}
	for _, c := range cases {
		if got := c.stmt.String(); got != c.want {
			t.Errorf("Stmt.String() = %q, want %q", got, c.want)
		}
	}
}

func TestRefString(t *testing.T) {
	o := &Object{ID: 1, Name: "s"}
	if got := (Ref{Obj: o, Path: Path{"x"}}).String(); got != "s.x" {
		t.Errorf("Ref = %q", got)
	}
	if got := (Ref{Obj: o}).String(); got != "s" {
		t.Errorf("Ref = %q", got)
	}
}

func TestObjectHelpers(t *testing.T) {
	tmp := &Object{ID: 1, Name: "tmp1", Kind: ObjTemp}
	if !tmp.IsTemp() {
		t.Error("IsTemp false for temp")
	}
	v := &Object{ID: 2, Name: "v", Kind: ObjVar}
	if v.IsTemp() {
		t.Error("IsTemp true for var")
	}
	if v.String() != "v" {
		t.Errorf("Object.String() = %q", v.String())
	}
}

func TestProgramDumpContainsFunctions(t *testing.T) {
	// Dump is exercised end-to-end in build_test.go; check the per-line
	// function prefix here.
	u := types.NewUniverse()
	intT := u.Basic(types.Int)
	a := &Object{ID: 1, Name: "a", Type: intT}
	b := &Object{ID: 2, Name: "b", Type: intT}
	p := &Program{}
	p.Stmts = append(p.Stmts, &Stmt{Op: OpCopy, Dst: a, Src: b})
	dump := p.Dump()
	if !strings.Contains(dump, "<global>: a = b") {
		t.Errorf("dump = %q", dump)
	}
}
