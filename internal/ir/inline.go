package ir

import "fmt"

// InlineAllocWrappers inlines small allocation-wrapper functions at their
// direct call sites, giving each call site its own copies of the wrapper's
// heap pseudo-variables (one level of heap cloning). Plain allocation-site
// naming — what the paper uses — merges every object created through a
// wrapper like
//
//	struct node *new_node(void) { return malloc(sizeof(struct node)); }
//
// into one abstract object; cloning recovers the per-caller distinction.
// Off by default (the paper's configuration); exposed for the ablation
// benchmarks and as a library feature.
//
// A function qualifies when it has a body of at most maxStmts statements,
// allocates at least one heap object, and contains no further calls (which
// also excludes recursion). The wrapper's original body remains in place
// for any remaining indirect calls. Dereference sites inside clones become
// new static sites, like macro-expanded code.
//
// It returns the number of call sites inlined.
func InlineAllocWrappers(p *Program, maxStmts int) int {
	if maxStmts <= 0 {
		maxStmts = 24
	}

	// Identify candidate wrappers.
	candidates := make(map[*Func]bool)
	for _, fn := range p.Funcs {
		if len(fn.Stmts) == 0 || len(fn.Stmts) > maxStmts || fn.Retval == nil {
			continue
		}
		hasHeap := false
		for _, st := range fn.Stmts {
			if st.Op == OpAddrOf && st.Src != nil && st.Src.Kind == ObjHeap {
				hasHeap = true
			}
		}
		// Calls inside the wrapper are fine: cloned call statements bind
		// through the solver like any other, and because inlining is a
		// single pass over the original statement list, even recursive
		// wrappers cannot cascade.
		if hasHeap {
			candidates[fn] = true
		}
	}
	if len(candidates) == 0 {
		return 0
	}

	// Map each call-pointer temp to its statically known function: a temp
	// assigned exactly once, by an AddrOf of a function object.
	assigns := make(map[*Object]int)  // writes per temp
	funcOf := make(map[*Object]*Func) // temp -> callee
	for _, st := range p.Stmts {
		if st.Dst == nil || st.Dst.Kind != ObjTemp {
			continue
		}
		assigns[st.Dst]++
		if st.Op == OpAddrOf && st.Src != nil && st.Src.Kind == ObjFunc && st.Src.Sym != nil {
			if fn := p.FuncOf[st.Src.Sym]; fn != nil {
				funcOf[st.Dst] = fn
			}
		}
	}

	nextID := 0
	for _, o := range p.Objects {
		if o.ID > nextID {
			nextID = o.ID
		}
	}

	inlined := 0
	var out []*Stmt
	for _, st := range p.Stmts {
		if st.Op != OpCall {
			out = append(out, st)
			continue
		}
		callee := funcOf[st.Ptr]
		if callee == nil || assigns[st.Ptr] != 1 || !candidates[callee] {
			out = append(out, st)
			continue
		}
		inlined++

		// Clone the callee's local objects for this site.
		clones := make(map[*Object]*Object)
		cloneObj := func(o *Object) *Object {
			if o == nil {
				return nil
			}
			local := o.Kind == ObjTemp || o.Kind == ObjHeap ||
				o.Kind == ObjParam || o.Kind == ObjRetval || o.Kind == ObjVarargs ||
				(o.Kind == ObjVar && o.Sym != nil && !o.Sym.Global)
			if !local {
				return o
			}
			c, ok := clones[o]
			if !ok {
				nextID++
				c = &Object{
					ID:   nextID,
					Name: fmt.Sprintf("%s#%s", o.Name, st.Pos),
					Kind: o.Kind,
					Type: o.Type,
					Sym:  o.Sym,
					Pos:  st.Pos,
				}
				clones[o] = c
				p.Objects = append(p.Objects, c)
			}
			return c
		}

		// Bind arguments to the cloned parameters.
		for i, arg := range st.Args {
			if arg == nil {
				continue
			}
			if i < len(callee.Params) && callee.Params[i] != nil {
				out = append(out, &Stmt{
					Op: OpCopy, Dst: cloneObj(callee.Params[i]),
					Src: arg, Pos: st.Pos, Fn: st.Fn,
				})
			} else if callee.Varargs != nil {
				out = append(out, &Stmt{
					Op: OpCopy, Dst: cloneObj(callee.Varargs),
					Src: arg, Pos: st.Pos, Fn: st.Fn,
				})
			}
		}
		// Cloned body; dereference sites inside the clone become new
		// static sites (one per original site, shared by the statements
		// that shared it).
		siteClones := make(map[*DerefSite]*DerefSite)
		for _, bs := range callee.Stmts {
			cs := &Stmt{
				Op:   bs.Op,
				Dst:  cloneObj(bs.Dst),
				Src:  cloneObj(bs.Src),
				Ptr:  cloneObj(bs.Ptr),
				Path: bs.Path,
				Cast: bs.Cast,
				Pos:  bs.Pos,
				Fn:   st.Fn,
			}
			for _, a := range bs.Args {
				cs.Args = append(cs.Args, cloneObj(a))
			}
			if bs.Site != nil {
				ns, ok := siteClones[bs.Site]
				if !ok {
					ns = &DerefSite{
						ID:  len(p.Sites) + 1,
						Pos: bs.Site.Pos,
						Ptr: cloneObj(bs.Site.Ptr),
					}
					siteClones[bs.Site] = ns
					p.Sites = append(p.Sites, ns)
				}
				cs.Site = ns
			}
			out = append(out, cs)
		}
		// Bind the cloned return value.
		if st.Dst != nil && callee.Retval != nil {
			out = append(out, &Stmt{
				Op: OpCopy, Dst: st.Dst,
				Src: cloneObj(callee.Retval), Pos: st.Pos, Fn: st.Fn,
			})
		}
	}
	p.Stmts = out
	return inlined
}
