// Package ir defines the normalized intermediate representation the pointer
// analysis consumes: the paper's five assignment forms (§2), extended with
// the statements needed to make the analysis whole-program:
//
//  1. s = (τ)&t.β       OpAddrOf    (also heap allocation, array decay,
//     function addresses, string literals)
//  2. s = (τ)&((*p).α)  OpAddrField
//  3. s = (τ)t.β        OpCopy      (scalar or block copy)
//  4. s = (τ)*q         OpLoad
//  5. *p = (τp)t        OpStore
//  6. s = q ⊕ e         OpPtrArith  (Assumption 1 smearing)
//  7. r = (*f)(a...)    OpCall      (context-insensitive binding)
//  8. memcpy(*d, *s)    OpMemCopy   (library block copies of unknown size)
//
// All left-hand sides other than stores are top-level objects (temporaries
// introduced during normalization), exactly as in the paper and SUIF.
package ir

import (
	"fmt"
	"strings"

	"repro/internal/cc/sema"
	"repro/internal/cc/token"
	"repro/internal/cc/types"
)

// ObjKind classifies IR objects.
type ObjKind int

// Object kinds.
const (
	ObjVar     ObjKind = iota // source variable (global, local or static)
	ObjParam                  // function parameter
	ObjFunc                   // function
	ObjHeap                   // allocation-site pseudo-variable
	ObjString                 // string literal
	ObjTemp                   // normalization temporary
	ObjRetval                 // function return value
	ObjVarargs                // variadic argument bucket
)

func (k ObjKind) String() string {
	switch k {
	case ObjVar:
		return "var"
	case ObjParam:
		return "param"
	case ObjFunc:
		return "func"
	case ObjHeap:
		return "heap"
	case ObjString:
		return "string"
	case ObjTemp:
		return "temp"
	case ObjRetval:
		return "retval"
	case ObjVarargs:
		return "varargs"
	}
	return "obj"
}

// Object is an abstract memory object: a variable, parameter, function,
// allocation site, string literal, return-value slot or temporary.
type Object struct {
	ID   int
	Name string
	Kind ObjKind
	Type *types.Type
	Sym  *sema.Symbol // nil for temps/heap/strings
	Pos  token.Pos
}

func (o *Object) String() string { return o.Name }

// IsTemp reports whether the object is a normalization temporary.
func (o *Object) IsTemp() bool { return o.Kind == ObjTemp }

// Path is a sequence of field names (the paper's α, β, γ).
type Path []string

func (p Path) String() string {
	if len(p) == 0 {
		return ""
	}
	return "." + strings.Join(p, ".")
}

// Extend returns p with more components appended (fresh backing array).
func (p Path) Extend(more ...string) Path {
	out := make(Path, 0, len(p)+len(more))
	out = append(out, p...)
	out = append(out, more...)
	return out
}

// Ref is an object plus a field path: the paper's t.β.
type Ref struct {
	Obj  *Object
	Path Path
}

func (r Ref) String() string { return r.Obj.Name + r.Path.String() }

// Op is the statement operation.
type Op int

// Statement operations.
const (
	OpAddrOf Op = iota
	OpAddrField
	OpCopy
	OpLoad
	OpStore
	OpPtrArith
	OpCall
	OpMemCopy
)

func (op Op) String() string {
	switch op {
	case OpAddrOf:
		return "addrof"
	case OpAddrField:
		return "addrfield"
	case OpCopy:
		return "copy"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpPtrArith:
		return "ptrarith"
	case OpCall:
		return "call"
	case OpMemCopy:
		return "memcopy"
	}
	return "op?"
}

// DerefSite identifies one static occurrence of a pointer dereference in the
// source (a *p, p->f or p[i] expression). The paper's Figure 4 averages the
// points-to set sizes over these.
type DerefSite struct {
	ID  int
	Pos token.Pos
	Ptr *Object // the object holding the dereferenced pointer value
}

// Stmt is one normalized statement. Field use by op:
//
//	OpAddrOf:    Dst = &Src.Path
//	OpAddrField: Dst = &((*Ptr).Path)
//	OpCopy:      Dst = Src.Path
//	OpLoad:      Dst = *Ptr
//	OpStore:     *Ptr = Src
//	OpPtrArith:  Dst = Src ⊕ …
//	OpCall:      Dst = (*Ptr)(Args…)   (Dst may be nil)
//	OpMemCopy:   copy *Src into *Ptr (whole objects)
type Stmt struct {
	Op   Op
	Dst  *Object
	Src  *Object
	Ptr  *Object
	Path Path
	Args []*Object

	// Cast records an explicit source-level cast on the right-hand side
	// (diagnostic only; the analysis works from object types).
	Cast *types.Type

	Pos  token.Pos
	Site *DerefSite // set on OpLoad, OpStore, OpAddrField, OpMemCopy
	Fn   *Func      // enclosing function; nil for global initializers
}

func (s *Stmt) String() string {
	cast := ""
	if s.Cast != nil {
		cast = "(" + s.Cast.String() + ")"
	}
	switch s.Op {
	case OpAddrOf:
		return fmt.Sprintf("%s = %s&%s%s", s.Dst, cast, s.Src, s.Path)
	case OpAddrField:
		return fmt.Sprintf("%s = %s&((*%s)%s)", s.Dst, cast, s.Ptr, s.Path)
	case OpCopy:
		return fmt.Sprintf("%s = %s%s%s", s.Dst, cast, s.Src, s.Path)
	case OpLoad:
		return fmt.Sprintf("%s = %s*%s", s.Dst, cast, s.Ptr)
	case OpStore:
		return fmt.Sprintf("*%s = %s%s", s.Ptr, cast, s.Src)
	case OpPtrArith:
		return fmt.Sprintf("%s = %s ⊕ …", s.Dst, s.Src)
	case OpCall:
		var args []string
		for _, a := range s.Args {
			if a == nil {
				args = append(args, "_")
			} else {
				args = append(args, a.Name)
			}
		}
		lhs := ""
		if s.Dst != nil {
			lhs = s.Dst.Name + " = "
		}
		return fmt.Sprintf("%s(*%s)(%s)", lhs, s.Ptr, strings.Join(args, ", "))
	case OpMemCopy:
		return fmt.Sprintf("memcopy *%s ⇐ *%s", s.Ptr, s.Src)
	}
	return "?"
}

// Func groups the IR artifacts of one function.
type Func struct {
	Sym     *sema.Symbol
	Obj     *Object
	Params  []*Object
	Retval  *Object // nil for void result
	Varargs *Object // nil unless variadic
	Stmts   []*Stmt // statements lowered from this function's body
}

func (f *Func) String() string { return f.Sym.Unique }

// Program is the whole-program IR.
type Program struct {
	Sema    *sema.Program
	Objects []*Object
	Funcs   []*Func
	Stmts   []*Stmt // every statement, including global initializers
	Sites   []*DerefSite

	// FuncOf maps a function symbol to its IR.
	FuncOf map[*sema.Symbol]*Func
	// ObjectOf maps source symbols to their IR objects.
	ObjectOf map[*sema.Symbol]*Object

	// Warnings lists non-fatal soundness notes (e.g. calls to unknown
	// external functions that were treated as no-ops).
	Warnings []string
}

// NumStmts returns the number of normalized statements (the paper's
// Figure 3, column 4).
func (p *Program) NumStmts() int { return len(p.Stmts) }

// Dump renders the whole program IR for debugging and golden tests.
func (p *Program) Dump() string {
	var sb strings.Builder
	for _, s := range p.Stmts {
		if s.Fn != nil {
			fmt.Fprintf(&sb, "%s: %s\n", s.Fn.Sym.Name, s)
		} else {
			fmt.Fprintf(&sb, "<global>: %s\n", s)
		}
	}
	return sb.String()
}
