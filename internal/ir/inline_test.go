package ir_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/ir"
)

const wrapperSrc = `
#include <stdlib.h>
struct buffer { char *data; int len; };

struct buffer *mk(int n) {
	struct buffer *b = (struct buffer *)malloc(sizeof(struct buffer));
	b->len = n;
	return b;
}

struct buffer *input, *output;

void setup(void) {
	input = mk(64);
	output = mk(128);
}
`

func TestInlineAllocWrappersSeparatesSites(t *testing.T) {
	r, err := frontend.Load([]frontend.Source{{Name: "w.c", Text: wrapperSrc}}, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Without cloning: both callers share mk's single allocation site.
	base := core.Analyze(r.IR, core.NewCIS())
	in := objNamed(t, r.IR, "input")
	outv := objNamed(t, r.IR, "output")
	if !sameTargets(base, in, outv) {
		t.Fatal("precondition: plain naming should merge the two buffers")
	}

	// With cloning: each call site gets its own heap object.
	r2, err := frontend.Load([]frontend.Source{{Name: "w.c", Text: wrapperSrc}}, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := ir.InlineAllocWrappers(r2.IR, 0)
	if n != 2 {
		t.Fatalf("inlined %d call sites, want 2", n)
	}
	cloned := core.Analyze(r2.IR, core.NewCIS())
	in2 := objNamed(t, r2.IR, "input")
	out2 := objNamed(t, r2.IR, "output")
	if sameTargets(cloned, in2, out2) {
		t.Errorf("cloning did not separate the buffers: input=%v output=%v",
			cloned.PointsTo(in2, nil).Sorted(), cloned.PointsTo(out2, nil).Sorted())
	}
	if cloned.PointsTo(in2, nil).Len() == 0 {
		t.Error("input lost its facts after inlining")
	}
}

func TestInlineSkipsNonWrappers(t *testing.T) {
	src := `
#include <stdlib.h>
int helper(int x) { return x + 1; }           /* no heap */
int *chain(void) { return (int *)malloc(4); }
int *wrap(void) { return chain(); }           /* calls: not inlined */
int *p;
void f(void) { p = wrap(); helper(1); }`
	r, err := frontend.Load([]frontend.Source{{Name: "n.c", Text: src}}, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := len(r.IR.Stmts)
	n := ir.InlineAllocWrappers(r.IR, 0)
	// Only chain() qualifies, and it has no direct calls in f — wrap
	// calls it, and wrap itself is disqualified (contains a call).
	if n != 1 {
		t.Errorf("inlined %d, want 1 (the chain() call inside wrap)", n)
	}
	if len(r.IR.Stmts) < before {
		t.Error("statements vanished")
	}
	// Soundness: p must still reach the heap.
	res := core.Analyze(r.IR, core.NewCIS())
	p := objNamed(t, r.IR, "p")
	found := false
	for c := range res.PointsTo(p, nil) {
		if strings.Contains(c.Obj.Name, "malloc@") {
			found = true
		}
	}
	if !found {
		t.Errorf("p lost the heap after inlining: %v", res.PointsTo(p, nil).Sorted())
	}
}

func TestInlineCreatesFreshSites(t *testing.T) {
	r, err := frontend.Load([]frontend.Source{{Name: "w.c", Text: wrapperSrc}}, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := len(r.IR.Sites)
	ir.InlineAllocWrappers(r.IR, 0)
	// mk contains one deref (b->len store); two clones add two sites.
	if len(r.IR.Sites) != before+2 {
		t.Errorf("sites %d -> %d, want +2", before, len(r.IR.Sites))
	}
}

func TestInlineIdempotentWhenNothingQualifies(t *testing.T) {
	src := "int x, *p;\nvoid f(void) { p = &x; }"
	r, err := frontend.Load([]frontend.Source{{Name: "s.c", Text: src}}, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := ir.InlineAllocWrappers(r.IR, 0); n != 0 {
		t.Errorf("inlined %d on a program without wrappers", n)
	}
}

func objNamed(t *testing.T, p *ir.Program, name string) *ir.Object {
	t.Helper()
	for _, o := range p.Objects {
		if o.Sym != nil && o.Sym.Name == name {
			return o
		}
	}
	t.Fatalf("object %q not found", name)
	return nil
}

func sameTargets(res *core.Result, a, b *ir.Object) bool {
	sa := res.PointsTo(a, nil)
	sb := res.PointsTo(b, nil)
	if sa.Len() != sb.Len() {
		return false
	}
	for c := range sa {
		if !sb.Has(c) {
			return false
		}
	}
	return sa.Len() > 0
}
