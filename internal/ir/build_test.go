package ir_test

import (
	"strings"
	"testing"

	"repro/internal/frontend"
	"repro/internal/ir"
)

func load(t *testing.T, src string) *ir.Program {
	t.Helper()
	r, err := frontend.Load([]frontend.Source{{Name: "t.c", Text: src}}, frontend.Options{})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return r.IR
}

// countOps tallies statement operations.
func countOps(p *ir.Program) map[ir.Op]int {
	m := make(map[ir.Op]int)
	for _, s := range p.Stmts {
		m[s.Op]++
	}
	return m
}

// stmtsOf returns the statements of the named function.
func stmtsOf(t *testing.T, p *ir.Program, name string) []*ir.Stmt {
	t.Helper()
	for _, f := range p.Funcs {
		if f.Sym.Name == name {
			return f.Stmts
		}
	}
	t.Fatalf("function %q not found", name)
	return nil
}

func TestPaperExampleNormalization(t *testing.T) {
	// The Introduction's example: field-sensitive facts must be derivable.
	src := `
struct S { int *s1; int *s2; } s;
int x, y, *p;
void f(void) {
	s.s1 = &x;
	s.s2 = &y;
	p = s.s1;
}`
	p := load(t, src)
	dump := p.Dump()
	// s.s1 = &x must lower to tmp = &s.s1; tmp2 = &x; *tmp = tmp2.
	if !strings.Contains(dump, "&s.s1") {
		t.Errorf("missing &s.s1 in:\n%s", dump)
	}
	ops := countOps(p)
	if ops[ir.OpStore] < 2 {
		t.Errorf("expected at least 2 stores, got %d\n%s", ops[ir.OpStore], dump)
	}
	if ops[ir.OpCopy] < 1 {
		t.Errorf("expected a copy for p = s.s1\n%s", dump)
	}
}

func TestAddrOfForms(t *testing.T) {
	src := `
struct T { int v; } t, *q;
int *p;
void f(void) {
	p = &t.v;
	q = &t;
	p = &q->v;
	p = &(*q).v;
}`
	p := load(t, src)
	ops := countOps(p)
	if ops[ir.OpAddrOf] < 2 {
		t.Errorf("addrof count = %d", ops[ir.OpAddrOf])
	}
	if ops[ir.OpAddrField] != 2 {
		t.Errorf("addrfield count = %d, want 2 (for &q->v and &(*q).v)\n%s", ops[ir.OpAddrField], p.Dump())
	}
}

func TestLoadStoreForms(t *testing.T) {
	src := `
int *p, **pp, x;
void f(void) {
	*pp = p;
	p = *pp;
	**pp = x;
}`
	p := load(t, src)
	ops := countOps(p)
	if ops[ir.OpLoad] < 2 {
		t.Errorf("load count = %d\n%s", ops[ir.OpLoad], p.Dump())
	}
	if ops[ir.OpStore] < 2 {
		t.Errorf("store count = %d\n%s", ops[ir.OpStore], p.Dump())
	}
}

func TestMallocAllocationSite(t *testing.T) {
	src := `
#include <stdlib.h>
struct S { int *f; };
void g(void) {
	struct S *a = (struct S *)malloc(sizeof(struct S));
	struct S *b = (struct S *)malloc(sizeof(struct S));
	char *c;
	c = malloc(10);
}`
	p := load(t, src)
	var heaps []*ir.Object
	for _, o := range p.Objects {
		if o.Kind == ir.ObjHeap && strings.HasPrefix(o.Name, "malloc@") {
			heaps = append(heaps, o)
		}
	}
	if len(heaps) != 3 {
		t.Fatalf("got %d malloc sites, want 3", len(heaps))
	}
	if heaps[0] == heaps[1] {
		t.Error("allocation sites must be distinct")
	}
	// Type hints: the first two sites are typed struct S, the third char.
	if heaps[0].Type == nil || !heaps[0].Type.IsRecord() {
		t.Errorf("heap 0 type = %v, want struct S", heaps[0].Type)
	}
	if heaps[2].Type == nil || heaps[2].Type.Kind.String() != "char" {
		t.Errorf("heap 2 type = %v, want char", heaps[2].Type)
	}
}

func TestCallLowering(t *testing.T) {
	src := `
int *id(int *p) { return p; }
int x;
void f(void) {
	int *r = id(&x);
}`
	p := load(t, src)
	ops := countOps(p)
	if ops[ir.OpCall] != 1 {
		t.Errorf("call count = %d", ops[ir.OpCall])
	}
	// id must have a retval object receiving p.
	for _, f := range p.Funcs {
		if f.Sym.Name == "id" {
			if f.Retval == nil {
				t.Fatal("id has no retval")
			}
			if len(f.Params) != 1 {
				t.Fatalf("id params = %d", len(f.Params))
			}
			return
		}
	}
	t.Fatal("id not found")
}

func TestFunctionPointerCall(t *testing.T) {
	src := `
int h(int v) { return v; }
int (*fp)(int);
void f(void) {
	fp = h;
	fp(1);
	(*fp)(2);
}`
	p := load(t, src)
	ops := countOps(p)
	// Both calls must be OpCall through fp; h's address taken once.
	if ops[ir.OpCall] != 2 {
		t.Errorf("call count = %d, want 2\n%s", ops[ir.OpCall], p.Dump())
	}
	stmts := stmtsOf(t, p, "f")
	addrOfH := 0
	for _, s := range stmts {
		if s.Op == ir.OpAddrOf && s.Src != nil && s.Src.Kind == ir.ObjFunc {
			addrOfH++
		}
	}
	if addrOfH != 1 {
		t.Errorf("function address taken %d times, want 1 (fp = h)", addrOfH)
	}
}

func TestStructCopyForms(t *testing.T) {
	src := `
struct A { int *a1; } a, b, *pa;
void f(void) {
	b = a;
	*pa = a;
	b = *pa;
}`
	p := load(t, src)
	ops := countOps(p)
	if ops[ir.OpCopy] < 1 || ops[ir.OpStore] < 1 || ops[ir.OpLoad] < 1 {
		t.Errorf("ops = %v\n%s", ops, p.Dump())
	}
}

func TestPtrArith(t *testing.T) {
	src := `
int a[10], *p, *q;
void f(void) {
	p = a + 2;
	q = p + 1;
	q = q - 1;
	q += 3;
	q++;
}`
	p := load(t, src)
	ops := countOps(p)
	if ops[ir.OpPtrArith] < 5 {
		t.Errorf("ptrarith count = %d, want >= 5\n%s", ops[ir.OpPtrArith], p.Dump())
	}
}

func TestDerefSites(t *testing.T) {
	src := `
struct S { int *f; } *p;
int **q, *r, x;
void f(void) {
	r = p->f;    /* one deref of p */
	r = *q;      /* one deref of q */
	*q = &x;     /* one deref of q */
	x = q[1] != 0;  /* one deref of q */
}`
	p := load(t, src)
	if len(p.Sites) != 4 {
		var b strings.Builder
		for _, s := range p.Sites {
			b.WriteString(s.Pos.String() + " of " + s.Ptr.Name + "\n")
		}
		t.Errorf("deref sites = %d, want 4:\n%s%s", len(p.Sites), b.String(), p.Dump())
	}
}

func TestArraySingleElement(t *testing.T) {
	src := `
struct E { int *v; };
struct E table[8];
int x;
void f(void) {
	table[3].v = &x;
	table[5].v = &x;
}`
	p := load(t, src)
	// Both stores go to the same object (the array), same field path.
	addr := 0
	for _, s := range p.Stmts {
		if s.Op == ir.OpAddrOf && s.Src != nil && s.Src.Name == "table" {
			if s.Path.String() != ".v" {
				t.Errorf("path = %q, want .v", s.Path.String())
			}
			addr++
		}
	}
	if addr != 2 {
		t.Errorf("addrof table.v count = %d, want 2\n%s", addr, p.Dump())
	}
}

func TestGlobalInitializers(t *testing.T) {
	src := `
int x;
int *gp = &x;
struct P { int *a; int *b; } s = { &x, 0 };
int *arr[2] = { &x, &x };
`
	p := load(t, src)
	ops := countOps(p)
	// gp = &x: copy via addrof; s.a = &x: store via temp; arr: two stores.
	if ops[ir.OpAddrOf] < 4 {
		t.Errorf("addrof = %d\n%s", ops[ir.OpAddrOf], p.Dump())
	}
}

func TestStringLiteralObjects(t *testing.T) {
	src := `char *s1 = "hello"; char *s2 = "world";
void f(void) { s1 = "again"; }`
	p := load(t, src)
	n := 0
	for _, o := range p.Objects {
		if o.Kind == ir.ObjString {
			n++
		}
	}
	if n != 3 {
		t.Errorf("string objects = %d, want 3", n)
	}
}

func TestLibSummaries(t *testing.T) {
	src := `
#include <string.h>
#include <stdlib.h>
char buf[64];
void f(char *src) {
	char *d = strcpy(buf, src);
	char *dup = strdup(src);
	char *sub = strchr(src, 'a');
}`
	p := load(t, src)
	if len(p.Warnings) != 0 {
		t.Errorf("warnings: %v", p.Warnings)
	}
	// strcpy synthetic body must contain a MemCopy.
	found := false
	for _, f := range p.Funcs {
		if f.Sym.Name == "strcpy" {
			for _, s := range f.Stmts {
				if s.Op == ir.OpMemCopy {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("strcpy summary lacks MemCopy")
	}
	// strdup must be an allocation site.
	heap := false
	for _, o := range p.Objects {
		if o.Kind == ir.ObjHeap && strings.HasPrefix(o.Name, "strdup@") {
			heap = true
		}
	}
	if !heap {
		t.Error("strdup call did not create a heap object")
	}
}

func TestUnknownExternalWarns(t *testing.T) {
	src := "void mystery(int *p);\nint x;\nvoid f(void) { mystery(&x); }"
	p := load(t, src)
	found := false
	for _, w := range p.Warnings {
		if strings.Contains(w, "mystery") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected warning for mystery, got %v", p.Warnings)
	}
}

func TestReturnLowering(t *testing.T) {
	src := `
int g;
int *f(void) { return &g; }`
	p := load(t, src)
	stmts := stmtsOf(t, p, "f")
	hasRetCopy := false
	for _, s := range stmts {
		if s.Op == ir.OpCopy && s.Dst != nil && s.Dst.Kind == ir.ObjRetval {
			hasRetCopy = true
		}
	}
	if !hasRetCopy {
		t.Errorf("no retval copy in:\n%s", p.Dump())
	}
}

func TestCondExprUnionsBothArms(t *testing.T) {
	src := `
int x, y, *p;
void f(int c) { p = c ? &x : &y; }`
	p := load(t, src)
	stmts := stmtsOf(t, p, "f")
	copies := 0
	for _, s := range stmts {
		if s.Op == ir.OpCopy {
			copies++
		}
	}
	if copies < 3 { // tmp=&x→cond, tmp=&y→cond, p=cond
		t.Errorf("copies = %d\n%s", copies, p.Dump())
	}
}

func TestCastCreatesTypedTemp(t *testing.T) {
	src := `
struct B { int *b1; } *pb;
void *v;
void f(void) { pb = (struct B *)v; }`
	p := load(t, src)
	stmts := stmtsOf(t, p, "f")
	found := false
	for _, s := range stmts {
		if s.Op == ir.OpCopy && s.Cast != nil {
			if s.Dst.Type.Kind.String() != "ptr" {
				t.Errorf("cast temp type = %s", s.Dst.Type)
			}
			found = true
		}
	}
	if !found {
		t.Errorf("no cast copy in:\n%s", p.Dump())
	}
}

func TestVarargsBucket(t *testing.T) {
	src := `
#include <stdio.h>
void f(void) { printf("%d", 1); }`
	p := load(t, src)
	for _, f := range p.Funcs {
		if f.Sym.Name == "printf" {
			if f.Varargs == nil {
				t.Error("printf has no varargs bucket")
			}
			return
		}
	}
	t.Fatal("printf not found")
}

func TestStoreOfLiteralKeepsSite(t *testing.T) {
	src := "int *p;\nvoid f(void) { *p = 5; }"
	prog := load(t, src)
	if len(prog.Sites) != 1 {
		t.Errorf("sites = %d, want 1 (store of literal still dereferences)", len(prog.Sites))
	}
	// The store statement must exist with a nil Src.
	found := false
	for _, s := range prog.Stmts {
		if s.Op == ir.OpStore && s.Src == nil {
			found = true
		}
	}
	if !found {
		t.Error("store with nil source not emitted")
	}
}

func TestSizeofDoesNotEvaluate(t *testing.T) {
	src := "int *p;\nvoid f(void) { unsigned n = sizeof(*p); }"
	prog := load(t, src)
	if len(prog.Sites) != 0 {
		t.Errorf("sizeof(*p) must not create a deref site, got %d", len(prog.Sites))
	}
}
