package libsum_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/ir"
	"repro/internal/libsum"
)

func load(t *testing.T, src string) *frontend.Result {
	t.Helper()
	r, err := frontend.Load([]frontend.Source{{Name: "t.c", Text: src}}, frontend.Options{})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return r
}

func obj(t *testing.T, p *ir.Program, name string) *ir.Object {
	t.Helper()
	for _, o := range p.Objects {
		if o.Name == name || (o.Sym != nil && o.Sym.Name == name) {
			return o
		}
	}
	t.Fatalf("object %q not found", name)
	return nil
}

func pts(t *testing.T, r *frontend.Result, name string) map[string]bool {
	t.Helper()
	res := core.Analyze(r.IR, core.NewCIS())
	out := make(map[string]bool)
	for c := range res.PointsTo(obj(t, r.IR, name), nil) {
		out[c.Obj.Name] = true
	}
	return out
}

func hasPrefix(set map[string]bool, prefix string) bool {
	for k := range set {
		if strings.HasPrefix(k, prefix) {
			return true
		}
	}
	return false
}

func TestIsAllocator(t *testing.T) {
	s := libsum.New()
	for _, name := range []string{"malloc", "calloc", "realloc", "strdup", "fopen"} {
		if !s.IsAllocator(name) {
			t.Errorf("%s not an allocator", name)
		}
	}
	for _, name := range []string{"free", "strcpy", "printf"} {
		if s.IsAllocator(name) {
			t.Errorf("%s wrongly an allocator", name)
		}
	}
}

func TestStrcpyReturnsDest(t *testing.T) {
	src := `#include <string.h>
char buf[8];
char *r;
void f(char *s) { r = strcpy(buf, s); }`
	got := pts(t, load(t, src), "r")
	if !got["buf"] {
		t.Errorf("pts(r) = %v, want buf", got)
	}
}

func TestStrchrReturnsIntoArg(t *testing.T) {
	src := `#include <string.h>
char data[8];
char *r;
void f(void) { r = strchr(data, 'x'); }`
	got := pts(t, load(t, src), "r")
	if !got["data"] {
		t.Errorf("pts(r) = %v, want data", got)
	}
}

func TestStrtokStatic(t *testing.T) {
	// strtok(NULL, d) returns pointers into the previously saved string.
	src := `#include <string.h>
char line[64];
char *first, *second;
void f(void) {
	first = strtok(line, " ");
	second = strtok(0, " ");
}`
	r := load(t, src)
	got := pts(t, r, "second")
	if !got["line"] {
		t.Errorf("pts(second) = %v, want line (through strtok's saved state)", got)
	}
}

func TestGetenvStatic(t *testing.T) {
	src := `#include <stdlib.h>
char *home;
void f(void) { home = getenv("HOME"); }`
	got := pts(t, load(t, src), "home")
	if !hasPrefix(got, "getenv@static") {
		t.Errorf("pts(home) = %v, want getenv's static buffer", got)
	}
}

func TestReallocAliasesOldBlock(t *testing.T) {
	src := `#include <stdlib.h>
int *p, *q;
void f(void) {
	p = (int *)malloc(8);
	q = (int *)realloc(p, 16);
}`
	got := pts(t, load(t, src), "q")
	if !hasPrefix(got, "malloc@") {
		t.Errorf("pts(q) = %v, want the original malloc block (grown in place)", got)
	}
	if !hasPrefix(got, "realloc@") {
		t.Errorf("pts(q) = %v, want the fresh realloc block", got)
	}
}

func TestStrdupCopiesContents(t *testing.T) {
	src := `#include <string.h>
struct box { char tag[4]; int *p; } src1;
int x;
char *d;
void f(void) {
	src1.p = &x;
	d = strdup((char *)&src1);
}`
	r := load(t, src)
	// The duplicated block must carry the pointer to x: reading it back
	// through a cast recovers x.
	src2 := src + `
int *r2;
void g(void) { r2 = ((struct box *)d)->p; }`
	r = load(t, src2)
	got := pts(t, r, "r2")
	if !got["x"] {
		t.Errorf("pts(r2) = %v, want x via strdup'd contents", got)
	}
}

func TestBsearchReturnsIntoBase(t *testing.T) {
	src := `#include <stdlib.h>
int table[8];
int cmp(const void *a, const void *b) { return 0; }
int *r;
void f(void) { r = (int *)bsearch(&table[0], table, 8, sizeof(int), cmp); }`
	got := pts(t, load(t, src), "r")
	if !got["table"] {
		t.Errorf("pts(r) = %v, want table", got)
	}
}

func TestAtexitInvokesHandler(t *testing.T) {
	src := `#include <stdlib.h>
int called;
void handler(void) { called = 1; }
void f(void) { atexit(handler); }`
	r := load(t, src)
	// handler must be reachable in the call graph: atexit's synthetic
	// body contains an indirect call through its parameter.
	res := core.Analyze(r.IR, core.NewCIS())
	found := false
	for _, f := range r.IR.Funcs {
		if f.Sym.Name != "atexit" {
			continue
		}
		for _, st := range f.Stmts {
			if st.Op == ir.OpCall {
				for c := range res.PointsTo(st.Ptr, nil) {
					if c.Obj.Name == "handler" {
						found = true
					}
				}
			}
		}
	}
	if !found {
		t.Error("atexit does not bind its handler")
	}
}

func TestStrtolWritesEndPointer(t *testing.T) {
	src := `#include <stdlib.h>
char digits[8];
char *endp;
void f(void) { strtol(digits, &endp, 10); }`
	got := pts(t, load(t, src), "endp")
	if !got["digits"] {
		t.Errorf("pts(endp) = %v, want digits", got)
	}
}

func TestFreopenAliasesStream(t *testing.T) {
	src := `#include <stdio.h>
FILE *f2;
void f(void) { f2 = freopen("x", "r", stdin); }`
	r := load(t, src)
	got := pts(t, r, "f2")
	// Result aliases both a fresh FILE block and the passed stream's
	// targets (stdin is extern with no facts here, so at least the heap).
	if !hasPrefix(got, "freopen@") {
		t.Errorf("pts(f2) = %v, want a freopen block", got)
	}
}

func TestEmitBodyUnknown(t *testing.T) {
	src := "void mystery(void);\nvoid f(void) { mystery(); }"
	r := load(t, src)
	found := false
	for _, w := range r.IR.Warnings {
		if strings.Contains(w, "mystery") {
			found = true
		}
	}
	if !found {
		t.Errorf("unknown external not warned: %v", r.IR.Warnings)
	}
}

func TestNoEffectFunctionsHaveEmptyBodies(t *testing.T) {
	src := `#include <ctype.h>
int f(int c) { return isalpha(c) + tolower(c); }`
	r := load(t, src)
	for _, fn := range r.IR.Funcs {
		if fn.Sym.Name == "isalpha" || fn.Sym.Name == "tolower" {
			if len(fn.Stmts) != 0 {
				t.Errorf("%s has %d stmts, want 0", fn.Sym.Name, len(fn.Stmts))
			}
		}
	}
}
