// Package libsum provides pointer-effect summaries for the C library
// functions declared by the built-in headers, playing the role of the
// Wilson–Lam library summaries used in the paper's experiments.
//
// Each summary is expressed as a synthetic IR function body built through
// the ir.Builder Emit API, so library effects flow through exactly the same
// inference rules as user code, and indirect calls that reach a library
// function bind like any other call. Allocator functions are additionally
// special-cased by the IR builder so each direct call site gets its own
// heap pseudo-variable (the paper's malloc_i).
package libsum

import (
	"repro/internal/cc/token"
	"repro/internal/cc/types"
	"repro/internal/ir"
)

// Summaries implements ir.Summarizer for the standard C library.
type Summaries struct{}

var _ ir.Summarizer = Summaries{}

// New returns the standard library summarizer.
func New() Summaries { return Summaries{} }

// allocators return fresh heap blocks; direct calls get per-site
// pseudo-variables.
var allocators = map[string]bool{
	"malloc":  true,
	"calloc":  true,
	"valloc":  true,
	"realloc": true,
	"strdup":  true,
	"fopen":   true,
	"freopen": true,
	"tmpfile": true,
}

// IsAllocator implements ir.Summarizer.
func (Summaries) IsAllocator(name string) bool { return allocators[name] }

// EmitAllocEffects implements ir.Summarizer.
func (Summaries) EmitAllocEffects(b *ir.Builder, name string, res *ir.Object, args []*ir.Object, pos token.Pos) {
	switch name {
	case "realloc":
		// The result may be the old block grown in place, and the new
		// block holds a copy of the old block's contents.
		if len(args) > 0 && args[0] != nil {
			b.EmitCopy(res, ir.Ref{Obj: args[0]}, pos)
			b.EmitMemCopy(res, args[0], pos)
		}
	case "strdup":
		// The fresh block holds a copy of the argument's contents.
		if len(args) > 0 && args[0] != nil {
			b.EmitMemCopy(res, args[0], pos)
		}
	case "freopen":
		if len(args) > 2 && args[2] != nil {
			b.EmitCopy(res, ir.Ref{Obj: args[2]}, pos)
		}
	}
}

// effect describes one library function's pointer behaviour.
type effect struct {
	retArg        int    // result aliases this argument (-1: none)
	retStatic     bool   // result points to an internal static buffer
	memcpy        [2]int // MemCopy dst,src argument indices ({-1,-1}: none)
	keepArg       int    // argument saved in an internal static (strtok) (-1: none)
	callArg       int    // argument invoked as a function pointer (-1: none)
	callWith      []int  // argument indices passed to the invoked pointer
	retFromStatic bool   // result read back from the internal static
}

func noEffect() effect {
	return effect{retArg: -1, memcpy: [2]int{-1, -1}, keepArg: -1, callArg: -1}
}

func retArg(i int) effect {
	e := noEffect()
	e.retArg = i
	return e
}

func copyEffect(dst, src int, ret int) effect {
	e := noEffect()
	e.memcpy = [2]int{dst, src}
	e.retArg = ret
	return e
}

func retStatic() effect {
	e := noEffect()
	e.retStatic = true
	return e
}

// summaries maps function names to their effects. Functions with no pointer
// effects (pure, or writing only non-address data) map to noEffect.
var summaries = map[string]effect{
	// <string.h>
	"memcpy":   copyEffect(0, 1, 0),
	"memmove":  copyEffect(0, 1, 0),
	"memset":   retArg(0),
	"memcmp":   noEffect(),
	"memchr":   retArg(0),
	"strcpy":   copyEffect(0, 1, 0),
	"strncpy":  copyEffect(0, 1, 0),
	"strcat":   copyEffect(0, 1, 0),
	"strncat":  copyEffect(0, 1, 0),
	"strcmp":   noEffect(),
	"strncmp":  noEffect(),
	"strchr":   retArg(0),
	"strrchr":  retArg(0),
	"strstr":   retArg(0),
	"strpbrk":  retArg(0),
	"strspn":   noEffect(),
	"strcspn":  noEffect(),
	"strlen":   noEffect(),
	"strerror": retStatic(),

	// <stdio.h>
	"fclose":  noEffect(),
	"fflush":  noEffect(),
	"fprintf": noEffect(),
	"printf":  noEffect(),
	"sprintf": retArg(0),
	"fscanf":  noEffect(),
	"scanf":   noEffect(),
	"sscanf":  noEffect(),
	"fgetc":   noEffect(),
	"getc":    noEffect(),
	"getchar": noEffect(),
	"fgets":   retArg(0),
	"gets":    retArg(0),
	"fputc":   noEffect(),
	"putc":    noEffect(),
	"putchar": noEffect(),
	"fputs":   noEffect(),
	"puts":    noEffect(),
	"ungetc":  noEffect(),
	"fread":   noEffect(),
	"fwrite":  noEffect(),
	"fseek":   noEffect(),
	"ftell":   noEffect(),
	"rewind":  noEffect(),
	"perror":  noEffect(),

	// <stdlib.h>
	"free":   noEffect(),
	"exit":   noEffect(),
	"abort":  noEffect(),
	"atoi":   noEffect(),
	"atol":   noEffect(),
	"atof":   noEffect(),
	"rand":   noEffect(),
	"srand":  noEffect(),
	"abs":    noEffect(),
	"labs":   noEffect(),
	"getenv": retStatic(),
	"system": noEffect(),

	// <ctype.h>
	"isalpha": noEffect(), "isdigit": noEffect(), "isalnum": noEffect(),
	"isspace": noEffect(), "isupper": noEffect(), "islower": noEffect(),
	"ispunct": noEffect(), "isprint": noEffect(), "iscntrl": noEffect(),
	"isxdigit": noEffect(), "toupper": noEffect(), "tolower": noEffect(),

	// <math.h>
	"sqrt": noEffect(), "pow": noEffect(), "fabs": noEffect(),
	"floor": noEffect(), "ceil": noEffect(), "sin": noEffect(),
	"cos": noEffect(), "exp": noEffect(), "log": noEffect(),
	"fmod": noEffect(),

	// <assert.h>, <setjmp.h>, <errno.h>
	"__assert_fail": noEffect(),
	"setjmp":        noEffect(),
	"longjmp":       noEffect(),

	// <time.h>
	"time":      noEffect(),
	"clock":     noEffect(),
	"difftime":  noEffect(),
	"mktime":    noEffect(),
	"localtime": retStatic(),
	"gmtime":    retStatic(),
	"ctime":     retStatic(),
	"asctime":   retStatic(),
}

func init() {
	// strtol/strtoul/strtod write a pointer *into the input string*
	// through their end-pointer argument. Model: *arg1 = arg0.
	e := noEffect()
	e.keepArg = -2 // special marker handled in EmitBody
	summaries["strtol"] = e
	summaries["strtoul"] = e
	summaries["strtod"] = e

	// strtok saves its argument in an internal static and returns
	// pointers into it.
	t := retArg(0)
	t.keepArg = 0
	t.retFromStatic = true
	summaries["strtok"] = t

	// qsort(base, n, size, cmp) invokes cmp with pointers into base.
	q := noEffect()
	q.callArg = 3
	q.callWith = []int{0, 0}
	summaries["qsort"] = q

	// bsearch(key, base, n, size, cmp) invokes cmp with (key, base) and
	// returns a pointer into base.
	bs := retArg(1)
	bs.callArg = 4
	bs.callWith = []int{0, 1}
	summaries["bsearch"] = bs

	// atexit(fn) eventually invokes fn.
	ax := noEffect()
	ax.callArg = 0
	summaries["atexit"] = ax
}

// EmitBody implements ir.Summarizer: it builds a synthetic body for fn.
func (Summaries) EmitBody(b *ir.Builder, fn *ir.Func) bool {
	name := fn.Sym.Name
	eff, ok := summaries[name]
	if !ok {
		return false
	}
	pos := fn.Sym.Pos
	param := func(i int) *ir.Object {
		if i >= 0 && i < len(fn.Params) {
			return fn.Params[i]
		}
		return nil
	}

	// strtol family: *arg1 = arg0.
	if eff.keepArg == -2 {
		if p0, p1 := param(0), param(1); p0 != nil && p1 != nil {
			b.EmitStore(p1, p0, pos)
		}
		return true
	}

	if eff.memcpy[0] >= 0 {
		if d, s := param(eff.memcpy[0]), param(eff.memcpy[1]); d != nil && s != nil {
			b.EmitMemCopy(d, s, pos)
		}
	}
	if eff.retArg >= 0 && fn.Retval != nil {
		if a := param(eff.retArg); a != nil {
			b.EmitCopy(fn.Retval, ir.Ref{Obj: a}, pos)
		}
	}
	if eff.retStatic && fn.Retval != nil {
		buf := b.NewStatic(name+"@static", types.ArrayOf(b.Universe().Basic(types.Char), 64), pos)
		b.EmitAddrOf(fn.Retval, ir.Ref{Obj: buf}, pos)
	}
	if eff.keepArg >= 0 {
		saved := b.NewStatic(name+"@saved", types.PointerTo(b.Universe().Basic(types.Char)), pos)
		if a := param(eff.keepArg); a != nil {
			b.EmitCopy(saved, ir.Ref{Obj: a}, pos)
		}
		if eff.retFromStatic && fn.Retval != nil {
			b.EmitCopy(fn.Retval, ir.Ref{Obj: saved}, pos)
		}
	}
	if eff.callArg >= 0 {
		if fp := param(eff.callArg); fp != nil {
			var args []*ir.Object
			for _, i := range eff.callWith {
				args = append(args, param(i))
			}
			b.EmitCall(nil, fp, args, pos)
		}
	}
	return true
}
