// Package fault defines the structured error taxonomy of the analysis
// pipeline. Every error that escapes a facade entry point is (or wraps) a
// *fault.Error carrying a Kind — the machine-readable class — plus the
// pipeline stage it arose in and, when known, a source position.
//
// The kinds support errors.Is against the exported sentinels:
//
//	errors.Is(err, fault.ErrParse)    // preprocessor, scanner or parser
//	errors.Is(err, fault.ErrSema)     // semantic analysis / type checking
//	errors.Is(err, fault.ErrLimit)    // a resource limit stopped the solver
//	errors.Is(err, fault.ErrCanceled) // context cancellation or timeout
//	errors.Is(err, fault.ErrInternal) // a recovered panic (a bug, not input)
//
// and errors.As(err, *(**fault.Error)) recovers the full structure. A
// KindCanceled fault wraps the context's error, so errors.Is(err,
// context.Canceled) and errors.Is(err, context.DeadlineExceeded) also work
// through it.
package fault

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// Kind classifies an analysis error.
type Kind int

// The error classes, from "the input is wrong" to "the analyzer is wrong".
const (
	// KindInternal is a recovered panic or violated invariant: a bug in
	// the analyzer, never the input's fault.
	KindInternal Kind = iota
	// KindParse covers preprocessing, scanning and parsing failures.
	KindParse
	// KindSema covers semantic-analysis and type-checking failures.
	KindSema
	// KindLimit marks an analysis stopped by a resource limit
	// (max steps, max facts, max cells).
	KindLimit
	// KindCanceled marks an analysis stopped by context cancellation or
	// deadline expiry.
	KindCanceled
	// KindUnknownName marks a query for a variable or function name the
	// analyzed program does not define — distinguishable from a pointer
	// that is known but points nowhere.
	KindUnknownName
	// KindOverloaded marks work refused by admission control: the solve
	// queue is full and taking the request would only deepen the overload.
	// The request was not attempted; retrying after backing off is correct.
	KindOverloaded
	// KindDeadline marks work shed because the caller's remaining deadline
	// budget is smaller than the expected cost of doing it — starting the
	// solve would burn capacity on an answer nobody will be around to read.
	KindDeadline
)

func (k Kind) String() string {
	switch k {
	case KindParse:
		return "parse"
	case KindSema:
		return "sema"
	case KindLimit:
		return "limit"
	case KindCanceled:
		return "canceled"
	case KindUnknownName:
		return "unknown-name"
	case KindOverloaded:
		return "overloaded"
	case KindDeadline:
		return "would-miss-deadline"
	case KindInternal:
		return "internal"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// sentinel is a comparable anchor for errors.Is: a *Error matches the
// sentinel of its kind via (*Error).Is.
type sentinel struct{ kind Kind }

func (s *sentinel) Error() string { return s.kind.String() + " error" }

// Sentinels for errors.Is. They carry no detail themselves; match one, then
// errors.As for the *Error when the stage, position or stack is needed.
var (
	ErrParse       error = &sentinel{KindParse}
	ErrSema        error = &sentinel{KindSema}
	ErrLimit       error = &sentinel{KindLimit}
	ErrCanceled    error = &sentinel{KindCanceled}
	ErrInternal    error = &sentinel{KindInternal}
	ErrUnknownName error = &sentinel{KindUnknownName}
	ErrOverloaded  error = &sentinel{KindOverloaded}
	ErrDeadline    error = &sentinel{KindDeadline}
)

// Error is a classified pipeline error.
type Error struct {
	Kind  Kind
	Stage string // pipeline stage: "preprocess", "parse", "sema", "ir", "solve", "batch", ...
	Pos   string // source position or file name when known, "" otherwise
	Msg   string // human-readable detail when there is no wrapped cause
	Err   error  // wrapped cause, nil when Msg stands alone
	Stack []byte // goroutine stack, captured for KindInternal faults
}

func (e *Error) Error() string {
	s := e.Kind.String()
	if e.Stage != "" {
		s += " [" + e.Stage + "]"
	}
	if e.Pos != "" {
		s += " " + e.Pos
	}
	switch {
	case e.Err != nil:
		return s + ": " + e.Err.Error()
	case e.Msg != "":
		return s + ": " + e.Msg
	}
	return s
}

// Unwrap exposes the cause to errors.Is/As chains.
func (e *Error) Unwrap() error { return e.Err }

// Is matches the sentinel of the error's kind.
func (e *Error) Is(target error) bool {
	s, ok := target.(*sentinel)
	return ok && s.kind == e.Kind
}

// New builds a classified error wrapping cause (which may be nil if msg
// carries the detail).
func New(kind Kind, stage, pos string, cause error) *Error {
	return &Error{Kind: kind, Stage: stage, Pos: pos, Err: cause}
}

// Newf builds a classified error from a format string.
func Newf(kind Kind, stage, pos, format string, args ...any) *Error {
	return &Error{Kind: kind, Stage: stage, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// FromPanic converts a recovered panic value into a KindInternal fault with
// the recovery-point stack attached. Passing an existing error (e.g. a
// *Error re-panicked across a boundary) preserves it as the cause.
func FromPanic(stage string, v any) *Error {
	e := &Error{Kind: KindInternal, Stage: stage, Stack: debug.Stack()}
	if err, ok := v.(error); ok {
		e.Err = err
	} else {
		e.Msg = fmt.Sprint(v)
	}
	return e
}

// Recover is the deferred panic boundary of a facade entry point:
//
//	func Analyze(...) (r *Report, err error) {
//		defer fault.Recover("solve", &err)
//		...
//	}
//
// A panic in the function body is converted into a KindInternal fault stored
// in *errp; classified faults already flowing through *errp are untouched.
func Recover(stage string, errp *error) {
	if v := recover(); v != nil {
		*errp = FromPanic(stage, v)
	}
}

// KindOf classifies an arbitrary error: the kind of the outermost *Error in
// its chain, or KindInternal with ok=false when the error is unclassified.
func KindOf(err error) (Kind, bool) {
	var e *Error
	if errors.As(err, &e) {
		return e.Kind, true
	}
	return KindInternal, false
}
