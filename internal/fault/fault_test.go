package fault

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSentinelMatching(t *testing.T) {
	cases := []struct {
		kind Kind
		want error
	}{
		{KindParse, ErrParse},
		{KindSema, ErrSema},
		{KindLimit, ErrLimit},
		{KindCanceled, ErrCanceled},
		{KindInternal, ErrInternal},
		{KindUnknownName, ErrUnknownName},
		{KindOverloaded, ErrOverloaded},
		{KindDeadline, ErrDeadline},
	}
	for _, c := range cases {
		err := New(c.kind, "stage", "f.c:1:1", errors.New("boom"))
		if !errors.Is(err, c.want) {
			t.Errorf("kind %v does not match its sentinel", c.kind)
		}
		for _, other := range cases {
			if other.want != c.want && errors.Is(err, other.want) {
				t.Errorf("kind %v wrongly matches %v", c.kind, other.want)
			}
		}
	}
}

func TestErrorsAsRecoversStructure(t *testing.T) {
	inner := New(KindSema, "sema", "a.c:3:7", errors.New("incompatible types"))
	wrapped := fmt.Errorf("loading unit: %w", inner)
	var e *Error
	if !errors.As(wrapped, &e) {
		t.Fatal("errors.As failed through a wrap")
	}
	if e.Stage != "sema" || e.Pos != "a.c:3:7" || e.Kind != KindSema {
		t.Errorf("structure lost: %+v", e)
	}
	if !errors.Is(wrapped, ErrSema) {
		t.Error("errors.Is failed through a wrap")
	}
}

func TestCanceledWrapsContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := New(KindCanceled, "solve", "", ctx.Err())
	if !errors.Is(err, ErrCanceled) {
		t.Error("not ErrCanceled")
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("does not unwrap to context.Canceled")
	}
}

func TestFromPanicCapturesStack(t *testing.T) {
	var err error
	func() {
		defer Recover("solve", &err)
		panic("index out of range [3] with length 2")
	}()
	var e *Error
	if !errors.As(err, &e) {
		t.Fatalf("no fault.Error: %v", err)
	}
	if e.Kind != KindInternal || len(e.Stack) == 0 {
		t.Errorf("kind=%v stack=%d bytes", e.Kind, len(e.Stack))
	}
	if !strings.Contains(e.Error(), "index out of range") {
		t.Errorf("message lost: %q", e.Error())
	}
}

func TestFromPanicPreservesErrorCause(t *testing.T) {
	cause := errors.New("original")
	e := FromPanic("parse", cause)
	if !errors.Is(e, cause) {
		t.Error("error panic value not preserved as cause")
	}
}

func TestRecoverLeavesCleanReturns(t *testing.T) {
	var err error
	func() {
		defer Recover("solve", &err)
	}()
	if err != nil {
		t.Errorf("Recover touched a clean return: %v", err)
	}
}

func TestKindOf(t *testing.T) {
	if k, ok := KindOf(Newf(KindLimit, "solve", "", "max-steps")); !ok || k != KindLimit {
		t.Errorf("KindOf = %v, %v", k, ok)
	}
	if _, ok := KindOf(errors.New("plain")); ok {
		t.Error("plain error classified")
	}
}

// TestKindStrings pins the wire codes: these strings are the HTTP error
// taxonomy clients and the ptrload error report branch on.
func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindInternal:    "internal",
		KindParse:       "parse",
		KindSema:        "sema",
		KindLimit:       "limit",
		KindCanceled:    "canceled",
		KindUnknownName: "unknown-name",
		KindOverloaded:  "overloaded",
		KindDeadline:    "would-miss-deadline",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestErrorString(t *testing.T) {
	e := New(KindParse, "parse", "bad.c:2:5", errors.New("unexpected token"))
	got := e.Error()
	for _, want := range []string{"parse", "bad.c:2:5", "unexpected token"} {
		if !strings.Contains(got, want) {
			t.Errorf("Error() = %q, missing %q", got, want)
		}
	}
}
