package castaudit_test

import (
	"testing"

	"repro/internal/castaudit"
	"repro/internal/corpus"
	"repro/internal/corpus/corpustest"
	"repro/internal/frontend"
)

func audit(t *testing.T, src string) []castaudit.Finding {
	t.Helper()
	r, err := frontend.Load([]frontend.Source{{Name: "t.c", Text: src}}, frontend.Options{})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return castaudit.Audit(r.Sema)
}

func classesOf(fs []castaudit.Finding) map[castaudit.Class]int {
	return castaudit.Summary(fs)
}

func TestBenignCast(t *testing.T) {
	src := `char *p; void f(const char *s) { p = (char *)s; }`
	cs := classesOf(audit(t, src))
	if cs[castaudit.Benign] != 1 {
		t.Errorf("classes = %v, want one benign", cs)
	}
}

func TestGenericVoidCast(t *testing.T) {
	src := `
struct S { int x; } s;
void *v;
void f(void) { v = (void *)&s; }
struct S *g(void) { return (struct S *)v; }`
	cs := classesOf(audit(t, src))
	if cs[castaudit.Generic] != 2 {
		t.Errorf("classes = %v, want two generic", cs)
	}
}

func TestPrefixSafeCast(t *testing.T) {
	src := `
struct base { int kind; long ts; };
struct derived { int kind; long ts; char *payload; } d;
struct base *up(void) { return (struct base *)&d; }`
	fs := audit(t, src)
	cs := classesOf(fs)
	if cs[castaudit.PrefixSafe] != 1 {
		t.Errorf("findings = %v", fs)
	}
}

func TestPartialOverlapCast(t *testing.T) {
	src := `
struct a { int k; long v; int *p; } x;
struct b { int k; long v; char tag; } *q;
void f(void) { q = (struct b *)&x; }`
	fs := audit(t, src)
	cs := classesOf(fs)
	if cs[castaudit.PartialOverlap] != 1 {
		t.Errorf("findings = %v", fs)
	}
}

func TestFirstFieldOnlyCast(t *testing.T) {
	src := `
struct wrap { int *inner; int count; } w;
int **f(void) { return (int **)&w; }`
	fs := audit(t, src)
	cs := classesOf(fs)
	if cs[castaudit.FirstFieldOnly] != 1 {
		t.Errorf("findings = %v", fs)
	}
}

func TestUnrelatedCast(t *testing.T) {
	src := `
struct a { char *s; } x;
struct b { long n; double d; } *q;
void f(void) { q = (struct b *)&x; }`
	fs := audit(t, src)
	cs := classesOf(fs)
	if cs[castaudit.Unrelated] != 1 {
		t.Errorf("findings = %v", fs)
	}
}

func TestIntLaunderCast(t *testing.T) {
	src := `
int x, *p;
long stash;
void f(void) {
	stash = (long)&x;
	p = (int *)stash;
}`
	fs := audit(t, src)
	cs := classesOf(fs)
	if cs[castaudit.IntLaunder] != 2 {
		t.Errorf("findings = %v", fs)
	}
}

func TestArithmeticCastsIgnored(t *testing.T) {
	src := `double d; int f(void) { d = (double)3; return (int)d; }`
	fs := audit(t, src)
	if len(fs) != 0 {
		t.Errorf("arithmetic casts reported: %v", fs)
	}
}

func TestFindingsSortedBySeverity(t *testing.T) {
	src := `
struct a { char *s; } x;
struct b { long n; } *q;
char *c;
void f(const char *s) {
	q = (struct b *)&x;     /* unrelated */
	c = (char *)s;          /* benign */
}`
	fs := audit(t, src)
	if len(fs) != 2 {
		t.Fatalf("findings = %v", fs)
	}
	if fs[0].Class != castaudit.Unrelated || fs[1].Class != castaudit.Benign {
		t.Errorf("not sorted by severity: %v", fs)
	}
}

func TestAuditCorpusGroups(t *testing.T) {
	// Sanity over the corpus: the casting group has non-benign struct
	// casts; the clean group has no unrelated/partial struct casts.
	for _, e := range corpus.Programs {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			src := corpustest.MustSource(e.Name)
			r, err := frontend.Load(src, frontend.Options{})
			if err != nil {
				t.Fatal(err)
			}
			cs := castaudit.Summary(castaudit.Audit(r.Sema))
			suspicious := cs[castaudit.PartialOverlap] + cs[castaudit.Unrelated] +
				cs[castaudit.FirstFieldOnly] + cs[castaudit.PrefixSafe]
			if !e.CastGroup && suspicious > 0 {
				t.Errorf("clean program has %d structural casts: %v", suspicious, cs)
			}
		})
	}
}

func TestFindingString(t *testing.T) {
	fs := audit(t, `struct a { char *s; } x; struct b { long n; } *q; void f(void) { q = (struct b *)&x; }`)
	if len(fs) != 1 {
		t.Fatal("want one finding")
	}
	s := fs[0].String()
	if s == "" || fs[0].Pos.Line == 0 {
		t.Errorf("finding = %q pos %v", s, fs[0].Pos)
	}
}
