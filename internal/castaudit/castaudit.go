// Package castaudit classifies every pointer/structure cast in a program
// using the paper's taxonomy: which casts are harmless, which are protected
// by the ISO common-initial-sequence guarantee (what the CIS instance
// exploits), which rely on the first-field rule (what normalize exploits),
// and which have no portable structure at all (what forces the analyses to
// smear). It turns the paper's analysis-internal distinctions into a
// reviewable report for programmers.
package castaudit

import (
	"fmt"
	"sort"

	"repro/internal/cc/ast"
	"repro/internal/cc/sema"
	"repro/internal/cc/token"
	"repro/internal/cc/types"
)

// Class is the safety classification of one cast.
type Class int

// Cast classifications, from most to least benign.
const (
	// Benign: identical or qualifier-only difference.
	Benign Class = iota
	// Generic: a conversion to or from void*/char* — resolved at the
	// eventual dereference, idiomatic C.
	Generic
	// PrefixSafe: pointee records where one's fields are a complete
	// initial sequence of the other's (the "inheritance" idiom); all
	// header accesses are covered by ISO's CIS guarantee.
	PrefixSafe
	// PartialOverlap: pointee records share a non-empty common initial
	// sequence but diverge after it; accesses past the shared prefix
	// are implementation-defined (the analyses smear them).
	PartialOverlap
	// FirstFieldOnly: the target type matches (only) the source's
	// innermost first field, or vice versa — safe per the offset-zero
	// rule but nothing beyond the first field is guaranteed.
	FirstFieldOnly
	// Unrelated: record types with no common initial sequence; every
	// field access through the cast pointer is unportable.
	Unrelated
	// IntLaunder: a pointer travels through an integer type.
	IntLaunder
)

func (c Class) String() string {
	switch c {
	case Benign:
		return "benign"
	case Generic:
		return "generic"
	case PrefixSafe:
		return "prefix-safe"
	case PartialOverlap:
		return "partial-overlap"
	case FirstFieldOnly:
		return "first-field-only"
	case Unrelated:
		return "unrelated"
	case IntLaunder:
		return "int-launder"
	}
	return "?"
}

// Finding is one classified cast.
type Finding struct {
	Pos    token.Pos
	From   string // source expression type
	To     string // cast target type
	Class  Class
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] (%s) applied to %s%s", f.Pos, f.Class, f.To, f.From, f.Detail)
}

// Audit classifies every explicit cast in the program.
func Audit(prog *sema.Program) []Finding {
	var out []Finding
	for _, file := range prog.Files {
		ast.Walk(file, func(n ast.Node) bool {
			c, ok := n.(*ast.Cast)
			if !ok {
				return true
			}
			from := prog.Info.Types[c.X]
			if from == nil {
				return true
			}
			f := classify(from.Decay(), c.T)
			if f == nil {
				return true
			}
			f.Pos = c.Pos()
			out = append(out, *f)
			return true
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Class > out[j].Class })
	return out
}

// classify decides the class of a (source type, target type) cast pair,
// returning nil for casts that carry no pointer significance at all
// (e.g. int-to-double).
func classify(from, to *types.Type) *Finding {
	f := &Finding{From: from.String(), To: to.String()}

	fromPtr, toPtr := from.Kind == types.Ptr, to.Kind == types.Ptr
	switch {
	case !fromPtr && !toPtr:
		return nil // arithmetic conversion; no pointer content
	case fromPtr && !toPtr:
		if to.IsInteger() {
			f.Class = IntLaunder
			f.Detail = " (pointer stored in an integer)"
			return f
		}
		f.Class = Unrelated
		return f
	case !fromPtr && toPtr:
		if from.IsInteger() {
			f.Class = IntLaunder
			f.Detail = " (pointer recovered from an integer)"
			return f
		}
		f.Class = Unrelated
		return f
	}

	fp, tp := from.Elem, to.Elem
	if types.CompatibleLax(fp, tp) {
		f.Class = Benign
		return f
	}
	if fp.IsVoid() || tp.IsVoid() || isCharType(fp) || isCharType(tp) {
		f.Class = Generic
		return f
	}
	if fp.Kind == types.Struct && tp.Kind == types.Struct &&
		fp.Record.Complete && tp.Record.Complete {
		pairs := types.CommonInitialSequence(fp.Record, tp.Record)
		short := len(fp.Record.Fields)
		if len(tp.Record.Fields) < short {
			short = len(tp.Record.Fields)
		}
		switch {
		case len(pairs) == short:
			f.Class = PrefixSafe
			f.Detail = fmt.Sprintf(" (shared header of %d fields)", len(pairs))
		case len(pairs) > 0:
			f.Class = PartialOverlap
			f.Detail = fmt.Sprintf(" (common initial sequence ends after %d fields)", len(pairs))
		case firstFieldMatches(fp, tp) || firstFieldMatches(tp, fp):
			f.Class = FirstFieldOnly
		default:
			f.Class = Unrelated
		}
		return f
	}
	// Record vs scalar pointee (or enum/union mixes): the first-field
	// rule may still apply.
	if firstFieldMatches(fp, tp) || firstFieldMatches(tp, fp) {
		f.Class = FirstFieldOnly
		return f
	}
	f.Class = Unrelated
	return f
}

// firstFieldMatches reports whether descending through rec's innermost
// first fields reaches a type lax-compatible with t (the offset-zero rule).
func firstFieldMatches(rec, t *types.Type) bool {
	cur := rec
	for depth := 0; depth < 32; depth++ {
		if cur == nil {
			return false
		}
		for cur.Kind == types.Array {
			cur = cur.Elem
		}
		if types.CompatibleLax(cur, t) {
			return true
		}
		if cur.Kind != types.Struct || !cur.Record.Complete || len(cur.Record.Fields) == 0 {
			return false
		}
		cur = cur.Record.Fields[0].Type
	}
	return false
}

func isCharType(t *types.Type) bool {
	switch t.Kind {
	case types.Char, types.SChar, types.UChar:
		return true
	}
	return false
}

// Summary tallies findings per class.
func Summary(findings []Finding) map[Class]int {
	out := make(map[Class]int)
	for _, f := range findings {
		out[f.Class]++
	}
	return out
}
