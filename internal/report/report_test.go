package report_test

import (
	"strings"
	"testing"

	"repro/internal/corpus/corpustest"
	"repro/internal/frontend"
	"repro/internal/metrics"
	"repro/internal/report"
)

// measureTwo runs a small two-program set (one per group) once.
func measureTwo(t *testing.T) []*metrics.Program {
	t.Helper()
	var progs []*metrics.Program
	for _, name := range []string{"ul", "li"} {
		src := corpustest.MustSource(name)
		p, err := metrics.Measure(name, src, frontend.Options{}, metrics.Options{})
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}
	return progs
}

func TestFig3Rendering(t *testing.T) {
	var sb strings.Builder
	report.Fig3(&sb, measureTwo(t))
	out := sb.String()
	for _, want := range []string{"Figure 3", "ul", "li", "programs below cast structures"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig3 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig4OnlyCastGroup(t *testing.T) {
	var sb strings.Builder
	report.Fig4(&sb, measureTwo(t))
	out := sb.String()
	if !strings.Contains(out, "li") {
		t.Errorf("Fig4 missing li:\n%s", out)
	}
	// ul (no casting) is excluded from Figure 4, as in the paper.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "ul ") {
			t.Errorf("Fig4 must not list the non-casting program ul:\n%s", out)
		}
	}
}

func TestFig5AndFig6Rendering(t *testing.T) {
	progs := measureTwo(t)
	var sb strings.Builder
	report.Fig5(&sb, progs)
	if !strings.Contains(sb.String(), "absolute Offsets times") {
		t.Errorf("Fig5 missing absolute times:\n%s", sb.String())
	}
	sb.Reset()
	report.Fig6(&sb, progs)
	out := sb.String()
	for _, want := range []string{"Figure 6", "absolute Offsets edge counts", "bars"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6 missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryRendering(t *testing.T) {
	var sb strings.Builder
	report.Summary(&sb, measureTwo(t))
	out := sb.String()
	for _, want := range []string{"field sensitivity", "portability"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
