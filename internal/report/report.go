// Package report renders the paper's tables and figures (Figure 3–6) from
// measured data as aligned text tables, plus ASCII bar charts for the
// ratio figures.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/metrics"
)

// shortLabel maps strategy names to the column labels used in the paper.
var shortLabel = map[string]string{
	"collapse-always":    "Collapse",
	"collapse-on-cast":   "CoC",
	"common-initial-seq": "CIS",
	"offsets":            "Offsets",
}

// Fig3 renders Figure 3: program sizes, normalized assignment counts, and
// the lookup/resolve instrumentation percentages for the two portable
// casting-aware instances.
func Fig3(w io.Writer, progs []*metrics.Program) {
	fmt.Fprintln(w, "Figure 3: benchmark programs and lookup/resolve call statistics")
	fmt.Fprintln(w, "(percent of calls involving structs, and percent of those with a type mismatch)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %7s %7s | %9s %9s | %9s %9s\n",
		"program", "LOC", "stmts", "lk-str%", "rs-str%", "lk-mis%", "rs-mis%")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 76))
	group := false
	for _, p := range progs {
		if p.HasStructCast && !group {
			fmt.Fprintf(w, "%s  (programs below cast structures)\n", strings.Repeat("-", 52))
			group = true
		}
		fmt.Fprintf(w, "%-12s %7d %7d | %8.1f%% %8.1f%% | %8.1f%% %8.1f%%\n",
			p.Name, p.LOC, p.NumStmts,
			p.PctLookupStructs("common-initial-seq"),
			p.PctResolveStructs("common-initial-seq"),
			p.PctLookupMismatch("common-initial-seq"),
			p.PctResolveMismatch("common-initial-seq"))
	}
	fmt.Fprintln(w)
}

// Fig4 renders Figure 4: average points-to set size of a dereferenced
// pointer for each casting program under each instance.
func Fig4(w io.Writer, progs []*metrics.Program) {
	fmt.Fprintln(w, "Figure 4: average points-to set size of a dereferenced pointer")
	fmt.Fprintln(w, "(Collapse Always facts expanded per-field for comparability)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s", "program")
	for _, s := range metrics.StrategyNames {
		fmt.Fprintf(w, " %9s", shortLabel[s])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 12+4*10))
	for _, p := range progs {
		if !p.HasStructCast {
			continue
		}
		fmt.Fprintf(w, "%-12s", p.Name)
		for _, s := range metrics.StrategyNames {
			fmt.Fprintf(w, " %9.2f", p.Runs[s].AvgDerefSize)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// Fig5 renders Figure 5: analysis-time ratios normalized to Offsets, with
// the absolute Offsets time shown under each program as the paper does.
func Fig5(w io.Writer, progs []*metrics.Program) {
	fmt.Fprintln(w, "Figure 5: analysis-time ratios (normalized to the Offsets instance)")
	fmt.Fprintln(w)
	ratioFigure(w, progs, func(p *metrics.Program, s string) float64 {
		return p.TimeRatio(s)
	})
	fmt.Fprintln(w, "absolute Offsets times:")
	for _, p := range progs {
		fmt.Fprintf(w, "  %-12s %v\n", p.Name, p.Runs["offsets"].Duration)
	}
	fmt.Fprintln(w)
}

// Fig6 renders Figure 6: total points-to edges normalized to Offsets.
func Fig6(w io.Writer, progs []*metrics.Program) {
	fmt.Fprintln(w, "Figure 6: total points-to edges (normalized to the Offsets instance)")
	fmt.Fprintln(w)
	ratioFigure(w, progs, func(p *metrics.Program, s string) float64 {
		return p.EdgeRatio(s)
	})
	fmt.Fprintln(w, "absolute Offsets edge counts:")
	for _, p := range progs {
		fmt.Fprintf(w, "  %-12s %d\n", p.Name, p.Runs["offsets"].TotalFacts)
	}
	fmt.Fprintln(w)
}

// ratioFigure renders a table of per-strategy ratios plus a bar chart.
func ratioFigure(w io.Writer, progs []*metrics.Program, ratio func(*metrics.Program, string) float64) {
	fmt.Fprintf(w, "%-12s", "program")
	for _, s := range metrics.StrategyNames {
		fmt.Fprintf(w, " %9s", shortLabel[s])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 12+4*10))
	for _, p := range progs {
		fmt.Fprintf(w, "%-12s", p.Name)
		for _, s := range metrics.StrategyNames {
			fmt.Fprintf(w, " %9.2f", ratio(p, s))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	// Bars for the portable instances relative to 1.0 (Offsets).
	fmt.Fprintln(w, "bars (each ∎ = 0.25×; | marks the 1.0 Offsets baseline):")
	for _, p := range progs {
		for _, s := range []string{"collapse-on-cast", "common-initial-seq"} {
			r := ratio(p, s)
			n := int(r*4 + 0.5)
			if n > 48 {
				n = 48
			}
			bar := strings.Repeat("∎", n)
			if n >= 4 {
				bar = bar[:3*len("∎")] + "|" + bar[3*len("∎"):]
			}
			fmt.Fprintf(w, "  %-12s %-4s %5.2f %s\n", p.Name, shortLabel[s], r, bar)
		}
	}
	fmt.Fprintln(w)
}

// Summary prints the two headline claims with the measured evidence.
func Summary(w io.Writer, progs []*metrics.Program) {
	fmt.Fprintln(w, "Summary of the paper's two claims against this corpus:")
	fmt.Fprintln(w)

	// Claim (i): distinguishing fields matters.
	atLeast2x := 0
	castProgs := 0
	worstName, worstFactor := "", 0.0
	for _, p := range progs {
		if !p.HasStructCast {
			continue
		}
		castProgs++
		ca := p.Runs["collapse-always"].AvgDerefSize
		cis := p.Runs["common-initial-seq"].AvgDerefSize
		if cis > 0 && ca >= 2*cis {
			atLeast2x++
		}
		if cis > 0 && ca/cis > worstFactor {
			worstFactor = ca / cis
			worstName = p.Name
		}
	}
	fmt.Fprintf(w, "(i) field sensitivity: Collapse Always sets are ≥2× the CIS sets on %d/%d\n",
		atLeast2x, castProgs)
	fmt.Fprintf(w, "    casting programs; worst case %s at %.1f×\n", worstName, worstFactor)

	// Claim (ii): portability is cheap.
	within2pct := 0
	worstCoC, worstCoCName := 0.0, ""
	worstCIS, worstCISName := 0.0, ""
	for _, p := range progs {
		off := p.Runs["offsets"].AvgDerefSize
		coc := p.Runs["collapse-on-cast"].AvgDerefSize
		cis := p.Runs["common-initial-seq"].AvgDerefSize
		if off <= 0 {
			continue
		}
		if cis/off <= 1.02 {
			within2pct++
		}
		if coc/off-1 > worstCoC {
			worstCoC = coc/off - 1
			worstCoCName = p.Name
		}
		if cis/off-1 > worstCIS {
			worstCIS = cis/off - 1
			worstCISName = p.Name
		}
	}
	fmt.Fprintf(w, "(ii) portability: CIS within 2%% of Offsets on %d/%d programs;\n",
		within2pct, len(progs))
	fmt.Fprintf(w, "     worst cases: CoC +%.1f%% (%s), CIS +%.1f%% (%s)\n",
		100*worstCoC, worstCoCName, 100*worstCIS, worstCISName)
	fmt.Fprintln(w)
}

// WaveStats renders the solver's constraint-graph counters: copy-edge SCCs
// collapsed by online cycle elimination, cells merged, topological waves
// run, and the batched vs per-fact edge traversal counts, per (program,
// instance). The Offsets instance never engages the layer (its range edges
// are excluded from collapse) and is omitted.
func WaveStats(w io.Writer, progs []*metrics.Program) {
	fmt.Fprintln(w, "Solver constraint-graph stats: online cycle elimination + wave scheduling")
	fmt.Fprintln(w, "(saved = per-fact edge crossings avoided by batched topological propagation)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %-10s %6s %7s %6s %9s %10s %10s\n",
		"program", "strategy", "sccs", "merged", "waves", "batches", "crossings", "saved")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 78))
	var tot metrics.Run
	for _, p := range progs {
		for _, s := range metrics.StrategyNames {
			r := p.Runs[s]
			if r == nil || s == "offsets" {
				continue
			}
			ws := r.Wave
			fmt.Fprintf(w, "%-12s %-10s %6d %7d %6d %9d %10d %10d\n",
				p.Name, shortLabel[s], ws.SCCsFound, ws.CellsMerged, ws.Waves,
				ws.EdgeBatches, ws.FactCrossings, ws.TraversalsSaved())
			tot.Wave.SCCsFound += ws.SCCsFound
			tot.Wave.CellsMerged += ws.CellsMerged
			tot.Wave.Waves += ws.Waves
			tot.Wave.EdgeBatches += ws.EdgeBatches
			tot.Wave.FactCrossings += ws.FactCrossings
		}
	}
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 78))
	fmt.Fprintf(w, "%-12s %-10s %6d %7d %6d %9d %10d %10d\n",
		"total", "", tot.Wave.SCCsFound, tot.Wave.CellsMerged, tot.Wave.Waves,
		tot.Wave.EdgeBatches, tot.Wave.FactCrossings, tot.Wave.TraversalsSaved())
	fmt.Fprintln(w)
	prepStats(w, progs)
	parStats(w, progs)
}

// prepStats renders the offline constraint-reduction and set-interner
// counters when any run engaged the pair (NoPrepass evaluations print
// nothing extra). The prep_* columns are a deterministic function of
// (program, strategy); the intern_* columns depend on the wave schedule.
func prepStats(w io.Writer, progs []*metrics.Program) {
	engaged := false
	for _, p := range progs {
		for _, r := range p.Runs {
			if r.Wave.PrepCollapsed > 0 || r.Wave.InternSets > 0 {
				engaged = true
			}
		}
	}
	if !engaged {
		return
	}
	fmt.Fprintln(w, "Offline prepass + hash-consed sets: pre-fixpoint merges, shared allocations")
	fmt.Fprintln(w, "(classes/collapsed/chains are deterministic; intern columns follow the schedule;")
	fmt.Fprintln(w, " peak-live is the barrier-sampled heap, populated only under -peak-mem)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %-10s %8s %10s %7s %7s %9s %12s %10s\n",
		"program", "strategy", "classes", "collapsed", "chains", "epochs", "interned", "bytes-shared", "peak-live")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 93))
	var tc, tcol, tch, te, ti, tb int
	for _, p := range progs {
		for _, s := range metrics.StrategyNames {
			r := p.Runs[s]
			if r == nil || s == "offsets" {
				continue
			}
			ws := r.Wave
			if ws.PrepClasses == 0 && ws.PrepCollapsed == 0 && ws.InternSets == 0 {
				continue
			}
			fmt.Fprintf(w, "%-12s %-10s %8d %10d %7d %7d %9d %12d %10d\n",
				p.Name, shortLabel[s], ws.PrepClasses, ws.PrepCollapsed, ws.PrepChains,
				ws.InternEpochs, ws.InternSets, ws.InternBytes, ws.PeakLiveBytes)
			tc += ws.PrepClasses
			tcol += ws.PrepCollapsed
			tch += ws.PrepChains
			te += ws.InternEpochs
			ti += ws.InternSets
			tb += ws.InternBytes
		}
	}
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 93))
	fmt.Fprintf(w, "%-12s %-10s %8d %10d %7d %7d %9d %12d\n",
		"total", "", tc, tcol, tch, te, ti, tb)
	fmt.Fprintln(w)
}

// parStats renders the work-stealing wave-executor counters when any run
// engaged it (sequential evaluations print nothing extra). Steals are the
// one schedule-dependent column; everything else repeats exactly at a fixed
// -solve-parallel.
func parStats(w io.Writer, progs []*metrics.Program) {
	engaged := false
	for _, p := range progs {
		for _, r := range p.Runs {
			if r.Wave.ParWaves > 0 {
				engaged = true
			}
		}
	}
	if !engaged {
		return
	}
	fmt.Fprintln(w, "Parallel wave executor: sharded frontiers, work stealing, barrier merges")
	fmt.Fprintln(w, "(steals vary run to run; all other columns are deterministic)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %-10s %9s %8s %7s %9s\n",
		"program", "strategy", "parwaves", "shards", "steals", "pendings")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 60))
	var tw, ts, tst, tp int
	for _, p := range progs {
		for _, s := range metrics.StrategyNames {
			r := p.Runs[s]
			if r == nil || r.Wave.ParWaves == 0 {
				continue
			}
			ws := r.Wave
			fmt.Fprintf(w, "%-12s %-10s %9d %8d %7d %9d\n",
				p.Name, shortLabel[s], ws.ParWaves, ws.ParShards, ws.ParSteals, ws.ParPendings)
			tw += ws.ParWaves
			ts += ws.ParShards
			tst += ws.ParSteals
			tp += ws.ParPendings
		}
	}
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 60))
	fmt.Fprintf(w, "%-12s %-10s %9d %8d %7d %9d\n", "total", "", tw, ts, tst, tp)
	fmt.Fprintln(w)
}

// Demand renders the demand-driven engine's measurements: per program, the
// median query's cold and warm latency against the exhaustive solve, and
// how much of the program the slice touched.
func Demand(w io.Writer, ms []*metrics.DemandMeasurement) {
	fmt.Fprintln(w, "Demand-driven queries vs exhaustive solve (median named dereference pointer;")
	fmt.Fprintln(w, "slice range spans the cheapest to the most expensive single query):")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %-10s %10s %10s %10s | %7s %14s %12s\n",
		"program", "query", "first", "warm", "full", "cells%", "cells", "slice range")
	for _, m := range ms {
		fmt.Fprintf(w, "%-12s %-10s %10v %10v %10v | %6.1f%% %6d/%-7d %5d-%-6d\n",
			m.Name, m.QueryVar, m.FirstQuery, m.WarmQuery, m.FullSolve,
			100*m.CellRatio(), m.DemandCells, m.FullCells, m.MinCells, m.MaxCells)
	}
	fmt.Fprintln(w)
}
