// Package regress pins the evaluation's results: the solver is fully
// deterministic, so the fact counts, set sizes and instrumentation counters
// of every (program, instance) pair are stored as a JSON baseline and any
// drift — a soundness regression, a precision regression, or an unintended
// behavior change — fails the check.
//
// Regenerate the baseline after an intentional change with:
//
//	go run ./cmd/ptrregress -update
package regress

import (
	"context"
	_ "embed"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/corpus"
	"repro/internal/export"
	"repro/internal/frontend"
	"repro/internal/metrics"
)

//go:embed baseline.json
var baselineJSON []byte

// BaselinePath is the on-disk location of the embedded baseline, relative
// to the repository root (used by -update).
const BaselinePath = "internal/regress/baseline.json"

// Measure runs the full corpus once (single repetition; timing is not
// compared) and returns the evaluation document. The corpus is fanned
// across GOMAXPROCS workers; the solver is deterministic and the runs are
// isolated, so the document is identical to a sequential measurement.
func Measure() (*export.Evaluation, error) {
	return MeasureParallel(0)
}

// MeasureParallel is Measure with an explicit worker count (0 = GOMAXPROCS,
// 1 = sequential).
func MeasureParallel(parallelism int) (*export.Evaluation, error) {
	return MeasureParallelContext(context.Background(), parallelism)
}

// MeasureParallelContext is MeasureParallel under a context: canceling it
// (e.g. a ptrregress -timeout) aborts the corpus run with a classified
// error instead of leaving a partial evaluation.
func MeasureParallelContext(ctx context.Context, parallelism int) (*export.Evaluation, error) {
	var specs []metrics.Spec
	for _, name := range corpus.SortedByGroup() {
		src, err := corpus.Source(name)
		if err != nil {
			return nil, err
		}
		specs = append(specs, metrics.Spec{Name: name, Sources: src})
	}
	progs, err := metrics.MeasureCorpusContext(ctx, specs, frontend.Options{},
		metrics.Options{Parallelism: parallelism})
	if err != nil {
		return nil, fmt.Errorf("measure corpus: %w", err)
	}
	ev := &export.Evaluation{ABI: "lp64"}
	for _, p := range progs {
		ev.Programs = append(ev.Programs, export.Program(p))
	}
	return ev, nil
}

// Baseline parses the embedded baseline; ok is false when none has been
// recorded yet.
func Baseline() (*export.Evaluation, bool, error) {
	if len(baselineJSON) == 0 || string(baselineJSON) == "{}\n" || string(baselineJSON) == "{}" {
		return nil, false, nil
	}
	var ev export.Evaluation
	if err := json.Unmarshal(baselineJSON, &ev); err != nil {
		return nil, false, fmt.Errorf("parse baseline: %w", err)
	}
	return &ev, true, nil
}

// Drift is one difference between the baseline and the current results.
type Drift struct {
	Program  string
	Strategy string
	Field    string
	Want     float64
	Got      float64
}

func (d Drift) String() string {
	return fmt.Sprintf("%s/%s: %s changed %v -> %v",
		d.Program, d.Strategy, d.Field, d.Want, d.Got)
}

// Compare returns every difference between the baseline and the current
// evaluation. Duration fields are ignored (machine-dependent).
func Compare(base, cur *export.Evaluation) []Drift {
	var drifts []Drift
	baseProgs := make(map[string]export.ProgramJSON)
	for _, p := range base.Programs {
		baseProgs[p.Name] = p
	}
	for _, p := range cur.Programs {
		bp, ok := baseProgs[p.Name]
		if !ok {
			drifts = append(drifts, Drift{Program: p.Name, Field: "new program"})
			continue
		}
		if bp.NumStmts != p.NumStmts {
			drifts = append(drifts, Drift{Program: p.Name, Field: "num_stmts",
				Want: float64(bp.NumStmts), Got: float64(p.NumStmts)})
		}
		if bp.HasStructCast != p.HasStructCast {
			drifts = append(drifts, Drift{Program: p.Name, Field: "has_struct_cast",
				Want: b2f(bp.HasStructCast), Got: b2f(p.HasStructCast)})
		}
		for name, run := range p.Runs {
			brun, ok := bp.Runs[name]
			if !ok {
				drifts = append(drifts, Drift{Program: p.Name, Strategy: name, Field: "new strategy"})
				continue
			}
			check := func(field string, want, got float64) {
				if math.Abs(want-got) > 1e-9 {
					drifts = append(drifts, Drift{
						Program: p.Name, Strategy: name, Field: field,
						Want: want, Got: got,
					})
				}
			}
			check("total_facts", float64(brun.TotalFacts), float64(run.TotalFacts))
			check("avg_deref_size", brun.AvgDerefSize, run.AvgDerefSize)
			check("lookup_calls", float64(brun.LookupCalls), float64(run.LookupCalls))
			check("lookup_mismatches", float64(brun.LookupMismatches), float64(run.LookupMismatches))
			check("resolve_calls", float64(brun.ResolveCalls), float64(run.ResolveCalls))
			check("resolve_mismatches", float64(brun.ResolveMismatches), float64(run.ResolveMismatches))
		}
	}
	// Removed programs.
	curNames := make(map[string]bool)
	for _, p := range cur.Programs {
		curNames[p.Name] = true
	}
	for _, p := range base.Programs {
		if !curNames[p.Name] {
			drifts = append(drifts, Drift{Program: p.Name, Field: "removed program"})
		}
	}
	return drifts
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Update writes the current evaluation to the baseline file at root/
// BaselinePath (durations are zeroed so baseline diffs stay clean). When the
// evaluation ran with intra-solve parallelism, the schedule-dependent
// counters — waves, edge batches, fact crossings and the par_* family — are
// zeroed too: they are deterministic only at a fixed executor configuration,
// so a baseline recorded in parallel must not pin them against future
// sequential (or differently-sharded) runs. The intern_* family follows the
// wave schedule the same way, so it is zeroed alongside par_*; prep_* is a
// pure function of (program, strategy) but is zeroed there too so a parallel
// baseline pins only parallelism-invariant observables. peak_live_bytes is
// machine-dependent and always zeroed. Fact counts, set sizes and the
// Figure-3 counters are identical at every parallelism and stay pinned.
func Update(root string, ev *export.Evaluation) error {
	for i := range ev.Programs {
		for name, run := range ev.Programs[i].Runs {
			run.DurationNS = 0
			run.PeakLiveBytes = 0
			if ev.SolveParallelism > 1 {
				run.Waves = 0
				run.EdgeBatches = 0
				run.FactCrossings = 0
				run.TraversalsSaved = 0
				run.ParWaves = 0
				run.ParShards = 0
				run.ParSteals = 0
				run.ParPendings = 0
				run.PrepClasses = 0
				run.PrepCollapsed = 0
				run.PrepChains = 0
				run.InternEpochs = 0
				run.InternSets = 0
				run.InternBytes = 0
			}
			ev.Programs[i].Runs[name] = run
		}
	}
	f, err := os.Create(root + "/" + BaselinePath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(ev)
}

// Run executes the full check, writing a report to w; it returns false when
// drift was found (or no baseline exists).
func Run(w io.Writer) (bool, error) {
	return RunContext(context.Background(), w, 0)
}

// RunContext is Run under a context and with an explicit corpus worker
// count (0 = GOMAXPROCS).
func RunContext(ctx context.Context, w io.Writer, parallelism int) (bool, error) {
	base, ok, err := Baseline()
	if err != nil {
		return false, err
	}
	if !ok {
		fmt.Fprintln(w, "no baseline recorded; run ptrregress -update")
		return false, nil
	}
	cur, err := MeasureParallelContext(ctx, parallelism)
	if err != nil {
		return false, err
	}
	drifts := Compare(base, cur)
	if len(drifts) == 0 {
		fmt.Fprintf(w, "baseline OK: %d programs, no drift\n", len(cur.Programs))
		return true, nil
	}
	fmt.Fprintf(w, "DRIFT: %d differences from baseline\n", len(drifts))
	for _, d := range drifts {
		fmt.Fprintln(w, " ", d)
	}
	return false, nil
}
