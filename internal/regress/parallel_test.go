package regress

import (
	"bytes"
	"testing"

	"repro/internal/corpus"
	"repro/internal/export"
	"repro/internal/frontend"
	"repro/internal/metrics"
	"repro/internal/report"
)

func measureCorpus(t *testing.T, parallelism int) []*metrics.Program {
	t.Helper()
	var specs []metrics.Spec
	for _, name := range corpus.SortedByGroup() {
		src, err := corpus.Source(name)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, metrics.Spec{Name: name, Sources: src})
	}
	progs, err := metrics.MeasureCorpus(specs, frontend.Options{},
		metrics.Options{Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	return progs
}

// TestParallelMatchesSequential runs the full corpus sequentially and with a
// 4-way worker pool and demands byte-identical Figure 4 and Figure 6 tables
// plus zero drift between the two evaluation documents: the batch driver
// must not change a single fact or counter, only the wall-clock.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus measurement")
	}
	seq := measureCorpus(t, 1)
	par := measureCorpus(t, 4)

	toEval := func(progs []*metrics.Program) *export.Evaluation {
		ev := &export.Evaluation{ABI: "lp64"}
		for _, p := range progs {
			ev.Programs = append(ev.Programs, export.Program(p))
		}
		return ev
	}
	if drifts := Compare(toEval(seq), toEval(par)); len(drifts) != 0 {
		for _, d := range drifts {
			t.Errorf("drift: %s", d)
		}
	}

	renderers := []struct {
		name   string
		render func(*bytes.Buffer, []*metrics.Program)
	}{
		{"Figure 4", func(b *bytes.Buffer, p []*metrics.Program) { report.Fig4(b, p) }},
		{"Figure 6", func(b *bytes.Buffer, p []*metrics.Program) { report.Fig6(b, p) }},
	}
	for _, r := range renderers {
		var b1, b2 bytes.Buffer
		r.render(&b1, seq)
		r.render(&b2, par)
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Errorf("%s differs:\nsequential:\n%s\nparallel:\n%s",
				r.name, b1.String(), b2.String())
		}
	}
}
