package regress

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/frontend"
	"repro/internal/metrics"
)

func benchCorpus(b *testing.B, opts metrics.Options) {
	var specs []metrics.Spec
	for _, name := range corpus.SortedByGroup() {
		src, err := corpus.Source(name)
		if err != nil {
			b.Fatal(err)
		}
		specs = append(specs, metrics.Spec{Name: name, Sources: src})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.MeasureCorpus(specs, frontend.Options{}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorpusMemo(b *testing.B) {
	benchCorpus(b, metrics.Options{Parallelism: 1})
}

func BenchmarkCorpusNoMemo(b *testing.B) {
	benchCorpus(b, metrics.Options{Parallelism: 1, NoMemo: true})
}
