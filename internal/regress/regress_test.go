package regress

import (
	"strings"
	"testing"

	"repro/internal/export"
)

func TestBaselineParses(t *testing.T) {
	base, ok, err := Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("no baseline recorded")
	}
	if len(base.Programs) != 20 {
		t.Errorf("baseline has %d programs, want 20", len(base.Programs))
	}
}

// TestNoDrift is the regression net: the current analysis results must
// match the committed baseline exactly. After an intentional change, run
// `go run ./cmd/ptrregress -update` and review the diff.
func TestNoDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus run")
	}
	base, ok, err := Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("no baseline recorded")
	}
	cur, err := Measure()
	if err != nil {
		t.Fatal(err)
	}
	drifts := Compare(base, cur)
	for _, d := range drifts {
		t.Errorf("drift: %s", d)
	}
}

func TestCompareDetectsDrift(t *testing.T) {
	mk := func() *export.Evaluation {
		return &export.Evaluation{
			ABI: "lp64",
			Programs: []export.ProgramJSON{{
				Name:     "p",
				NumStmts: 10,
				Runs: map[string]export.RunJSON{
					"cis": {TotalFacts: 100, AvgDerefSize: 1.5, LookupCalls: 7},
				},
			}},
		}
	}
	base, cur := mk(), mk()
	if drifts := Compare(base, cur); len(drifts) != 0 {
		t.Fatalf("identical evals drifted: %v", drifts)
	}
	r := cur.Programs[0].Runs["cis"]
	r.TotalFacts = 101
	cur.Programs[0].Runs["cis"] = r
	drifts := Compare(base, cur)
	if len(drifts) != 1 || drifts[0].Field != "total_facts" {
		t.Fatalf("drifts = %v", drifts)
	}
	if !strings.Contains(drifts[0].String(), "total_facts") {
		t.Errorf("drift string = %q", drifts[0].String())
	}
}

func TestCompareDetectsAddedRemovedPrograms(t *testing.T) {
	base := &export.Evaluation{Programs: []export.ProgramJSON{{Name: "old"}}}
	cur := &export.Evaluation{Programs: []export.ProgramJSON{{Name: "new"}}}
	drifts := Compare(base, cur)
	if len(drifts) != 2 {
		t.Fatalf("drifts = %v", drifts)
	}
}
