package modref_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus/corpustest"
	"repro/internal/frontend"
	"repro/internal/ir"
	"repro/internal/modref"
)

func load(t *testing.T, src string) *frontend.Result {
	t.Helper()
	r, err := frontend.Load([]frontend.Source{{Name: "t.c", Text: src}}, frontend.Options{})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return r
}

func fnByName(t *testing.T, p *ir.Program, name string) *ir.Func {
	t.Helper()
	for _, f := range p.Funcs {
		if f.Sym.Name == name {
			return f
		}
	}
	t.Fatalf("function %q not found", name)
	return nil
}

func has(set map[*ir.Object]bool, name string) bool {
	for o := range set {
		if o.Name == name || (o.Sym != nil && o.Sym.Name == name) {
			return true
		}
	}
	return false
}

func TestDirectMod(t *testing.T) {
	src := `
int x, y;
void writer(int *p) { *p = 1; }
void caller(void) { writer(&x); }
void other(void) { writer(&y); }`
	r := load(t, src)
	res := core.Analyze(r.IR, core.NewCIS())
	sum := modref.Compute(r.IR, res)

	w := fnByName(t, r.IR, "writer")
	if !has(sum.Direct[w].Mod, "x") || !has(sum.Direct[w].Mod, "y") {
		t.Errorf("writer MOD = %v, want x and y", modref.Names(sum.Direct[w].Mod))
	}
}

func TestTransitiveThroughCalls(t *testing.T) {
	src := `
int g;
void leaf(int *p) { *p = 1; }
void mid(int *p) { leaf(p); }
void top(void) { mid(&g); }`
	r := load(t, src)
	res := core.Analyze(r.IR, core.NewCIS())
	sum := modref.Compute(r.IR, res)

	top := fnByName(t, r.IR, "top")
	if has(sum.Direct[top].Mod, "g") {
		t.Error("top has no direct stores")
	}
	if !has(sum.Transitive[top].Mod, "g") {
		t.Errorf("top transitive MOD = %v, want g", modref.Names(sum.Transitive[top].Mod))
	}
}

func TestRefSeparateFromMod(t *testing.T) {
	src := `
int a, b;
int reader(int *p) { return *p; }
void f(void) { reader(&a); }
void writer2(int *p) { *p = 2; }
void g(void) { writer2(&b); }`
	r := load(t, src)
	res := core.Analyze(r.IR, core.NewCIS())
	sum := modref.Compute(r.IR, res)

	rd := fnByName(t, r.IR, "reader")
	if !has(sum.Direct[rd].Ref, "a") {
		t.Errorf("reader REF = %v, want a", modref.Names(sum.Direct[rd].Ref))
	}
	if has(sum.Direct[rd].Mod, "a") {
		t.Error("reader must not MOD a")
	}
	wr := fnByName(t, r.IR, "writer2")
	if !has(sum.Direct[wr].Mod, "b") || has(sum.Direct[wr].Ref, "b") {
		t.Errorf("writer2 MOD=%v REF=%v", modref.Names(sum.Direct[wr].Mod), modref.Names(sum.Direct[wr].Ref))
	}
}

func TestRecursiveCallGraph(t *testing.T) {
	src := `
int n;
void even(int *p);
void odd(int *p) { *p = 1; even(p); }
void even(int *p) { if (*p) odd(p); }
void top(void) { odd(&n); }`
	r := load(t, src)
	res := core.Analyze(r.IR, core.NewCIS())
	sum := modref.Compute(r.IR, res)
	top := fnByName(t, r.IR, "top")
	if !has(sum.Transitive[top].Mod, "n") {
		t.Errorf("top MOD = %v, want n through the odd/even cycle", modref.Names(sum.Transitive[top].Mod))
	}
}

func TestCallGraphThroughFunctionPointer(t *testing.T) {
	src := `
int x;
void h(int *p) { *p = 3; }
void (*fp)(int *);
void top(void) { fp = h; fp(&x); }`
	r := load(t, src)
	res := core.Analyze(r.IR, core.NewCIS())
	sum := modref.Compute(r.IR, res)
	top := fnByName(t, r.IR, "top")
	hh := fnByName(t, r.IR, "h")
	if !sum.Callees[top][hh] {
		t.Error("call graph missing top -> h through fp")
	}
	if !has(sum.Transitive[top].Mod, "x") {
		t.Errorf("top MOD = %v, want x", modref.Names(sum.Transitive[top].Mod))
	}
}

func TestPrecisionTracksInstance(t *testing.T) {
	// The paper's motivation: a less precise pointer analysis inflates
	// downstream MOD sets. Collapse Always must never yield smaller
	// average MOD sets than CIS.
	for _, name := range []string{"compiler", "li", "pmake", "less"} {
		src := corpustest.MustSource(name)
		r, err := frontend.Load(src, frontend.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cis := modref.Compute(r.IR, core.Analyze(r.IR, core.NewCIS()))
		col := modref.Compute(r.IR, core.Analyze(r.IR, core.NewCollapseAlways()))
		if col.AvgModSize()+1e-9 < cis.AvgModSize() {
			t.Errorf("%s: collapse-always MOD avg %.2f < CIS %.2f",
				name, col.AvgModSize(), cis.AvgModSize())
		}
	}
}

func TestMemCopyEffects(t *testing.T) {
	src := `
#include <string.h>
struct S { int a[4]; } src1, dst1;
void f(void) { memcpy(&dst1, &src1, sizeof dst1); }`
	r := load(t, src)
	res := core.Analyze(r.IR, core.NewCIS())
	sum := modref.Compute(r.IR, res)
	// The memcpy happens inside the synthetic memcpy body; f's transitive
	// MOD must include dst1, its REF must include src1.
	f := fnByName(t, r.IR, "f")
	if !has(sum.Transitive[f].Mod, "dst1") {
		t.Errorf("f MOD = %v, want dst1", modref.Names(sum.Transitive[f].Mod))
	}
	if !has(sum.Transitive[f].Ref, "src1") {
		t.Errorf("f REF = %v, want src1", modref.Names(sum.Transitive[f].Ref))
	}
}
