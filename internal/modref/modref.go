// Package modref computes MOD/REF side-effect summaries on top of a
// points-to result: for every function, the sets of abstract objects it may
// modify or reference through pointers, directly or via calls. This is the
// classic client the paper motivates better pointer analysis with (its
// related work discusses Ryder et al.'s modification side-effects problem,
// and §1 reports a slicing experiment hurt by collapsed structures) — the
// precision of these sets tracks the precision of the underlying instance.
package modref

import (
	"sort"

	"repro/internal/core"
	"repro/internal/ir"
)

// Effects is one function's side-effect summary.
type Effects struct {
	// Mod holds objects the function may write through pointers.
	Mod map[*ir.Object]bool
	// Ref holds objects the function may read through pointers.
	Ref map[*ir.Object]bool
}

func newEffects() *Effects {
	return &Effects{Mod: make(map[*ir.Object]bool), Ref: make(map[*ir.Object]bool)}
}

// Names returns the sorted object names of a set (testing/reporting aid).
func Names(set map[*ir.Object]bool) []string {
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o.Name)
	}
	sort.Strings(out)
	return out
}

// Summary maps every function to its transitive effects.
type Summary struct {
	Direct     map[*ir.Func]*Effects
	Transitive map[*ir.Func]*Effects
	// Callees is the computed call graph (call-site insensitive).
	Callees map[*ir.Func]map[*ir.Func]bool
}

// Compute derives MOD/REF summaries from a points-to analysis result.
func Compute(prog *ir.Program, res *core.Result) *Summary {
	s := &Summary{
		Direct:     make(map[*ir.Func]*Effects),
		Transitive: make(map[*ir.Func]*Effects),
		Callees:    make(map[*ir.Func]map[*ir.Func]bool),
	}
	for _, fn := range prog.Funcs {
		s.Direct[fn] = newEffects()
		s.Callees[fn] = make(map[*ir.Func]bool)
	}

	// Direct effects and the call graph.
	for _, st := range prog.Stmts {
		if st.Fn == nil {
			continue
		}
		eff := s.Direct[st.Fn]
		if eff == nil {
			continue
		}
		switch st.Op {
		case ir.OpStore:
			for c := range res.PointsTo(st.Ptr, nil) {
				eff.Mod[c.Obj] = true
			}
		case ir.OpLoad:
			for c := range res.PointsTo(st.Ptr, nil) {
				eff.Ref[c.Obj] = true
			}
		case ir.OpMemCopy:
			for c := range res.PointsTo(st.Ptr, nil) {
				eff.Mod[c.Obj] = true
			}
			for c := range res.PointsTo(st.Src, nil) {
				eff.Ref[c.Obj] = true
			}
		case ir.OpCall:
			for c := range res.PointsTo(st.Ptr, nil) {
				if c.Obj.Kind != ir.ObjFunc || c.Obj.Sym == nil {
					continue
				}
				if callee := prog.FuncOf[c.Obj.Sym]; callee != nil {
					s.Callees[st.Fn][callee] = true
				}
			}
		}
	}

	// Transitive closure over the call graph (iterate to fixpoint; the
	// graph is small and possibly cyclic).
	for _, fn := range prog.Funcs {
		t := newEffects()
		for o := range s.Direct[fn].Mod {
			t.Mod[o] = true
		}
		for o := range s.Direct[fn].Ref {
			t.Ref[o] = true
		}
		s.Transitive[fn] = t
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.Funcs {
			t := s.Transitive[fn]
			for callee := range s.Callees[fn] {
				ct := s.Transitive[callee]
				for o := range ct.Mod {
					if !t.Mod[o] {
						t.Mod[o] = true
						changed = true
					}
				}
				for o := range ct.Ref {
					if !t.Ref[o] {
						t.Ref[o] = true
						changed = true
					}
				}
			}
		}
	}
	return s
}

// AvgModSize returns the average transitive MOD-set size across functions
// with at least one effect — a precision proxy like the paper's Figure 4,
// one analysis phase downstream.
func (s *Summary) AvgModSize() float64 {
	n, total := 0, 0
	for _, e := range s.Transitive {
		if len(e.Mod) == 0 && len(e.Ref) == 0 {
			continue
		}
		n++
		total += len(e.Mod)
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}
