package cli_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/frontend"
)

const src = `
struct S { int *a; } s;
int x, *p;
int getp(void) { return *p; }
int main(void) {
	s.a = &x;
	p = s.a;
	return getp();
}`

func analyze(t *testing.T) (*frontend.Result, *core.Result) {
	t.Helper()
	r, err := frontend.Load([]frontend.Source{{Name: "t.c", Text: src}}, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r, core.Analyze(r.IR, core.NewCIS())
}

func TestParseABI(t *testing.T) {
	for _, name := range []string{"lp64", "ilp32", "packed1", ""} {
		if _, err := cli.ParseABI(name); err != nil {
			t.Errorf("ParseABI(%q): %v", name, err)
		}
	}
	if _, err := cli.ParseABI("bogus"); err == nil {
		t.Error("bogus ABI accepted")
	}
}

func TestResolveInputCorpus(t *testing.T) {
	srcs, err := cli.ResolveInput("bc", nil)
	if err != nil || len(srcs) != 1 {
		t.Fatalf("corpus input: %v, %d", err, len(srcs))
	}
	if _, err := cli.ResolveInput("nonesuch", nil); err == nil {
		t.Error("unknown corpus accepted")
	}
	if _, err := cli.ResolveInput("", nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestResolveInputFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.c")
	if err := os.WriteFile(path, []byte("int x;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	srcs, err := cli.ResolveInput("", []string{path})
	if err != nil || len(srcs) != 1 || srcs[0].Name != path {
		t.Fatalf("file input: %v %v", err, srcs)
	}
	if _, err := cli.ResolveInput("", []string{filepath.Join(dir, "no.c")}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestPrintAll(t *testing.T) {
	fr, res := analyze(t)
	_ = fr
	var sb strings.Builder
	cli.PrintAll(&sb, res)
	out := sb.String()
	if !strings.Contains(out, "p ") || !strings.Contains(out, "{x}") {
		t.Errorf("PrintAll output:\n%s", out)
	}
	if strings.Contains(out, "tmp") {
		t.Errorf("temps leaked:\n%s", out)
	}
}

func TestPrintVar(t *testing.T) {
	fr, res := analyze(t)
	var sb strings.Builder
	if !cli.PrintVar(&sb, res, fr.IR, "p") {
		t.Fatal("p not found")
	}
	if !strings.Contains(sb.String(), "{x}") {
		t.Errorf("PrintVar output: %s", sb.String())
	}
	if cli.PrintVar(&sb, res, fr.IR, "nonesuch") {
		t.Error("nonexistent var found")
	}
}

func TestPrintSites(t *testing.T) {
	fr, res := analyze(t)
	var sb strings.Builder
	cli.PrintSites(&sb, res, fr.IR)
	out := sb.String()
	if !strings.Contains(out, "average:") || !strings.Contains(out, "deref of") {
		t.Errorf("PrintSites output:\n%s", out)
	}
}

func TestPrintModRefAndCallGraph(t *testing.T) {
	fr, res := analyze(t)
	var sb strings.Builder
	cli.PrintModRef(&sb, res, fr.IR)
	if !strings.Contains(sb.String(), "MOD:") || !strings.Contains(sb.String(), "getp:") {
		t.Errorf("PrintModRef output:\n%s", sb.String())
	}
	sb.Reset()
	cli.PrintCallGraph(&sb, res, fr.IR)
	if !strings.Contains(sb.String(), "main") || !strings.Contains(sb.String(), "getp") {
		t.Errorf("PrintCallGraph output:\n%s", sb.String())
	}
}

func TestWriteDot(t *testing.T) {
	_, res := analyze(t)
	var sb strings.Builder
	cli.WriteDot(&sb, res)
	out := sb.String()
	if !strings.HasPrefix(out, "digraph pointsto {") || !strings.Contains(out, "->") {
		t.Errorf("dot output:\n%s", out)
	}
	// Deterministic.
	var sb2 strings.Builder
	cli.WriteDot(&sb2, res)
	if sb2.String() != out {
		t.Error("dot output not deterministic")
	}
}

func TestPrintMisuses(t *testing.T) {
	fr, _ := analyze(t)
	res := core.AnalyzeWith(fr.IR, core.NewCIS(), core.Options{UseUnknown: true})
	var sb strings.Builder
	cli.PrintMisuses(&sb, res)
	if !strings.Contains(sb.String(), "no potential pointer misuses") {
		t.Errorf("clean program output: %s", sb.String())
	}
}

func TestFormatSet(t *testing.T) {
	_, res := analyze(t)
	if got := cli.FormatSet(nil); got != "{}" {
		t.Errorf("FormatSet(nil) = %q", got)
	}
	_ = res
}
