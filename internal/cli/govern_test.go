package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"testing"
	"time"

	"repro/internal/fault"
)

func TestExitCodeTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, ExitOK},
		{"usage", Usagef("bad flag"), ExitUsage},
		{"wrapped usage", fmt.Errorf("outer: %w", Usagef("bad")), ExitUsage},
		{"parse", fault.New(fault.KindParse, "parse", "f.c:1", errors.New("x")), ExitInput},
		{"sema", fault.New(fault.KindSema, "sema", "", errors.New("x")), ExitInput},
		{"limit", fault.Newf(fault.KindLimit, "solve", "", "max-steps"), ExitLimit},
		{"canceled", fault.New(fault.KindCanceled, "solve", "", context.Canceled), ExitCanceled},
		{"bare ctx canceled", context.Canceled, ExitCanceled},
		{"bare deadline", context.DeadlineExceeded, ExitCanceled},
		{"internal", fault.FromPanic("solve", "boom"), ExitInternal},
		{"plain", errors.New("misc"), ExitInput},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("%s: ExitCode = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestRunRecoversPanics(t *testing.T) {
	code := Run("testtool", func() error { panic("kaboom") })
	if code != ExitInternal {
		t.Fatalf("panicking body: exit %d, want %d", code, ExitInternal)
	}
	if code := Run("testtool", func() error { return nil }); code != ExitOK {
		t.Fatalf("clean body: exit %d, want %d", code, ExitOK)
	}
}

func TestGovernFlagsAndContext(t *testing.T) {
	var g Govern
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	g.RegisterFlags(fs)
	if err := fs.Parse([]string{"-timeout", "50ms", "-max-steps", "7", "-max-facts", "8", "-max-cells", "9"}); err != nil {
		t.Fatal(err)
	}
	lim := g.Limits()
	if lim.MaxSteps != 7 || lim.MaxFacts != 8 || lim.MaxCells != 9 {
		t.Fatalf("limits = %+v", lim)
	}
	ctx, cancel := g.Context()
	defer cancel()
	if dl, ok := ctx.Deadline(); !ok || time.Until(dl) > 60*time.Millisecond {
		t.Fatalf("deadline = %v, %v; want ~50ms out", dl, ok)
	}

	var g0 Govern
	ctx0, cancel0 := g0.Context()
	defer cancel0()
	if _, ok := ctx0.Deadline(); ok {
		t.Fatal("zero timeout should not set a deadline")
	}
}
