package cli_test

// Regression test for the Offsets offset-0 rendering ambiguity: an Offsets
// cell at byte offset 0 used to render identically to a whole-object cell
// ("s" rather than "s@0"), so Offsets dumps and dot graphs were unreadable —
// a fact at the first field was indistinguishable from a collapsed-object
// fact. Offsets cells now carry the ByOff marker and always render "@off".

import (
	"strings"
	"testing"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/frontend"
)

const offsetSrc = `
struct S { int *a; int *b; } s;
int x;
int main(void) {
	s.a = &x;
	return 0;
}`

func analyzeOffsets(t *testing.T) *core.Result {
	t.Helper()
	r, err := frontend.Load([]frontend.Source{{Name: "t.c", Text: offsetSrc}}, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return core.Analyze(r.IR, core.NewOffsets(r.Layout))
}

func TestOffsetZeroCellDump(t *testing.T) {
	res := analyzeOffsets(t)
	var sb strings.Builder
	cli.PrintAll(&sb, res)
	out := sb.String()
	if !strings.Contains(out, "s@0") {
		t.Errorf("PrintAll does not render the offset-0 cell as s@0:\n%s", out)
	}
	// The whole-object spelling must not appear as a cell of its own: every
	// occurrence of "s" in the dump is the @0 cell.
	for _, line := range strings.Split(out, "\n") {
		if cell := strings.TrimSpace(strings.SplitN(line, "->", 2)[0]); cell == "s" {
			t.Errorf("ambiguous whole-object rendering for an Offsets cell: %q", line)
		}
	}
}

func TestOffsetZeroCellDot(t *testing.T) {
	res := analyzeOffsets(t)
	var sb strings.Builder
	cli.WriteDot(&sb, res)
	out := sb.String()
	if !strings.Contains(out, `"s@0"`) {
		t.Errorf("WriteDot does not render the offset-0 cell as \"s@0\":\n%s", out)
	}
	if strings.Contains(out, `"s"`) {
		t.Errorf("WriteDot renders an ambiguous whole-object node for an Offsets cell:\n%s", out)
	}
}

// TestCollapseWholeObjectUnchanged pins the other side of the fix: the
// collapsing strategies' selector-free cells still render bare.
func TestCollapseWholeObjectUnchanged(t *testing.T) {
	r, err := frontend.Load([]frontend.Source{{Name: "t.c", Text: offsetSrc}}, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := core.Analyze(r.IR, core.NewCollapseAlways())
	var sb strings.Builder
	cli.PrintAll(&sb, res)
	if out := sb.String(); !strings.Contains(out, "s ") || strings.Contains(out, "s@") {
		t.Errorf("CollapseAlways whole-object cell rendering changed:\n%s", out)
	}
}
