// Package cli holds the shared machinery of the command-line tools:
// ABI selection, input resolution (files vs. built-in corpus programs) and
// the text renderings of analysis results. Keeping it here makes the
// commands thin and the behavior testable.
package cli

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/cc/layout"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/frontend"
	"repro/internal/ir"
	"repro/internal/modref"
)

// ParseABI maps an ABI flag value to a layout strategy.
func ParseABI(name string) (*layout.ABI, error) {
	switch name {
	case "lp64", "":
		return layout.LP64, nil
	case "ilp32":
		return layout.ILP32, nil
	case "packed1":
		return layout.Packed1, nil
	}
	return nil, fmt.Errorf("unknown ABI %q (want lp64, ilp32 or packed1)", name)
}

// ResolveInput turns a -corpus name or a list of file paths into sources.
func ResolveInput(corpusName string, paths []string) ([]frontend.Source, error) {
	if corpusName != "" {
		return corpus.Source(corpusName)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no input files (pass file.c or use -corpus <name>)")
	}
	var sources []frontend.Source
	for _, path := range paths {
		text, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		sources = append(sources, frontend.Source{Name: path, Text: string(text)})
	}
	return sources, nil
}

// FormatSet renders a points-to set as "{a, b, c}".
func FormatSet(set core.CellSet) string {
	s := "{"
	for i, t := range set.Sorted() {
		if i > 0 {
			s += ", "
		}
		s += t.String()
	}
	return s + "}"
}

// PrintAll writes every named variable's points-to set, sorted.
func PrintAll(w io.Writer, result *core.Result) {
	type row struct {
		cell, tgts string
	}
	var rows []row
	for _, c := range result.SortedCells() {
		if c.Obj.IsTemp() {
			continue
		}
		rows = append(rows, row{cell: c.String(), tgts: FormatSet(result.PointsToCell(c))})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].cell < rows[j].cell })
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s -> %s\n", r.cell, r.tgts)
	}
}

// PrintVar writes the points-to sets of all objects with the given source
// name; it returns false when no such variable exists.
func PrintVar(w io.Writer, result *core.Result, prog *ir.Program, name string) bool {
	found := false
	for _, o := range prog.Objects {
		if (o.Sym != nil && o.Sym.Name == name) || o.Name == name {
			found = true
			fmt.Fprintf(w, "%s -> %s\n", o.Name, FormatSet(result.PointsTo(o, nil)))
		}
	}
	return found
}

// PrintSites writes per-dereference-site set sizes and the Figure 4 average.
func PrintSites(w io.Writer, result *core.Result, prog *ir.Program) {
	for _, s := range prog.Sites {
		fmt.Fprintf(w, "%-20s deref of %-16s set size %d\n",
			s.Pos, s.Ptr.Name, result.SiteSetSize(s))
	}
	fmt.Fprintf(w, "average: %.2f over %d sites\n", result.AvgDerefSetSize(), len(prog.Sites))
}

// PrintModRef writes transitive MOD/REF summaries for defined functions.
func PrintModRef(w io.Writer, result *core.Result, prog *ir.Program) {
	sum := modref.Compute(prog, result)
	for _, fn := range prog.Funcs {
		if fn.Sym.Def == nil {
			continue
		}
		eff := sum.Transitive[fn]
		fmt.Fprintf(w, "%s:\n", fn.Sym.Name)
		fmt.Fprintf(w, "  MOD: %v\n", modref.Names(eff.Mod))
		fmt.Fprintf(w, "  REF: %v\n", modref.Names(eff.Ref))
	}
}

// PrintCallGraph writes the points-to-derived call graph.
func PrintCallGraph(w io.Writer, result *core.Result, prog *ir.Program) {
	sum := modref.Compute(prog, result)
	for _, fn := range prog.Funcs {
		if fn.Sym.Def == nil {
			continue
		}
		var callees []string
		for c := range sum.Callees[fn] {
			callees = append(callees, c.Sym.Name)
		}
		sort.Strings(callees)
		fmt.Fprintf(w, "%-20s -> %v\n", fn.Sym.Name, callees)
	}
}

// WriteDot emits the points-to graph in Graphviz format.
func WriteDot(w io.Writer, result *core.Result) {
	fmt.Fprintln(w, "digraph pointsto {")
	fmt.Fprintln(w, "  node [shape=box, fontname=\"monospace\"];")
	var lines []string
	for _, c := range result.SortedCells() {
		if c.Obj.IsTemp() {
			continue
		}
		for _, t := range result.PointsToCell(c).Sorted() {
			lines = append(lines, fmt.Sprintf("  %q -> %q;", c.String(), t.String()))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
	fmt.Fprintln(w, "}")
}

// PrintMisuses writes the Unknown-mode misuse flags.
func PrintMisuses(w io.Writer, result *core.Result) {
	if len(result.Misuses) == 0 {
		fmt.Fprintln(w, "no potential pointer misuses flagged")
		return
	}
	for _, m := range result.Misuses {
		fmt.Fprintf(w, "%s: potential misuse: %s\n", m.Pos, m.Stmt)
	}
}
