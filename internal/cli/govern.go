package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// Exit codes shared by the command-line tools, one per fault class, so
// scripts can branch on why an analysis stopped:
//
//	0  success
//	1  input rejected (parse or sema error) or other failure
//	2  usage error (bad flags or arguments)
//	3  a resource limit stopped the analysis (-max-steps etc.)
//	4  the analysis was canceled (-timeout)
//	5  internal fault (a recovered panic — a bug, please report)
const (
	ExitOK       = 0
	ExitInput    = 1
	ExitUsage    = 2
	ExitLimit    = 3
	ExitCanceled = 4
	ExitInternal = 5
)

// usageError marks bad flags/arguments (exit code 2).
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

// Usagef builds a usage error: Run maps it to exit code 2.
func Usagef(format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

// ExitCode classifies an error into the tools' exit-code contract.
func ExitCode(err error) int {
	var ue *usageError
	switch {
	case err == nil:
		return ExitOK
	case errors.As(err, &ue):
		return ExitUsage
	case errors.Is(err, fault.ErrLimit):
		return ExitLimit
	case errors.Is(err, fault.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return ExitCanceled
	case errors.Is(err, fault.ErrInternal):
		return ExitInternal
	default:
		return ExitInput
	}
}

// Run executes a tool body under the panic-recovery boundary and turns its
// error into a diagnostic plus the taxonomy exit code. Intended use:
//
//	func main() { os.Exit(cli.Run("ptrcheck", run)) }
//
// A panic anywhere in fn becomes a structured internal-fault diagnostic on
// stderr (kind, stage, stack) and exit code 5 instead of a crash.
func Run(tool string, fn func() error) int {
	err := func() (err error) {
		defer fault.Recover(tool, &err)
		return fn()
	}()
	if err == nil {
		return ExitOK
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	var fe *fault.Error
	if errors.As(err, &fe) && fe.Kind == fault.KindInternal && len(fe.Stack) > 0 {
		fmt.Fprintf(os.Stderr, "%s: internal fault — this is a bug in the analyzer\n%s", tool, fe.Stack)
	}
	return ExitCode(err)
}

// Govern bundles the resource-governance flags every analysis tool takes.
type Govern struct {
	Timeout  time.Duration
	MaxSteps int
	MaxFacts int
	MaxCells int
}

// RegisterFlags installs -timeout and -max-steps / -max-facts / -max-cells
// on the flag set (use flag.CommandLine for a command's default set).
func (g *Govern) RegisterFlags(fs *flag.FlagSet) {
	fs.DurationVar(&g.Timeout, "timeout", 0, "abort the analysis after this duration (0 = none)")
	fs.IntVar(&g.MaxSteps, "max-steps", 0, "stop the solver after this many worklist steps (0 = unlimited)")
	fs.IntVar(&g.MaxFacts, "max-facts", 0, "stop the solver after this many points-to facts (0 = unlimited)")
	fs.IntVar(&g.MaxCells, "max-cells", 0, "stop the solver after this many cells hold facts (0 = unlimited)")
}

// Context derives the tool's run context from -timeout. The returned cancel
// must be called (defer it) to release the timer.
func (g *Govern) Context() (context.Context, context.CancelFunc) {
	if g.Timeout > 0 {
		return context.WithTimeout(context.Background(), g.Timeout)
	}
	return context.WithCancel(context.Background())
}

// Limits converts the flags into solver limits.
func (g *Govern) Limits() core.Limits {
	return core.Limits{MaxSteps: g.MaxSteps, MaxFacts: g.MaxFacts, MaxCells: g.MaxCells}
}

// Incomplete renders the governance diagnostic for a partial result and
// returns the classified error the tool should exit with. Use after
// printing whatever partial output is still meaningful:
//
//	if res.Incomplete != nil {
//		return cli.IncompleteError(os.Stderr, res.Incomplete)
//	}
func IncompleteError(w *os.File, stop *core.Stop) error {
	fmt.Fprintf(w, "analysis incomplete (%s): %d steps, %d facts, %d cells; results are partial but sound for the facts shown\n",
		stop.Reason, stop.Steps, stop.Facts, stop.Cells)
	return stop.AsError()
}
