package chaos

import (
	"bytes"
	"context"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=42,solve-delay=5ms:0.3,spill-err=0.2,panic=1,slow-write=1ms:0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 42, SolveDelay: 5 * time.Millisecond, SolveDelayP: 0.3,
		SpillErrP: 0.2, Panics: 1,
		SlowWrite: time.Millisecond, SlowWriteP: 0.5,
	}
	if cfg != want {
		t.Errorf("ParseSpec = %+v, want %+v", cfg, want)
	}

	// Probability defaults to 1 when omitted.
	cfg, err = ParseSpec("solve-delay=2ms")
	if err != nil || cfg.SolveDelayP != 1 || cfg.SolveDelay != 2*time.Millisecond {
		t.Errorf("bare duration: %+v, %v", cfg, err)
	}

	// Empty spec is the no-chaos config.
	if cfg, err := ParseSpec(""); err != nil || New(cfg) != nil {
		t.Errorf("empty spec should build no chaos: %+v, %v", cfg, err)
	}

	for _, bad := range []string{
		"nonsense", "seed=abc", "spill-err=1.5", "spill-err=-0.1",
		"solve-delay=xyz", "panic=-2", "frobnicate=1", "solve-delay=1ms:2",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestDeterminism: the same seed injects the same faults at the same call
// positions; a different seed diverges.
func TestDeterminism(t *testing.T) {
	trace := func(seed int64) []bool {
		c := New(Config{Seed: seed, SpillErrP: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = c.SpillError("write") != nil
		}
		return out
	}
	a, b := trace(7), trace(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := trace(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces (suspicious)")
	}
	injected := 0
	for _, hit := range a {
		if hit {
			injected++
		}
	}
	if injected == 0 || injected == len(a) {
		t.Errorf("p=0.5 injected %d/%d times", injected, len(a))
	}
}

func TestNilChaosIsInert(t *testing.T) {
	var c *Chaos
	c.SolveDelay(context.Background())
	if err := c.SpillError("write"); err != nil {
		t.Error("nil chaos injected an error")
	}
	var buf bytes.Buffer
	if w := c.WrapWriter(&buf); w != &buf {
		t.Error("nil chaos wrapped the writer")
	}
	if c.Stats() != (Stats{}) {
		t.Error("nil chaos has stats")
	}
}

func TestForcedPanicBudget(t *testing.T) {
	c := New(Config{Seed: 1, Panics: 2})
	panics := 0
	for i := 0; i < 10; i++ {
		func() {
			defer func() {
				if recover() != nil {
					panics++
				}
			}()
			c.SpillError("write")
		}()
	}
	if panics != 2 {
		t.Errorf("panicked %d times, want exactly 2", panics)
	}
	if got := c.Stats().Panics; got != 2 {
		t.Errorf("Stats().Panics = %d, want 2", got)
	}
}

func TestSolveDelayHonorsContext(t *testing.T) {
	c := New(Config{Seed: 1, SolveDelay: time.Minute, SolveDelayP: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	c.SolveDelay(ctx)
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("canceled delay still blocked for %v", d)
	}
	if c.Stats().SolveDelays != 1 {
		t.Errorf("delay not counted")
	}
}

func TestSlowWriterDeliversEverything(t *testing.T) {
	c := New(Config{Seed: 1, SlowWrite: time.Microsecond, SlowWriteChunk: 3, SlowWriteP: 1})
	var buf bytes.Buffer
	w := c.WrapWriter(&buf)
	if w == &buf {
		t.Fatal("p=1 slow write did not wrap")
	}
	payload := []byte("the whole response body, eventually")
	n, err := w.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf.Bytes(), payload) {
		t.Errorf("slow writer corrupted the body: %q", buf.Bytes())
	}
	if c.Stats().SlowWrites != 1 {
		t.Errorf("slow write not counted")
	}
}
