// Package chaos is the deterministic fault-injection layer of the service
// tier. A Chaos value, built from a compact spec string (ptrserved's -chaos
// flag), decides — from a seeded PRNG, so a run is exactly reproducible —
// when to inject each of four failure modes the daemon must survive:
//
//   - solve latency: an extra delay inside the solve path, turning a fast
//     corpus into a slow one so admission control and deadlines engage
//   - spill I/O errors: the store's disk writes and reads fail, exercising
//     the counted-not-fatal contract
//   - forced panics: a spill operation panics mid-flight (a simulated
//     crash), exercising the recovery boundaries
//   - slow-client writes: response bodies trickle out in small, delayed
//     chunks, exercising the server's tolerance for slow readers
//
// Every hook is safe on a nil *Chaos (it does nothing), so call sites need
// no guards, and every injected fault is counted so a harness can assert
// "the run saw the chaos it asked for".
package chaos

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config declares what to inject and how often. Probabilities are in
// [0, 1]; a zero probability (or zero delay/count) disables that mode.
type Config struct {
	// Seed drives every injection decision; two runs with the same seed
	// and the same call sequence inject identically.
	Seed int64
	// SolveDelay is added to a solve with probability SolveDelayP.
	SolveDelay  time.Duration
	SolveDelayP float64
	// SpillErrP is the probability a spill read/write fails.
	SpillErrP float64
	// Panics is the number of forced panics to inject into spill
	// operations (after the spill-error dice, so the two compose).
	Panics int
	// SlowWrite sleeps this long between SlowWriteChunk-byte slices of a
	// response body, with probability SlowWriteP per response.
	SlowWrite      time.Duration
	SlowWriteChunk int
	SlowWriteP     float64
}

// Stats counts the faults actually injected.
type Stats struct {
	SolveDelays int64 `json:"solve_delays"`
	SpillErrors int64 `json:"spill_errors"`
	Panics      int64 `json:"panics"`
	SlowWrites  int64 `json:"slow_writes"`
}

// Chaos injects faults per its Config. Safe for concurrent use; all
// methods are no-ops on a nil receiver.
type Chaos struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	panicsLeft  atomic.Int64
	solveDelays atomic.Int64
	spillErrors atomic.Int64
	panics      atomic.Int64
	slowWrites  atomic.Int64
}

// New builds a Chaos from cfg. A nil return for the zero config keeps the
// no-chaos path allocation- and branch-free at call sites.
func New(cfg Config) *Chaos {
	if cfg == (Config{Seed: cfg.Seed}) {
		return nil
	}
	if cfg.SlowWriteChunk <= 0 {
		cfg.SlowWriteChunk = 512
	}
	c := &Chaos{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	c.panicsLeft.Store(int64(cfg.Panics))
	return c
}

// ParseSpec builds a Config from the -chaos flag syntax: comma-separated
// key=value fields.
//
//	seed=N               PRNG seed (default 1)
//	solve-delay=DUR:P    delay DUR added to a solve with probability P
//	                     (":P" optional, default 1)
//	spill-err=P          spill I/O fails with probability P
//	panic=N              N forced panics in spill operations
//	slow-write=DUR:P     DUR sleep between response chunks, probability P
//
// Example: "seed=42,solve-delay=5ms:0.3,spill-err=0.2,panic=1".
func ParseSpec(spec string) (Config, error) {
	cfg := Config{Seed: 1}
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: field %q is not key=value", field)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("chaos: bad seed %q: %v", v, err)
			}
			cfg.Seed = n
		case "solve-delay":
			d, p, err := parseDurProb(v)
			if err != nil {
				return cfg, fmt.Errorf("chaos: bad solve-delay %q: %v", v, err)
			}
			cfg.SolveDelay, cfg.SolveDelayP = d, p
		case "spill-err":
			p, err := parseProb(v)
			if err != nil {
				return cfg, fmt.Errorf("chaos: bad spill-err %q: %v", v, err)
			}
			cfg.SpillErrP = p
		case "panic":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return cfg, fmt.Errorf("chaos: bad panic count %q", v)
			}
			cfg.Panics = n
		case "slow-write":
			d, p, err := parseDurProb(v)
			if err != nil {
				return cfg, fmt.Errorf("chaos: bad slow-write %q: %v", v, err)
			}
			cfg.SlowWrite, cfg.SlowWriteP = d, p
		default:
			return cfg, fmt.Errorf("chaos: unknown field %q (want seed, solve-delay, spill-err, panic, slow-write)", k)
		}
	}
	return cfg, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}

func parseDurProb(s string) (time.Duration, float64, error) {
	ds, ps, hasP := strings.Cut(s, ":")
	d, err := time.ParseDuration(ds)
	if err != nil {
		return 0, 0, err
	}
	if d < 0 {
		return 0, 0, fmt.Errorf("negative duration %v", d)
	}
	p := 1.0
	if hasP {
		if p, err = parseProb(ps); err != nil {
			return 0, 0, err
		}
	}
	return d, p, nil
}

// roll draws one uniform [0, 1) sample from the seeded stream.
func (c *Chaos) roll() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

// SolveDelay blocks for the configured injected latency (when the dice say
// so), returning early if ctx is done. Call it inside the solve path.
func (c *Chaos) SolveDelay(ctx context.Context) {
	if c == nil || c.cfg.SolveDelay <= 0 || c.cfg.SolveDelayP <= 0 {
		return
	}
	if c.roll() >= c.cfg.SolveDelayP {
		return
	}
	c.solveDelays.Add(1)
	t := time.NewTimer(c.cfg.SolveDelay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// SpillError is a store.SpillHook: it fails a spill operation with the
// configured probability, and burns the forced-panic budget first — a
// panic inside the spill path is the harshest crash the store must absorb.
func (c *Chaos) SpillError(op string) error {
	if c == nil {
		return nil
	}
	if c.panicsLeft.Load() > 0 && c.panicsLeft.Add(-1) >= 0 {
		c.panics.Add(1)
		panic(fmt.Sprintf("chaos: forced panic in spill %s", op))
	}
	if c.cfg.SpillErrP > 0 && c.roll() < c.cfg.SpillErrP {
		c.spillErrors.Add(1)
		return fmt.Errorf("chaos: injected spill %s error", op)
	}
	return nil
}

// WrapWriter wraps a response writer into one that trickles: with the
// configured probability, every chunk of SlowWriteChunk bytes is preceded
// by the SlowWrite delay. The decision is taken once per response.
func (c *Chaos) WrapWriter(w io.Writer) io.Writer {
	if c == nil || c.cfg.SlowWrite <= 0 || c.cfg.SlowWriteP <= 0 {
		return w
	}
	if c.roll() >= c.cfg.SlowWriteP {
		return w
	}
	c.slowWrites.Add(1)
	return &slowWriter{w: w, chunk: c.cfg.SlowWriteChunk, delay: c.cfg.SlowWrite}
}

// Stats returns the injected-fault counters so far.
func (c *Chaos) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		SolveDelays: c.solveDelays.Load(),
		SpillErrors: c.spillErrors.Load(),
		Panics:      c.panics.Load(),
		SlowWrites:  c.slowWrites.Load(),
	}
}

// slowWriter emits delay-then-chunk until the buffer drains.
type slowWriter struct {
	w     io.Writer
	chunk int
	delay time.Duration
}

func (sw *slowWriter) Write(p []byte) (int, error) {
	written := 0
	for len(p) > 0 {
		time.Sleep(sw.delay)
		n := min(sw.chunk, len(p))
		m, err := sw.w.Write(p[:n])
		written += m
		if err != nil {
			return written, err
		}
		p = p[n:]
	}
	return written, nil
}
