// Package store is the serving layer's content-addressed result cache. The
// key is the SHA-256 of (canonicalized source set, strategy, ABI, options,
// limits) — see Key — and the value is a solved, queryable export.Snapshot.
//
// The cache is an in-memory LRU under a byte-size budget with three extra
// behaviors a query daemon needs:
//
//   - Singleflight: N concurrent requests for the same key trigger exactly
//     one solve; the others wait on it and share the result.
//   - Cancellation without poisoning: the in-flight solve runs under its
//     own context that is canceled only when every waiting request has gone
//     away, and a canceled solve's partial result is never inserted — the
//     next request re-solves from scratch.
//   - Disk spill: with a spill directory configured, every solved snapshot
//     is also written as <dir>/<key>.json in the checked (checksummed)
//     container format via an atomic temp+fsync+rename, and a restarted
//     daemon warms from disk lazily on first access instead of re-solving.
//     Corrupt or truncated spill files are quarantined and counted — never
//     served, and never a boot failure (see spill.go and VerifySpill).
//
// All methods are safe for concurrent use.
package store

import (
	"container/list"
	"context"
	"errors"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/export"
	"repro/internal/fault"
)

// Stats is a point-in-time snapshot of the cache counters (served by the
// daemon's /varz endpoint).
type Stats struct {
	Hits          int64 `json:"hits"`           // served from memory
	Misses        int64 `json:"misses"`         // not in memory (disk or solve)
	Evictions     int64 `json:"evictions"`      // entries dropped by the byte budget
	Solves        int64 `json:"solves"`         // solve functions actually run
	InflightWaits int64 `json:"inflight_waits"` // requests that piggybacked on an in-flight solve
	Inflight      int64 `json:"inflight"`       // solves currently running (gauge)
	DiskHits      int64 `json:"disk_hits"`      // warmed from the spill directory
	DiskWrites    int64 `json:"disk_writes"`    // snapshots spilled to disk
	DiskErrors    int64 `json:"disk_errors"`    // spill I/O failures (non-fatal)
	Quarantined   int64 `json:"quarantined"`    // corrupt spill files moved aside
	Entries       int   `json:"entries"`        // resident entries (gauge)
	Bytes         int64 `json:"bytes"`          // resident size (gauge)
	BudgetBytes   int64 `json:"budget_bytes"`   // configured budget (0 = unlimited)
}

type entry struct {
	key  string
	snap *export.Snapshot
	size int64
}

// flight is one in-progress solve that concurrent requests share.
type flight struct {
	done    chan struct{} // closed when snap/err are set
	snap    *export.Snapshot
	err     error
	waiters int                // guarded by Store.mu
	cancel  context.CancelFunc // cancels the solve when waiters drops to 0
}

// Store is the content-addressed result cache.
type Store struct {
	budget   int64
	spillDir string

	mu      sync.Mutex
	entries map[string]*list.Element // key → element; element value is *entry
	lru     *list.List               // front = most recently used
	bytes   int64
	flights map[string]*flight

	hits, misses, evictions, solves  atomic.Int64
	inflightWaits, inflight          atomic.Int64
	diskHits, diskWrites, diskErrors atomic.Int64
	diskQuarantined                  atomic.Int64

	spillHook atomic.Value // SpillHook; see SetSpillHook
}

// New builds a store with the given byte budget (0 or negative = unlimited)
// and optional disk-spill directory ("" disables spilling). The directory
// is created if missing.
func New(budgetBytes int64, spillDir string) (*Store, error) {
	if spillDir != "" {
		if err := os.MkdirAll(spillDir, 0o755); err != nil {
			return nil, err
		}
	}
	return &Store{
		budget:   budgetBytes,
		spillDir: spillDir,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		flights:  make(map[string]*flight),
	}, nil
}

// Stats returns the current counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	entries, bytes := st.lru.Len(), st.bytes
	st.mu.Unlock()
	return Stats{
		Hits:          st.hits.Load(),
		Misses:        st.misses.Load(),
		Evictions:     st.evictions.Load(),
		Solves:        st.solves.Load(),
		InflightWaits: st.inflightWaits.Load(),
		Inflight:      st.inflight.Load(),
		DiskHits:      st.diskHits.Load(),
		DiskWrites:    st.diskWrites.Load(),
		DiskErrors:    st.diskErrors.Load(),
		Quarantined:   st.diskQuarantined.Load(),
		Entries:       entries,
		Bytes:         bytes,
		BudgetBytes:   st.budget,
	}
}

// Get returns the cached snapshot for key, consulting memory first and then
// the spill directory (a disk hit is promoted into memory). ok is false
// when the key has never been solved (or has been evicted everywhere).
func (st *Store) Get(key string) (*export.Snapshot, bool) {
	st.mu.Lock()
	if el, ok := st.entries[key]; ok {
		st.lru.MoveToFront(el)
		st.mu.Unlock()
		st.hits.Add(1)
		return el.Value.(*entry).snap, true
	}
	st.mu.Unlock()
	st.misses.Add(1)
	if snap := st.diskLoad(key); snap != nil {
		st.diskHits.Add(1)
		st.mu.Lock()
		st.insertLocked(key, snap)
		st.mu.Unlock()
		return snap, true
	}
	return nil, false
}

// Peek returns the in-memory snapshot for key without consulting disk. A
// hit refreshes the LRU position and counts as a hit; an absence counts
// nothing (the follow-up GetOrSolve will count the miss exactly once). The
// server's admission layer peeks before deciding whether a request needs a
// solve slot: a memory hit must never be queued or shed.
func (st *Store) Peek(key string) (*export.Snapshot, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.entries[key]
	if !ok {
		return nil, false
	}
	st.lru.MoveToFront(el)
	st.hits.Add(1)
	return el.Value.(*entry).snap, true
}

// Joinable reports whether a solve for key is already in flight, so a new
// request would piggyback on it instead of consuming solver capacity. The
// answer is advisory — the flight may finish between the check and the
// join — which is fine for admission control (the race only means one
// request briefly holds a slot it did not need).
func (st *Store) Joinable(key string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.flights[key]
	return ok
}

// GetOrSolve returns the snapshot for key, solving it at most once across
// all concurrent callers. cached is true when the value came from memory or
// disk without running solve in this call's singleflight group.
//
// The solve function runs on its own goroutine under a context that stays
// alive while at least one caller is still waiting; when every caller's ctx
// is done the solve is canceled. A canceled or failed solve is never
// inserted into the cache, so an abandoned request cannot poison later
// ones. Limit-tripped (incomplete-but-sound) snapshots ARE cached: the
// limits are part of the key, so the partial value is the correct value
// for that key.
func (st *Store) GetOrSolve(ctx context.Context, key string, solve func(context.Context) (*export.Snapshot, error)) (snap *export.Snapshot, cached bool, err error) {
	for {
		st.mu.Lock()
		if el, ok := st.entries[key]; ok {
			st.lru.MoveToFront(el)
			st.mu.Unlock()
			st.hits.Add(1)
			return el.Value.(*entry).snap, true, nil
		}
		if fl, ok := st.flights[key]; ok {
			fl.waiters++
			st.mu.Unlock()
			st.inflightWaits.Add(1)
			snap, err = st.wait(ctx, fl)
			if err != nil && ctx.Err() == nil && errors.Is(err, fault.ErrCanceled) {
				// The flight we joined was canceled by its other waiters,
				// but this caller is still live: start over (a fresh
				// flight will run the solve again).
				continue
			}
			return snap, false, err
		}
		st.misses.Add(1)
		solveCtx, cancel := context.WithCancel(context.Background())
		fl := &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
		st.flights[key] = fl
		st.mu.Unlock()

		st.inflight.Add(1)
		go st.run(key, fl, solveCtx, solve)
		snap, err = st.wait(ctx, fl)
		return snap, false, err
	}
}

// wait blocks until the flight finishes or ctx is done. A caller that gives
// up deregisters itself; the last one to leave cancels the solve.
func (st *Store) wait(ctx context.Context, fl *flight) (*export.Snapshot, error) {
	select {
	case <-fl.done:
		return fl.snap, fl.err
	case <-ctx.Done():
		st.mu.Lock()
		fl.waiters--
		if fl.waiters == 0 {
			fl.cancel()
		}
		st.mu.Unlock()
		return nil, fault.New(fault.KindCanceled, "cache", "", ctx.Err())
	}
}

// run executes one solve (checking the spill directory first) and publishes
// the outcome to the flight's waiters.
func (st *Store) run(key string, fl *flight, ctx context.Context, solve func(context.Context) (*export.Snapshot, error)) {
	defer st.inflight.Add(-1)
	defer fl.cancel() // release the context's resources

	var snap *export.Snapshot
	var err error
	fromDisk := false
	if snap = st.diskLoad(key); snap != nil {
		st.diskHits.Add(1)
		fromDisk = true
	} else {
		st.solves.Add(1)
		func() {
			defer fault.Recover("solve", &err)
			snap, err = solve(ctx)
		}()
		if err == nil && snap == nil {
			err = fault.Newf(fault.KindInternal, "cache", "", "solve returned neither snapshot nor error")
		}
	}

	st.mu.Lock()
	delete(st.flights, key)
	fl.snap, fl.err = snap, err
	if err == nil {
		st.insertLocked(key, snap)
	}
	st.mu.Unlock()

	// Spill before releasing the waiters: once a request sees the result,
	// the snapshot is already durable (fsynced), so a crash right after a
	// 200 cannot lose what the client was just told exists.
	if err == nil && !fromDisk {
		st.diskStore(key, snap)
	}
	close(fl.done)
}

// insertLocked adds (or refreshes) an entry and enforces the byte budget by
// evicting from the LRU tail. The caller holds st.mu.
func (st *Store) insertLocked(key string, snap *export.Snapshot) {
	if el, ok := st.entries[key]; ok {
		e := el.Value.(*entry)
		st.bytes += int64(snap.SizeBytes()) - e.size
		e.snap, e.size = snap, int64(snap.SizeBytes())
		st.lru.MoveToFront(el)
	} else {
		e := &entry{key: key, snap: snap, size: int64(snap.SizeBytes())}
		st.entries[key] = st.lru.PushFront(e)
		st.bytes += e.size
	}
	for st.budget > 0 && st.bytes > st.budget && st.lru.Len() > 0 {
		tail := st.lru.Back()
		e := tail.Value.(*entry)
		st.lru.Remove(tail)
		delete(st.entries, e.key)
		st.bytes -= e.size
		st.evictions.Add(1)
	}
}
