package store

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/export"
	"repro/internal/fault"
	"repro/pointsto"
)

func testSnap(tag string) *export.Snapshot {
	return &export.Snapshot{
		Version:  export.SnapshotVersion,
		Strategy: "common-initial-seq",
		ABI:      "lp64",
		Vars:     map[string][]string{"p": {tag}},
		Sets:     []export.PointsTo{{Cell: "p", Targets: []string{tag}}},
	}
}

func hexKey(c byte) string { return strings.Repeat(string(c), 64) }

func mustStore(t *testing.T, budget int64, dir string) *Store {
	t.Helper()
	st, err := New(budget, dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestKeyCanonicalization(t *testing.T) {
	a := pointsto.Source{Name: "a.c", Text: "int x;"}
	b := pointsto.Source{Name: "b.c", Text: "int y;"}
	cfg := pointsto.Config{}

	k1 := Key([]pointsto.Source{a, b}, cfg)
	k2 := Key([]pointsto.Source{b, a}, cfg)
	if k1 != k2 {
		t.Error("source order must not change the key")
	}
	if !ValidKey(k1) {
		t.Errorf("Key output %q is not a valid key", k1)
	}
	if Key([]pointsto.Source{a}, cfg) == Key([]pointsto.Source{{Name: "a.c", Text: "int z;"}}, cfg) {
		t.Error("text change must change the key")
	}
	if k1 == Key([]pointsto.Source{a, b}, pointsto.Config{Strategy: pointsto.Offsets}) {
		t.Error("strategy must be part of the key")
	}
	if k1 == Key([]pointsto.Source{a, b}, pointsto.Config{Limits: pointsto.Limits{MaxSteps: 10}}) {
		t.Error("limits must be part of the key")
	}
	if k1 == Key([]pointsto.Source{a, b}, pointsto.Config{ABI: "ilp32"}) {
		t.Error("ABI must be part of the key")
	}
	// Results don't depend on timeout/parallelism, so keys must not either.
	if k1 != Key([]pointsto.Source{a, b}, pointsto.Config{Timeout: time.Second, Parallelism: 4}) {
		t.Error("timeout/parallelism must not change the key")
	}
	// Length-prefixing: moving a boundary between name and text must matter.
	if Key([]pointsto.Source{{Name: "a.cx", Text: "y"}}, cfg) == Key([]pointsto.Source{{Name: "a.c", Text: "xy"}}, cfg) {
		t.Error("name/text boundary must be unambiguous")
	}

	if ValidKey("short") || ValidKey(strings.Repeat("Z", 64)) || ValidKey(strings.Repeat("a", 63)+"/") {
		t.Error("malformed keys must be rejected")
	}
}

func TestGetOrSolveCachesAndCounts(t *testing.T) {
	st := mustStore(t, 0, "")
	var solves atomic.Int64
	solve := func(context.Context) (*export.Snapshot, error) {
		solves.Add(1)
		return testSnap("g"), nil
	}
	key := hexKey('a')

	snap, cached, err := st.GetOrSolve(context.Background(), key, solve)
	if err != nil || cached || snap == nil {
		t.Fatalf("first call: snap=%v cached=%v err=%v", snap, cached, err)
	}
	snap2, cached2, err := st.GetOrSolve(context.Background(), key, solve)
	if err != nil || !cached2 || snap2 != snap {
		t.Fatalf("second call: cached=%v err=%v same=%v", cached2, err, snap2 == snap)
	}
	if got := solves.Load(); got != 1 {
		t.Errorf("solve ran %d times, want 1", got)
	}
	s := st.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Solves != 1 || s.Entries != 1 || s.Bytes <= 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSingleflight(t *testing.T) {
	st := mustStore(t, 0, "")
	const n = 32
	var solves atomic.Int64
	arrived := make(chan struct{}, n)
	release := make(chan struct{})
	solve := func(context.Context) (*export.Snapshot, error) {
		solves.Add(1)
		<-release
		return testSnap("sf"), nil
	}
	key := hexKey('b')

	var wg sync.WaitGroup
	snaps := make([]*export.Snapshot, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived <- struct{}{}
			snap, _, err := st.GetOrSolve(context.Background(), key, solve)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
			}
			snaps[i] = snap
		}(i)
	}
	for i := 0; i < n; i++ {
		<-arrived
	}
	close(release)
	wg.Wait()

	if got := solves.Load(); got != 1 {
		t.Fatalf("solve ran %d times under %d concurrent requests, want 1", got, n)
	}
	for i := 1; i < n; i++ {
		if snaps[i] != snaps[0] {
			t.Fatalf("request %d got a different snapshot", i)
		}
	}
}

func TestCanceledSolveIsNotCached(t *testing.T) {
	st := mustStore(t, 0, "")
	var solves atomic.Int64
	started := make(chan struct{})
	solve := func(ctx context.Context) (*export.Snapshot, error) {
		solves.Add(1)
		if solves.Load() == 1 {
			close(started)
			<-ctx.Done() // simulate a long solve interrupted mid-way
			return nil, fault.New(fault.KindCanceled, "solve", "", ctx.Err())
		}
		return testSnap("ok"), nil
	}
	key := hexKey('c')

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := st.GetOrSolve(ctx, key, solve)
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("canceled request returned %v, want ErrCanceled", err)
	}

	// The canceled partial result must not have been cached: the next
	// request re-solves and succeeds.
	snap, cached, err := st.GetOrSolve(context.Background(), key, solve)
	if err != nil || cached || snap == nil {
		t.Fatalf("after cancel: snap=%v cached=%v err=%v", snap, cached, err)
	}
	if got := solves.Load(); got != 2 {
		t.Errorf("solve ran %d times, want 2 (cancel must not poison the cache)", got)
	}
	if s := st.Stats(); s.Entries != 1 {
		t.Errorf("entries = %d, want 1", s.Entries)
	}
}

// TestLateJoinerSurvivesAbandonedFlight drives the narrow race the retry
// loop in GetOrSolve exists for: A (the sole waiter) abandons its flight,
// which cancels the solve, and B joins that flight in the window between
// the cancellation and the canceled result being published. B must
// transparently retry with a fresh solve instead of inheriting A's
// cancellation.
func TestLateJoinerSurvivesAbandonedFlight(t *testing.T) {
	st := mustStore(t, 0, "")
	var solves atomic.Int64
	started := make(chan struct{})
	sawCancel := make(chan struct{})
	proceed := make(chan struct{})
	solve := func(ctx context.Context) (*export.Snapshot, error) {
		if solves.Add(1) == 1 {
			close(started)
			<-ctx.Done()
			close(sawCancel)
			<-proceed // hold the dying flight unpublished until B has joined it
			return nil, fault.New(fault.KindCanceled, "solve", "", ctx.Err())
		}
		return testSnap("retry"), nil
	}
	key := hexKey('d')

	actx, acancel := context.WithCancel(context.Background())
	aerr := make(chan error, 1)
	go func() {
		_, _, err := st.GetOrSolve(actx, key, solve)
		aerr <- err
	}()
	<-started
	acancel() // A abandons; as the only waiter this cancels the solve
	<-sawCancel
	if err := <-aerr; !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("A returned %v, want ErrCanceled", err)
	}

	// B joins the canceled-but-not-yet-published flight.
	berr := make(chan error, 1)
	var bsnap *export.Snapshot
	go func() {
		snap, _, err := st.GetOrSolve(context.Background(), key, solve)
		bsnap = snap
		berr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().InflightWaits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("B never joined the in-flight solve")
		}
		time.Sleep(time.Millisecond)
	}
	close(proceed) // the dying flight now publishes its canceled error

	if err := <-berr; err != nil {
		t.Fatalf("B returned %v, want success via transparent retry", err)
	}
	if bsnap == nil || bsnap.Vars["p"][0] != "retry" {
		t.Fatalf("B got %+v", bsnap)
	}
	if got := solves.Load(); got != 2 {
		t.Errorf("solve ran %d times, want 2 (abandoned flight + B's retry)", got)
	}
}

func TestEvictionByByteBudget(t *testing.T) {
	big := testSnap("x")
	budget := int64(2*big.SizeBytes() + big.SizeBytes()/2) // room for two entries, not three
	st := mustStore(t, budget, "")
	solve := func(tag string) func(context.Context) (*export.Snapshot, error) {
		return func(context.Context) (*export.Snapshot, error) { return testSnap(tag), nil }
	}
	k1, k2, k3 := hexKey('1'), hexKey('2'), hexKey('3')
	ctx := context.Background()
	st.GetOrSolve(ctx, k1, solve("1"))
	st.GetOrSolve(ctx, k2, solve("2"))
	st.GetOrSolve(ctx, k1, solve("1")) // touch k1 so k2 is the LRU victim
	st.GetOrSolve(ctx, k3, solve("3"))

	if _, ok := st.Get(k2); ok {
		t.Error("k2 should have been evicted (LRU under byte budget)")
	}
	if _, ok := st.Get(k1); !ok {
		t.Error("k1 (recently used) should have survived")
	}
	if s := st.Stats(); s.Evictions == 0 || s.Bytes > budget {
		t.Errorf("stats = %+v (want evictions > 0, bytes <= %d)", s, budget)
	}
}

func TestDiskSpillWarmsRestart(t *testing.T) {
	dir := t.TempDir()
	key := Key([]pointsto.Source{{Name: "a.c", Text: "int *p, x;"}}, pointsto.Config{})
	var solves atomic.Int64
	solve := func(context.Context) (*export.Snapshot, error) {
		solves.Add(1)
		return testSnap("spill"), nil
	}

	st1 := mustStore(t, 0, dir)
	if _, _, err := st1.GetOrSolve(context.Background(), key, solve); err != nil {
		t.Fatal(err)
	}
	if s := st1.Stats(); s.DiskWrites != 1 {
		t.Fatalf("disk writes = %d, want 1", s.DiskWrites)
	}

	// A "restarted daemon": fresh store, same spill directory.
	st2 := mustStore(t, 0, dir)
	snap, cached, err := st2.GetOrSolve(context.Background(), key, solve)
	if err != nil || snap == nil {
		t.Fatalf("warm start: snap=%v cached=%v err=%v", snap, cached, err)
	}
	if got := solves.Load(); got != 1 {
		t.Errorf("solve ran %d times, want 1 (restart must warm from disk)", got)
	}
	if s := st2.Stats(); s.DiskHits != 1 {
		t.Errorf("disk hits = %d, want 1", s.DiskHits)
	}
	if snap.Vars["p"][0] != "spill" {
		t.Errorf("snapshot content lost in spill round trip: %+v", snap)
	}

	// Get (query path) also warms from disk on a third fresh store.
	st3 := mustStore(t, 0, dir)
	if _, ok := st3.Get(key); !ok {
		t.Error("Get should find the spilled snapshot")
	}
}

func TestSolvePanicBecomesInternalFault(t *testing.T) {
	st := mustStore(t, 0, "")
	_, _, err := st.GetOrSolve(context.Background(), hexKey('e'), func(context.Context) (*export.Snapshot, error) {
		panic("solver bug")
	})
	if !errors.Is(err, fault.ErrInternal) {
		t.Fatalf("panicking solve returned %v, want ErrInternal", err)
	}
	if s := st.Stats(); s.Entries != 0 {
		t.Errorf("failed solve must not be cached; entries = %d", s.Entries)
	}
	// The store must still be usable for the same key afterwards.
	snap, _, err := st.GetOrSolve(context.Background(), hexKey('e'), func(context.Context) (*export.Snapshot, error) {
		return testSnap("recovered"), nil
	})
	if err != nil || snap == nil {
		t.Fatalf("after panic: %v", err)
	}
}

func TestSolveErrorPropagatesToAllWaiters(t *testing.T) {
	st := mustStore(t, 0, "")
	release := make(chan struct{})
	boom := fmt.Errorf("parse exploded")
	solve := func(context.Context) (*export.Snapshot, error) {
		<-release
		return nil, fault.New(fault.KindParse, "parse", "a.c:1", boom)
	}
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, _, err := st.GetOrSolve(context.Background(), hexKey('f'), solve)
			errs <- err
		}()
	}
	for st.Stats().InflightWaits < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	for i := 0; i < n; i++ {
		if err := <-errs; !errors.Is(err, fault.ErrParse) || !errors.Is(err, boom) {
			t.Fatalf("waiter got %v, want the shared parse fault", err)
		}
	}
	if s := st.Stats(); s.Solves != 1 || s.Entries != 0 {
		t.Errorf("stats = %+v (want 1 solve, 0 entries)", s)
	}
}
