package store

import (
	"io"
	"os"
	"path/filepath"
)

// AtomicWriteFile publishes a file so that no reader — concurrent or
// post-crash — can ever observe a partial write: the content goes to a
// temp file in the target's directory, is flushed to stable storage with
// fsync, and is renamed over path (rename within one directory is atomic
// on POSIX filesystems). The directory itself is then fsynced so the new
// name survives a crash too. On any error the temp file is removed and the
// previous content of path, if any, is left untouched.
//
// Every snapshot-spill write in this package goes through this helper;
// nothing in the store writes a spill file in place.
func AtomicWriteFile(path string, perm os.FileMode, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), perm); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Persist the rename: without the directory fsync a crash can forget
	// the new directory entry even though the data blocks are on disk.
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
