package store

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/export"
)

// writeSpill spills one good snapshot through a throwaway store and returns
// its file path.
func writeSpill(t *testing.T, dir, key, tag string) string {
	t.Helper()
	st := mustStore(t, 0, dir)
	if _, _, err := st.GetOrSolve(context.Background(), key, func(context.Context) (*export.Snapshot, error) {
		return testSnap(tag), nil
	}); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, key+spillExt)
}

// corruptions are the adversarial spill-file mutations a crash (or a bad
// disk) can produce. Each takes a valid spill file and damages it in place.
var corruptions = map[string]func(t *testing.T, path string){
	"truncated": func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	},
	"bit-flipped": func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	},
	"zero-length": func(t *testing.T, path string) {
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	},
	"wrong-version": func(t *testing.T, path string) {
		bad := testSnap("stale")
		bad.Version = export.SnapshotVersion + 7
		if err := AtomicWriteFile(path, 0o644, func(w io.Writer) error {
			return export.WriteSnapshotChecked(w, bad)
		}); err != nil {
			t.Fatal(err)
		}
	},
}

// TestWarmRestartQuarantinesAdversarialSpill builds a spill directory with
// one good snapshot and every corruption, then boots a fresh store over it:
// VerifySpill must quarantine exactly the corrupt files (counter included),
// the good one must still answer, and nothing may panic or fail the boot.
func TestWarmRestartQuarantinesAdversarialSpill(t *testing.T) {
	dir := t.TempDir()
	goodKey := hexKey('a')
	writeSpill(t, dir, goodKey, "good")

	badKeys := make(map[string]string, len(corruptions))
	i := byte('b')
	for name, damage := range corruptions {
		key := hexKey(i)
		i++
		damage(t, writeSpill(t, dir, key, name))
		badKeys[name] = key
	}
	// Litter from a crash mid-write.
	tmpLitter := filepath.Join(dir, goodKey+spillExt+".tmp123")
	if err := os.WriteFile(tmpLitter, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	st := mustStore(t, 0, dir) // the "restarted daemon"
	res, err := st.VerifySpill()
	if err != nil {
		t.Fatalf("VerifySpill must not fail the boot: %v", err)
	}
	if res.Quarantined != len(corruptions) {
		t.Errorf("quarantined %d files, want %d", res.Quarantined, len(corruptions))
	}
	if res.Checked != 1 {
		t.Errorf("checked %d good files, want 1", res.Checked)
	}
	if res.TempCleaned != 1 {
		t.Errorf("cleaned %d temp files, want 1", res.TempCleaned)
	}
	if got := st.Stats().Quarantined; got != int64(len(corruptions)) {
		t.Errorf("Stats().Quarantined = %d, want %d", got, len(corruptions))
	}

	// The good snapshot still serves; the corrupt ones re-solve.
	if snap, ok := st.Get(goodKey); !ok || snap.Vars["p"][0] != "good" {
		t.Errorf("good spill file must survive the sweep: ok=%v", ok)
	}
	for name, key := range badKeys {
		if _, ok := st.Get(key); ok {
			t.Errorf("%s: corrupt snapshot was served", name)
		}
		if _, err := os.Stat(filepath.Join(dir, key+spillExt)); !os.IsNotExist(err) {
			t.Errorf("%s: corrupt file still in the spill directory", name)
		}
		if _, err := os.Stat(filepath.Join(dir, quarantineDirName, key+spillExt)); err != nil {
			t.Errorf("%s: corrupt file not preserved in quarantine: %v", name, err)
		}
	}
}

// TestLazyLoadQuarantines: without a boot sweep, the first read of a
// corrupt spill file quarantines it and falls through to a re-solve.
func TestLazyLoadQuarantines(t *testing.T) {
	dir := t.TempDir()
	key := hexKey('c')
	path := writeSpill(t, dir, key, "ok")
	corruptions["bit-flipped"](t, path)

	st := mustStore(t, 0, dir)
	if _, ok := st.Get(key); ok {
		t.Fatal("corrupt snapshot was served")
	}
	if got := st.Stats().Quarantined; got != 1 {
		t.Errorf("Quarantined = %d, want 1", got)
	}
	// Second read: the file is gone (quarantined), so a solve runs and
	// re-spills a fresh, valid snapshot.
	snap, cached, err := st.GetOrSolve(context.Background(), key, func(context.Context) (*export.Snapshot, error) {
		return testSnap("resolved"), nil
	})
	if err != nil || cached {
		t.Fatalf("re-solve after quarantine: cached=%v err=%v", cached, err)
	}
	if snap.Vars["p"][0] != "resolved" {
		t.Errorf("unexpected snapshot: %+v", snap)
	}
}

// TestSpillHookInjection: an injected write error (or panic) is counted and
// non-fatal; the poisoned write leaves no file behind, and removing the
// hook restores spilling.
func TestSpillHookInjection(t *testing.T) {
	dir := t.TempDir()
	st := mustStore(t, 0, dir)
	key := hexKey('d')

	st.SetSpillHook(func(op string) error {
		if op == "write" {
			return errors.New("injected: disk on fire")
		}
		return nil
	})
	if _, _, err := st.GetOrSolve(context.Background(), key, func(context.Context) (*export.Snapshot, error) {
		return testSnap("x"), nil
	}); err != nil {
		t.Fatalf("injected spill error must not fail the solve: %v", err)
	}
	if s := st.Stats(); s.DiskErrors != 1 || s.DiskWrites != 0 {
		t.Errorf("stats after injected write error: %+v", s)
	}
	if _, err := os.Stat(filepath.Join(dir, key+spillExt)); !os.IsNotExist(err) {
		t.Error("failed spill left a file behind")
	}

	// A hook that panics simulates a crash mid-write; it must be recovered
	// and counted, never propagated.
	st.SetSpillHook(func(op string) error {
		if op == "write" {
			panic("injected: kernel panic")
		}
		return nil
	})
	if _, _, err := st.GetOrSolve(context.Background(), hexKey('e'), func(context.Context) (*export.Snapshot, error) {
		return testSnap("y"), nil
	}); err != nil {
		t.Fatalf("injected spill panic must not fail the solve: %v", err)
	}
	if s := st.Stats(); s.DiskErrors != 2 {
		t.Errorf("DiskErrors = %d, want 2", s.DiskErrors)
	}

	// Injected read errors are I/O trouble, not corruption: no quarantine.
	st2 := mustStore(t, 0, dir)
	writeSpill(t, dir, hexKey('f'), "z")
	st2.SetSpillHook(func(op string) error { return fmt.Errorf("injected %s error", op) })
	if _, ok := st2.Get(hexKey('f')); ok {
		t.Error("injected read error should make the load miss")
	}
	if s := st2.Stats(); s.Quarantined != 0 || s.DiskErrors != 1 {
		t.Errorf("injected read error must not quarantine: %+v", s)
	}
	st2.SetSpillHook(nil)
	if _, ok := st2.Get(hexKey('f')); !ok {
		t.Error("with the hook removed the spilled snapshot must load")
	}
}

// TestAtomicWriteFileNeverTears: a writer that fails mid-stream leaves the
// previous file content fully intact and no temp litter.
func TestAtomicWriteFileNeverTears(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "victim")
	if err := AtomicWriteFile(path, 0o644, func(w io.Writer) error {
		_, err := io.WriteString(w, "generation-1")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := AtomicWriteFile(path, 0o644, func(w io.Writer) error {
		io.WriteString(w, "generation-2-partial")
		return errors.New("crash mid-write")
	})
	if err == nil {
		t.Fatal("failed write reported success")
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil || string(data) != "generation-1" {
		t.Errorf("previous content damaged: %q, %v", data, rerr)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp litter left behind: %s", e.Name())
		}
	}
}
