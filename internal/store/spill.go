package store

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/export"
	"repro/internal/fault"
)

// This file is the crash-safe half of the store: every snapshot reaches
// disk through AtomicWriteFile in the checked (checksummed) container
// format, and every read verifies the checksum before trusting a byte. A
// file that fails verification — truncated, bit-flipped, zero-length,
// wrong wire version — is quarantined into <spillDir>/quarantine/ and
// counted, never served and never allowed to fail a warm restart. I/O
// errors (as opposed to corruption) leave the file alone and bump
// DiskErrors instead: a flaky disk should not destroy snapshots that may
// read fine on retry.

// quarantineDirName is the subdirectory corrupt spill files are moved to.
// It can never collide with a snapshot: spill files are named by 64-hex
// keys.
const quarantineDirName = "quarantine"

// spillExt is the spill-file suffix (the payload is the checked container;
// the extension predates it and is kept for warm-restart compatibility).
const spillExt = ".json"

// SpillHook intercepts spill I/O for deterministic fault injection
// (internal/chaos wires one behind ptrserved's -chaos flag). It is
// consulted with the operation ("read" or "write") before the real I/O
// runs; a non-nil return simulates an I/O error, and the hook may panic to
// simulate a crash mid-operation — both paths are recovered and counted as
// DiskErrors, never propagated to a request.
type SpillHook func(op string) error

// SetSpillHook installs h (nil removes it). Concurrency-safe, but meant to
// be set once at boot before the store serves traffic.
func (st *Store) SetSpillHook(h SpillHook) {
	st.spillHook.Store(h) // the typed nil is stored as "no hook"
}

func (st *Store) hook(op string) error {
	v := st.spillHook.Load()
	if v == nil {
		return nil
	}
	h := v.(SpillHook)
	if h == nil {
		return nil
	}
	return h(op)
}

// spillPath maps a key to its spill file; empty when spilling is off or the
// key is malformed (malformed keys must never touch the filesystem).
func (st *Store) spillPath(key string) string {
	if st.spillDir == "" || !ValidKey(key) {
		return ""
	}
	return filepath.Join(st.spillDir, key+spillExt)
}

// diskLoad reads a spilled snapshot; nil when spilling is off, the file is
// absent, unreadable (counted) or corrupt (quarantined and counted). The
// daemon then just re-solves.
func (st *Store) diskLoad(key string) *export.Snapshot {
	path := st.spillPath(key)
	if path == "" {
		return nil
	}
	snap, err := st.readSpillFile(path, true)
	switch {
	case err == nil:
		return snap
	case errors.Is(err, fs.ErrNotExist):
		return nil
	case isCorrupt(err):
		st.quarantine(path)
		return nil
	default:
		st.diskErrors.Add(1)
		return nil
	}
}

// readSpillFile opens and verifies one spill file. injected selects whether
// the fault-injection hook runs (the boot-time verification sweep bypasses
// it so injected read errors cannot cause false quarantines). A panic
// anywhere in the read — including one injected by the hook — comes back as
// an error, not a crash.
func (st *Store) readSpillFile(path string, injected bool) (snap *export.Snapshot, err error) {
	defer fault.Recover("spill-read", &err)
	if injected {
		if herr := st.hook("read"); herr != nil {
			return nil, herr
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return export.ReadSnapshotChecked(f)
}

// isCorrupt reports whether err means "the bytes are bad" (quarantine) as
// opposed to "the read failed" (retryable; leave the file alone).
func isCorrupt(err error) bool {
	var ce *export.CorruptError
	return errors.As(err, &ce)
}

// quarantine moves a corrupt spill file aside (into the quarantine
// subdirectory, preserving the name for postmortems) and counts it. If the
// move itself fails the file is deleted instead — a corrupt snapshot must
// never be left where a future restart would trust it again.
func (st *Store) quarantine(path string) {
	qdir := filepath.Join(st.spillDir, quarantineDirName)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(path, filepath.Join(qdir, filepath.Base(path))) == nil {
			st.diskQuarantined.Add(1)
			return
		}
	}
	if err := os.Remove(path); err == nil || errors.Is(err, fs.ErrNotExist) {
		st.diskQuarantined.Add(1)
		return
	}
	// Could neither move nor remove it; at least record the I/O trouble.
	st.diskErrors.Add(1)
}

// diskStore spills a snapshot through AtomicWriteFile in the checked
// container format, so a crash mid-write can never leave a torn file that
// a restarted daemon would trust. Spill failures (real or injected, error
// or panic) are counted, not fatal: the cache keeps serving from memory.
func (st *Store) diskStore(key string, snap *export.Snapshot) {
	path := st.spillPath(key)
	if path == "" {
		return
	}
	var err error
	func() {
		defer fault.Recover("spill-write", &err)
		if herr := st.hook("write"); herr != nil {
			err = herr
			return
		}
		err = AtomicWriteFile(path, 0o644, func(w io.Writer) error {
			return export.WriteSnapshotChecked(w, snap)
		})
	}()
	if err != nil {
		st.diskErrors.Add(1)
		return
	}
	st.diskWrites.Add(1)
}

// VerifyResult summarizes a VerifySpill sweep.
type VerifyResult struct {
	Checked     int // spill files whose checksum was verified
	Quarantined int // corrupt files moved aside
	TempCleaned int // leftover temp files from interrupted writes removed
}

// VerifySpill sweeps the spill directory at boot: every snapshot file is
// checksum-verified, corrupt or truncated ones are quarantined (bumping the
// DiskQuarantined counter), and temp files abandoned by a crash mid-write
// are deleted. The sweep never fails the boot on bad content — only on
// being unable to list the directory at all. With spilling disabled it is
// a no-op.
func (st *Store) VerifySpill() (VerifyResult, error) {
	var res VerifyResult
	if st.spillDir == "" {
		return res, nil
	}
	entries, err := os.ReadDir(st.spillDir)
	if err != nil {
		return res, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue // the quarantine subdirectory, or operator clutter
		}
		path := filepath.Join(st.spillDir, name)
		key, isSnap := strings.CutSuffix(name, spillExt)
		if !isSnap || !ValidKey(key) {
			// A crash between CreateTemp and rename leaves *.tmp* litter;
			// anything else unrecognized is left untouched.
			if strings.Contains(name, ".tmp") {
				if os.Remove(path) == nil {
					res.TempCleaned++
				}
			}
			continue
		}
		if _, err := st.readSpillFile(path, false); err != nil {
			if isCorrupt(err) {
				st.quarantine(path)
				res.Quarantined++
			} else {
				st.diskErrors.Add(1)
			}
			continue
		}
		res.Checked++
	}
	return res, nil
}
