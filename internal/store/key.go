package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"repro/pointsto"
)

// keyVersion is folded into every key so a change to the canonicalization
// (or to the snapshot semantics it addresses) invalidates old disk spills
// wholesale instead of aliasing them.
const keyVersion = "ptrcache/1"

// Key computes the content address of one analysis request: the SHA-256 of
// the canonicalized source set plus every configuration input that can
// change the solved fixpoint — strategy, ABI, front-end/solver options and
// resource limits.
//
// Canonicalization: sources are sorted by (name, text) and length-prefixed,
// so neither presentation order nor embedded separators can alias two
// distinct programs. Limits are part of the key because a limit-tripped
// report is a different (partial) value than the full fixpoint. Deliberately
// excluded: Timeout (canceled runs are never cached), Config.Parallelism,
// Options.Parallelism (the intra-solve wave executor is byte-identical to
// the sequential solver at every worker count), NoMemoization,
// DemandBudget (none changes the result, only how fast it arrives — a
// budget trip reroutes to the same exhaustive fixpoint), and
// NoPrepass/TrackPeakMem (the offline constraint-reduction prepass and its
// hash-consed set pool are observable only through SolverStats, so the
// ablation solves to the same facts it would cache). The
// exclusion also means a warm session's key equals the limit-free
// /v1/analyze key for the same sources, so the two tiers share addresses.
//
// The incremental layer reuses these keys as graph-residency addresses: an
// /v1/analyze response's key is what a later request passes as "base" to
// resume from that solve's captured constraint graph. Graph identity is
// narrower than key identity — NoMemoization and NoCycleElim participate in
// a graph's captured config (incr.Config) even though they are excluded
// here, and Limits/FlagMisuse configs never capture graphs at all — so the
// server re-checks the captured config on every resume rather than trusting
// the key alone.
func Key(sources []pointsto.Source, cfg pointsto.Config) string {
	h := sha256.New()
	io.WriteString(h, keyVersion)

	srcs := append([]pointsto.Source(nil), sources...)
	sort.Slice(srcs, func(i, j int) bool {
		if srcs[i].Name != srcs[j].Name {
			return srcs[i].Name < srcs[j].Name
		}
		return srcs[i].Text < srcs[j].Text
	})
	for _, s := range srcs {
		fmt.Fprintf(h, "\nsrc %d %d\n", len(s.Name), len(s.Text))
		io.WriteString(h, s.Name)
		io.WriteString(h, s.Text)
	}

	abi := cfg.ABI
	if abi == "" {
		abi = "lp64"
	}
	o := cfg.Options
	fmt.Fprintf(h, "\ncfg %s %s %t %t %t %t %t",
		cfg.Strategy, abi,
		o.ModelMainArgs, o.NoLibSummaries, o.CloneAllocWrappers, o.NoPtrArithSmear, o.FlagMisuse)
	fmt.Fprintf(h, "\nlim %d %d %d", cfg.Limits.MaxSteps, cfg.Limits.MaxFacts, cfg.Limits.MaxCells)

	return hex.EncodeToString(h.Sum(nil))
}

// ValidKey reports whether s has the shape of a Key result (64 hex digits).
// The server rejects malformed keys before they reach the spill directory's
// file namespace.
func ValidKey(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}
