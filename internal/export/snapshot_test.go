package export

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/pointsto"
)

// snapshotProgram is a fixed program exercising all the snapshot's fields:
// named points-to sets, a heap cell, fields, and a function pointer.
const snapshotProgram = `
struct node { struct node *next; int *val; };
int g;
int *gp = &g;
void touch(struct node *n) { n->val = &g; }
void (*fp)(struct node *) = touch;
int main(void) {
	struct node a, b;
	a.next = &b;
	b.next = &a;
	touch(&a);
	fp(&b);
	return *a.val + *gp;
}
`

func solveSnapshot(t *testing.T, cfg pointsto.Config) *Snapshot {
	t.Helper()
	rep, err := pointsto.Analyze([]pointsto.Source{{Name: "snap.c", Text: snapshotProgram}}, cfg)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return NewSnapshot(rep, cfg.ABI)
}

// TestSnapshotRoundTrip pins the wire format: serialize → deserialize →
// deep-equal, for every strategy, plus a limit-tripped (incomplete) run.
// The store's disk spill depends on this being stable.
func TestSnapshotRoundTrip(t *testing.T) {
	cfgs := []pointsto.Config{
		{Strategy: pointsto.CIS},
		{Strategy: pointsto.CollapseAlways},
		{Strategy: pointsto.CollapseOnCast},
		{Strategy: pointsto.Offsets, ABI: "ilp32"},
		{Strategy: pointsto.CIS, Limits: pointsto.Limits{MaxSteps: 3}},
	}
	for _, cfg := range cfgs {
		snap := solveSnapshot(t, cfg)
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, snap); err != nil {
			t.Fatalf("%s: write: %v", cfg.Strategy, err)
		}
		got, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", cfg.Strategy, err)
		}
		if !reflect.DeepEqual(snap, got) {
			t.Errorf("%s: round trip changed the snapshot\nwrote: %+v\nread:  %+v", cfg.Strategy, snap, got)
		}
		if cfg.Limits.MaxSteps > 0 && got.Incomplete == nil {
			t.Errorf("%s: limit-tripped run lost its incomplete marker", cfg.Strategy)
		}
	}
}

// TestSnapshotGolden pins the serialized bytes against a checked-in golden
// file, so accidental wire-format drift (renamed fields, changed ordering)
// is caught even when both writer and reader drift together. Regenerate
// after an intentional format change with:
//
//	UPDATE_SNAPSHOT_GOLDEN=1 go test ./internal/export -run TestSnapshotGolden
func TestSnapshotGolden(t *testing.T) {
	snap := solveSnapshot(t, pointsto.Config{Strategy: pointsto.CIS})
	snap.DurationNS = 0 // wall time is machine-dependent; everything else is deterministic
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatalf("write: %v", err)
	}
	golden := filepath.Join("testdata", "snapshot_golden.json")
	if os.Getenv("UPDATE_SNAPSHOT_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_SNAPSHOT_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("snapshot wire format drifted from %s\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}

func TestSnapshotQueries(t *testing.T) {
	snap := solveSnapshot(t, pointsto.Config{})
	if !snap.HasVar("gp") || !snap.HasVar("main") {
		t.Fatalf("expected gp and main to be queryable; names: %v", snap.SortedVarNames())
	}
	if got := snap.PointsTo("gp"); len(got) != 1 || got[0] != "g" {
		t.Errorf("gp points to %v, want [g]", got)
	}
	if snap.PointsTo("no-such-variable") != nil {
		t.Error("unknown variable should yield nil")
	}
	// a.next = &b and fp(&b) passes &b to touch's n: n and a.next share b.
	if !snap.MayAlias("gp", "gp") {
		t.Error("gp must alias itself")
	}
	if snap.MayAlias("gp", "fp") {
		t.Error("gp (data pointer) must not alias fp (function pointer)")
	}
	if snap.MayAlias("gp", "no-such-variable") {
		t.Error("unknown names never alias")
	}
}

// TestSnapshotMatchesReport cross-checks the snapshot's answers against the
// live report on a corpus-sized program: the snapshot must answer PointsTo
// and MayAlias exactly as the report it captured.
func TestSnapshotMatchesReport(t *testing.T) {
	rep, err := pointsto.Analyze([]pointsto.Source{{Name: "snap.c", Text: snapshotProgram}}, pointsto.Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := NewSnapshot(rep, "")
	names := rep.Names()
	for _, name := range names {
		want := rep.PointsTo(name)
		got := snap.PointsTo(name)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("PointsTo(%q): snapshot %v, report %v", name, got, want)
		}
	}
	for _, a := range names {
		for _, b := range names {
			if want, got := rep.MayAlias(a, b), snap.MayAlias(a, b); want != got {
				t.Errorf("MayAlias(%q, %q): snapshot %v, report %v", a, b, got, want)
			}
		}
	}
	if strings.TrimSpace(snap.Strategy) == "" || snap.ABI != "lp64" {
		t.Errorf("summary fields not captured: %+v", snap)
	}
}

func TestSnapshotVersionCheck(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("version 99 should be rejected")
	}
	if _, err := ReadSnapshot(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage should be rejected")
	}
}
