package export

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/pointsto"
)

func TestCheckedRoundTrip(t *testing.T) {
	snap := solveSnapshot(t, pointsto.Config{})
	var buf bytes.Buffer
	if err := WriteSnapshotChecked(&buf, snap); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !strings.HasPrefix(buf.String(), checkedMagic+" ") {
		t.Fatalf("container does not open with the header: %q", buf.String()[:40])
	}
	got, err := ReadSnapshotChecked(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Errorf("round trip changed the snapshot")
	}
}

// TestCheckedLegacyFallback: a plain (headerless) JSON spill from a
// pre-checksum daemon still decodes.
func TestCheckedLegacyFallback(t *testing.T) {
	snap := solveSnapshot(t, pointsto.Config{})
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotChecked(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("legacy read: %v", err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Errorf("legacy round trip changed the snapshot")
	}
}

// TestCheckedDetectsCorruption: every adversarial mutation of a valid
// container must come back as a *CorruptError — never a panic, never a
// silently-decoded snapshot.
func TestCheckedDetectsCorruption(t *testing.T) {
	snap := solveSnapshot(t, pointsto.Config{})
	var buf bytes.Buffer
	if err := WriteSnapshotChecked(&buf, snap); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	mutate := map[string]func([]byte) []byte{
		"truncated-half": func(b []byte) []byte { return b[:len(b)/2] },
		"truncated-tail": func(b []byte) []byte { return b[:len(b)-1] },
		"zero-length":    func(b []byte) []byte { return nil },
		"bit-flip-payload": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x20
			return c
		},
		"bit-flip-digest": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(checkedMagic)+2] ^= 0x01
			return c
		},
		"trailing-garbage": func(b []byte) []byte { return append(append([]byte(nil), b...), "extra"...) },
		"header-only": func(b []byte) []byte {
			i := bytes.IndexByte(b, '\n')
			return b[:i+1]
		},
		"wrong-version": func(b []byte) []byte {
			var w bytes.Buffer
			bad := *snap
			bad.Version = 99
			WriteSnapshotChecked(&w, &bad)
			return w.Bytes()
		},
	}
	for name, f := range mutate {
		_, err := ReadSnapshotChecked(bytes.NewReader(f(valid)))
		if err == nil {
			t.Errorf("%s: corrupt container decoded successfully", name)
			continue
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v is not a *CorruptError", name, err)
		}
	}
}

// FuzzSnapshotDecode throws arbitrary bytes at both snapshot decoders: they
// must never panic, and anything they do accept must re-encode and decode
// to the same value.
func FuzzSnapshotDecode(f *testing.F) {
	rep, err := pointsto.Analyze([]pointsto.Source{{Name: "snap.c", Text: snapshotProgram}}, pointsto.Config{})
	if err != nil {
		f.Fatal(err)
	}
	snap := NewSnapshot(rep, "")
	var plain, checked bytes.Buffer
	WriteSnapshot(&plain, snap)
	WriteSnapshotChecked(&checked, snap)
	f.Add(plain.Bytes())
	f.Add(checked.Bytes())
	f.Add([]byte(checkedMagic + " 00 0\n"))
	f.Add([]byte(`{"version":1,"vars":{"x":["y"]}}`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := ReadSnapshotChecked(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSnapshotChecked(&buf, snap); err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		again, err := ReadSnapshotChecked(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if !reflect.DeepEqual(snap, again) {
			t.Fatalf("re-encode round trip changed the snapshot")
		}
	})
}
