package export

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/pointsto"
)

// SnapshotVersion is the wire-format version of Snapshot. Readers reject
// every other version, so a daemon restarted onto an incompatible spill
// directory re-solves instead of serving garbage.
const SnapshotVersion = 1

// IncompleteJSON is the wire form of a partial-result marker: the reason a
// run stopped before fixpoint and the solver counters at the stop.
type IncompleteJSON struct {
	Reason string `json:"reason"`
	Steps  int    `json:"steps"`
	Facts  int    `json:"facts"`
	Cells  int    `json:"cells"`
	Limit  int    `json:"limit"`
}

// Snapshot is the serializable, queryable form of one solved analysis: the
// result cache's value type and the disk-spill wire format. It carries
// everything the query endpoints need — per-variable points-to sets, the
// full cell-level sets, the summary counters and the incompleteness marker —
// without retaining the IR or the solver state, so a cached program costs
// only its strings.
type Snapshot struct {
	Version      int     `json:"version"`
	Strategy     string  `json:"strategy"`
	ABI          string  `json:"abi"`
	TotalFacts   int     `json:"total_facts"`
	DerefSites   int     `json:"deref_sites"`
	AvgDerefSize float64 `json:"avg_deref_size"`
	Steps        int     `json:"steps"`
	DurationNS   int64   `json:"duration_ns"`
	// Incomplete is nil for a run that reached fixpoint. A non-nil marker
	// means the recorded facts are sound but not exhaustive: negative
	// answers (empty sets, MayAlias == false) are not conclusive.
	Incomplete *IncompleteJSON `json:"incomplete,omitempty"`
	// Vars maps every queryable source-level name to its sorted points-to
	// targets (empty slice for a name whose set is empty). The target
	// strings are cell names; object names are uniquified by the front
	// end, so string equality coincides with cell equality.
	Vars map[string][]string `json:"vars"`
	// Sets is the cell-level dump (named, non-temporary cells only).
	Sets []PointsTo `json:"sets"`
}

// NewSnapshot captures a facade report into its wire form. abi names the
// layout the report was produced under ("" means the lp64 default).
func NewSnapshot(r *pointsto.Report, abi string) *Snapshot {
	if abi == "" {
		abi = "lp64"
	}
	s := &Snapshot{
		Version:      SnapshotVersion,
		Strategy:     r.Strategy().String(),
		ABI:          abi,
		TotalFacts:   r.TotalFacts(),
		DerefSites:   r.NumDerefSites(),
		AvgDerefSize: r.DerefSetSize(),
		Steps:        r.Steps(),
		DurationNS:   r.Duration().Nanoseconds(),
		Vars:         make(map[string][]string),
	}
	for _, name := range r.Names() {
		targets := r.PointsTo(name)
		if targets == nil {
			targets = []string{}
		}
		s.Vars[name] = targets
	}
	for _, set := range r.Sets() {
		if len(set.Targets) == 0 {
			continue
		}
		s.Sets = append(s.Sets, PointsTo{Cell: set.Cell, Targets: set.Targets})
	}
	if inc := r.Incomplete(); inc != nil {
		s.Incomplete = &IncompleteJSON{
			Reason: inc.Reason,
			Steps:  inc.Steps,
			Facts:  inc.Facts,
			Cells:  inc.Cells,
			Limit:  inc.Limit,
		}
	}
	return s
}

// HasVar reports whether name is a queryable variable or function of the
// snapshotted program (distinguishing "unknown name" from "empty set").
func (s *Snapshot) HasVar(name string) bool {
	_, ok := s.Vars[name]
	return ok
}

// PointsTo returns the sorted points-to targets of the named variable, nil
// for an unknown name.
func (s *Snapshot) PointsTo(name string) []string {
	targets, ok := s.Vars[name]
	if !ok || len(targets) == 0 {
		return nil
	}
	return targets
}

// MayAlias reports whether the two named pointers may reference the same
// cell, by intersecting their recorded points-to sets. Unknown names never
// alias. Matches pointsto.Report.MayAlias on the snapshotted report.
func (s *Snapshot) MayAlias(a, b string) bool {
	sa := s.Vars[a]
	if len(sa) == 0 {
		return false
	}
	seen := make(map[string]bool, len(sa))
	for _, t := range sa {
		seen[t] = true
	}
	for _, t := range s.Vars[b] {
		if seen[t] {
			return true
		}
	}
	return false
}

// SizeBytes estimates the snapshot's retained memory (strings plus slice
// and map overhead); the store's byte budget is accounted in these units.
func (s *Snapshot) SizeBytes() int {
	n := 256
	for name, targets := range s.Vars {
		n += 48 + len(name)
		for _, t := range targets {
			n += 16 + len(t)
		}
	}
	for _, set := range s.Sets {
		n += 48 + len(set.Cell)
		for _, t := range set.Targets {
			n += 16 + len(t)
		}
	}
	return n
}

// WriteSnapshot marshals the snapshot to w in its wire form (indented,
// deterministic: map keys are emitted sorted).
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot unmarshals one snapshot and validates its version. The
// result of a round trip is deep-equal to the written snapshot.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("export: decode snapshot: %w", err)
	}
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("export: snapshot version %d (want %d)", s.Version, SnapshotVersion)
	}
	if s.Vars == nil {
		s.Vars = make(map[string][]string)
	}
	return &s, nil
}

// SortedVarNames returns the snapshot's queryable names in sorted order.
func (s *Snapshot) SortedVarNames() []string {
	out := make([]string, 0, len(s.Vars))
	for name := range s.Vars {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
