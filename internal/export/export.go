// Package export serializes analysis results and experiment measurements to
// JSON, so the reproduced figures can be consumed by external tooling
// (plotting scripts, CI regression checks) instead of being re-parsed from
// the text tables.
package export

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/metrics"
)

// PointsTo is the JSON form of one cell's points-to set.
type PointsTo struct {
	Cell    string   `json:"cell"`
	Targets []string `json:"targets"`
}

// ResultJSON is the JSON form of one analysis run.
type ResultJSON struct {
	Strategy     string     `json:"strategy"`
	TotalFacts   int        `json:"total_facts"`
	AvgDerefSize float64    `json:"avg_deref_size"`
	DurationNS   int64      `json:"duration_ns"`
	Sets         []PointsTo `json:"sets,omitempty"`
}

// Result converts a core.Result. includeSets controls whether the full
// points-to sets are embedded (they can be large).
func Result(r *core.Result, includeSets bool) ResultJSON {
	out := ResultJSON{
		Strategy:     r.Strategy.Name(),
		TotalFacts:   r.TotalFacts(),
		AvgDerefSize: r.AvgDerefSetSize(),
		DurationNS:   r.Duration.Nanoseconds(),
	}
	if includeSets {
		r.Cells(func(c core.Cell, set core.CellSet) {
			if c.Obj.IsTemp() {
				return
			}
			pt := PointsTo{Cell: c.String()}
			for _, t := range set.Sorted() {
				pt.Targets = append(pt.Targets, t.String())
			}
			out.Sets = append(out.Sets, pt)
		})
		sort.Slice(out.Sets, func(i, j int) bool { return out.Sets[i].Cell < out.Sets[j].Cell })
	}
	return out
}

// SiteJSON is the JSON form of one dereference site.
type SiteJSON struct {
	Pos     string `json:"pos"`
	Pointer string `json:"pointer"`
	Size    int    `json:"size"`
}

// Sites converts the per-site set sizes of a result.
func Sites(r *core.Result, prog *ir.Program) []SiteJSON {
	var out []SiteJSON
	for _, s := range prog.Sites {
		out = append(out, SiteJSON{
			Pos:     s.Pos.String(),
			Pointer: s.Ptr.Name,
			Size:    r.SiteSetSize(s),
		})
	}
	return out
}

// RunJSON is the JSON form of one (program, strategy) measurement.
type RunJSON struct {
	Strategy     string  `json:"strategy"`
	AvgDerefSize float64 `json:"avg_deref_size"`
	TotalFacts   int     `json:"total_facts"`
	DurationNS   int64   `json:"duration_ns"`
	Steps        int     `json:"steps,omitempty"`

	LookupCalls       int `json:"lookup_calls"`
	LookupStructs     int `json:"lookup_structs"`
	LookupMismatches  int `json:"lookup_mismatches"`
	ResolveCalls      int `json:"resolve_calls"`
	ResolveStructs    int `json:"resolve_structs"`
	ResolveMismatches int `json:"resolve_mismatches"`

	// Memoization-cache effectiveness (logical lookup/resolve calls served
	// from the per-strategy caches); omitted when memoization is off.
	LookupCacheHits    int `json:"lookup_cache_hits,omitempty"`
	LookupCacheMisses  int `json:"lookup_cache_misses,omitempty"`
	ResolveCacheHits   int `json:"resolve_cache_hits,omitempty"`
	ResolveCacheMisses int `json:"resolve_cache_misses,omitempty"`

	// Constraint-graph layer counters. SCCs/cells/waves are zero unless
	// online cycle elimination engaged; edge_batches and fact_crossings are
	// counted for every dense run, so an ablation run (NoCycleElim) shows
	// the naive schedule's traversal cost for comparison.
	SCCsFound       int `json:"sccs_found,omitempty"`
	CellsMerged     int `json:"cells_merged,omitempty"`
	Waves           int `json:"waves,omitempty"`
	EdgeBatches     int `json:"edge_batches,omitempty"`
	FactCrossings   int `json:"fact_crossings,omitempty"`
	TraversalsSaved int `json:"traversals_saved,omitempty"`

	// Parallel wave-executor counters, zero on sequential runs. par_steals
	// is schedule-dependent (it varies run to run); the others are
	// deterministic at a fixed parallelism.
	ParWaves    int `json:"par_waves,omitempty"`
	ParShards   int `json:"par_shards,omitempty"`
	ParSteals   int `json:"par_steals,omitempty"`
	ParPendings int `json:"par_pendings,omitempty"`

	// Offline-prepass and set-interner counters, zero under the NoPrepass
	// ablation (or when the pair did not engage). The prep_* family is a
	// deterministic function of (program, strategy); the intern_* family
	// depends on wave structure and peak_live_bytes on the machine, so
	// regression baselines zero them like the par_* family.
	PrepClasses   int    `json:"prep_classes,omitempty"`
	PrepCollapsed int    `json:"prep_collapsed,omitempty"`
	PrepChains    int    `json:"prep_chains,omitempty"`
	InternEpochs  int    `json:"intern_epochs,omitempty"`
	InternSets    int    `json:"intern_sets,omitempty"`
	InternBytes   int    `json:"intern_bytes,omitempty"`
	PeakLiveBytes uint64 `json:"peak_live_bytes,omitempty"`
}

// ProgramJSON is the JSON form of one benchmark program's measurements.
type ProgramJSON struct {
	Name          string             `json:"name"`
	LOC           int                `json:"loc"`
	NumStmts      int                `json:"num_stmts"`
	HasStructCast bool               `json:"has_struct_cast"`
	Runs          map[string]RunJSON `json:"runs"`
}

// Program converts a metrics.Program.
func Program(p *metrics.Program) ProgramJSON {
	out := ProgramJSON{
		Name:          p.Name,
		LOC:           p.LOC,
		NumStmts:      p.NumStmts,
		HasStructCast: p.HasStructCast,
		Runs:          make(map[string]RunJSON, len(p.Runs)),
	}
	for name, r := range p.Runs {
		out.Runs[name] = RunJSON{
			Strategy:           r.Strategy,
			AvgDerefSize:       r.AvgDerefSize,
			TotalFacts:         r.TotalFacts,
			DurationNS:         r.Duration.Nanoseconds(),
			Steps:              r.Steps,
			LookupCalls:        r.Recorder.LookupCalls,
			LookupStructs:      r.Recorder.LookupStructs,
			LookupMismatches:   r.Recorder.LookupMismatches,
			ResolveCalls:       r.Recorder.ResolveCalls,
			ResolveStructs:     r.Recorder.ResolveStructs,
			ResolveMismatches:  r.Recorder.ResolveMismatches,
			LookupCacheHits:    r.Recorder.LookupCacheHits,
			LookupCacheMisses:  r.Recorder.LookupCacheMisses,
			ResolveCacheHits:   r.Recorder.ResolveCacheHits,
			ResolveCacheMisses: r.Recorder.ResolveCacheMisses,
			SCCsFound:          r.Wave.SCCsFound,
			CellsMerged:        r.Wave.CellsMerged,
			Waves:              r.Wave.Waves,
			EdgeBatches:        r.Wave.EdgeBatches,
			FactCrossings:      r.Wave.FactCrossings,
			TraversalsSaved:    r.Wave.TraversalsSaved(),
			ParWaves:           r.Wave.ParWaves,
			ParShards:          r.Wave.ParShards,
			ParSteals:          r.Wave.ParSteals,
			ParPendings:        r.Wave.ParPendings,
			PrepClasses:        r.Wave.PrepClasses,
			PrepCollapsed:      r.Wave.PrepCollapsed,
			PrepChains:         r.Wave.PrepChains,
			InternEpochs:       r.Wave.InternEpochs,
			InternSets:         r.Wave.InternSets,
			InternBytes:        r.Wave.InternBytes,
			PeakLiveBytes:      r.Wave.PeakLiveBytes,
		}
	}
	return out
}

// Evaluation is the top-level JSON document for a full corpus run.
// SolveParallelism records the intra-solve worker count the run used (absent
// for sequential runs) so readers know whether the schedule counters —
// waves, edge_batches, fact_crossings, par_* — are comparable across files.
type Evaluation struct {
	ABI              string        `json:"abi"`
	SolveParallelism int           `json:"solve_parallelism,omitempty"`
	Programs         []ProgramJSON `json:"programs"`
}

// WriteEvaluation marshals a full evaluation to w (indented).
func WriteEvaluation(w io.Writer, abi string, progs []*metrics.Program) error {
	return WriteEvaluationPar(w, abi, 0, progs)
}

// WriteEvaluationPar is WriteEvaluation with the solve parallelism stamped
// into the document (0 omits the field — a sequential run).
func WriteEvaluationPar(w io.Writer, abi string, solvePar int, progs []*metrics.Program) error {
	if solvePar == 1 {
		solvePar = 0 // 1 is the sequential executor; don't stamp it
	}
	ev := Evaluation{ABI: abi, SolveParallelism: solvePar}
	for _, p := range progs {
		ev.Programs = append(ev.Programs, Program(p))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ev)
}

// WriteResult marshals one analysis result to w (indented).
func WriteResult(w io.Writer, r *core.Result, prog *ir.Program, includeSets bool) error {
	doc := struct {
		ResultJSON
		Sites []SiteJSON `json:"sites"`
	}{Result(r, includeSets), Sites(r, prog)}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DemandJSON is the wire form of one demand-vs-exhaustive measurement.
type DemandJSON struct {
	Program  string `json:"program"`
	Strategy string `json:"strategy"`
	QueryVar string `json:"query_var"`

	FirstQueryNS int64 `json:"first_query_ns"`
	WarmQueryNS  int64 `json:"warm_query_ns"`
	FullSolveNS  int64 `json:"full_solve_ns"`

	DemandCells    int  `json:"demand_cells"`
	FullCells      int  `json:"full_cells"`
	StmtsActivated int  `json:"stmts_activated"`
	TotalStmts     int  `json:"total_stmts"`
	MinCells       int  `json:"min_cells"`
	MaxCells       int  `json:"max_cells"`
	Queries        int  `json:"queries"`
	Fallback       bool `json:"fallback,omitempty"`
}

// WriteDemand marshals the demand-engine measurements to w (indented).
func WriteDemand(w io.Writer, abi string, ms []*metrics.DemandMeasurement) error {
	doc := struct {
		ABI    string       `json:"abi"`
		Demand []DemandJSON `json:"demand"`
	}{ABI: abi}
	for _, m := range ms {
		doc.Demand = append(doc.Demand, DemandJSON{
			Program:      m.Name,
			Strategy:     m.Strategy,
			QueryVar:     m.QueryVar,
			FirstQueryNS: m.FirstQuery.Nanoseconds(),
			WarmQueryNS:  m.WarmQuery.Nanoseconds(),
			FullSolveNS:  m.FullSolve.Nanoseconds(),

			DemandCells:    m.DemandCells,
			FullCells:      m.FullCells,
			StmtsActivated: m.StmtsActivated,
			TotalStmts:     m.TotalStmts,
			MinCells:       m.MinCells,
			MaxCells:       m.MaxCells,
			Queries:        m.Queries,
			Fallback:       m.Fallback,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
