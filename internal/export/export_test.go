package export_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/frontend"
	"repro/internal/metrics"
)

const src = `
struct S { int *a; } s;
int x, *p;
void f(void) {
	s.a = &x;
	p = s.a;
	x = *p;
}`

func analyze(t *testing.T) (*frontend.Result, *core.Result) {
	t.Helper()
	r, err := frontend.Load([]frontend.Source{{Name: "t.c", Text: src}}, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r, core.Analyze(r.IR, core.NewCIS())
}

func TestResultJSON(t *testing.T) {
	fr, res := analyze(t)
	_ = fr
	j := export.Result(res, true)
	if j.Strategy != "common-initial-seq" {
		t.Errorf("strategy = %q", j.Strategy)
	}
	if j.TotalFacts == 0 || j.AvgDerefSize <= 0 {
		t.Errorf("facts=%d avg=%v", j.TotalFacts, j.AvgDerefSize)
	}
	if len(j.Sets) == 0 {
		t.Fatal("no sets with includeSets=true")
	}
	// Temps must be filtered.
	for _, s := range j.Sets {
		if len(s.Cell) > 3 && s.Cell[:3] == "tmp" {
			t.Errorf("temp leaked: %s", s.Cell)
		}
	}
	// Without sets.
	if j2 := export.Result(res, false); len(j2.Sets) != 0 {
		t.Error("sets included with includeSets=false")
	}
}

func TestWriteResultValidJSON(t *testing.T) {
	fr, res := analyze(t)
	var buf bytes.Buffer
	if err := export.WriteResult(&buf, res, fr.IR, true); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := doc["sites"]; !ok {
		t.Error("sites missing")
	}
	sites := doc["sites"].([]interface{})
	if len(sites) == 0 {
		t.Error("no sites serialized")
	}
}

func TestWriteEvaluation(t *testing.T) {
	p, err := metrics.Measure("tiny", []frontend.Source{{Name: "t.c", Text: src}},
		frontend.Options{}, metrics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := export.WriteEvaluation(&buf, "lp64", []*metrics.Program{p}); err != nil {
		t.Fatal(err)
	}
	var ev export.Evaluation
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if ev.ABI != "lp64" || len(ev.Programs) != 1 {
		t.Fatalf("ev = %+v", ev)
	}
	prog := ev.Programs[0]
	if prog.Name != "tiny" || len(prog.Runs) != 4 {
		t.Errorf("prog = %+v", prog)
	}
	for name, run := range prog.Runs {
		if run.DurationNS <= 0 {
			t.Errorf("%s: duration %d", name, run.DurationNS)
		}
	}
}

func TestRoundTripStableOrder(t *testing.T) {
	_, res := analyze(t)
	a := export.Result(res, true)
	b := export.Result(res, true)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Error("export not deterministic")
	}
}
