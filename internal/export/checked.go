package export

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
)

// The checked container is the crash-safe on-disk form of a Snapshot: a
// one-line header naming the payload's exact length and SHA-256, followed
// by the plain JSON wire form. A reader verifies both before decoding, so
// a truncated write, a bit flip or a concatenated tail is detected as
// corruption instead of being half-trusted — the contract the store's
// quarantine-and-continue warm restart depends on.
//
//	ptrsnap1 <64 hex sha256> <decimal payload bytes>\n
//	{ ...Snapshot JSON... }
//
// Headerless files are decoded as legacy plain-JSON spills (pre-checksum
// daemons wrote those): structural corruption is still caught by the JSON
// decoder and the version check, but content corruption inside string
// values is not. New writes always carry the header.

// checkedMagic opens every checked-container header line.
const checkedMagic = "ptrsnap1"

// ErrCorrupt tags a checked-container read that failed verification
// (truncation, checksum mismatch, malformed header, undecodable payload or
// wrong wire version). Callers quarantine on it.
type CorruptError struct {
	Reason string
}

func (e *CorruptError) Error() string { return "export: corrupt snapshot: " + e.Reason }

func corruptf(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// WriteSnapshotChecked writes s in the checked container format: header
// line, then the JSON payload the header vouches for.
func WriteSnapshotChecked(w io.Writer, s *Snapshot) error {
	var payload bytes.Buffer
	if err := WriteSnapshot(&payload, s); err != nil {
		return err
	}
	sum := sha256.Sum256(payload.Bytes())
	if _, err := fmt.Fprintf(w, "%s %s %d\n", checkedMagic, hex.EncodeToString(sum[:]), payload.Len()); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// ReadSnapshotChecked reads one snapshot from the checked container format,
// verifying length and digest before decoding. A headerless stream falls
// back to the legacy plain-JSON decoder. Every verification failure is a
// *CorruptError, so callers can distinguish "corrupt file" (quarantine it)
// from I/O errors (leave it alone and report).
func ReadSnapshotChecked(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	peek, err := br.Peek(len(checkedMagic) + 1)
	if err != nil {
		// Shorter than any header: either a legacy JSON document small
		// enough to fit ("{}"), or garbage. Let the legacy path decide.
		return readLegacy(br)
	}
	if string(peek[:len(checkedMagic)]) != checkedMagic || peek[len(checkedMagic)] != ' ' {
		return readLegacy(br)
	}
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, corruptf("truncated header")
	}
	fields := strings.Fields(strings.TrimSuffix(header, "\n"))
	if len(fields) != 3 {
		return nil, corruptf("malformed header %q", header)
	}
	wantSum, err := hex.DecodeString(fields[1])
	if err != nil || len(wantSum) != sha256.Size {
		return nil, corruptf("malformed digest %q", fields[1])
	}
	var length int64
	if _, err := fmt.Sscanf(fields[2], "%d", &length); err != nil || length < 0 {
		return nil, corruptf("malformed length %q", fields[2])
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, corruptf("truncated payload: %v", err)
	}
	// Trailing bytes beyond the declared length mean the file is not what
	// the header vouches for (e.g. two writes interleaved).
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, corruptf("trailing bytes after declared payload")
	}
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], wantSum) {
		return nil, corruptf("checksum mismatch")
	}
	snap, err := ReadSnapshot(bytes.NewReader(payload))
	if err != nil {
		// The digest matched, so the bytes are exactly what was written —
		// but a wrong version (or a header glued onto a non-snapshot) is
		// still not servable.
		return nil, corruptf("%v", err)
	}
	return snap, nil
}

// readLegacy decodes a headerless (pre-checksum) spill file.
func readLegacy(r io.Reader) (*Snapshot, error) {
	snap, err := ReadSnapshot(r)
	if err != nil {
		return nil, corruptf("%v", err)
	}
	return snap, nil
}
