// Package pp implements a C preprocessor: object- and function-like macros
// with stringification (#) and token pasting (##), #include with built-in
// system headers, the full conditional family (#if/#ifdef/#ifndef/#elif/
// #else/#endif with a constant-expression evaluator and defined()), #undef,
// #error, #pragma once, and the predefined macros __FILE__, __LINE__ and
// __STDC__.
//
// The output is a flat token stream (no newlines, no directives) ready for
// the parser.
package pp

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cc/hdr"
	"repro/internal/cc/scanner"
	"repro/internal/cc/token"
)

// Macro is a preprocessor macro definition.
type Macro struct {
	Name   string
	IsFunc bool
	Params []string
	Body   []token.Token
}

// sameDef reports whether two definitions are effectively identical
// (benign redefinition, allowed by the standard).
func (m *Macro) sameDef(o *Macro) bool {
	if m.IsFunc != o.IsFunc || len(m.Params) != len(o.Params) || len(m.Body) != len(o.Body) {
		return false
	}
	for i := range m.Params {
		if m.Params[i] != o.Params[i] {
			return false
		}
	}
	for i := range m.Body {
		a, b := m.Body[i], o.Body[i]
		if a.Kind != b.Kind || a.Text != b.Text {
			return false
		}
	}
	return true
}

// IncludeFunc resolves an #include. name is the text between the delimiters,
// system reports <...> vs "...", and from is the directory of the including
// file. It returns a display path and the file contents.
type IncludeFunc func(name string, system bool, from string) (path string, content []byte, err error)

// Config controls preprocessing.
type Config struct {
	// Include resolves #include directives. If nil, only the built-in
	// system headers (package hdr) are available.
	Include IncludeFunc
	// Defines is a set of predefined object macros, e.g. {"DEBUG": "1"}.
	// An empty value defines the macro as 1.
	Defines map[string]string
	// MaxIncludeDepth bounds #include nesting (default 64).
	MaxIncludeDepth int
}

// Preprocessor holds macro state across files.
type Preprocessor struct {
	cfg      Config
	macros   map[string]*Macro
	onceSeen map[string]bool
	depth    int
	out      []token.Token
	errs     scanner.ErrorList
}

// New creates a preprocessor with the given configuration.
func New(cfg Config) *Preprocessor {
	if cfg.MaxIncludeDepth == 0 {
		cfg.MaxIncludeDepth = 64
	}
	p := &Preprocessor{
		cfg:      cfg,
		macros:   make(map[string]*Macro),
		onceSeen: make(map[string]bool),
	}
	p.defineBuiltin("__STDC__", "1")
	for name, val := range cfg.Defines {
		if val == "" {
			val = "1"
		}
		p.defineBuiltin(name, val)
	}
	return p
}

func (p *Preprocessor) defineBuiltin(name, val string) {
	s := scanner.New("<builtin>", []byte(val))
	var body []token.Token
	for {
		t := s.Next()
		if t.Kind == token.EOF {
			break
		}
		body = append(body, t)
	}
	p.macros[name] = &Macro{Name: name, Body: body}
}

func (p *Preprocessor) errorf(pos token.Pos, format string, args ...interface{}) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// Process preprocesses one translation unit and returns its token stream,
// terminated by an EOF token.
func (p *Preprocessor) Process(file string, src []byte) ([]token.Token, error) {
	p.out = p.out[:0]
	p.errs = nil
	p.processFile(file, src)
	p.out = append(p.out, token.Token{Kind: token.EOF, Pos: token.Pos{File: file}})
	return p.out, p.errs.Err()
}

// Errors returns all accumulated errors.
func (p *Preprocessor) Errors() []error { return p.errs }

// IsDefined reports whether name is currently defined as a macro.
func (p *Preprocessor) IsDefined(name string) bool {
	_, ok := p.macros[name]
	return ok
}

// fileState is the per-file processing state.
type fileState struct {
	toks []token.Token
	i    int
	path string
	dir  string
}

func (f *fileState) peek() token.Token {
	if f.i < len(f.toks) {
		return f.toks[f.i]
	}
	return token.Token{Kind: token.EOF}
}

func (f *fileState) next() token.Token {
	t := f.peek()
	if f.i < len(f.toks) {
		f.i++
	}
	return t
}

// readLine consumes tokens up to (not including) EOF, stopping after NEWLINE;
// the NEWLINE itself is consumed but not returned.
func (f *fileState) readLine() []token.Token {
	var line []token.Token
	for {
		t := f.next()
		if t.Kind == token.EOF {
			return line
		}
		if t.Kind == token.NEWLINE {
			return line
		}
		line = append(line, t)
	}
}

// condState tracks one level of conditional nesting.
type condState struct {
	active    bool // this branch is being processed
	everTaken bool // some branch at this level was taken
	parentOn  bool // enclosing context was active
	sawElse   bool
}

func (p *Preprocessor) processFile(path string, src []byte) {
	if p.depth >= p.cfg.MaxIncludeDepth {
		p.errorf(token.Pos{File: path}, "#include nesting too deep")
		return
	}
	p.depth++
	defer func() { p.depth-- }()

	sc := scanner.New(path, src)
	sc.KeepNewlines = true
	toks := sc.All()
	p.errs = append(p.errs, sc.Errors...)

	f := &fileState{toks: toks, path: path, dir: dirOf(path)}
	var conds []condState
	skipping := func() bool {
		for _, c := range conds {
			if !c.active {
				return true
			}
		}
		return false
	}

	var pending []token.Token
	flush := func() {
		if len(pending) > 0 {
			p.out = append(p.out, p.expandList(pending, nil)...)
			pending = pending[:0]
		}
	}

	for {
		t := f.peek()
		if t.Kind == token.EOF {
			break
		}
		if t.Kind == token.NEWLINE {
			f.next()
			continue
		}
		if t.Kind == token.HASH && t.BOL {
			flush()
			f.next() // consume #
			p.directive(f, &conds, skipping)
			continue
		}
		// Ordinary text line.
		line := f.readLine()
		if !skipping() {
			pending = append(pending, line...)
		}
	}
	flush()
	if len(conds) > 0 {
		p.errorf(token.Pos{File: path}, "unterminated conditional directive")
	}
}

// directive processes one directive; the leading # is already consumed.
func (p *Preprocessor) directive(f *fileState, conds *[]condState, skipping func() bool) {
	t := f.peek()
	if t.Kind == token.NEWLINE || t.Kind == token.EOF {
		f.next() // null directive
		return
	}
	name := t.Text
	switch name {
	case "if", "ifdef", "ifndef":
		f.next()
		line := f.readLine()
		active := false
		if !skipping() {
			switch name {
			case "ifdef", "ifndef":
				if len(line) != 1 || line[0].Kind != token.IDENT {
					p.errorf(t.Pos, "#%s expects a single identifier", name)
				} else {
					_, def := p.macros[line[0].Text]
					active = def == (name == "ifdef")
				}
			default:
				active = p.evalCondition(line, t.Pos)
			}
		}
		*conds = append(*conds, condState{active: active, everTaken: active, parentOn: !skipping()})

	case "elif":
		f.next()
		line := f.readLine()
		if len(*conds) == 0 {
			p.errorf(t.Pos, "#elif without #if")
			return
		}
		c := &(*conds)[len(*conds)-1]
		if c.sawElse {
			p.errorf(t.Pos, "#elif after #else")
			return
		}
		if c.parentOn && !c.everTaken && p.evalCondition(line, t.Pos) {
			c.active = true
			c.everTaken = true
		} else {
			c.active = false
		}

	case "else":
		f.next()
		f.readLine()
		if len(*conds) == 0 {
			p.errorf(t.Pos, "#else without #if")
			return
		}
		c := &(*conds)[len(*conds)-1]
		if c.sawElse {
			p.errorf(t.Pos, "duplicate #else")
			return
		}
		c.sawElse = true
		c.active = c.parentOn && !c.everTaken
		if c.active {
			c.everTaken = true
		}

	case "endif":
		f.next()
		f.readLine()
		if len(*conds) == 0 {
			p.errorf(t.Pos, "#endif without #if")
			return
		}
		*conds = (*conds)[:len(*conds)-1]

	case "define":
		f.next()
		line := f.readLine()
		if !skipping() {
			p.define(line, t.Pos)
		}

	case "undef":
		f.next()
		line := f.readLine()
		if !skipping() {
			if len(line) != 1 || line[0].Kind != token.IDENT {
				p.errorf(t.Pos, "#undef expects a single identifier")
				return
			}
			delete(p.macros, line[0].Text)
		}

	case "include":
		// Must set header mode before reading the rest of the line.
		if !skipping() {
			p.include(f, t.Pos)
		} else {
			f.next()
			f.readLine()
		}

	case "error":
		f.next()
		line := f.readLine()
		if !skipping() {
			p.errorf(t.Pos, "#error %s", tokensText(line))
		}

	case "warning", "ident", "line":
		f.next()
		f.readLine() // recognized, ignored

	case "pragma":
		f.next()
		line := f.readLine()
		if !skipping() && len(line) == 1 && line[0].Text == "once" {
			p.onceSeen[f.path] = true
		}

	default:
		f.next()
		f.readLine()
		if !skipping() {
			p.errorf(t.Pos, "unknown directive #%s", name)
		}
	}
}

func tokensText(toks []token.Token) string {
	var sb strings.Builder
	for i, t := range toks {
		if i > 0 && t.WS {
			sb.WriteByte(' ')
		}
		sb.WriteString(t.String())
	}
	return sb.String()
}

// define handles a #define line (tokens after the directive name).
func (p *Preprocessor) define(line []token.Token, pos token.Pos) {
	if len(line) == 0 || line[0].Kind != token.IDENT {
		p.errorf(pos, "#define expects a macro name")
		return
	}
	m := &Macro{Name: line[0].Text}
	rest := line[1:]
	// Function-like iff '(' immediately follows the name (no whitespace).
	if len(rest) > 0 && rest[0].Kind == token.LPAREN && !rest[0].WS {
		m.IsFunc = true
		i := 1
		if i < len(rest) && rest[i].Kind == token.RPAREN {
			i++
		} else {
			for {
				if i >= len(rest) || rest[i].Kind != token.IDENT {
					p.errorf(pos, "malformed macro parameter list for %s", m.Name)
					return
				}
				m.Params = append(m.Params, rest[i].Text)
				i++
				if i < len(rest) && rest[i].Kind == token.COMMA {
					i++
					continue
				}
				if i < len(rest) && rest[i].Kind == token.RPAREN {
					i++
					break
				}
				p.errorf(pos, "malformed macro parameter list for %s", m.Name)
				return
			}
		}
		m.Body = append(m.Body, rest[i:]...)
	} else {
		m.Body = append(m.Body, rest...)
	}
	if old, ok := p.macros[m.Name]; ok && !old.sameDef(m) {
		p.errorf(pos, "macro %s redefined incompatibly", m.Name)
	}
	p.macros[m.Name] = m
}

// include handles #include; the directive-name token is still unconsumed so
// we can flip the scanner-provided header token on the following token list.
func (p *Preprocessor) include(f *fileState, pos token.Pos) {
	f.next() // "include"
	line := f.readLine()
	if len(line) == 0 {
		p.errorf(pos, "#include expects a header name")
		return
	}
	// Re-expand in case the operand is a macro producing a header name.
	if line[0].Kind == token.IDENT {
		line = p.expandList(line, nil)
	}
	var name string
	var system bool
	switch {
	case len(line) >= 1 && line[0].Kind == token.STRING:
		s := line[0].Text
		name = s[1 : len(s)-1]
	case len(line) >= 1 && line[0].Kind == token.HEADER:
		s := line[0].Text
		name = s[1 : len(s)-1]
		system = true
	case len(line) >= 2 && line[0].Kind == token.LSS:
		// The scanner only produces HEADER when primed; reconstruct
		// <name> from < ident . ident ... > token runs.
		var sb strings.Builder
		i := 1
		for i < len(line) && line[i].Kind != token.GTR {
			sb.WriteString(line[i].String())
			i++
		}
		if i == len(line) {
			p.errorf(pos, "malformed #include")
			return
		}
		name = sb.String()
		system = true
	default:
		p.errorf(pos, "malformed #include")
		return
	}

	path, content, err := p.resolveInclude(name, system, f.dir)
	if err != nil {
		p.errorf(pos, "#include %q: %v", name, err)
		return
	}
	if p.onceSeen[path] {
		return
	}
	p.processFile(path, content)
}

func (p *Preprocessor) resolveInclude(name string, system bool, from string) (string, []byte, error) {
	if system {
		if text, ok := hdr.Lookup(name); ok {
			return "<" + name + ">", []byte(text), nil
		}
	}
	if p.cfg.Include != nil {
		path, content, err := p.cfg.Include(name, system, from)
		if err == nil {
			return path, content, nil
		}
		// Fall back to built-ins for "name.h" style includes of
		// system headers.
		if text, ok := hdr.Lookup(name); ok {
			return "<" + name + ">", []byte(text), nil
		}
		return "", nil, err
	}
	if text, ok := hdr.Lookup(name); ok {
		return "<" + name + ">", []byte(text), nil
	}
	return "", nil, fmt.Errorf("not found")
}

func dirOf(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return "."
}

// --- Macro expansion ---

// expandList macro-expands toks. active is the set of macro names whose
// expansion is in progress (blue paint).
func (p *Preprocessor) expandList(toks []token.Token, active map[string]bool) []token.Token {
	var out []token.Token
	for i := 0; i < len(toks); {
		t := toks[i]
		if t.Kind != token.IDENT || t.NoExpand {
			out = append(out, t)
			i++
			continue
		}
		// Predefined dynamic macros.
		switch t.Text {
		case "__FILE__":
			out = append(out, token.Token{Kind: token.STRING, Text: strconv.Quote(t.Pos.File), Pos: t.Pos, WS: t.WS})
			i++
			continue
		case "__LINE__":
			out = append(out, token.Token{Kind: token.INT, Text: strconv.Itoa(t.Pos.Line), Pos: t.Pos, WS: t.WS})
			i++
			continue
		}
		m, ok := p.macros[t.Text]
		if !ok {
			out = append(out, t)
			i++
			continue
		}
		if active[t.Text] {
			t.NoExpand = true
			out = append(out, t)
			i++
			continue
		}
		if m.IsFunc {
			// Function-like macro: need a following '('.
			j := i + 1
			if j >= len(toks) || toks[j].Kind != token.LPAREN {
				out = append(out, t)
				i++
				continue
			}
			args, rest, err := collectArgs(toks[j:], len(m.Params))
			if err != nil {
				p.errorf(t.Pos, "macro %s: %v", m.Name, err)
				out = append(out, t)
				i++
				continue
			}
			i = j + rest
			body := p.subst(m, args, active, t.Pos)
			newActive := withName(active, m.Name)
			out = append(out, p.expandList(body, newActive)...)
			continue
		}
		// Object-like macro.
		body := p.subst(m, nil, active, t.Pos)
		newActive := withName(active, m.Name)
		out = append(out, p.expandList(body, newActive)...)
		i++
	}
	return out
}

func withName(active map[string]bool, name string) map[string]bool {
	na := make(map[string]bool, len(active)+1)
	for k := range active {
		na[k] = true
	}
	na[name] = true
	return na
}

// collectArgs parses a macro argument list starting at the '(' (toks[0]).
// It returns the arguments, the number of tokens consumed (including both
// parens), and an error. nparams disambiguates zero-argument invocations.
func collectArgs(toks []token.Token, nparams int) ([][]token.Token, int, error) {
	if len(toks) == 0 || toks[0].Kind != token.LPAREN {
		return nil, 0, fmt.Errorf("expected '('")
	}
	var args [][]token.Token
	var cur []token.Token
	depth := 1
	i := 1
	for ; i < len(toks); i++ {
		t := toks[i]
		switch t.Kind {
		case token.LPAREN, token.LBRACK:
			depth++
		case token.RPAREN, token.RBRACK:
			depth--
			if depth == 0 {
				args = append(args, cur)
				if nparams == 0 && len(args) == 1 && len(args[0]) == 0 {
					args = nil
				}
				return args, i + 1, nil
			}
		case token.COMMA:
			if depth == 1 {
				args = append(args, cur)
				cur = nil
				continue
			}
		case token.EOF:
			return nil, 0, fmt.Errorf("unterminated argument list")
		}
		cur = append(cur, t)
	}
	return nil, 0, fmt.Errorf("unterminated argument list")
}

// subst substitutes arguments into a macro body, handling # and ##.
func (p *Preprocessor) subst(m *Macro, args [][]token.Token, active map[string]bool, usePos token.Pos) []token.Token {
	paramIndex := func(name string) int {
		for k, pn := range m.Params {
			if pn == name {
				return k
			}
		}
		return -1
	}
	argFor := func(k int) []token.Token {
		if k < len(args) {
			return args[k]
		}
		return nil
	}

	var out []token.Token
	body := m.Body
	for i := 0; i < len(body); i++ {
		t := body[i]

		// Stringification: # param
		if t.Kind == token.HASH && m.IsFunc && i+1 < len(body) && body[i+1].Kind == token.IDENT {
			if k := paramIndex(body[i+1].Text); k >= 0 {
				out = append(out, token.Token{
					Kind: token.STRING,
					Text: strconv.Quote(tokensText(argFor(k))),
					Pos:  usePos,
					WS:   t.WS,
				})
				i++
				continue
			}
		}

		// Token pasting: X ## Y
		if i+1 < len(body) && body[i+1].Kind == token.HASHHASH {
			// Collect a paste chain a ## b ## c ...
			left := p.pasteOperand(t, args, paramIndex, false)
			i++ // at ##
			for i < len(body) && body[i].Kind == token.HASHHASH {
				i++
				if i >= len(body) {
					p.errorf(usePos, "macro %s: ## at end of body", m.Name)
					break
				}
				right := p.pasteOperand(body[i], args, paramIndex, false)
				left = p.paste(left, right, usePos)
				i++
			}
			i-- // loop will increment
			out = append(out, left...)
			continue
		}

		// Ordinary parameter: substitute fully expanded argument.
		if t.Kind == token.IDENT && m.IsFunc {
			if k := paramIndex(t.Text); k >= 0 {
				exp := p.expandList(argFor(k), active)
				if len(exp) > 0 {
					exp2 := make([]token.Token, len(exp))
					copy(exp2, exp)
					exp2[0].WS = t.WS
					out = append(out, exp2...)
				}
				continue
			}
		}

		tt := t
		if tt.Pos.Line == 0 {
			tt.Pos = usePos
		}
		out = append(out, tt)
	}
	return out
}

// pasteOperand returns the tokens an operand of ## stands for: the raw
// (unexpanded) argument for a parameter, or the token itself.
func (p *Preprocessor) pasteOperand(t token.Token, args [][]token.Token, paramIndex func(string) int, _ bool) []token.Token {
	if t.Kind == token.IDENT {
		if k := paramIndex(t.Text); k >= 0 {
			if k < len(args) {
				return args[k]
			}
			return nil
		}
	}
	return []token.Token{t}
}

// paste concatenates the last token of left with the first token of right,
// rescanning the concatenation as a single token.
func (p *Preprocessor) paste(left, right []token.Token, pos token.Pos) []token.Token {
	if len(left) == 0 {
		return right
	}
	if len(right) == 0 {
		return left
	}
	l := left[len(left)-1]
	r := right[0]
	text := l.String() + r.String()
	sc := scanner.New(pos.File, []byte(text))
	var pasted []token.Token
	for {
		t := sc.Next()
		if t.Kind == token.EOF {
			break
		}
		t.Pos = pos
		pasted = append(pasted, t)
	}
	if len(sc.Errors) > 0 || len(pasted) != 1 {
		p.errorf(pos, "pasting %q and %q does not form a valid token", l.String(), r.String())
		pasted = []token.Token{l, r}
	}
	out := append([]token.Token{}, left[:len(left)-1]...)
	out = append(out, pasted...)
	out = append(out, right[1:]...)
	return out
}
