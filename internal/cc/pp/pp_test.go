package pp

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cc/token"
)

// render preprocesses src and joins the resulting token spellings with spaces.
func render(t *testing.T, src string) string {
	t.Helper()
	p := New(Config{})
	toks, err := p.Process("test.c", []byte(src))
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	var parts []string
	for _, tok := range toks {
		if tok.Kind == token.EOF {
			break
		}
		parts = append(parts, tok.String())
	}
	return strings.Join(parts, " ")
}

func renderErr(src string) (string, error) {
	p := New(Config{})
	toks, err := p.Process("test.c", []byte(src))
	var parts []string
	for _, tok := range toks {
		if tok.Kind == token.EOF {
			break
		}
		parts = append(parts, tok.String())
	}
	return strings.Join(parts, " "), err
}

func TestObjectMacro(t *testing.T) {
	got := render(t, "#define N 10\nint a[N];")
	want := "int a [ 10 ] ;"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestFunctionMacro(t *testing.T) {
	got := render(t, "#define SQ(x) ((x)*(x))\nint y = SQ(a+1);")
	want := "int y = ( ( a + 1 ) * ( a + 1 ) ) ;"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestFunctionMacroMultipleArgs(t *testing.T) {
	got := render(t, "#define MAX(a,b) ((a)>(b)?(a):(b))\nm = MAX(x, y);")
	want := "m = ( ( x ) > ( y ) ? ( x ) : ( y ) ) ;"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestNestedMacroExpansion(t *testing.T) {
	got := render(t, "#define A B\n#define B C\nA")
	if got != "C" {
		t.Errorf("got %q want C", got)
	}
}

func TestRecursiveMacroStops(t *testing.T) {
	got := render(t, "#define X X\nX")
	if got != "X" {
		t.Errorf("self-recursive macro: got %q want X", got)
	}
	got = render(t, "#define A B\n#define B A\nA")
	if got != "A" && got != "B" {
		t.Errorf("mutually recursive macros: got %q", got)
	}
}

func TestMacroNameNotFollowedByParen(t *testing.T) {
	got := render(t, "#define F(x) x\nint F;")
	want := "int F ;"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestZeroArgMacro(t *testing.T) {
	got := render(t, "#define NIL() 0\np = NIL();")
	want := "p = 0 ;"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestArgsWithCommasInParens(t *testing.T) {
	got := render(t, "#define FST(p) p\nx = FST(f(a, b));")
	want := "x = f ( a , b ) ;"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestStringify(t *testing.T) {
	got := render(t, "#define STR(x) #x\ns = STR(a + b);")
	want := `s = "a + b" ;`
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestPaste(t *testing.T) {
	got := render(t, "#define GLUE(a,b) a##b\nint GLUE(var, 1);")
	want := "int var1 ;"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestPasteChain(t *testing.T) {
	got := render(t, "#define GLUE3(a,b,c) a##b##c\nint GLUE3(x, y, z);")
	want := "int xyz ;"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestUndef(t *testing.T) {
	got := render(t, "#define N 1\n#undef N\nN")
	if got != "N" {
		t.Errorf("got %q want N", got)
	}
}

func TestIfdef(t *testing.T) {
	got := render(t, "#define A\n#ifdef A\nyes\n#else\nno\n#endif")
	if got != "yes" {
		t.Errorf("got %q want yes", got)
	}
	got = render(t, "#ifdef A\nyes\n#else\nno\n#endif")
	if got != "no" {
		t.Errorf("got %q want no", got)
	}
}

func TestIfndef(t *testing.T) {
	got := render(t, "#ifndef A\nyes\n#endif")
	if got != "yes" {
		t.Errorf("got %q want yes", got)
	}
}

func TestIfArithmetic(t *testing.T) {
	cases := []struct {
		cond string
		want bool
	}{
		{"1", true},
		{"0", false},
		{"2 + 3 == 5", true},
		{"1 << 4", true},
		{"(1 ? 2 : 3) == 2", true},
		{"!defined(FOO)", true},
		{"defined FOO", false},
		{"'a' == 97", true},
		{"UNDEFINED_NAME", false},
		{"10 % 3 == 1", true},
		{"-1 < 0", true},
		{"~0 == -1", true},
	}
	for _, c := range cases {
		src := fmt.Sprintf("#if %s\nyes\n#else\nno\n#endif", c.cond)
		got := render(t, src)
		want := "no"
		if c.want {
			want = "yes"
		}
		if got != want {
			t.Errorf("#if %s: got %q want %q", c.cond, got, want)
		}
	}
}

func TestElifChain(t *testing.T) {
	src := "#define V 2\n#if V == 1\none\n#elif V == 2\ntwo\n#elif V == 3\nthree\n#else\nother\n#endif"
	if got := render(t, src); got != "two" {
		t.Errorf("got %q want two", got)
	}
}

func TestNestedConditionals(t *testing.T) {
	src := "#if 0\n#if 1\nhidden\n#endif\n#else\nshown\n#endif"
	if got := render(t, src); got != "shown" {
		t.Errorf("got %q want shown", got)
	}
}

func TestSkippedBranchNotExpanded(t *testing.T) {
	// Macros inside a skipped branch must not be defined.
	src := "#if 0\n#define X 1\n#endif\nX"
	if got := render(t, src); got != "X" {
		t.Errorf("got %q want X", got)
	}
}

func TestIncludeBuiltinHeader(t *testing.T) {
	got := render(t, "#include <stddef.h>\nsize_t n;")
	if !strings.Contains(got, "typedef unsigned long size_t ;") {
		t.Errorf("stddef.h not included: %q", got)
	}
	if !strings.HasSuffix(got, "size_t n ;") {
		t.Errorf("trailing decl missing: %q", got)
	}
}

func TestIncludeGuardIdempotent(t *testing.T) {
	got := render(t, "#include <stddef.h>\n#include <stddef.h>\n")
	if strings.Count(got, "typedef unsigned long size_t ;") != 1 {
		t.Errorf("header guard failed: %q", got)
	}
}

func TestIncludeUser(t *testing.T) {
	files := map[string]string{
		"util.h": "#define TWO 2\n",
	}
	p := New(Config{
		Include: func(name string, system bool, from string) (string, []byte, error) {
			if text, ok := files[name]; ok {
				return name, []byte(text), nil
			}
			return "", nil, fmt.Errorf("not found")
		},
	})
	toks, err := p.Process("main.c", []byte("#include \"util.h\"\nint a = TWO;"))
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	var parts []string
	for _, tok := range toks {
		if tok.Kind == token.EOF {
			break
		}
		parts = append(parts, tok.String())
	}
	got := strings.Join(parts, " ")
	if got != "int a = 2 ;" {
		t.Errorf("got %q", got)
	}
}

func TestErrorDirective(t *testing.T) {
	_, err := renderErr("#error broken\n")
	if err == nil || !strings.Contains(err.Error(), "broken") {
		t.Errorf("expected #error to fail, got %v", err)
	}
	// Skipped #error must not fire.
	_, err = renderErr("#if 0\n#error hidden\n#endif\n")
	if err != nil {
		t.Errorf("skipped #error fired: %v", err)
	}
}

func TestPredefined(t *testing.T) {
	got := render(t, "__STDC__")
	if got != "1" {
		t.Errorf("__STDC__ = %q", got)
	}
	got = render(t, "int x;\n__LINE__")
	if got != "int x ; 2" {
		t.Errorf("__LINE__: got %q", got)
	}
	got = render(t, "__FILE__")
	if got != `"test.c"` {
		t.Errorf("__FILE__ = %q", got)
	}
}

func TestConfigDefines(t *testing.T) {
	p := New(Config{Defines: map[string]string{"DEBUG": "", "LEVEL": "3"}})
	toks, err := p.Process("t.c", []byte("#if defined(DEBUG) && LEVEL == 3\nok\n#endif"))
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	if len(toks) < 1 || toks[0].Text != "ok" {
		t.Errorf("got %v", toks)
	}
}

func TestMultiLineInvocation(t *testing.T) {
	got := render(t, "#define ADD(a,b) (a+b)\nx = ADD(1,\n2);")
	want := "x = ( 1 + 2 ) ;"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestOffsetofMacro(t *testing.T) {
	got := render(t, "#include <stddef.h>\nn = offsetof(struct S, f);")
	if !strings.Contains(got, "( size_t ) & ( ( ( struct S * ) 0 ) -> f )") {
		t.Errorf("offsetof expansion: %q", got)
	}
}

func TestUnterminatedConditional(t *testing.T) {
	_, err := renderErr("#if 1\nx\n")
	if err == nil {
		t.Error("expected error for unterminated #if")
	}
}

func TestBenignRedefinition(t *testing.T) {
	_, err := renderErr("#define N 10\n#define N 10\nN")
	if err != nil {
		t.Errorf("benign redefinition rejected: %v", err)
	}
	_, err = renderErr("#define N 10\n#define N 11\n")
	if err == nil {
		t.Error("incompatible redefinition accepted")
	}
}
