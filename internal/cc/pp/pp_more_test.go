package pp

import (
	"strings"
	"testing"
)

// Additional preprocessor corner cases beyond pp_test.go.

func TestNestedFunctionMacroCalls(t *testing.T) {
	got := render(t, "#define ADD(a,b) ((a)+(b))\nx = ADD(ADD(1,2), ADD(3,4));")
	want := "x = ( ( ( ( 1 ) + ( 2 ) ) ) + ( ( ( 3 ) + ( 4 ) ) ) ) ;"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestMacroExpandingToMacroCall(t *testing.T) {
	got := render(t, "#define A(x) B(x)\n#define B(x) (x+1)\ny = A(5);")
	want := "y = ( 5 + 1 ) ;"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestArgumentsExpandedBeforeSubstitution(t *testing.T) {
	got := render(t, "#define N 10\n#define ID(x) x\nz = ID(N);")
	if got != "z = 10 ;" {
		t.Errorf("got %q", got)
	}
}

func TestStringifyDoesNotExpand(t *testing.T) {
	// #x must stringify the raw argument, not its expansion.
	got := render(t, "#define N 10\n#define STR(x) #x\ns = STR(N);")
	if got != `s = "N" ;` {
		t.Errorf("got %q", got)
	}
}

func TestPasteDoesNotExpandOperands(t *testing.T) {
	// Operands of ## are pasted unexpanded.
	got := render(t, "#define A 1\n#define CAT(a,b) a##b\nint AB;\nx = CAT(A,B);")
	if !strings.Contains(got, "x = AB ;") {
		t.Errorf("got %q", got)
	}
}

func TestPasteResultRescanned(t *testing.T) {
	// The pasted token is itself a macro name and must expand.
	got := render(t, "#define AB 42\n#define CAT(a,b) a##b\nx = CAT(A,B);")
	if !strings.Contains(got, "x = 42 ;") {
		t.Errorf("got %q", got)
	}
}

func TestEmptyMacroArgument(t *testing.T) {
	got := render(t, "#define PAIR(a,b) {a,b}\nx = PAIR(,2);")
	if got != "x = { , 2 } ;" {
		t.Errorf("got %q", got)
	}
}

func TestMacroInConditional(t *testing.T) {
	got := render(t, "#define FLAG 1\n#if FLAG\nyes\n#endif")
	if got != "yes" {
		t.Errorf("got %q", got)
	}
}

func TestDefinedOfFunctionMacro(t *testing.T) {
	got := render(t, "#define F(x) x\n#if defined(F)\nyes\n#endif")
	if got != "yes" {
		t.Errorf("got %q", got)
	}
}

func TestUndefInsideConditional(t *testing.T) {
	src := "#define A 1\n#if 1\n#undef A\n#endif\n#ifdef A\ndefined\n#else\nundefined\n#endif"
	if got := render(t, src); got != "undefined" {
		t.Errorf("got %q", got)
	}
}

func TestIncludeDepthLimit(t *testing.T) {
	p := New(Config{
		MaxIncludeDepth: 4,
		Include: func(name string, system bool, from string) (string, []byte, error) {
			// Self-including header without a guard.
			return name, []byte("#include \"" + name + "\"\n"), nil
		},
	})
	_, err := p.Process("t.c", []byte("#include \"loop.h\"\n"))
	if err == nil || !strings.Contains(err.Error(), "nesting too deep") {
		t.Errorf("expected depth error, got %v", err)
	}
}

func TestPragmaOnce(t *testing.T) {
	calls := 0
	p := New(Config{
		Include: func(name string, system bool, from string) (string, []byte, error) {
			calls++
			return name, []byte("#pragma once\nint once_var;\n"), nil
		},
	})
	toks, err := p.Process("t.c", []byte("#include \"o.h\"\n#include \"o.h\"\n"))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, tok := range toks {
		if tok.Text == "once_var" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("once_var appears %d times, want 1", count)
	}
}

func TestLineDirectiveIgnored(t *testing.T) {
	got := render(t, "#line 100 \"other.c\"\nint x;")
	if got != "int x ;" {
		t.Errorf("got %q", got)
	}
}

func TestNullDirective(t *testing.T) {
	got := render(t, "#\nint x;")
	if got != "int x ;" {
		t.Errorf("got %q", got)
	}
}

func TestConditionWithMacroArithmetic(t *testing.T) {
	src := "#define A 3\n#define B 4\n#if A * B == 12 && A < B\nok\n#endif"
	if got := render(t, src); got != "ok" {
		t.Errorf("got %q", got)
	}
}

func TestMacroUsedAsIncludeOperand(t *testing.T) {
	p := New(Config{
		Include: func(name string, system bool, from string) (string, []byte, error) {
			if name == "real.h" {
				return name, []byte("int from_real;\n"), nil
			}
			return "", nil, errNotFound
		},
	})
	toks, err := p.Process("t.c", []byte("#define HDR \"real.h\"\n#include HDR\n"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tok := range toks {
		if tok.Text == "from_real" {
			found = true
		}
	}
	if !found {
		t.Error("macro-valued #include failed")
	}
}

var errNotFound = &notFoundError{}

type notFoundError struct{}

func (*notFoundError) Error() string { return "not found" }

func TestSkippedBranchBadSyntaxTolerated(t *testing.T) {
	// Garbage in a skipped branch must not fail the compile.
	src := "#if 0\n#define BROKEN( x\n@@@@\n#endif\nint ok;"
	got, err := renderErr(src)
	if err != nil {
		t.Fatalf("skipped garbage caused error: %v", err)
	}
	if got != "int ok ;" {
		t.Errorf("got %q", got)
	}
}

func TestDeeplyNestedConditionals(t *testing.T) {
	src := ""
	for i := 0; i < 30; i++ {
		src += "#if 1\n"
	}
	src += "deep\n"
	for i := 0; i < 30; i++ {
		src += "#endif\n"
	}
	if got := render(t, src); got != "deep" {
		t.Errorf("got %q", got)
	}
}

func TestObjectMacroWithParensInBody(t *testing.T) {
	// An object-like macro whose body begins with ( is not function-like.
	got := render(t, "#define V (1+2)\nx = V;")
	if got != "x = ( 1 + 2 ) ;" {
		t.Errorf("got %q", got)
	}
}
