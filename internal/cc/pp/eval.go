package pp

import (
	"fmt"

	"repro/internal/cc/lit"
	"repro/internal/cc/token"
)

// evalCondition evaluates a #if / #elif controlling expression. Per the
// standard, defined-expressions are recognized before macro expansion,
// remaining identifiers evaluate to 0, and arithmetic is done in the widest
// integer type (int64 here).
func (p *Preprocessor) evalCondition(line []token.Token, pos token.Pos) bool {
	pre := p.resolveDefined(line)
	expanded := p.expandList(pre, nil)
	ev := &condEval{p: p, toks: expanded, pos: pos}
	v := ev.ternary()
	if ev.i < len(ev.toks) && !ev.failed {
		ev.fail("trailing tokens in #if expression")
	}
	if ev.failed {
		return false
	}
	return v != 0
}

// resolveDefined replaces defined X and defined(X) with 1 or 0 before
// macro expansion.
func (p *Preprocessor) resolveDefined(line []token.Token) []token.Token {
	var out []token.Token
	for i := 0; i < len(line); i++ {
		t := line[i]
		if t.Kind == token.IDENT && t.Text == "defined" {
			j := i + 1
			parens := false
			if j < len(line) && line[j].Kind == token.LPAREN {
				parens = true
				j++
			}
			if j < len(line) && line[j].Kind == token.IDENT {
				_, def := p.macros[line[j].Text]
				val := "0"
				if def {
					val = "1"
				}
				out = append(out, token.Token{Kind: token.INT, Text: val, Pos: t.Pos, WS: t.WS})
				i = j
				if parens && i+1 < len(line) && line[i+1].Kind == token.RPAREN {
					i++
				}
				continue
			}
		}
		out = append(out, t)
	}
	return out
}

type condEval struct {
	p      *Preprocessor
	toks   []token.Token
	i      int
	pos    token.Pos
	failed bool
}

func (e *condEval) fail(format string, args ...interface{}) int64 {
	if !e.failed {
		e.p.errorf(e.pos, "#if: %s", fmt.Sprintf(format, args...))
		e.failed = true
	}
	return 0
}

func (e *condEval) peek() token.Token {
	if e.i < len(e.toks) {
		return e.toks[e.i]
	}
	return token.Token{Kind: token.EOF}
}

func (e *condEval) next() token.Token {
	t := e.peek()
	if e.i < len(e.toks) {
		e.i++
	}
	return t
}

func (e *condEval) ternary() int64 {
	cond := e.logicalOr()
	if e.peek().Kind == token.QUESTION {
		e.next()
		a := e.ternary()
		if e.peek().Kind != token.COLON {
			return e.fail("expected ':' in conditional expression")
		}
		e.next()
		b := e.ternary()
		if cond != 0 {
			return a
		}
		return b
	}
	return cond
}

func (e *condEval) logicalOr() int64 {
	v := e.logicalAnd()
	for e.peek().Kind == token.LOR {
		e.next()
		r := e.logicalAnd()
		if v != 0 || r != 0 {
			v = 1
		} else {
			v = 0
		}
	}
	return v
}

func (e *condEval) logicalAnd() int64 {
	v := e.bitOr()
	for e.peek().Kind == token.LAND {
		e.next()
		r := e.bitOr()
		if v != 0 && r != 0 {
			v = 1
		} else {
			v = 0
		}
	}
	return v
}

func (e *condEval) bitOr() int64 {
	v := e.bitXor()
	for e.peek().Kind == token.OR {
		e.next()
		v |= e.bitXor()
	}
	return v
}

func (e *condEval) bitXor() int64 {
	v := e.bitAnd()
	for e.peek().Kind == token.XOR {
		e.next()
		v ^= e.bitAnd()
	}
	return v
}

func (e *condEval) bitAnd() int64 {
	v := e.equality()
	for e.peek().Kind == token.AND {
		e.next()
		v &= e.equality()
	}
	return v
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (e *condEval) equality() int64 {
	v := e.relational()
	for {
		switch e.peek().Kind {
		case token.EQL:
			e.next()
			v = boolToInt(v == e.relational())
		case token.NEQ:
			e.next()
			v = boolToInt(v != e.relational())
		default:
			return v
		}
	}
}

func (e *condEval) relational() int64 {
	v := e.shift()
	for {
		switch e.peek().Kind {
		case token.LSS:
			e.next()
			v = boolToInt(v < e.shift())
		case token.GTR:
			e.next()
			v = boolToInt(v > e.shift())
		case token.LEQ:
			e.next()
			v = boolToInt(v <= e.shift())
		case token.GEQ:
			e.next()
			v = boolToInt(v >= e.shift())
		default:
			return v
		}
	}
}

func (e *condEval) shift() int64 {
	v := e.additive()
	for {
		switch e.peek().Kind {
		case token.SHL:
			e.next()
			v <<= uint64(e.additive()) & 63
		case token.SHR:
			e.next()
			v >>= uint64(e.additive()) & 63
		default:
			return v
		}
	}
}

func (e *condEval) additive() int64 {
	v := e.multiplicative()
	for {
		switch e.peek().Kind {
		case token.ADD:
			e.next()
			v += e.multiplicative()
		case token.SUB:
			e.next()
			v -= e.multiplicative()
		default:
			return v
		}
	}
}

func (e *condEval) multiplicative() int64 {
	v := e.unary()
	for {
		switch e.peek().Kind {
		case token.MUL:
			e.next()
			v *= e.unary()
		case token.QUO:
			e.next()
			r := e.unary()
			if r == 0 {
				return e.fail("division by zero")
			}
			v /= r
		case token.REM:
			e.next()
			r := e.unary()
			if r == 0 {
				return e.fail("modulo by zero")
			}
			v %= r
		default:
			return v
		}
	}
}

func (e *condEval) unary() int64 {
	switch e.peek().Kind {
	case token.SUB:
		e.next()
		return -e.unary()
	case token.ADD:
		e.next()
		return e.unary()
	case token.NOT:
		e.next()
		return boolToInt(e.unary() == 0)
	case token.TILDE:
		e.next()
		return ^e.unary()
	}
	return e.primary()
}

func (e *condEval) primary() int64 {
	t := e.next()
	switch t.Kind {
	case token.INT:
		info, err := lit.ParseInt(t.Text)
		if err != nil {
			return e.fail("%v", err)
		}
		return int64(info.Value)
	case token.CHAR:
		v, err := lit.ParseChar(t.Text)
		if err != nil {
			return e.fail("%v", err)
		}
		return v
	case token.IDENT:
		return 0 // undefined identifier
	case token.LPAREN:
		v := e.ternary()
		if e.peek().Kind != token.RPAREN {
			return e.fail("expected ')'")
		}
		e.next()
		return v
	default:
		return e.fail("unexpected token %q", t.String())
	}
}
