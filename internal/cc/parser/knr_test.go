package parser

import (
	"testing"

	"repro/internal/cc/ast"
	"repro/internal/cc/types"
)

func TestKRFunctionDefinition(t *testing.T) {
	src := `
int add(a, b)
int a;
int b;
{
	return a + b;
}`
	f := parseFile(t, src)
	fd, ok := f.Decls[0].(*ast.FuncDecl)
	if !ok {
		t.Fatalf("not a FuncDecl: %T", f.Decls[0])
	}
	ps := fd.Type.Sig.Params
	if len(ps) != 2 || ps[0].Name != "a" || ps[1].Name != "b" {
		t.Fatalf("params = %+v", ps)
	}
	if ps[0].Type.Kind != types.Int {
		t.Errorf("param a type = %s", ps[0].Type)
	}
	if len(fd.Body.List) != 1 {
		t.Errorf("body stmts = %d", len(fd.Body.List))
	}
}

func TestKRPointerAndArrayParams(t *testing.T) {
	src := `
char *first(s, n)
char *s;
int n[4];
{
	return s;
}`
	f := parseFile(t, src)
	fd := f.Decls[0].(*ast.FuncDecl)
	ps := fd.Type.Sig.Params
	if ps[0].Type.Kind != types.Ptr || ps[0].Type.Elem.Kind != types.Char {
		t.Errorf("s type = %s", ps[0].Type)
	}
	// Arrays decay in parameter position even in K&R declarations.
	if ps[1].Type.Kind != types.Ptr {
		t.Errorf("n type = %s, want decayed pointer", ps[1].Type)
	}
}

func TestKRImplicitInt(t *testing.T) {
	// Undeclared identifier-list parameters default to int.
	src := `
int sub(a, b)
int a;
{
	return a - b;
}`
	f := parseFile(t, src)
	fd := f.Decls[0].(*ast.FuncDecl)
	if fd.Type.Sig.Params[1].Type.Kind != types.Int {
		t.Errorf("b type = %s, want int", fd.Type.Sig.Params[1].Type)
	}
}

func TestKRMultipleDeclaratorsPerLine(t *testing.T) {
	src := `
int sum3(a, b, c)
int a, b, c;
{
	return a + b + c;
}`
	f := parseFile(t, src)
	fd := f.Decls[0].(*ast.FuncDecl)
	for i, prm := range fd.Type.Sig.Params {
		if prm.Type.Kind != types.Int {
			t.Errorf("param %d type = %s", i, prm.Type)
		}
	}
}

func TestKRStructParam(t *testing.T) {
	src := `
struct P { int *x; };
int *getx(p)
struct P *p;
{
	return p->x;
}`
	f := parseFile(t, src)
	fd := f.Decls[1].(*ast.FuncDecl)
	typ := fd.Type.Sig.Params[0].Type
	if typ.Kind != types.Ptr || !typ.Elem.IsRecord() {
		t.Errorf("p type = %s", typ)
	}
}

func TestKRMismatchedNameErrors(t *testing.T) {
	src := `
int f(a)
int z;
{
	return a;
}`
	if err := parseErr(src); err == nil {
		t.Error("expected error for mismatched K&R parameter name")
	}
}

func TestKRStillParsesPrototypeStyle(t *testing.T) {
	// The K&R path must not break ANSI definitions.
	src := "int f(int a) { return a; }\nint g() { return 0; }"
	f := parseFile(t, src)
	if len(f.Decls) != 2 {
		t.Fatalf("decls = %d", len(f.Decls))
	}
}
