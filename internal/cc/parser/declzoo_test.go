package parser

import (
	"testing"

	"repro/internal/cc/ast"
	"repro/internal/cc/types"
)

// The declarator zoo: every composite declarator shape the corpus-era C
// uses, checked against the expected type structure.

func declKindChain(t *types.Type) []types.Kind {
	var out []types.Kind
	for t != nil {
		out = append(out, t.Kind)
		switch t.Kind {
		case types.Ptr, types.Array:
			t = t.Elem
		case types.Func:
			t = t.Sig.Result
		default:
			t = nil
		}
	}
	return out
}

func TestDeclaratorZoo(t *testing.T) {
	cases := []struct {
		src  string
		name string
		want []types.Kind
	}{
		{"int x;", "x", []types.Kind{types.Int}},
		{"int *x;", "x", []types.Kind{types.Ptr, types.Int}},
		{"int **x;", "x", []types.Kind{types.Ptr, types.Ptr, types.Int}},
		{"int x[3];", "x", []types.Kind{types.Array, types.Int}},
		{"int *x[3];", "x", []types.Kind{types.Array, types.Ptr, types.Int}},
		{"int (*x)[3];", "x", []types.Kind{types.Ptr, types.Array, types.Int}},
		{"int (*x)(void);", "x", []types.Kind{types.Ptr, types.Func, types.Int}},
		{"int *(*x)(void);", "x", []types.Kind{types.Ptr, types.Func, types.Ptr, types.Int}},
		{"int (*x[4])(void);", "x", []types.Kind{types.Array, types.Ptr, types.Func, types.Int}},
		{"int (**x)(void);", "x", []types.Kind{types.Ptr, types.Ptr, types.Func, types.Int}},
		{"int (*(*x)(void))[5];", "x", []types.Kind{types.Ptr, types.Func, types.Ptr, types.Array, types.Int}},
		{"char *(*(*x)[3])(void);", "x", []types.Kind{types.Ptr, types.Array, types.Ptr, types.Func, types.Ptr, types.Char}},
		{"int x(void);", "x", []types.Kind{types.Func, types.Int}},
		{"int *x(void);", "x", []types.Kind{types.Func, types.Ptr, types.Int}},
		{"int (*x(void))(void);", "x", []types.Kind{types.Func, types.Ptr, types.Func, types.Int}},
	}
	for _, c := range cases {
		typ := typeOfDecl(t, c.src, c.name)
		got := declKindChain(typ)
		if len(got) != len(c.want) {
			t.Errorf("%q: chain %v, want %v", c.src, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%q: chain %v, want %v", c.src, got, c.want)
				break
			}
		}
	}
}

func TestQualifierPlacement(t *testing.T) {
	// const applies where it stands.
	typ := typeOfDecl(t, "const char *s;", "s")
	if typ.Kind != types.Ptr || typ.Elem.Qual&types.QualConst == 0 {
		t.Errorf("const char *: %s", typ)
	}
	typ = typeOfDecl(t, "char *const s;", "s")
	if typ.Qual&types.QualConst == 0 || typ.Elem.Qual != 0 {
		t.Errorf("char *const: %s qual %v", typ, typ.Qual)
	}
	typ = typeOfDecl(t, "const char *const s;", "s")
	if typ.Qual&types.QualConst == 0 || typ.Elem.Qual&types.QualConst == 0 {
		t.Errorf("const char *const: %s", typ)
	}
	typ = typeOfDecl(t, "volatile int v;", "v")
	if typ.Qual&types.QualVolatile == 0 {
		t.Errorf("volatile int: %s", typ)
	}
}

func TestAbstractDeclaratorsInCastsAndSizeof(t *testing.T) {
	cases := []struct {
		src  string
		want []types.Kind
	}{
		{"sizeof(int *)", []types.Kind{types.Ptr, types.Int}},
		{"sizeof(int [4])", []types.Kind{types.Array, types.Int}},
		{"sizeof(int (*)[4])", []types.Kind{types.Ptr, types.Array, types.Int}},
		{"sizeof(int (*)(void))", []types.Kind{types.Ptr, types.Func, types.Int}},
		{"sizeof(struct S *)", []types.Kind{types.Ptr, types.Struct}},
	}
	for _, c := range cases {
		src := "struct S { int a; };\nunsigned long n = " + c.src + ";"
		f := parseFile(t, src)
		var vd *ast.VarDecl
		for _, d := range f.Decls {
			if v, ok := d.(*ast.VarDecl); ok && v.Name == "n" {
				vd = v
			}
		}
		st, ok := vd.Init.(*ast.SizeofType)
		if !ok {
			t.Errorf("%q: init is %T", c.src, vd.Init)
			continue
		}
		got := declKindChain(st.T)
		for i := range c.want {
			if i >= len(got) || got[i] != c.want[i] {
				t.Errorf("%q: chain %v, want %v", c.src, got, c.want)
				break
			}
		}
	}
}

func TestEnumWithTrailingComma(t *testing.T) {
	f := parseFile(t, "enum E { A, B, C, } e;")
	_ = f
}

func TestNestedStructDeclarations(t *testing.T) {
	src := `
struct outer {
	struct inner { int a; } in1, in2;
	struct inner *pin;
	struct { int anon_x; } anon;
} o;`
	typ := typeOfDecl(t, src, "o")
	r := typ.Record
	if len(r.Fields) != 4 {
		t.Fatalf("fields = %d", len(r.Fields))
	}
	if r.Fields[0].Type.Record != r.Fields[1].Type.Record {
		t.Error("in1 and in2 must share struct inner")
	}
	if r.Fields[2].Type.Elem.Record != r.Fields[0].Type.Record {
		t.Error("pin must point to struct inner")
	}
	if r.Fields[3].Type.Record.Tag != "" {
		t.Error("anon member should have an anonymous record")
	}
}

func TestForwardDeclaredStructCompletes(t *testing.T) {
	src := `
struct node;
struct node *head;
struct node { int v; struct node *next; };
struct node tail;`
	f := parseFile(t, src)
	var head, tail *ast.VarDecl
	for _, d := range f.Decls {
		if v, ok := d.(*ast.VarDecl); ok {
			switch v.Name {
			case "head":
				head = v
			case "tail":
				tail = v
			}
		}
	}
	if head.Type.Elem.Record != tail.Type.Record {
		t.Error("forward reference and definition must share the record")
	}
	if !tail.Type.Record.Complete {
		t.Error("record not completed")
	}
}

func TestDanglingElse(t *testing.T) {
	src := "void f(int a, int b) { if (a) if (b) a = 1; else a = 2; }"
	f := parseFile(t, src)
	fd := f.Decls[0].(*ast.FuncDecl)
	outer := fd.Body.List[0].(*ast.If)
	if outer.Else != nil {
		t.Error("else must bind to the inner if")
	}
	inner := outer.Then.(*ast.If)
	if inner.Else == nil {
		t.Error("inner if lost its else")
	}
}

func TestCharIsPlainChar(t *testing.T) {
	if typeOfDecl(t, "char c;", "c").Kind != types.Char {
		t.Error("char should be plain Char kind")
	}
	if typeOfDecl(t, "signed char c;", "c").Kind != types.SChar {
		t.Error("signed char should be SChar")
	}
	if typeOfDecl(t, "unsigned char c;", "c").Kind != types.UChar {
		t.Error("unsigned char should be UChar")
	}
}

func TestEmptyStatementBody(t *testing.T) {
	f := parseFile(t, "void f(void) { while (0); for (;;) break; }")
	fd := f.Decls[0].(*ast.FuncDecl)
	w := fd.Body.List[0].(*ast.While)
	if _, ok := w.Body.(*ast.Empty); !ok {
		t.Errorf("while body = %T", w.Body)
	}
	fr := fd.Body.List[1].(*ast.For)
	if fr.Init != nil || fr.Cond != nil || fr.Post != nil {
		t.Error("for(;;) clauses should all be nil")
	}
}

func TestStringInitOfPointerVsArray(t *testing.T) {
	// char *p = "x" keeps the pointer; char a[] = "x" sizes the array.
	typ := typeOfDecl(t, `char *p = "hello";`, "p")
	if typ.Kind != types.Ptr {
		t.Errorf("p type = %s", typ)
	}
	typ = typeOfDecl(t, `char a[] = "hello";`, "a")
	if typ.Kind != types.Array || typ.ArrayLen != 6 {
		t.Errorf("a type = %s", typ)
	}
}
