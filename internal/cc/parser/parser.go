// Package parser implements a recursive-descent parser for the C subset
// accepted by this front end (C89 declarations and statements, typedefs,
// structs/unions/enums with bit-fields, function prototypes and definitions,
// full expression grammar with casts).
//
// C cannot be parsed without typedef knowledge, so the parser maintains
// scoped name tables and resolves all declaration types to *types.Type as it
// goes. Enum constants are folded to integer literals at parse time.
package parser

import (
	"fmt"

	"repro/internal/cc/ast"
	"repro/internal/cc/layout"
	"repro/internal/cc/lit"
	"repro/internal/cc/token"
	"repro/internal/cc/types"
)

// Config supplies shared state to the parser.
type Config struct {
	// Universe allocates record types; required so that all files of a
	// program share one type universe.
	Universe *types.Universe
	// Layout evaluates sizeof in constant expressions (LP64 if nil).
	Layout *layout.Engine
}

// Parse parses one preprocessed token stream into a file AST.
func Parse(name string, toks []token.Token, cfg Config) (*ast.File, error) {
	p := newParser(name, toks, cfg)
	file := p.parseFile()
	if len(p.errs) > 0 {
		return file, p.errs[0]
	}
	return file, nil
}

// bailout is used for panic-based error recovery within one declaration.
type bailout struct{}

type nameKind int

const (
	nameOrdinary nameKind = iota
	nameTypedef
)

type scope struct {
	names map[string]nameKind
	tdefs map[string]*types.Type
	tags  map[string]*types.Type
	econs map[string]int64
}

func newScope() *scope {
	return &scope{
		names: make(map[string]nameKind),
		tdefs: make(map[string]*types.Type),
		tags:  make(map[string]*types.Type),
		econs: make(map[string]int64),
	}
}

// Parser holds parse state for one translation unit.
type Parser struct {
	name   string
	toks   []token.Token
	i      int
	u      *types.Universe
	lay    *layout.Engine
	scopes []*scope
	errs   []error
}

func newParser(name string, toks []token.Token, cfg Config) *Parser {
	u := cfg.Universe
	if u == nil {
		u = types.NewUniverse()
	}
	lay := cfg.Layout
	if lay == nil {
		lay = layout.New(nil)
	}
	// Resolve keywords (the preprocessor leaves them as IDENT).
	cooked := make([]token.Token, 0, len(toks))
	for _, t := range toks {
		if t.Kind == token.IDENT {
			if k := token.LookupKeyword(t.Text); k != token.IDENT {
				t.Kind = k
			}
		}
		cooked = append(cooked, t)
	}
	return &Parser{
		name:   name,
		toks:   cooked,
		u:      u,
		lay:    lay,
		scopes: []*scope{newScope()},
	}
}

// --- token plumbing ---

func (p *Parser) cur() token.Token {
	if p.i < len(p.toks) {
		return p.toks[p.i]
	}
	return token.Token{Kind: token.EOF}
}

func (p *Parser) peek(n int) token.Token {
	if p.i+n < len(p.toks) {
		return p.toks[p.i+n]
	}
	return token.Token{Kind: token.EOF}
}

func (p *Parser) next() token.Token {
	t := p.cur()
	if p.i < len(p.toks) {
		p.i++
	}
	return t
}

func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) token.Token {
	if !p.at(k) {
		p.fatalf("expected %q, found %q", k.String(), p.cur().String())
	}
	return p.next()
}

func (p *Parser) errorf(format string, args ...interface{}) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", p.cur().Pos, fmt.Sprintf(format, args...)))
}

func (p *Parser) fatalf(format string, args ...interface{}) {
	p.errorf(format, args...)
	panic(bailout{})
}

// --- scopes ---

func (p *Parser) pushScope() { p.scopes = append(p.scopes, newScope()) }
func (p *Parser) popScope()  { p.scopes = p.scopes[:len(p.scopes)-1] }

func (p *Parser) top() *scope { return p.scopes[len(p.scopes)-1] }

func (p *Parser) declareName(name string, k nameKind, t *types.Type) {
	s := p.top()
	s.names[name] = k
	if k == nameTypedef {
		s.tdefs[name] = t
	} else {
		delete(s.tdefs, name)
	}
}

// isTypedefName reports whether name currently denotes a typedef.
func (p *Parser) isTypedefName(name string) bool {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if k, ok := p.scopes[i].names[name]; ok {
			return k == nameTypedef
		}
	}
	return false
}

func (p *Parser) typedefType(name string) *types.Type {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if t, ok := p.scopes[i].tdefs[name]; ok {
			return t
		}
		if _, ok := p.scopes[i].names[name]; ok {
			return nil
		}
	}
	return nil
}

func (p *Parser) lookupTag(tag string) *types.Type {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if t, ok := p.scopes[i].tags[tag]; ok {
			return t
		}
	}
	return nil
}

func (p *Parser) enumConst(name string) (int64, bool) {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if v, ok := p.scopes[i].econs[name]; ok {
			return v, true
		}
		if _, ok := p.scopes[i].names[name]; ok {
			return 0, false
		}
	}
	return 0, false
}

// --- top level ---

func (p *Parser) parseFile() *ast.File {
	file := &ast.File{Name: p.name}
	for !p.at(token.EOF) {
		decls := p.parseExternalDecl()
		file.Decls = append(file.Decls, decls...)
	}
	return file
}

// parseExternalDecl parses one external declaration (or function
// definition), with panic-based recovery to the next ';' or '}'.
func (p *Parser) parseExternalDecl() (decls []ast.Decl) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
			// Resynchronize: skip to just past the next ';' or '}'.
			depth := 0
			for !p.at(token.EOF) {
				switch p.cur().Kind {
				case token.LBRACE:
					depth++
				case token.RBRACE:
					depth--
					if depth <= 0 {
						p.next()
						return
					}
				case token.SEMICOLON:
					if depth == 0 {
						p.next()
						return
					}
				}
				p.next()
			}
		}
	}()
	if p.accept(token.SEMICOLON) {
		return nil
	}
	return p.parseDeclaration(true)
}

// parseDeclaration parses a full declaration (specifiers plus declarator
// list). When topLevel is set, a '{' after a function declarator starts a
// function definition.
func (p *Parser) parseDeclaration(topLevel bool) []ast.Decl {
	pos := p.cur().Pos
	specs := p.parseDeclSpecs(true)

	// Tag-only declaration: "struct S {...};" or "enum E {...};".
	if p.accept(token.SEMICOLON) {
		if specs.typ != nil && (specs.typ.IsRecord() || specs.typ.Kind == types.Enum) {
			return []ast.Decl{&ast.TagDecl{P: pos, Type: specs.typ}}
		}
		return nil
	}

	var decls []ast.Decl
	first := true
	for {
		dpos := p.cur().Pos
		name, typ := p.parseDeclarator(specs.qualified())
		if name == "" {
			p.fatalf("declarator requires a name")
		}

		if first && topLevel && typ.Kind == types.Func &&
			(p.at(token.LBRACE) || typ.Sig.OldStyle && p.isTypeSpecStart()) {
			// Function definition. An old-style (K&R) definition may
			// carry parameter declarations between the declarator and
			// the body:  int f(a, b) int a; char *b; { ... }
			if !p.at(token.LBRACE) {
				p.parseKRParamDecls(typ.Sig)
			}
			p.declareName(name, nameOrdinary, nil)
			fd := &ast.FuncDecl{P: dpos, Name: name, Type: typ, Storage: specs.storage}
			p.pushScope()
			for _, prm := range typ.Sig.Params {
				if prm.Name != "" {
					p.declareName(prm.Name, nameOrdinary, nil)
				}
			}
			fd.Body = p.parseBlock()
			p.popScope()
			return []ast.Decl{fd}
		}
		first = false

		if specs.storage == ast.StorageTypedef {
			p.declareName(name, nameTypedef, typ)
			decls = append(decls, &ast.TypedefDecl{P: dpos, Name: name, Type: types.WithTypedefName(typ, name)})
		} else {
			p.declareName(name, nameOrdinary, nil)
			vd := &ast.VarDecl{P: dpos, Name: name, Type: typ, Storage: specs.storage}
			if p.accept(token.ASSIGN) {
				vd.Init = p.parseInitializer()
				// Complete T a[] = {...} from the initializer.
				if typ.Kind == types.Array && typ.ArrayLen < 0 {
					if il, ok := vd.Init.(*ast.InitList); ok {
						vd.Type = types.ArrayOf(typ.Elem, int64(len(il.Items)))
					} else if sl, ok := vd.Init.(*ast.StringLit); ok {
						vd.Type = types.ArrayOf(typ.Elem, int64(len(sl.Value)+1))
					}
				}
			}
			decls = append(decls, vd)
		}

		if p.accept(token.COMMA) {
			continue
		}
		p.expect(token.SEMICOLON)
		break
	}
	return decls
}

// declSpecs is the result of parsing declaration specifiers.
type declSpecs struct {
	storage ast.StorageClass
	qual    types.Qualifiers
	typ     *types.Type
}

func (d *declSpecs) qualified() *types.Type {
	return types.Qualified(d.typ, d.qual)
}

// isTypeSpecStart reports whether the current token can begin declaration
// specifiers.
func (p *Parser) isTypeSpecStart() bool {
	t := p.cur()
	switch t.Kind {
	case token.VOID, token.CHARKW, token.SHORT, token.INTKW, token.LONG,
		token.FLOATKW, token.DOUBLE, token.SIGNED, token.UNSIGNED,
		token.STRUCT, token.UNION, token.ENUM,
		token.CONST, token.VOLATILE,
		token.TYPEDEF, token.EXTERN, token.STATIC, token.AUTO, token.REGISTER,
		token.INLINE:
		return true
	case token.IDENT:
		return p.isTypedefName(t.Text)
	}
	return false
}

// isTypeNameStart is like isTypeSpecStart but excludes storage classes
// (used for casts and sizeof).
func (p *Parser) isTypeNameStart() bool {
	t := p.cur()
	switch t.Kind {
	case token.VOID, token.CHARKW, token.SHORT, token.INTKW, token.LONG,
		token.FLOATKW, token.DOUBLE, token.SIGNED, token.UNSIGNED,
		token.STRUCT, token.UNION, token.ENUM, token.CONST, token.VOLATILE:
		return true
	case token.IDENT:
		return p.isTypedefName(t.Text)
	}
	return false
}

// parseDeclSpecs parses declaration specifiers. allowStorage permits
// storage-class specifiers (false inside type names and struct fields).
func (p *Parser) parseDeclSpecs(allowStorage bool) declSpecs {
	var d declSpecs
	var base types.Kind // accumulated basic kind
	var nShort, nLong int
	var signed, unsigned bool
	sawBasic := false

	setStorage := func(s ast.StorageClass) {
		if !allowStorage {
			p.fatalf("storage class not allowed here")
		}
		if d.storage != ast.StorageNone {
			p.errorf("multiple storage classes")
		}
		d.storage = s
	}

loop:
	for {
		t := p.cur()
		switch t.Kind {
		case token.TYPEDEF:
			p.next()
			setStorage(ast.StorageTypedef)
		case token.EXTERN:
			p.next()
			setStorage(ast.StorageExtern)
		case token.STATIC:
			p.next()
			setStorage(ast.StorageStatic)
		case token.AUTO:
			p.next()
			setStorage(ast.StorageAuto)
		case token.REGISTER:
			p.next()
			setStorage(ast.StorageRegister)
		case token.INLINE:
			p.next() // accepted and ignored
		case token.CONST:
			p.next()
			d.qual |= types.QualConst
		case token.VOLATILE:
			p.next()
			d.qual |= types.QualVolatile
		case token.VOID:
			p.next()
			d.typ = p.u.Basic(types.Void)
			sawBasic = true
		case token.CHARKW:
			p.next()
			base = types.Char
			sawBasic = true
		case token.SHORT:
			p.next()
			nShort++
			sawBasic = true
		case token.LONG:
			p.next()
			nLong++
			sawBasic = true
		case token.INTKW:
			p.next()
			if base == 0 {
				base = types.Int
			}
			sawBasic = true
		case token.FLOATKW:
			p.next()
			base = types.Float
			sawBasic = true
		case token.DOUBLE:
			p.next()
			base = types.Double
			sawBasic = true
		case token.SIGNED:
			p.next()
			signed = true
			sawBasic = true
		case token.UNSIGNED:
			p.next()
			unsigned = true
			sawBasic = true
		case token.STRUCT, token.UNION:
			d.typ = p.parseRecordSpec(t.Kind == token.UNION)
			sawBasic = true
		case token.ENUM:
			d.typ = p.parseEnumSpec()
			sawBasic = true
		case token.IDENT:
			// A typedef name is a type specifier only if we have not
			// seen any other type specifier yet.
			if !sawBasic && d.typ == nil && p.isTypedefName(t.Text) {
				p.next()
				d.typ = p.typedefType(t.Text)
				sawBasic = true
				continue
			}
			break loop
		default:
			break loop
		}
	}

	if d.typ == nil {
		d.typ = p.combineBasic(base, nShort, nLong, signed, unsigned, sawBasic)
	}
	return d
}

// combineBasic resolves the basic-type specifier combination.
func (p *Parser) combineBasic(base types.Kind, nShort, nLong int, signed, unsigned, sawBasic bool) *types.Type {
	if !sawBasic {
		// Implicit int (K&R style); accepted with no diagnostic since
		// 1990s benchmark code relies on it.
		return p.u.Basic(types.Int)
	}
	k := types.Int
	switch {
	case base == types.Char:
		switch {
		case unsigned:
			k = types.UChar
		case signed:
			k = types.SChar
		default:
			k = types.Char
		}
	case base == types.Float:
		k = types.Float
	case base == types.Double:
		if nLong > 0 {
			k = types.LongDouble
		} else {
			k = types.Double
		}
	case nShort > 0:
		if unsigned {
			k = types.UShort
		} else {
			k = types.Short
		}
	case nLong >= 2:
		if unsigned {
			k = types.ULongLong
		} else {
			k = types.LongLong
		}
	case nLong == 1:
		if unsigned {
			k = types.ULong
		} else {
			k = types.Long
		}
	default:
		if unsigned {
			k = types.UInt
		} else {
			k = types.Int
		}
	}
	return p.u.Basic(k)
}

// parseRecordSpec parses struct-or-union specifier.
func (p *Parser) parseRecordSpec(isUnion bool) *types.Type {
	p.next() // struct / union
	tag := ""
	if p.at(token.IDENT) {
		tag = p.next().Text
	}

	if !p.at(token.LBRACE) {
		if tag == "" {
			p.fatalf("anonymous struct/union requires a definition")
		}
		if t := p.lookupTag(tag); t != nil {
			if (t.Kind == types.Union) != isUnion {
				p.errorf("tag %q redeclared as a different kind", tag)
			}
			return t
		}
		t := p.u.NewRecord(tag, isUnion)
		p.top().tags[tag] = t
		return t
	}

	// Definition.
	var t *types.Type
	if tag != "" {
		if existing, ok := p.top().tags[tag]; ok && !existing.Record.Complete {
			t = existing
		} else if ok && existing.Record.Complete {
			p.errorf("redefinition of tag %q", tag)
			t = p.u.NewRecord(tag, isUnion)
			p.top().tags[tag] = t
		}
	}
	if t == nil {
		t = p.u.NewRecord(tag, isUnion)
		if tag != "" {
			p.top().tags[tag] = t
		}
	}

	p.expect(token.LBRACE)
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		p.parseFieldDecl(t.Record)
	}
	p.expect(token.RBRACE)
	t.Record.Complete = true
	return t
}

// parseFieldDecl parses one struct/union member declaration line.
func (p *Parser) parseFieldDecl(rec *types.Record) {
	specs := p.parseDeclSpecs(false)
	if p.accept(token.SEMICOLON) {
		// Anonymous struct/union member: flatten its fields in
		// (a common extension; harmless for ISO code).
		if specs.typ != nil && specs.typ.IsRecord() {
			rec.Fields = append(rec.Fields, specs.typ.Record.Fields...)
			return
		}
		p.errorf("declaration does not declare anything")
		return
	}
	for {
		name := ""
		typ := specs.qualified()
		if !p.at(token.COLON) {
			name, typ = p.parseDeclarator(specs.qualified())
		}
		width := -1
		if p.accept(token.COLON) {
			width = int(p.parseConstExpr())
		}
		rec.Fields = append(rec.Fields, types.Field{Name: name, Type: typ, BitWidth: width})
		if p.accept(token.COMMA) {
			continue
		}
		p.expect(token.SEMICOLON)
		return
	}
}

// parseEnumSpec parses an enum specifier, registering enumerator constants.
func (p *Parser) parseEnumSpec() *types.Type {
	p.next() // enum
	tag := ""
	if p.at(token.IDENT) {
		tag = p.next().Text
	}
	t := p.u.NewEnum(tag)
	if tag != "" {
		if old := p.lookupTag(tag); old != nil && !p.at(token.LBRACE) {
			return old
		}
		p.top().tags[tag] = t
	}
	if !p.at(token.LBRACE) {
		return t
	}
	p.expect(token.LBRACE)
	var val int64
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		name := p.expect(token.IDENT).Text
		if p.accept(token.ASSIGN) {
			val = p.parseConstExpr()
		}
		p.top().econs[name] = val
		p.declareName(name, nameOrdinary, nil)
		val++
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RBRACE)
	return t
}

// --- declarators ---

// parseDeclarator parses a (possibly abstract) declarator against base and
// returns the declared name ("" when abstract) and the full type.
func (p *Parser) parseDeclarator(base *types.Type) (string, *types.Type) {
	// Pointer part: each '*' wraps the base going left to right.
	for p.accept(token.MUL) {
		var q types.Qualifiers
		for {
			if p.accept(token.CONST) {
				q |= types.QualConst
				continue
			}
			if p.accept(token.VOLATILE) {
				q |= types.QualVolatile
				continue
			}
			break
		}
		base = types.Qualified(types.PointerTo(base), q)
	}

	// Direct declarator core.
	var name string
	var inner func(*types.Type) (string, *types.Type) // deferred inner declarator
	switch {
	case p.at(token.IDENT) && !p.isTypedefName(p.cur().Text):
		name = p.next().Text
	case p.at(token.IDENT):
		// A typedef name in declarator position: treat as the declared
		// identifier (shadows the typedef), matching C scoping rules.
		name = p.next().Text
	case p.at(token.LPAREN) && p.parenStartsDeclarator():
		p.next()
		start := p.i
		// Parse the inner declarator but defer type construction until
		// the suffixes are known: first pass to find the extent.
		depth := 1
		for depth > 0 && !p.at(token.EOF) {
			switch p.cur().Kind {
			case token.LPAREN:
				depth++
			case token.RPAREN:
				depth--
			}
			if depth > 0 {
				p.next()
			}
		}
		end := p.i
		p.expect(token.RPAREN)
		inner = func(b *types.Type) (string, *types.Type) {
			save := p.i
			p.i = start
			n, t := p.parseDeclarator(b)
			if p.i != end {
				p.errorf("malformed parenthesized declarator")
			}
			p.i = save
			return n, t
		}
	default:
		// Abstract declarator with no core (e.g. "int *" or "int []").
	}

	// Suffixes, applied right-to-left onto base.
	type suffix struct {
		isArray bool
		alen    int64
		sig     *types.Signature
	}
	var suffixes []suffix
	for {
		if p.accept(token.LBRACK) {
			n := int64(-1)
			if !p.at(token.RBRACK) {
				n = p.parseConstExpr()
			}
			p.expect(token.RBRACK)
			suffixes = append(suffixes, suffix{isArray: true, alen: n})
			continue
		}
		if p.at(token.LPAREN) {
			p.next()
			sig := p.parseParamList()
			suffixes = append(suffixes, suffix{sig: sig})
			continue
		}
		break
	}
	for i := len(suffixes) - 1; i >= 0; i-- {
		s := suffixes[i]
		if s.isArray {
			base = types.ArrayOf(base, s.alen)
		} else {
			s.sig.Result = base
			base = &types.Type{Kind: types.Func, Sig: s.sig}
		}
	}

	if inner != nil {
		return inner(base)
	}
	return name, base
}

// parenStartsDeclarator disambiguates "(declarator)" from "(params)" after
// a direct-declarator position: a paren starts a nested declarator when the
// next token is '*', an identifier that is not a typedef name, or another
// '('.
func (p *Parser) parenStartsDeclarator() bool {
	t := p.peek(1)
	switch t.Kind {
	case token.MUL, token.LPAREN:
		return true
	case token.IDENT:
		return !p.isTypedefName(t.Text)
	}
	return false
}

// parseParamList parses a prototype parameter list after '('.
func (p *Parser) parseParamList() *types.Signature {
	sig := &types.Signature{}
	if p.accept(token.RPAREN) {
		sig.OldStyle = true // ()
		return sig
	}
	// (void)
	if p.at(token.VOID) && p.peek(1).Kind == token.RPAREN {
		p.next()
		p.next()
		return sig
	}
	// Old-style identifier list: (a, b, c) — recognized and recorded as
	// unspecified parameters.
	if p.at(token.IDENT) && !p.isTypedefName(p.cur().Text) &&
		(p.peek(1).Kind == token.COMMA || p.peek(1).Kind == token.RPAREN) {
		for {
			name := p.expect(token.IDENT).Text
			sig.Params = append(sig.Params, types.Param{Name: name, Type: p.u.Basic(types.Int)})
			if p.accept(token.COMMA) {
				continue
			}
			break
		}
		p.expect(token.RPAREN)
		sig.OldStyle = true
		return sig
	}
	for {
		if p.accept(token.ELLIPSIS) {
			sig.Variadic = true
			break
		}
		specs := p.parseDeclSpecs(true) // register allowed in params
		name, typ := p.parseDeclarator(specs.qualified())
		// Parameter type adjustment.
		switch typ.Kind {
		case types.Array:
			typ = types.PointerTo(typ.Elem)
		case types.Func:
			typ = types.PointerTo(typ)
		}
		sig.Params = append(sig.Params, types.Param{Name: name, Type: typ})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	return sig
}

// parseKRParamDecls parses the parameter declarations of an old-style
// function definition and patches the declared types into the signature
// (undeclared identifier-list parameters stay int, per K&R).
func (p *Parser) parseKRParamDecls(sig *types.Signature) {
	for p.isTypeSpecStart() && !p.at(token.LBRACE) {
		specs := p.parseDeclSpecs(true)
		for {
			name, typ := p.parseDeclarator(specs.qualified())
			// Parameter adjustment, as in prototypes.
			switch typ.Kind {
			case types.Array:
				typ = types.PointerTo(typ.Elem)
			case types.Func:
				typ = types.PointerTo(typ)
			}
			patched := false
			for i := range sig.Params {
				if sig.Params[i].Name == name {
					sig.Params[i].Type = typ
					patched = true
					break
				}
			}
			if !patched {
				p.errorf("parameter declaration for %q does not match the identifier list", name)
			}
			if p.accept(token.COMMA) {
				continue
			}
			p.expect(token.SEMICOLON)
			break
		}
	}
}

// parseTypeName parses a type-name (for casts and sizeof).
func (p *Parser) parseTypeName() *types.Type {
	specs := p.parseDeclSpecs(false)
	name, typ := p.parseDeclarator(specs.qualified())
	if name != "" {
		p.errorf("unexpected identifier %q in type name", name)
	}
	return typ
}

// --- initializers ---

func (p *Parser) parseInitializer() ast.Init {
	if p.at(token.LBRACE) {
		pos := p.next().Pos
		il := &ast.InitList{P: pos}
		for !p.at(token.RBRACE) && !p.at(token.EOF) {
			il.Items = append(il.Items, p.parseInitializer())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RBRACE)
		return il
	}
	e := p.parseAssignExpr()
	init, ok := e.(ast.Init)
	if !ok {
		p.fatalf("expression cannot be used as an initializer")
	}
	return init
}

// --- statements ---

func (p *Parser) parseBlock() *ast.Block {
	pos := p.expect(token.LBRACE).Pos
	b := &ast.Block{P: pos}
	p.pushScope()
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		b.List = append(b.List, p.parseStmt())
	}
	p.popScope()
	p.expect(token.RBRACE)
	return b
}

func (p *Parser) parseStmt() ast.Stmt {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.SEMICOLON:
		p.next()
		return &ast.Empty{P: pos}
	case token.IF:
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		thenS := p.parseStmt()
		var elseS ast.Stmt
		if p.accept(token.ELSE) {
			elseS = p.parseStmt()
		}
		return &ast.If{P: pos, Cond: cond, Then: thenS, Else: elseS}
	case token.WHILE:
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.While{P: pos, Cond: cond, Body: p.parseStmt()}
	case token.DO:
		p.next()
		body := p.parseStmt()
		p.expect(token.WHILE)
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		p.expect(token.SEMICOLON)
		return &ast.DoWhile{P: pos, Body: body, Cond: cond}
	case token.FOR:
		p.next()
		p.expect(token.LPAREN)
		f := &ast.For{P: pos}
		p.pushScope()
		if !p.at(token.SEMICOLON) {
			if p.isTypeSpecStart() {
				ds := &ast.DeclStmt{P: p.cur().Pos}
				ds.Decls = p.parseDeclaration(false) // consumes ';'
				f.InitDecl = ds
			} else {
				f.Init = p.parseExpr()
				p.expect(token.SEMICOLON)
			}
		} else {
			p.next()
		}
		if !p.at(token.SEMICOLON) {
			f.Cond = p.parseExpr()
		}
		p.expect(token.SEMICOLON)
		if !p.at(token.RPAREN) {
			f.Post = p.parseExpr()
		}
		p.expect(token.RPAREN)
		f.Body = p.parseStmt()
		p.popScope()
		return f
	case token.SWITCH:
		p.next()
		p.expect(token.LPAREN)
		tag := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.Switch{P: pos, Tag: tag, Body: p.parseStmt()}
	case token.CASE:
		p.next()
		e := p.parseCondExpr()
		p.expect(token.COLON)
		c := &ast.Case{P: pos, Expr: e}
		c.Body = p.parseCaseBody()
		return c
	case token.DEFAULT:
		p.next()
		p.expect(token.COLON)
		c := &ast.Case{P: pos}
		c.Body = p.parseCaseBody()
		return c
	case token.BREAK:
		p.next()
		p.expect(token.SEMICOLON)
		return &ast.Break{P: pos}
	case token.CONTINUE:
		p.next()
		p.expect(token.SEMICOLON)
		return &ast.Continue{P: pos}
	case token.RETURN:
		p.next()
		var e ast.Expr
		if !p.at(token.SEMICOLON) {
			e = p.parseExpr()
		}
		p.expect(token.SEMICOLON)
		return &ast.Return{P: pos, Expr: e}
	case token.GOTO:
		p.next()
		label := p.expect(token.IDENT).Text
		p.expect(token.SEMICOLON)
		return &ast.Goto{P: pos, Label: label}
	case token.IDENT:
		// Label?
		if p.peek(1).Kind == token.COLON && !p.isTypedefName(p.cur().Text) {
			name := p.next().Text
			p.next() // :
			return &ast.Label{P: pos, Name: name, Stmt: p.parseStmt()}
		}
	}
	if p.isTypeSpecStart() {
		ds := &ast.DeclStmt{P: pos}
		ds.Decls = p.parseDeclaration(false)
		return ds
	}
	e := p.parseExpr()
	p.expect(token.SEMICOLON)
	return &ast.ExprStmt{P: pos, X: e}
}

// parseCaseBody collects the statements following a case/default label up to
// the next label or the end of the switch block.
func (p *Parser) parseCaseBody() []ast.Stmt {
	var list []ast.Stmt
	for {
		switch p.cur().Kind {
		case token.CASE, token.DEFAULT, token.RBRACE, token.EOF:
			return list
		}
		list = append(list, p.parseStmt())
	}
}

// --- expressions ---

func (p *Parser) parseExpr() ast.Expr {
	e := p.parseAssignExpr()
	for p.at(token.COMMA) {
		pos := p.next().Pos
		y := p.parseAssignExpr()
		e = &ast.Comma{P: pos, X: e, Y: y}
	}
	return e
}

func (p *Parser) parseAssignExpr() ast.Expr {
	l := p.parseCondExpr()
	if p.cur().Kind.IsAssignOp() {
		op := p.next()
		r := p.parseAssignExpr()
		return &ast.Assign{P: op.Pos, Op: op.Kind, L: l, R: r}
	}
	return l
}

func (p *Parser) parseCondExpr() ast.Expr {
	c := p.parseBinaryExpr(1)
	if p.at(token.QUESTION) {
		pos := p.next().Pos
		a := p.parseExpr()
		p.expect(token.COLON)
		b := p.parseCondExpr()
		return &ast.Cond{P: pos, C: c, A: a, B: b}
	}
	return c
}

func cPrec(k token.Kind) int {
	switch k {
	case token.LOR:
		return 1
	case token.LAND:
		return 2
	case token.OR:
		return 3
	case token.XOR:
		return 4
	case token.AND:
		return 5
	case token.EQL, token.NEQ:
		return 6
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		return 7
	case token.SHL, token.SHR:
		return 8
	case token.ADD, token.SUB:
		return 9
	case token.MUL, token.QUO, token.REM:
		return 10
	}
	return 0
}

func (p *Parser) parseBinaryExpr(minPrec int) ast.Expr {
	x := p.parseCastExpr()
	for {
		prec := cPrec(p.cur().Kind)
		if prec < minPrec || prec == 0 {
			return x
		}
		op := p.next()
		y := p.parseBinaryExpr(prec + 1)
		x = &ast.Binary{P: op.Pos, Op: op.Kind, X: x, Y: y}
	}
}

func (p *Parser) parseCastExpr() ast.Expr {
	if p.at(token.LPAREN) && p.typeNameAfterParen() {
		pos := p.next().Pos
		t := p.parseTypeName()
		p.expect(token.RPAREN)
		x := p.parseCastExpr()
		return &ast.Cast{P: pos, T: t, X: x}
	}
	return p.parseUnaryExpr()
}

// typeNameAfterParen reports whether '(' is followed by a type name.
func (p *Parser) typeNameAfterParen() bool {
	t := p.peek(1)
	switch t.Kind {
	case token.VOID, token.CHARKW, token.SHORT, token.INTKW, token.LONG,
		token.FLOATKW, token.DOUBLE, token.SIGNED, token.UNSIGNED,
		token.STRUCT, token.UNION, token.ENUM, token.CONST, token.VOLATILE:
		return true
	case token.IDENT:
		return p.isTypedefName(t.Text)
	}
	return false
}

func (p *Parser) parseUnaryExpr() ast.Expr {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.INC, token.DEC:
		op := p.next()
		x := p.parseUnaryExpr()
		return &ast.Unary{P: pos, Op: op.Kind, X: x}
	case token.AND, token.MUL, token.ADD, token.SUB, token.TILDE, token.NOT:
		op := p.next()
		x := p.parseCastExpr()
		return &ast.Unary{P: pos, Op: op.Kind, X: x}
	case token.SIZEOF:
		p.next()
		if p.at(token.LPAREN) && p.typeNameAfterParen() {
			p.next()
			t := p.parseTypeName()
			p.expect(token.RPAREN)
			return &ast.SizeofType{P: pos, T: t}
		}
		return &ast.SizeofExpr{P: pos, X: p.parseUnaryExpr()}
	}
	return p.parsePostfixExpr()
}

func (p *Parser) parsePostfixExpr() ast.Expr {
	x := p.parsePrimaryExpr()
	for {
		pos := p.cur().Pos
		switch p.cur().Kind {
		case token.LBRACK:
			p.next()
			i := p.parseExpr()
			p.expect(token.RBRACK)
			x = &ast.Index{P: pos, X: x, I: i}
		case token.LPAREN:
			p.next()
			call := &ast.Call{P: pos, Fun: x}
			for !p.at(token.RPAREN) && !p.at(token.EOF) {
				call.Args = append(call.Args, p.parseAssignExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
			x = call
		case token.PERIOD:
			p.next()
			name := p.expect(token.IDENT).Text
			x = &ast.Member{P: pos, X: x, Name: name}
		case token.ARROW:
			p.next()
			name := p.expect(token.IDENT).Text
			x = &ast.Member{P: pos, X: x, Name: name, Arrow: true}
		case token.INC, token.DEC:
			op := p.next()
			x = &ast.Postfix{P: pos, Op: op.Kind, X: x}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimaryExpr() ast.Expr {
	t := p.cur()
	pos := t.Pos
	switch t.Kind {
	case token.IDENT:
		p.next()
		if v, ok := p.enumConst(t.Text); ok {
			return &ast.IntLit{P: pos, Text: fmt.Sprintf("%d", v)}
		}
		return &ast.Ident{P: pos, Name: t.Text}
	case token.INT:
		p.next()
		return &ast.IntLit{P: pos, Text: t.Text}
	case token.FLOAT:
		p.next()
		return &ast.FloatLit{P: pos, Text: t.Text}
	case token.CHAR:
		p.next()
		return &ast.CharLit{P: pos, Text: t.Text}
	case token.STRING:
		// Adjacent string literals concatenate.
		var val string
		for p.at(token.STRING) {
			s, err := lit.UnquoteString(p.next().Text)
			if err != nil {
				p.errorf("%v", err)
			}
			val += s
		}
		return &ast.StringLit{P: pos, Value: val}
	case token.LPAREN:
		p.next()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.Paren{P: pos, X: x}
	}
	p.fatalf("unexpected token %q in expression", t.String())
	return nil
}

// --- constant expressions ---

// parseConstExpr parses and evaluates an integer constant expression.
func (p *Parser) parseConstExpr() int64 {
	e := p.parseCondExpr()
	v, err := p.evalConst(e)
	if err != nil {
		p.errorf("constant expression: %v", err)
		return 1
	}
	return v
}

func (p *Parser) evalConst(e ast.Expr) (int64, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		info, err := lit.ParseInt(e.Text)
		if err != nil {
			return 0, err
		}
		return int64(info.Value), nil
	case *ast.CharLit:
		return lit.ParseChar(e.Text)
	case *ast.Paren:
		return p.evalConst(e.X)
	case *ast.SizeofType:
		return p.lay.Sizeof(e.T), nil
	case *ast.Cast:
		return p.evalConst(e.X)
	case *ast.Unary:
		v, err := p.evalConst(e.X)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case token.SUB:
			return -v, nil
		case token.ADD:
			return v, nil
		case token.TILDE:
			return ^v, nil
		case token.NOT:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("non-constant unary operator %s", e.Op)
	case *ast.Cond:
		c, err := p.evalConst(e.C)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return p.evalConst(e.A)
		}
		return p.evalConst(e.B)
	case *ast.Binary:
		x, err := p.evalConst(e.X)
		if err != nil {
			return 0, err
		}
		y, err := p.evalConst(e.Y)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case token.ADD:
			return x + y, nil
		case token.SUB:
			return x - y, nil
		case token.MUL:
			return x * y, nil
		case token.QUO:
			if y == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return x / y, nil
		case token.REM:
			if y == 0 {
				return 0, fmt.Errorf("modulo by zero")
			}
			return x % y, nil
		case token.SHL:
			return x << (uint64(y) & 63), nil
		case token.SHR:
			return x >> (uint64(y) & 63), nil
		case token.AND:
			return x & y, nil
		case token.OR:
			return x | y, nil
		case token.XOR:
			return x ^ y, nil
		case token.LAND:
			if x != 0 && y != 0 {
				return 1, nil
			}
			return 0, nil
		case token.LOR:
			if x != 0 || y != 0 {
				return 1, nil
			}
			return 0, nil
		case token.EQL:
			return b2i(x == y), nil
		case token.NEQ:
			return b2i(x != y), nil
		case token.LSS:
			return b2i(x < y), nil
		case token.GTR:
			return b2i(x > y), nil
		case token.LEQ:
			return b2i(x <= y), nil
		case token.GEQ:
			return b2i(x >= y), nil
		}
		return 0, fmt.Errorf("non-constant binary operator %s", e.Op)
	}
	return 0, fmt.Errorf("expression is not constant")
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
